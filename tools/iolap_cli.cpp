// iolap_cli — run imprecise-OLAP allocation from the command line.
//
//   iolap_cli sample  --dir=out/
//       Writes a sample schema.csv + facts.csv (the paper's Table 1).
//
//   iolap_cli estimate --schema=s.csv --facts=f.csv [--sample=20000]
//       One cheap pass: predicts EM iterations and the largest connected
//       component before you commit to an algorithm and buffer size.
//
//   iolap_cli allocate --schema=s.csv --facts=f.csv --out=edb.csv
//       [--policy=count|measure|uniform] [--algorithm=transitive|block|
//        independent|basic] [--epsilon=0.005] [--buffer-pages=4096]
//       [--threads=1]
//       [--serial-io=1] [--sort-threads=N] [--merge-block-pages=N]
//       [--read-ahead-pages=N] [--batched-writeback=0|1]
//       [--checkpoint-dir=ckpt/] [--checkpoint-every=N] [--resume=1]
//       [--io-retries=N] [--io-retry-backoff-us=100]
//       Builds the Extended Database and writes it as CSV. --threads > 1
//       runs Transitive's components in parallel (output is byte-identical
//       to the serial run). The I/O pipeline flags tune the storage layer
//       (--serial-io=1 selects the fully serial baseline; individual flags
//       override it); every setting produces a byte-identical EDB.
//       --checkpoint-dir persists restartable state there at iteration /
//       component boundaries (every N boundaries with --checkpoint-every);
//       --resume=1 continues a killed run from its newest valid checkpoint.
//       --io-retries enables bounded retry with exponential backoff for
//       transient (UNAVAILABLE) storage failures. See docs/OPERATIONS.md.
//
//   iolap_cli query --schema=s.csv --facts=f.csv --dim=<name> --node=<name>
//       [--func=sum|count|avg]
//       Allocates, then answers one aggregation under all four semantics.
//
//   Every command also accepts [--metrics-out=m.json] [--trace-out=t.json]:
//   --metrics-out dumps a flat JSON object of run counters/gauges,
//   --trace-out records a Chrome trace_event span tree loadable in
//   Perfetto (https://ui.perfetto.dev) or chrome://tracing. With neither
//   flag, observability is fully disabled (zero-cost; identical I/O
//   counts).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "alloc/allocator.h"
#include "alloc/estimator.h"
#include "edb/query.h"
#include "examples/example_util.h"
#include "io/csv.h"
#include "obs/obs.h"

using namespace iolap;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: iolap_cli <sample|estimate|allocate|query> "
               "[--flags]\n(see the header of tools/iolap_cli.cpp)\n");
  return 2;
}

AlgorithmKind ParseAlgorithm(const std::string& name) {
  if (name == "basic") return AlgorithmKind::kBasic;
  if (name == "independent") return AlgorithmKind::kIndependent;
  if (name == "block") return AlgorithmKind::kBlock;
  return AlgorithmKind::kTransitive;
}

PolicyKind ParsePolicy(const std::string& name) {
  if (name == "measure") return PolicyKind::kMeasure;
  if (name == "uniform") return PolicyKind::kUniform;
  return PolicyKind::kCount;
}

/// --io-retries / --io-retry-backoff-us: retry is a property of the storage
/// environment (every file in it), not of one allocation run, so it lives
/// on the DiskManager rather than in AllocationOptions.
void ApplyRetryPolicy(const Flags& flags, StorageEnv* env) {
  RetryPolicy policy;
  policy.max_retries = static_cast<int>(flags.GetInt("io-retries", 0));
  policy.backoff_initial_us = flags.GetInt("io-retry-backoff-us", 100);
  env->disk().SetRetryPolicy(policy);
}

IoPipelineOptions ParsePipeline(const Flags& flags) {
  IoPipelineOptions io;
  if (flags.GetInt("serial-io", 0) != 0) io = IoPipelineOptions::Serial();
  io.sort_threads =
      static_cast<int>(flags.GetInt("sort-threads", io.sort_threads));
  io.merge_block_pages = static_cast<int>(
      flags.GetInt("merge-block-pages", io.merge_block_pages));
  io.read_ahead_pages = static_cast<int>(
      flags.GetInt("read-ahead-pages", io.read_ahead_pages));
  io.batched_writeback =
      flags.GetInt("batched-writeback", io.batched_writeback ? 1 : 0) != 0;
  return io;
}

int CmdSample(const Flags& flags) {
  std::string dir = flags.GetString("dir", ".");
  {
    std::ofstream schema(dir + "/schema.csv");
    schema << "# dimension,parent,node (top-down; empty parent = under ALL)\n"
              "Location,,East\nLocation,,West\n"
              "Location,East,MA\nLocation,East,NY\n"
              "Location,West,TX\nLocation,West,CA\n"
              "Automobile,,Sedan\nAutomobile,,Truck\n"
              "Automobile,Sedan,Civic\nAutomobile,Sedan,Camry\n"
              "Automobile,Truck,F150\nAutomobile,Truck,Sierra\n";
  }
  {
    std::ofstream facts(dir + "/facts.csv");
    facts << "fact_id,Location,Automobile,measure\n"
             "1,MA,Civic,100\n2,MA,Sierra,150\n3,NY,F150,100\n"
             "4,CA,Civic,175\n5,CA,Sierra,50\n6,MA,Sedan,100\n"
             "7,MA,Truck,120\n8,CA,ALL,160\n9,East,Truck,190\n"
             "10,West,Sedan,200\n11,ALL,Civic,80\n12,ALL,F150,120\n"
             "13,West,Civic,70\n14,West,Sierra,90\n";
  }
  std::printf("wrote %s/schema.csv and %s/facts.csv (paper Table 1)\n",
              dir.c_str(), dir.c_str());
  return 0;
}

int CmdEstimate(const Flags& flags) {
  StarSchema schema = Unwrap(LoadSchemaCsv(flags.GetString("schema", "")));
  StorageEnv env(MakeWorkDir("cli"), flags.GetInt("buffer-pages", 4096));
  TypedFile<FactRecord> facts =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  EstimateOptions options;
  options.sample_size = flags.GetInt("sample", 20'000);
  options.epsilon = flags.GetDouble("epsilon", 0.005);
  AllocationEstimate est =
      Unwrap(EstimateAllocation(env, schema, facts, options));
  std::printf("facts: %" PRId64 " (sampled %" PRId64 ")\n", facts.size(),
              est.sampled_facts);
  std::printf("predicted EM iterations (eps=%g): %d\n", options.epsilon,
              est.estimated_iterations);
  std::printf("sampled components: %" PRId64 ", largest: %" PRId64
              " tuples (growth exponent %.2f)\n",
              est.sample_components, est.sample_largest_component,
              est.growth_exponent);
  if (est.giant_component) {
    std::printf("GIANT component detected: projected size ~%" PRId64
                " tuples — size the buffer accordingly or expect "
                "Transitive's external path\n",
                est.estimated_largest_component);
  } else {
    std::printf("components look local (largest >= %" PRId64
                " tuples); Transitive should keep everything in memory\n",
                est.estimated_largest_component);
  }
  return 0;
}

int CmdAllocate(const Flags& flags) {
  StarSchema schema = Unwrap(LoadSchemaCsv(flags.GetString("schema", "")));
  StorageEnv env(MakeWorkDir("cli"), flags.GetInt("buffer-pages", 4096));
  ApplyRetryPolicy(flags, &env);
  TypedFile<FactRecord> facts =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  AllocationOptions options;
  options.policy = ParsePolicy(flags.GetString("policy", "count"));
  options.algorithm =
      ParseAlgorithm(flags.GetString("algorithm", "transitive"));
  options.epsilon = flags.GetDouble("epsilon", 0.005);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.io = ParsePipeline(flags);
  options.checkpoint.directory = flags.GetString("checkpoint-dir", "");
  options.checkpoint.every =
      static_cast<int>(flags.GetInt("checkpoint-every", 1));
  options.checkpoint.resume = flags.GetInt("resume", 0) != 0;
  const int64_t num_facts = facts.size();
  AllocationResult result =
      Unwrap(Allocator::Run(env, schema, &facts, options));
  std::string out = flags.GetString("out", "edb.csv");
  DieOnError(WriteEdbCsv(env, schema, result.edb, out));
  std::printf("%s over %" PRId64 " facts (%" PRId64 " imprecise): "
              "%d iterations, %" PRId64 " EDB rows -> %s\n",
              AlgorithmName(options.algorithm), num_facts,
              result.num_imprecise, result.iterations, result.edb.size(),
              out.c_str());
  std::printf("phases: prep %.2fs / alloc %.2fs (%" PRId64
              " I/Os) / emit %.2fs; unallocatable facts: %" PRId64 "\n",
              result.prep_seconds, result.alloc_seconds,
              result.alloc_io.total(), result.emit_seconds,
              result.unallocatable_facts);
  if (options.algorithm == AlgorithmKind::kTransitive) {
    std::printf("components: %" PRId64 " (largest %" PRId64 " tuples)\n",
                result.components.num_components,
                result.components.largest_component);
  }
  return 0;
}

int CmdQuery(const Flags& flags) {
  StarSchema schema = Unwrap(LoadSchemaCsv(flags.GetString("schema", "")));
  StorageEnv env(MakeWorkDir("cli"), flags.GetInt("buffer-pages", 4096));
  TypedFile<FactRecord> facts =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  TypedFile<FactRecord> original =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  AllocationOptions options;
  options.policy = ParsePolicy(flags.GetString("policy", "count"));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.io = ParsePipeline(flags);
  AllocationResult result =
      Unwrap(Allocator::Run(env, schema, &facts, options));

  QueryRegion region = QueryRegion::All();
  std::string dim_name = flags.GetString("dim", "");
  if (!dim_name.empty()) {
    int dim = -1;
    for (int d = 0; d < schema.num_dims(); ++d) {
      if (schema.dim(d).dimension_name() == dim_name) dim = d;
    }
    if (dim < 0) {
      std::fprintf(stderr, "unknown dimension '%s'\n", dim_name.c_str());
      return 2;
    }
    NodeId node =
        Unwrap(schema.dim(dim).FindNode(flags.GetString("node", "ALL")));
    region.With(dim, node);
  }
  std::string func_name = flags.GetString("func", "sum");
  AggregateFunc func = func_name == "count" ? AggregateFunc::kCount
                       : func_name == "avg" ? AggregateFunc::kAverage
                                            : AggregateFunc::kSum;
  QueryEngine engine(&env, &schema, &result.edb, &original);
  struct Row {
    const char* label;
    ImpreciseSemantics semantics;
  } rows[] = {
      {"allocation-weighted", ImpreciseSemantics::kAllocationWeighted},
      {"none (precise only)", ImpreciseSemantics::kNone},
      {"contains", ImpreciseSemantics::kContains},
      {"overlaps", ImpreciseSemantics::kOverlaps},
  };
  std::printf("%s(%s) over %s=%s:\n", func_name.c_str(), "measure",
              dim_name.empty() ? "ALL" : dim_name.c_str(),
              flags.GetString("node", "ALL").c_str());
  for (const Row& row : rows) {
    AggregateResult r = Unwrap(engine.Aggregate(region, func, row.semantics));
    std::printf("  %-22s %14.4f\n", row.label, r.value);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  ScopedObservability obs(flags.GetString("metrics-out", ""),
                          flags.GetString("trace-out", ""));
  std::string command = argv[1];
  int rc = 2;
  if (command == "sample") rc = CmdSample(flags);
  else if (command == "estimate") rc = CmdEstimate(flags);
  else if (command == "allocate") rc = CmdAllocate(flags);
  else if (command == "query") rc = CmdQuery(flags);
  else return Usage();
  DieOnError(obs.Finish());
  return rc;
}
