// iolap_cli — run imprecise-OLAP allocation from the command line.
//
//   iolap_cli sample  --dir=out/
//       Writes a sample schema.csv + facts.csv (the paper's Table 1).
//
//   iolap_cli estimate --schema=s.csv --facts=f.csv [--sample=20000]
//       One cheap pass: predicts EM iterations and the largest connected
//       component before you commit to an algorithm and buffer size.
//
//   iolap_cli allocate --schema=s.csv --facts=f.csv --out=edb.csv
//       [--policy=count|measure|uniform] [--algorithm=transitive|block|
//        independent|basic] [--epsilon=0.005] [--buffer-pages=4096]
//       [--threads=1]
//       [--serial-io=1] [--sort-threads=N] [--merge-block-pages=N]
//       [--read-ahead-pages=N] [--batched-writeback=0|1]
//       [--io-backend=off|auto|uring|pread] [--plan-in-flight=N]
//       [--checkpoint-dir=ckpt/] [--checkpoint-every=N] [--resume=1]
//       [--io-retries=N] [--io-retry-backoff-us=100]
//       Builds the Extended Database and writes it as CSV. --threads > 1
//       runs Transitive's components in parallel (output is byte-identical
//       to the serial run). The I/O pipeline flags tune the storage layer
//       (--serial-io=1 selects the fully serial baseline; individual flags
//       override it); every setting produces a byte-identical EDB.
//       --checkpoint-dir persists restartable state there at iteration /
//       component boundaries (every N boundaries with --checkpoint-every);
//       --resume=1 continues a killed run from its newest valid checkpoint.
//       --io-retries enables bounded retry with exponential backoff for
//       transient (UNAVAILABLE) storage failures. See docs/OPERATIONS.md.
//
//   iolap_cli query --schema=s.csv --facts=f.csv --dim=<name> --node=<name>
//       [--func=sum|count|avg]
//       Allocates, then answers one aggregation under all four semantics.
//
//   iolap_cli serve --schema=s.csv --facts=f.csv --serve-workload=trace.txt
//       [--serve-threads=4] [--cache-slots=4096] [--min-partition-rows=4096]
//       [--shards=1] [--agg-index=0]
//       [--agg-index=1]   # answer cache misses from the aggregate index
//       [--edb-format=row|columnar] [--columnar-rows-per-extent=16384]
//       # columnar: scans read a compressed column-major mirror of the EDB
//       # (projected columns only; mutations fall back to row until the
//       # next compact). Answers are identical either way.
//       [--synopsis=1]    # maintain the moment synopsis for bounded answers
//       [--answer-mode=exact|bounded] [--delta=0.05]
//       # bounded: `agg` lines accept a probabilistic answer from the
//       # synopsis tier whenever its error bound fits --epsilon, which in
//       # bounded mode is the answer budget (the EM convergence epsilon
//       # then keeps its 0.005 default). `agg_bounded` lines carry their
//       # own epsilon/delta and ignore the global answer flags.
//       Builds the Extended Database behind the maintenance layer and
//       replays a query/mutation trace through the serving subsystem
//       (partitioned parallel scans + generation-versioned aggregate
//       cache). Trace grammar: serve/workload.h — one op per line,
//       '#' comments, strict parsing (a malformed line aborts the replay):
//         agg <sum|count|avg|min|max> [Dim=Node]...
//         agg_bounded <func> <epsilon> <delta> [Dim=Node]...
//         rollup <func> <Dim> <level> [Dim=Node]...
//         completions <fact_id>
//         update <fact_id> <measure>
//         insert <fact_id> <measure> [Dim=Node]...
//         delete <fact_id>
//         compact
//       The replay ends with per-op-type counts and tier statistics.
//
//   Every command also accepts [--metrics-out=m.json] [--trace-out=t.json]:
//   --metrics-out dumps a flat JSON object of run counters/gauges,
//   --trace-out records a Chrome trace_event span tree loadable in
//   Perfetto (https://ui.perfetto.dev) or chrome://tracing. With neither
//   flag, observability is fully disabled (zero-cost; identical I/O
//   counts).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "alloc/allocator.h"
#include "alloc/estimator.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "examples/example_util.h"
#include "io/csv.h"
#include "obs/obs.h"
#include "serve/query_service.h"
#include "serve/workload.h"

using namespace iolap;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: iolap_cli <sample|estimate|allocate|query|serve> "
               "[--flags]\n(see the header of tools/iolap_cli.cpp)\n");
  return 2;
}

AlgorithmKind ParseAlgorithm(const std::string& name) {
  if (name == "basic") return AlgorithmKind::kBasic;
  if (name == "independent") return AlgorithmKind::kIndependent;
  if (name == "block") return AlgorithmKind::kBlock;
  return AlgorithmKind::kTransitive;
}

PolicyKind ParsePolicy(const std::string& name) {
  if (name == "measure") return PolicyKind::kMeasure;
  if (name == "uniform") return PolicyKind::kUniform;
  return PolicyKind::kCount;
}

/// --io-retries / --io-retry-backoff-us: retry is a property of the storage
/// environment (every file in it), not of one allocation run, so it lives
/// on the DiskManager rather than in AllocationOptions.
void ApplyRetryPolicy(const Flags& flags, StorageEnv* env) {
  RetryPolicy policy;
  policy.max_retries = static_cast<int>(flags.GetInt("io-retries", 0));
  policy.backoff_initial_us = flags.GetInt("io-retry-backoff-us", 100);
  env->disk().SetRetryPolicy(policy);
}

IoPipelineOptions ParsePipeline(const Flags& flags) {
  IoPipelineOptions io;
  if (flags.GetInt("serial-io", 0) != 0) io = IoPipelineOptions::Serial();
  io.sort_threads =
      static_cast<int>(flags.GetInt("sort-threads", io.sort_threads));
  io.merge_block_pages = static_cast<int>(
      flags.GetInt("merge-block-pages", io.merge_block_pages));
  io.read_ahead_pages = static_cast<int>(
      flags.GetInt("read-ahead-pages", io.read_ahead_pages));
  io.batched_writeback =
      flags.GetInt("batched-writeback", io.batched_writeback ? 1 : 0) != 0;
  std::string backend = flags.GetString("io-backend", "");
  if (!backend.empty() && !ParseAsyncBackend(backend, &io.io_backend)) {
    std::fprintf(stderr,
                 "unknown --io-backend=%s (off|auto|uring|pread), keeping %s\n",
                 backend.c_str(), AsyncBackendName(io.io_backend));
  }
  io.plan_in_flight =
      static_cast<int>(flags.GetInt("plan-in-flight", io.plan_in_flight));
  return io;
}

int CmdSample(const Flags& flags) {
  std::string dir = flags.GetString("dir", ".");
  {
    std::ofstream schema(dir + "/schema.csv");
    schema << "# dimension,parent,node (top-down; empty parent = under ALL)\n"
              "Location,,East\nLocation,,West\n"
              "Location,East,MA\nLocation,East,NY\n"
              "Location,West,TX\nLocation,West,CA\n"
              "Automobile,,Sedan\nAutomobile,,Truck\n"
              "Automobile,Sedan,Civic\nAutomobile,Sedan,Camry\n"
              "Automobile,Truck,F150\nAutomobile,Truck,Sierra\n";
  }
  {
    std::ofstream facts(dir + "/facts.csv");
    facts << "fact_id,Location,Automobile,measure\n"
             "1,MA,Civic,100\n2,MA,Sierra,150\n3,NY,F150,100\n"
             "4,CA,Civic,175\n5,CA,Sierra,50\n6,MA,Sedan,100\n"
             "7,MA,Truck,120\n8,CA,ALL,160\n9,East,Truck,190\n"
             "10,West,Sedan,200\n11,ALL,Civic,80\n12,ALL,F150,120\n"
             "13,West,Civic,70\n14,West,Sierra,90\n";
  }
  std::printf("wrote %s/schema.csv and %s/facts.csv (paper Table 1)\n",
              dir.c_str(), dir.c_str());
  return 0;
}

int CmdEstimate(const Flags& flags) {
  StarSchema schema = Unwrap(LoadSchemaCsv(flags.GetString("schema", "")));
  StorageEnv env(MakeWorkDir("cli"), flags.GetInt("buffer-pages", 4096));
  TypedFile<FactRecord> facts =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  EstimateOptions options;
  options.sample_size = flags.GetInt("sample", 20'000);
  options.epsilon = flags.GetDouble("epsilon", 0.005);
  AllocationEstimate est =
      Unwrap(EstimateAllocation(env, schema, facts, options));
  std::printf("facts: %" PRId64 " (sampled %" PRId64 ")\n", facts.size(),
              est.sampled_facts);
  std::printf("predicted EM iterations (eps=%g): %d\n", options.epsilon,
              est.estimated_iterations);
  std::printf("sampled components: %" PRId64 ", largest: %" PRId64
              " tuples (growth exponent %.2f)\n",
              est.sample_components, est.sample_largest_component,
              est.growth_exponent);
  if (est.giant_component) {
    std::printf("GIANT component detected: projected size ~%" PRId64
                " tuples — size the buffer accordingly or expect "
                "Transitive's external path\n",
                est.estimated_largest_component);
  } else {
    std::printf("components look local (largest >= %" PRId64
                " tuples); Transitive should keep everything in memory\n",
                est.estimated_largest_component);
  }
  return 0;
}

int CmdAllocate(const Flags& flags) {
  StarSchema schema = Unwrap(LoadSchemaCsv(flags.GetString("schema", "")));
  StorageEnv env(MakeWorkDir("cli"), flags.GetInt("buffer-pages", 4096));
  ApplyRetryPolicy(flags, &env);
  TypedFile<FactRecord> facts =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  AllocationOptions options;
  options.policy = ParsePolicy(flags.GetString("policy", "count"));
  options.algorithm =
      ParseAlgorithm(flags.GetString("algorithm", "transitive"));
  options.epsilon = flags.GetDouble("epsilon", 0.005);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.io = ParsePipeline(flags);
  options.checkpoint.directory = flags.GetString("checkpoint-dir", "");
  options.checkpoint.every =
      static_cast<int>(flags.GetInt("checkpoint-every", 1));
  options.checkpoint.resume = flags.GetInt("resume", 0) != 0;
  const int64_t num_facts = facts.size();
  AllocationResult result =
      Unwrap(Allocator::Run(env, schema, &facts, options));
  std::string out = flags.GetString("out", "edb.csv");
  DieOnError(WriteEdbCsv(env, schema, result.edb, out));
  std::printf("%s over %" PRId64 " facts (%" PRId64 " imprecise): "
              "%d iterations, %" PRId64 " EDB rows -> %s\n",
              AlgorithmName(options.algorithm), num_facts,
              result.num_imprecise, result.iterations, result.edb.size(),
              out.c_str());
  std::printf("phases: prep %.2fs / alloc %.2fs (%" PRId64
              " I/Os) / emit %.2fs; unallocatable facts: %" PRId64 "\n",
              result.prep_seconds, result.alloc_seconds,
              result.alloc_io.total(), result.emit_seconds,
              result.unallocatable_facts);
  if (options.algorithm == AlgorithmKind::kTransitive) {
    std::printf("components: %" PRId64 " (largest %" PRId64 " tuples)\n",
                result.components.num_components,
                result.components.largest_component);
  }
  return 0;
}

int CmdQuery(const Flags& flags) {
  StarSchema schema = Unwrap(LoadSchemaCsv(flags.GetString("schema", "")));
  StorageEnv env(MakeWorkDir("cli"), flags.GetInt("buffer-pages", 4096));
  TypedFile<FactRecord> facts =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  TypedFile<FactRecord> original =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  AllocationOptions options;
  options.policy = ParsePolicy(flags.GetString("policy", "count"));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.io = ParsePipeline(flags);
  AllocationResult result =
      Unwrap(Allocator::Run(env, schema, &facts, options));

  QueryRegion region = QueryRegion::All();
  std::string dim_name = flags.GetString("dim", "");
  if (!dim_name.empty()) {
    int dim = -1;
    for (int d = 0; d < schema.num_dims(); ++d) {
      if (schema.dim(d).dimension_name() == dim_name) dim = d;
    }
    if (dim < 0) {
      std::fprintf(stderr, "unknown dimension '%s'\n", dim_name.c_str());
      return 2;
    }
    NodeId node =
        Unwrap(schema.dim(dim).FindNode(flags.GetString("node", "ALL")));
    region.With(dim, node);
  }
  std::string func_name = flags.GetString("func", "sum");
  AggregateFunc func = func_name == "count" ? AggregateFunc::kCount
                       : func_name == "avg" ? AggregateFunc::kAverage
                                            : AggregateFunc::kSum;
  QueryEngine engine(&env, &schema, &result.edb, &original);
  struct Row {
    const char* label;
    ImpreciseSemantics semantics;
  } rows[] = {
      {"allocation-weighted", ImpreciseSemantics::kAllocationWeighted},
      {"none (precise only)", ImpreciseSemantics::kNone},
      {"contains", ImpreciseSemantics::kContains},
      {"overlaps", ImpreciseSemantics::kOverlaps},
  };
  std::printf("%s(%s) over %s=%s:\n", func_name.c_str(), "measure",
              dim_name.empty() ? "ALL" : dim_name.c_str(),
              flags.GetString("node", "ALL").c_str());
  for (const Row& row : rows) {
    AggregateResult r = Unwrap(engine.Aggregate(region, func, row.semantics));
    std::printf("  %-22s %14.4f\n", row.label, r.value);
  }
  return 0;
}

const char* FuncName(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kSum: return "sum";
    case AggregateFunc::kCount: return "count";
    case AggregateFunc::kAverage: return "avg";
    case AggregateFunc::kMin: return "min";
    case AggregateFunc::kMax: return "max";
  }
  return "?";
}

/// Replays one parsed trace op against the service. `catalog` mirrors the
/// current fact table so update/delete can supply the stored record the
/// maintenance layer expects; `spec` is the global answer contract applied
/// to plain `agg` lines (agg_bounded lines carry their own).
Status ReplayOp(const StarSchema& schema, QueryService& service,
                std::unordered_map<FactId, FactRecord>& catalog,
                const AnswerSpec& spec, const TraceOp& op) {
  switch (op.type) {
    case TraceOpType::kAgg:
    case TraceOpType::kAggBounded: {
      const AnswerSpec op_spec =
          op.type == TraceOpType::kAggBounded
              ? AnswerSpec::Bounded(op.epsilon, op.delta)
              : spec;
      int64_t gen = 0;
      AnswerStats as;
      IOLAP_ASSIGN_OR_RETURN(
          AggregateResult r,
          service.Aggregate(op.region, op.func, op_spec, &as, &gen));
      std::printf("%s %-5s -> %14.4f  (gen %" PRId64 ", tier %s, bound %g)\n",
                  TraceOpName(op.type), FuncName(op.func), r.value, gen,
                  AnswerTierName(as.tier), as.bound);
      return Status::Ok();
    }
    case TraceOpType::kRollUp: {
      int64_t gen = 0;
      bool hit = false;
      IOLAP_ASSIGN_OR_RETURN(
          auto groups,
          service.RollUp(op.region, op.dim, op.level, op.func, &gen, &hit));
      std::printf("rollup %s by %s@%d -> %zu groups (gen %" PRId64 ", %s)\n",
                  FuncName(op.func),
                  schema.dim(op.dim).dimension_name().c_str(), op.level,
                  groups.size(), gen, hit ? "hit" : "miss");
      const auto& nodes = schema.dim(op.dim).nodes_at_level(op.level);
      for (size_t i = 0; i < groups.size(); ++i) {
        std::printf("  %-12s %14.4f\n",
                    schema.dim(op.dim).name(nodes[i]).c_str(),
                    groups[i].value);
      }
      return Status::Ok();
    }
    case TraceOpType::kCompletions: {
      int64_t gen = 0;
      IOLAP_ASSIGN_OR_RETURN(auto rows,
                             service.CompletionsOf(op.fact_id, &gen));
      std::printf("completions %" PRId64 " -> %zu cells (gen %" PRId64 ")\n",
                  op.fact_id, rows.size(), gen);
      for (const EdbRecord& rec : rows) {
        std::printf("  weight %.4f measure %.2f\n", rec.weight, rec.measure);
      }
      return Status::Ok();
    }
    case TraceOpType::kUpdate: {
      auto it = catalog.find(op.fact_id);
      if (it == catalog.end()) {
        return Status::InvalidArgument("update: unknown fact id");
      }
      IOLAP_RETURN_IF_ERROR(
          service.ApplyUpdates({FactUpdate{it->second, op.measure}}));
      it->second.measure = op.measure;
      std::printf("update %" PRId64 " -> gen %" PRId64 "\n", op.fact_id,
                  service.generation());
      return Status::Ok();
    }
    case TraceOpType::kInsert: {
      FactRecord f;
      f.fact_id = op.fact_id;
      f.measure = op.measure;
      for (int d = 0; d < schema.num_dims(); ++d) {
        f.node[d] = op.region.node[d];
        f.level[d] = static_cast<uint8_t>(
            f.node[d] == schema.dim(d).root()
                ? schema.dim(d).num_levels()
                : schema.dim(d).level(f.node[d]));
      }
      IOLAP_RETURN_IF_ERROR(service.InsertFacts({f}));
      catalog[f.fact_id] = f;
      std::printf("insert %" PRId64 " -> gen %" PRId64 "\n", f.fact_id,
                  service.generation());
      return Status::Ok();
    }
    case TraceOpType::kDelete: {
      auto it = catalog.find(op.fact_id);
      if (it == catalog.end()) {
        return Status::InvalidArgument("delete: unknown fact id");
      }
      IOLAP_RETURN_IF_ERROR(service.DeleteFacts({it->second}));
      catalog.erase(it);
      std::printf("delete %" PRId64 " -> gen %" PRId64 "\n", op.fact_id,
                  service.generation());
      return Status::Ok();
    }
    case TraceOpType::kCompact: {
      IOLAP_ASSIGN_OR_RETURN(int64_t removed, service.Compact());
      std::printf("compact -> removed %" PRId64 " tombstones\n", removed);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unhandled workload op");
}

int CmdServe(const Flags& flags) {
  StarSchema schema = Unwrap(LoadSchemaCsv(flags.GetString("schema", "")));
  StorageEnv env(MakeWorkDir("cli"), flags.GetInt("buffer-pages", 4096));
  TypedFile<FactRecord> facts =
      Unwrap(LoadFactsCsv(env, schema, flags.GetString("facts", "")));
  std::unordered_map<FactId, FactRecord> catalog;
  {
    auto cursor = facts.Scan(env.pool());
    FactRecord f;
    while (!cursor.done()) {
      DieOnError(cursor.Next(&f));
      catalog[f.fact_id] = f;
    }
  }
  // The answer contract for plain `agg` lines. In bounded mode --epsilon is
  // the answer budget, so the EM epsilon keeps its default.
  AnswerSpec spec = AnswerSpec::Exact();
  const std::string answer_mode = flags.GetString("answer-mode", "exact");
  if (answer_mode == "bounded") {
    spec = AnswerSpec::Bounded(flags.GetDouble("epsilon", 0.0),
                               flags.GetDouble("delta", 0.05));
  } else if (answer_mode != "exact") {
    std::fprintf(stderr,
                 "unknown --answer-mode=%s (exact|bounded), keeping exact\n",
                 answer_mode.c_str());
  }

  AllocationOptions options;
  options.policy = ParsePolicy(flags.GetString("policy", "count"));
  if (answer_mode != "bounded") {
    options.epsilon = flags.GetDouble("epsilon", 0.005);
  }
  auto manager =
      Unwrap(MaintenanceManager::Build(env, schema, &facts, options));

  ServeOptions sopts;
  sopts.num_threads = static_cast<int>(flags.GetInt("serve-threads", 4));
  sopts.min_partition_rows = flags.GetInt("min-partition-rows", 4096);
  sopts.cache_slots = flags.GetInt("cache-slots", 4096);
  sopts.agg_index = flags.GetInt("agg-index", 0) != 0;
  sopts.synopsis = flags.GetInt("synopsis", 1) != 0;
  sopts.num_shards = static_cast<int>(flags.GetInt("shards", 1));
  const std::string edb_format = flags.GetString("edb-format", "row");
  if (edb_format == "columnar") {
    sopts.edb_format = EdbFormat::kColumnar;
  } else if (edb_format != "row") {
    std::fprintf(stderr,
                 "unknown --edb-format=%s (row|columnar), keeping row\n",
                 edb_format.c_str());
  }
  sopts.columnar_rows_per_extent =
      flags.GetInt("columnar-rows-per-extent", 16384);
  QueryService service(manager.get(), sopts);

  std::string workload = flags.GetString("serve-workload", "");
  if (workload.empty()) {
    std::fprintf(stderr, "serve requires --serve-workload=<trace file>\n");
    return 2;
  }
  std::ifstream in(workload);
  if (!in) {
    std::fprintf(stderr, "cannot open workload '%s'\n", workload.c_str());
    return 2;
  }
  int64_t op_counts[kNumTraceOpTypes] = {};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    TraceOp op;
    Result<bool> parsed = ParseTraceOp(schema, line, &op);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s:%d: %s\n", workload.c_str(), line_no,
                   parsed.status().message().c_str());
      return 2;
    }
    if (!*parsed) continue;  // blank / comment line
    ++op_counts[static_cast<int>(op.type)];
    DieOnError(ReplayOp(schema, service, catalog, spec, op));
  }
  std::printf("served with %d shard(s), columnar mirror %s\n",
              service.num_shards(),
              service.columnar_active() ? "active" : "off");
  std::printf("ops:");
  for (int t = 0; t < kNumTraceOpTypes; ++t) {
    if (op_counts[t] > 0) {
      std::printf(" %s=%" PRId64, TraceOpName(static_cast<TraceOpType>(t)),
                  op_counts[t]);
    }
  }
  std::printf("\n");
  if (service.cache() != nullptr) {
    AggregateCache::Stats stats = service.cache()->stats();
    std::printf("served at generation %" PRId64
                ": cache hits %" PRId64 " / misses %" PRId64
                " (evicted %" PRId64 ", invalidated %" PRId64 ")\n",
                service.generation(), stats.hits, stats.misses,
                stats.evicted_entries, stats.invalidated_entries);
  }
  if (service.agg_index() != nullptr) {
    AggIndex::Stats istats = service.agg_index()->stats();
    std::printf("agg index: %" PRId64 " probes over %" PRId64
                " cells / %" PRId64 " pages (height %" PRId64
                "), %" PRId64 " builds, %" PRId64 " refreshes, %" PRId64
                " cells patched\n",
                istats.probes, istats.cells, istats.pages, istats.height,
                istats.builds, istats.refreshes, istats.cells_patched);
  }
  if (service.synopsis() != nullptr) {
    SynopsisStore::Stats sstats = service.synopsis()->stats();
    std::printf("synopsis: %" PRId64 " estimates (%" PRId64
                " exact), %" PRId64 " builds, %" PRId64
                " commits, %" PRId64 " entries patched\n",
                sstats.estimates, sstats.exact_hits, sstats.builds,
                sstats.commits, sstats.patched);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  ScopedObservability obs(flags.GetString("metrics-out", ""),
                          flags.GetString("trace-out", ""));
  std::string command = argv[1];
  int rc = 2;
  if (command == "sample") rc = CmdSample(flags);
  else if (command == "estimate") rc = CmdEstimate(flags);
  else if (command == "allocate") rc = CmdAllocate(flags);
  else if (command == "query") rc = CmdQuery(flags);
  else if (command == "serve") rc = CmdServe(flags);
  else return Usage();
  DieOnError(obs.Finish());
  return rc;
}
