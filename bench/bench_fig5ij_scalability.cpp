// Figures 5i / 5j: scalability — larger tables with proportionally larger
// buffers, Block vs Transitive only (the paper drops Independent here
// because it is clearly dominated).
//
// The paper runs two 5-million-tuple datasets (200 MB, 30% imprecise) at
// ε = 0.005 and sweeps the buffer. Default here is 1M facts for a quick
// run; pass --facts=5000000 for the paper-scale experiment. Paper shapes:
// the relative picture from the smaller experiment persists at scale —
// Transitive below Block at this ε, both degrading mildly as the buffer
// shrinks.

#include <cstdio>

#include "bench/bench_util.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts = flags.GetInt("facts", 500'000);
  const double epsilon = flags.GetDouble("epsilon", 0.005);
  const int64_t data_pages = EstimateDataPages(facts, 0.3);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  std::printf("facts=%lld, eps=%g, working set ~%lld pages (~%lld MB)\n",
              static_cast<long long>(facts), epsilon,
              static_cast<long long>(data_pages),
              static_cast<long long>(data_pages * 4096 / (1 << 20)));

  // The paper's 4MB..50MB sweep against 200MB: ~2%, 10%, 25%.
  const double kFractions[] = {0.02, 0.10, 0.25};
  const char* kLabels[] = {"2%", "10%", "25%"};

  struct Config {
    const char* title;
    DatasetSpec spec;
  } configs[] = {
      {"Figure 5i: scalability, automotive-like composition",
       AutomotiveLikeSpec(facts, 31)},
      {"Figure 5j: scalability, ALL-allowed composition",
       AllSyntheticSpec(facts, 32)},
  };

  for (const Config& config : configs) {
    PrintHeader(config.title);
    std::printf("%-8s %-12s %8s %10s %14s %12s %12s\n", "buffer", "algorithm",
                "iters", "groups", "alloc_io", "alloc_sec", "total_sec");
    for (int b = 0; b < 3; ++b) {
      int64_t buffer_pages = std::max<int64_t>(
          32, static_cast<int64_t>(data_pages * kFractions[b]));
      for (AlgorithmKind algo :
           {AlgorithmKind::kBlock, AlgorithmKind::kTransitive}) {
        AllocationResult r = RunOnce(schema, config.spec, buffer_pages, algo,
                                     epsilon, "fig5ij");
        std::printf("%-8s %-12s %8d %10d %14lld %12.3f %12.3f\n", kLabels[b],
                    AlgorithmName(algo), r.iterations, r.num_groups,
                    static_cast<long long>(r.alloc_io.total()),
                    r.alloc_seconds, r.total_seconds());
      }
    }
  }
  return 0;
}
