// Extension experiment: the approximate answer tier (src/synopsis,
// serve/answer.h).
//
// Generates an `agg_bounded` serve-workload trace over the automotive-like
// dataset (grand totals, one probe per level-2 node — those are marginal
// regions the synopsis answers exactly — and cross-dimension probes whose
// answers carry a real probabilistic bound), replays it through a
// QueryService with the synopsis on and the cache off, and replays every op
// twice: once under the exact contract and once under the bounded one. A
// batch of seeded measure updates runs first so the synopsis being probed is
// the incrementally-maintained one, not a fresh build.
//
// Measured per op, cold (the EDB file is evicted before every query, so
// IoStats::page_reads counts exactly the data pages the answer demanded):
// data pages and latency in both modes, the answering tier, and the observed
// error |bounded - exact| against the promised bound. A second phase checks
// the degenerate contract across 3 seeds x {1, 4} shards: bounded(eps = 0)
// answers must be memcmp-identical to exact-mode answers.
//
// Headline numbers (asserted by CI from BENCH_approx.json):
//   * bounds_hold        — bound-violation fraction <= delta (expected 0).
//   * tier_hit_rate > 0  — the synopsis actually answers.
//   * pages_ok           — bounded-mode p50 data pages strictly below the
//                          exact-mode miss p50 (synopsis answers do no I/O).
//   * eps0_matches_exact — bounded(0) == exact, bit for bit.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "edb/maintenance.h"
#include "serve/query_service.h"
#include "serve/workload.h"

using namespace iolap;

namespace {

constexpr AggregateFunc kAllFuncs[] = {AggregateFunc::kSum,
                                       AggregateFunc::kCount,
                                       AggregateFunc::kAverage,
                                       AggregateFunc::kMin,
                                       AggregateFunc::kMax};

const char* FuncName(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kSum:
      return "sum";
    case AggregateFunc::kCount:
      return "count";
    case AggregateFunc::kAverage:
      return "avg";
    case AggregateFunc::kMin:
      return "min";
    case AggregateFunc::kMax:
      return "max";
  }
  return "?";
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The probe trace, in the serve-workload grammar (serve/workload.h): every
/// line is an `agg_bounded` op. Marginal probes (<= 1 constrained dimension)
/// dominate by construction — the synopsis answers those exactly — with a
/// tail of cross-dimension probes that exercise the probabilistic bounds.
std::vector<std::string> MakeTrace(const StarSchema& schema, double epsilon,
                                   double delta) {
  const std::string budget =
      " " + FormatDouble(epsilon) + " " + FormatDouble(delta);
  std::vector<std::string> lines;
  lines.push_back("# generated agg_bounded probe trace");
  for (AggregateFunc func : kAllFuncs) {
    lines.push_back(std::string("agg_bounded ") + FuncName(func) + budget);
  }
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (schema.dim(d).num_levels() < 3) continue;
    for (NodeId node : schema.dim(d).nodes_at_level(2)) {
      lines.push_back("agg_bounded sum" + budget + " " +
                      schema.dim(d).dimension_name() + "=" +
                      schema.dim(d).name(node));
    }
  }
  // Cross probes: pair the i-th level-2 node of dimension 0 with the i-th of
  // dimension 1, cycling sum/count/avg.
  const auto& d0 = schema.dim(0).nodes_at_level(2);
  const auto& d1 = schema.dim(1).nodes_at_level(2);
  const size_t pairs = std::min<size_t>({12, d0.size(), d1.size()});
  const AggregateFunc cycle[] = {AggregateFunc::kSum, AggregateFunc::kCount,
                                 AggregateFunc::kAverage};
  for (size_t i = 0; i < pairs; ++i) {
    lines.push_back(std::string("agg_bounded ") + FuncName(cycle[i % 3]) +
                    budget + " " + schema.dim(0).dimension_name() + "=" +
                    schema.dim(0).name(d0[i]) + " " +
                    schema.dim(1).dimension_name() + "=" +
                    schema.dim(1).name(d1[i]));
  }
  return lines;
}

int64_t Percentile50(std::vector<int64_t> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts_n = flags.GetInt("facts", 40'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 4096);
  const int64_t num_shards = flags.GetInt("shards", 4);
  const double delta = flags.GetDouble("delta", 0.05);
  // 0 = auto: a fraction of the grand-total SUM, so cross-probe bounds
  // (roughly one level-2 slice's mass) fit and marginal ones trivially do.
  const double epsilon_flag = flags.GetDouble("epsilon", 0);
  JsonWriter json(flags.GetString("json", "BENCH_approx.json"));

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec = AutomotiveLikeSpec(facts_n, 23);
  StorageEnv env(MakeWorkDir("approx_bench"), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  std::vector<FactRecord> catalog;
  {
    auto cursor = facts.Scan(env.pool());
    FactRecord f;
    while (!cursor.done()) {
      DieOnError(cursor.Next(&f));
      catalog.push_back(f);
    }
  }
  AllocationOptions options;
  auto manager =
      Unwrap(MaintenanceManager::Build(env, schema, &facts, options));

  ServeOptions sopts;
  sopts.synopsis = true;
  sopts.cache_slots = 0;  // every query is a miss: tiers are synopsis vs scan
  sopts.num_shards = static_cast<int>(num_shards);
  QueryService service(manager.get(), sopts);

  // Maintain before measuring: the probed synopsis must be the incrementally
  // patched one. Updates also widen the min/max envelopes, so the min/max
  // grand totals below genuinely fall through to the scan tier.
  Rng rng(777);
  for (int i = 0; i < 48 && !catalog.empty(); ++i) {
    FactRecord& f = catalog[rng.Uniform(catalog.size())];
    const double measure = 1.0 + static_cast<double>(rng.Uniform(500));
    DieOnError(service.ApplyUpdates({FactUpdate{f, measure}}));
    f.measure = measure;
  }

  const AggregateResult grand = Unwrap(service.Aggregate(
      QueryRegion::All(), AggregateFunc::kSum, AnswerSpec::Exact()));
  const double epsilon =
      epsilon_flag > 0 ? epsilon_flag
                       : 0.35 * std::max(1.0, std::abs(grand.value));

  const std::vector<std::string> trace = MakeTrace(schema, epsilon, delta);
  std::vector<TraceOp> ops;
  for (const std::string& line : trace) {
    TraceOp op;
    Result<bool> parsed = ParseTraceOp(schema, line, &op);
    DieOnError(parsed.status());
    if (parsed.value()) ops.push_back(op);
  }
  const int64_t num_probes = static_cast<int64_t>(ops.size());
  std::printf("facts=%lld edb_rows=%lld shards=%d probes=%lld eps=%.3g "
              "delta=%.3g\n",
              static_cast<long long>(facts_n),
              static_cast<long long>(manager->edb().size()),
              service.num_shards(), static_cast<long long>(num_probes),
              epsilon, delta);

  const auto evict = [&] {
    (void)env.pool().EvictFile(manager->edb().file_id());
  };

  std::vector<int64_t> exact_pages, bounded_pages;
  double exact_secs = 0, bounded_secs = 0;
  int64_t synopsis_answered = 0, scan_fallbacks = 0, violations = 0;
  double worst_excess = 0;  // max over probes of |err| - bound (<= 0 is good)
  for (const TraceOp& op : ops) {
    evict();
    const int64_t e0 = env.disk().stats().page_reads;
    Stopwatch exact_watch;
    const AggregateResult exact =
        Unwrap(service.Aggregate(op.region, op.func, AnswerSpec::Exact()));
    exact_secs += exact_watch.ElapsedSeconds();
    exact_pages.push_back(env.disk().stats().page_reads - e0);

    evict();
    const int64_t b0 = env.disk().stats().page_reads;
    AnswerStats as;
    Stopwatch bounded_watch;
    const AggregateResult bounded = Unwrap(service.Aggregate(
        op.region, op.func, AnswerSpec::Bounded(op.epsilon, op.delta), &as));
    bounded_secs += bounded_watch.ElapsedSeconds();
    bounded_pages.push_back(env.disk().stats().page_reads - b0);

    if (as.tier == AnswerTier::kSynopsis) {
      ++synopsis_answered;
      const double err = std::abs(bounded.value - exact.value);
      const double tol = 1e-9 * std::max(1.0, std::abs(exact.value));
      worst_excess = std::max(worst_excess, err - as.bound);
      if (err > as.bound + tol) ++violations;
    } else if (as.tier == AnswerTier::kScan) {
      ++scan_fallbacks;
    }
  }

  const double tier_hit_rate =
      num_probes > 0
          ? static_cast<double>(synopsis_answered) /
                static_cast<double>(num_probes)
          : 0;
  const double violation_fraction =
      synopsis_answered > 0 ? static_cast<double>(violations) /
                                  static_cast<double>(synopsis_answered)
                            : 0;
  const bool bounds_hold = violation_fraction <= delta;
  const int64_t exact_p50 = Percentile50(exact_pages);
  const int64_t bounded_p50 = Percentile50(bounded_pages);
  const bool pages_ok = bounded_p50 < exact_p50;
  const double per_probe = num_probes > 0 ? static_cast<double>(num_probes)
                                          : 1;
  const double exact_us = exact_secs * 1e6 / per_probe;
  const double bounded_us = bounded_secs * 1e6 / per_probe;

  // Degenerate contract: bounded(eps = 0) takes literally the exact path, so
  // its answers must be bit-identical, across seeds and shard layouts.
  const int64_t eps0_facts = flags.GetInt("facts_eps0", 8'000);
  bool eps0_matches_exact = true;
  int64_t eps0_configs = 0, eps0_probes = 0;
  for (uint64_t seed : {101u, 102u, 103u}) {
    for (int shards : {1, 4}) {
      StorageEnv env0(MakeWorkDir("approx_bench_eps0"), 1024);
      TypedFile<FactRecord> facts0 = Unwrap(
          GenerateFacts(env0, schema, AutomotiveLikeSpec(eps0_facts, seed)));
      auto manager0 =
          Unwrap(MaintenanceManager::Build(env0, schema, &facts0, options));
      ServeOptions opts0;
      opts0.synopsis = true;
      opts0.num_shards = shards;
      QueryService service0(manager0.get(), opts0);
      std::vector<QueryRegion> regions = {QueryRegion::All()};
      for (NodeId node : schema.dim(0).nodes_at_level(2)) {
        regions.push_back(QueryRegion::All().With(0, node));
      }
      regions.push_back(
          QueryRegion::All()
              .With(0, schema.dim(0).nodes_at_level(2).front())
              .With(1, schema.dim(1).nodes_at_level(2).front()));
      for (const QueryRegion& region : regions) {
        for (AggregateFunc func : kAllFuncs) {
          const AggregateResult exact =
              Unwrap(service0.Aggregate(region, func, AnswerSpec::Exact()));
          const AggregateResult eps0 = Unwrap(
              service0.Aggregate(region, func, AnswerSpec::Bounded(0.0)));
          if (std::memcmp(&exact, &eps0, sizeof(AggregateResult)) != 0) {
            eps0_matches_exact = false;
          }
          ++eps0_probes;
        }
      }
      ++eps0_configs;
    }
  }

  const SynopsisStore::Stats sstats = service.synopsis()->stats();
  std::printf("%-14s %14s %12s\n", "mode", "p50_pages", "avg_us");
  std::printf("%-14s %14lld %12.2f\n", "exact_miss",
              static_cast<long long>(exact_p50), exact_us);
  std::printf("%-14s %14lld %12.2f\n", "bounded",
              static_cast<long long>(bounded_p50), bounded_us);
  std::printf(
      "tier_hit_rate=%.3f (synopsis=%lld scan=%lld) violations=%lld/%lld "
      "worst_excess=%.3g bounds_hold=%s pages_ok=%s\n",
      tier_hit_rate, static_cast<long long>(synopsis_answered),
      static_cast<long long>(scan_fallbacks),
      static_cast<long long>(violations),
      static_cast<long long>(synopsis_answered), worst_excess,
      bounds_hold ? "true" : "false", pages_ok ? "true" : "false");
  std::printf("eps0: %lld probes over %lld configs, matches_exact=%s\n",
              static_cast<long long>(eps0_probes),
              static_cast<long long>(eps0_configs),
              eps0_matches_exact ? "true" : "false");

  json.BeginObject();
  json.Field("phase", "bounded");
  json.Field("facts", facts_n);
  json.Field("shards", num_shards);
  json.Field("queries", num_probes);
  json.Field("epsilon", epsilon);
  json.Field("delta", delta);
  json.Field("synopsis_answered", synopsis_answered);
  json.Field("scan_fallbacks", scan_fallbacks);
  json.Field("tier_hit_rate", tier_hit_rate);
  json.Field("violations", violations);
  json.Field("violation_fraction", violation_fraction);
  json.Field("worst_excess", worst_excess);
  json.Field("bounds_hold", bounds_hold);
  json.Field("synopsis_p50_pages", bounded_p50);
  json.Field("exact_miss_p50_pages", exact_p50);
  json.Field("pages_ok", pages_ok);
  json.Field("exact_avg_us", exact_us);
  json.Field("bounded_avg_us", bounded_us);
  json.Field("synopsis_commits", sstats.commits);
  json.Field("synopsis_estimates", sstats.estimates);
  json.EndObject();
  json.BeginObject();
  json.Field("phase", "eps0");
  json.Field("facts", eps0_facts);
  json.Field("configs", eps0_configs);
  json.Field("queries", eps0_probes);
  json.Field("eps0_matches_exact", eps0_matches_exact);
  json.EndObject();
  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return (bounds_hold && tier_hit_rate > 0 && pages_ok && eps0_matches_exact)
             ? 0
             : 1;
}
