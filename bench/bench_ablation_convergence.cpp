// Ablations on the design choices DESIGN.md calls out:
//
//  A. Transitive's per-component early convergence (Section 11.1's "further
//     optimization ... only the necessary number of iterations are
//     performed on any given component") — on vs off.
//  B. The choice of cell-scan order for Block: sliding-window peak size vs
//     the precomputed partition-size bound (Theorem 4's memory guarantee).
//  C. Basic (in-memory, whole graph) vs Transitive's per-component
//     processing on the same in-memory budget.

#include <cstdio>

#include "alloc/estimator.h"
#include "alloc/preprocess.h"
#include "bench/bench_util.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts_n = flags.GetInt("facts", 150'000);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());

  PrintHeader("A. Transitive early convergence (eps=0.005)");
  std::printf("%-28s %12s %14s %12s\n", "variant", "total_iters",
              "max_comp_iters", "alloc_sec");
  for (bool early : {true, false}) {
    StorageEnv env(MakeWorkDir("ablationA"), 8192);
    TypedFile<FactRecord> facts =
        Unwrap(GenerateFacts(env, schema, AutomotiveLikeSpec(facts_n)));
    AllocationOptions options;
    options.algorithm = AlgorithmKind::kTransitive;
    options.epsilon = 0.005;
    options.early_convergence = early;
    // Without early convergence every component runs a fixed budget the
    // global pass would have needed; use the converged run's max as that
    // budget for a fair comparison.
    if (!early) options.max_iterations = 8;
    AllocationResult r = Unwrap(Allocator::Run(env, schema, &facts, options));
    std::printf("%-28s %12lld %14d %12.3f\n",
                early ? "per-component convergence" : "fixed global budget",
                static_cast<long long>(
                    r.components.total_component_iterations),
                r.iterations, r.alloc_seconds);
  }

  PrintHeader("B. Window peak vs partition-size bound (Block, tight buffer)");
  {
    StorageEnv env(MakeWorkDir("ablationB"), 64);
    TypedFile<FactRecord> facts =
        Unwrap(GenerateFacts(env, schema, AllSyntheticSpec(facts_n)));
    AllocationOptions options;
    PreparedDataset data =
        Unwrap(PrepareDataset(env, schema, &facts, options));
    int64_t partition_total = 0;
    for (const SummaryTableInfo& t : data.tables) {
      partition_total += t.partition_records;
    }
    std::printf("summary tables: %zu, sum of partition sizes: %lld records "
                "(%lld pages)\n",
                data.tables.size(), static_cast<long long>(partition_total),
                static_cast<long long>(partition_total /
                                       TypedFile<ImpreciseRecord>::kRecordsPerPage));
  }
  for (int64_t buffer : {64, 256, 2048}) {
    AllocationResult r = RunOnce(schema, AllSyntheticSpec(facts_n), buffer,
                                 AlgorithmKind::kBlock, 0.05, "ablationB");
    std::printf("buffer=%-5lld groups=%-3d peak_window=%-8lld alloc_io=%lld\n",
                static_cast<long long>(buffer), r.num_groups,
                static_cast<long long>(r.peak_window_records),
                static_cast<long long>(r.alloc_io.total()));
  }

  PrintHeader(
      "C. Sampling estimator (Section 12 future work) vs ground truth");
  std::printf("%-12s %10s %12s %14s %14s %8s\n", "dataset", "sample",
              "est_iters/act", "est_largest", "act_largest", "giant?");
  for (bool with_all : {false, true}) {
    StorageEnv env(MakeWorkDir("ablationD"), 8192);
    DatasetSpec spec =
        with_all ? AllSyntheticSpec(facts_n) : AutomotiveLikeSpec(facts_n);
    TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
    EstimateOptions est_options;
    est_options.sample_size = facts_n / 8;
    AllocationEstimate est =
        Unwrap(EstimateAllocation(env, schema, facts, est_options));
    AllocationOptions options;
    options.algorithm = AlgorithmKind::kTransitive;
    AllocationResult actual =
        Unwrap(Allocator::Run(env, schema, &facts, options));
    std::printf("%-12s %10lld %8d/%-4d %14lld %14lld %8s\n",
                with_all ? "with-ALL" : "automotive",
                static_cast<long long>(est.sampled_facts),
                est.estimated_iterations, actual.iterations,
                static_cast<long long>(est.estimated_largest_component),
                static_cast<long long>(actual.components.largest_component),
                est.giant_component
                    ? "yes"
                    : (est.largest_is_lower_bound ? "no (LB)" : "no"));
  }

  PrintHeader("D. Basic (whole graph in memory) vs Transitive");
  std::printf("%-12s %10s %12s %12s\n", "algorithm", "iters", "alloc_sec",
              "components");
  for (AlgorithmKind algo :
       {AlgorithmKind::kBasic, AlgorithmKind::kTransitive}) {
    AllocationResult r = RunOnce(schema, AutomotiveLikeSpec(facts_n), 16384,
                                 algo, 0.005, "ablationC");
    std::printf("%-12s %10d %12.3f %12lld\n", AlgorithmName(algo),
                r.iterations, r.alloc_seconds,
                static_cast<long long>(r.components.num_components));
  }
  return 0;
}
