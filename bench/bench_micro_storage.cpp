// Substrate micro-benchmarks (google-benchmark): buffer-pool pin latency,
// external-sort throughput, R-tree search, and hierarchy ancestor lookup —
// the hot primitives under every allocation pass.

#include <benchmark/benchmark.h>

#include "alloc/allocator.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/query.h"
#include "examples/example_util.h"
#include "rtree/rtree.h"
#include "storage/external_sort.h"
#include "storage/storage_env.h"

namespace iolap {
namespace {

struct Rec {
  int64_t key;
  int64_t payload;
};

void BM_BufferPoolPinHit(benchmark::State& state) {
  StorageEnv env(MakeWorkDir("micro_pin"), 64);
  auto file = Unwrap(TypedFile<Rec>::Create(env.disk(), "t"));
  for (int i = 0; i < 1000; ++i) {
    DieOnError(file.Append(env.pool(), Rec{i, i}));
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto guard = env.pool().Pin(file.file_id(), i % file.size_in_pages());
    benchmark::DoNotOptimize(guard->data());
    ++i;
  }
}
BENCHMARK(BM_BufferPoolPinHit);

void BM_BufferPoolPinMissEvict(benchmark::State& state) {
  StorageEnv env(MakeWorkDir("micro_miss"), 4);
  auto file = Unwrap(TypedFile<Rec>::Create(env.disk(), "t"));
  const int64_t pages = 64;
  for (int64_t i = 0; i < pages * TypedFile<Rec>::kRecordsPerPage; ++i) {
    DieOnError(file.Append(env.pool(), Rec{i, i}));
  }
  DieOnError(env.pool().FlushAll());
  int64_t i = 0;
  for (auto _ : state) {
    auto guard = env.pool().Pin(file.file_id(), i % pages);
    benchmark::DoNotOptimize(guard->data());
    i += 7;  // stride defeats the tiny pool
  }
}
BENCHMARK(BM_BufferPoolPinMissEvict);

void BM_ExternalSort(benchmark::State& state) {
  const int64_t n = state.range(0);
  StorageEnv env(MakeWorkDir("micro_sort"), 64);
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    auto file = Unwrap(TypedFile<Rec>::Create(env.disk(), "s"));
    auto appender = file.MakeAppender(env.pool());
    for (int64_t i = 0; i < n; ++i) {
      DieOnError(appender.Append(Rec{static_cast<int64_t>(rng.Next()), i}));
    }
    appender.Close();
    state.ResumeTiming();
    ExternalSorter<Rec> sorter(&env.disk(), &env.pool(), 16);
    DieOnError(sorter.Sort(
        &file, [](const Rec& a, const Rec& b) { return a.key < b.key; }));
    state.PauseTiming();
    DieOnError(env.pool().EvictFile(file.file_id()));
    DieOnError(env.disk().DeleteFile(file.file_id()));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSort)->Arg(10'000)->Arg(100'000);

void BM_RTreeSearch(benchmark::State& state) {
  RTree tree(4, 16);
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    Rect r;
    for (int d = 0; d < 4; ++d) {
      r.lo[d] = static_cast<int32_t>(rng.Uniform(1000));
      r.hi[d] = r.lo[d] + static_cast<int32_t>(rng.Uniform(20));
    }
    tree.Insert(r, i);
  }
  std::vector<int64_t> hits;
  for (auto _ : state) {
    Rect q;
    for (int d = 0; d < 4; ++d) {
      q.lo[d] = static_cast<int32_t>(rng.Uniform(1000));
      q.hi[d] = q.lo[d] + 10;
    }
    hits.clear();
    tree.Search(q, &hits);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeSearch)->Arg(1'000)->Arg(50'000);

void BM_EdbAggregate(benchmark::State& state) {
  StorageEnv env(MakeWorkDir("micro_query"), 4096);
  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = state.range(0);
  spec.seed = 11;
  auto facts = Unwrap(GenerateFacts(env, schema, spec));
  AllocationOptions options;
  AllocationResult result = Unwrap(Allocator::Run(env, schema, &facts, options));
  QueryEngine engine(&env, &schema, &result.edb);
  const Hierarchy& location = schema.dim(3);
  Rng rng(3);
  for (auto _ : state) {
    NodeId region = location.NodeAt(
        3, static_cast<int32_t>(rng.Uniform(location.num_nodes_at_level(3))));
    AggregateResult r = Unwrap(engine.Aggregate(
        QueryRegion::All().With(3, region), AggregateFunc::kSum));
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(state.iterations() * result.edb.size());
}
BENCHMARK(BM_EdbAggregate)->Arg(20'000)->Unit(benchmark::kMillisecond);

void BM_LeafAncestorOrdinal(benchmark::State& state) {
  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  const Hierarchy& location = schema.dim(3);
  Rng rng(5);
  for (auto _ : state) {
    LeafId leaf = static_cast<LeafId>(rng.Uniform(location.num_leaves()));
    benchmark::DoNotOptimize(location.LeafAncestorOrdinal(leaf, 3));
  }
}
BENCHMARK(BM_LeafAncestorOrdinal);

}  // namespace
}  // namespace iolap

BENCHMARK_MAIN();
