// Extension experiment: the query-serving subsystem (src/serve).
//
// Measures what the generation-versioned aggregate cache buys on a served
// EDB: per-query latency of (a) cold partitioned scans, (b) cache hits,
// and (c) the first queries after a maintenance batch selectively
// invalidated the touched regions. Every cached answer is cross-checked
// against an uncached rescan (1e-9); `cache_correct` lands in the JSON so
// CI can assert it. The headline number is hit-vs-cold speedup (target:
// >= 10x).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "edb/maintenance.h"
#include "serve/query_service.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts_n = flags.GetInt("facts", 60'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 4096);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const int64_t cache_slots = flags.GetInt("cache_slots", 4096);
  const int hit_rounds = static_cast<int>(flags.GetInt("hit_rounds", 50));
  JsonWriter json(flags.GetString("json", "BENCH_query_serving.json"));

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec = AutomotiveLikeSpec(facts_n, 23);
  StorageEnv env(MakeWorkDir("serve_bench"), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  std::vector<FactRecord> raw;
  {
    auto cursor = facts.Scan(env.pool());
    FactRecord f;
    while (!cursor.done()) {
      DieOnError(cursor.Next(&f));
      raw.push_back(f);
    }
  }
  AllocationOptions options;
  auto manager =
      Unwrap(MaintenanceManager::Build(env, schema, &facts, options));

  ServeOptions sopts;
  sopts.num_threads = threads;
  sopts.cache_slots = cache_slots;
  QueryService service(manager.get(), sopts);

  // Probe set: the grand total plus one region per level-2 node of each
  // dimension — the kind of dashboard panel a cache is for.
  std::vector<QueryRegion> probes = {QueryRegion::All()};
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (schema.dim(d).num_levels() < 3) continue;
    for (NodeId node : schema.dim(d).nodes_at_level(2)) {
      probes.push_back(QueryRegion::All().With(d, node));
    }
  }
  const int64_t num_probes = static_cast<int64_t>(probes.size());
  std::printf("facts=%lld edb_rows=%lld probes=%lld threads=%d\n",
              static_cast<long long>(facts_n),
              static_cast<long long>(manager->edb().size()),
              static_cast<long long>(num_probes), threads);

  bool cache_correct = true;
  auto check = [&](double got, double want) {
    if (!(got >= want - 1e-9 && got <= want + 1e-9)) cache_correct = false;
  };

  // Phase 1 — cold scans (no cache involvement), one per probe.
  std::vector<double> expected;
  Stopwatch cold_watch;
  for (const QueryRegion& probe : probes) {
    AggregateResult r =
        Unwrap(service.UncachedAggregate(probe, AggregateFunc::kSum));
    expected.push_back(r.value);
  }
  const double cold_us =
      cold_watch.ElapsedSeconds() * 1e6 / static_cast<double>(num_probes);

  // Phase 2 — populate (all misses), verifying against the cold values.
  for (size_t i = 0; i < probes.size(); ++i) {
    AggregateResult r =
        Unwrap(service.Aggregate(probes[i], AggregateFunc::kSum));
    check(r.value, expected[i]);
  }

  // Phase 3 — steady-state hits.
  Stopwatch hit_watch;
  for (int round = 0; round < hit_rounds; ++round) {
    for (const QueryRegion& probe : probes) {
      (void)Unwrap(service.Aggregate(probe, AggregateFunc::kSum));
    }
  }
  const double hit_us = hit_watch.ElapsedSeconds() * 1e6 /
                        static_cast<double>(num_probes * hit_rounds);
  for (size_t i = 0; i < probes.size(); ++i) {
    bool hit = false;
    AggregateResult r =
        Unwrap(service.Aggregate(probes[i], AggregateFunc::kSum, nullptr,
                                 &hit));
    if (!hit) cache_correct = false;  // steady state must be all hits
    check(r.value, expected[i]);
  }

  // Phase 4 — maintenance commit, then the first query wave over the same
  // probes: touched regions re-scan, untouched ones still hit.
  const int64_t invalidated_before =
      service.cache()->stats().invalidated_entries;
  FactUpdate update{raw[raw.size() / 2], raw[raw.size() / 2].measure + 10};
  DieOnError(service.ApplyUpdates({update}));
  const int64_t invalidated =
      service.cache()->stats().invalidated_entries - invalidated_before;

  Stopwatch post_watch;
  std::vector<double> post_values;
  for (const QueryRegion& probe : probes) {
    AggregateResult r =
        Unwrap(service.Aggregate(probe, AggregateFunc::kSum));
    post_values.push_back(r.value);
  }
  const double post_us =
      post_watch.ElapsedSeconds() * 1e6 / static_cast<double>(num_probes);
  for (size_t i = 0; i < probes.size(); ++i) {
    AggregateResult r =
        Unwrap(service.UncachedAggregate(probes[i], AggregateFunc::kSum));
    check(post_values[i], r.value);
  }

  const double speedup = hit_us > 0 ? cold_us / hit_us : 0;
  std::printf("%-22s %12s %12s\n", "phase", "queries", "avg_us");
  std::printf("%-22s %12lld %12.2f\n", "cold_scan",
              static_cast<long long>(num_probes), cold_us);
  std::printf("%-22s %12lld %12.2f\n", "cache_hit",
              static_cast<long long>(num_probes * hit_rounds), hit_us);
  std::printf("%-22s %12lld %12.2f  (invalidated %lld entries)\n",
              "post_invalidation", static_cast<long long>(num_probes),
              post_us, static_cast<long long>(invalidated));
  std::printf("hit speedup vs cold: %.1fx (target >= 10x); cache_correct=%s\n",
              speedup, cache_correct ? "true" : "false");

  json.BeginObject();
  json.Field("phase", "cold_scan");
  json.Field("facts", facts_n);
  json.Field("queries", num_probes);
  json.Field("avg_us", cold_us);
  json.Field("cache_correct", cache_correct);
  json.EndObject();
  json.BeginObject();
  json.Field("phase", "cache_hit");
  json.Field("facts", facts_n);
  json.Field("queries", num_probes * hit_rounds);
  json.Field("avg_us", hit_us);
  json.Field("speedup_vs_cold", speedup);
  json.Field("cache_correct", cache_correct);
  json.EndObject();
  json.BeginObject();
  json.Field("phase", "post_invalidation");
  json.Field("facts", facts_n);
  json.Field("queries", num_probes);
  json.Field("avg_us", post_us);
  json.Field("invalidated_entries", invalidated);
  json.Field("cache_correct", cache_correct);
  json.EndObject();
  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return cache_correct ? 0 : 1;
}
