// Figures 5a / 5b: in-memory CPU-time comparison.
//
// The buffer pool is sized larger than the whole working set, so every
// algorithm performs (almost) no forced I/O and the comparison isolates the
// in-memory computation: Independent pays repeated re-sorting of C,
// Transitive pays component identification but then converges each
// component early. Each ε value corresponds to a number of EM iterations.
//
// Paper shapes: Independent is worst everywhere; Block wins at few
// iterations; Transitive overtakes Block as iterations grow and its curve
// is nearly flat.

#include <cstdio>

#include "bench/bench_util.h"

using namespace iolap;

namespace {

void RunFigure(const StarSchema& schema, const DatasetSpec& spec,
               int64_t buffer_pages, const char* title) {
  PrintHeader(title);
  std::printf("%-12s %10s %10s %12s %12s %14s\n", "algorithm", "epsilon",
              "iters", "alloc_sec", "total_sec", "largest_comp");
  for (double epsilon : {0.1, 0.05, 0.01, 0.005}) {
    for (AlgorithmKind algo :
         {AlgorithmKind::kIndependent, AlgorithmKind::kBlock,
          AlgorithmKind::kTransitive}) {
      AllocationResult r =
          RunOnce(schema, spec, buffer_pages, algo, epsilon, "fig5ab");
      std::printf("%-12s %10g %10d %12.3f %12.3f %14lld\n",
                  AlgorithmName(algo), epsilon, r.iterations, r.alloc_seconds,
                  r.total_seconds(),
                  static_cast<long long>(r.components.largest_component));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  // The paper uses the full 797,570-fact table with a 40 MB buffer (data
  // 32 MB). Defaults here are scaled for a quick run; pass --facts=797570
  // for the paper-scale experiment.
  const int64_t facts = flags.GetInt("facts", 100'000);
  const int64_t buffer_pages =
      flags.GetInt("buffer_pages", 4 * EstimateDataPages(facts, 0.3));

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  std::printf("facts=%lld, buffer=%lld pages (data fits in memory)\n",
              static_cast<long long>(facts),
              static_cast<long long>(buffer_pages));

  RunFigure(schema, AutomotiveLikeSpec(facts), buffer_pages,
            "Figure 5a: automotive-like dataset, in-memory");
  RunFigure(schema, AllSyntheticSpec(facts), buffer_pages,
            "Figure 5b: synthetic dataset with ALL (giant component), "
            "in-memory");
  return 0;
}
