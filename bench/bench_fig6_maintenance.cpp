// Figure 6: Extended Database maintenance — update time / rebuild time for
// three workload classes as the updated fraction grows (0.1% .. 10%).
//
// Workloads (Section 11.2): 1) updates to randomly selected precise facts
// overlapped by no imprecise fact, 2) randomly selected precise facts,
// 3) randomly selected facts (precise or not). Paper shapes: class 1 stays
// flat and far below 1; classes 2 and 3 degrade quickly past a few percent
// and are near-indistinguishable from each other (large components contain
// both kinds of facts), crossing 1 somewhere around 5-10%.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "edb/maintenance.h"

using namespace iolap;

namespace {

enum class Workload { kNonOverlapPrecise, kRandomPrecise, kRandomFact };

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kNonOverlapPrecise:
      return "non-overlap precise";
    case Workload::kRandomPrecise:
      return "random precise";
    case Workload::kRandomFact:
      return "random fact";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts_n = flags.GetInt("facts", 100'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 4096);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec = AutomotiveLikeSpec(facts_n, 17);

  std::printf("facts=%lld; EM-Measure policy (updates genuinely change "
              "allocations)\n",
              static_cast<long long>(facts_n));
  std::printf("%-22s %8s %12s %12s %12s %12s\n", "workload", "percent",
              "components", "tuples", "update_sec", "ratio");

  const int k = schema.num_dims();
  for (Workload workload :
       {Workload::kNonOverlapPrecise, Workload::kRandomPrecise,
        Workload::kRandomFact}) {
    for (double percent : {0.1, 1.0, 2.5, 5.0, 10.0}) {
      // Fresh build per data point so batches are independent.
      StorageEnv env(MakeWorkDir("fig6"), buffer_pages);
      TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
      std::vector<FactRecord> raw;
      {
        auto cursor = facts.Scan(env.pool());
        FactRecord f;
        while (!cursor.done()) {
          DieOnError(cursor.Next(&f));
          raw.push_back(f);
        }
      }
      AllocationOptions options;
      options.policy = PolicyKind::kMeasure;
      Stopwatch build_watch;
      auto manager =
          Unwrap(MaintenanceManager::Build(env, schema, &facts, options));
      const double rebuild_seconds = build_watch.ElapsedSeconds();

      // Candidate pool for the workload class.
      std::vector<size_t> pool;
      for (size_t i = 0; i < raw.size(); ++i) {
        switch (workload) {
          case Workload::kRandomFact:
            pool.push_back(i);
            break;
          case Workload::kRandomPrecise:
            if (raw[i].IsPrecise(k)) pool.push_back(i);
            break;
          case Workload::kNonOverlapPrecise: {
            if (!raw[i].IsPrecise(k)) break;
            Rect point;
            for (int d = 0; d < k; ++d) {
              point.lo[d] = point.hi[d] =
                  schema.dim(d).leaf_begin(raw[i].node[d]);
            }
            std::vector<int64_t> hits;
            DieOnError(manager->rtree().Search(point, &hits));
            if (hits.empty()) pool.push_back(i);
            break;
          }
        }
      }
      int64_t n = std::min<int64_t>(
          static_cast<int64_t>(pool.size()),
          static_cast<int64_t>(facts_n * percent / 100.0));
      Rng rng(static_cast<uint64_t>(percent * 1000) + 7);
      // Partial Fisher-Yates to pick n distinct facts.
      for (int64_t i = 0; i < n; ++i) {
        size_t j = i + rng.Uniform(pool.size() - i);
        std::swap(pool[i], pool[j]);
      }
      std::vector<FactUpdate> updates;
      updates.reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        updates.push_back(
            FactUpdate{raw[pool[i]], raw[pool[i]].measure * 1.07});
      }

      MaintenanceStats stats;
      DieOnError(manager->ApplyUpdates(updates, &stats));
      std::printf("%-22s %7.1f%% %12lld %12lld %12.3f %12.2f\n",
                  WorkloadName(workload), percent,
                  static_cast<long long>(stats.components_touched),
                  static_cast<long long>(stats.tuples_fetched), stats.seconds,
                  stats.seconds / rebuild_seconds);
    }
  }
  std::printf("\nratio > 1 means rebuilding from scratch would have been "
              "cheaper (paper: crossover near 5-10%% for the overlapping "
              "workloads).\n");
  return 0;
}
