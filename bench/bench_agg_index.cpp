// Extension experiment: the hierarchical aggregate index (src/aggidx).
//
// Measures what the index tier buys a served EDB on cache misses: per-query
// latency of (a) cold partitioned scans, (b) misses answered from index
// node partials (cache disabled, so every query takes the index path), and
// (c) cache hits for scale. Every index answer is cross-checked against an
// uncached rescan; `index_correct` lands in the JSON so CI can assert it.
// The comparison is relative (1e-9 * max(1, |want|)): the index sums cells
// in key order while the scan sums rows in file order, so the two
// summation orders legitimately differ in the last bits at this scale.
// The headline number is index-miss-vs-cold speedup (target: >= 10x).

#include <cmath>
#include <cstdio>
#include <vector>

#include "aggidx/agg_index.h"
#include "bench/bench_util.h"
#include "edb/maintenance.h"
#include "serve/query_service.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts_n = flags.GetInt("facts", 60'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 4096);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 50));
  JsonWriter json(flags.GetString("json", "BENCH_agg_index.json"));

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec = AutomotiveLikeSpec(facts_n, 23);
  StorageEnv env(MakeWorkDir("aggidx_bench"), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  AllocationOptions options;
  auto manager =
      Unwrap(MaintenanceManager::Build(env, schema, &facts, options));

  // Probe set: the grand total plus one region per level-2 node of each
  // dimension — the dashboard panels a partial-aggregate tier is for.
  std::vector<QueryRegion> probes = {QueryRegion::All()};
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (schema.dim(d).num_levels() < 3) continue;
    for (NodeId node : schema.dim(d).nodes_at_level(2)) {
      probes.push_back(QueryRegion::All().With(d, node));
    }
  }
  const int64_t num_probes = static_cast<int64_t>(probes.size());
  std::printf("facts=%lld edb_rows=%lld probes=%lld threads=%d\n",
              static_cast<long long>(facts_n),
              static_cast<long long>(manager->edb().size()),
              static_cast<long long>(num_probes), threads);

  bool index_correct = true;
  auto check = [&](double got, double want) {
    const double tol = 1e-9 * std::max(1.0, std::abs(want));
    if (!(std::abs(got - want) <= tol)) index_correct = false;
  };

  // Phase 1 — cold partitioned scans (the no-index miss cost).
  ServeOptions scan_opts;
  scan_opts.num_threads = threads;
  scan_opts.cache_slots = 0;
  QueryService scan_service(manager.get(), scan_opts);
  std::vector<double> expected;
  Stopwatch cold_watch;
  for (const QueryRegion& probe : probes) {
    AggregateResult r =
        Unwrap(scan_service.UncachedAggregate(probe, AggregateFunc::kSum));
    expected.push_back(r.value);
  }
  const double cold_us =
      cold_watch.ElapsedSeconds() * 1e6 / static_cast<double>(num_probes);

  // Phase 2 — misses answered from the index. The cache is disabled, so
  // every Aggregate() is a miss and must be served by node partials. The
  // first query pays the one-pass build; measured separately.
  ServeOptions idx_opts;
  idx_opts.num_threads = threads;
  idx_opts.cache_slots = 0;
  idx_opts.agg_index = true;
  QueryService idx_service(manager.get(), idx_opts);
  Stopwatch build_watch;
  (void)Unwrap(idx_service.Aggregate(probes[0], AggregateFunc::kSum));
  const double build_ms = build_watch.ElapsedSeconds() * 1e3;
  AggIndex::Stats istats = idx_service.agg_index()->stats();

  Stopwatch index_watch;
  for (int round = 0; round < rounds; ++round) {
    for (const QueryRegion& probe : probes) {
      (void)Unwrap(idx_service.Aggregate(probe, AggregateFunc::kSum));
    }
  }
  const double index_us = index_watch.ElapsedSeconds() * 1e6 /
                          static_cast<double>(num_probes * rounds);
  for (size_t i = 0; i < probes.size(); ++i) {
    AggregateResult r =
        Unwrap(idx_service.Aggregate(probes[i], AggregateFunc::kSum));
    check(r.value, expected[i]);
  }

  // Phase 3 — cache hits with the index tier behind them (full stack).
  ServeOptions full_opts;
  full_opts.num_threads = threads;
  full_opts.agg_index = true;
  QueryService full_service(manager.get(), full_opts);
  for (size_t i = 0; i < probes.size(); ++i) {
    AggregateResult r =
        Unwrap(full_service.Aggregate(probes[i], AggregateFunc::kSum));
    check(r.value, expected[i]);
  }
  Stopwatch hit_watch;
  for (int round = 0; round < rounds; ++round) {
    for (const QueryRegion& probe : probes) {
      (void)Unwrap(full_service.Aggregate(probe, AggregateFunc::kSum));
    }
  }
  const double hit_us = hit_watch.ElapsedSeconds() * 1e6 /
                        static_cast<double>(num_probes * rounds);

  const double speedup = index_us > 0 ? cold_us / index_us : 0;
  std::printf("%-22s %12s %12s\n", "phase", "queries", "avg_us");
  std::printf("%-22s %12lld %12.2f\n", "cold_scan",
              static_cast<long long>(num_probes), cold_us);
  std::printf("%-22s %12lld %12.2f  (build %.1f ms, %lld cells, %lld pages, "
              "height %lld)\n",
              "index_miss", static_cast<long long>(num_probes * rounds),
              index_us, build_ms, static_cast<long long>(istats.cells),
              static_cast<long long>(istats.pages),
              static_cast<long long>(istats.height));
  std::printf("%-22s %12lld %12.2f\n", "cache_hit",
              static_cast<long long>(num_probes * rounds), hit_us);
  std::printf(
      "index-miss speedup vs cold: %.1fx (target >= 10x); index_correct=%s\n",
      speedup, index_correct ? "true" : "false");

  json.BeginObject();
  json.Field("phase", "cold_scan");
  json.Field("facts", facts_n);
  json.Field("queries", num_probes);
  json.Field("avg_us", cold_us);
  json.Field("index_correct", index_correct);
  json.EndObject();
  json.BeginObject();
  json.Field("phase", "index_miss");
  json.Field("facts", facts_n);
  json.Field("queries", num_probes * rounds);
  json.Field("avg_us", index_us);
  json.Field("build_ms", build_ms);
  json.Field("index_cells", istats.cells);
  json.Field("index_pages", istats.pages);
  json.Field("index_height", istats.height);
  json.Field("speedup_vs_cold", speedup);
  json.Field("index_correct", index_correct);
  json.EndObject();
  json.BeginObject();
  json.Field("phase", "cache_hit");
  json.Field("facts", facts_n);
  json.Field("queries", num_probes * rounds);
  json.Field("avg_us", hit_us);
  json.Field("index_correct", index_correct);
  json.EndObject();
  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return index_correct ? 0 : 1;
}
