#ifndef IOLAP_BENCH_BENCH_UTIL_H_
#define IOLAP_BENCH_BENCH_UTIL_H_

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>

#include "alloc/allocator.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "examples/example_util.h"
#include "obs/json_util.h"
#include "obs/obs.h"
#include "storage/storage_env.h"

namespace iolap {

/// The two dataset families of Section 11: "automotive-like" (no ALL
/// values, Table 2 composition) and the ALL-allowed synthetic variant that
/// produces a giant connected component.
inline DatasetSpec AutomotiveLikeSpec(int64_t facts, uint64_t seed = 1) {
  DatasetSpec spec;
  spec.num_facts = facts;
  spec.allow_all = false;
  spec.seed = seed;
  return spec;
}

inline DatasetSpec AllSyntheticSpec(int64_t facts, uint64_t seed = 2) {
  DatasetSpec spec;
  spec.num_facts = facts;
  spec.allow_all = true;
  spec.all_fraction = 0.08;
  spec.seed = seed;
  return spec;
}

/// Runs one full allocation and returns the result; everything (dataset
/// generation included) happens in a fresh StorageEnv so runs are
/// independent.
inline AllocationResult RunOnce(const StarSchema& schema,
                                const DatasetSpec& spec, int64_t buffer_pages,
                                AlgorithmKind algorithm, double epsilon,
                                const char* tag) {
  StorageEnv env(MakeWorkDir(tag), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  AllocationOptions options;
  options.algorithm = algorithm;
  options.epsilon = epsilon;
  return Unwrap(Allocator::Run(env, schema, &facts, options));
}

/// Estimated on-disk size, in pages, of the prepared working set (C plus
/// the imprecise summary tables) for a dataset of the given composition —
/// used to pick buffer sizes as fractions of the data, mirroring the
/// paper's 600 KB..12 MB sweep against a 32 MB table.
inline int64_t EstimateDataPages(int64_t facts, double imprecise_fraction) {
  const int64_t cells =
      static_cast<int64_t>(facts * (1 - imprecise_fraction));
  const int64_t imprecise = static_cast<int64_t>(facts * imprecise_fraction);
  // Ceiling division: a partially-filled last page is still a page the
  // scan pays for, and floor would skew buffer-fraction sweeps at small
  // scales.
  const int64_t cell_rpp = TypedFile<CellRecord>::kRecordsPerPage;
  const int64_t imp_rpp = TypedFile<ImpreciseRecord>::kRecordsPerPage;
  return (cells + cell_rpp - 1) / cell_rpp +
         (imprecise + imp_rpp - 1) / imp_rpp + 2;
}

/// As RunOnce, but with the full AllocationOptions (algorithm/epsilon in
/// the struct) — used by benchmarks that tune the I/O pipeline knobs.
inline AllocationResult RunOnceWithOptions(const StarSchema& schema,
                                           const DatasetSpec& spec,
                                           int64_t buffer_pages,
                                           const AllocationOptions& options,
                                           const char* tag) {
  StorageEnv env(MakeWorkDir(tag), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  return Unwrap(Allocator::Run(env, schema, &facts, options));
}

inline void PrintHeader(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

/// Installs observability for a bench run from the standard
/// `--metrics-out=` / `--trace-out=` flags. Hold the returned object for
/// the duration of main(); with neither flag present it is inert.
inline std::unique_ptr<ScopedObservability> ObsFromFlags(const Flags& flags) {
  return std::make_unique<ScopedObservability>(
      flags.GetString("metrics-out", ""), flags.GetString("trace-out", ""));
}

/// Minimal emitter for machine-readable bench output: a JSON array of flat
/// objects, one per measured configuration. Strings are escaped and
/// non-finite doubles become null (JSON has no inf/nan), via the shared
/// escaper in obs/json_util.h; finite doubles get enough digits to
/// round-trip. Rows accumulate in memory; Write() lands the file atomically
/// enough for the experiment scripts (single writer).
class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  void BeginObject() {
    if (!rows_.empty()) rows_ += ",\n";
    rows_ += "  {";
    first_field_ = true;
  }
  void Field(const char* key, const char* value) {
    AppendKey(key);
    AppendJsonString(&rows_, value);
  }
  void Field(const char* key, int64_t value) {
    AppendKey(key);
    rows_ += std::to_string(value);
  }
  void Field(const char* key, double value) {
    AppendKey(key);
    AppendJsonDouble(&rows_, value);
  }
  void Field(const char* key, bool value) {
    AppendKey(key);
    rows_ += value ? "true" : "false";
  }
  void EndObject() { rows_ += '}'; }

  /// Writes the accumulated array; returns false (and prints) on failure.
  bool Write() const {
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    out << "[\n" << rows_ << "\n]\n";
    return static_cast<bool>(out);
  }

  const std::string& path() const { return path_; }

 private:
  void AppendKey(const char* key) {
    if (!first_field_) rows_ += ", ";
    first_field_ = false;
    AppendJsonString(&rows_, key);
    rows_ += ": ";
  }

  std::string path_;
  std::string rows_;
  bool first_field_ = true;
};

inline void PrintRunRow(const char* algo, double epsilon, int64_t buffer_pages,
                        const AllocationResult& r) {
  std::printf(
      "%-12s eps=%-7g buf=%-6" PRId64 " iters=%-3d |S|/W=%-3d "
      "alloc_io=%-9" PRId64 " alloc_s=%-8.3f emit_s=%-7.3f total_s=%.3f\n",
      algo, epsilon, buffer_pages, r.iterations,
      r.chain_width > 0 ? r.chain_width : r.num_groups, r.alloc_io.total(),
      r.alloc_seconds, r.emit_seconds, r.total_seconds());
}

}  // namespace iolap

#endif  // IOLAP_BENCH_BENCH_UTIL_H_
