// Figures 5f-5h: synthetic dataset (ALL allowed), running time vs buffer
// size, one figure per ε (0.1, 0.05, 0.005).
//
// Unlike the automotive data, the ALL values inflate partition sizes, so
// the number of summary-table groups |S| genuinely depends on the buffer
// (the paper reports |S| = 3/2/1 at 600 KB/1 MB/>=6 MB), and the giant
// connected component forces Transitive's external path. Paper shapes:
// Block and Transitive now degrade as the buffer shrinks; Independent
// stays worst; Transitive still flattens as iterations grow.

#include <cstdio>

#include "bench/bench_util.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts = flags.GetInt("facts", 100'000);
  const int64_t data_pages = EstimateDataPages(facts, 0.3);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  std::printf("facts=%lld (ALL allowed in <=2 dims), working set ~%lld "
              "pages\n",
              static_cast<long long>(facts),
              static_cast<long long>(data_pages));

  const double kFractions[] = {0.019, 0.031, 0.19, 0.375};
  const char* kLabels[] = {"600KB", "1MB", "6MB", "12MB"};

  for (double epsilon : {0.1, 0.05, 0.005}) {
    std::printf("\n==== Figure 5%c: synthetic w/ ALL, eps=%g ====\n",
                epsilon == 0.1 ? 'f' : (epsilon == 0.05 ? 'g' : 'h'),
                epsilon);
    std::printf("%-10s %-12s %8s %10s %12s %12s %14s\n", "buffer",
                "algorithm", "iters", "groups", "alloc_io", "alloc_sec",
                "largest_comp");
    for (int b = 0; b < 4; ++b) {
      int64_t buffer_pages =
          std::max<int64_t>(16, static_cast<int64_t>(data_pages * kFractions[b]));
      for (AlgorithmKind algo :
           {AlgorithmKind::kIndependent, AlgorithmKind::kBlock,
            AlgorithmKind::kTransitive}) {
        AllocationResult r = RunOnce(schema, AllSyntheticSpec(facts),
                                     buffer_pages, algo, epsilon, "fig5fgh");
        std::printf("%-10s %-12s %8d %10d %12lld %12.3f %14lld\n", kLabels[b],
                    AlgorithmName(algo), r.iterations,
                    algo == AlgorithmKind::kIndependent ? r.chain_width
                                                        : r.num_groups,
                    static_cast<long long>(r.alloc_io.total()),
                    r.alloc_seconds,
                    static_cast<long long>(r.components.largest_component));
      }
    }
  }
  return 0;
}
