// Extension experiment (beyond Figure 6): structural maintenance.
//
// The paper's update experiment only modifies existing facts. Section 9
// sketches — but never measures — inserts and deletes, which merge or
// dissolve connected components and update the R-tree. This bench measures
// them: batches of inserts (precise and imprecise) and deletes as a
// fraction of the table, against a full rebuild.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "edb/maintenance.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts_n = flags.GetInt("facts", 60'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 4096);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec = AutomotiveLikeSpec(facts_n, 23);

  std::printf("facts=%lld; EM-Count policy\n",
              static_cast<long long>(facts_n));
  std::printf("%-18s %8s %10s %10s %8s %10s %10s %8s\n", "workload",
              "percent", "components", "tuples", "merges", "edb_app",
              "upd_sec", "ratio");

  const int k = schema.num_dims();
  for (const char* workload : {"insert", "delete", "mixed"}) {
    for (double percent : {0.1, 1.0, 2.5, 5.0}) {
      StorageEnv env(MakeWorkDir("ext_mut"), buffer_pages);
      TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
      std::vector<FactRecord> raw;
      {
        auto cursor = facts.Scan(env.pool());
        FactRecord f;
        while (!cursor.done()) {
          DieOnError(cursor.Next(&f));
          raw.push_back(f);
        }
      }
      AllocationOptions options;
      Stopwatch build_watch;
      auto manager =
          Unwrap(MaintenanceManager::Build(env, schema, &facts, options));
      const double rebuild_seconds = build_watch.ElapsedSeconds();

      const int64_t n = static_cast<int64_t>(facts_n * percent / 100.0);
      Rng rng(static_cast<uint64_t>(percent * 100) + 5);
      MaintenanceStats stats;

      auto make_insert = [&](FactId id) {
        // New facts follow the same distribution: generalize or copy an
        // existing fact's cell.
        FactRecord f = raw[rng.Uniform(raw.size())];
        f.fact_id = id;
        f.measure = 1 + 100 * rng.NextDouble();
        if (rng.Bernoulli(0.3)) {
          int d = static_cast<int>(rng.Uniform(k));
          const Hierarchy& h = schema.dim(d);
          if (h.num_levels() >= 3 && f.level[d] == 1) {
            f.node[d] = h.AncestorAtLevel(f.node[d], 2);
            f.level[d] = 2;
          }
        } else {
          for (int d = 0; d < k; ++d) {
            const Hierarchy& h = schema.dim(d);
            f.node[d] = h.leaf_node(h.leaf_begin(f.node[d]));
            f.level[d] = 1;
          }
        }
        return f;
      };

      if (std::string(workload) == "insert") {
        std::vector<FactRecord> batch;
        for (int64_t i = 0; i < n; ++i) {
          batch.push_back(make_insert(1'000'000 + i));
        }
        DieOnError(manager->InsertFacts(batch, &stats));
      } else if (std::string(workload) == "delete") {
        std::vector<FactRecord> batch;
        std::vector<bool> used(raw.size(), false);
        while (static_cast<int64_t>(batch.size()) < n) {
          size_t pick = rng.Uniform(raw.size());
          if (used[pick]) continue;
          used[pick] = true;
          batch.push_back(raw[pick]);
        }
        DieOnError(manager->DeleteFacts(batch, &stats));
      } else {
        std::vector<FactRecord> ins, del;
        std::vector<bool> used(raw.size(), false);
        for (int64_t i = 0; i < n / 2; ++i) {
          ins.push_back(make_insert(2'000'000 + i));
        }
        while (static_cast<int64_t>(del.size()) < n / 2) {
          size_t pick = rng.Uniform(raw.size());
          if (used[pick]) continue;
          used[pick] = true;
          del.push_back(raw[pick]);
        }
        DieOnError(manager->InsertFacts(ins, &stats));
        DieOnError(manager->DeleteFacts(del, &stats));
      }

      std::printf("%-18s %7.1f%% %10lld %10lld %8lld %10lld %10.3f %8.2f\n",
                  workload, percent,
                  static_cast<long long>(stats.components_touched),
                  static_cast<long long>(stats.tuples_fetched),
                  static_cast<long long>(stats.components_merged),
                  static_cast<long long>(stats.edb_rows_appended),
                  stats.seconds, stats.seconds / rebuild_seconds);
    }
  }
  std::printf("\nShapes mirror Figure 6: structural batches stay well below "
              "rebuild cost for small percentages and degrade as more "
              "components are touched.\n");
  return 0;
}
