// Parallel-scaling extension: component-parallel Transitive allocation.
//
// Sweeps the worker-thread count over the Figure 5a/5b in-memory
// configuration (buffer sized so the whole working set fits, which makes
// the run compute-bound — the regime where component parallelism pays).
// For each thread count we report wall-clock speedup over the serial run
// and verify the two invariants of the parallel design:
//
//   * identical output — same EDB row count and edges for every thread
//     count (the unit tests additionally check byte equality);
//   * I/O parity — the parallel schedule must not inflate page I/O.
//
// The automotive-like dataset has thousands of small components and scales
// with threads; the ALL-synthetic dataset is dominated by one giant
// component, so its speedup is bounded by that component's serial time —
// the same Amdahl ceiling the paper's Transitive/Block comparison hinges
// on. (Speedup also requires physical cores: on a single-core host every
// thread count reports ~1x.)

#include <cstdio>

#include "bench/bench_util.h"

using namespace iolap;

namespace {

AllocationResult RunThreads(const StarSchema& schema, const DatasetSpec& spec,
                            int64_t buffer_pages, double epsilon,
                            int num_threads) {
  StorageEnv env(MakeWorkDir("par_scaling"), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  AllocationOptions options;
  options.algorithm = AlgorithmKind::kTransitive;
  options.epsilon = epsilon;
  options.num_threads = num_threads;
  return Unwrap(Allocator::Run(env, schema, &facts, options));
}

void RunFigure(const StarSchema& schema, const DatasetSpec& spec,
               int64_t buffer_pages, double epsilon, const char* title) {
  PrintHeader(title);
  std::printf("%-8s %10s %10s %10s %12s %12s %10s\n", "threads", "alloc_sec",
              "speedup", "alloc_io", "edb_rows", "edges", "io_parity");
  double serial_seconds = 0;
  int64_t serial_io = 0, serial_rows = 0, serial_edges = 0;
  for (int threads : {1, 2, 4, 8}) {
    AllocationResult r =
        RunThreads(schema, spec, buffer_pages, epsilon, threads);
    if (threads == 1) {
      serial_seconds = r.alloc_seconds;
      serial_io = r.alloc_io.total();
      serial_rows = r.edb.size();
      serial_edges = r.edges_emitted;
    }
    const bool same_output =
        r.edb.size() == serial_rows && r.edges_emitted == serial_edges;
    const bool io_parity = r.alloc_io.total() <= serial_io;
    std::printf("%-8d %10.3f %9.2fx %10lld %12lld %12lld %10s%s\n", threads,
                r.alloc_seconds,
                r.alloc_seconds > 0 ? serial_seconds / r.alloc_seconds : 0.0,
                static_cast<long long>(r.alloc_io.total()),
                static_cast<long long>(r.edb.size()),
                static_cast<long long>(r.edges_emitted),
                io_parity ? "yes" : "NO",
                same_output ? "" : "  OUTPUT MISMATCH");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts = flags.GetInt("facts", 100'000);
  const int64_t buffer_pages =
      flags.GetInt("buffer_pages", 4 * EstimateDataPages(facts, 0.3));
  const double epsilon = flags.GetDouble("epsilon", 0.005);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  std::printf("facts=%lld, buffer=%lld pages (in-memory), epsilon=%g\n",
              static_cast<long long>(facts),
              static_cast<long long>(buffer_pages), epsilon);

  RunFigure(schema, AutomotiveLikeSpec(facts), buffer_pages, epsilon,
            "Parallel scaling: automotive-like (many small components)");
  RunFigure(schema, AllSyntheticSpec(facts), buffer_pages, epsilon,
            "Parallel scaling: synthetic with ALL (giant component, "
            "Amdahl-bound)");
  return 0;
}
