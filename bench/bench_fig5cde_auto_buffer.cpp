// Figures 5c-5e: automotive-like dataset, running time vs buffer size, one
// figure per ε (0.1, 0.05, 0.005).
//
// The paper sweeps the buffer from 600 KB to 12 MB against a 32 MB table
// (11 MB imprecise): roughly 2%..40% of the data. We sweep the same
// fractions of our working set. Paper shapes: buffer size barely matters
// for this dataset (the 35 summary tables' partition sizes fit even the
// smallest buffer, so |S| = 1 throughout); Independent is far worse than
// both others; Transitive's cost is flattest in the iteration count.

#include <cstdio>

#include "bench/bench_util.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts = flags.GetInt("facts", 100'000);
  const int64_t data_pages = EstimateDataPages(facts, 0.3);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  std::printf("facts=%lld, working set ~%lld pages; buffers at the paper's "
              "600KB/1MB/6MB/12MB-vs-32MB fractions\n",
              static_cast<long long>(facts),
              static_cast<long long>(data_pages));

  const double kFractions[] = {0.019, 0.031, 0.19, 0.375};
  const char* kLabels[] = {"600KB", "1MB", "6MB", "12MB"};

  for (double epsilon : {0.1, 0.05, 0.005}) {
    std::printf("\n==== Figure 5%c: automotive-like, eps=%g ====\n",
                epsilon == 0.1 ? 'c' : (epsilon == 0.05 ? 'd' : 'e'),
                epsilon);
    std::printf("%-10s %-12s %8s %10s %12s %12s\n", "buffer", "algorithm",
                "iters", "groups", "alloc_io", "alloc_sec");
    for (int b = 0; b < 4; ++b) {
      int64_t buffer_pages =
          std::max<int64_t>(16, static_cast<int64_t>(data_pages * kFractions[b]));
      for (AlgorithmKind algo :
           {AlgorithmKind::kIndependent, AlgorithmKind::kBlock,
            AlgorithmKind::kTransitive}) {
        AllocationResult r =
            RunOnce(schema, AutomotiveLikeSpec(facts), buffer_pages, algo,
                    epsilon, "fig5cde");
        std::printf("%-10s %-12s %8d %10d %12lld %12.3f\n", kLabels[b],
                    AlgorithmName(algo), r.iterations,
                    algo == AlgorithmKind::kIndependent ? r.chain_width
                                                        : r.num_groups,
                    static_cast<long long>(r.alloc_io.total()),
                    r.alloc_seconds);
      }
    }
  }
  return 0;
}
