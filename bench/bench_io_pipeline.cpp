// I/O pipeline benchmark: quantifies the storage-layer overhaul (parallel
// run generation, loser-tree block merge, read-ahead, batched write-back)
// against the fully serial pipeline on the Fig 5c automotive-like config.
//
// Part 1 sweeps the external-sort budget and times the sort phase alone
// (serial vs. pipelined, identical input bytes, byte-identity checked).
// Part 2 sweeps the buffer size over full allocations, reporting wall
// time, demand I/Os, and the prefetch hit rate.
//
// Results additionally land as a JSON array (--json=BENCH_io_pipeline.json)
// for perf-trajectory tracking.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "storage/async_io.h"
#include "storage/external_sort.h"

using namespace iolap;

namespace {

struct SortOrder {
  bool operator()(const FactRecord& a, const FactRecord& b) const {
    int c = std::memcmp(a.node, b.node, sizeof(a.node));
    if (c != 0) return c < 0;
    return a.fact_id < b.fact_id;
  }
  // Normalized key: the first 8 bytes of `node` in memcmp (big-endian
  // byte) order.
  uint64_t KeyPrefix(const FactRecord& a) const {
    uint64_t prefix;
    std::memcpy(&prefix, a.node, sizeof(prefix));
    return __builtin_bswap64(prefix);
  }
};

struct SortMeasurement {
  double seconds = 0;
  IoStats io;
  uint64_t digest = 0;  // FNV-1a over the sorted file's pages
};

Result<SortMeasurement> TimeSort(const StarSchema& schema, int64_t facts,
                                 int64_t budget_pages,
                                 const IoPipelineOptions& io, int repeats) {
  SortMeasurement best;
  for (int rep = 0; rep < repeats; ++rep) {
    StorageEnv env(MakeWorkDir("io_pipe_sort"), budget_pages);
    TypedFile<FactRecord> file =
        Unwrap(GenerateFacts(env, schema, AutomotiveLikeSpec(facts)));
    ExternalSorter<FactRecord> sorter(&env.disk(), &env.pool(), budget_pages,
                                      io);
    IoStats before = env.disk().stats();
    Stopwatch watch;
    IOLAP_RETURN_IF_ERROR(sorter.Sort(&file, SortOrder{}));
    double seconds = watch.ElapsedSeconds();
    IoStats delta = env.disk().stats() - before;

    uint64_t digest = 1469598103934665603ull;
    std::vector<std::byte> page(kPageSize);
    for (int64_t p = 0; p < file.size_in_pages(); ++p) {
      IOLAP_RETURN_IF_ERROR(
          env.disk().ReadPage(file.file_id(), p, page.data()));
      for (std::byte b : page) {
        digest ^= static_cast<uint64_t>(b);
        digest *= 1099511628211ull;
      }
    }
    if (rep == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.io = delta;
    }
    best.digest = digest;  // identical across reps (same seed)
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts = flags.GetInt("facts", 100'000);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  JsonWriter json(flags.GetString("json", "BENCH_io_pipeline.json"));

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  const int64_t data_pages = EstimateDataPages(facts, 0.3);
  std::printf("facts=%lld (Fig 5c automotive-like config), working set ~%lld "
              "pages\n",
              static_cast<long long>(facts),
              static_cast<long long>(data_pages));

  PrintHeader("external sort phase: serial vs. pipelined, by sort budget");
  std::printf("%-8s %10s %10s %8s %12s %12s %6s\n", "budget", "serial_s",
              "pipe_s", "speedup", "demand_io", "pipe_io", "ident");
  for (int64_t budget : {16, 64, 128, 256}) {
    SortMeasurement serial = Unwrap(TimeSort(schema, facts, budget,
                                             IoPipelineOptions::Serial(),
                                             repeats));
    SortMeasurement piped = Unwrap(TimeSort(schema, facts, budget,
                                            IoPipelineOptions{}, repeats));
    double speedup = piped.seconds > 0 ? serial.seconds / piped.seconds : 0;
    bool identical = serial.digest == piped.digest;
    std::printf("%-8lld %10.4f %10.4f %7.2fx %12lld %12lld %6s\n",
                static_cast<long long>(budget), serial.seconds, piped.seconds,
                speedup, static_cast<long long>(serial.io.total()),
                static_cast<long long>(piped.io.total()),
                identical ? "yes" : "NO");
    json.BeginObject();
    json.Field("section", "sort_phase");
    json.Field("facts", facts);
    json.Field("budget_pages", budget);
    json.Field("serial_seconds", serial.seconds);
    json.Field("pipeline_seconds", piped.seconds);
    json.Field("speedup", speedup);
    json.Field("serial_demand_io", serial.io.total());
    json.Field("pipeline_demand_io", piped.io.total());
    json.Field("pipeline_prefetch_reads", piped.io.prefetch_reads);
    json.Field("byte_identical", identical);
    json.EndObject();
  }

  PrintHeader("full allocation: serial vs. pipelined, by buffer size");
  std::printf("%-8s %-12s %-9s %10s %12s %10s %8s\n", "buffer", "algorithm",
              "pipeline", "wall_s", "demand_io", "pf_hit%", "speedup");
  const double kFractions[] = {0.031, 0.19};
  const char* kLabels[] = {"1MB", "6MB"};
  for (int b = 0; b < 2; ++b) {
    int64_t buffer_pages = std::max<int64_t>(
        16, static_cast<int64_t>(data_pages * kFractions[b]));
    for (AlgorithmKind algo :
         {AlgorithmKind::kBlock, AlgorithmKind::kTransitive}) {
      double serial_wall = 0;
      int64_t serial_demand = 0;
      for (int mode = 0; mode < 2; ++mode) {
        AllocationOptions options;
        options.algorithm = algo;
        options.epsilon = 0.1;  // Fig 5c
        options.io =
            mode == 0 ? IoPipelineOptions::Serial() : IoPipelineOptions{};
        double wall = 0;
        AllocationResult r;
        PoolStats pool;
        IoStats disk;
        bool sync_mode = false;
        for (int rep = 0; rep < repeats; ++rep) {
          StorageEnv env(MakeWorkDir("io_pipe_alloc"), buffer_pages);
          TypedFile<FactRecord> file =
              Unwrap(GenerateFacts(env, schema, AutomotiveLikeSpec(facts)));
          Stopwatch watch;
          r = Unwrap(Allocator::Run(env, schema, &file, options));
          double rep_wall = watch.ElapsedSeconds();
          if (rep == 0 || rep_wall < wall) {
            wall = rep_wall;
            pool = env.pool().stats();
            disk = env.disk().stats();
            sync_mode = env.pool().plan_sync_mode();
          }
        }
        double hit_rate =
            disk.prefetch_reads > 0
                ? 100.0 * static_cast<double>(pool.prefetch_hits) /
                      static_cast<double>(disk.prefetch_reads)
                : 0.0;
        double speedup = 0;
        if (mode == 0) {
          serial_wall = wall;
          serial_demand = r.alloc_io.total();
        } else if (wall > 0) {
          speedup = serial_wall / wall;
        }
        // "sync" = plan-driven read-ahead ran inline on the pin path (one
        // batched read per chunk, no backend thread) — the auto resolution
        // on single-hardware-thread hosts.
        const char* backend =
            sync_mode
                ? "sync"
                : AsyncBackendName(ResolveAsyncBackend(options.io.io_backend));
        std::printf("%-8s %-12s %-9s %10.3f %12lld %9.1f%% %7.2fx\n",
                    kLabels[b], AlgorithmName(algo),
                    mode == 0 ? "serial" : "on", wall,
                    static_cast<long long>(r.alloc_io.total()), hit_rate,
                    speedup);
        json.BeginObject();
        json.Field("section", "allocation");
        json.Field("facts", facts);
        json.Field("buffer_pages", buffer_pages);
        json.Field("algorithm", AlgorithmName(algo));
        json.Field("pipeline", mode == 0 ? "serial" : "on");
        json.Field("wall_seconds", wall);
        json.Field("prep_seconds", r.prep_seconds);
        json.Field("alloc_seconds", r.alloc_seconds);
        json.Field("emit_seconds", r.emit_seconds);
        json.Field("alloc_demand_io", r.alloc_io.total());
        json.Field("prefetch_reads", disk.prefetch_reads);
        json.Field("prefetch_hits", pool.prefetch_hits);
        json.Field("prefetch_hit_rate_pct", hit_rate);
        json.Field("speedup_vs_serial", speedup);
        json.Field("io_backend", backend);
        // Pinned by the cost model: planned read-ahead must not change the
        // demand I/O the serial pipeline charges.
        json.Field("demand_io_identical",
                   mode == 0 || r.alloc_io.total() == serial_demand);
        json.EndObject();
      }
    }
  }

  if (json.Write()) std::printf("\nwrote %s\n", json.path().c_str());
  return 0;
}
