// Extension experiment: sharded serving + the parallel group-by engine.
//
// Three phases over one maintained EDB:
//  * scan_scaling — uncached query throughput at 8 shards across thread
//    counts {1, 2, 4, 8}; every answer is cross-checked against the serial
//    QueryEngine (relative 1e-9; the chunked merge is deterministic but
//    rounds in a different order than a row-by-row fold) into
//    `sharded_correct`. The headline number is speedup at 8 threads vs 1
//    (target >= 3x on a machine with >= 8 cores); `speedup_ok` lands in
//    the JSON and CI asserts it only when the runner has the cores
//    (`hardware_concurrency` is emitted so the gate is auditable).
//  * shard_isolation — a maintenance thread streams update batches into
//    one shard while a query thread probes a node owned by a *different*
//    shard, bracketing every query with reads of the batch shard's
//    generation. Shard generations bump while the batch still holds its
//    exclusive locks, so a bump observed inside a query's window proves
//    the query ran concurrently with the locked commit. Unsharded, the
//    query's shared lock and the commit's exclusive lock are on the same
//    shard, so a straddle is impossible (the query's pinned snapshot
//    filters the out-of-lock slivers). Together: `maintenance_nonblocking`
//    = sharded straddles > 0 and unsharded straddles == 0 — valid even on
//    a single-core runner, where wall-clock speedups are meaningless but
//    lock overlap is not.
//  * determinism — the same probe workload at shards {1, 2, 8} must be
//    byte-identical (`deterministic_across_shards`).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "edb/maintenance.h"
#include "serve/query_service.h"

using namespace iolap;

namespace {

struct RollProbe {
  QueryRegion region;
  int dim;
  int level;
};

bool FullyPrecise(const StarSchema& schema, const FactRecord& f) {
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    if (h.leaf_end(f.node[d]) - h.leaf_begin(f.node[d]) != 1) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts_n = flags.GetInt("facts", 30'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 4096);
  const int64_t rounds = flags.GetInt("rounds", 3);
  const int64_t batch_updates = flags.GetInt("batch_updates", 150);
  const int64_t batches = flags.GetInt("batches", 8);
  JsonWriter json(flags.GetString("json", "BENCH_serve_scaling.json"));

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec = AutomotiveLikeSpec(facts_n, 29);
  StorageEnv env(MakeWorkDir("serve_scaling_bench"), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  std::vector<FactRecord> raw;
  {
    auto cursor = facts.Scan(env.pool());
    FactRecord f;
    while (!cursor.done()) {
      DieOnError(cursor.Next(&f));
      raw.push_back(f);
    }
  }
  AllocationOptions options;
  auto manager =
      Unwrap(MaintenanceManager::Build(env, schema, &facts, options));
  const int64_t hw =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  std::printf("facts=%lld edb_rows=%lld hardware_concurrency=%lld\n",
              static_cast<long long>(facts_n),
              static_cast<long long>(manager->edb().size()),
              static_cast<long long>(hw));

  // Probe workload: grand totals, level-2 slices, and rollups at two
  // hierarchy levels (the second one high-cardinality enough to matter).
  std::vector<QueryRegion> point_probes = {QueryRegion::All()};
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (schema.dim(d).num_levels() < 3) continue;
    for (NodeId node : schema.dim(d).nodes_at_level(2)) {
      point_probes.push_back(QueryRegion::All().With(d, node));
    }
  }
  std::vector<RollProbe> roll_probes = {{QueryRegion::All(), 0, 1},
                                        {QueryRegion::All(), 0, 2},
                                        {QueryRegion::All(), 1, 1}};
  const int64_t queries_per_round =
      static_cast<int64_t>(point_probes.size() + roll_probes.size());

  auto run_probes =
      [&](QueryService& service) -> std::vector<AggregateResult> {
    std::vector<AggregateResult> out;
    for (const QueryRegion& probe : point_probes) {
      out.push_back(
          Unwrap(service.UncachedAggregate(probe, AggregateFunc::kSum)));
    }
    for (const RollProbe& p : roll_probes) {
      std::vector<AggregateResult> groups = Unwrap(
          service.UncachedRollUp(p.region, p.dim, p.level,
                                 AggregateFunc::kSum));
      out.insert(out.end(), groups.begin(), groups.end());
    }
    return out;
  };

  // The serial oracle, once.
  QueryEngine engine(&env, &schema, &manager->edb());
  std::vector<AggregateResult> oracle;
  for (const QueryRegion& probe : point_probes) {
    oracle.push_back(Unwrap(engine.Aggregate(probe, AggregateFunc::kSum)));
  }
  for (const RollProbe& p : roll_probes) {
    std::vector<AggregateResult> groups =
        Unwrap(engine.RollUp(p.region, p.dim, p.level, AggregateFunc::kSum));
    oracle.insert(oracle.end(), groups.begin(), groups.end());
  }

  bool size_mismatch = false;
  double max_rel_err = 0;
  auto check = [&](const std::vector<AggregateResult>& got) {
    if (got.size() != oracle.size()) {
      size_mismatch = true;
      return;
    }
    for (size_t i = 0; i < got.size(); ++i) {
      const double want = oracle[i].value;
      const double err =
          std::abs(got[i].value - want) / std::max(1.0, std::abs(want));
      max_rel_err = std::max(max_rel_err, err);
    }
  };

  // Phase 1 — scan scaling at 8 shards.
  std::printf("%-8s %8s %10s %10s %10s\n", "threads", "shards", "queries",
              "qps", "speedup");
  double serial_qps = 0;
  double speedup_at_8 = 0;
  struct ScalingRow {
    int threads;
    int shards;
    int64_t queries;
    double qps;
    double speedup;
  };
  std::vector<ScalingRow> scaling;
  for (const int threads : {1, 2, 4, 8}) {
    ServeOptions sopts;
    sopts.num_threads = threads;
    sopts.cache_slots = 0;  // pure scan path
    sopts.num_shards = 8;
    QueryService service(manager.get(), sopts);
    check(run_probes(service));  // warm the buffer pool + verify
    Stopwatch watch;
    for (int64_t r = 0; r < rounds; ++r) (void)run_probes(service);
    const double secs = watch.ElapsedSeconds();
    const int64_t queries = queries_per_round * rounds;
    const double qps = secs > 0 ? static_cast<double>(queries) / secs : 0;
    if (threads == 1) serial_qps = qps;
    const double speedup = serial_qps > 0 ? qps / serial_qps : 0;
    if (threads == 8) speedup_at_8 = speedup;
    scaling.push_back(
        ScalingRow{threads, service.num_shards(), queries, qps, speedup});
    std::printf("%-8d %8d %10lld %10.1f %10.2f\n", threads,
                service.num_shards(), static_cast<long long>(queries), qps,
                speedup);
  }
  const bool sharded_correct = !size_mismatch && max_rel_err <= 1e-9;
  const bool speedup_ok = speedup_at_8 >= 3.0;
  std::printf("max_rel_error=%.3g sharded_correct=%s\n", max_rel_err,
              sharded_correct ? "true" : "false");

  // Phase 2 — shard isolation via commit straddles (see file header).
  // Batch facts are fully precise cells outside every alive component
  // bbox, so a batch touches exactly one shard; current measures persist
  // across the two configurations so `before` records stay accurate.
  std::vector<double> current_measure(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    current_measure[i] = raw[i].measure;
  }
  std::vector<Rect> component_boxes;
  for (const auto& c : manager->directory()) {
    if (c.alive) component_boxes.push_back(c.bbox);
  }
  auto run_isolation = [&](int num_shards, int64_t* straddles,
                           int64_t* queries_run,
                           int64_t* batches_run) -> bool {
    ServeOptions sopts;
    sopts.num_threads = 2;
    sopts.cache_slots = 0;
    sopts.num_shards = num_shards;
    QueryService service(manager.get(), sopts);
    const ShardMap& map = service.shard_map();
    const Hierarchy& h0 = schema.dim(0);
    const int ndims = schema.num_dims();
    std::vector<size_t> batch_facts;
    int batch_shard = -1;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (!FullyPrecise(schema, raw[i])) continue;
      const Rect cell = FactRegionToRect(schema, raw[i]);
      bool covered = false;
      for (const Rect& b : component_boxes) {
        if (RectsIntersect(cell, b, ndims)) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      const int s = map.ShardOfLeaf(h0.leaf_begin(raw[i].node[0]));
      if (batch_shard < 0) batch_shard = s;
      if (s != batch_shard) continue;
      batch_facts.push_back(i);
      if (batch_facts.size() >= static_cast<size_t>(batch_updates)) break;
    }
    if (batch_facts.empty()) return false;
    // Probe: a dimension-0 node wholly owned by a different shard. With
    // one shard there is none — the probe then shares the batch's lock,
    // which is exactly the baseline whose straddle count must be zero.
    QueryRegion probe = QueryRegion::All();
    bool probe_found = false;
    for (NodeId node : h0.nodes_at_level(1)) {
      const int sb = map.ShardOfLeaf(h0.leaf_begin(node));
      const int se = map.ShardOfLeaf(h0.leaf_end(node) - 1);
      if (num_shards > 1 && (sb != se || sb == batch_shard)) continue;
      probe = QueryRegion::All().With(0, node);
      probe_found = true;
      break;
    }
    if (!probe_found) return false;

    std::atomic<bool> done{false};
    std::atomic<int64_t> n_straddles{0};
    std::atomic<int64_t> n_queries{0};
    int64_t n_batches = 0;
    std::thread maint([&] {
      for (int64_t b = 0; b < batches; ++b) {
        // Wait for a fresh query to complete before each batch — the next
        // one starts immediately after, so the commit lands while a scan
        // is in flight even on a single-core box where this thread could
        // otherwise drain every batch before the querier is scheduled.
        const int64_t before_q = n_queries.load(std::memory_order_acquire);
        while (n_queries.load(std::memory_order_acquire) <= before_q) {
          std::this_thread::yield();
        }
        std::vector<FactUpdate> updates;
        updates.reserve(batch_facts.size());
        for (size_t i : batch_facts) {
          FactRecord before = raw[i];
          before.measure = current_measure[i];
          current_measure[i] += 1 + static_cast<double>(b);
          updates.push_back(FactUpdate{before, current_measure[i]});
        }
        DieOnError(service.ApplyUpdates(updates));
        ++n_batches;
      }
      done.store(true, std::memory_order_release);
    });
    std::thread querier([&] {
      while (!done.load(std::memory_order_acquire)) {
        const int64_t g0 = service.shard_generation(batch_shard);
        ShardSnapshot snap;
        (void)Unwrap(service.UncachedAggregate(probe, AggregateFunc::kSum,
                                               nullptr, &snap));
        const int64_t g1 = service.shard_generation(batch_shard);
        n_queries.fetch_add(1, std::memory_order_relaxed);
        if (g1 <= g0) continue;
        // If the query pinned the batch shard itself (unsharded), a bump
        // already visible to its locked snapshot happened before the
        // locks, not during — don't count the sliver.
        const int last =
            snap.first_shard + static_cast<int>(snap.generations.size()) - 1;
        if (batch_shard >= snap.first_shard && batch_shard <= last &&
            snap.generations[batch_shard - snap.first_shard] != g0) {
          continue;
        }
        n_straddles.fetch_add(1, std::memory_order_relaxed);
      }
    });
    maint.join();
    querier.join();
    *straddles = n_straddles.load();
    *queries_run = n_queries.load();
    *batches_run = n_batches;
    return true;
  };

  int64_t sharded_straddles = 0, sharded_queries = 0, sharded_batches = 0;
  int64_t serial_straddles = 0, serial_queries = 0, serial_batches = 0;
  const bool iso_ok =
      run_isolation(8, &sharded_straddles, &sharded_queries,
                    &sharded_batches) &&
      run_isolation(1, &serial_straddles, &serial_queries, &serial_batches);
  const bool maintenance_nonblocking =
      iso_ok && sharded_straddles > 0 && serial_straddles == 0;
  std::printf(
      "isolation: sharded %lld commit straddles over %lld queries, "
      "unsharded %lld over %lld -> nonblocking=%s\n",
      static_cast<long long>(sharded_straddles),
      static_cast<long long>(sharded_queries),
      static_cast<long long>(serial_straddles),
      static_cast<long long>(serial_queries),
      maintenance_nonblocking ? "true" : "false");

  // Phase 3 — byte-identical answers across shard counts. (The isolation
  // phase mutated the EDB, so re-baseline against shards=1.)
  bool deterministic = true;
  std::vector<AggregateResult> baseline;
  for (const int num_shards : {1, 2, 8}) {
    ServeOptions sopts;
    sopts.num_threads = 2;
    sopts.cache_slots = 0;
    sopts.num_shards = num_shards;
    QueryService service(manager.get(), sopts);
    std::vector<AggregateResult> got = run_probes(service);
    if (baseline.empty()) {
      baseline = std::move(got);
      continue;
    }
    if (got.size() != baseline.size() ||
        std::memcmp(baseline.data(), got.data(),
                    baseline.size() * sizeof(AggregateResult)) != 0) {
      deterministic = false;
    }
  }
  std::printf(
      "speedup@8=%.2fx (target >= 3x, hw=%lld) "
      "deterministic_across_shards=%s\n",
      speedup_at_8, static_cast<long long>(hw),
      deterministic ? "true" : "false");

  for (const ScalingRow& row : scaling) {
    json.BeginObject();
    json.Field("phase", "scan_scaling");
    json.Field("facts", facts_n);
    json.Field("threads", static_cast<int64_t>(row.threads));
    json.Field("shards", static_cast<int64_t>(row.shards));
    json.Field("queries", row.queries);
    json.Field("qps", row.qps);
    json.Field("speedup_vs_serial", row.speedup);
    json.Field("hardware_concurrency", hw);
    json.Field("speedup_ok", speedup_ok);
    json.Field("max_rel_error", max_rel_err);
    json.Field("sharded_correct", sharded_correct);
    json.EndObject();
  }
  json.BeginObject();
  json.Field("phase", "shard_isolation");
  json.Field("facts", facts_n);
  json.Field("batch_updates", batch_updates);
  json.Field("sharded_commit_straddles", sharded_straddles);
  json.Field("sharded_queries", sharded_queries);
  json.Field("sharded_batches", sharded_batches);
  json.Field("unsharded_commit_straddles", serial_straddles);
  json.Field("unsharded_queries", serial_queries);
  json.Field("maintenance_nonblocking", maintenance_nonblocking);
  json.EndObject();
  json.BeginObject();
  json.Field("phase", "determinism");
  json.Field("facts", facts_n);
  json.Field("deterministic_across_shards", deterministic);
  json.EndObject();
  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return (sharded_correct && maintenance_nonblocking && deterministic) ? 0 : 1;
}
