// Extension experiment: columnar compressed EDB extents (src/storage/extent,
// src/edb/columnar).
//
// Measures what the column-major mirror buys an aggregate scan: cold-cache
// data pages read (IoStats::page_reads) for the same probe set on (a) the
// row-major EDB file and (b) the columnar mirror with projection — only
// weight, measure, and the constrained/group leaf columns are decoded. The
// buffer pool is evicted before every scan so each page read hits the disk
// counter exactly once, and every columnar answer is compared against the
// row-path answer (identical summation order, so they must agree bit for
// bit; `answers_match` uses the 1e-9 contract and lands in the JSON).
//
// Headline number: columnar/row data-page ratio on aggregate scans
// (target: <= 0.6x, asserted by CI from BENCH_columnar.json).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "edb/columnar.h"
#include "edb/maintenance.h"
#include "edb/query.h"

using namespace iolap;

namespace {

struct Probe {
  QueryRegion region;
  int rollup_dim = -1;  // -1 = point aggregate, else RollUp at level 1
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts_n = flags.GetInt("facts", 60'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 4096);
  const int64_t rows_per_extent = flags.GetInt("rows_per_extent", 16384);
  JsonWriter json(flags.GetString("json", "BENCH_columnar.json"));

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec = AutomotiveLikeSpec(facts_n, 23);
  StorageEnv env(MakeWorkDir("columnar_bench"), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  AllocationOptions options;
  auto manager =
      Unwrap(MaintenanceManager::Build(env, schema, &facts, options));
  const TypedFile<EdbRecord>& edb = manager->edb();

  // The conversion step: one pass over the row file into compressed
  // column-major extents.
  Stopwatch convert_watch;
  ColumnarWriteOptions copts;
  copts.rows_per_extent = rows_per_extent;
  ColumnarEdb columnar = Unwrap(WriteColumnarEdb(env, schema, edb, copts));
  const double convert_ms = convert_watch.ElapsedSeconds() * 1e3;
  const int64_t row_file_pages =
      Unwrap(env.disk().SizeInPages(edb.file_id()));
  const int64_t col_file_pages = columnar.size_in_pages();

  // Probe set: the grand total, one region per level-2 node of each
  // dimension (dashboard panels — these constrain one leaf column), and a
  // level-1 rollup per dimension over the full cube.
  std::vector<Probe> probes = {{QueryRegion::All(), -1}};
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (schema.dim(d).num_levels() >= 3) {
      for (NodeId node : schema.dim(d).nodes_at_level(2)) {
        probes.push_back({QueryRegion::All().With(d, node), -1});
      }
    }
    probes.push_back({QueryRegion::All(), d});
  }
  const int64_t num_probes = static_cast<int64_t>(probes.size());
  std::printf(
      "facts=%lld edb_rows=%lld probes=%lld row_pages=%lld col_pages=%lld "
      "(convert %.1f ms)\n",
      static_cast<long long>(facts_n), static_cast<long long>(edb.size()),
      static_cast<long long>(num_probes),
      static_cast<long long>(row_file_pages),
      static_cast<long long>(col_file_pages), convert_ms);

  QueryEngine row_engine(&env, &schema, &edb);
  QueryEngine col_engine(&env, &schema, &edb);
  col_engine.set_columnar(&columnar);

  // Every probe scans cold: evict both files so IoStats::page_reads counts
  // exactly the data pages the scan demands.
  const auto evict = [&] {
    (void)env.pool().EvictFile(edb.file_id());
    (void)env.pool().EvictFile(columnar.file_id());
  };
  const auto run = [&](QueryEngine& engine, const Probe& p,
                       std::vector<double>* values) -> Status {
    if (p.rollup_dim < 0) {
      IOLAP_ASSIGN_OR_RETURN(AggregateResult r,
                             engine.Aggregate(p.region, AggregateFunc::kSum));
      values->push_back(r.value);
      return Status::Ok();
    }
    IOLAP_ASSIGN_OR_RETURN(
        auto groups,
        engine.RollUp(p.region, p.rollup_dim, 1, AggregateFunc::kSum));
    for (const AggregateResult& g : groups) values->push_back(g.value);
    return Status::Ok();
  };

  std::vector<double> row_values;
  evict();
  const int64_t row_reads0 = env.disk().stats().page_reads;
  Stopwatch row_watch;
  for (const Probe& p : probes) {
    evict();
    DieOnError(run(row_engine, p, &row_values));
  }
  const double row_us =
      row_watch.ElapsedSeconds() * 1e6 / static_cast<double>(num_probes);
  const int64_t row_reads = env.disk().stats().page_reads - row_reads0;

  std::vector<double> col_values;
  evict();
  const int64_t col_reads0 = env.disk().stats().page_reads;
  Stopwatch col_watch;
  for (const Probe& p : probes) {
    evict();
    DieOnError(run(col_engine, p, &col_values));
  }
  const double col_us =
      col_watch.ElapsedSeconds() * 1e6 / static_cast<double>(num_probes);
  const int64_t col_reads = env.disk().stats().page_reads - col_reads0;

  bool answers_match = row_values.size() == col_values.size();
  if (answers_match) {
    for (size_t i = 0; i < row_values.size(); ++i) {
      const double tol = 1e-9 * std::max(1.0, std::abs(row_values[i]));
      if (!(std::abs(row_values[i] - col_values[i]) <= tol)) {
        answers_match = false;
        break;
      }
    }
  }

  const double page_ratio =
      row_reads > 0 ? static_cast<double>(col_reads) /
                          static_cast<double>(row_reads)
                    : 0;
  const double file_ratio =
      row_file_pages > 0 ? static_cast<double>(col_file_pages) /
                               static_cast<double>(row_file_pages)
                         : 0;
  std::printf("%-14s %14s %12s\n", "phase", "data_pages", "avg_us");
  std::printf("%-14s %14lld %12.2f\n", "row_scan",
              static_cast<long long>(row_reads), row_us);
  std::printf("%-14s %14lld %12.2f\n", "columnar_scan",
              static_cast<long long>(col_reads), col_us);
  std::printf(
      "columnar/row data pages: %.3fx (target <= 0.6x); file size %.3fx; "
      "answers_match=%s\n",
      page_ratio, file_ratio, answers_match ? "true" : "false");

  json.BeginObject();
  json.Field("phase", "row_scan");
  json.Field("facts", facts_n);
  json.Field("queries", num_probes);
  json.Field("data_pages", row_reads);
  json.Field("file_pages", row_file_pages);
  json.Field("avg_us", row_us);
  json.Field("answers_match", answers_match);
  json.EndObject();
  json.BeginObject();
  json.Field("phase", "columnar_scan");
  json.Field("facts", facts_n);
  json.Field("queries", num_probes);
  json.Field("data_pages", col_reads);
  json.Field("file_pages", col_file_pages);
  json.Field("convert_ms", convert_ms);
  json.Field("rows_per_extent", rows_per_extent);
  json.Field("page_ratio_vs_row", page_ratio);
  json.Field("file_ratio_vs_row", file_ratio);
  json.Field("answers_match", answers_match);
  json.EndObject();
  if (!json.Write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return (answers_match && page_ratio <= 0.6) ? 0 : 1;
}
