// Table 2 + Section 11 dataset characteristics.
//
// Regenerates the paper's Table 2 (dimension hierarchies of the automotive
// dataset: distinct values per level and the fraction of facts assigned a
// value at each level) from our synthetic reproduction, plus the fact
// composition (precise/imprecise split, imprecision arity) and the
// connected-component census the text of Section 11.1/11.2 reports.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"

using namespace iolap;

namespace {

void ReportDataset(const StarSchema& schema, const DatasetSpec& spec,
                   const char* label) {
  StorageEnv env(MakeWorkDir("table2"), 4096);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  FactTableStats stats = Unwrap(AnalyzeFacts(env, schema, facts));

  PrintHeader(label);
  std::printf("facts: %" PRId64 " (%" PRId64 " precise, %" PRId64
              " imprecise = %.1f%%)\n",
              spec.num_facts, stats.precise, stats.imprecise,
              100.0 * stats.imprecise / spec.num_facts);
  std::printf("imprecise in 1 dim: %" PRId64 " (%.2f%% of imprecise), "
              "2 dims: %" PRId64 " (%.2f%%), 3 dims: %" PRId64 " (%.2f%%)\n",
              stats.by_imprecise_dims[1],
              100.0 * stats.by_imprecise_dims[1] / std::max<int64_t>(1, stats.imprecise),
              stats.by_imprecise_dims[2],
              100.0 * stats.by_imprecise_dims[2] / std::max<int64_t>(1, stats.imprecise),
              stats.by_imprecise_dims[3],
              100.0 * stats.by_imprecise_dims[3] / std::max<int64_t>(1, stats.imprecise));

  std::printf("\n%-10s | per-level (distinct values)(%% of facts), leaf -> ALL\n",
              "dimension");
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    std::printf("%-10s |", h.dimension_name().c_str());
    for (int level = 1; level <= h.num_levels(); ++level) {
      std::printf(" (%d)(%.1f%%)", h.num_nodes_at_level(level),
                  100.0 * stats.level_counts[d][level - 1] / spec.num_facts);
    }
    std::printf("\n");
  }

  // Component census (as reported in Sections 11.1-11.2).
  AllocationOptions options;
  options.algorithm = AlgorithmKind::kTransitive;
  AllocationResult result =
      Unwrap(Allocator::Run(env, schema, &facts, options));
  std::printf("\nsummary tables: %d\n", result.num_tables);
  std::printf("connected components (with imprecise facts): %" PRId64 "\n",
              result.components.num_components);
  std::printf("non-overlapped precise cells (singleton components): %" PRId64
              "\n",
              result.components.num_singleton_cells);
  std::printf("largest component: %" PRId64 " tuples\n",
              result.components.largest_component);
  std::printf("unallocatable imprecise facts: %" PRId64 "\n",
              result.unallocatable_facts);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto obs = ObsFromFlags(flags);
  const int64_t facts = flags.GetInt("facts", 200'000);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  std::printf("Reference (paper, real data): SR-AREA (1)(0%%) (30)(8%%) "
              "(694)(92%%); BRAND (1)(0%%) (14)(16%%) (203)(84%%);\n"
              "TIME (1)(0%%) (5)(3%%) (15)(9%%) (59)(88%%); LOCATION (1)(0%%) "
              "(10)(4%%) (51)(21%%) (900)(75%%)\n");

  ReportDataset(schema, AutomotiveLikeSpec(facts),
                "Automotive-like dataset (Table 2 composition, no ALL)");
  ReportDataset(schema, AllSyntheticSpec(facts),
                "Synthetic dataset (ALL allowed in <= 2 dims)");
  return 0;
}
