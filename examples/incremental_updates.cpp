// Keeping the Extended Database fresh under updates (Section 9).
//
// Builds the EDB once with the Transitive algorithm, which leaves behind a
// connected-component directory and an R-tree over component bounding
// boxes. Then it streams batches of measure updates through the
// MaintenanceManager and compares the incremental cost against rebuilding
// the EDB from scratch.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/maintenance.h"
#include "examples/example_util.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t num_facts = flags.GetInt("facts", 50'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 2048);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = num_facts;
  spec.seed = flags.GetInt("seed", 7);

  StorageEnv env(MakeWorkDir("maint"), buffer_pages);
  TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
  // Remember the raw facts so we can form updates (region + old measure).
  std::vector<FactRecord> raw;
  {
    auto cursor = facts.Scan(env.pool());
    FactRecord f;
    while (!cursor.done()) {
      DieOnError(cursor.Next(&f));
      raw.push_back(f);
    }
  }

  AllocationOptions options;
  options.policy = PolicyKind::kMeasure;  // measures drive δ -> real work
  Stopwatch build_watch;
  auto manager = Unwrap(MaintenanceManager::Build(env, schema, &facts, options));
  const double rebuild_seconds = build_watch.ElapsedSeconds();

  std::printf("Built EDB over %" PRId64 " facts in %.2fs: %" PRId64
              " EDB rows, %zu components indexed in an R-tree of height %d\n\n",
              num_facts, rebuild_seconds, manager->edb().size(),
              manager->directory().size(), manager->rtree().height());

  std::printf("%-10s %12s %12s %12s %12s %10s\n", "batch", "updates",
              "components", "tuples", "seconds", "vs rebuild");
  Rng rng(123);
  for (double percent : {0.1, 0.5, 1.0, 2.5}) {
    int64_t n = static_cast<int64_t>(num_facts * percent / 100.0);
    std::vector<FactUpdate> updates;
    std::vector<bool> used(raw.size(), false);
    while (static_cast<int64_t>(updates.size()) < n) {
      size_t pick = rng.Uniform(raw.size());
      if (used[pick]) continue;
      used[pick] = true;
      updates.push_back(FactUpdate{raw[pick], raw[pick].measure * 1.1});
      raw[pick].measure *= 1.1;  // keep `before` accurate across batches
    }
    MaintenanceStats stats;
    DieOnError(manager->ApplyUpdates(updates, &stats));
    std::printf("%9.1f%% %12zu %12" PRId64 " %12" PRId64 " %12.3f %9.2fx\n",
                percent, updates.size(), stats.components_touched,
                stats.tuples_fetched, stats.seconds,
                stats.seconds / rebuild_seconds);
  }
  std::printf("\nRatios well below 1.0 mean incremental maintenance beats "
              "rebuilding (Figure 6 of the paper).\n");
  return 0;
}
