// Quickstart: the paper's running example (Table 1 / Figure 1) end to end.
//
// Builds the two-dimensional Location x Automobile schema, loads the 14
// facts p1..p14 (5 precise, 9 imprecise), runs EM-Count allocation with the
// Transitive algorithm, prints the resulting Extended Database, and answers
// a few aggregation queries over it.

#include <cinttypes>
#include <cstdio>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/query.h"
#include "examples/example_util.h"
#include "storage/storage_env.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  StorageEnv env(MakeWorkDir("quickstart"),
                 flags.GetInt("buffer_pages", 256));

  StarSchema schema = Unwrap(MakePaperExampleSchema());
  TypedFile<FactRecord> facts = Unwrap(MakePaperExampleFacts(env, schema));
  // Keep a second copy for the baseline query semantics.
  TypedFile<FactRecord> original = Unwrap(MakePaperExampleFacts(env, schema));

  AllocationOptions options;
  options.policy = PolicyKind::kCount;
  options.algorithm = AlgorithmKind::kTransitive;
  options.epsilon = flags.GetDouble("epsilon", 1e-6);

  AllocationResult result = Unwrap(Allocator::Run(env, schema, &facts, options));

  std::printf("== Allocation (%s, %s, eps=%g) ==\n",
              AlgorithmName(options.algorithm), PolicyName(options.policy),
              options.epsilon);
  std::printf("facts: %" PRId64 " precise + %" PRId64
              " imprecise; cells |C| = %" PRId64 "\n",
              result.num_precise, result.num_imprecise, result.num_cells);
  std::printf("summary tables: %d, connected components: %" PRId64
              " (largest %" PRId64 " tuples)\n",
              result.num_tables, result.components.num_components,
              result.components.largest_component);
  std::printf("iterations (max over components): %d\n\n", result.iterations);

  std::printf("== Extended Database D* ==\n");
  std::printf("%6s  %-22s  %8s  %8s\n", "fact", "cell", "p(c,r)", "measure");
  auto cursor = result.edb.Scan(env.pool());
  EdbRecord rec;
  while (!cursor.done()) {
    DieOnError(cursor.Next(&rec));
    std::string cell = schema.dim(0).name(
                           schema.dim(0).leaf_node(rec.leaf[0])) +
                       ", " +
                       schema.dim(1).name(schema.dim(1).leaf_node(rec.leaf[1]));
    std::printf("%6" PRId64 "  %-22s  %8.4f  %8.1f\n", rec.fact_id,
                cell.c_str(), rec.weight, rec.measure);
  }

  std::printf("\n== Aggregation queries ==\n");
  QueryEngine engine(&env, &schema, &result.edb, &original);
  NodeId east = Unwrap(schema.dim(0).FindNode("East"));
  NodeId truck = Unwrap(schema.dim(1).FindNode("Truck"));
  struct Q {
    const char* label;
    QueryRegion region;
  } queries[] = {
      {"SUM(Sales)  over ALL", QueryRegion::All()},
      {"SUM(Sales)  over East", QueryRegion::All().With(0, east)},
      {"SUM(Sales)  over East x Truck",
       QueryRegion::All().With(0, east).With(1, truck)},
  };
  for (const Q& q : queries) {
    AggregateResult allocated = Unwrap(engine.Aggregate(
        q.region, AggregateFunc::kSum, ImpreciseSemantics::kAllocationWeighted));
    AggregateResult none = Unwrap(engine.Aggregate(
        q.region, AggregateFunc::kSum, ImpreciseSemantics::kNone));
    AggregateResult contains = Unwrap(engine.Aggregate(
        q.region, AggregateFunc::kSum, ImpreciseSemantics::kContains));
    AggregateResult overlaps = Unwrap(engine.Aggregate(
        q.region, AggregateFunc::kSum, ImpreciseSemantics::kOverlaps));
    std::printf("%-30s allocated=%8.2f  (None=%.1f Contains=%.1f Overlaps=%.1f)\n",
                q.label, allocated.value, none.value, contains.value,
                overlaps.value);
  }
  std::printf("\nNote how the allocation-weighted answer always lies inside "
              "the [Contains, Overlaps] bracket.\n");
  return 0;
}
