// Comparing allocation policies (Section 3.2's template instantiations).
//
// The same imprecise fact can be allocated very differently depending on
// the assumed correlation structure: Uniform spreads it evenly over its
// possible completions, EM-Count follows where the *data* is dense, and
// EM-Measure follows where the *measure mass* is. This example runs all
// three on the paper's Table 1 and on a skewed synthetic dataset, and shows
// how the same query's answer moves.

#include <cinttypes>
#include <cstdio>
#include <map>

#include "alloc/allocator.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/query.h"
#include "examples/example_util.h"

using namespace iolap;

namespace {

void RunPaperExample(PolicyKind policy) {
  StorageEnv env(MakeWorkDir("policy"), 256);
  StarSchema schema = Unwrap(MakePaperExampleSchema());
  TypedFile<FactRecord> facts = Unwrap(MakePaperExampleFacts(env, schema));
  AllocationOptions options;
  options.policy = policy;
  options.epsilon = 1e-8;
  options.max_iterations = 200;
  AllocationResult result =
      Unwrap(Allocator::Run(env, schema, &facts, options));

  // Where does p11 = (ALL, Civic, 80) go? Its completions in C are
  // (MA, Civic) and (CA, Civic).
  std::printf("%-11s: p11 (ALL, Civic) ->", PolicyName(policy));
  auto cursor = result.edb.Scan(env.pool());
  EdbRecord rec;
  std::map<std::string, double> weights;
  while (!cursor.done()) {
    DieOnError(cursor.Next(&rec));
    if (rec.fact_id != 11) continue;
    std::string cell =
        schema.dim(0).name(schema.dim(0).leaf_node(rec.leaf[0]));
    weights[cell] += rec.weight;
  }
  for (const auto& [cell, w] : weights) {
    std::printf("  %s: %.4f", cell.c_str(), w);
  }
  std::printf("   (%d iterations)\n", result.iterations);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  std::printf("== Paper example: allocation of p11 under each policy ==\n");
  std::printf("(MA holds 2 precise facts of mass 250; CA holds 2 of mass "
              "225)\n");
  for (PolicyKind policy :
       {PolicyKind::kUniform, PolicyKind::kCount, PolicyKind::kMeasure}) {
    RunPaperExample(policy);
  }

  std::printf("\n== Convergence cost vs epsilon (EM-Count, synthetic) ==\n");
  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = flags.GetInt("facts", 30'000);
  spec.allow_all = true;
  spec.seed = 3;
  std::printf("%10s %12s %12s\n", "epsilon", "iterations", "final_eps");
  for (double eps : {0.1, 0.05, 0.01, 0.005, 0.001}) {
    StorageEnv env(MakeWorkDir("policy_eps"), 4096);
    TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
    AllocationOptions options;
    options.algorithm = AlgorithmKind::kBlock;
    options.epsilon = eps;
    AllocationResult result =
        Unwrap(Allocator::Run(env, schema, &facts, options));
    std::printf("%10g %12d %12.2g\n", eps, result.iterations,
                result.final_eps);
  }
  std::printf("\nSmaller epsilon -> more EM iterations -> more scans for "
              "Block/Independent; Transitive's component-local convergence "
              "sidesteps most of that (see bench_fig5*).\n");
  return 0;
}
