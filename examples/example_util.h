#ifndef IOLAP_EXAMPLES_EXAMPLE_UTIL_H_
#define IOLAP_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/status.h"

namespace iolap {

/// Minimal --key=value flag reader shared by the examples and benches.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return std::strtoll(value.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return std::strtod(value.c_str(), nullptr);
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return value;
  }

 private:
  bool Lookup(const std::string& name, std::string* out) const {
    std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        *out = argv_[i] + prefix.size();
        return true;
      }
    }
    return false;
  }

  int argc_;
  char** argv_;
};

/// Creates a unique scratch directory under TMPDIR (or /tmp).
inline std::string MakeWorkDir(const char* tag) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/iolap_" +
                     tag + "_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  if (dir == nullptr) {
    std::fprintf(stderr, "failed to create work dir\n");
    std::exit(1);
  }
  return tmpl;
}

inline void DieOnError(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  DieOnError(result.status());
  return std::move(result).value();
}

}  // namespace iolap

#endif  // IOLAP_EXAMPLES_EXAMPLE_UTIL_H_
