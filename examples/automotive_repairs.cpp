// A realistic scenario: warranty-repair analysis over imprecise records.
//
// A manufacturer records repairs against the four dimensions of the paper's
// Table 2 (service area, brand, time, location). A third of the records are
// imprecise ("somewhere in the Northeast", "some week this quarter"). This
// example generates such a dataset, builds the Extended Database with each
// external algorithm, and compares their cost; then it answers rollup
// queries that would be unanswerable (or badly biased) without allocation.

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "alloc/allocator.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/query.h"
#include "examples/example_util.h"

using namespace iolap;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t num_facts = flags.GetInt("facts", 100'000);
  const int64_t buffer_pages = flags.GetInt("buffer_pages", 2048);
  const double epsilon = flags.GetDouble("epsilon", 0.005);

  StarSchema schema = Unwrap(MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = num_facts;
  spec.seed = flags.GetInt("seed", 42);

  std::printf("Repairs dataset: %" PRId64 " facts, %.0f%% imprecise, "
              "buffer %" PRId64 " pages\n\n",
              num_facts, spec.imprecise_fraction * 100, buffer_pages);

  std::printf("%-12s %5s %6s %10s %10s %9s %12s\n", "algorithm", "iters",
              "groups", "alloc I/Os", "alloc sec", "emit sec", "components");
  AllocationResult last;
  StorageEnv* query_env = nullptr;
  // The Transitive run's environment must outlive the loop: its EDB backs
  // the queries below.
  auto transitive_env = std::make_unique<StorageEnv>(
      MakeWorkDir("auto_transitive"), buffer_pages);
  for (AlgorithmKind algo : {AlgorithmKind::kIndependent, AlgorithmKind::kBlock,
                             AlgorithmKind::kTransitive}) {
    StorageEnv local(MakeWorkDir("auto"), buffer_pages);
    StorageEnv& env =
        algo == AlgorithmKind::kTransitive ? *transitive_env : local;
    TypedFile<FactRecord> facts = Unwrap(GenerateFacts(env, schema, spec));
    AllocationOptions options;
    options.algorithm = algo;
    options.epsilon = epsilon;
    AllocationResult result =
        Unwrap(Allocator::Run(env, schema, &facts, options));
    std::printf("%-12s %5d %6d %10" PRId64 " %10.2f %9.2f %12" PRId64 "\n",
                AlgorithmName(algo), result.iterations,
                algo == AlgorithmKind::kIndependent ? result.chain_width
                                                    : result.num_groups,
                result.alloc_io.total(), result.alloc_seconds,
                result.emit_seconds, result.components.num_components);
    if (algo == AlgorithmKind::kTransitive) {
      last = result;
      query_env = &env;
    }
  }

  // Rollup queries against the Transitive run's EDB.
  std::printf("\n== Repairs per region (allocation-weighted) ==\n");
  QueryEngine engine(query_env, &schema, &last.edb);
  const Hierarchy& location = schema.dim(3);
  double grand_total = 0;
  for (NodeId region : location.nodes_at_level(3)) {
    QueryRegion q = QueryRegion::All().With(3, region);
    AggregateResult count =
        Unwrap(engine.Aggregate(q, AggregateFunc::kCount));
    AggregateResult cost = Unwrap(engine.Aggregate(q, AggregateFunc::kSum));
    std::printf("  %-14s  repairs %10.1f   cost %12.1f\n",
                location.name(region).c_str(), count.value, cost.value);
    grand_total += count.value;
  }
  std::printf("  %-14s  repairs %10.1f   (= allocatable facts; weights sum "
              "to 1 per fact)\n",
              "TOTAL", grand_total);
  return 0;
}
