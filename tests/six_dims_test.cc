// Stress the dimensionality boundary: kMaxDims = 6 dimensions with deep
// hierarchies, end to end through preprocessing, every algorithm, queries
// and maintenance.

#include <gtest/gtest.h>

#include <map>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

StarSchema MakeSixDimSchema() {
  std::vector<Hierarchy> dims;
  const std::vector<std::vector<int>> shapes = {
      {2, 2}, {3, 2}, {2, 3}, {2, 2, 2}, {4}, {2, 2},
  };
  for (size_t d = 0; d < shapes.size(); ++d) {
    auto h = HierarchyBuilder::Uniform("D" + std::to_string(d), shapes[d]);
    EXPECT_TRUE(h.ok());
    dims.push_back(std::move(h).value());
  }
  auto schema = StarSchema::Create(std::move(dims));
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

TEST(SixDimsTest, SchemaRejectsSevenDims) {
  std::vector<Hierarchy> dims;
  for (int d = 0; d < 7; ++d) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        Hierarchy h, HierarchyBuilder::Uniform("D" + std::to_string(d), {2}));
    dims.push_back(std::move(h));
  }
  EXPECT_EQ(StarSchema::Create(std::move(dims)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SixDimsTest, AlgorithmsAgreeInSixDimensions) {
  StarSchema schema = MakeSixDimSchema();
  using Key = std::pair<FactId, std::array<int32_t, kMaxDims>>;
  std::map<Key, double> reference;
  bool first = true;
  for (AlgorithmKind algo :
       {AlgorithmKind::kBasic, AlgorithmKind::kIndependent,
        AlgorithmKind::kBlock, AlgorithmKind::kTransitive}) {
    StorageEnv env(MakeTempDir(), 16);
    DatasetSpec spec;
    spec.num_facts = 400;
    spec.imprecise_fraction = 0.45;
    spec.allow_all = true;
    spec.seed = 11;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
    AllocationOptions options;
    options.algorithm = algo;
    options.epsilon = 0;
    options.max_iterations = 4;
    options.early_convergence = false;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                               Allocator::Run(env, schema, &facts, options));
    std::map<Key, double> edb;
    auto cursor = result.edb.Scan(env.pool());
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&rec));
      std::array<int32_t, kMaxDims> key{};
      std::memcpy(key.data(), rec.leaf, sizeof(rec.leaf));
      edb[{rec.fact_id, key}] = rec.weight;
    }
    if (first) {
      reference = edb;
      first = false;
      EXPECT_FALSE(edb.empty());
    } else {
      ASSERT_EQ(edb.size(), reference.size()) << AlgorithmName(algo);
      for (const auto& [key, weight] : reference) {
        ASSERT_NE(edb.find(key), edb.end()) << AlgorithmName(algo);
        EXPECT_NEAR(edb.at(key), weight, 1e-9) << AlgorithmName(algo);
      }
    }
  }
}

TEST(SixDimsTest, QueriesAndMaintenanceWork) {
  StarSchema schema = MakeSixDimSchema();
  StorageEnv env(MakeTempDir(), 128);
  DatasetSpec spec;
  spec.num_facts = 300;
  spec.imprecise_fraction = 0.4;
  spec.seed = 12;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  std::vector<FactRecord> raw;
  {
    auto cursor = facts.Scan(env.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      raw.push_back(f);
    }
  }
  AllocationOptions options;
  options.policy = PolicyKind::kMeasure;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &facts, options));

  QueryEngine engine(&env, &schema, &manager->edb());
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult total,
      engine.Aggregate(QueryRegion::All(), AggregateFunc::kCount));
  EXPECT_GT(total.value, 0);
  // Rollup over the deepest dimension at its middle level.
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto groups,
      engine.RollUp(QueryRegion::All(), /*dim=*/3, /*level=*/3,
                    AggregateFunc::kCount));
  double sum = 0;
  for (const auto& g : groups) sum += g.value;
  EXPECT_NEAR(sum, total.value, 1e-9);

  // Maintenance round-trip in 6 dims.
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(
      manager->ApplyUpdates({FactUpdate{raw[0], raw[0].measure + 5}}, &stats));
  FactRecord insert = raw[1];
  insert.fact_id = 99'999;
  IOLAP_ASSERT_OK(manager->InsertFacts({insert}, &stats));
  IOLAP_ASSERT_OK(manager->DeleteFacts({raw[2]}, &stats));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult after,
      engine.Aggregate(QueryRegion::All(), AggregateFunc::kCount));
  EXPECT_NEAR(after.value, total.value, 1.0 + 1e-6);  // -1 fact +1 fact
}

}  // namespace
}  // namespace iolap
