#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/result.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

class DiskManagerTest : public ::testing::Test {
 protected:
  DiskManagerTest() : disk_(MakeTempDir()) {}
  DiskManager disk_;
};

TEST_F(DiskManagerTest, CreateAndRoundtrip) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte out[kPageSize];
  std::byte in[kPageSize];
  std::memset(out, 0xAB, kPageSize);
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, out));
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, in));
  EXPECT_EQ(std::memcmp(out, in, kPageSize), 0);
}

TEST_F(DiskManagerTest, GrowsDensely) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, page));
  IOLAP_ASSERT_OK(disk_.WritePage(f, 1, page));
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t size, disk_.SizeInPages(f));
  EXPECT_EQ(size, 2);
  // Writing page 3 (skipping 2) would leave a hole.
  EXPECT_EQ(disk_.WritePage(f, 3, page).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskManagerTest, ReadBeyondEofFails) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize];
  EXPECT_EQ(disk_.ReadPage(f, 0, page).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskManagerTest, OverwriteExistingPage) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte a[kPageSize], b[kPageSize], got[kPageSize];
  std::memset(a, 1, kPageSize);
  std::memset(b, 2, kPageSize);
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, a));
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, b));
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, got));
  EXPECT_EQ(std::memcmp(b, got, kPageSize), 0);
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t size, disk_.SizeInPages(f));
  EXPECT_EQ(size, 1);
}

TEST_F(DiskManagerTest, StatsCountPages) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  for (int i = 0; i < 5; ++i) IOLAP_ASSERT_OK(disk_.WritePage(f, i, page));
  for (int i = 0; i < 3; ++i) IOLAP_ASSERT_OK(disk_.ReadPage(f, i, page));
  EXPECT_EQ(disk_.stats().page_writes, 5);
  EXPECT_EQ(disk_.stats().page_reads, 3);
  EXPECT_EQ(disk_.stats().total(), 8);
  disk_.ResetStats();
  EXPECT_EQ(disk_.stats().total(), 0);
}

TEST_F(DiskManagerTest, TruncateShrinks) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  for (int i = 0; i < 4; ++i) IOLAP_ASSERT_OK(disk_.WritePage(f, i, page));
  IOLAP_ASSERT_OK(disk_.Truncate(f, 2));
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t size, disk_.SizeInPages(f));
  EXPECT_EQ(size, 2);
  EXPECT_EQ(disk_.ReadPage(f, 2, page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk_.Truncate(f, 5).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskManagerTest, DeleteFileInvalidatesId) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  IOLAP_ASSERT_OK(disk_.DeleteFile(f));
  std::byte page[kPageSize];
  EXPECT_EQ(disk_.ReadPage(f, 0, page).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk_.DeleteFile(f).code(), StatusCode::kNotFound);
}

TEST_F(DiskManagerTest, ManyFilesAreIndependent) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId a, disk_.CreateFile("a"));
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId b, disk_.CreateFile("b"));
  std::byte pa[kPageSize], pb[kPageSize], got[kPageSize];
  std::memset(pa, 7, kPageSize);
  std::memset(pb, 9, kPageSize);
  IOLAP_ASSERT_OK(disk_.WritePage(a, 0, pa));
  IOLAP_ASSERT_OK(disk_.WritePage(b, 0, pb));
  IOLAP_ASSERT_OK(disk_.ReadPage(a, 0, got));
  EXPECT_EQ(got[0], std::byte{7});
  IOLAP_ASSERT_OK(disk_.ReadPage(b, 0, got));
  EXPECT_EQ(got[0], std::byte{9});
}

}  // namespace
}  // namespace iolap
