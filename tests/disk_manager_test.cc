#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/result.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

class DiskManagerTest : public ::testing::Test {
 protected:
  DiskManagerTest() : disk_(MakeTempDir()) {}
  DiskManager disk_;
};

TEST_F(DiskManagerTest, CreateAndRoundtrip) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte out[kPageSize];
  std::byte in[kPageSize];
  std::memset(out, 0xAB, kPageSize);
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, out));
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, in));
  EXPECT_EQ(std::memcmp(out, in, kPageSize), 0);
}

TEST_F(DiskManagerTest, GrowsDensely) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, page));
  IOLAP_ASSERT_OK(disk_.WritePage(f, 1, page));
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t size, disk_.SizeInPages(f));
  EXPECT_EQ(size, 2);
  // Writing page 3 (skipping 2) would leave a hole.
  EXPECT_EQ(disk_.WritePage(f, 3, page).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskManagerTest, ReadBeyondEofFails) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize];
  EXPECT_EQ(disk_.ReadPage(f, 0, page).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskManagerTest, OverwriteExistingPage) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte a[kPageSize], b[kPageSize], got[kPageSize];
  std::memset(a, 1, kPageSize);
  std::memset(b, 2, kPageSize);
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, a));
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, b));
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, got));
  EXPECT_EQ(std::memcmp(b, got, kPageSize), 0);
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t size, disk_.SizeInPages(f));
  EXPECT_EQ(size, 1);
}

TEST_F(DiskManagerTest, StatsCountPages) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  for (int i = 0; i < 5; ++i) IOLAP_ASSERT_OK(disk_.WritePage(f, i, page));
  for (int i = 0; i < 3; ++i) IOLAP_ASSERT_OK(disk_.ReadPage(f, i, page));
  EXPECT_EQ(disk_.stats().page_writes, 5);
  EXPECT_EQ(disk_.stats().page_reads, 3);
  EXPECT_EQ(disk_.stats().total(), 8);
  disk_.ResetStats();
  EXPECT_EQ(disk_.stats().total(), 0);
}

TEST_F(DiskManagerTest, TruncateShrinks) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  for (int i = 0; i < 4; ++i) IOLAP_ASSERT_OK(disk_.WritePage(f, i, page));
  IOLAP_ASSERT_OK(disk_.Truncate(f, 2));
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t size, disk_.SizeInPages(f));
  EXPECT_EQ(size, 2);
  EXPECT_EQ(disk_.ReadPage(f, 2, page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk_.Truncate(f, 5).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskManagerTest, DeleteFileInvalidatesId) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  IOLAP_ASSERT_OK(disk_.DeleteFile(f));
  std::byte page[kPageSize];
  EXPECT_EQ(disk_.ReadPage(f, 0, page).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk_.DeleteFile(f).code(), StatusCode::kNotFound);
}

TEST_F(DiskManagerTest, ManyFilesAreIndependent) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId a, disk_.CreateFile("a"));
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId b, disk_.CreateFile("b"));
  std::byte pa[kPageSize], pb[kPageSize], got[kPageSize];
  std::memset(pa, 7, kPageSize);
  std::memset(pb, 9, kPageSize);
  IOLAP_ASSERT_OK(disk_.WritePage(a, 0, pa));
  IOLAP_ASSERT_OK(disk_.WritePage(b, 0, pb));
  IOLAP_ASSERT_OK(disk_.ReadPage(a, 0, got));
  EXPECT_EQ(got[0], std::byte{7});
  IOLAP_ASSERT_OK(disk_.ReadPage(b, 0, got));
  EXPECT_EQ(got[0], std::byte{9});
}

// ---------------------------------------------------------------------------
// Retry policy: transient (UNAVAILABLE) failures are retried with backoff
// when a policy is installed; permanent (IO_ERROR) failures never are; the
// default policy retries nothing.

RetryPolicy FastRetries(int max_retries) {
  RetryPolicy policy;
  policy.max_retries = max_retries;
  policy.backoff_initial_us = 1;  // keep the test fast
  policy.backoff_max_us = 10;
  return policy;
}

TEST_F(DiskManagerTest, TransientFailureRetriedToSuccess) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, page));
  disk_.SetRetryPolicy(FastRetries(5));
  int failures = 3;
  int attempts = 0;
  disk_.SetFaultInjector([&](char op, FileId, PageId) {
    if (op != 'r') return Status::Ok();
    ++attempts;
    return --failures >= 0 ? Status::Unavailable("transient") : Status::Ok();
  });
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, page));
  EXPECT_EQ(attempts, 4);  // 3 transient failures + the success
}

TEST_F(DiskManagerTest, PermanentFailureIsNotRetried) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, page));
  disk_.SetRetryPolicy(FastRetries(5));
  int attempts = 0;
  disk_.SetFaultInjector([&](char op, FileId, PageId) {
    if (op != 'r') return Status::Ok();
    ++attempts;
    return Status::IoError("permanent");
  });
  Status st = disk_.ReadPage(f, 0, page);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(attempts, 1);
}

TEST_F(DiskManagerTest, DefaultPolicySurfacesTransientFailures) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, page));
  int attempts = 0;
  disk_.SetFaultInjector([&](char op, FileId, PageId) {
    if (op != 'r') return Status::Ok();
    ++attempts;
    return Status::Unavailable("transient");
  });
  Status st = disk_.ReadPage(f, 0, page);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts, 1);
}

TEST_F(DiskManagerTest, RetryExhaustionReportsAttempts) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, page));
  disk_.SetRetryPolicy(FastRetries(2));
  int attempts = 0;
  disk_.SetFaultInjector([&](char op, FileId, PageId) {
    if (op != 'r') return Status::Ok();
    ++attempts;
    return Status::Unavailable("transient");
  });
  Status st = disk_.ReadPage(f, 0, page);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts, 3);  // first attempt + 2 retries
  EXPECT_NE(st.message().find("exhausted"), std::string::npos);
}

TEST_F(DiskManagerTest, WritesAreRetriedToo) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  std::byte page[kPageSize] = {};
  disk_.SetRetryPolicy(FastRetries(3));
  int failures = 2;
  disk_.SetFaultInjector([&](char op, FileId, PageId) {
    if (op != 'w') return Status::Ok();
    return --failures >= 0 ? Status::Unavailable("transient") : Status::Ok();
  });
  IOLAP_ASSERT_OK(disk_.WritePage(f, 0, page));
  std::byte got[kPageSize];
  disk_.SetFaultInjector(nullptr);
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, got));
}

// ---------------------------------------------------------------------------
// ExportPages / ImportPages: the raw image copies behind checkpoints.

TEST_F(DiskManagerTest, ExportImportRoundtrip) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId src, disk_.CreateFile("src"));
  std::byte page[kPageSize];
  for (int p = 0; p < 5; ++p) {
    std::memset(page, p + 1, kPageSize);
    IOLAP_ASSERT_OK(disk_.WritePage(src, p, page));
  }
  IoStats before = disk_.stats();
  std::string image = MakeTempDir() + "/image";
  IOLAP_ASSERT_OK(disk_.ExportPages(src, 5, image));

  IOLAP_ASSERT_OK_AND_ASSIGN(FileId dst, disk_.CreateFile("dst"));
  IOLAP_ASSERT_OK(disk_.ImportPages(dst, image, 5));
  // Checkpoint copies are not demand I/O: the counters must not move.
  EXPECT_EQ(disk_.stats().total(), before.total());
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t size, disk_.SizeInPages(dst));
  EXPECT_EQ(size, 5);
  std::byte got[kPageSize];
  for (int p = 0; p < 5; ++p) {
    IOLAP_ASSERT_OK(disk_.ReadPage(dst, p, got));
    EXPECT_EQ(got[0], std::byte(p + 1)) << "page " << p;
  }
}

TEST_F(DiskManagerTest, ImportIntoNonEmptyFileRefused) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId src, disk_.CreateFile("src"));
  std::byte page[kPageSize] = {};
  IOLAP_ASSERT_OK(disk_.WritePage(src, 0, page));
  std::string image = MakeTempDir() + "/image";
  IOLAP_ASSERT_OK(disk_.ExportPages(src, 1, image));
  EXPECT_EQ(disk_.ImportPages(src, image, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DiskManagerTest, CheckpointOpsHitTheFaultInjector) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId src, disk_.CreateFile("src"));
  std::byte page[kPageSize] = {};
  IOLAP_ASSERT_OK(disk_.WritePage(src, 0, page));
  disk_.SetFaultInjector([](char op, FileId, PageId) {
    return op == 'c' ? Status::IoError("injected checkpoint fault")
                     : Status::Ok();
  });
  EXPECT_EQ(disk_.ExportPages(src, 1, MakeTempDir() + "/image").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace iolap
