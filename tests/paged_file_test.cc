#include "storage/paged_file.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/result.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

struct Rec {
  int64_t key;
  int64_t payload;
};

class PagedFileTest : public ::testing::Test {
 protected:
  PagedFileTest() : disk_(MakeTempDir()), pool_(&disk_, 8) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(PagedFileTest, AppendAndGet) {
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(disk_, "t"));
  for (int64_t i = 0; i < 1000; ++i) {
    IOLAP_ASSERT_OK(file.Append(pool_, Rec{i, i * i}));
  }
  EXPECT_EQ(file.size(), 1000);
  for (int64_t i : {int64_t{0}, int64_t{255}, int64_t{256}, int64_t{999}}) {
    IOLAP_ASSERT_OK_AND_ASSIGN(Rec r, file.Get(pool_, i));
    EXPECT_EQ(r.key, i);
    EXPECT_EQ(r.payload, i * i);
  }
  EXPECT_FALSE(file.Get(pool_, 1000).ok());
  EXPECT_FALSE(file.Get(pool_, -1).ok());
}

TEST_F(PagedFileTest, RecordsPerPageIsFloor) {
  EXPECT_EQ(TypedFile<Rec>::kRecordsPerPage,
            static_cast<int64_t>(kPageSize / sizeof(Rec)));
  struct Odd {
    char data[1000];
  };
  EXPECT_EQ(TypedFile<Odd>::kRecordsPerPage, 4);
}

TEST_F(PagedFileTest, PutOverwrites) {
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(disk_, "t"));
  IOLAP_ASSERT_OK(file.Append(pool_, Rec{1, 1}));
  IOLAP_ASSERT_OK(file.Put(pool_, 0, Rec{2, 2}));
  IOLAP_ASSERT_OK_AND_ASSIGN(Rec r, file.Get(pool_, 0));
  EXPECT_EQ(r.key, 2);
  EXPECT_EQ(file.size(), 1);
}

TEST_F(PagedFileTest, CursorScansSequentially) {
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(disk_, "t"));
  const int64_t n = 3 * TypedFile<Rec>::kRecordsPerPage + 7;
  auto appender = file.MakeAppender(pool_);
  for (int64_t i = 0; i < n; ++i) {
    IOLAP_ASSERT_OK(appender.Append(Rec{i, -i}));
  }
  appender.Close();
  auto cursor = file.Scan(pool_);
  int64_t expect = 0;
  Rec r;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&r));
    EXPECT_EQ(r.key, expect);
    ++expect;
  }
  EXPECT_EQ(expect, n);
}

TEST_F(PagedFileTest, CursorSubrange) {
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(disk_, "t"));
  for (int64_t i = 0; i < 100; ++i) {
    IOLAP_ASSERT_OK(file.Append(pool_, Rec{i, 0}));
  }
  auto cursor = file.Scan(pool_, 40, 60);
  Rec r;
  int64_t count = 0;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&r));
    EXPECT_EQ(r.key, 40 + count);
    ++count;
  }
  EXPECT_EQ(count, 20);
}

TEST_F(PagedFileTest, MutableScanReadModifyWrite) {
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(disk_, "t"));
  const int64_t n = 2 * TypedFile<Rec>::kRecordsPerPage;
  for (int64_t i = 0; i < n; ++i) {
    IOLAP_ASSERT_OK(file.Append(pool_, Rec{i, 0}));
  }
  auto cursor = file.MutableScan(pool_);
  Rec r;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Read(&r));
    r.payload = r.key * 10;
    IOLAP_ASSERT_OK(cursor.Write(r));
    cursor.Advance();
  }
  IOLAP_ASSERT_OK(pool_.FlushAll());
  for (int64_t i = 0; i < n; i += 97) {
    IOLAP_ASSERT_OK_AND_ASSIGN(Rec got, file.Get(pool_, i));
    EXPECT_EQ(got.payload, i * 10);
  }
}

TEST_F(PagedFileTest, ReadOnlyCursorRejectsWrite) {
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(disk_, "t"));
  IOLAP_ASSERT_OK(file.Append(pool_, Rec{1, 1}));
  auto cursor = file.Scan(pool_);
  EXPECT_EQ(cursor.Write(Rec{2, 2}).code(), StatusCode::kFailedPrecondition);
}

TEST_F(PagedFileTest, ScanPinsOnePageAtATime) {
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(disk_, "t"));
  const int64_t n = 10 * TypedFile<Rec>::kRecordsPerPage;
  auto appender = file.MakeAppender(pool_);
  for (int64_t i = 0; i < n; ++i) IOLAP_ASSERT_OK(appender.Append(Rec{i, 0}));
  appender.Close();
  IOLAP_ASSERT_OK(pool_.EvictFile(file.file_id()));

  // A tiny pool (2 frames) must still support a full scan.
  BufferPool small(&disk_, 2);
  auto cursor = file.Scan(small);
  Rec r;
  int64_t count = 0;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&r));
    ++count;
  }
  EXPECT_EQ(count, n);
  EXPECT_EQ(small.stats().misses, 10);  // one per page, no re-reads
}

TEST_F(PagedFileTest, AppenderMatchesPerRecordAppend) {
  IOLAP_ASSERT_OK_AND_ASSIGN(auto a, TypedFile<Rec>::Create(disk_, "a"));
  IOLAP_ASSERT_OK_AND_ASSIGN(auto b, TypedFile<Rec>::Create(disk_, "b"));
  auto appender = a.MakeAppender(pool_);
  for (int64_t i = 0; i < 600; ++i) {
    IOLAP_ASSERT_OK(appender.Append(Rec{i, i + 1}));
    IOLAP_ASSERT_OK(b.Append(pool_, Rec{i, i + 1}));
  }
  appender.Close();
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); i += 37) {
    IOLAP_ASSERT_OK_AND_ASSIGN(Rec ra, a.Get(pool_, i));
    IOLAP_ASSERT_OK_AND_ASSIGN(Rec rb, b.Get(pool_, i));
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(ra.payload, rb.payload);
  }
}

}  // namespace
}  // namespace iolap
