// The aggregate index under concurrency (run under TSan in CI): query
// threads race a maintenance stream against a service whose cache misses
// are answered from the index tier — including concurrent lazy rebuilds
// triggered by dirty min/max rects. Every returned aggregate must equal a
// serial rescan of the EDB at the generation the query pinned.

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "aggidx/agg_index.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "serve/query_service.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

struct Probe {
  QueryRegion region;
  AggregateFunc func;
};

struct Observation {
  size_t probe = 0;
  int64_t generation = 0;
  double value = 0;
  bool ok = false;
};

TEST(AggIdxConcurrentTest, IndexAnswersMatchSerialRescanAtPinnedGeneration) {
  StorageEnv env(MakeTempDir(), 256);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  StorageEnv scratch(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto gen_file,
                             MakePaperExampleFacts(scratch, schema));
  std::vector<FactRecord> facts;
  {
    auto cursor = gen_file.Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts.push_back(f);
    }
  }
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env, facts));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &file, options));

  // A small cache keeps both miss paths hot: some probes are cache hits,
  // the rest are answered by the index tier.
  ServeOptions opts;
  opts.cache_slots = 8;
  opts.agg_index = true;
  QueryService service(manager.get(), opts);
  ASSERT_NE(service.agg_index(), nullptr);

  // Min/max probes exercise the dirty-rect lazy rebuild concurrently with
  // the additive in-place patches.
  std::vector<Probe> probes = {{QueryRegion::All(), AggregateFunc::kSum},
                               {QueryRegion::All(), AggregateFunc::kCount},
                               {QueryRegion::All(), AggregateFunc::kMax}};
  for (NodeId node : schema.dim(0).nodes_at_level(1)) {
    probes.push_back({QueryRegion::All().With(0, node), AggregateFunc::kSum});
    probes.push_back({QueryRegion::All().With(0, node), AggregateFunc::kMin});
  }

  std::map<int64_t, std::vector<double>> expected;
  QueryEngine engine(&env, &schema, &manager->edb());
  auto rescan_all = [&]() -> Result<std::vector<double>> {
    std::vector<double> out;
    for (const Probe& p : probes) {
      IOLAP_ASSIGN_OR_RETURN(AggregateResult r,
                             engine.Aggregate(p.region, p.func));
      out.push_back(r.value);
    }
    return out;
  };
  IOLAP_ASSERT_OK_AND_ASSIGN(expected[0], rescan_all());

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 40;
  constexpr int kMutations = 6;

  Status mutation_status = Status::Ok();
  std::thread mutator([&] {
    double m0 = facts[0].measure;
    double m3 = facts[3].measure;
    for (int round = 0; round < kMutations; ++round) {
      FactRecord before = facts[round % 2 == 0 ? 0 : 3];
      double& current = round % 2 == 0 ? m0 : m3;
      before.measure = current;
      current += 50 + round;
      Status s = service.ApplyUpdates({FactUpdate{before, current}});
      if (!s.ok()) {
        mutation_status = s;
        return;
      }
      const int64_t gen = service.generation();
      auto values = rescan_all();
      if (!values.ok()) {
        mutation_status = values.status();
        return;
      }
      expected[gen] = std::move(values).value();
    }
  });

  std::vector<std::vector<Observation>> observed(kQueryThreads);
  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&, t] {
      std::vector<Observation>& log = observed[t];
      log.reserve(kQueriesPerThread);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        Observation obs;
        obs.probe = static_cast<size_t>(t * 31 + i * 7) % probes.size();
        Result<AggregateResult> r = service.Aggregate(
            probes[obs.probe].region, probes[obs.probe].func,
            &obs.generation);
        obs.ok = r.ok();
        if (r.ok()) obs.value = r->value;
        log.push_back(obs);
      }
    });
  }
  for (std::thread& t : queriers) t.join();
  mutator.join();
  IOLAP_ASSERT_OK(mutation_status);
  ASSERT_EQ(expected.size(), static_cast<size_t>(kMutations) + 1);

  for (int t = 0; t < kQueryThreads; ++t) {
    for (const Observation& obs : observed[t]) {
      ASSERT_TRUE(obs.ok);
      auto it = expected.find(obs.generation);
      ASSERT_NE(it, expected.end())
          << "query pinned unknown generation " << obs.generation;
      EXPECT_NEAR(obs.value, it->second[obs.probe], 1e-9)
          << "thread " << t << " probe " << obs.probe << " generation "
          << obs.generation;
    }
  }
  // The index tier must have carried real traffic.
  EXPECT_GT(service.agg_index()->stats().probes, 0);
}

}  // namespace
}  // namespace iolap
