// The query-serving subsystem: cached answers must be indistinguishable
// from fresh scans — across cache misses, hits, LRU eviction, and the
// selective invalidation driven by maintenance batches' touched boxes.

#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "serve/workload.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

FactRecord MakeFactAt(const StarSchema& schema, FactId id, double measure,
                      NodeId n0, NodeId n1) {
  FactRecord f;
  f.fact_id = id;
  f.measure = measure;
  f.node[0] = n0;
  f.node[1] = n1;
  f.level[0] = static_cast<uint8_t>(schema.dim(0).level(n0));
  f.level[1] = static_cast<uint8_t>(schema.dim(1).level(n1));
  return f;
}

constexpr AggregateFunc kAllFuncs[] = {
    AggregateFunc::kSum, AggregateFunc::kCount, AggregateFunc::kAverage,
    AggregateFunc::kMin, AggregateFunc::kMax};

/// Paper-example fixture: the Table 2 facts behind a MaintenanceManager.
class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : env_(MakeTempDir(), 256) {}

  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
    StorageEnv scratch(MakeTempDir(), 32);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto gen,
                               MakePaperExampleFacts(scratch, schema_));
    auto cursor = gen.Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts_.push_back(f);
    }
    AllocationOptions options;
    options.policy = PolicyKind::kUniform;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env_, facts_));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        manager_, MaintenanceManager::Build(env_, schema_, &file, options));
  }

  std::vector<QueryRegion> ProbeRegions() const {
    std::vector<QueryRegion> regions = {QueryRegion::All()};
    for (NodeId node : schema_.dim(0).nodes_at_level(1)) {
      regions.push_back(QueryRegion::All().With(0, node));
    }
    for (NodeId node : schema_.dim(1).nodes_at_level(2)) {
      regions.push_back(QueryRegion::All().With(1, node));
    }
    return regions;
  }

  StorageEnv env_;
  StarSchema schema_;
  std::vector<FactRecord> facts_;
  std::unique_ptr<MaintenanceManager> manager_;
};

TEST_F(ServeTest, CachedAggregateMatchesEngine) {
  ServeOptions opts;
  QueryService service(manager_.get(), opts);
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (const QueryRegion& region : ProbeRegions()) {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                                 engine.Aggregate(region, func));
      bool hit = true;
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult cold,
                                 service.Aggregate(region, func, nullptr,
                                                   &hit));
      EXPECT_FALSE(hit);
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult warm,
                                 service.Aggregate(region, func, nullptr,
                                                   &hit));
      EXPECT_TRUE(hit);
      EXPECT_NEAR(cold.value, expected.value, 1e-9);
      EXPECT_NEAR(warm.value, expected.value, 1e-9);
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult uncached,
                                 service.UncachedAggregate(region, func));
      EXPECT_NEAR(uncached.value, expected.value, 1e-9);
    }
  }
  EXPECT_GT(service.cache()->stats().hits, 0);
}

TEST_F(ServeTest, CachedRollUpMatchesEngine) {
  ServeOptions opts;
  QueryService service(manager_.get(), opts);
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (int level = 1; level <= schema_.dim(0).num_levels(); ++level) {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(
          auto expected, engine.RollUp(QueryRegion::All(), 0, level, func));
      bool hit = true;
      IOLAP_ASSERT_OK_AND_ASSIGN(
          auto cold,
          service.RollUp(QueryRegion::All(), 0, level, func, nullptr, &hit));
      EXPECT_FALSE(hit);
      IOLAP_ASSERT_OK_AND_ASSIGN(
          auto warm,
          service.RollUp(QueryRegion::All(), 0, level, func, nullptr, &hit));
      EXPECT_TRUE(hit);
      ASSERT_EQ(cold.size(), expected.size());
      ASSERT_EQ(warm.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(cold[i].value, expected[i].value, 1e-9);
        EXPECT_NEAR(warm[i].value, expected[i].value, 1e-9);
      }
    }
  }
}

TEST_F(ServeTest, RollUpRejectsBadArguments) {
  QueryService service(manager_.get(), ServeOptions{});
  EXPECT_FALSE(
      service.RollUp(QueryRegion::All(), 7, 1, AggregateFunc::kSum).ok());
  EXPECT_FALSE(
      service.RollUp(QueryRegion::All(), 0, 9, AggregateFunc::kSum).ok());
}

TEST_F(ServeTest, PartitionedScanMatchesSerial) {
  ServeOptions opts;
  opts.num_threads = 4;
  opts.min_partition_rows = 1;  // force real partitioning on a tiny EDB
  QueryService service(manager_.get(), opts);
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (const QueryRegion& region : ProbeRegions()) {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                                 engine.Aggregate(region, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult parallel,
                                 service.UncachedAggregate(region, func));
      EXPECT_NEAR(parallel.value, expected.value, 1e-9);
      EXPECT_NEAR(parallel.sum, expected.sum, 1e-9);
      EXPECT_NEAR(parallel.count, expected.count, 1e-9);
    }
  }
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto expected_groups,
      engine.RollUp(QueryRegion::All(), 0, 1, AggregateFunc::kSum));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto parallel_groups,
      service.UncachedRollUp(QueryRegion::All(), 0, 1, AggregateFunc::kSum));
  ASSERT_EQ(parallel_groups.size(), expected_groups.size());
  for (size_t i = 0; i < expected_groups.size(); ++i) {
    EXPECT_NEAR(parallel_groups[i].value, expected_groups[i].value, 1e-9);
  }
}

TEST_F(ServeTest, CompletionsOfMatchesEngineAndRejectsTombstoneId) {
  QueryService service(manager_.get(), ServeOptions{});
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto expected, engine.CompletionsOf(8));
  IOLAP_ASSERT_OK_AND_ASSIGN(auto got, service.CompletionsOf(8));
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].fact_id, expected[i].fact_id);
    EXPECT_DOUBLE_EQ(got[i].weight, expected[i].weight);
  }
  EXPECT_EQ(service.CompletionsOf(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, MutationBumpsGenerationAndRefreshesAnswers) {
  QueryService service(manager_.get(), ServeOptions{});
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  EXPECT_EQ(service.generation(), 0);

  int64_t gen = -1;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult before,
      service.Aggregate(QueryRegion::All(), AggregateFunc::kSum, &gen));
  EXPECT_EQ(gen, 0);
  EXPECT_NEAR(before.value, 1705.0, 1e-9);

  // Raise p1's measure by 900: the global sum must follow on the next
  // query, cache or no cache.
  FactUpdate u{facts_[0], facts_[0].measure + 900};
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(service.ApplyUpdates({u}, &stats));
  EXPECT_EQ(service.generation(), 1);
  EXPECT_GT(stats.touched_boxes.size(), 0u);

  bool hit = true;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult after,
      service.Aggregate(QueryRegion::All(), AggregateFunc::kSum, &gen, &hit));
  EXPECT_EQ(gen, 1);
  EXPECT_FALSE(hit);  // the global region intersects every touched box
  EXPECT_NEAR(after.value, 1705.0 + 900, 1e-9);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult rescan,
      engine.Aggregate(QueryRegion::All(), AggregateFunc::kSum));
  EXPECT_NEAR(after.value, rescan.value, 1e-9);
}

TEST_F(ServeTest, TombstonesSkippedOnCachedPath) {
  QueryService service(manager_.get(), ServeOptions{});
  // Deleting p2 tombstones its EDB row in place (weight 0, fact_id -1).
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[1]}, &stats));
  EXPECT_GE(stats.edb_rows_tombstoned, 1);

  // Both the miss-scan and the subsequent hit must skip the tombstones,
  // exactly like the (tombstone-skipping) QueryEngine rescan.
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (const QueryRegion& region : ProbeRegions()) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult expected,
        engine.Aggregate(region, AggregateFunc::kCount));
    bool hit = true;
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult cold,
        service.Aggregate(region, AggregateFunc::kCount, nullptr, &hit));
    EXPECT_FALSE(hit);
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult warm,
        service.Aggregate(region, AggregateFunc::kCount, nullptr, &hit));
    EXPECT_TRUE(hit);
    EXPECT_NEAR(cold.value, expected.value, 1e-9);
    EXPECT_NEAR(warm.value, expected.value, 1e-9);
  }
  // The global count dropped by exactly the deleted (precise) fact.
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult count,
      service.Aggregate(QueryRegion::All(), AggregateFunc::kCount));
  EXPECT_NEAR(count.value, 13.0, 1e-9);
}

TEST_F(ServeTest, DeletedExtremumIsNeverServedStale) {
  QueryService service(manager_.get(), ServeOptions{});
  QueryEngine engine(&env_, &schema_, &manager_->edb());

  // Warm the cache with kMin/kMax over every probe region, remembering the
  // pre-delete global extrema.
  for (const QueryRegion& region : ProbeRegions()) {
    IOLAP_ASSERT_OK(service.Aggregate(region, AggregateFunc::kMin).status());
    IOLAP_ASSERT_OK(service.Aggregate(region, AggregateFunc::kMax).status());
  }
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult max_before,
      service.Aggregate(QueryRegion::All(), AggregateFunc::kMax));

  // Delete the fact carrying the largest measure: its rows vanish, so any
  // cached max that still reported it would be a stale extremum.
  size_t max_idx = 0;
  for (size_t i = 1; i < facts_.size(); ++i) {
    if (facts_[i].measure > facts_[max_idx].measure) max_idx = i;
  }
  EXPECT_NEAR(max_before.value, facts_[max_idx].measure, 1e-9);
  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[max_idx]}));

  // Deletes are non-subtractive for extrema: a cached min/max can only be
  // trusted if its entry was invalidated and recomputed. Every served
  // answer must now equal a fresh rescan, hit or miss.
  for (const QueryRegion& region : ProbeRegions()) {
    for (AggregateFunc func : {AggregateFunc::kMin, AggregateFunc::kMax}) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                                 engine.Aggregate(region, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult served,
                                 service.Aggregate(region, func));
      EXPECT_NEAR(served.value, expected.value, 1e-9);
    }
  }
  bool hit = true;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult max_after,
      service.Aggregate(QueryRegion::All(), AggregateFunc::kMax, nullptr,
                        &hit));
  EXPECT_LT(max_after.value, max_before.value);
}

TEST_F(ServeTest, CompactionKeepsCachedExtremaCorrect) {
  QueryService service(manager_.get(), ServeOptions{});
  // Tombstone a row first so Compact() has real work, then cache kMin/kMax
  // over every probe region at the post-delete generation.
  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[1]}));
  std::vector<double> min_before;
  std::vector<double> max_before;
  for (const QueryRegion& region : ProbeRegions()) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult mn, service.Aggregate(region, AggregateFunc::kMin));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult mx, service.Aggregate(region, AggregateFunc::kMax));
    min_before.push_back(mn.value);
    max_before.push_back(mx.value);
  }

  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t removed, service.Compact());
  EXPECT_GE(removed, 1);

  // Compaction is a physical rewrite with identical logical content: every
  // cached extremum must survive as a hit and still equal a fresh rescan.
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  const std::vector<QueryRegion> regions = ProbeRegions();
  for (size_t i = 0; i < regions.size(); ++i) {
    bool hit = false;
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult mn,
        service.Aggregate(regions[i], AggregateFunc::kMin, nullptr, &hit));
    EXPECT_TRUE(hit);
    hit = false;
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult mx,
        service.Aggregate(regions[i], AggregateFunc::kMax, nullptr, &hit));
    EXPECT_TRUE(hit);
    EXPECT_NEAR(mn.value, min_before[i], 1e-9);
    EXPECT_NEAR(mx.value, max_before[i], 1e-9);
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult mn_rescan,
        engine.Aggregate(regions[i], AggregateFunc::kMin));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult mx_rescan,
        engine.Aggregate(regions[i], AggregateFunc::kMax));
    EXPECT_NEAR(mn.value, mn_rescan.value, 1e-9);
    EXPECT_NEAR(mx.value, mx_rescan.value, 1e-9);
  }
}

TEST_F(ServeTest, CompactionKeepsCacheAndGeneration) {
  QueryService service(manager_.get(), ServeOptions{});
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[1]}, &stats));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult before,
      service.Aggregate(QueryRegion::All(), AggregateFunc::kSum));
  const int64_t gen_before = service.generation();
  const int64_t entries_before = service.cache()->entries();

  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t removed, service.Compact());
  EXPECT_GE(removed, 1);
  // Logical content unchanged: same generation, same cache, same answer.
  EXPECT_EQ(service.generation(), gen_before);
  EXPECT_EQ(service.cache()->entries(), entries_before);
  bool hit = false;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult after,
      service.Aggregate(QueryRegion::All(), AggregateFunc::kSum, nullptr,
                        &hit));
  EXPECT_TRUE(hit);
  EXPECT_NEAR(after.value, before.value, 1e-9);
}

TEST_F(ServeTest, LruEvictionBoundsTheCache) {
  ServeOptions opts;
  opts.cache_slots = 2;
  QueryService service(manager_.get(), opts);
  std::vector<QueryRegion> regions = ProbeRegions();
  ASSERT_GE(regions.size(), 3u);
  for (const QueryRegion& region : regions) {
    IOLAP_ASSERT_OK(
        service.Aggregate(region, AggregateFunc::kSum).status());
  }
  EXPECT_LE(service.cache()->entries(), 2);
  EXPECT_LE(service.cache()->used_slots(), 2);
  EXPECT_GT(service.cache()->stats().evicted_entries, 0);
  // The oldest region was evicted: querying it again is a miss, and the
  // recomputed answer still matches a fresh scan.
  bool hit = true;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult again,
      service.Aggregate(regions[0], AggregateFunc::kSum, nullptr, &hit));
  EXPECT_FALSE(hit);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult rescan,
      service.UncachedAggregate(regions[0], AggregateFunc::kSum));
  EXPECT_NEAR(again.value, rescan.value, 1e-9);
}

TEST_F(ServeTest, OversizedRollUpIsNotAdmitted) {
  ServeOptions opts;
  opts.cache_slots = 2;  // a level-1 rollup of dim 0 has 4 groups
  QueryService service(manager_.get(), opts);
  bool hit = true;
  IOLAP_ASSERT_OK(service
                      .RollUp(QueryRegion::All(), 0, 1, AggregateFunc::kSum,
                              nullptr, &hit)
                      .status());
  EXPECT_FALSE(hit);
  IOLAP_ASSERT_OK(service
                      .RollUp(QueryRegion::All(), 0, 1, AggregateFunc::kSum,
                              nullptr, &hit)
                      .status());
  EXPECT_FALSE(hit);  // still a miss: 4 slots never fit in a 2-slot cache
  EXPECT_EQ(service.cache()->entries(), 0);
}

TEST_F(ServeTest, ReadOnlyServiceRejectsMutations) {
  QueryService service(&env_, &schema_, &manager_->edb(), ServeOptions{});
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult total,
      service.Aggregate(QueryRegion::All(), AggregateFunc::kSum));
  EXPECT_NEAR(total.value, 1705.0, 1e-9);
  FactUpdate u{facts_[0], 1.0};
  EXPECT_EQ(service.ApplyUpdates({u}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.InsertFacts({facts_[0]}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.DeleteFacts({facts_[0]}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Compact().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.generation(), 0);
}

/// Two spatially separated component groups, so a mutation in one half
/// exercises *selective* invalidation: the other half's cached results
/// must survive.
class SelectiveInvalidationTest : public ::testing::Test {
 protected:
  SelectiveInvalidationTest() : env_(MakeTempDir(), 256) {}

  void SetUp() override {
    std::vector<Hierarchy> dims;
    IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d0,
                               HierarchyBuilder::Uniform("D0", {2, 4}));
    IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d1,
                               HierarchyBuilder::Uniform("D1", {2, 2}));
    dims.push_back(d0);
    dims.push_back(d1);
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, StarSchema::Create(std::move(dims)));

    // Half A lives under D0's first level-2 node (leaves 0..3), half B
    // under the second (leaves 4..7); nothing spans the two.
    half_a_ = schema_.dim(0).nodes_at_level(2)[0];
    half_b_ = schema_.dim(0).nodes_at_level(2)[1];
    const auto& d0_leaves = schema_.dim(0).nodes_at_level(1);
    const auto& d1_leaves = schema_.dim(1).nodes_at_level(1);
    facts_ = {
        MakeFactAt(schema_, 1, 10, d0_leaves[0], d1_leaves[0]),
        MakeFactAt(schema_, 2, 20, d0_leaves[1], d1_leaves[1]),
        MakeFactAt(schema_, 3, 30, half_a_, d1_leaves[0]),  // imprecise in A
        MakeFactAt(schema_, 4, 40, d0_leaves[4], d1_leaves[0]),
        MakeFactAt(schema_, 5, 50, d0_leaves[5], d1_leaves[1]),
        MakeFactAt(schema_, 6, 60, half_b_, d1_leaves[1]),  // imprecise in B
    };
    AllocationOptions options;
    options.policy = PolicyKind::kMeasure;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env_, facts_));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        manager_, MaintenanceManager::Build(env_, schema_, &file, options));
  }

  StorageEnv env_;
  StarSchema schema_;
  NodeId half_a_ = 0;
  NodeId half_b_ = 0;
  std::vector<FactRecord> facts_;
  std::unique_ptr<MaintenanceManager> manager_;
};

TEST_F(SelectiveInvalidationTest, UnrelatedMutationKeepsCacheEntry) {
  QueryService service(manager_.get(), ServeOptions{});
  QueryRegion region_a = QueryRegion::All().With(0, half_a_);
  QueryRegion region_b = QueryRegion::All().With(0, half_b_);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult a_before,
      service.Aggregate(region_a, AggregateFunc::kSum));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult b_before,
      service.Aggregate(region_b, AggregateFunc::kSum));
  EXPECT_NEAR(a_before.value, 10 + 20 + 30, 1e-9);
  EXPECT_NEAR(b_before.value, 40 + 50 + 60, 1e-9);
  ASSERT_EQ(service.cache()->entries(), 2);

  // Mutate half B only: fact 4's measure changes, touching B's component
  // box but nothing in A.
  FactUpdate u{facts_[3], 400.0};
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(service.ApplyUpdates({u}, &stats));
  ASSERT_GT(stats.touched_boxes.size(), 0u);

  // A's entry survived (hit, same value); B's was invalidated (miss, new
  // value) — and both equal a fresh rescan at the new generation.
  bool hit = false;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult a_after,
      service.Aggregate(region_a, AggregateFunc::kSum, nullptr, &hit));
  EXPECT_TRUE(hit);
  EXPECT_NEAR(a_after.value, a_before.value, 1e-9);

  hit = true;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult b_after,
      service.Aggregate(region_b, AggregateFunc::kSum, nullptr, &hit));
  EXPECT_FALSE(hit);
  EXPECT_NEAR(b_after.value, 400 + 50 + 60, 1e-9);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult a_rescan,
      service.UncachedAggregate(region_a, AggregateFunc::kSum));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult b_rescan,
      service.UncachedAggregate(region_b, AggregateFunc::kSum));
  EXPECT_NEAR(a_after.value, a_rescan.value, 1e-9);
  EXPECT_NEAR(b_after.value, b_rescan.value, 1e-9);
  EXPECT_EQ(service.cache()->stats().invalidated_entries, 1);
}

TEST_F(SelectiveInvalidationTest, IntersectingInsertDropsEntry) {
  QueryService service(manager_.get(), ServeOptions{});
  QueryRegion region_a = QueryRegion::All().With(0, half_a_);
  IOLAP_ASSERT_OK(
      service.Aggregate(region_a, AggregateFunc::kSum).status());
  ASSERT_EQ(service.cache()->entries(), 1);

  // Insert a precise fact inside half A: its region rect intersects the
  // cached region, so the entry must go.
  FactRecord f = MakeFactAt(schema_, 7, 70, schema_.dim(0).nodes_at_level(1)[2],
                            schema_.dim(1).nodes_at_level(1)[0]);
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(service.InsertFacts({f}, &stats));

  bool hit = true;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult a_after,
      service.Aggregate(region_a, AggregateFunc::kSum, nullptr, &hit));
  EXPECT_FALSE(hit);
  EXPECT_NEAR(a_after.value, 10 + 20 + 30 + 70, 1e-9);
}

TEST_F(SelectiveInvalidationTest, DeleteInOneHalfKeepsOtherHalfCached) {
  QueryService service(manager_.get(), ServeOptions{});
  QueryRegion region_a = QueryRegion::All().With(0, half_a_);
  QueryRegion region_b = QueryRegion::All().With(0, half_b_);
  IOLAP_ASSERT_OK(
      service.Aggregate(region_a, AggregateFunc::kSum).status());
  IOLAP_ASSERT_OK(
      service.Aggregate(region_b, AggregateFunc::kCount).status());

  MaintenanceStats stats;
  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[4]}, &stats));  // fact 5, in B

  bool hit = false;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult a_after,
      service.Aggregate(region_a, AggregateFunc::kSum, nullptr, &hit));
  EXPECT_TRUE(hit);
  EXPECT_NEAR(a_after.value, 10 + 20 + 30, 1e-9);

  hit = true;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult b_after,
      service.Aggregate(region_b, AggregateFunc::kCount, nullptr, &hit));
  EXPECT_FALSE(hit);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult b_rescan,
      service.UncachedAggregate(region_b, AggregateFunc::kCount));
  EXPECT_NEAR(b_after.value, b_rescan.value, 1e-9);
}

// ---------------------------------------------------------------------------
// AggregateCache shard-mask and answer-mode edge cases.

class CacheMaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
  }

  AggregateCacheKey KeyFor(int dim, NodeId node,
                           AnswerMode mode = AnswerMode::kExact) const {
    return AggregateCache::MakeAggregateKey(
        schema_, QueryRegion::All().With(dim, node), AggregateFunc::kSum,
        mode);
  }

  Rect BoxAll() const { return RegionToRect(schema_, QueryRegion::All()); }

  StarSchema schema_;
};

TEST_F(CacheMaskTest, InvalidateShardsEdgeCases) {
  AggregateCache cache(64);
  const std::vector<NodeId> leaves = schema_.dim(0).nodes_at_level(1);
  // Entry per shard mask: shard 0, shard 2, and one that read shards 0-2.
  cache.Insert(KeyFor(0, leaves[0]), BoxAll(), {AggregateResult{}}, 1,
               uint64_t{1} << 0);
  cache.Insert(KeyFor(0, leaves[1]), BoxAll(), {AggregateResult{}}, 1,
               uint64_t{1} << 2);
  cache.Insert(KeyFor(0, leaves[2]), BoxAll(), {AggregateResult{}}, 1,
               (uint64_t{1} << 3) - 1);
  ASSERT_EQ(cache.entries(), 3);

  // Mask 0 is a no-op batch: nothing can have been touched.
  EXPECT_EQ(cache.InvalidateShards(0), 0);
  EXPECT_EQ(cache.entries(), 3);

  // A mask far wider than the live shard count drops only entries whose
  // masks intersect it — here the bit-2 and bits-0..2 entries.
  EXPECT_EQ(cache.InvalidateShards(~uint64_t{0} << 1), 2);
  EXPECT_EQ(cache.entries(), 1);

  // The all-shards mask (the default Insert mask is also ~0) drops
  // everything that remains.
  cache.Insert(KeyFor(0, leaves[3]), BoxAll(), {AggregateResult{}}, 1);
  EXPECT_EQ(cache.InvalidateShards(~uint64_t{0}), 2);
  EXPECT_EQ(cache.entries(), 0);
}

TEST_F(CacheMaskTest, AnswerModeTagsKeysApart) {
  const NodeId leaf = schema_.dim(0).nodes_at_level(1)[0];
  const AggregateCacheKey exact = KeyFor(0, leaf, AnswerMode::kExact);
  const AggregateCacheKey bounded = KeyFor(0, leaf, AnswerMode::kBounded);
  EXPECT_FALSE(exact == bounded);

  AggregateCache cache(64);
  AggregateResult exact_v;
  exact_v.value = 1.0;
  AggregateResult bounded_v;
  bounded_v.value = 2.0;
  cache.Insert(exact, BoxAll(), {exact_v}, 1);
  cache.Insert(bounded, BoxAll(), {bounded_v}, 1, ~uint64_t{0}, 0.5);
  std::vector<AggregateResult> got;
  double bound = -1;
  ASSERT_TRUE(cache.Lookup(exact, &got, nullptr, &bound));
  EXPECT_DOUBLE_EQ(got[0].value, 1.0);
  EXPECT_DOUBLE_EQ(bound, 0);
  ASSERT_TRUE(cache.Lookup(bounded, &got, nullptr, &bound));
  EXPECT_DOUBLE_EQ(got[0].value, 2.0);
  EXPECT_DOUBLE_EQ(bound, 0.5);
}

// ---------------------------------------------------------------------------
// Workload trace grammar: strict parsing, agg_bounded, per-op identity.

class WorkloadParseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
  }
  StarSchema schema_;
};

TEST_F(WorkloadParseTest, ParsesEveryOpAndSkipsComments) {
  TraceOp op;
  IOLAP_ASSERT_OK_AND_ASSIGN(bool got,
                             ParseTraceOp(schema_, "# comment", &op));
  EXPECT_FALSE(got);
  IOLAP_ASSERT_OK_AND_ASSIGN(got, ParseTraceOp(schema_, "   ", &op));
  EXPECT_FALSE(got);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      got, ParseTraceOp(schema_, "agg sum Location=MA # trailing", &op));
  ASSERT_TRUE(got);
  EXPECT_EQ(op.type, TraceOpType::kAgg);
  EXPECT_EQ(op.func, AggregateFunc::kSum);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      got, ParseTraceOp(schema_, "agg_bounded avg 0.5 0.01 Location=East",
                        &op));
  ASSERT_TRUE(got);
  EXPECT_EQ(op.type, TraceOpType::kAggBounded);
  EXPECT_EQ(op.func, AggregateFunc::kAverage);
  EXPECT_DOUBLE_EQ(op.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(op.delta, 0.01);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      got, ParseTraceOp(schema_, "rollup count Location 1", &op));
  ASSERT_TRUE(got);
  EXPECT_EQ(op.type, TraceOpType::kRollUp);
  EXPECT_EQ(op.dim, 0);
  EXPECT_EQ(op.level, 1);

  IOLAP_ASSERT_OK_AND_ASSIGN(got, ParseTraceOp(schema_, "update 3 7.5", &op));
  ASSERT_TRUE(got);
  EXPECT_EQ(op.type, TraceOpType::kUpdate);
  EXPECT_EQ(op.fact_id, 3);
  EXPECT_DOUBLE_EQ(op.measure, 7.5);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      got, ParseTraceOp(schema_, "insert 99 12 Location=MA", &op));
  ASSERT_TRUE(got);
  EXPECT_EQ(op.type, TraceOpType::kInsert);

  IOLAP_ASSERT_OK_AND_ASSIGN(got, ParseTraceOp(schema_, "delete 99", &op));
  ASSERT_TRUE(got);
  IOLAP_ASSERT_OK_AND_ASSIGN(got, ParseTraceOp(schema_, "compact", &op));
  ASSERT_TRUE(got);
  EXPECT_EQ(op.type, TraceOpType::kCompact);
}

TEST_F(WorkloadParseTest, RejectsMalformedLines) {
  TraceOp op;
  // Unknown op, unknown func, bad dim, bad numbers, trailing junk — every
  // one is an explicit error, never a silent skip.
  EXPECT_EQ(ParseTraceOp(schema_, "frobnicate 1", &op).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "agg median", &op).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "agg sum Nowhere=MA", &op).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "agg sum Location", &op).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "agg_bounded sum x 0.05", &op)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "agg_bounded sum 0.5 1.5", &op)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "rollup sum Location 99", &op)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "update 3", &op).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "delete 3 extra", &op).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceOp(schema_, "compact now", &op).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace iolap
