#include "model/hierarchy.h"

#include <gtest/gtest.h>

#include "common/result.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

// The paper's Location dimension (Figure 1): ALL -> {East, West} ->
// {MA, NY} / {TX, CA}.
Hierarchy MakeLocation() {
  HierarchyBuilder b("Location");
  NodeId east = b.AddNode(0, "East");
  NodeId west = b.AddNode(0, "West");
  b.AddNode(east, "MA");
  b.AddNode(east, "NY");
  b.AddNode(west, "TX");
  b.AddNode(west, "CA");
  auto h = b.Build();
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

TEST(HierarchyTest, LevelsMatchPaperDefinition) {
  Hierarchy h = MakeLocation();
  EXPECT_EQ(h.num_levels(), 3);
  EXPECT_EQ(h.level(h.root()), 3);  // ALL
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId east, h.FindNode("East"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ma, h.FindNode("MA"));
  EXPECT_EQ(h.level(east), 2);
  EXPECT_EQ(h.level(ma), 1);
  EXPECT_TRUE(h.is_leaf(ma));
  EXPECT_FALSE(h.is_leaf(east));
}

TEST(HierarchyTest, LeafRangesAreContiguousAndNested) {
  Hierarchy h = MakeLocation();
  EXPECT_EQ(h.num_leaves(), 4);
  EXPECT_EQ(h.leaf_begin(h.root()), 0);
  EXPECT_EQ(h.leaf_end(h.root()), 4);
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId east, h.FindNode("East"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId west, h.FindNode("West"));
  // Children partition the parent's range.
  EXPECT_EQ(h.leaf_begin(east), 0);
  EXPECT_EQ(h.leaf_end(east), 2);
  EXPECT_EQ(h.leaf_begin(west), 2);
  EXPECT_EQ(h.leaf_end(west), 4);
  EXPECT_EQ(h.region_width(east), 2);
  EXPECT_EQ(h.region_width(h.root()), 4);
}

TEST(HierarchyTest, LeafNodeInverse) {
  Hierarchy h = MakeLocation();
  for (LeafId l = 0; l < h.num_leaves(); ++l) {
    NodeId n = h.leaf_node(l);
    EXPECT_TRUE(h.is_leaf(n));
    EXPECT_EQ(h.leaf_begin(n), l);
    EXPECT_EQ(h.leaf_end(n), l + 1);
  }
}

TEST(HierarchyTest, AncestorAtLevel) {
  Hierarchy h = MakeLocation();
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ma, h.FindNode("MA"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId east, h.FindNode("East"));
  EXPECT_EQ(h.AncestorAtLevel(ma, 1), ma);
  EXPECT_EQ(h.AncestorAtLevel(ma, 2), east);
  EXPECT_EQ(h.AncestorAtLevel(ma, 3), h.root());
  EXPECT_EQ(h.AncestorAtLevel(east, 3), h.root());
}

TEST(HierarchyTest, LeafAncestorOrdinalIsMonotone) {
  Hierarchy h = MakeLocation();
  for (int level = 1; level <= h.num_levels(); ++level) {
    int32_t prev = -1;
    for (LeafId l = 0; l < h.num_leaves(); ++l) {
      int32_t ord = h.LeafAncestorOrdinal(l, level);
      EXPECT_GE(ord, prev) << "level " << level << " leaf " << l;
      prev = ord;
      // Cross-check against the slow path.
      NodeId anc = h.AncestorAtLevel(h.leaf_node(l), level);
      EXPECT_EQ(ord, h.ordinal(anc));
    }
  }
}

TEST(HierarchyTest, CoversMatchesLeafRange) {
  Hierarchy h = MakeLocation();
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId west, h.FindNode("West"));
  EXPECT_FALSE(h.Covers(west, 0));
  EXPECT_FALSE(h.Covers(west, 1));
  EXPECT_TRUE(h.Covers(west, 2));
  EXPECT_TRUE(h.Covers(west, 3));
}

TEST(HierarchyTest, NodesAtLevelInDfsOrder) {
  Hierarchy h = MakeLocation();
  const auto& states = h.nodes_at_level(1);
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(h.name(states[0]), "MA");
  EXPECT_EQ(h.name(states[1]), "NY");
  EXPECT_EQ(h.name(states[2]), "TX");
  EXPECT_EQ(h.name(states[3]), "CA");
  EXPECT_EQ(h.NodeAt(1, 2), states[2]);
  EXPECT_EQ(h.num_nodes_at_level(2), 2);
}

TEST(HierarchyTest, FindNodeMissing) {
  Hierarchy h = MakeLocation();
  EXPECT_EQ(h.FindNode("Narnia").status().code(), StatusCode::kNotFound);
}

TEST(HierarchyBuilderTest, RejectsUnbalanced) {
  HierarchyBuilder b("Ragged");
  NodeId a = b.AddNode(0, "a");
  b.AddNode(0, "b");  // leaf at depth 1
  b.AddNode(a, "a1");  // leaf at depth 2
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchyBuilderTest, RejectsEmpty) {
  HierarchyBuilder b("Empty");
  EXPECT_FALSE(b.Build().ok());
}

TEST(HierarchyBuilderTest, RejectsDuplicateNames) {
  HierarchyBuilder b("Dup");
  b.AddNode(0, "x");
  b.AddNode(0, "x");
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchyBuilderTest, UniformFanouts) {
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy h,
                             HierarchyBuilder::Uniform("U", {3, 4, 5}));
  EXPECT_EQ(h.num_levels(), 4);
  EXPECT_EQ(h.num_leaves(), 60);
  EXPECT_EQ(h.num_nodes_at_level(3), 3);
  EXPECT_EQ(h.num_nodes_at_level(2), 12);
  EXPECT_EQ(h.num_nodes_at_level(1), 60);
  // Spot-check nesting: leaf 17 is under L3 node 0 (leaves 0..19).
  EXPECT_EQ(h.LeafAncestorOrdinal(17, 3), 0);
  EXPECT_EQ(h.LeafAncestorOrdinal(20, 3), 1);
}

TEST(HierarchyBuilderTest, TwoLevelDegenerate) {
  // Just ALL + leaves: the minimal legal hierarchy.
  HierarchyBuilder b("Flat");
  b.AddNode(0, "l0");
  b.AddNode(0, "l1");
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy h, b.Build());
  EXPECT_EQ(h.num_levels(), 2);
  EXPECT_EQ(h.num_leaves(), 2);
}

}  // namespace
}  // namespace iolap
