#include "storage/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

struct Rec {
  int64_t key;
  int64_t payload;
};

bool KeyLess(const Rec& a, const Rec& b) { return a.key < b.key; }

class ExternalSortTest : public ::testing::Test {
 protected:
  ExternalSortTest() : disk_(MakeTempDir()), pool_(&disk_, 16) {}

  TypedFile<Rec> MakeFile(const std::vector<Rec>& records) {
    auto file = TypedFile<Rec>::Create(disk_, "sort_input");
    EXPECT_TRUE(file.ok());
    auto appender = file->MakeAppender(pool_);
    for (const Rec& r : records) {
      EXPECT_TRUE(appender.Append(r).ok());
    }
    appender.Close();
    return *file;
  }

  std::vector<Rec> ReadAll(const TypedFile<Rec>& file) {
    std::vector<Rec> out;
    auto cursor = file.Scan(pool_);
    Rec r;
    while (!cursor.done()) {
      EXPECT_TRUE(cursor.Next(&r).ok());
      out.push_back(r);
    }
    return out;
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(ExternalSortTest, EmptyAndSingleton) {
  TypedFile<Rec> empty = MakeFile({});
  ExternalSorter<Rec> sorter(&disk_, &pool_, 4);
  IOLAP_ASSERT_OK(sorter.Sort(&empty, KeyLess));
  EXPECT_EQ(empty.size(), 0);

  TypedFile<Rec> one = MakeFile({Rec{5, 50}});
  IOLAP_ASSERT_OK(sorter.Sort(&one, KeyLess));
  auto records = ReadAll(one);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, 5);
}

TEST_F(ExternalSortTest, InMemoryFastPath) {
  Rng rng(1);
  std::vector<Rec> data;
  for (int i = 0; i < 200; ++i) {
    data.push_back(Rec{static_cast<int64_t>(rng.Uniform(1000)), i});
  }
  TypedFile<Rec> file = MakeFile(data);
  ExternalSorter<Rec> sorter(&disk_, &pool_, 8);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  auto got = ReadAll(file);
  std::sort(data.begin(), data.end(), KeyLess);
  ASSERT_EQ(got.size(), data.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].key, data[i].key);
}

// Property sweep: sizes that hit the single-chunk fast path, a single merge
// pass, and multiple merge passes, with budgets down to the minimum.
class ExternalSortSweep
    : public ExternalSortTest,
      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(ExternalSortSweep, SortsAndPreservesMultiset) {
  auto [n, budget_pages] = GetParam();
  Rng rng(n * 1000003 + budget_pages);
  std::vector<Rec> data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Small key space forces duplicates; payload detects record loss.
    data.push_back(Rec{static_cast<int64_t>(rng.Uniform(97)), i});
  }
  TypedFile<Rec> file = MakeFile(data);
  ExternalSorter<Rec> sorter(&disk_, &pool_, budget_pages);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  auto got = ReadAll(file);
  ASSERT_EQ(got.size(), data.size());
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].key, got[i].key) << "disorder at " << i;
  }
  // Multiset equality via payload sort.
  auto full_less = [](const Rec& a, const Rec& b) {
    return std::tie(a.key, a.payload) < std::tie(b.key, b.payload);
  };
  std::vector<Rec> expect = data;
  std::sort(expect.begin(), expect.end(), full_less);
  std::sort(got.begin(), got.end(), full_less);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expect[i].key);
    EXPECT_EQ(got[i].payload, expect[i].payload);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBudgets, ExternalSortSweep,
    ::testing::Combine(
        ::testing::Values(0, 1, 255, 256, 257, 1000, 5000, 20000),
        ::testing::Values(3, 4, 8)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

TEST_F(ExternalSortTest, TwoPassIoBudget) {
  // With n pages of data and a budget small enough to force exactly one
  // merge pass, the sorter should read and write each page about twice —
  // the paper's standard 2-pass sort assumption.
  const int64_t rpp = TypedFile<Rec>::kRecordsPerPage;
  const int64_t budget = 8;
  const int64_t n_pages = 40;  // 40/8 = 5 runs, fan-in 7 => one merge pass
  std::vector<Rec> data;
  Rng rng(7);
  for (int64_t i = 0; i < n_pages * rpp; ++i) {
    data.push_back(Rec{static_cast<int64_t>(rng.Next() % 100000), i});
  }
  TypedFile<Rec> file = MakeFile(data);
  IOLAP_ASSERT_OK(pool_.FlushAll());
  disk_.ResetStats();
  ExternalSorter<Rec> sorter(&disk_, &pool_, budget);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  IoStats stats = disk_.stats();
  EXPECT_LE(stats.page_reads, 2 * n_pages + 4);
  EXPECT_LE(stats.page_writes, 2 * n_pages + 4);
  EXPECT_GE(stats.page_reads, 2 * n_pages);
  EXPECT_GE(stats.page_writes, 2 * n_pages);
}

TEST_F(ExternalSortTest, SortWithDirtyPoolPagesIsCoherent) {
  // Mutate a record through the pool, then sort: the sorter must see the
  // mutation (EvictFile flushes) and the pool must not serve stale pages
  // afterwards.
  std::vector<Rec> data;
  for (int i = 0; i < 1000; ++i) data.push_back(Rec{1000 - i, i});
  TypedFile<Rec> file = MakeFile(data);
  IOLAP_ASSERT_OK(file.Put(pool_, 0, Rec{-42, 999}));
  ExternalSorter<Rec> sorter(&disk_, &pool_, 3);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  IOLAP_ASSERT_OK_AND_ASSIGN(Rec first, file.Get(pool_, 0));
  EXPECT_EQ(first.key, -42);
  EXPECT_EQ(first.payload, 999);
}

TEST_F(ExternalSortTest, AlreadySortedStaysStable) {
  std::vector<Rec> data;
  for (int i = 0; i < 3000; ++i) data.push_back(Rec{i, i});
  TypedFile<Rec> file = MakeFile(data);
  ExternalSorter<Rec> sorter(&disk_, &pool_, 3);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  auto got = ReadAll(file);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, static_cast<int64_t>(i));
  }
}

}  // namespace
}  // namespace iolap
