#include "storage/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

struct Rec {
  int64_t key;
  int64_t payload;
};

bool KeyLess(const Rec& a, const Rec& b) { return a.key < b.key; }

class ExternalSortTest : public ::testing::Test {
 protected:
  ExternalSortTest() : disk_(MakeTempDir()), pool_(&disk_, 16) {}

  TypedFile<Rec> MakeFile(const std::vector<Rec>& records) {
    auto file = TypedFile<Rec>::Create(disk_, "sort_input");
    EXPECT_TRUE(file.ok());
    auto appender = file->MakeAppender(pool_);
    for (const Rec& r : records) {
      EXPECT_TRUE(appender.Append(r).ok());
    }
    appender.Close();
    return *file;
  }

  std::vector<Rec> ReadAll(const TypedFile<Rec>& file) {
    std::vector<Rec> out;
    auto cursor = file.Scan(pool_);
    Rec r;
    while (!cursor.done()) {
      EXPECT_TRUE(cursor.Next(&r).ok());
      out.push_back(r);
    }
    return out;
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(ExternalSortTest, EmptyAndSingleton) {
  TypedFile<Rec> empty = MakeFile({});
  ExternalSorter<Rec> sorter(&disk_, &pool_, 4);
  IOLAP_ASSERT_OK(sorter.Sort(&empty, KeyLess));
  EXPECT_EQ(empty.size(), 0);

  TypedFile<Rec> one = MakeFile({Rec{5, 50}});
  IOLAP_ASSERT_OK(sorter.Sort(&one, KeyLess));
  auto records = ReadAll(one);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, 5);
}

TEST_F(ExternalSortTest, InMemoryFastPath) {
  Rng rng(1);
  std::vector<Rec> data;
  for (int i = 0; i < 200; ++i) {
    data.push_back(Rec{static_cast<int64_t>(rng.Uniform(1000)), i});
  }
  TypedFile<Rec> file = MakeFile(data);
  ExternalSorter<Rec> sorter(&disk_, &pool_, 8);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  auto got = ReadAll(file);
  std::sort(data.begin(), data.end(), KeyLess);
  ASSERT_EQ(got.size(), data.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].key, data[i].key);
}

// Property sweep: sizes that hit the single-chunk fast path, a single merge
// pass, and multiple merge passes, with budgets down to the minimum.
class ExternalSortSweep
    : public ExternalSortTest,
      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(ExternalSortSweep, SortsAndPreservesMultiset) {
  auto [n, budget_pages] = GetParam();
  Rng rng(n * 1000003 + budget_pages);
  std::vector<Rec> data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Small key space forces duplicates; payload detects record loss.
    data.push_back(Rec{static_cast<int64_t>(rng.Uniform(97)), i});
  }
  TypedFile<Rec> file = MakeFile(data);
  ExternalSorter<Rec> sorter(&disk_, &pool_, budget_pages);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  auto got = ReadAll(file);
  ASSERT_EQ(got.size(), data.size());
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].key, got[i].key) << "disorder at " << i;
  }
  // Multiset equality via payload sort.
  auto full_less = [](const Rec& a, const Rec& b) {
    return std::tie(a.key, a.payload) < std::tie(b.key, b.payload);
  };
  std::vector<Rec> expect = data;
  std::sort(expect.begin(), expect.end(), full_less);
  std::sort(got.begin(), got.end(), full_less);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expect[i].key);
    EXPECT_EQ(got[i].payload, expect[i].payload);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBudgets, ExternalSortSweep,
    ::testing::Combine(
        ::testing::Values(0, 1, 255, 256, 257, 1000, 5000, 20000),
        ::testing::Values(3, 4, 8)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

TEST_F(ExternalSortTest, TwoPassIoBudget) {
  // With n pages of data and a budget small enough to force exactly one
  // merge pass, the sorter should read and write each page about twice —
  // the paper's standard 2-pass sort assumption.
  const int64_t rpp = TypedFile<Rec>::kRecordsPerPage;
  const int64_t budget = 8;
  const int64_t n_pages = 40;  // 40/8 = 5 runs, fan-in 7 => one merge pass
  std::vector<Rec> data;
  Rng rng(7);
  for (int64_t i = 0; i < n_pages * rpp; ++i) {
    data.push_back(Rec{static_cast<int64_t>(rng.Next() % 100000), i});
  }
  TypedFile<Rec> file = MakeFile(data);
  IOLAP_ASSERT_OK(pool_.FlushAll());
  disk_.ResetStats();
  ExternalSorter<Rec> sorter(&disk_, &pool_, budget);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  IoStats stats = disk_.stats();
  EXPECT_LE(stats.page_reads, 2 * n_pages + 4);
  EXPECT_LE(stats.page_writes, 2 * n_pages + 4);
  EXPECT_GE(stats.page_reads, 2 * n_pages);
  EXPECT_GE(stats.page_writes, 2 * n_pages);
}

TEST_F(ExternalSortTest, SortWithDirtyPoolPagesIsCoherent) {
  // Mutate a record through the pool, then sort: the sorter must see the
  // mutation (EvictFile flushes) and the pool must not serve stale pages
  // afterwards.
  std::vector<Rec> data;
  for (int i = 0; i < 1000; ++i) data.push_back(Rec{1000 - i, i});
  TypedFile<Rec> file = MakeFile(data);
  IOLAP_ASSERT_OK(file.Put(pool_, 0, Rec{-42, 999}));
  ExternalSorter<Rec> sorter(&disk_, &pool_, 3);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  IOLAP_ASSERT_OK_AND_ASSIGN(Rec first, file.Get(pool_, 0));
  EXPECT_EQ(first.key, -42);
  EXPECT_EQ(first.payload, 999);
}

TEST_F(ExternalSortTest, AlreadySortedStaysStable) {
  std::vector<Rec> data;
  for (int i = 0; i < 3000; ++i) data.push_back(Rec{i, i});
  TypedFile<Rec> file = MakeFile(data);
  ExternalSorter<Rec> sorter(&disk_, &pool_, 3);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyLess));
  auto got = ReadAll(file);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, static_cast<int64_t>(i));
  }
}

// KeyLess as a functor with the normalized-key protocol, so the sorter's
// keyed radix path runs. Duplicate keys make the (stable) tie handling
// observable through the payload.
struct KeyedLess {
  bool operator()(const Rec& a, const Rec& b) const { return a.key < b.key; }
  uint64_t KeyPrefix(const Rec& a) const {
    return static_cast<uint64_t>(a.key);
  }
};

std::vector<Rec> MakeRandomRecords(uint64_t seed, int n, int64_t key_space) {
  Rng rng(seed);
  std::vector<Rec> data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    data.push_back(
        Rec{static_cast<int64_t>(rng.Uniform(
                static_cast<uint64_t>(key_space))),
            i});
  }
  return data;
}

TEST_F(ExternalSortTest, TailChunkSmallerThanBudgetSortsCorrectly) {
  // Budget 4 pages; input = 3 full chunks plus a 7-record tail, so the last
  // run is far smaller than the budget and the final output page is
  // partial.
  const int64_t rpp = TypedFile<Rec>::kRecordsPerPage;
  const int n = static_cast<int>(3 * 4 * rpp + 7);
  std::vector<Rec> data = MakeRandomRecords(21, n, 1000);
  TypedFile<Rec> file = MakeFile(data);
  ExternalSorter<Rec> sorter(&disk_, &pool_, 4);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyedLess{}));
  auto got = ReadAll(file);
  std::stable_sort(data.begin(), data.end(), KeyedLess{});
  ASSERT_EQ(got.size(), data.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, data[i].key) << "at " << i;
  }
}

TEST_F(ExternalSortTest, SingleRunFastPathReadsAndWritesOnce) {
  // The whole range fits in the budget: no scratch files, one read and one
  // write per data page.
  const int64_t rpp = TypedFile<Rec>::kRecordsPerPage;
  const int64_t n_pages = 6;
  std::vector<Rec> data =
      MakeRandomRecords(22, static_cast<int>(n_pages * rpp), 5000);
  TypedFile<Rec> file = MakeFile(data);
  IOLAP_ASSERT_OK(pool_.FlushAll());
  disk_.ResetStats();
  ExternalSorter<Rec> sorter(&disk_, &pool_, 8);
  IOLAP_ASSERT_OK(sorter.Sort(&file, KeyedLess{}));
  IoStats stats = disk_.stats();
  EXPECT_EQ(stats.page_reads, n_pages);
  EXPECT_EQ(stats.page_writes, n_pages);
}

TEST_F(ExternalSortTest, RangeEndingMidPagePreservesNeighbours) {
  // Sort only [rpp, rpp + span) where the range ends mid-page: records
  // before, after, and the tail sharing the range's last page must come out
  // untouched. Budget 8 takes the in-memory fast path; budget 3 spills to
  // runs and merges, whose final partial page is a read-modify-write.
  const int64_t rpp = TypedFile<Rec>::kRecordsPerPage;
  const int64_t span = 3 * rpp + rpp / 3;
  const int64_t begin = rpp;
  const int n = static_cast<int>(6 * rpp);
  for (int64_t budget : {8, 3}) {
    std::vector<Rec> data;
    for (int i = 0; i < n; ++i) data.push_back(Rec{n - i, i});
    TypedFile<Rec> file = MakeFile(data);
    ExternalSorter<Rec> sorter(&disk_, &pool_, budget);
    IOLAP_ASSERT_OK(
        sorter.SortRange(&file, begin, begin + span, KeyedLess{}));
    auto got = ReadAll(file);
    ASSERT_EQ(got.size(), data.size());
    std::stable_sort(data.begin() + begin, data.begin() + begin + span,
                     KeyedLess{});
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].key, data[i].key) << "budget " << budget << " at " << i;
      EXPECT_EQ(got[i].payload, data[i].payload)
          << "budget " << budget << " at " << i;
    }
  }
}

// Serial vs. fully pipelined sorts of the same input must leave the file
// byte-identical — including page slack and stable tie order — for every
// seed. This is the storage-level half of the pipeline contract (the
// allocation-level half lives in io_pipeline_equivalence_test).
class ExternalSortPipelineSeeds : public ExternalSortTest,
                                  public ::testing::WithParamInterface<int> {
 protected:
  std::vector<std::byte> SortAndDump(const IoPipelineOptions& io) {
    // Many duplicate keys (key space 13) so the stable total order is
    // genuinely exercised.
    std::vector<Rec> data = MakeRandomRecords(GetParam(), 7000, 13);
    TypedFile<Rec> file = MakeFile(data);
    ExternalSorter<Rec> sorter(&disk_, &pool_, 4, io);
    EXPECT_TRUE(sorter.Sort(&file, KeyedLess{}).ok());
    std::vector<std::byte> bytes(
        static_cast<size_t>(file.size_in_pages()) * kPageSize);
    for (int64_t p = 0; p < file.size_in_pages(); ++p) {
      EXPECT_TRUE(
          disk_.ReadPage(file.file_id(), p, bytes.data() + p * kPageSize)
              .ok());
    }
    return bytes;
  }
};

TEST_P(ExternalSortPipelineSeeds, SerialAndParallelAreByteIdentical) {
  std::vector<std::byte> serial = SortAndDump(IoPipelineOptions::Serial());
  IoPipelineOptions pipelined;
  pipelined.sort_threads = 4;
  std::vector<std::byte> piped = SortAndDump(pipelined);
  ASSERT_EQ(serial.size(), piped.size());
  EXPECT_EQ(std::memcmp(serial.data(), piped.data(), serial.size()), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExternalSortPipelineSeeds,
                         ::testing::Values(31, 32, 33),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace iolap
