#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/result.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(MakeTempDir()) {}

  FileId NewFileWithPages(int n) {
    auto file = disk_.CreateFile("t");
    EXPECT_TRUE(file.ok());
    std::byte page[kPageSize];
    for (int i = 0; i < n; ++i) {
      std::memset(page, i, kPageSize);
      EXPECT_TRUE(disk_.WritePage(*file, i, page).ok());
    }
    return *file;
  }

  DiskManager disk_;
};

TEST_F(BufferPoolTest, HitAvoidsDiskRead) {
  FileId f = NewFileWithPages(2);
  BufferPool pool(&disk_, 4);
  disk_.ResetStats();
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0));
    EXPECT_EQ(g.data()[0], std::byte{0});
  }
  EXPECT_EQ(disk_.stats().page_reads, 1);
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0));
    (void)g;
  }
  EXPECT_EQ(disk_.stats().page_reads, 1);  // second pin was a hit
  EXPECT_EQ(pool.stats().hits, 1);
  EXPECT_EQ(pool.stats().misses, 1);
}

TEST_F(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  FileId f = NewFileWithPages(3);
  BufferPool pool(&disk_, 2);
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0));
    g.data()[0] = std::byte{0xEE};
    g.MarkDirty();
  }
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 1));
    (void)g;
  }
  // Pool is full; pinning page 2 must evict page 0 (LRU) and write it back.
  disk_.ResetStats();
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 2));
    (void)g;
  }
  EXPECT_EQ(disk_.stats().page_writes, 1);
  EXPECT_EQ(pool.stats().dirty_writebacks, 1);
  // Re-reading page 0 from disk shows the written-back byte.
  std::byte page[kPageSize];
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, page));
  EXPECT_EQ(page[0], std::byte{0xEE});
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  FileId f = NewFileWithPages(3);
  BufferPool pool(&disk_, 2);
  IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g0, pool.Pin(f, 0));
  IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g1, pool.Pin(f, 1));
  Result<PageGuard> g2 = pool.Pin(f, 2);
  EXPECT_FALSE(g2.ok());
  EXPECT_EQ(g2.status().code(), StatusCode::kResourceExhausted);
  g0.Release();
  Result<PageGuard> retry = pool.Pin(f, 2);
  EXPECT_TRUE(retry.ok());
}

TEST_F(BufferPoolTest, PinCountsAreSharedPerPage) {
  FileId f = NewFileWithPages(1);
  BufferPool pool(&disk_, 2);
  IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard a, pool.Pin(f, 0));
  IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard b, pool.Pin(f, 0));
  EXPECT_EQ(pool.pinned_pages(), 1u);
  a.Release();
  EXPECT_EQ(pool.pinned_pages(), 1u);
  b.Release();
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST_F(BufferPoolTest, PinNewCreatesZeroedTailPage) {
  IOLAP_ASSERT_OK_AND_ASSIGN(FileId f, disk_.CreateFile("t"));
  BufferPool pool(&disk_, 2);
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.PinNew(f, 0));
    for (size_t i = 0; i < kPageSize; i += 512) {
      EXPECT_EQ(g.data()[i], std::byte{0});
    }
    g.data()[5] = std::byte{0x42};
    g.MarkDirty();
  }
  IOLAP_ASSERT_OK(pool.FlushAll());
  std::byte page[kPageSize];
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, page));
  EXPECT_EQ(page[5], std::byte{0x42});
  // PinNew must target exactly the end of the file.
  EXPECT_FALSE(pool.PinNew(f, 5).ok());
}

TEST_F(BufferPoolTest, EvictFileDropsCleanAndDirtyPages) {
  FileId f = NewFileWithPages(2);
  BufferPool pool(&disk_, 4);
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0));
    g.data()[0] = std::byte{0x33};
    g.MarkDirty();
  }
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 1));
    (void)g;
  }
  IOLAP_ASSERT_OK(pool.EvictFile(f));
  std::byte page[kPageSize];
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, page));
  EXPECT_EQ(page[0], std::byte{0x33});
  // All frames free again: next pins are misses.
  pool.ResetStats();
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0));
    (void)g;
  }
  EXPECT_EQ(pool.stats().misses, 1);
}

TEST_F(BufferPoolTest, EvictFileRefusesPinnedPages) {
  FileId f = NewFileWithPages(1);
  BufferPool pool(&disk_, 2);
  IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0));
  EXPECT_EQ(pool.EvictFile(f).code(), StatusCode::kFailedPrecondition);
  g.Release();
  IOLAP_EXPECT_OK(pool.EvictFile(f));
}

TEST_F(BufferPoolTest, FlushFileKeepsPagesCached) {
  FileId f = NewFileWithPages(1);
  BufferPool pool(&disk_, 2);
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0));
    g.data()[1] = std::byte{0x77};
    g.MarkDirty();
  }
  IOLAP_ASSERT_OK(pool.FlushFile(f));
  std::byte page[kPageSize];
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 0, page));
  EXPECT_EQ(page[1], std::byte{0x77});
  pool.ResetStats();
  {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0));
    (void)g;
  }
  EXPECT_EQ(pool.stats().hits, 1);  // still cached
}

TEST_F(BufferPoolTest, MoveSemanticsOfGuard) {
  FileId f = NewFileWithPages(1);
  BufferPool pool(&disk_, 2);
  IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard a, pool.Pin(f, 0));
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.pinned_pages(), 1u);
  b.Release();
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST_F(BufferPoolTest, PrefetchChargesDemandReadOnConsumption) {
  FileId f = NewFileWithPages(6);
  BufferPool pool(&disk_, 8);
  pool.ConfigureReadAhead(4);
  disk_.ResetStats();
  pool.Prefetch(f, 0, 4);
  pool.DrainPrefetches();
  // The physical reads are prefetch reads; no demand read happened yet.
  EXPECT_EQ(disk_.stats().prefetch_reads, 4);
  EXPECT_EQ(disk_.stats().page_reads, 0);
  for (PageId p = 0; p < 4; ++p) {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, p));
    EXPECT_EQ(g.data()[0], std::byte{static_cast<unsigned char>(p)});
  }
  // Consumption charges exactly the demand reads the serial pipeline would
  // have issued (the cost-model counter), without new physical traffic.
  EXPECT_EQ(disk_.stats().page_reads, 4);
  EXPECT_EQ(disk_.stats().prefetch_reads, 4);
  EXPECT_EQ(pool.stats().prefetch_hits, 4);
  EXPECT_EQ(pool.stats().prefetch_wasted, 0);
  EXPECT_EQ(pool.stats().misses, 0);
}

TEST_F(BufferPoolTest, PrefetchedPagesAreEvictableByDemand) {
  FileId f = NewFileWithPages(8);
  // Four frames: the smallest pool whose prefetch headroom (free +
  // unconsumed prefetched frames) clears the hint gate's minimum.
  BufferPool pool(&disk_, 4);
  pool.ConfigureReadAhead(2);
  pool.Prefetch(f, 0, 2);
  pool.DrainPrefetches();
  EXPECT_EQ(disk_.stats().prefetch_reads, 2);
  // Prefetched frames are unpinned: after demand pins exhaust the free
  // frames, further pins must succeed by evicting them, and the unconsumed
  // frames count as wasted.
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 2)); (void)g; }
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 3)); (void)g; }
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 4)); (void)g; }
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 5)); (void)g; }
  EXPECT_EQ(pool.stats().prefetch_wasted, 2);
  EXPECT_EQ(pool.stats().prefetch_hits, 0);
}

TEST_F(BufferPoolTest, EvictFileCancelsOutstandingPrefetches) {
  FileId f = NewFileWithPages(4);
  BufferPool pool(&disk_, 8);
  pool.ConfigureReadAhead(4);
  pool.Prefetch(f, 0, 4);
  IOLAP_ASSERT_OK(pool.EvictFile(f));
  pool.DrainPrefetches();
  // Whatever the prefetcher managed before the eviction, no page of the
  // file may remain cached: the next pin is a demand miss.
  pool.ResetStats();
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0)); (void)g; }
  EXPECT_EQ(pool.stats().misses, 1);
  EXPECT_EQ(pool.stats().prefetch_hits, 0);
}

TEST_F(BufferPoolTest, PrefetchBacksOffWhenPoolIsSaturated) {
  FileId f = NewFileWithPages(4);
  BufferPool pool(&disk_, 2);
  pool.ConfigureReadAhead(2);
  // Fill the pool with demand pages, then hint: read-ahead must not
  // displace them, so no physical prefetch read may happen.
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0)); (void)g; }
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 1)); (void)g; }
  disk_.ResetStats();
  pool.Prefetch(f, 2, 2);
  pool.DrainPrefetches();
  EXPECT_EQ(disk_.stats().prefetch_reads, 0);
  // The demand pages are still cached.
  pool.ResetStats();
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0)); (void)g; }
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 1)); (void)g; }
  EXPECT_EQ(pool.stats().misses, 0);
}

TEST_F(BufferPoolTest, PrefetchIsNoOpWhileUnconfigured) {
  FileId f = NewFileWithPages(2);
  BufferPool pool(&disk_, 4);
  disk_.ResetStats();
  pool.Prefetch(f, 0, 2);
  pool.DrainPrefetches();
  EXPECT_EQ(disk_.stats().prefetch_reads, 0);
  EXPECT_EQ(disk_.stats().page_reads, 0);
}

TEST_F(BufferPoolTest, DestructorWritesBackDirtyPages) {
  FileId f = NewFileWithPages(2);
  {
    BufferPool pool(&disk_, 4);
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 1));
    g.data()[7] = std::byte{0x5A};
    g.MarkDirty();
    g.Release();
    // No FlushAll/FlushFile: the destructor alone must not lose the write.
  }
  std::byte page[kPageSize];
  IOLAP_ASSERT_OK(disk_.ReadPage(f, 1, page));
  EXPECT_EQ(page[7], std::byte{0x5A});
}

TEST_F(BufferPoolTest, DisablingReadAheadPurgesQueuedHints) {
  FileId f = NewFileWithPages(8);
  BufferPool pool(&disk_, 16);
  pool.ConfigureReadAhead(4);
  // Freeze the worker so the hints stay queued across the disable.
  pool.SetPrefetcherPausedForTest(true);
  disk_.ResetStats();
  pool.Prefetch(f, 0, 4);
  pool.Prefetch(f, 4, 4);
  pool.ConfigureReadAhead(0);  // must purge both queued requests
  pool.SetPrefetcherPausedForTest(false);
  pool.DrainPrefetches();  // returns immediately: nothing left to service
  EXPECT_EQ(disk_.stats().prefetch_reads, 0);
  EXPECT_EQ(pool.stats().prefetch_hits, 0);
  // The hinted pages were never loaded: pins are plain demand misses.
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0)); (void)g; }
  EXPECT_EQ(disk_.stats().page_reads, 1);
  EXPECT_EQ(pool.stats().misses, 1);
  // Enable/disable is idempotent: repeat disables are no-ops and a
  // re-enable reuses the worker.
  pool.ConfigureReadAhead(0);
  pool.ConfigureReadAhead(4);
  pool.ConfigureReadAhead(4);
  pool.Prefetch(f, 4, 4);
  pool.DrainPrefetches();
  EXPECT_EQ(disk_.stats().prefetch_reads, 4);
}

TEST_F(BufferPoolTest, PinClaimsQueuedHintAndServicesOnlyTheTail) {
  FileId f = NewFileWithPages(8);
  BufferPool pool(&disk_, 16);
  pool.ConfigureReadAhead(4);
  // Freeze the worker: the demand Pin below must overtake the queued hint
  // through TryServiceQueuedPrefetch, deterministically.
  pool.SetPrefetcherPausedForTest(true);
  disk_.ResetStats();
  pool.Prefetch(f, 0, 4);
  {
    // Overtaking pin: claims the hint, services only the tail [2, 4) as
    // prefetch reads, and charges exactly one demand read for itself.
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 2));
    EXPECT_EQ(g.data()[0], std::byte{2});
  }
  EXPECT_EQ(disk_.stats().prefetch_reads, 2);  // pages 2 and 3 only
  EXPECT_EQ(disk_.stats().page_reads, 1);
  EXPECT_EQ(pool.stats().prefetch_hits, 1);
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 3)); (void)g; }
  EXPECT_EQ(pool.stats().prefetch_hits, 2);
  EXPECT_EQ(disk_.stats().page_reads, 2);
  // The already-demanded head [0, 2) was dropped from the hint: these are
  // physical demand misses, not prefetch hits.
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0)); (void)g; }
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 1)); (void)g; }
  EXPECT_EQ(disk_.stats().page_reads, 4);
  EXPECT_EQ(disk_.stats().prefetch_reads, 2);
  EXPECT_EQ(pool.stats().misses, 2);
  pool.SetPrefetcherPausedForTest(false);
}

TEST_F(BufferPoolTest, GateFastPathFoldDoesNotCountServicedHint) {
  // Reaches the every-64th fall-through of the closed-gate fast path at a
  // moment when the gates have re-opened, so the fallen-through hint is
  // enqueued and serviced: prefetch_gated must count only the 63 dropped
  // hints plus the fold batch, not the serviced one.
  FileId a = NewFileWithPages(33);
  auto file_b = disk_.CreateFile("b");
  ASSERT_TRUE(file_b.ok());
  FileId b = *file_b;
  std::byte page[kPageSize];
  for (int i = 0; i < 31; ++i) {
    std::memset(page, i, kPageSize);
    ASSERT_TRUE(disk_.WritePage(b, i, page).ok());
  }
  BufferPool pool(&disk_, 64);
  pool.ConfigureReadAhead(8);
  pool.Prefetch(a, 0, 33);
  pool.Prefetch(b, 0, 31);
  pool.DrainPrefetches();  // all 64 frames hold unconsumed prefetches
  // Evicting A decides 33 prefetches as wasted: the rolling window is now
  // 0 hits / 33 wasted (past the 32-sample floor).
  IOLAP_ASSERT_OK(pool.EvictFile(a));
  // The next locked-path hint evaluates the window and closes the gate.
  pool.Prefetch(a, 0, 1);
  EXPECT_EQ(pool.stats().prefetch_gated, 1);
  // Consuming B's 31 prefetched frames flips the window effective again
  // (31 hits / 33 wasted), but the published gate stays closed until the
  // next locked-path evaluation — exactly the fall-through scenario.
  for (PageId p = 0; p < 31; ++p) {
    IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(b, p));
    (void)g;
  }
  EXPECT_EQ(pool.stats().prefetch_hits, 31);
  const int64_t prefetch_reads_before = disk_.stats().prefetch_reads;
  // 63 hints fast-drop; the 64th falls through, folds the batch, finds the
  // gates open, and is enqueued and serviced.
  for (int i = 0; i < 64; ++i) pool.Prefetch(a, 0, 1);
  pool.DrainPrefetches();
  EXPECT_EQ(disk_.stats().prefetch_reads, prefetch_reads_before + 1);
  // 1 (gate-closing hint) + 63 fast drops. The buggy fold also counted the
  // serviced 64th hint, reporting 65.
  EXPECT_EQ(pool.stats().prefetch_gated, 64);
}

TEST_F(BufferPoolTest, LruOrderIsRecencyBased) {
  FileId f = NewFileWithPages(3);
  BufferPool pool(&disk_, 2);
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0)); (void)g; }
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 1)); (void)g; }
  // Touch page 0 again so page 1 becomes LRU.
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0)); (void)g; }
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 2)); (void)g; }
  pool.ResetStats();
  // Page 0 should still be cached, page 1 evicted.
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 0)); (void)g; }
  EXPECT_EQ(pool.stats().hits, 1);
  { IOLAP_ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Pin(f, 1)); (void)g; }
  EXPECT_EQ(pool.stats().misses, 1);
}

}  // namespace
}  // namespace iolap
