// Snapshot semantics under concurrency (run under TSan in CI): N query
// threads race a maintenance stream, and every returned aggregate must
// equal a serial rescan of the EDB at the generation the query pinned —
// i.e. no query ever observes a half-applied maintenance batch, and no
// invalidation ever lets a stale cached answer escape.

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "serve/query_service.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

struct Probe {
  QueryRegion region;
  AggregateFunc func;
};

struct Observation {
  size_t probe = 0;
  int64_t generation = 0;
  double value = 0;
  bool ok = false;
};

TEST(ServeConcurrentTest, QueriesMatchSerialRescanAtPinnedGeneration) {
  StorageEnv env(MakeTempDir(), 256);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  StorageEnv scratch(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto gen_file,
                             MakePaperExampleFacts(scratch, schema));
  std::vector<FactRecord> facts;
  {
    auto cursor = gen_file.Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts.push_back(f);
    }
  }
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env, facts));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &file, options));

  ServeOptions opts;
  opts.num_threads = 4;
  opts.min_partition_rows = 1;
  opts.cache_slots = 64;
  QueryService service(manager.get(), opts);

  std::vector<Probe> probes = {{QueryRegion::All(), AggregateFunc::kSum},
                               {QueryRegion::All(), AggregateFunc::kCount}};
  for (NodeId node : schema.dim(0).nodes_at_level(1)) {
    probes.push_back({QueryRegion::All().With(0, node), AggregateFunc::kSum});
    probes.push_back(
        {QueryRegion::All().With(0, node), AggregateFunc::kCount});
  }

  // The serial reference: one rescan per probe, recomputed by the mutation
  // thread after every commit while it alone controls when the EDB next
  // changes. Written only by the mutation thread, read after the joins.
  std::map<int64_t, std::vector<double>> expected;
  QueryEngine engine(&env, &schema, &manager->edb());
  auto rescan_all = [&]() -> Result<std::vector<double>> {
    std::vector<double> out;
    for (const Probe& p : probes) {
      IOLAP_ASSIGN_OR_RETURN(AggregateResult r,
                             engine.Aggregate(p.region, p.func));
      out.push_back(r.value);
    }
    return out;
  };
  IOLAP_ASSERT_OK_AND_ASSIGN(expected[0], rescan_all());

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 40;
  constexpr int kMutations = 6;

  Status mutation_status = Status::Ok();
  std::thread mutator([&] {
    // Alternates measure bumps on two precise facts (p1, p4); regions never
    // change, so the component structure stays put while values move.
    double m0 = facts[0].measure;
    double m3 = facts[3].measure;
    for (int round = 0; round < kMutations; ++round) {
      FactRecord before = facts[round % 2 == 0 ? 0 : 3];
      double& current = round % 2 == 0 ? m0 : m3;
      before.measure = current;
      current += 50 + round;
      Status s = service.ApplyUpdates({FactUpdate{before, current}});
      if (!s.ok()) {
        mutation_status = s;
        return;
      }
      const int64_t gen = service.generation();
      auto values = rescan_all();
      if (!values.ok()) {
        mutation_status = values.status();
        return;
      }
      expected[gen] = std::move(values).value();
    }
  });

  std::vector<std::vector<Observation>> observed(kQueryThreads);
  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&, t] {
      std::vector<Observation>& log = observed[t];
      log.reserve(kQueriesPerThread);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        Observation obs;
        obs.probe = static_cast<size_t>(t * 31 + i * 7) % probes.size();
        Result<AggregateResult> r = service.Aggregate(
            probes[obs.probe].region, probes[obs.probe].func,
            &obs.generation);
        obs.ok = r.ok();
        if (r.ok()) obs.value = r->value;
        log.push_back(obs);
      }
    });
  }
  for (std::thread& t : queriers) t.join();
  mutator.join();
  IOLAP_ASSERT_OK(mutation_status);
  ASSERT_EQ(expected.size(), static_cast<size_t>(kMutations) + 1);

  // Every observation must equal the serial rescan at its pinned
  // generation — across cache hits, misses, and invalidations.
  for (int t = 0; t < kQueryThreads; ++t) {
    for (const Observation& obs : observed[t]) {
      ASSERT_TRUE(obs.ok);
      auto it = expected.find(obs.generation);
      ASSERT_NE(it, expected.end())
          << "query pinned unknown generation " << obs.generation;
      EXPECT_NEAR(obs.value, it->second[obs.probe], 1e-9)
          << "thread " << t << " probe " << obs.probe << " generation "
          << obs.generation;
    }
  }
  // The workload re-asks the same probes between commits, so the cache must
  // have served some of it.
  EXPECT_GT(service.cache()->stats().hits, 0);
}

}  // namespace
}  // namespace iolap
