// Snapshot semantics under concurrency (run under TSan in CI): N query
// threads race a maintenance stream, and every returned aggregate must
// equal a serial rescan of the EDB at the generation the query pinned —
// i.e. no query ever observes a half-applied maintenance batch, and no
// invalidation ever lets a stale cached answer escape.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "serve/query_service.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

struct Probe {
  QueryRegion region;
  AggregateFunc func;
};

struct Observation {
  size_t probe = 0;
  int64_t generation = 0;
  double value = 0;
  bool ok = false;
};

TEST(ServeConcurrentTest, QueriesMatchSerialRescanAtPinnedGeneration) {
  StorageEnv env(MakeTempDir(), 256);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  StorageEnv scratch(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto gen_file,
                             MakePaperExampleFacts(scratch, schema));
  std::vector<FactRecord> facts;
  {
    auto cursor = gen_file.Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts.push_back(f);
    }
  }
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env, facts));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &file, options));

  ServeOptions opts;
  opts.num_threads = 4;
  opts.min_partition_rows = 1;
  opts.cache_slots = 64;
  // The synopsis commits inside every mutation batch while queries race it
  // through the bounded tier — the probes below are all marginal regions,
  // so synopsis answers are exact and must match the rescan too.
  opts.synopsis = true;
  QueryService service(manager.get(), opts);

  std::vector<Probe> probes = {{QueryRegion::All(), AggregateFunc::kSum},
                               {QueryRegion::All(), AggregateFunc::kCount}};
  for (NodeId node : schema.dim(0).nodes_at_level(1)) {
    probes.push_back({QueryRegion::All().With(0, node), AggregateFunc::kSum});
    probes.push_back(
        {QueryRegion::All().With(0, node), AggregateFunc::kCount});
  }

  // The serial reference: one rescan per probe, recomputed by the mutation
  // thread after every commit while it alone controls when the EDB next
  // changes. Written only by the mutation thread, read after the joins.
  std::map<int64_t, std::vector<double>> expected;
  QueryEngine engine(&env, &schema, &manager->edb());
  auto rescan_all = [&]() -> Result<std::vector<double>> {
    std::vector<double> out;
    for (const Probe& p : probes) {
      IOLAP_ASSIGN_OR_RETURN(AggregateResult r,
                             engine.Aggregate(p.region, p.func));
      out.push_back(r.value);
    }
    return out;
  };
  IOLAP_ASSERT_OK_AND_ASSIGN(expected[0], rescan_all());

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 40;
  constexpr int kMutations = 6;

  Status mutation_status = Status::Ok();
  std::thread mutator([&] {
    // Alternates measure bumps on two precise facts (p1, p4); regions never
    // change, so the component structure stays put while values move.
    double m0 = facts[0].measure;
    double m3 = facts[3].measure;
    for (int round = 0; round < kMutations; ++round) {
      FactRecord before = facts[round % 2 == 0 ? 0 : 3];
      double& current = round % 2 == 0 ? m0 : m3;
      before.measure = current;
      current += 50 + round;
      Status s = service.ApplyUpdates({FactUpdate{before, current}});
      if (!s.ok()) {
        mutation_status = s;
        return;
      }
      const int64_t gen = service.generation();
      auto values = rescan_all();
      if (!values.ok()) {
        mutation_status = values.status();
        return;
      }
      expected[gen] = std::move(values).value();
    }
  });

  std::vector<std::vector<Observation>> observed(kQueryThreads);
  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&, t] {
      std::vector<Observation>& log = observed[t];
      log.reserve(kQueriesPerThread);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        Observation obs;
        obs.probe = static_cast<size_t>(t * 31 + i * 7) % probes.size();
        if (i % 3 == 2) {
          // Bounded contract racing the mutation stream: every probe is a
          // marginal region, so an accepted synopsis answer has bound 0 and
          // must equal the pinned-generation rescan like any exact answer.
          AnswerStats as;
          Result<AggregateResult> r = service.Aggregate(
              probes[obs.probe].region, probes[obs.probe].func,
              AnswerSpec::Bounded(1e9), &as, &obs.generation);
          obs.ok = r.ok() && as.bound == 0;
          if (r.ok()) obs.value = r->value;
        } else {
          Result<AggregateResult> r = service.Aggregate(
              probes[obs.probe].region, probes[obs.probe].func,
              &obs.generation);
          obs.ok = r.ok();
          if (r.ok()) obs.value = r->value;
        }
        log.push_back(obs);
      }
    });
  }
  for (std::thread& t : queriers) t.join();
  mutator.join();
  IOLAP_ASSERT_OK(mutation_status);
  ASSERT_EQ(expected.size(), static_cast<size_t>(kMutations) + 1);

  // Every observation must equal the serial rescan at its pinned
  // generation — across cache hits, misses, and invalidations.
  for (int t = 0; t < kQueryThreads; ++t) {
    for (const Observation& obs : observed[t]) {
      ASSERT_TRUE(obs.ok);
      auto it = expected.find(obs.generation);
      ASSERT_NE(it, expected.end())
          << "query pinned unknown generation " << obs.generation;
      EXPECT_NEAR(obs.value, it->second[obs.probe], 1e-9)
          << "thread " << t << " probe " << obs.probe << " generation "
          << obs.generation;
    }
  }
  // The workload re-asks the same probes between commits, so the cache must
  // have served some of it.
  EXPECT_GT(service.cache()->stats().hits, 0);
}

// ---------------------------------------------------------------------------
// Sharded serving.

StarSchema MakeShardedSchema() {
  std::vector<Hierarchy> dims;
  const std::vector<std::vector<int>> shapes = {{8, 4}, {4, 4}, {4, 2}};
  for (size_t d = 0; d < shapes.size(); ++d) {
    auto h = HierarchyBuilder::Uniform("D" + std::to_string(d), shapes[d]);
    EXPECT_TRUE(h.ok());
    dims.push_back(std::move(h).value());
  }
  auto schema = StarSchema::Create(std::move(dims));
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

bool IsFullyPrecise(const StarSchema& schema, const FactRecord& f) {
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    if (h.leaf_end(f.node[d]) - h.leaf_begin(f.node[d]) != 1) return false;
  }
  return true;
}

// Per-shard torture: one mutator thread per (distinct) shard streams
// single-shard batches while query threads probe single-leaf regions of
// every shard. Every answer must equal a serial rescan at the *shard*
// generation the query pinned, and shards nobody mutates must never move —
// the per-shard analogue of the global snapshot contract above.
TEST(ServeConcurrentTest, ShardedTortureMatchesRescanAtPinnedShardGeneration) {
  StorageEnv env(MakeTempDir(), 512);
  StarSchema schema = MakeShardedSchema();
  DatasetSpec spec;
  spec.num_facts = 500;
  spec.imprecise_fraction = 0.30;
  spec.seed = 21;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, GenerateFacts(env, schema, spec));
  std::vector<FactRecord> facts;
  {
    auto cursor = file.Scan(env.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts.push_back(f);
    }
  }
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &file, options));

  ServeOptions opts;
  opts.num_threads = 2;
  opts.min_partition_rows = 1;  // snapped to one page: many small chunks
  opts.cache_slots = 128;
  opts.num_shards = 8;
  QueryService service(manager.get(), opts);
  ASSERT_GE(service.num_shards(), 2)
      << "component layout collapsed to one atom; pick another seed";
  const ShardMap& map = service.shard_map();
  const Hierarchy& h0 = schema.dim(0);
  EXPECT_EQ(map.shard_begin(0), 0);
  EXPECT_EQ(map.shard_end(service.num_shards() - 1), h0.num_leaves());

  // One probe per dimension-0 leaf node: each pins exactly one shard, and
  // together they partition every live row.
  std::vector<QueryRegion> probes;
  std::vector<int> probe_shard;
  for (NodeId node : h0.nodes_at_level(1)) {
    probes.push_back(QueryRegion::All().With(0, node));
    probe_shard.push_back(map.ShardOfLeaf(h0.leaf_begin(node)));
  }

  // The serial reference at shard generation 0, before any mutation.
  std::vector<double> expected0(probes.size());
  for (size_t p = 0; p < probes.size(); ++p) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult r,
        service.UncachedAggregate(probes[p], AggregateFunc::kSum));
    expected0[p] = r.value;
  }

  // Mutators own distinct shards via fully precise facts: a precise fact's
  // rect is one cell, and every component overlapping that cell lies in the
  // cell's shard (boundaries are component-aligned), so each batch locks
  // and bumps exactly its own shard.
  struct Owned {
    int shard = 0;
    size_t fact = 0;
  };
  std::vector<Owned> owned;
  std::vector<bool> shard_taken(service.num_shards(), false);
  for (size_t i = 0; i < facts.size() && owned.size() < 3; ++i) {
    if (!IsFullyPrecise(schema, facts[i])) continue;
    const int s = map.ShardOfLeaf(h0.leaf_begin(facts[i].node[0]));
    if (shard_taken[s]) continue;
    shard_taken[s] = true;
    owned.push_back(Owned{s, i});
  }
  ASSERT_GE(owned.size(), 2u);

  constexpr int kRounds = 5;
  // expected[m]: shard owned[m].shard's serial reference, keyed by that
  // shard's generation; written only by mutator m, read after the joins.
  std::vector<std::map<int64_t, std::vector<double>>> expected(owned.size());
  std::vector<Status> mutation_status(owned.size(), Status::Ok());
  std::vector<std::thread> mutators;
  for (size_t m = 0; m < owned.size(); ++m) {
    mutators.emplace_back([&, m] {
      const Owned& own = owned[m];
      FactRecord before = facts[own.fact];
      for (int round = 0; round < kRounds; ++round) {
        const double next = before.measure + 25 + round;
        Status s = service.ApplyUpdates({FactUpdate{before, next}});
        if (!s.ok()) {
          mutation_status[m] = s;
          return;
        }
        before.measure = next;
        // Re-derive this shard's probes at the generation the rescan pins
        // (stable: this thread is the only mutator of this shard).
        std::vector<double> values(probes.size(), 0);
        int64_t gen = -1;
        for (size_t p = 0; p < probes.size(); ++p) {
          if (probe_shard[p] != own.shard) continue;
          ShardSnapshot snap;
          auto r = service.UncachedAggregate(probes[p], AggregateFunc::kSum,
                                             nullptr, &snap);
          if (!r.ok()) {
            mutation_status[m] = r.status();
            return;
          }
          if (snap.generations.size() != 1) {
            mutation_status[m] = Status::Internal("probe spans shards");
            return;
          }
          gen = snap.generations[0];
          values[p] = r->value;
        }
        expected[m][gen] = std::move(values);
      }
    });
  }

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 60;
  struct ShardObservation {
    size_t probe = 0;
    int shard = 0;
    int64_t shard_gen = 0;
    double value = 0;
    bool ok = false;
    bool snap_ok = false;
  };
  std::vector<std::vector<ShardObservation>> observed(kQueryThreads);
  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&, t] {
      std::vector<ShardObservation>& log = observed[t];
      log.reserve(kQueriesPerThread);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        ShardObservation obs;
        obs.probe = static_cast<size_t>(t * 17 + i * 5) % probes.size();
        ShardSnapshot snap;
        Result<AggregateResult> r = service.Aggregate(
            probes[obs.probe], AggregateFunc::kSum, nullptr, nullptr, &snap);
        obs.ok = r.ok();
        obs.snap_ok = snap.generations.size() == 1 &&
                      snap.first_shard == probe_shard[obs.probe];
        if (!snap.generations.empty()) obs.shard_gen = snap.generations[0];
        obs.shard = probe_shard[obs.probe];
        if (r.ok()) obs.value = r->value;
        log.push_back(obs);
      }
    });
  }
  for (std::thread& t : queriers) t.join();
  for (std::thread& t : mutators) t.join();
  for (size_t m = 0; m < owned.size(); ++m) IOLAP_ASSERT_OK(mutation_status[m]);

  // Shards no mutator owns must never have moved.
  for (int s = 0; s < service.num_shards(); ++s) {
    if (!shard_taken[s]) {
      EXPECT_EQ(service.shard_generation(s), 0) << s;
    }
  }
  // Every observation matches the serial rescan at its pinned shard
  // generation.
  std::vector<int> mutator_of_shard(service.num_shards(), -1);
  for (size_t m = 0; m < owned.size(); ++m) {
    mutator_of_shard[owned[m].shard] = static_cast<int>(m);
  }
  for (int t = 0; t < kQueryThreads; ++t) {
    for (const ShardObservation& obs : observed[t]) {
      ASSERT_TRUE(obs.ok);
      ASSERT_TRUE(obs.snap_ok);
      const int m = mutator_of_shard[obs.shard];
      if (obs.shard_gen == 0) {
        EXPECT_NEAR(obs.value, expected0[obs.probe], 1e-9)
            << "probe " << obs.probe << " at shard generation 0";
        continue;
      }
      ASSERT_GE(m, 0) << "unmutated shard " << obs.shard
                      << " advanced to generation " << obs.shard_gen;
      auto it = expected[m].find(obs.shard_gen);
      ASSERT_NE(it, expected[m].end())
          << "query pinned unknown shard generation " << obs.shard_gen;
      EXPECT_NEAR(obs.value, it->second[obs.probe], 1e-9)
          << "thread " << t << " probe " << obs.probe << " shard "
          << obs.shard << " generation " << obs.shard_gen;
    }
  }
}

// Determinism across configurations: for a fixed chunk grid the service's
// answers must be byte-identical across shard counts {1, 2, 8} x thread
// counts {1, 4}, for both group-by variants, and 1e-9-equal to the serial
// QueryEngine oracle.
TEST(ServeConcurrentTest, AnswersBitwiseIdenticalAcrossShardsAndThreads) {
  StorageEnv env(MakeTempDir(), 512);
  StarSchema schema = MakeShardedSchema();
  DatasetSpec spec;
  spec.num_facts = 400;
  spec.imprecise_fraction = 0.35;
  spec.seed = 7;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, GenerateFacts(env, schema, spec));
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &file, options));

  // The probe workload: point aggregates over every function, per-node
  // slices, and rollups at both hierarchy levels.
  struct RollProbe {
    QueryRegion region;
    int dim;
    int level;
    AggregateFunc func;
  };
  std::vector<Probe> point_probes;
  for (AggregateFunc f :
       {AggregateFunc::kSum, AggregateFunc::kCount, AggregateFunc::kAverage,
        AggregateFunc::kMin, AggregateFunc::kMax}) {
    point_probes.push_back({QueryRegion::All(), f});
  }
  for (NodeId node : schema.dim(0).nodes_at_level(2)) {
    point_probes.push_back(
        {QueryRegion::All().With(0, node), AggregateFunc::kSum});
  }
  const NodeId slice = schema.dim(1).nodes_at_level(2)[1];
  std::vector<RollProbe> roll_probes = {
      {QueryRegion::All(), 0, 1, AggregateFunc::kSum},
      {QueryRegion::All(), 0, 2, AggregateFunc::kAverage},
      {QueryRegion::All().With(1, slice), 2, 1, AggregateFunc::kSum},
  };

  auto run_probes =
      [&](QueryService& service) -> Result<std::vector<AggregateResult>> {
    std::vector<AggregateResult> out;
    for (const Probe& p : point_probes) {
      IOLAP_ASSIGN_OR_RETURN(AggregateResult r,
                             service.UncachedAggregate(p.region, p.func));
      out.push_back(r);
    }
    for (const RollProbe& p : roll_probes) {
      IOLAP_ASSIGN_OR_RETURN(
          std::vector<AggregateResult> groups,
          service.UncachedRollUp(p.region, p.dim, p.level, p.func));
      out.insert(out.end(), groups.begin(), groups.end());
    }
    return out;
  };

  // The serial oracle.
  QueryEngine engine(&env, &schema, &manager->edb());
  std::vector<AggregateResult> oracle;
  for (const Probe& p : point_probes) {
    IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult r,
                               engine.Aggregate(p.region, p.func));
    oracle.push_back(r);
  }
  for (const RollProbe& p : roll_probes) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        std::vector<AggregateResult> groups,
        engine.RollUp(p.region, p.dim, p.level, p.func));
    oracle.insert(oracle.end(), groups.begin(), groups.end());
  }

  // radix_min_groups = 4096 keeps every rollup on the local variant;
  // radix_min_groups = 1 forces them all onto the radix variant. Selection
  // is query-intrinsic, so each sweep is internally comparable.
  for (const int64_t radix_min_groups : {int64_t{4096}, int64_t{1}}) {
    std::vector<AggregateResult> baseline;
    for (const int num_shards : {1, 2, 8}) {
      for (const int num_threads : {1, 4}) {
        ServeOptions opts;
        opts.num_threads = num_threads;
        opts.min_partition_rows = 1;  // one page per chunk: max parallelism
        opts.cache_slots = 0;         // pure scan path
        opts.num_shards = num_shards;
        opts.radix_min_groups = radix_min_groups;
        QueryService service(manager.get(), opts);
        IOLAP_ASSERT_OK_AND_ASSIGN(std::vector<AggregateResult> got,
                                   run_probes(service));
        ASSERT_EQ(got.size(), oracle.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i].value, oracle[i].value, 1e-9)
              << "probe " << i << " shards " << num_shards << " threads "
              << num_threads;
        }
        if (baseline.empty()) {
          baseline = std::move(got);
          continue;
        }
        ASSERT_EQ(0, std::memcmp(baseline.data(), got.data(),
                                 baseline.size() * sizeof(AggregateResult)))
            << "answers not byte-identical at shards=" << num_shards
            << " threads=" << num_threads
            << " radix_min_groups=" << radix_min_groups;
      }
    }
  }
}

}  // namespace
}  // namespace iolap
