#include "edb/query.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : env_(MakeTempDir(), 64) {}

  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
    IOLAP_ASSERT_OK_AND_ASSIGN(facts_, MakePaperExampleFacts(env_, schema_));
    // Keep an unconsumed copy of the facts for baseline semantics.
    IOLAP_ASSERT_OK_AND_ASSIGN(original_,
                               MakePaperExampleFacts(env_, schema_));
    AllocationOptions options;
    options.policy = PolicyKind::kUniform;
    IOLAP_ASSERT_OK_AND_ASSIGN(result_,
                               Allocator::Run(env_, schema_, &facts_, options));
  }

  StorageEnv env_;
  StarSchema schema_;
  TypedFile<FactRecord> facts_;
  TypedFile<FactRecord> original_;
  AllocationResult result_;
};

TEST_F(QueryTest, GlobalSumIsConserved) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult total,
      engine.Aggregate(QueryRegion::All(), AggregateFunc::kSum));
  // Allocation preserves total mass: the sum over all cells equals the sum
  // of all fact measures (no fact is unallocatable in the example).
  double expected = 100 + 150 + 100 + 175 + 50 + 100 + 120 + 160 + 190 + 200 +
                    80 + 120 + 70 + 90;
  EXPECT_NEAR(total.value, expected, 1e-9);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult count,
      engine.Aggregate(QueryRegion::All(), AggregateFunc::kCount));
  EXPECT_NEAR(count.value, 14.0, 1e-9);
}

TEST_F(QueryTest, RegionalSumUnderUniformAllocation) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId west, schema_.dim(0).FindNode("West"));
  QueryRegion west_region = QueryRegion::All().With(0, west);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult sum,
      engine.Aggregate(west_region, AggregateFunc::kSum));
  // Precise West facts: p4(175), p5(50). Imprecise facts with cells in the
  // West under uniform allocation over precise cells:
  //  p8 (CA,ALL): both cells West -> 160
  //  p10 (West,Sedan): covers only (CA,Civic) -> 200
  //  p11 (ALL,Civic): half to (CA,Civic) -> 40
  //  p12 (ALL,F150): covers only (NY,F150) -> 0
  //  p13 (West,Civic) -> 70, p14 (West,Sierra) -> 90
  double expected = 175 + 50 + 160 + 200 + 40 + 70 + 90;
  EXPECT_NEAR(sum.value, expected, 1e-9);
}

TEST_F(QueryTest, BaselineSemanticsBracketAllocation) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId east, schema_.dim(0).FindNode("East"));
  QueryRegion east_region = QueryRegion::All().With(0, east);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult none,
      engine.Aggregate(east_region, AggregateFunc::kSum,
                       ImpreciseSemantics::kNone));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult contains,
      engine.Aggregate(east_region, AggregateFunc::kSum,
                       ImpreciseSemantics::kContains));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult overlaps,
      engine.Aggregate(east_region, AggregateFunc::kSum,
                       ImpreciseSemantics::kOverlaps));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult allocated,
      engine.Aggregate(east_region, AggregateFunc::kSum,
                       ImpreciseSemantics::kAllocationWeighted));

  // None counts only precise East facts: p1, p2, p3.
  EXPECT_NEAR(none.value, 100 + 150 + 100, 1e-9);
  // Contains adds imprecise facts fully inside East: p6, p7, p9.
  EXPECT_NEAR(contains.value, none.value + 100 + 120 + 190, 1e-9);
  // Overlaps adds every imprecise fact touching East (p6,p7,p9,p11,p12).
  EXPECT_NEAR(overlaps.value, none.value + 100 + 120 + 190 + 80 + 120, 1e-9);
  // The classical bracketing: None <= Contains <= Allocated <= Overlaps.
  EXPECT_LE(none.value, contains.value);
  EXPECT_LE(contains.value, allocated.value + 1e-9);
  EXPECT_LE(allocated.value, overlaps.value + 1e-9);
}

TEST_F(QueryTest, AverageAndEmptyRegion) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId tx, schema_.dim(0).FindNode("TX"));
  // No precise fact and no allocation lands in TX (C has no TX cell).
  QueryRegion tx_region = QueryRegion::All().With(0, tx);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult avg,
      engine.Aggregate(tx_region, AggregateFunc::kAverage));
  EXPECT_EQ(avg.value, 0);
  EXPECT_EQ(avg.count, 0);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult global_avg,
      engine.Aggregate(QueryRegion::All(), AggregateFunc::kAverage));
  EXPECT_NEAR(global_avg.value, 1705.0 / 14, 1e-9);
}

TEST_F(QueryTest, MinMaxAggregates) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  // Extremes of the *measure* over matching rows: p5 (50) is the smallest
  // fact, p10 (200) the largest, and both allocate somewhere.
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult mn,
      engine.Aggregate(QueryRegion::All(), AggregateFunc::kMin));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult mx,
      engine.Aggregate(QueryRegion::All(), AggregateFunc::kMax));
  EXPECT_NEAR(mn.value, 50.0, 1e-9);
  EXPECT_NEAR(mx.value, 200.0, 1e-9);

  // An empty region normalizes its extremes to 0 — no escaped infinity.
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId tx, schema_.dim(0).FindNode("TX"));
  QueryRegion tx_region = QueryRegion::All().With(0, tx);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult empty_min,
      engine.Aggregate(tx_region, AggregateFunc::kMin));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult empty_max,
      engine.Aggregate(tx_region, AggregateFunc::kMax));
  EXPECT_EQ(empty_min.value, 0);
  EXPECT_EQ(empty_max.value, 0);
  EXPECT_EQ(empty_min.min, 0);
  EXPECT_EQ(empty_max.max, 0);
}

TEST_F(QueryTest, RollUpMinMaxCoverEmptyGroups) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto groups, engine.RollUp(QueryRegion::All(), /*dim=*/0, /*level=*/1,
                                 AggregateFunc::kMin));
  const auto& states = schema_.dim(0).nodes_at_level(1);
  ASSERT_EQ(groups.size(), states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult single,
        engine.Aggregate(QueryRegion::All().With(0, states[i]),
                         AggregateFunc::kMin));
    EXPECT_NEAR(groups[i].value, single.value, 1e-9)
        << schema_.dim(0).name(states[i]);
    // Empty groups (TX has no cell in C) finalize to 0, never infinity.
    EXPECT_TRUE(std::isfinite(groups[i].value));
  }
}

TEST_F(QueryTest, RollUpByRegionMatchesPerNodeAggregates) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto groups,
      engine.RollUp(QueryRegion::All(), /*dim=*/0, /*level=*/2,
                    AggregateFunc::kSum));
  const auto& regions = schema_.dim(0).nodes_at_level(2);
  ASSERT_EQ(groups.size(), regions.size());
  double total = 0;
  for (size_t i = 0; i < regions.size(); ++i) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult single,
        engine.Aggregate(QueryRegion::All().With(0, regions[i]),
                         AggregateFunc::kSum));
    EXPECT_NEAR(groups[i].value, single.value, 1e-9)
        << schema_.dim(0).name(regions[i]);
    total += groups[i].value;
  }
  EXPECT_NEAR(total, 1705.0, 1e-9);  // rollup partitions the grand total
}

TEST_F(QueryTest, RollUpRespectsOuterRegion) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId truck, schema_.dim(1).FindNode("Truck"));
  // Repairs per state, trucks only.
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto groups,
      engine.RollUp(QueryRegion::All().With(1, truck), /*dim=*/0,
                    /*level=*/1, AggregateFunc::kCount));
  ASSERT_EQ(groups.size(), 4u);  // MA, NY, TX, CA
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult all_trucks,
      engine.Aggregate(QueryRegion::All().With(1, truck),
                       AggregateFunc::kCount));
  double total = 0;
  for (const AggregateResult& g : groups) total += g.value;
  EXPECT_NEAR(total, all_trucks.value, 1e-9);
}

TEST_F(QueryTest, RollUpRejectsBadArguments) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  EXPECT_FALSE(
      engine.RollUp(QueryRegion::All(), 7, 1, AggregateFunc::kSum).ok());
  EXPECT_FALSE(
      engine.RollUp(QueryRegion::All(), 0, 9, AggregateFunc::kSum).ok());
}

TEST_F(QueryTest, ProvenanceQueries) {
  QueryEngine engine(&env_, &schema_, &result_.edb, &original_);
  // p8 (CA, ALL) completes to (CA,Civic) and (CA,Sierra) under Uniform.
  IOLAP_ASSERT_OK_AND_ASSIGN(auto completions, engine.CompletionsOf(8));
  ASSERT_EQ(completions.size(), 2u);
  double sum = 0;
  for (const EdbRecord& rec : completions) {
    EXPECT_EQ(rec.fact_id, 8);
    EXPECT_EQ(rec.leaf[0], 3);  // CA
    sum += rec.weight;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // A precise fact has exactly one completion of weight 1.
  IOLAP_ASSERT_OK_AND_ASSIGN(auto precise, engine.CompletionsOf(1));
  ASSERT_EQ(precise.size(), 1u);
  EXPECT_EQ(precise[0].weight, 1.0);
  // Unknown fact: empty.
  IOLAP_ASSERT_OK_AND_ASSIGN(auto none, engine.CompletionsOf(999));
  EXPECT_TRUE(none.empty());

  // FactsIn: everything that lands in the (NY, F150) cell.
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ny, schema_.dim(0).FindNode("NY"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId f150, schema_.dim(1).FindNode("F150"));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto rows, engine.FactsIn(QueryRegion::All().With(0, ny).With(1, f150)));
  std::set<FactId> ids;
  for (const EdbRecord& rec : rows) ids.insert(rec.fact_id);
  // Precise p3 plus imprecise p9 (East,Truck) and p12 (ALL,F150).
  EXPECT_EQ(ids, (std::set<FactId>{3, 9, 12}));
}

TEST_F(QueryTest, BaselineRequiresFactTable) {
  QueryEngine engine(&env_, &schema_, &result_.edb);
  Result<AggregateResult> r = engine.Aggregate(
      QueryRegion::All(), AggregateFunc::kSum, ImpreciseSemantics::kContains);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace iolap
