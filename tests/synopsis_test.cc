// The approximate answer tier: the bounded-answer primitives, synopsis
// exactness against the query engine, incremental maintenance vs a rebuild
// from scratch across a seeded mutation stream, and the service-level
// contract — a bounded answer is within its promised bound, bounded(0) is
// memcmp-equal to exact mode, and bounded cache entries never serve exact
// queries.

#include "synopsis/synopsis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "serve/query_service.h"
#include "synopsis/bounded.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

constexpr AggregateFunc kAllFuncs[] = {
    AggregateFunc::kSum, AggregateFunc::kCount, AggregateFunc::kAverage,
    AggregateFunc::kMin, AggregateFunc::kMax};

// ---------------------------------------------------------------------------
// Bounded-answer primitives.

TEST(BoundedPrimitivesTest, FrechetIntersection) {
  // Two slices of mass 6 and 7 out of total 10: intersection in [3, 6].
  Interval i = FrechetIntersection(10, {6, 7});
  EXPECT_DOUBLE_EQ(i.lo, 3);
  EXPECT_DOUBLE_EQ(i.hi, 6);
  // One slice is exact.
  i = FrechetIntersection(10, {4});
  EXPECT_DOUBLE_EQ(i.lo, 4);
  EXPECT_DOUBLE_EQ(i.hi, 4);
  EXPECT_TRUE(i.degenerate());
  // Disjoint-compatible slices: lower bound clamps to 0.
  i = FrechetIntersection(10, {2, 3});
  EXPECT_DOUBLE_EQ(i.lo, 0);
  EXPECT_DOUBLE_EQ(i.hi, 2);
  // Slices are clamped into [0, total].
  i = FrechetIntersection(5, {7, 9});
  EXPECT_DOUBLE_EQ(i.lo, 5);
  EXPECT_DOUBLE_EQ(i.hi, 5);
}

TEST(BoundedPrimitivesTest, MassTimesRange) {
  const Interval mass{2, 5};
  Interval s = MassTimesRange(mass, 1, 3);
  EXPECT_DOUBLE_EQ(s.lo, 2);   // least mass at least value
  EXPECT_DOUBLE_EQ(s.hi, 15);  // most mass at most value
  s = MassTimesRange(mass, -3, -1);
  EXPECT_DOUBLE_EQ(s.lo, -15);
  EXPECT_DOUBLE_EQ(s.hi, -2);
  s = MassTimesRange(mass, -2, 3);
  EXPECT_DOUBLE_EQ(s.lo, -10);  // max mass of negatives
  EXPECT_DOUBLE_EQ(s.hi, 15);
}

TEST(BoundedPrimitivesTest, ConcentrationHalfWidths) {
  EXPECT_DOUBLE_EQ(HoeffdingHalfWidth(0, 0.05), 0);
  const double t1 = HoeffdingHalfWidth(1.0, 0.05);
  EXPECT_NEAR(t1, std::sqrt(std::log(2 / 0.05) / 2), 1e-12);
  // More per-term spread or less allowed failure probability both widen.
  EXPECT_LT(t1, HoeffdingHalfWidth(4.0, 0.05));
  EXPECT_LT(t1, HoeffdingHalfWidth(1.0, 0.01));
  EXPECT_DOUBLE_EQ(ChebyshevHalfWidth(0.16, 0.04), 2.0);
}

TEST(BoundedPrimitivesTest, ComposeExactShards) {
  // Two exact shards: the composition is exact with bound 0 and the sums
  // add across shards.
  ShardTerms a;
  a.exact = true;
  a.mass = {2, 2};
  a.sum = {10, 10};
  a.mass_hat = 2;
  a.sum_hat = 10;
  a.vlo = 4;
  a.vhi = 6;
  a.minmax_exact = true;
  ShardTerms b = a;
  b.mass = {3, 3};
  b.sum = {30, 30};
  b.mass_hat = 3;
  b.sum_hat = 30;
  b.vlo = 9;
  b.vhi = 11;
  BoundedAggregate sum = ComposeBounded({a, b}, AggregateFunc::kSum, 0.05);
  EXPECT_TRUE(sum.exact);
  EXPECT_DOUBLE_EQ(sum.bound, 0);
  EXPECT_DOUBLE_EQ(sum.result.value, 40);
  BoundedAggregate cnt = ComposeBounded({a, b}, AggregateFunc::kCount, 0.05);
  EXPECT_DOUBLE_EQ(cnt.result.value, 5);
  BoundedAggregate avg = ComposeBounded({a, b}, AggregateFunc::kAverage, 0.05);
  EXPECT_DOUBLE_EQ(avg.result.value, 8);
  BoundedAggregate mn = ComposeBounded({a, b}, AggregateFunc::kMin, 0.05);
  EXPECT_DOUBLE_EQ(mn.result.value, 4);
  EXPECT_DOUBLE_EQ(mn.bound, 0);
  BoundedAggregate mx = ComposeBounded({a, b}, AggregateFunc::kMax, 0.05);
  EXPECT_DOUBLE_EQ(mx.result.value, 11);
}

TEST(BoundedPrimitivesTest, MinMaxNotBoundedWhenApprox) {
  ShardTerms approx;
  approx.exact = false;
  approx.mass = {1, 3};
  approx.sum = {5, 15};
  approx.mass_hat = 2;
  approx.sum_hat = 10;
  approx.vlo = 1;
  approx.vhi = 9;
  const BoundedAggregate mn =
      ComposeBounded({approx}, AggregateFunc::kMin, 0.05);
  EXPECT_FALSE(mn.exact);
  EXPECT_TRUE(std::isinf(mn.bound));
}

// ---------------------------------------------------------------------------
// Store-level exactness and bounds on the paper example.

Result<TypedFile<FactRecord>> CopyFacts(StorageEnv& env,
                                        const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

class SynopsisStoreTest : public ::testing::Test {
 protected:
  SynopsisStoreTest() : env_(MakeTempDir(), 256) {}

  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
    StorageEnv scratch(MakeTempDir(), 32);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto gen,
                               MakePaperExampleFacts(scratch, schema_));
    auto cursor = gen.Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts_.push_back(f);
    }
    AllocationOptions options;
    options.policy = PolicyKind::kUniform;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto file, CopyFacts(env_, facts_));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        manager_, MaintenanceManager::Build(env_, schema_, &file, options));
  }

  /// Every region over nodes of both dimensions at every level, so the
  /// probe set has 0-, 1- and 2-dimension-constrained regions.
  std::vector<QueryRegion> AllRegions() const {
    std::vector<QueryRegion> regions = {QueryRegion::All()};
    std::vector<NodeId> d0{schema_.dim(0).root()};
    std::vector<NodeId> d1{schema_.dim(1).root()};
    for (int l = 1; l <= schema_.dim(0).num_levels(); ++l) {
      for (NodeId n : schema_.dim(0).nodes_at_level(l)) d0.push_back(n);
    }
    for (int l = 1; l <= schema_.dim(1).num_levels(); ++l) {
      for (NodeId n : schema_.dim(1).nodes_at_level(l)) d1.push_back(n);
    }
    for (NodeId a : d0) {
      for (NodeId b : d1) {
        regions.push_back(QueryRegion::All().With(0, a).With(1, b));
      }
    }
    return regions;
  }

  StorageEnv env_;
  StarSchema schema_;
  std::vector<FactRecord> facts_;
  std::unique_ptr<MaintenanceManager> manager_;
};

TEST_F(SynopsisStoreTest, MarginalRegionsAreExact) {
  SynopsisStore store(&env_, &schema_, &manager_->edb());
  IOLAP_ASSERT_OK(store.Build());
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (const QueryRegion& region : AllRegions()) {
    int constrained = 0;
    for (int d = 0; d < schema_.num_dims(); ++d) {
      if (RegionConstrainsDim(schema_, region, d)) ++constrained;
    }
    if (constrained > 1) continue;
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                                 engine.Aggregate(region, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(BoundedAggregate got,
                                 store.EstimateAggregate(region, func, 0.05));
      EXPECT_TRUE(got.exact);
      EXPECT_DOUBLE_EQ(got.bound, 0);
      EXPECT_NEAR(got.result.value, expected.value, 1e-9)
          << "func " << static_cast<int>(func);
    }
  }
  EXPECT_GT(store.stats().exact_hits, 0);
}

TEST_F(SynopsisStoreTest, CrossRegionsAreWithinBound) {
  SynopsisStore store(&env_, &schema_, &manager_->edb());
  IOLAP_ASSERT_OK(store.Build());
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  int bounded_answers = 0;
  for (const QueryRegion& region : AllRegions()) {
    for (AggregateFunc func :
         {AggregateFunc::kSum, AggregateFunc::kCount, AggregateFunc::kAverage}) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                                 engine.Aggregate(region, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(BoundedAggregate got,
                                 store.EstimateAggregate(region, func, 0.05));
      if (std::isinf(got.bound)) continue;
      // The certain (Fréchet) component of the bound always contains the
      // truth on this deterministic fixture; allow fp slack.
      EXPECT_LE(std::abs(got.result.value - expected.value),
                got.bound + 1e-9 * std::max(1.0, std::abs(expected.value)))
          << "func " << static_cast<int>(func);
      ++bounded_answers;
    }
  }
  EXPECT_GT(bounded_answers, 0);
}

TEST_F(SynopsisStoreTest, ShardedStoreMatchesSingleShard) {
  // Split dimension 0's leaves into two shards; every estimate must agree
  // with the single-shard store on exact (<=1-dim) regions.
  const int32_t leaves = schema_.dim(0).num_leaves();
  SynopsisStore one(&env_, &schema_, &manager_->edb());
  IOLAP_ASSERT_OK(one.Build());
  SynopsisStore two(&env_, &schema_, &manager_->edb());
  two.SetShardBounds({0, leaves / 2, leaves});
  IOLAP_ASSERT_OK(two.Build());
  ASSERT_EQ(two.num_shards(), 2);
  for (const QueryRegion& region : AllRegions()) {
    int constrained = 0;
    for (int d = 0; d < schema_.num_dims(); ++d) {
      if (RegionConstrainsDim(schema_, region, d)) ++constrained;
    }
    if (constrained > 1) continue;
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(BoundedAggregate a,
                                 one.EstimateAggregate(region, func, 0.05));
      IOLAP_ASSERT_OK_AND_ASSIGN(BoundedAggregate b,
                                 two.EstimateAggregate(region, func, 0.05));
      EXPECT_NEAR(a.result.value, b.result.value, 1e-9);
      EXPECT_TRUE(b.exact);
    }
  }
}

TEST_F(SynopsisStoreTest, UnbuiltOrStaleStoreRefuses) {
  SynopsisStore store(&env_, &schema_, &manager_->edb());
  EXPECT_EQ(store
                .EstimateAggregate(QueryRegion::All(), AggregateFunc::kSum,
                                   0.05)
                .status()
                .code(),
            StatusCode::kUnavailable);
  IOLAP_ASSERT_OK(store.Build());
  IOLAP_ASSERT_OK(
      store.EstimateAggregate(QueryRegion::All(), AggregateFunc::kSum, 0.05)
          .status());
  store.Invalidate();
  EXPECT_EQ(store
                .EstimateAggregate(QueryRegion::All(), AggregateFunc::kSum,
                                   0.05)
                .status()
                .code(),
            StatusCode::kUnavailable);
  IOLAP_ASSERT_OK(store.RebuildIfStale());
  IOLAP_ASSERT_OK(
      store.EstimateAggregate(QueryRegion::All(), AggregateFunc::kSum, 0.05)
          .status());
}

// ---------------------------------------------------------------------------
// Incremental maintenance vs rebuild-from-scratch across a seeded stream.

/// Compares every slice of `incremental` against a store rebuilt from the
/// current EDB. Moments must agree to fp accumulation error; a patched
/// incremental envelope must *contain* the rebuilt (true) envelope.
void ExpectMatchesRebuild(const StarSchema& schema,
                          const SynopsisStore& incremental,
                          SynopsisStore* rebuilt) {
  IOLAP_ASSERT_OK(rebuilt->Build());
  for (int shard = 0; shard < incremental.num_shards(); ++shard) {
    for (int d = 0; d < schema.num_dims(); ++d) {
      for (NodeId n = 0; n < schema.dim(d).num_nodes(); ++n) {
        const SynopsisMoments inc = incremental.MomentsFor(shard, d, n);
        const SynopsisMoments fresh = rebuilt->MomentsFor(shard, d, n);
        ASSERT_EQ(inc.rows, fresh.rows)
            << "shard " << shard << " dim " << d << " node " << n;
        EXPECT_NEAR(inc.mass, fresh.mass, 1e-9);
        EXPECT_NEAR(inc.swv, fresh.swv, 1e-9);
        EXPECT_NEAR(inc.swv2, fresh.swv2, 1e-7);
        if (fresh.rows > 0) {
          if (inc.minmax_patched) {
            EXPECT_LE(inc.vmin, fresh.vmin + 1e-12);
            EXPECT_GE(inc.vmax, fresh.vmax - 1e-12);
          } else {
            EXPECT_DOUBLE_EQ(inc.vmin, fresh.vmin);
            EXPECT_DOUBLE_EQ(inc.vmax, fresh.vmax);
          }
        }
      }
    }
  }
}

TEST(SynopsisMaintenanceTest, IncrementalMatchesRebuildAcrossMutations) {
  for (uint64_t seed : {7u, 21u}) {
    StorageEnv env(MakeTempDir(), 512);
    StarSchema schema;
    {
      IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema s, MakePaperExampleSchema());
      schema = std::move(s);
    }
    DatasetSpec spec;
    spec.num_facts = 400;
    spec.seed = seed;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
    std::vector<FactRecord> catalog;
    {
      auto cursor = facts.Scan(env.pool());
      FactRecord f;
      while (!cursor.done()) {
        IOLAP_ASSERT_OK(cursor.Next(&f));
        catalog.push_back(f);
      }
    }
    AllocationOptions options;
    options.policy = PolicyKind::kUniform;
    IOLAP_ASSERT_OK_AND_ASSIGN(
        auto manager, MaintenanceManager::Build(env, schema, &facts, options));
    ServeOptions sopts;
    sopts.synopsis = true;
    QueryService service(manager.get(), sopts);
    ASSERT_NE(service.synopsis(), nullptr);
    ASSERT_TRUE(service.synopsis()->ready());

    Rng rng(seed * 1000 + 13);
    FactId next_id = 100'000;
    const int32_t d0_leaves = schema.dim(0).num_leaves();
    const int32_t d1_leaves = schema.dim(1).num_leaves();
    for (int step = 0; step < 12; ++step) {
      const uint64_t kind = rng.Uniform(10);
      if (kind < 3 && !catalog.empty()) {  // update
        FactRecord& f = catalog[rng.Uniform(catalog.size())];
        const double measure = 1.0 + static_cast<double>(rng.Uniform(250));
        IOLAP_ASSERT_OK(service.ApplyUpdates({FactUpdate{f, measure}}));
        f.measure = measure;
      } else if (kind < 6) {  // insert (precise or imprecise in dim 0)
        FactRecord f{};
        f.fact_id = next_id++;
        f.measure = 1.0 + static_cast<double>(rng.Uniform(250));
        const NodeId leaf0 = schema.dim(0).leaf_node(
            static_cast<int32_t>(rng.Uniform(d0_leaves)));
        const NodeId n0 =
            rng.Uniform(3) == 0 ? schema.dim(0).parent(leaf0) : leaf0;
        const NodeId n1 = schema.dim(1).leaf_node(
            static_cast<int32_t>(rng.Uniform(d1_leaves)));
        f.node[0] = n0;
        f.node[1] = n1;
        f.level[0] = static_cast<uint8_t>(schema.dim(0).level(n0));
        f.level[1] = static_cast<uint8_t>(schema.dim(1).level(n1));
        IOLAP_ASSERT_OK(service.InsertFacts({f}));
        catalog.push_back(f);
      } else if (kind < 8 && catalog.size() > 4) {  // delete
        const size_t victim = rng.Uniform(catalog.size());
        IOLAP_ASSERT_OK(service.DeleteFacts({catalog[victim]}));
        catalog.erase(catalog.begin() + victim);
      } else {  // compact (squeezes tombstones; logical no-op)
        IOLAP_ASSERT_OK(service.Compact().status());
      }
      ASSERT_TRUE(service.synopsis()->ready()) << "step " << step;
      SynopsisStore rebuilt(&env, &schema, &manager->edb());
      ExpectMatchesRebuild(schema, *service.synopsis(), &rebuilt);
    }
    EXPECT_GT(service.synopsis()->stats().commits, 0);
  }
}

// ---------------------------------------------------------------------------
// Service-level contract.

class BoundedServeTest : public SynopsisStoreTest {};

TEST_F(BoundedServeTest, BoundedAnswersWithinBoundAndEpsilonZeroIsExact) {
  ServeOptions opts;
  opts.synopsis = true;
  opts.cache_slots = 0;  // force every bounded query down to the synopsis
  QueryService service(manager_.get(), opts);
  for (const QueryRegion& region : AllRegions()) {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult exact,
                                 service.UncachedAggregate(region, func));
      // epsilon = 0: literally the exact path, bit-identical result.
      AnswerStats as;
      IOLAP_ASSERT_OK_AND_ASSIGN(
          AggregateResult eps0,
          service.Aggregate(region, func, AnswerSpec::Bounded(0.0), &as));
      EXPECT_TRUE(as.exact);
      EXPECT_EQ(std::memcmp(&eps0, &exact, sizeof(AggregateResult)), 0);
      // A generous budget: whatever tier answers, the promised bound holds.
      IOLAP_ASSERT_OK_AND_ASSIGN(
          AggregateResult loose,
          service.Aggregate(region, func, AnswerSpec::Bounded(1e6), &as));
      EXPECT_LE(std::abs(loose.value - exact.value),
                as.bound + 1e-9 * std::max(1.0, std::abs(exact.value)));
    }
  }
  // The synopsis answered at least the marginal probes.
  EXPECT_GT(service.synopsis()->stats().estimates, 0);
}

TEST_F(BoundedServeTest, BoundedEntriesNeverServeExactQueries) {
  ServeOptions opts;
  opts.synopsis = true;
  opts.agg_index = false;
  QueryService service(manager_.get(), opts);
  // A 2-dim-constrained region: bounded mode answers from the synopsis
  // (nonzero bound), exact mode must scan.
  QueryRegion cross;
  bool found = false;
  for (const QueryRegion& region : AllRegions()) {
    int constrained = 0;
    for (int d = 0; d < schema_.num_dims(); ++d) {
      if (RegionConstrainsDim(schema_, region, d)) ++constrained;
    }
    if (constrained < 2) continue;
    AnswerStats as;
    IOLAP_ASSERT_OK(
        service
            .Aggregate(region, AggregateFunc::kSum, AnswerSpec::Bounded(1e6),
                       &as)
            .status());
    if (as.tier == AnswerTier::kSynopsis && as.bound > 0) {
      cross = region;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no synopsis-answered cross region in the fixture";
  // The bounded answer was cached — but an exact query on the same region
  // must not see it: it scans and returns the exact value.
  AnswerStats as;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult exact_answer,
      service.Aggregate(cross, AggregateFunc::kSum, AnswerSpec::Exact(), &as));
  EXPECT_FALSE(as.cache_hit);
  EXPECT_EQ(as.tier, AnswerTier::kScan);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult rescan,
      service.UncachedAggregate(cross, AggregateFunc::kSum));
  EXPECT_DOUBLE_EQ(exact_answer.value, rescan.value);
  // And the exact answer (cached under the exact key) now serves bounded
  // queries too — an exact result fits any budget.
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult warm,
      service.Aggregate(cross, AggregateFunc::kSum, AnswerSpec::Bounded(1e6),
                        &as));
  EXPECT_TRUE(as.cache_hit);
  EXPECT_DOUBLE_EQ(as.bound, 0);
  EXPECT_DOUBLE_EQ(warm.value, rescan.value);
}

TEST_F(BoundedServeTest, BoundedModeSurvivesMutations) {
  ServeOptions opts;
  opts.synopsis = true;
  QueryService service(manager_.get(), opts);
  const QueryRegion region = QueryRegion::All();
  AnswerStats as;
  IOLAP_ASSERT_OK(
      service
          .Aggregate(region, AggregateFunc::kSum, AnswerSpec::Bounded(1e6),
                     &as)
          .status());
  // Mutate, then re-ask: the synopsis committed the delta, and the bounded
  // answer tracks the new exact value.
  FactUpdate u{facts_[0], facts_[0].measure + 37.0};
  IOLAP_ASSERT_OK(service.ApplyUpdates({u}));
  IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult exact,
                             service.UncachedAggregate(region,
                                                       AggregateFunc::kSum));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult bounded,
      service.Aggregate(region, AggregateFunc::kSum, AnswerSpec::Bounded(1e6),
                        &as));
  EXPECT_LE(std::abs(bounded.value - exact.value),
            as.bound + 1e-9 * std::max(1.0, std::abs(exact.value)));
}

}  // namespace
}  // namespace iolap
