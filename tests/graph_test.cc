#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/bin_packing.h"
#include "graph/chain_cover.h"
#include "graph/union_find.h"

namespace iolap {
namespace {

// ---------------------------------------------------------------- UnionFind

TEST(UnionFindTest, SingletonsAreTheirOwnCanonical) {
  UnionFind uf(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.Canonical(i), i);
  }
}

TEST(UnionFindTest, UnionMergesAndTracksMin) {
  UnionFind uf(6);
  uf.Union(4, 5);
  uf.Union(2, 4);
  EXPECT_TRUE(uf.Connected(2, 5));
  EXPECT_FALSE(uf.Connected(0, 5));
  EXPECT_EQ(uf.Canonical(5), 2);  // smallest id in the merged set
  uf.Union(5, 0);
  EXPECT_EQ(uf.Canonical(4), 0);
}

TEST(UnionFindTest, AddGrowsTheUniverse) {
  UnionFind uf(2);
  int32_t id = uf.Add();
  EXPECT_EQ(id, 2);
  uf.Union(0, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(1, 2));
}

TEST(UnionFindTest, RandomizedAgainstNaive) {
  const int n = 200;
  Rng rng(42);
  UnionFind uf(n);
  std::vector<int> naive(n);
  for (int i = 0; i < n; ++i) naive[i] = i;
  auto naive_merge = [&](int a, int b) {
    int la = naive[a], lb = naive[b];
    if (la == lb) return;
    for (int i = 0; i < n; ++i) {
      if (naive[i] == la) naive[i] = lb;
    }
  };
  for (int step = 0; step < 500; ++step) {
    int a = static_cast<int>(rng.Uniform(n));
    int b = static_cast<int>(rng.Uniform(n));
    uf.Union(a, b);
    naive_merge(a, b);
  }
  for (int i = 0; i < n; ++i) {
    for (int j : {0, 7, 100, n - 1}) {
      EXPECT_EQ(uf.Connected(i, j), naive[i] == naive[j]);
    }
  }
  // Canonical id is the min of the naive group.
  for (int i = 0; i < n; ++i) {
    int expected = i;
    for (int j = 0; j < n; ++j) {
      if (naive[j] == naive[i]) expected = std::min(expected, j);
    }
    EXPECT_EQ(uf.Canonical(i), expected);
  }
}

// -------------------------------------------------------------- ChainCover

LevelVector LV(std::initializer_list<int> levels) {
  LevelVector v{};
  v.fill(1);
  int d = 0;
  for (int l : levels) v[d++] = static_cast<uint8_t>(l);
  return v;
}

void ValidateCover(const ChainCover& cover,
                   const std::vector<LevelVector>& tables, int ndims) {
  // Every table in exactly one chain.
  std::set<int> seen;
  for (const auto& chain : cover.chains) {
    for (int t : chain) {
      EXPECT_TRUE(seen.insert(t).second) << "table " << t << " repeated";
    }
    // Chain ordered most imprecise first: strictly decreasing.
    for (size_t i = 1; i < chain.size(); ++i) {
      EXPECT_TRUE(
          LevelVectorLeq(tables[chain[i]], tables[chain[i - 1]], ndims))
          << "chain not ordered";
      EXPECT_FALSE(
          LevelVectorLeq(tables[chain[i - 1]], tables[chain[i]], ndims));
    }
  }
  EXPECT_EQ(seen.size(), tables.size());
  EXPECT_EQ(cover.width, static_cast<int>(cover.chains.size()));
}

TEST(ChainCoverTest, SingleChainWhenTotallyOrdered) {
  std::vector<LevelVector> tables = {LV({1, 2}), LV({2, 2}), LV({2, 3}),
                                     LV({3, 3})};
  ChainCover cover = ComputeChainCover(tables, 2);
  ValidateCover(cover, tables, 2);
  EXPECT_EQ(cover.width, 1);
  EXPECT_EQ(cover.chains[0].size(), 4u);
}

TEST(ChainCoverTest, AntichainNeedsOneChainEach) {
  std::vector<LevelVector> tables = {LV({1, 3}), LV({2, 2}), LV({3, 1})};
  ChainCover cover = ComputeChainCover(tables, 2);
  ValidateCover(cover, tables, 2);
  EXPECT_EQ(cover.width, 3);
}

TEST(ChainCoverTest, PaperExampleFiveTables) {
  // The running example's summary tables (Figure 3): S1 <1,2>, S2 <1,3>,
  // S3 <2,2>, S4 <3,1>, S5 <2,1>. {S2, S3, S4} is a maximum antichain, so
  // the minimum chain cover has width 3 (e.g. {S2,S1}, {S3,S5}, {S4}).
  std::vector<LevelVector> tables = {LV({1, 2}), LV({1, 3}), LV({2, 2}),
                                     LV({3, 1}), LV({2, 1})};
  ChainCover cover = ComputeChainCover(tables, 2);
  ValidateCover(cover, tables, 2);
  EXPECT_EQ(cover.width, 3);
}

TEST(ChainCoverTest, EmptyInput) {
  ChainCover cover = ComputeChainCover({}, 2);
  EXPECT_EQ(cover.width, 0);
  EXPECT_TRUE(cover.chains.empty());
}

TEST(ChainCoverTest, RandomizedCoverIsValidAndTight) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<std::array<int, 3>> used;
    std::vector<LevelVector> tables;
    int n = 3 + static_cast<int>(rng.Uniform(20));
    while (static_cast<int>(tables.size()) < n) {
      std::array<int, 3> raw = {1 + static_cast<int>(rng.Uniform(4)),
                                1 + static_cast<int>(rng.Uniform(4)),
                                1 + static_cast<int>(rng.Uniform(4))};
      if (!used.insert(raw).second) continue;
      tables.push_back(LV({raw[0], raw[1], raw[2]}));
    }
    ChainCover cover = ComputeChainCover(tables, 3);
    ValidateCover(cover, tables, 3);
    // Dilworth lower bound: any antichain found greedily can't exceed the
    // cover width. Check a simple pairwise-incomparable subset.
    std::vector<int> antichain;
    for (int i = 0; i < n; ++i) {
      bool comparable = false;
      for (int j : antichain) {
        if (LevelVectorLeq(tables[i], tables[j], 3) ||
            LevelVectorLeq(tables[j], tables[i], 3)) {
          comparable = true;
          break;
        }
      }
      if (!comparable) antichain.push_back(i);
    }
    EXPECT_GE(cover.width, static_cast<int>(antichain.size()));
  }
}

// -------------------------------------------------------------- BinPacking

TEST(BinPackingTest, EverythingFitsOneBin) {
  PackingResult r = FirstFitDecreasing({3, 4, 2}, 10);
  EXPECT_EQ(r.num_bins, 1);
  EXPECT_EQ(r.bin_load[0], 9);
}

TEST(BinPackingTest, SplitsWhenNeeded) {
  PackingResult r = FirstFitDecreasing({6, 5, 4, 3}, 10);
  EXPECT_EQ(r.num_bins, 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(r.bin_of[i], 0);
    EXPECT_LT(r.bin_of[i], r.num_bins);
  }
  for (int64_t load : r.bin_load) EXPECT_LE(load, 10);
}

TEST(BinPackingTest, OversizedItemsGetOwnBins) {
  PackingResult r = FirstFitDecreasing({15, 2, 3}, 10);
  ASSERT_EQ(r.oversized.size(), 3u);
  EXPECT_TRUE(r.oversized[0]);
  EXPECT_FALSE(r.oversized[1]);
  EXPECT_FALSE(r.oversized[2]);
  // Nothing else shares the oversized bin.
  EXPECT_NE(r.bin_of[1], r.bin_of[0]);
  EXPECT_NE(r.bin_of[2], r.bin_of[0]);
}

TEST(BinPackingTest, EmptyInput) {
  PackingResult r = FirstFitDecreasing({}, 10);
  EXPECT_EQ(r.num_bins, 0);
}

TEST(BinPackingTest, RandomizedRespectsCapacityAndApproximation) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    int64_t capacity = 50 + static_cast<int64_t>(rng.Uniform(100));
    std::vector<int64_t> sizes;
    int64_t total = 0;
    int n = 1 + static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < n; ++i) {
      int64_t s = 1 + static_cast<int64_t>(rng.Uniform(capacity));
      sizes.push_back(s);
      total += s;
    }
    PackingResult r = FirstFitDecreasing(sizes, capacity);
    std::vector<int64_t> load(r.num_bins, 0);
    for (int i = 0; i < n; ++i) load[r.bin_of[i]] += sizes[i];
    for (int b = 0; b < r.num_bins; ++b) {
      EXPECT_LE(load[b], capacity);
      EXPECT_EQ(load[b], r.bin_load[b]);
    }
    // FFD never exceeds 2x the fractional lower bound (Theorem 7's bound).
    int64_t lower = (total + capacity - 1) / capacity;
    EXPECT_LE(r.num_bins, 2 * lower);
  }
}

}  // namespace
}  // namespace iolap
