#include "alloc/estimator.h"

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/query.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

TEST(EstimatorTest, EmptyTable) {
  StorageEnv env(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             TypedFile<FactRecord>::Create(env.disk(), "f"));
  EstimateOptions options;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationEstimate est,
                             EstimateAllocation(env, schema, facts, options));
  EXPECT_EQ(est.sampled_facts, 0);
}

TEST(EstimatorTest, FullSampleIsExact) {
  // With sample_size >= table size the "estimate" must equal the truth.
  StorageEnv env(MakeTempDir(), 256);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 10'000;
  spec.seed = 5;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));

  EstimateOptions options;
  options.sample_size = spec.num_facts;
  options.epsilon = 0.005;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationEstimate est,
                             EstimateAllocation(env, schema, facts, options));
  EXPECT_EQ(est.sampled_facts, spec.num_facts);
  EXPECT_EQ(est.sample_rate, 1.0);

  AllocationOptions alloc;
  alloc.algorithm = AlgorithmKind::kTransitive;
  alloc.epsilon = 0.005;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult actual,
                             Allocator::Run(env, schema, &facts, alloc));
  EXPECT_EQ(est.sample_components, actual.components.num_components);
  EXPECT_EQ(est.sample_largest_component,
            actual.components.largest_component);
  // Transitive's per-component iteration max equals the sample's global EM
  // iteration count (the slowest component gates both).
  EXPECT_EQ(est.estimated_iterations, actual.iterations);
}

TEST(EstimatorTest, PredictsIterationsWithinOne) {
  StorageEnv env(MakeTempDir(), 1024);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 60'000;
  spec.seed = 6;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  EstimateOptions options;
  options.sample_size = 10'000;
  options.epsilon = 0.005;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationEstimate est,
                             EstimateAllocation(env, schema, facts, options));

  AllocationOptions alloc;
  alloc.algorithm = AlgorithmKind::kBlock;
  alloc.epsilon = 0.005;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult actual,
                             Allocator::Run(env, schema, &facts, alloc));
  EXPECT_NEAR(est.estimated_iterations, actual.iterations, 2)
      << "estimate " << est.estimated_iterations << " vs actual "
      << actual.iterations;
}

TEST(EstimatorTest, DetectsGiantComponent) {
  StorageEnv env(MakeTempDir(), 1024);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec = {};
  spec.num_facts = 60'000;
  spec.allow_all = true;
  spec.all_fraction = 0.08;
  spec.seed = 7;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  EstimateOptions options;
  options.sample_size = 10'000;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationEstimate est,
                             EstimateAllocation(env, schema, facts, options));
  EXPECT_TRUE(est.giant_component);
  EXPECT_FALSE(est.largest_is_lower_bound);

  AllocationOptions alloc;
  alloc.algorithm = AlgorithmKind::kTransitive;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult actual,
                             Allocator::Run(env, schema, &facts, alloc));
  // The growth-law projection is an order-of-magnitude planning signal,
  // not an exact count: require it within ~4x of the truth.
  EXPECT_GT(est.estimated_largest_component,
            actual.components.largest_component / 4);
  EXPECT_LT(est.estimated_largest_component,
            actual.components.largest_component * 4);
  EXPECT_GT(est.growth_exponent, 0.6);
}

TEST(EstimatorTest, SubcriticalIsFlaggedAsLowerBound) {
  StorageEnv env(MakeTempDir(), 1024);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 60'000;
  spec.num_hotspots = 3000;  // many small clusters: subcritical
  spec.hotspot_skew = 0.5;
  spec.seed = 8;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  EstimateOptions options;
  options.sample_size = 5'000;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationEstimate est,
                             EstimateAllocation(env, schema, facts, options));
  EXPECT_FALSE(est.giant_component);
  EXPECT_TRUE(est.largest_is_lower_bound);

  AllocationOptions alloc;
  alloc.algorithm = AlgorithmKind::kTransitive;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult actual,
                             Allocator::Run(env, schema, &facts, alloc));
  EXPECT_LE(est.sample_largest_component,
            actual.components.largest_component);
}

TEST(EstimatorTest, DeterministicForSeed) {
  StorageEnv env(MakeTempDir(), 256);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 20'000;
  spec.seed = 9;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  EstimateOptions options;
  options.sample_size = 4'000;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationEstimate a,
                             EstimateAllocation(env, schema, facts, options));
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationEstimate b,
                             EstimateAllocation(env, schema, facts, options));
  EXPECT_EQ(a.sample_largest_component, b.sample_largest_component);
  EXPECT_EQ(a.estimated_iterations, b.estimated_iterations);
  EXPECT_EQ(a.sample_components, b.sample_components);
}

}  // namespace
}  // namespace iolap
