#include "io/csv.h"

#include <gtest/gtest.h>

#include <fstream>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

TEST(CsvLineTest, PlainFields) {
  auto f = ParseCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvLineTest, EmptyFieldsAndTrailingComma) {
  auto f = ParseCsvLine("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
  EXPECT_EQ(ParseCsvLine("").size(), 1u);
}

TEST(CsvLineTest, QuotedFields) {
  auto f = ParseCsvLine("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "say \"hi\"");
  EXPECT_EQ(f[2], "plain");
}

TEST(CsvLineTest, StripsCarriageReturn) {
  auto f = ParseCsvLine("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

class CsvIoTest : public ::testing::Test {
 protected:
  CsvIoTest() : dir_(MakeTempDir()), env_(dir_ + "/work", 64) {}

  std::string WriteFile(const std::string& name, const std::string& body) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << body;
    return path;
  }

  static constexpr const char* kSchema =
      "# comment\n"
      "Location,,East\nLocation,,West\n"
      "Location,East,MA\nLocation,East,NY\n"
      "Location,West,TX\nLocation,West,CA\n"
      "Automobile,,Sedan\nAutomobile,,Truck\n"
      "Automobile,Sedan,Civic\nAutomobile,Sedan,Camry\n"
      "Automobile,Truck,F150\nAutomobile,Truck,Sierra\n";

  std::string dir_;
  StorageEnv env_;
};

TEST_F(CsvIoTest, LoadsSchema) {
  std::string path = WriteFile("schema.csv", kSchema);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, LoadSchemaCsv(path));
  ASSERT_EQ(schema.num_dims(), 2);
  EXPECT_EQ(schema.dim(0).dimension_name(), "Location");
  EXPECT_EQ(schema.dim(0).num_leaves(), 4);
  EXPECT_EQ(schema.dim(1).num_levels(), 3);
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId east, schema.dim(0).FindNode("East"));
  EXPECT_EQ(schema.dim(0).level(east), 2);
}

TEST_F(CsvIoTest, SchemaErrors) {
  EXPECT_FALSE(LoadSchemaCsv(dir_ + "/missing.csv").ok());
  EXPECT_FALSE(
      LoadSchemaCsv(WriteFile("bad1.csv", "Location,East\n")).ok());
  // Parent not yet defined.
  EXPECT_FALSE(
      LoadSchemaCsv(WriteFile("bad2.csv", "Location,Ghost,MA\n")).ok());
  // Duplicate node.
  EXPECT_FALSE(LoadSchemaCsv(
                   WriteFile("bad3.csv", "Location,,East\nLocation,,East\n"))
                   .ok());
  // Unbalanced (leaf at two depths).
  EXPECT_FALSE(LoadSchemaCsv(WriteFile("bad4.csv",
                                       "Location,,East\nLocation,,West\n"
                                       "Location,East,MA\n"))
                   .ok());
}

TEST_F(CsvIoTest, LoadsFactsAtMixedLevels) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             LoadSchemaCsv(WriteFile("schema.csv", kSchema)));
  std::string facts_path = WriteFile("facts.csv",
                                     "fact_id,Location,Automobile,measure\n"
                                     "1,MA,Civic,100\n"
                                     "2,East,Truck,190.5\n"
                                     "3,ALL,Civic,80\n");
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             LoadFactsCsv(env_, schema, facts_path));
  ASSERT_EQ(facts.size(), 3);
  IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord f2, facts.Get(env_.pool(), 1));
  EXPECT_EQ(f2.level[0], 2);  // East
  EXPECT_EQ(f2.level[1], 2);  // Truck
  EXPECT_DOUBLE_EQ(f2.measure, 190.5);
  IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord f3, facts.Get(env_.pool(), 2));
  EXPECT_EQ(f3.level[0], 3);  // ALL
  EXPECT_FALSE(f3.IsPrecise(2));
}

TEST_F(CsvIoTest, FactsErrors) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             LoadSchemaCsv(WriteFile("schema.csv", kSchema)));
  EXPECT_FALSE(LoadFactsCsv(env_, schema, dir_ + "/missing.csv").ok());
  // Bad header.
  EXPECT_FALSE(
      LoadFactsCsv(env_, schema,
                   WriteFile("f1.csv", "id,Location,Automobile,measure\n"))
          .ok());
  // Unknown node name.
  EXPECT_FALSE(LoadFactsCsv(env_, schema,
                            WriteFile("f2.csv",
                                      "fact_id,Location,Automobile,measure\n"
                                      "1,Mars,Civic,1\n"))
                   .ok());
  // Wrong field count.
  EXPECT_FALSE(LoadFactsCsv(env_, schema,
                            WriteFile("f3.csv",
                                      "fact_id,Location,Automobile,measure\n"
                                      "1,MA,1\n"))
                   .ok());
}

TEST_F(CsvIoTest, ColumnsMayBeReordered) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             LoadSchemaCsv(WriteFile("schema.csv", kSchema)));
  std::string facts_path = WriteFile("facts.csv",
                                     "fact_id,Automobile,Location,measure\n"
                                     "1,Civic,MA,100\n");
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             LoadFactsCsv(env_, schema, facts_path));
  IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord f, facts.Get(env_.pool(), 0));
  EXPECT_EQ(schema.dim(0).name(f.node[0]), "MA");
  EXPECT_EQ(schema.dim(1).name(f.node[1]), "Civic");
}

TEST_F(CsvIoTest, EdbRoundTrip) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             LoadSchemaCsv(WriteFile("schema.csv", kSchema)));
  std::string facts_path = WriteFile("facts.csv",
                                     "fact_id,Location,Automobile,measure\n"
                                     "1,MA,Civic,100\n"
                                     "2,CA,Civic,50\n"
                                     "3,ALL,Civic,80\n");
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             LoadFactsCsv(env_, schema, facts_path));
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env_, schema, &facts, options));
  std::string out_path = dir_ + "/edb.csv";
  IOLAP_ASSERT_OK(WriteEdbCsv(env_, schema, result.edb, out_path));

  std::ifstream in(out_path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "fact_id,Location,Automobile,weight,measure");
  int rows = 0;
  bool saw_half = false;
  while (std::getline(in, line)) {
    auto fields = ParseCsvLine(line);
    ASSERT_EQ(fields.size(), 5u);
    if (fields[0] == "3" && fields[3] == "0.5") saw_half = true;
    ++rows;
  }
  EXPECT_EQ(rows, 4);  // 2 precise + fact 3 split over 2 cells
  EXPECT_TRUE(saw_half);
}

}  // namespace
}  // namespace iolap
