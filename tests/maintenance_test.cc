#include "edb/maintenance.h"

#include <gtest/gtest.h>

#include <map>

#include "common/result.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/query.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

using CellKey = std::array<int32_t, kMaxDims>;
using EdbMap = std::map<std::pair<FactId, CellKey>, std::pair<double, double>>;

EdbMap LoadEdb(StorageEnv& env, const TypedFile<EdbRecord>& edb) {
  EdbMap out;
  auto cursor = edb.Scan(env.pool());
  EdbRecord rec;
  while (!cursor.done()) {
    EXPECT_TRUE(cursor.Next(&rec).ok());
    CellKey key{};
    std::memcpy(key.data(), rec.leaf, sizeof(rec.leaf));
    out[{rec.fact_id, key}] = {rec.weight, rec.measure};
  }
  return out;
}

std::vector<FactRecord> ReadFacts(StorageEnv& env,
                                  const TypedFile<FactRecord>& facts) {
  std::vector<FactRecord> out;
  auto cursor = facts.Scan(env.pool());
  FactRecord f;
  while (!cursor.done()) {
    EXPECT_TRUE(cursor.Next(&f).ok());
    out.push_back(f);
  }
  return out;
}

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

// Applies a batch incrementally and compares the maintained EDB with a
// from-scratch rebuild over the updated fact table.
void RunIncrementalVsRebuild(const StarSchema& schema,
                             std::vector<FactRecord> base_facts,
                             const std::vector<FactUpdate>& updates,
                             PolicyKind policy) {
  AllocationOptions options;
  options.policy = policy;
  options.epsilon = 1e-9;
  options.max_iterations = 300;

  // Incremental path.
  StorageEnv env_inc(MakeTempDir(), 128);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts_inc, WriteFacts(env_inc, base_facts));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager,
      MaintenanceManager::Build(env_inc, schema, &facts_inc, options));
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->ApplyUpdates(updates, &stats));
  EdbMap incremental = LoadEdb(env_inc, manager->edb());

  // Rebuild path.
  std::vector<FactRecord> updated_facts = base_facts;
  for (FactRecord& f : updated_facts) {
    for (const FactUpdate& u : updates) {
      if (u.before.fact_id == f.fact_id) f.measure = u.new_measure;
    }
  }
  StorageEnv env_rb(MakeTempDir(), 128);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts_rb, WriteFacts(env_rb, updated_facts));
  options.algorithm = AlgorithmKind::kTransitive;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult rebuilt,
                             Allocator::Run(env_rb, schema, &facts_rb, options));
  EdbMap rebuild = LoadEdb(env_rb, rebuilt.edb);

  ASSERT_EQ(incremental.size(), rebuild.size());
  for (const auto& [key, wm] : rebuild) {
    auto it = incremental.find(key);
    ASSERT_NE(it, incremental.end()) << "missing row for fact " << key.first;
    EXPECT_NEAR(it->second.first, wm.first, 1e-6) << "fact " << key.first;
    EXPECT_NEAR(it->second.second, wm.second, 1e-9) << "fact " << key.first;
  }
}

TEST(MaintenanceTest, BuildExposesDirectoryAndRtree) {
  StorageEnv env(MakeTempDir(), 64);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
  AllocationOptions options;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &facts, options));
  EXPECT_EQ(manager->directory().size(), 2u);  // Example 5's two components
  EXPECT_EQ(manager->rtree().size(), 2);
  // Directory EDB ranges must tile the imprecise suffix of the EDB.
  int64_t rows = manager->build_result().num_precise;
  for (const auto& info : manager->directory()) {
    ASSERT_EQ(info.edb_ranges.size(), 1u);
    EXPECT_EQ(info.edb_ranges[0].first, rows);
    rows = info.edb_ranges[0].second;
  }
  EXPECT_EQ(rows, manager->edb().size());
}

TEST(MaintenanceTest, PreciseMeasureUpdateCountPolicy) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  StorageEnv tmp(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto f, MakePaperExampleFacts(tmp, schema));
  std::vector<FactRecord> facts = ReadFacts(tmp, f);
  // Update p1 (precise) and p9 (imprecise).
  std::vector<FactUpdate> updates;
  updates.push_back(FactUpdate{facts[0], 999.0});
  updates.push_back(FactUpdate{facts[8], 500.0});
  RunIncrementalVsRebuild(schema, facts, updates, PolicyKind::kCount);
}

TEST(MaintenanceTest, PreciseMeasureUpdateMeasurePolicyShiftsWeights) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  StorageEnv tmp(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto f, MakePaperExampleFacts(tmp, schema));
  std::vector<FactRecord> facts = ReadFacts(tmp, f);
  // Changing a precise measure under EM-Measure changes δ and thus the
  // allocation weights of the whole component.
  std::vector<FactUpdate> updates;
  updates.push_back(FactUpdate{facts[3], 9999.0});  // p4 (CA, Civic)
  RunIncrementalVsRebuild(schema, facts, updates, PolicyKind::kMeasure);
}

TEST(MaintenanceTest, SequentialBatchesStayConsistent) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  StorageEnv tmp(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto f, MakePaperExampleFacts(tmp, schema));
  std::vector<FactRecord> base = ReadFacts(tmp, f);

  AllocationOptions options;
  options.policy = PolicyKind::kMeasure;
  options.epsilon = 1e-9;
  options.max_iterations = 300;
  StorageEnv env(MakeTempDir(), 128);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, WriteFacts(env, base));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &facts, options));

  // Batch 1 updates p4; batch 2 updates it again — the second batch's
  // `before` must carry batch 1's measure.
  std::vector<FactUpdate> batch1 = {FactUpdate{base[3], 1000.0}};
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->ApplyUpdates(batch1, &stats));
  FactRecord after1 = base[3];
  after1.measure = 1000.0;
  std::vector<FactUpdate> batch2 = {FactUpdate{after1, 55.0}};
  IOLAP_ASSERT_OK(manager->ApplyUpdates(batch2, &stats));
  EdbMap incremental = LoadEdb(env, manager->edb());

  // Compare with a rebuild at the final state.
  std::vector<FactRecord> final_facts = base;
  final_facts[3].measure = 55.0;
  StorageEnv env_rb(MakeTempDir(), 128);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts_rb, WriteFacts(env_rb, final_facts));
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult rebuilt,
                             Allocator::Run(env_rb, schema, &facts_rb,
                                            options));
  EdbMap rebuild = LoadEdb(env_rb, rebuilt.edb);
  ASSERT_EQ(incremental.size(), rebuild.size());
  for (const auto& [key, wm] : rebuild) {
    auto it = incremental.find(key);
    ASSERT_NE(it, incremental.end());
    EXPECT_NEAR(it->second.first, wm.first, 1e-6);
    EXPECT_NEAR(it->second.second, wm.second, 1e-9);
  }
}

TEST(MaintenanceTest, NonOverlappedPreciseUpdateTouchesNoComponent) {
  StorageEnv env(MakeTempDir(), 64);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ma, schema.dim(0).FindNode("MA"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId civic, schema.dim(1).FindNode("Civic"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId sedan, schema.dim(1).FindNode("Sedan"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ca, schema.dim(0).FindNode("CA"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId sierra, schema.dim(1).FindNode("Sierra"));

  // One component in the (MA, Sedan) corner plus a precise fact at
  // (CA, Sierra), far outside the component's bounding box.
  std::vector<FactRecord> facts;
  FactRecord anchor;
  anchor.fact_id = 1;
  anchor.measure = 10;
  anchor.node[0] = ma;
  anchor.node[1] = civic;
  anchor.level[0] = anchor.level[1] = 1;
  facts.push_back(anchor);
  FactRecord imprecise;
  imprecise.fact_id = 2;
  imprecise.measure = 20;
  imprecise.node[0] = ma;
  imprecise.level[0] = 1;
  imprecise.node[1] = sedan;
  imprecise.level[1] = 2;
  facts.push_back(imprecise);
  FactRecord isolated;
  isolated.fact_id = 100;
  isolated.measure = 42;
  isolated.node[0] = ca;
  isolated.node[1] = sierra;
  isolated.level[0] = isolated.level[1] = 1;
  facts.push_back(isolated);

  AllocationOptions options;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env, facts));
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager, MaintenanceManager::Build(env, schema, &file, options));
  ASSERT_EQ(manager->directory().size(), 1u);

  // (CA, Sierra) is outside the lone component's bounding box: updating it
  // must touch zero components but still refresh its EDB row.
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(
      manager->ApplyUpdates({FactUpdate{isolated, 77.0}}, &stats));
  EXPECT_EQ(stats.components_touched, 0);
  EXPECT_EQ(stats.edb_rows_rewritten, 1);
  EdbMap edb = LoadEdb(env, manager->edb());
  CellKey key{};
  key[0] = schema.dim(0).leaf_begin(ca);
  key[1] = schema.dim(1).leaf_begin(sierra);
  EXPECT_EQ(edb.at({100, key}).second, 77.0);
}

TEST(MaintenanceTest, RandomizedBatchesMatchRebuild) {
  std::vector<Hierarchy> dims;
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d0,
                             HierarchyBuilder::Uniform("D0", {3, 3}));
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d1,
                             HierarchyBuilder::Uniform("D1", {2, 2, 2}));
  dims.push_back(d0);
  dims.push_back(d1);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             StarSchema::Create(std::move(dims)));
  StorageEnv tmp(MakeTempDir(), 64);
  DatasetSpec spec;
  spec.num_facts = 400;
  spec.imprecise_fraction = 0.35;
  spec.seed = 21;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto gen, GenerateFacts(tmp, schema, spec));
  std::vector<FactRecord> facts = ReadFacts(tmp, gen);

  Rng rng(99);
  std::vector<FactUpdate> updates;
  for (int i = 0; i < 25; ++i) {
    const FactRecord& target = facts[rng.Uniform(facts.size())];
    updates.push_back(FactUpdate{target, 1.0 + 10.0 * rng.NextDouble()});
  }
  // De-duplicate by fact id (ApplyUpdates applies the last wins per map).
  std::map<FactId, FactUpdate> dedup;
  for (const FactUpdate& u : updates) dedup[u.before.fact_id] = u;
  updates.clear();
  for (auto& [id, u] : dedup) updates.push_back(u);

  RunIncrementalVsRebuild(schema, facts, updates, PolicyKind::kMeasure);
}

}  // namespace
}  // namespace iolap
