#include <gtest/gtest.h>

#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/query.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

/// Regression for the tombstone invariant (Definition 4 / CLAUDE.md):
/// weight-0 rows with fact_id = -1 are maintenance tombstones and every EDB
/// reader must skip them. An EDB interleaved with tombstones must answer
/// every query exactly like its compacted (tombstone-free) twin.
class QueryTombstoneTest : public ::testing::Test {
 protected:
  QueryTombstoneTest() : env_(MakeTempDir(), 64) {}

  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
    IOLAP_ASSERT_OK_AND_ASSIGN(facts_, MakePaperExampleFacts(env_, schema_));
    AllocationOptions options;
    options.policy = PolicyKind::kUniform;
    IOLAP_ASSERT_OK_AND_ASSIGN(result_,
                               Allocator::Run(env_, schema_, &facts_, options));

    // Build the tombstoned twin: every live row of the clean EDB, with a
    // tombstone before each one (carrying the same leaf, so a reader that
    // failed to skip it would attribute it to a real cell) and one trailing
    // tombstone.
    IOLAP_ASSERT_OK_AND_ASSIGN(
        tombstoned_, TypedFile<EdbRecord>::Create(env_.disk(), "edb_tomb"));
    auto appender = tombstoned_.MakeAppender(env_.pool());
    auto cursor = result_.edb.Scan(env_.pool());
    EdbRecord rec;
    EdbRecord tomb{};
    tomb.fact_id = -1;
    tomb.weight = 0;
    tomb.measure = 0;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&rec));
      for (int d = 0; d < kMaxDims; ++d) tomb.leaf[d] = rec.leaf[d];
      IOLAP_ASSERT_OK(appender.Append(tomb));
      IOLAP_ASSERT_OK(appender.Append(rec));
    }
    IOLAP_ASSERT_OK(appender.Append(tomb));
    appender.Close();
    ASSERT_GT(tombstoned_.size(), result_.edb.size());
  }

  StorageEnv env_;
  StarSchema schema_;
  TypedFile<FactRecord> facts_;
  AllocationResult result_;
  TypedFile<EdbRecord> tombstoned_;
};

TEST_F(QueryTombstoneTest, AggregateMatchesCompacted) {
  QueryEngine clean(&env_, &schema_, &result_.edb);
  QueryEngine dirty(&env_, &schema_, &tombstoned_);
  std::vector<QueryRegion> regions = {QueryRegion::All()};
  for (NodeId node : schema_.dim(0).nodes_at_level(1)) {
    regions.push_back(QueryRegion::All().With(0, node));
  }
  for (const QueryRegion& region : regions) {
    for (AggregateFunc func : {AggregateFunc::kSum, AggregateFunc::kCount,
                               AggregateFunc::kAverage}) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult a,
                                 clean.Aggregate(region, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult b,
                                 dirty.Aggregate(region, func));
      EXPECT_DOUBLE_EQ(a.value, b.value);
      EXPECT_DOUBLE_EQ(a.sum, b.sum);
      EXPECT_DOUBLE_EQ(a.count, b.count);
    }
  }
}

TEST_F(QueryTombstoneTest, RollUpMatchesCompacted) {
  QueryEngine clean(&env_, &schema_, &result_.edb);
  QueryEngine dirty(&env_, &schema_, &tombstoned_);
  for (int level = 1; level <= schema_.dim(0).num_levels(); ++level) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        auto a, clean.RollUp(QueryRegion::All(), 0, level,
                             AggregateFunc::kSum));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        auto b, dirty.RollUp(QueryRegion::All(), 0, level,
                             AggregateFunc::kSum));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
      EXPECT_DOUBLE_EQ(a[i].count, b[i].count);
    }
  }
}

TEST_F(QueryTombstoneTest, FactsInMatchesCompacted) {
  QueryEngine clean(&env_, &schema_, &result_.edb);
  QueryEngine dirty(&env_, &schema_, &tombstoned_);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto a, clean.FactsIn(QueryRegion::All()));
  IOLAP_ASSERT_OK_AND_ASSIGN(auto b, dirty.FactsIn(QueryRegion::All()));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fact_id, b[i].fact_id);
    EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
  }
  for (const EdbRecord& rec : b) {
    EXPECT_FALSE(rec.weight == 0 && rec.fact_id == -1);
  }
}

TEST_F(QueryTombstoneTest, CompletionsOfMatchesCompacted) {
  QueryEngine clean(&env_, &schema_, &result_.edb);
  QueryEngine dirty(&env_, &schema_, &tombstoned_);
  for (FactId id = 1; id <= 14; ++id) {
    IOLAP_ASSERT_OK_AND_ASSIGN(auto a, clean.CompletionsOf(id));
    IOLAP_ASSERT_OK_AND_ASSIGN(auto b, dirty.CompletionsOf(id));
    ASSERT_EQ(a.size(), b.size()) << "fact " << id;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].fact_id, b[i].fact_id);
      EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
    }
  }
}

TEST_F(QueryTombstoneTest, CompletionsOfRejectsNegativeFactId) {
  QueryEngine dirty(&env_, &schema_, &tombstoned_);
  // fact_id = -1 must not enumerate tombstones as if they were completions.
  Result<std::vector<EdbRecord>> r = dirty.CompletionsOf(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dirty.CompletionsOf(-7).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace iolap
