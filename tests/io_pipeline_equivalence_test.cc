// The I/O pipeline knobs (parallel run generation, loser-tree block merge,
// read-ahead, batched write-back) may change *when* and *in what size
// transfers* bytes move — never the bytes themselves. This suite pins that
// contract at its strongest: for every algorithm and several seeds, the EDB
// produced with the pipeline fully on must be byte-identical (memcmp of the
// raw pages) to the EDB produced by the fully serial pre-overhaul pipeline.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "storage/io_pipeline.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

Result<StarSchema> MakeDenseSchema() {
  std::vector<Hierarchy> dims;
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d0, HierarchyBuilder::Uniform("D0", {3, 3}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d1,
                         HierarchyBuilder::Uniform("D1", {2, 2, 2}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d2, HierarchyBuilder::Uniform("D2", {4, 2}));
  dims.push_back(d0);
  dims.push_back(d1);
  dims.push_back(d2);
  return StarSchema::Create(std::move(dims));
}

// Runs one full allocation and returns the EDB file's raw page bytes.
// With `alloc_io`, also reports the allocation phase's I/O counters.
std::vector<std::byte> RunAndDumpEdb(const StarSchema& schema,
                                     AlgorithmKind algorithm, uint64_t seed,
                                     const IoPipelineOptions& io,
                                     IoStats* alloc_io = nullptr) {
  // Small pool so the sorts inside preprocessing spill to multi-run
  // external sorts and the window engine actually recycles frames.
  StorageEnv env(MakeTempDir(), 16);
  DatasetSpec spec;
  spec.num_facts = 1500;
  spec.imprecise_fraction = 0.4;
  spec.allow_all = true;
  spec.all_fraction = 0.15;
  spec.seed = seed;
  auto facts_or = GenerateFacts(env, schema, spec);
  EXPECT_TRUE(facts_or.ok()) << facts_or.status().ToString();
  auto facts = std::move(facts_or).value();

  AllocationOptions options;
  options.algorithm = algorithm;
  options.epsilon = 0;  // fixed iteration count in both pipelines
  options.max_iterations = 4;
  options.early_convergence = false;
  options.io = io;
  auto result_or = Allocator::Run(env, schema, &facts, options);
  EXPECT_TRUE(result_or.ok()) << result_or.status().ToString();
  auto result = std::move(result_or).value();
  if (alloc_io != nullptr) *alloc_io = result.alloc_io;

  EXPECT_TRUE(env.pool().FlushFile(result.edb.file_id()).ok());
  std::vector<std::byte> bytes(
      static_cast<size_t>(result.edb.size_in_pages()) * kPageSize);
  for (int64_t p = 0; p < result.edb.size_in_pages(); ++p) {
    EXPECT_TRUE(env.disk()
                    .ReadPage(result.edb.file_id(), p,
                              bytes.data() + p * kPageSize)
                    .ok());
  }
  return bytes;
}

struct PipelineParam {
  AlgorithmKind algorithm;
  uint64_t seed;
};

std::string PipelineName(const ::testing::TestParamInfo<PipelineParam>& info) {
  return std::string(AlgorithmName(info.param.algorithm)) + "_s" +
         std::to_string(info.param.seed);
}

class IoPipelineEquivalence : public ::testing::TestWithParam<PipelineParam> {
};

TEST_P(IoPipelineEquivalence, EdbIsByteIdenticalPipelineOnVsOff) {
  const PipelineParam& param = GetParam();
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());

  std::vector<std::byte> serial = RunAndDumpEdb(
      schema, param.algorithm, param.seed, IoPipelineOptions::Serial());

  IoPipelineOptions pipelined;  // defaults: everything on
  pipelined.sort_threads = 4;   // force concurrent run generation
  std::vector<std::byte> piped =
      RunAndDumpEdb(schema, param.algorithm, param.seed, pipelined);

  ASSERT_EQ(serial.size(), piped.size());
  EXPECT_EQ(std::memcmp(serial.data(), piped.data(), serial.size()), 0)
      << "EDB bytes diverge between serial and pipelined I/O";
}

// Plan-driven async read-ahead must neither change the EDB bytes nor the
// *demand* page reads the cost model counts — on any backend. The serial
// run is the reference for both.
TEST_P(IoPipelineEquivalence, EdbAndDemandIoIdenticalAcrossAsyncBackends) {
  const PipelineParam& param = GetParam();
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());

  IoStats serial_io;
  std::vector<std::byte> serial =
      RunAndDumpEdb(schema, param.algorithm, param.seed,
                    IoPipelineOptions::Serial(), &serial_io);

  std::vector<AsyncBackendKind> backends = {AsyncBackendKind::kPread};
  if (IoUringSupported()) backends.push_back(AsyncBackendKind::kUring);
  for (AsyncBackendKind backend : backends) {
    IoPipelineOptions io;  // pipeline fully on
    io.io_backend = backend;
    IoStats piped_io;
    std::vector<std::byte> piped =
        RunAndDumpEdb(schema, param.algorithm, param.seed, io, &piped_io);
    ASSERT_EQ(serial.size(), piped.size()) << AsyncBackendName(backend);
    EXPECT_EQ(std::memcmp(serial.data(), piped.data(), serial.size()), 0)
        << "EDB bytes diverge on backend " << AsyncBackendName(backend);
    EXPECT_EQ(piped_io.page_reads, serial_io.page_reads)
        << "demand reads diverge on backend " << AsyncBackendName(backend);
    EXPECT_EQ(piped_io.page_writes, serial_io.page_writes)
        << "page writes diverge on backend " << AsyncBackendName(backend);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, IoPipelineEquivalence,
    ::testing::Values(PipelineParam{AlgorithmKind::kBasic, 11},
                      PipelineParam{AlgorithmKind::kBasic, 12},
                      PipelineParam{AlgorithmKind::kBasic, 13},
                      PipelineParam{AlgorithmKind::kIndependent, 11},
                      PipelineParam{AlgorithmKind::kIndependent, 12},
                      PipelineParam{AlgorithmKind::kIndependent, 13},
                      PipelineParam{AlgorithmKind::kBlock, 11},
                      PipelineParam{AlgorithmKind::kBlock, 12},
                      PipelineParam{AlgorithmKind::kBlock, 13},
                      PipelineParam{AlgorithmKind::kTransitive, 11},
                      PipelineParam{AlgorithmKind::kTransitive, 12},
                      PipelineParam{AlgorithmKind::kTransitive, 13}),
    PipelineName);

}  // namespace
}  // namespace iolap
