#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

// The parallel Transitive path must produce an EDB that is byte-identical —
// not merely numerically close — to the serial path, for any thread count.
// Components are disjoint subgraphs, so their floating-point results are
// scheduling-independent, and the scheduler emits rows in strict component
// order; these tests pin that contract down with memcmp.

struct RunStats {
  std::vector<EdbRecord> rows;
  int64_t num_components = 0;
  int64_t largest_component = 0;
  int64_t num_large_components = 0;
  int64_t edges_emitted = 0;
  int64_t unallocatable_facts = 0;
  int64_t total_component_iterations = 0;
  int iterations = 0;
};

RunStats RunWithThreads(const StarSchema& schema, const DatasetSpec& spec,
                        const AllocationOptions& base, int buffer_pages,
                        int num_threads) {
  StorageEnv env(MakeTempDir(), buffer_pages);
  RunStats out;
  auto facts_or = GenerateFacts(env, schema, spec);
  EXPECT_TRUE(facts_or.ok()) << facts_or.status().message();
  if (!facts_or.ok()) return out;
  auto facts = std::move(facts_or).value();

  AllocationOptions options = base;
  options.algorithm = AlgorithmKind::kTransitive;
  options.num_threads = num_threads;
  auto result_or = Allocator::Run(env, schema, &facts, options);
  EXPECT_TRUE(result_or.ok()) << result_or.status().message();
  if (!result_or.ok()) return out;
  AllocationResult result = std::move(result_or).value();

  auto cursor = result.edb.Scan(env.pool());
  EdbRecord rec;
  while (!cursor.done()) {
    EXPECT_TRUE(cursor.Next(&rec).ok());
    out.rows.push_back(rec);
  }
  out.num_components = result.components.num_components;
  out.largest_component = result.components.largest_component;
  out.num_large_components = result.components.num_large_components;
  out.edges_emitted = result.edges_emitted;
  out.unallocatable_facts = result.unallocatable_facts;
  out.total_component_iterations =
      result.components.total_component_iterations;
  out.iterations = result.iterations;
  return out;
}

void ExpectByteIdentical(const RunStats& got, const RunStats& want,
                         int threads) {
  EXPECT_EQ(got.rows.size(), want.rows.size()) << "threads=" << threads;
  if (got.rows.size() == want.rows.size() && !got.rows.empty()) {
    EXPECT_EQ(std::memcmp(got.rows.data(), want.rows.data(),
                          got.rows.size() * sizeof(EdbRecord)),
              0)
        << "EDB bytes differ at threads=" << threads;
  }
  EXPECT_EQ(got.num_components, want.num_components) << "threads=" << threads;
  EXPECT_EQ(got.largest_component, want.largest_component)
      << "threads=" << threads;
  EXPECT_EQ(got.num_large_components, want.num_large_components)
      << "threads=" << threads;
  EXPECT_EQ(got.edges_emitted, want.edges_emitted) << "threads=" << threads;
  EXPECT_EQ(got.unallocatable_facts, want.unallocatable_facts)
      << "threads=" << threads;
  EXPECT_EQ(got.total_component_iterations, want.total_component_iterations)
      << "threads=" << threads;
  EXPECT_EQ(got.iterations, want.iterations) << "threads=" << threads;
}

Result<StarSchema> MakeDenseSchema() {
  std::vector<Hierarchy> dims;
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d0, HierarchyBuilder::Uniform("D0", {3, 3}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d1,
                         HierarchyBuilder::Uniform("D1", {2, 2, 2}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d2, HierarchyBuilder::Uniform("D2", {4, 2}));
  dims.push_back(std::move(d0));
  dims.push_back(std::move(d1));
  dims.push_back(std::move(d2));
  return StarSchema::Create(std::move(dims));
}

struct ParallelParam {
  uint64_t seed;
  bool converging;  // early convergence on vs. fixed-iteration ablation
};

class ParallelTransitive : public ::testing::TestWithParam<ParallelParam> {};

std::string ParamName(const ::testing::TestParamInfo<ParallelParam>& info) {
  return std::string("s") + std::to_string(info.param.seed) +
         (info.param.converging ? "_converging" : "_fixed");
}

TEST_P(ParallelTransitive, EdbIsByteIdenticalAcrossThreadCounts) {
  const ParallelParam& param = GetParam();
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());
  DatasetSpec spec;
  spec.num_facts = 1200;
  spec.imprecise_fraction = 0.4;
  spec.allow_all = true;
  spec.all_fraction = 0.1;
  spec.seed = param.seed;

  AllocationOptions base;
  if (param.converging) {
    base.epsilon = 1e-6;
    base.max_iterations = 100;
    base.early_convergence = true;
  } else {
    base.epsilon = 0;
    base.max_iterations = 5;
    base.early_convergence = false;
  }

  const int kBufferPages = 128;  // plenty: every component fits in memory
  RunStats serial = RunWithThreads(schema, spec, base, kBufferPages, 1);
  ASSERT_GT(serial.rows.size(), 0u);
  ASSERT_GT(serial.num_components, 0);
  for (int threads : {2, 4, 8}) {
    RunStats parallel =
        RunWithThreads(schema, spec, base, kBufferPages, threads);
    ExpectByteIdentical(parallel, serial, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelTransitive,
                         ::testing::Values(ParallelParam{11, false},
                                           ParallelParam{11, true},
                                           ParallelParam{29, false},
                                           ParallelParam{29, true}),
                         ParamName);

// With a tiny buffer pool some components exceed the in-memory budget and
// take the external Block path, which runs as an inline barrier in the
// parallel scheduler. The output must still be byte-identical, and the
// small/external split itself must not depend on the thread count.
TEST(ParallelTransitiveExternal, MixedInMemoryAndExternalComponents) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 20000;
  spec.imprecise_fraction = 0.3;
  spec.allow_all = true;
  spec.all_fraction = 0.15;
  spec.seed = 7;

  AllocationOptions base;
  base.epsilon = 0.005;
  base.max_iterations = 20;
  base.early_convergence = true;

  const int kBufferPages = 8;  // forces at least one external component
  RunStats serial = RunWithThreads(schema, spec, base, kBufferPages, 1);
  ASSERT_GT(serial.rows.size(), 0u);
  for (int threads : {2, 4}) {
    RunStats parallel =
        RunWithThreads(schema, spec, base, kBufferPages, threads);
    ExpectByteIdentical(parallel, serial, threads);
  }
}

// Thread counts beyond the buffer pool's pin capacity are clamped rather
// than failing or corrupting output.
TEST(ParallelTransitiveClamp, HugeThreadCountIsSafe) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());
  DatasetSpec spec;
  spec.num_facts = 500;
  spec.imprecise_fraction = 0.4;
  spec.seed = 3;

  AllocationOptions base;
  base.epsilon = 0;
  base.max_iterations = 3;
  base.early_convergence = false;

  RunStats serial = RunWithThreads(schema, spec, base, /*buffer_pages=*/6, 1);
  RunStats parallel =
      RunWithThreads(schema, spec, base, /*buffer_pages=*/6, 64);
  ExpectByteIdentical(parallel, serial, 64);
}

}  // namespace
}  // namespace iolap
