// Crash-resume equivalence: a run killed at an arbitrary I/O operation and
// resumed from its newest checkpoint must produce an EDB byte-identical to
// an uninterrupted run (the equivalence config pins epsilon = 0, a fixed
// max_iterations, and early_convergence = false, so every run executes the
// same EM iterations). Also pins the demand-I/O contract (checkpointing
// adds no demand reads), torn-manifest fallback, and the options
// fingerprint.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "storage/io_pipeline.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

Result<StarSchema> MakeDenseSchema() {
  std::vector<Hierarchy> dims;
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d0, HierarchyBuilder::Uniform("D0", {3, 3}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d1,
                         HierarchyBuilder::Uniform("D1", {2, 2, 2}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy d2, HierarchyBuilder::Uniform("D2", {4, 2}));
  dims.push_back(d0);
  dims.push_back(d1);
  dims.push_back(d2);
  return StarSchema::Create(std::move(dims));
}

constexpr int64_t kNumFacts = 1500;
constexpr uint64_t kSeed = 7;
constexpr int64_t kBufferPages = 16;

TypedFile<FactRecord> MakeFacts(StorageEnv& env, const StarSchema& schema) {
  DatasetSpec spec;
  spec.num_facts = kNumFacts;
  spec.imprecise_fraction = 0.4;
  spec.allow_all = true;
  spec.all_fraction = 0.15;
  spec.seed = kSeed;
  auto facts_or = GenerateFacts(env, schema, spec);
  EXPECT_TRUE(facts_or.ok()) << facts_or.status().ToString();
  return std::move(facts_or).value();
}

AllocationOptions EquivalenceOptions(AlgorithmKind algorithm) {
  AllocationOptions options;
  options.algorithm = algorithm;
  options.epsilon = 0;  // every run executes the same iterations
  options.max_iterations = 4;
  options.early_convergence = false;
  return options;
}

// Checkpoint every boundary for the iteration algorithms; Transitive hits a
// boundary per component, so use a coarser cadence to keep the test fast.
int CadenceFor(AlgorithmKind algorithm) {
  return algorithm == AlgorithmKind::kTransitive ? 25 : 1;
}

std::vector<std::byte> DumpEdb(StorageEnv& env,
                               const AllocationResult& result) {
  EXPECT_TRUE(env.pool().FlushFile(result.edb.file_id()).ok());
  std::vector<std::byte> bytes(
      static_cast<size_t>(result.edb.size_in_pages()) * kPageSize);
  for (int64_t p = 0; p < result.edb.size_in_pages(); ++p) {
    EXPECT_TRUE(env.disk()
                    .ReadPage(result.edb.file_id(), p,
                              bytes.data() + p * kPageSize)
                    .ok());
  }
  return bytes;
}

std::vector<std::byte> RunBaseline(const StarSchema& schema,
                                   AlgorithmKind algorithm) {
  StorageEnv env(MakeTempDir(), kBufferPages);
  auto facts = MakeFacts(env, schema);
  AllocationOptions options = EquivalenceOptions(algorithm);
  auto result_or = Allocator::Run(env, schema, &facts, options);
  EXPECT_TRUE(result_or.ok()) << result_or.status().ToString();
  auto result = std::move(result_or).value();
  return DumpEdb(env, result);
}

// Resumes in a fresh environment (simulating a new process after a crash)
// and returns the EDB bytes.
std::vector<std::byte> ResumeAndDump(const StarSchema& schema,
                                     AlgorithmKind algorithm,
                                     const std::string& ckpt_dir) {
  StorageEnv env(MakeTempDir(), kBufferPages);
  auto facts = MakeFacts(env, schema);
  AllocationOptions options = EquivalenceOptions(algorithm);
  options.checkpoint.directory = ckpt_dir;
  options.checkpoint.every = CadenceFor(algorithm);
  options.checkpoint.resume = true;
  auto result_or = Allocator::Run(env, schema, &facts, options);
  EXPECT_TRUE(result_or.ok()) << result_or.status().ToString();
  auto result = std::move(result_or).value();
  return DumpEdb(env, result);
}

// Runs with checkpointing and a fault injector that kills the run at the
// `failure_point`-th operation of kind `fail_op` ('*' = any). Returns true
// if the fault actually fired (the run failed).
bool RunKilled(const StarSchema& schema, AlgorithmKind algorithm,
               const std::string& ckpt_dir, int failure_point, char fail_op) {
  StorageEnv env(MakeTempDir(), kBufferPages);
  auto facts = MakeFacts(env, schema);
  int countdown = failure_point;
  env.disk().SetFaultInjector([&](char op, FileId, PageId) {
    if (fail_op != '*' && op != fail_op) return Status::Ok();
    return --countdown <= 0 ? Status::IoError("injected crash")
                            : Status::Ok();
  });
  AllocationOptions options = EquivalenceOptions(algorithm);
  options.checkpoint.directory = ckpt_dir;
  options.checkpoint.every = CadenceFor(algorithm);
  auto result_or = Allocator::Run(env, schema, &facts, options);
  EXPECT_EQ(result_or.ok(), countdown > 0);
  return countdown <= 0;
}

struct CrashParam {
  AlgorithmKind algorithm;
  int failure_point;
  char fail_op;  // '*' = any operation, 'c' = checkpoint writes only
};

std::string CrashName(const ::testing::TestParamInfo<CrashParam>& info) {
  std::string op = info.param.fail_op == 'c' ? "ckpt" : "any";
  return std::string(AlgorithmName(info.param.algorithm)) + "_" + op + "_" +
         std::to_string(info.param.failure_point);
}

class CheckpointCrashResume : public ::testing::TestWithParam<CrashParam> {};

TEST_P(CheckpointCrashResume, ResumedEdbIsByteIdentical) {
  const CrashParam& param = GetParam();
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());

  std::vector<std::byte> baseline = RunBaseline(schema, param.algorithm);

  // Kill, then resume in a fresh environment. If the failure point lies
  // beyond the run (it completed), the resume still exercises
  // restore-after-final-checkpoint and must stay identical.
  std::string ckpt_dir = MakeTempDir();
  RunKilled(schema, param.algorithm, ckpt_dir, param.failure_point,
            param.fail_op);
  std::vector<std::byte> resumed =
      ResumeAndDump(schema, param.algorithm, ckpt_dir);

  ASSERT_EQ(baseline.size(), resumed.size());
  EXPECT_EQ(std::memcmp(baseline.data(), resumed.data(), baseline.size()), 0)
      << "EDB bytes diverge between uninterrupted and killed-then-resumed "
         "runs";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CheckpointCrashResume,
    ::testing::Values(
        // Kill at any operation: early points land in preprocessing (no
        // checkpoint yet -> resume falls back to a fresh run), middle
        // points land mid-iterate, late points land during emission.
        CrashParam{AlgorithmKind::kBasic, 40, '*'},
        CrashParam{AlgorithmKind::kBasic, 300, '*'},
        CrashParam{AlgorithmKind::kBasic, 1200, '*'},
        CrashParam{AlgorithmKind::kIndependent, 40, '*'},
        CrashParam{AlgorithmKind::kIndependent, 800, '*'},
        CrashParam{AlgorithmKind::kIndependent, 3000, '*'},
        CrashParam{AlgorithmKind::kBlock, 40, '*'},
        CrashParam{AlgorithmKind::kBlock, 500, '*'},
        CrashParam{AlgorithmKind::kBlock, 2000, '*'},
        CrashParam{AlgorithmKind::kTransitive, 40, '*'},
        CrashParam{AlgorithmKind::kTransitive, 800, '*'},
        CrashParam{AlgorithmKind::kTransitive, 3000, '*'},
        // Kill inside a checkpoint write itself: the manifest commit
        // protocol must leave the previous generation restorable.
        CrashParam{AlgorithmKind::kBasic, 2, 'c'},
        CrashParam{AlgorithmKind::kIndependent, 5, 'c'},
        CrashParam{AlgorithmKind::kBlock, 5, 'c'},
        CrashParam{AlgorithmKind::kBlock, 40, 'c'},
        CrashParam{AlgorithmKind::kTransitive, 10, 'c'}),
    CrashName);

// ---------------------------------------------------------------------------

std::filesystem::path NewestManifest(const std::string& ckpt_dir) {
  std::filesystem::path newest;
  uint64_t best = 0;
  for (const auto& entry : std::filesystem::directory_iterator(ckpt_dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("manifest.", 0) != 0) continue;
    uint64_t gen = std::strtoull(name.c_str() + 9, nullptr, 10);
    if (gen > best) {
      best = gen;
      newest = entry.path();
    }
  }
  EXPECT_FALSE(newest.empty()) << "no manifest in " << ckpt_dir;
  return newest;
}

// Runs to completion with checkpointing so the directory holds the last two
// generations.
void RunCheckpointed(const StarSchema& schema, AlgorithmKind algorithm,
                     const std::string& ckpt_dir) {
  StorageEnv env(MakeTempDir(), kBufferPages);
  auto facts = MakeFacts(env, schema);
  AllocationOptions options = EquivalenceOptions(algorithm);
  options.checkpoint.directory = ckpt_dir;
  options.checkpoint.every = CadenceFor(algorithm);
  auto result_or = Allocator::Run(env, schema, &facts, options);
  EXPECT_TRUE(result_or.ok()) << result_or.status().ToString();
}

TEST(CheckpointTornManifestTest, TruncatedManifestFallsBackOneGeneration) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());
  std::vector<std::byte> baseline = RunBaseline(schema, AlgorithmKind::kBlock);

  std::string ckpt_dir = MakeTempDir();
  RunCheckpointed(schema, AlgorithmKind::kBlock, ckpt_dir);

  // Tear the newest manifest in half: the checksum must reject it and
  // resume must fall back to the previous generation.
  std::filesystem::path newest = NewestManifest(ckpt_dir);
  auto size = std::filesystem::file_size(newest);
  std::filesystem::resize_file(newest, size / 2);

  std::vector<std::byte> resumed =
      ResumeAndDump(schema, AlgorithmKind::kBlock, ckpt_dir);
  ASSERT_EQ(baseline.size(), resumed.size());
  EXPECT_EQ(std::memcmp(baseline.data(), resumed.data(), baseline.size()), 0);
}

TEST(CheckpointTornManifestTest, CorruptedManifestFallsBackOneGeneration) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());
  std::vector<std::byte> baseline = RunBaseline(schema, AlgorithmKind::kBlock);

  std::string ckpt_dir = MakeTempDir();
  RunCheckpointed(schema, AlgorithmKind::kBlock, ckpt_dir);

  // Flip bytes in the middle of the newest manifest (size unchanged): only
  // the checksum can catch this.
  std::filesystem::path newest = NewestManifest(ckpt_dir);
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(newest)) /
            2);
    const char garbage[8] = {0x5a, 0x5a, 0x5a, 0x5a, 0x5a, 0x5a, 0x5a, 0x5a};
    f.write(garbage, sizeof(garbage));
  }

  std::vector<std::byte> resumed =
      ResumeAndDump(schema, AlgorithmKind::kBlock, ckpt_dir);
  ASSERT_EQ(baseline.size(), resumed.size());
  EXPECT_EQ(std::memcmp(baseline.data(), resumed.data(), baseline.size()), 0);
}

TEST(CheckpointTornManifestTest, AllManifestsTornFallsBackToFreshRun) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());
  std::vector<std::byte> baseline = RunBaseline(schema, AlgorithmKind::kBlock);

  std::string ckpt_dir = MakeTempDir();
  RunCheckpointed(schema, AlgorithmKind::kBlock, ckpt_dir);
  for (const auto& entry : std::filesystem::directory_iterator(ckpt_dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("manifest.", 0) != 0) continue;
    std::filesystem::resize_file(entry.path(), 3);
  }

  std::vector<std::byte> resumed =
      ResumeAndDump(schema, AlgorithmKind::kBlock, ckpt_dir);
  ASSERT_EQ(baseline.size(), resumed.size());
  EXPECT_EQ(std::memcmp(baseline.data(), resumed.data(), baseline.size()), 0);
}

TEST(CheckpointFingerprintTest, MismatchedOptionsRefuseToResume) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());
  std::string ckpt_dir = MakeTempDir();
  RunCheckpointed(schema, AlgorithmKind::kBlock, ckpt_dir);

  StorageEnv env(MakeTempDir(), kBufferPages);
  auto facts = MakeFacts(env, schema);
  AllocationOptions options = EquivalenceOptions(AlgorithmKind::kBlock);
  options.max_iterations = 7;  // differs from the checkpointed run
  options.checkpoint.directory = ckpt_dir;
  options.checkpoint.resume = true;
  Result<AllocationResult> result =
      Allocator::Run(env, schema, &facts, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------

// Checkpointing must never perturb the demand-I/O schedule the paper's cost
// model counts: page_reads are identical with the feature on and off
// (checkpoint copies bypass IoStats; flushes write but never evict, so no
// demand read is re-issued). Prefetch reads are speculative and inherently
// timing-dependent — the async read-ahead worker races file eviction, so a
// slower run may service a few more queued prefetches (see the eviction
// caveat in buffer_pool_test) — and write counts may differ because a
// flushed-then-redirtied page is written twice. That asymmetry is exactly
// why checkpoint traffic is reported under ckpt.* instead.
TEST(CheckpointIoPurityTest, DemandReadsUnchangedByCheckpointing) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeDenseSchema());
  for (AlgorithmKind algorithm :
       {AlgorithmKind::kBasic, AlgorithmKind::kIndependent,
        AlgorithmKind::kBlock, AlgorithmKind::kTransitive}) {
    IoStats stats_off, stats_on;
    std::vector<std::byte> edb_off, edb_on;
    {
      StorageEnv env(MakeTempDir(), kBufferPages);
      auto facts = MakeFacts(env, schema);
      AllocationOptions options = EquivalenceOptions(algorithm);
      IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                                 Allocator::Run(env, schema, &facts, options));
      stats_off = env.disk().stats();
      edb_off = DumpEdb(env, result);
    }
    {
      StorageEnv env(MakeTempDir(), kBufferPages);
      auto facts = MakeFacts(env, schema);
      AllocationOptions options = EquivalenceOptions(algorithm);
      options.checkpoint.directory = MakeTempDir();
      options.checkpoint.every = 1;
      IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                                 Allocator::Run(env, schema, &facts, options));
      stats_on = env.disk().stats();
      edb_on = DumpEdb(env, result);
    }
    EXPECT_EQ(stats_off.page_reads, stats_on.page_reads)
        << AlgorithmName(algorithm);
    ASSERT_EQ(edb_off.size(), edb_on.size()) << AlgorithmName(algorithm);
    EXPECT_EQ(std::memcmp(edb_off.data(), edb_on.data(), edb_off.size()), 0)
        << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace iolap
