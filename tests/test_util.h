#ifndef IOLAP_TESTS_TEST_UTIL_H_
#define IOLAP_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/status.h"

namespace iolap {

/// Creates a fresh scratch directory for a test.
inline std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "iolap_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl;
}

#define IOLAP_ASSERT_OK(expr)                                  \
  do {                                                         \
    const ::iolap::Status _st = (expr);                        \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define IOLAP_EXPECT_OK(expr)                                  \
  do {                                                         \
    const ::iolap::Status _st = (expr);                        \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

// Unwraps a Result<T> into `decl`, failing the test on error.
#define IOLAP_ASSERT_OK_AND_ASSIGN(decl, expr)                        \
  auto IOLAP_CONCAT(_assign_, __LINE__) = (expr);                     \
  ASSERT_TRUE(IOLAP_CONCAT(_assign_, __LINE__).ok())                  \
      << IOLAP_CONCAT(_assign_, __LINE__).status().ToString();        \
  decl = std::move(IOLAP_CONCAT(_assign_, __LINE__)).value()

}  // namespace iolap

#endif  // IOLAP_TESTS_TEST_UTIL_H_
