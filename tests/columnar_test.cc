#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "datagen/table2.h"
#include "edb/columnar.h"
#include "model/records.h"
#include "storage/extent.h"
#include "storage/storage_env.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

// ---------------------------------------------------------------------------
// Encoding layer (storage/extent.h): property round trips over seeded Rng
// data, decoded both whole and through partial-row windows.

std::vector<std::byte> SliceStream(const std::vector<std::byte>& stream,
                                   const ByteRange& r) {
  return std::vector<std::byte>(stream.begin() + r.begin,
                                stream.begin() + r.end);
}

// Decodes rows [r0, r1) of an int32 column from exactly the byte windows
// WindowsFor names — any under-reported window would fail here before it
// ever hides inside whole-page reads.
std::vector<int32_t> DecodeInt32Range(const ColumnDesc& desc,
                                      const std::vector<std::byte>& stream,
                                      int64_t r0, int64_t r1) {
  const ColumnWindows w = WindowsFor(desc, r0, r1);
  const std::vector<std::byte> head = SliceStream(stream, w.head);
  const std::vector<std::byte> body = SliceStream(stream, w.body);
  std::vector<int32_t> out(static_cast<size_t>(r1 - r0));
  const Status st = DecodeInt32(desc, head.data(),
                                static_cast<int64_t>(head.size()), body.data(),
                                static_cast<int64_t>(body.size()), r0, r1,
                                out.data());
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(ExtentEncodingTest, Int32AutoRoundTripAcrossShapes) {
  Rng rng(2024);
  // Shapes that force every dictionary width (0, 1, 2, 4 bytes) plus the
  // plain fallback on high-cardinality data.
  const int64_t cardinalities[] = {1, 2, 200, 300, 70000, 1 << 20};
  for (int64_t card : cardinalities) {
    for (int64_t n : {1, 7, 1000}) {
      std::vector<int32_t> vals(static_cast<size_t>(n));
      for (auto& v : vals) {
        v = static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(card))) -
            50;  // include negatives
      }
      std::vector<std::byte> stream;
      const ColumnDesc desc = EncodeInt32Auto(vals.data(), n, &stream);
      ASSERT_EQ(desc.byte_length, static_cast<int64_t>(stream.size()));
      EXPECT_EQ(DecodeInt32Range(desc, stream, 0, n), vals);
      // Partial windows, including single rows and suffixes.
      const int64_t r0 = static_cast<int64_t>(rng.Uniform(n));
      const int64_t r1 = r0 + 1 + static_cast<int64_t>(rng.Uniform(n - r0));
      const std::vector<int32_t> part = DecodeInt32Range(desc, stream, r0, r1);
      for (int64_t i = r0; i < r1; ++i) {
        ASSERT_EQ(part[i - r0], vals[i]) << "row " << i;
      }
    }
  }
}

TEST(ExtentEncodingTest, DictIsChosenExactlyWhenSmaller) {
  // 1000 rows over 4 distinct values: dict = 4 + 16 + 1000 bytes, far under
  // plain's 4000.
  std::vector<int32_t> few(1000);
  for (size_t i = 0; i < few.size(); ++i) few[i] = static_cast<int32_t>(i % 4);
  std::vector<std::byte> stream;
  ColumnDesc desc = EncodeInt32Auto(few.data(), 1000, &stream);
  EXPECT_EQ(desc.encoding, static_cast<uint16_t>(ColumnEncoding::kDict32));
  EXPECT_EQ(desc.dict_size, 4u);
  EXPECT_EQ(desc.byte_length, 4 + 16 + 1000);

  // All-distinct rows: dictionary would cost 4 + 4n + n, strictly worse.
  std::vector<int32_t> distinct(1000);
  for (size_t i = 0; i < distinct.size(); ++i) {
    distinct[i] = static_cast<int32_t>(i);
  }
  stream.clear();
  desc = EncodeInt32Auto(distinct.data(), 1000, &stream);
  EXPECT_EQ(desc.encoding, static_cast<uint16_t>(ColumnEncoding::kPlain32));
  EXPECT_EQ(desc.byte_length, 4000);
}

TEST(ExtentEncodingTest, DeltaZigZagRoundTripIncludingExtremes) {
  Rng rng(7);
  std::vector<int64_t> vals = {0,
                               std::numeric_limits<int64_t>::max(),
                               std::numeric_limits<int64_t>::min(),
                               -1,
                               1,
                               std::numeric_limits<int64_t>::min()};
  for (int i = 0; i < 500; ++i) {
    vals.push_back(static_cast<int64_t>(rng.Next()));
  }
  std::vector<std::byte> stream;
  const ColumnDesc desc =
      EncodeDeltaZigZag64(vals.data(), static_cast<int64_t>(vals.size()),
                          &stream);
  ASSERT_EQ(desc.byte_length, static_cast<int64_t>(stream.size()));
  for (const auto& [r0, r1] : {std::pair<int64_t, int64_t>{0, 506},
                              {0, 1},
                              {505, 506},
                              {3, 17}}) {
    const ColumnWindows w = WindowsFor(desc, r0, r1);
    ASSERT_LE(w.body.end, desc.byte_length);
    const std::vector<std::byte> body = SliceStream(stream, w.body);
    std::vector<int64_t> out(static_cast<size_t>(r1 - r0));
    IOLAP_ASSERT_OK(DecodeDeltaZigZag64(desc, body.data(),
                                        static_cast<int64_t>(body.size()), r0,
                                        r1, out.data()));
    for (int64_t i = r0; i < r1; ++i) {
      ASSERT_EQ(out[i - r0], vals[i]) << "row " << i;
    }
  }
}

TEST(ExtentEncodingTest, Plain64RoundTripsDoubleBits) {
  std::vector<double> vals = {0.0, -0.0, 1.5, -2.25, 1e300, 5e-324};
  std::vector<std::byte> stream;
  const ColumnDesc desc =
      EncodePlain64(vals.data(), static_cast<int64_t>(vals.size()), &stream);
  const ColumnWindows w = WindowsFor(desc, 2, 5);
  const std::vector<std::byte> body = SliceStream(stream, w.body);
  double out[3];
  IOLAP_ASSERT_OK(DecodePlain64(desc, body.data(),
                                static_cast<int64_t>(body.size()), 2, 5, out));
  EXPECT_EQ(std::memcmp(out, vals.data() + 2, sizeof(out)), 0);
}

TEST(ExtentEncodingTest, MalformedStreamsAreRejected) {
  std::vector<int32_t> vals(100);
  for (size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<int32_t>(i % 5);  // width-1 codes
  }
  std::vector<std::byte> stream;
  ColumnDesc desc = EncodeInt32Auto(vals.data(), 100, &stream);
  ASSERT_EQ(desc.encoding, static_cast<uint16_t>(ColumnEncoding::kDict32));
  int32_t out[100];
  const int64_t code_off = 4 + 4 * desc.dict_size;
  // Short code window.
  EXPECT_FALSE(DecodeInt32(desc, stream.data(), code_off,
                           stream.data() + code_off, 10, 0, 100, out)
                   .ok());
  // Code past the dictionary.
  std::vector<std::byte> evil = stream;
  evil[static_cast<size_t>(code_off)] = std::byte{200};
  EXPECT_FALSE(DecodeInt32(desc, evil.data(), code_off, evil.data() + code_off,
                           100, 0, 100, out)
                   .ok());
  // Truncated varint stream.
  std::vector<int64_t> ids = {5, 1000000, 6};
  stream.clear();
  desc = EncodeDeltaZigZag64(ids.data(), 3, &stream);
  int64_t out64[3];
  EXPECT_FALSE(
      DecodeDeltaZigZag64(desc, stream.data(), 9, 0, 3, out64).ok());
}

// The EstimateDataPages-class bug this PR audits: a stream whose encoded
// size is an exact page multiple must not round up to an extra page.
TEST(ExtentEncodingTest, PagesForBytesExactMultiples) {
  EXPECT_EQ(PagesForBytes(0), 0);
  EXPECT_EQ(PagesForBytes(1), 1);
  EXPECT_EQ(PagesForBytes(static_cast<int64_t>(kPageSize)), 1);
  EXPECT_EQ(PagesForBytes(static_cast<int64_t>(kPageSize) + 1), 2);
  EXPECT_EQ(PagesForBytes(7 * static_cast<int64_t>(kPageSize)), 7);
}

// ---------------------------------------------------------------------------
// Columnar EDB (edb/columnar.h): conversion round trips, tombstones,
// page-exact column boundaries, projection I/O.

class ColumnarEdbTest : public ::testing::Test {
 protected:
  ColumnarEdbTest() : env_(MakeTempDir(), 256) {}

  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
  }

  /// Builds a row EDB of `rows` seeded-random records; every ~7th row is a
  /// tombstone when `with_tombstones`.
  TypedFile<EdbRecord> MakeEdb(int64_t rows, uint64_t seed,
                               bool with_tombstones) {
    auto created = TypedFile<EdbRecord>::Create(env_.disk(), "edb_rows");
    EXPECT_TRUE(created.ok());
    TypedFile<EdbRecord> edb = std::move(created).value();
    auto appender = edb.MakeAppender(env_.pool());
    Rng rng(seed);
    for (int64_t i = 0; i < rows; ++i) {
      EdbRecord rec{};
      if (with_tombstones && rng.Bernoulli(1.0 / 7)) {
        rec.fact_id = -1;
        rec.weight = 0;
      } else {
        rec.fact_id = static_cast<FactId>(rng.Uniform(1u << 20));
        rec.weight = rng.NextDouble() + 1e-6;
        rec.measure = rng.NextDouble() * 100;
      }
      for (int d = 0; d < schema_.num_dims(); ++d) {
        rec.leaf[d] = static_cast<int32_t>(
            rng.Uniform(static_cast<uint64_t>(schema_.dim(d).num_leaves())));
      }
      IOLAP_EXPECT_OK(appender.Append(rec));
    }
    appender.Close();
    return edb;
  }

  /// memcmp-compares every row of `edb` against the columnar mirror.
  void ExpectRoundTrip(const TypedFile<EdbRecord>& edb,
                       const ColumnarEdb& col) {
    ASSERT_EQ(col.num_rows(), edb.size());
    std::vector<EdbRecord> got;
    IOLAP_ASSERT_OK(col.ReadRecords(env_.pool(), 0, col.num_rows(), &got));
    std::vector<EdbRecord> want;
    auto cursor = edb.Scan(env_.pool());
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&rec));
      want.push_back(rec);
    }
    ASSERT_EQ(got.size(), want.size());
    if (!want.empty()) {
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            want.size() * sizeof(EdbRecord)),
                0);
    }
  }

  StorageEnv env_;
  StarSchema schema_;
};

TEST_F(ColumnarEdbTest, RoundTripWithTombstonesAcrossExtents) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    TypedFile<EdbRecord> edb = MakeEdb(1000, seed, /*with_tombstones=*/true);
    ColumnarWriteOptions opts;
    opts.rows_per_extent = 256;  // forces 4 extents, last one short
    IOLAP_ASSERT_OK_AND_ASSIGN(ColumnarEdb col,
                               WriteColumnarEdb(env_, schema_, edb, opts));
    EXPECT_EQ(col.num_extents(), 4);
    EXPECT_TRUE(col.has_tombstones());
    ExpectRoundTrip(edb, col);
  }
}

TEST_F(ColumnarEdbTest, SingleRowAndEmptyEdb) {
  TypedFile<EdbRecord> one = MakeEdb(1, 9, /*with_tombstones=*/false);
  IOLAP_ASSERT_OK_AND_ASSIGN(ColumnarEdb col_one,
                             WriteColumnarEdb(env_, schema_, one, {}));
  EXPECT_EQ(col_one.num_extents(), 1);
  ExpectRoundTrip(one, col_one);

  TypedFile<EdbRecord> empty = MakeEdb(0, 9, /*with_tombstones=*/false);
  IOLAP_ASSERT_OK_AND_ASSIGN(ColumnarEdb col_empty,
                             WriteColumnarEdb(env_, schema_, empty, {}));
  EXPECT_EQ(col_empty.num_extents(), 0);
  EXPECT_EQ(col_empty.num_rows(), 0);
  EXPECT_FALSE(col_empty.has_tombstones());
  ExpectRoundTrip(empty, col_empty);
}

TEST_F(ColumnarEdbTest, AllTombstoneExtent) {
  auto created = TypedFile<EdbRecord>::Create(env_.disk(), "edb_tombs");
  ASSERT_TRUE(created.ok());
  TypedFile<EdbRecord> edb = std::move(created).value();
  auto appender = edb.MakeAppender(env_.pool());
  EdbRecord tomb{};
  tomb.fact_id = -1;
  tomb.weight = 0;
  for (int i = 0; i < 10; ++i) IOLAP_ASSERT_OK(appender.Append(tomb));
  appender.Close();
  IOLAP_ASSERT_OK_AND_ASSIGN(ColumnarEdb col,
                             WriteColumnarEdb(env_, schema_, edb, {}));
  EXPECT_TRUE(col.has_tombstones());
  ExpectRoundTrip(edb, col);
  // A weight-projected scan skips all of them via IsTombstone.
  int64_t live = 0;
  EdbProjection proj;
  proj.weight = true;
  IOLAP_ASSERT_OK(col.ScanRows(env_.pool(), 0, -1, proj,
                               [&](const ColumnarEdb::Row& row) {
                                 if (!ColumnarEdb::IsTombstone(row.weight)) {
                                   ++live;
                                 }
                               }));
  EXPECT_EQ(live, 0);
}

TEST_F(ColumnarEdbTest, RejectsWeightZeroNonTombstone) {
  auto created = TypedFile<EdbRecord>::Create(env_.disk(), "edb_bad");
  ASSERT_TRUE(created.ok());
  TypedFile<EdbRecord> edb = std::move(created).value();
  EdbRecord bad{};
  bad.fact_id = 42;  // weight 0 but not the tombstone sentinel
  bad.weight = 0;
  IOLAP_ASSERT_OK(edb.Append(env_.pool(), bad));
  auto result = WriteColumnarEdb(env_, schema_, edb, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// 512 plain-64 rows are exactly one 4096-byte page: the extent must lay the
// next column out without a stray page, and partial decodes at the boundary
// must still work. Regression for the exact-page-multiple size math.
TEST_F(ColumnarEdbTest, ExactPageMultipleColumnBoundary) {
  TypedFile<EdbRecord> edb = MakeEdb(512, 11, /*with_tombstones=*/true);
  ColumnarWriteOptions opts;
  opts.rows_per_extent = 512;
  IOLAP_ASSERT_OK_AND_ASSIGN(ColumnarEdb col,
                             WriteColumnarEdb(env_, schema_, edb, opts));
  ASSERT_EQ(col.num_extents(), 1);
  ExpectRoundTrip(edb, col);
  // measure and weight streams are 512 * 8 = 4096 bytes = exactly 1 page.
  EXPECT_EQ(PagesForBytes(512 * 8), 1);
  std::vector<EdbRecord> rows;
  IOLAP_ASSERT_OK(col.ReadRecords(env_.pool(), 511, 512, &rows));
  ASSERT_EQ(rows.size(), 1u);
}

TEST_F(ColumnarEdbTest, ProjectionReadsFewerPagesThanFullScan) {
  TypedFile<EdbRecord> edb = MakeEdb(20000, 5, /*with_tombstones=*/true);
  IOLAP_ASSERT_OK_AND_ASSIGN(ColumnarEdb col,
                             WriteColumnarEdb(env_, schema_, edb, {}));
  EXPECT_LT(col.size_in_pages(), edb.size_in_pages());

  auto cold_scan = [&](const EdbProjection& proj) -> int64_t {
    IOLAP_EXPECT_OK(env_.pool().EvictFile(col.file_id()));
    const int64_t before = env_.disk().stats().page_reads;
    double sink = 0;
    IOLAP_EXPECT_OK(col.ScanRows(env_.pool(), 0, -1, proj,
                                 [&](const ColumnarEdb::Row& row) {
                                   sink += row.weight + row.measure;
                                 }));
    EXPECT_NE(sink, 0);
    return env_.disk().stats().page_reads - before;
  };

  EdbProjection narrow;
  narrow.weight = true;
  narrow.measure = true;
  const int64_t narrow_reads = cold_scan(narrow);
  const int64_t full_reads = cold_scan(EdbProjection::All(schema_.num_dims()));
  EXPECT_LT(narrow_reads, full_reads);
  // The tentpole target: a (weight, measure) aggregate scan well under
  // 0.6x the row-major page count.
  EXPECT_LT(narrow_reads * 10, edb.size_in_pages() * 6);
}

}  // namespace
}  // namespace iolap
