#include "rtree/paged_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "storage/storage_env.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

Rect MakeRect2(int32_t x0, int32_t y0, int32_t x1, int32_t y1) {
  Rect r;
  r.lo[0] = x0;
  r.lo[1] = y0;
  r.hi[0] = x1;
  r.hi[1] = y1;
  return r;
}

TEST(PagedRTreeTest, EmptyTree) {
  StorageEnv env(MakeTempDir(), 16);
  IOLAP_ASSERT_OK_AND_ASSIGN(PagedRTree tree,
                             PagedRTree::Create(&env.disk(), &env.pool(), 2));
  std::vector<int64_t> hits;
  IOLAP_ASSERT_OK(tree.Search(MakeRect2(0, 0, 100, 100), &hits));
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(tree.size(), 0);
  bool removed = true;
  IOLAP_ASSERT_OK(tree.Remove(MakeRect2(0, 0, 1, 1), 7, &removed));
  EXPECT_FALSE(removed);
  IOLAP_ASSERT_OK_AND_ASSIGN(bool ok, tree.CheckInvariants());
  EXPECT_TRUE(ok);
}

TEST(PagedRTreeTest, GrowsAndFindsAcrossSplits) {
  StorageEnv env(MakeTempDir(), 16);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      PagedRTree tree,
      PagedRTree::Create(&env.disk(), &env.pool(), 2, /*max_entries=*/4));
  for (int i = 0; i < 200; ++i) {
    IOLAP_ASSERT_OK(tree.Insert(MakeRect2(i, 0, i + 2, 2), i));
  }
  EXPECT_EQ(tree.size(), 200);
  EXPECT_GT(tree.height(), 2);
  IOLAP_ASSERT_OK_AND_ASSIGN(bool ok, tree.CheckInvariants());
  EXPECT_TRUE(ok);
  std::vector<int64_t> hits;
  IOLAP_ASSERT_OK(tree.Search(MakeRect2(100, 1, 100, 1), &hits));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int64_t>{98, 99, 100}));
}

TEST(PagedRTreeTest, SearchIsCountedAndSublinear) {
  StorageEnv env(MakeTempDir(), 64);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      PagedRTree tree,
      PagedRTree::Create(&env.disk(), &env.pool(), 2, /*max_entries=*/8));
  for (int i = 0; i < 1000; ++i) {
    IOLAP_ASSERT_OK(tree.Insert(MakeRect2(i, 0, i, 0), i));
  }
  tree.ResetStats();
  std::vector<int64_t> hits;
  IOLAP_ASSERT_OK(tree.Search(MakeRect2(500, 0, 501, 0), &hits));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_GT(tree.nodes_accessed(), 0);
  EXPECT_LT(tree.nodes_accessed(), 40);
}

TEST(PagedRTreeTest, SurvivesTinyBufferPool) {
  // 3 frames: every node access goes through pin/evict churn.
  StorageEnv env(MakeTempDir(), 3);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      PagedRTree tree,
      PagedRTree::Create(&env.disk(), &env.pool(), 2, /*max_entries=*/4));
  for (int i = 0; i < 300; ++i) {
    IOLAP_ASSERT_OK(tree.Insert(MakeRect2(i % 50, i / 50, i % 50 + 3, i / 50 + 3), i));
  }
  IOLAP_ASSERT_OK_AND_ASSIGN(bool ok, tree.CheckInvariants());
  EXPECT_TRUE(ok);
  EXPECT_GT(env.disk().stats().total(), 0);  // it really hit the disk
}

// Differential test: the paged tree must behave exactly like the in-memory
// reference under a random insert/remove/search workload.
class PagedRTreeDifferential
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PagedRTreeDifferential, MatchesInMemoryRTree) {
  auto [dims, fanout] = GetParam();
  StorageEnv env(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      PagedRTree paged,
      PagedRTree::Create(&env.disk(), &env.pool(), dims, fanout));
  RTree reference(dims, fanout);

  Rng rng(dims * 31 + fanout);
  struct Item {
    Rect rect;
    int64_t id;
    bool alive;
  };
  std::vector<Item> items;
  int64_t next_id = 0;
  for (int step = 0; step < 500; ++step) {
    double action = rng.NextDouble();
    if (action < 0.55 || items.empty()) {
      Rect r;
      for (int d = 0; d < dims; ++d) {
        int32_t a = static_cast<int32_t>(rng.Uniform(150));
        r.lo[d] = a;
        r.hi[d] = a + static_cast<int32_t>(rng.Uniform(25));
      }
      IOLAP_ASSERT_OK(paged.Insert(r, next_id));
      reference.Insert(r, next_id);
      items.push_back(Item{r, next_id, true});
      ++next_id;
    } else if (action < 0.8) {
      std::vector<size_t> live;
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].alive) live.push_back(i);
      }
      if (!live.empty()) {
        size_t pick = live[rng.Uniform(live.size())];
        bool removed = false;
        IOLAP_ASSERT_OK(
            paged.Remove(items[pick].rect, items[pick].id, &removed));
        EXPECT_TRUE(removed);
        EXPECT_TRUE(reference.Remove(items[pick].rect, items[pick].id));
        items[pick].alive = false;
      }
    } else {
      Rect q;
      for (int d = 0; d < dims; ++d) {
        int32_t a = static_cast<int32_t>(rng.Uniform(170));
        q.lo[d] = a;
        q.hi[d] = a + static_cast<int32_t>(rng.Uniform(50));
      }
      std::vector<int64_t> got, want;
      IOLAP_ASSERT_OK(paged.Search(q, &got));
      reference.Search(q, &want);
      std::set<int64_t> got_set(got.begin(), got.end());
      std::set<int64_t> want_set(want.begin(), want.end());
      EXPECT_EQ(got_set.size(), got.size()) << "duplicates";
      EXPECT_EQ(got_set, want_set);
    }
    EXPECT_EQ(paged.size(), reference.size());
    if (step % 125 == 0) {
      IOLAP_ASSERT_OK_AND_ASSIGN(bool ok, paged.CheckInvariants());
      ASSERT_TRUE(ok) << "at step " << step;
    }
  }
  IOLAP_ASSERT_OK_AND_ASSIGN(bool ok, paged.CheckInvariants());
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndFanouts, PagedRTreeDifferential,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(4, 16, 0 /* full page */)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PagedRTreeTest, PageReuseAfterHeavyDeletion) {
  StorageEnv env(MakeTempDir(), 16);
  IOLAP_ASSERT_OK_AND_ASSIGN(
      PagedRTree tree,
      PagedRTree::Create(&env.disk(), &env.pool(), 2, /*max_entries=*/4));
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 150; ++i) {
      IOLAP_ASSERT_OK(tree.Insert(MakeRect2(i, round, i + 1, round + 1), i));
    }
    for (int i = 0; i < 150; ++i) {
      bool removed = false;
      IOLAP_ASSERT_OK(
          tree.Remove(MakeRect2(i, round, i + 1, round + 1), i, &removed));
      EXPECT_TRUE(removed);
    }
    EXPECT_EQ(tree.size(), 0);
    IOLAP_ASSERT_OK_AND_ASSIGN(bool ok, tree.CheckInvariants());
    EXPECT_TRUE(ok);
  }
  // Freed pages are recycled: the file stays bounded across rounds.
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t pages,
                             env.disk().SizeInPages(0 /* first file */));
  EXPECT_LT(pages, 200);
}

}  // namespace
}  // namespace iolap
