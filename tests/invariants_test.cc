// Cross-cutting invariant and integration tests: conservation laws of the
// Extended Database, component census vs a brute-force reference, window
// bounds, and the Transitive algorithm's external (large-component) path.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "graph/union_find.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

std::vector<FactRecord> ReadFacts(StorageEnv& env,
                                  const TypedFile<FactRecord>& facts) {
  std::vector<FactRecord> out;
  auto cursor = facts.Scan(env.pool());
  FactRecord f;
  while (!cursor.done()) {
    EXPECT_TRUE(cursor.Next(&f).ok());
    out.push_back(f);
  }
  return out;
}

// Brute-force connected components of the allocation graph: nodes are the
// distinct precise cells plus the imprecise facts; edges join a fact to
// every cell inside its region.
struct ReferenceComponents {
  int64_t num_components = 0;       // components containing >= 1 fact
  int64_t largest = 0;              // in tuples (cells + facts)
  int64_t singleton_cells = 0;
  std::multiset<int64_t> sizes;
};

ReferenceComponents BruteForceComponents(const StarSchema& schema,
                                         const std::vector<FactRecord>& facts) {
  const int k = schema.num_dims();
  using Cell = std::array<int32_t, kMaxDims>;
  std::map<Cell, int> cell_ids;
  std::vector<const FactRecord*> imprecise;
  for (const FactRecord& f : facts) {
    if (f.IsPrecise(k)) {
      Cell c{};
      for (int d = 0; d < k; ++d) c[d] = schema.dim(d).leaf_begin(f.node[d]);
      cell_ids.emplace(c, static_cast<int>(cell_ids.size()));
    } else {
      imprecise.push_back(&f);
    }
  }
  UnionFind uf(static_cast<int32_t>(cell_ids.size() + imprecise.size()));
  std::vector<bool> fact_connected(imprecise.size(), false);
  std::vector<bool> cell_connected(cell_ids.size(), false);
  for (size_t i = 0; i < imprecise.size(); ++i) {
    int32_t fact_node = static_cast<int32_t>(cell_ids.size() + i);
    for (const auto& [cell, id] : cell_ids) {
      bool inside = true;
      for (int d = 0; d < k && inside; ++d) {
        inside = schema.dim(d).Covers(imprecise[i]->node[d], cell[d]);
      }
      if (inside) {
        uf.Union(fact_node, id);
        fact_connected[i] = true;
        cell_connected[id] = true;
      }
    }
  }
  std::map<int32_t, int64_t> size_of;
  for (const auto& [cell, id] : cell_ids) {
    if (cell_connected[id]) ++size_of[uf.Find(id)];
  }
  for (size_t i = 0; i < imprecise.size(); ++i) {
    if (fact_connected[i]) {
      ++size_of[uf.Find(static_cast<int32_t>(cell_ids.size() + i))];
    }
  }
  ReferenceComponents out;
  out.num_components = static_cast<int64_t>(size_of.size());
  for (const auto& [root, size] : size_of) {
    out.largest = std::max(out.largest, size);
    out.sizes.insert(size);
  }
  for (const auto& [cell, id] : cell_ids) {
    if (!cell_connected[id]) ++out.singleton_cells;
  }
  return out;
}

StarSchema SmallSchema() {
  std::vector<Hierarchy> dims;
  auto d0 = HierarchyBuilder::Uniform("D0", {3, 4});
  auto d1 = HierarchyBuilder::Uniform("D1", {4, 3});
  EXPECT_TRUE(d0.ok() && d1.ok());
  dims.push_back(std::move(d0).value());
  dims.push_back(std::move(d1).value());
  auto s = StarSchema::Create(std::move(dims));
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST(ComponentCensusTest, MatchesBruteForceOnRandomData) {
  StarSchema schema = SmallSchema();
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    StorageEnv env(MakeTempDir(), 64);
    DatasetSpec spec;
    spec.num_facts = 300;
    spec.imprecise_fraction = 0.4;
    spec.allow_all = seed % 2 == 0;
    spec.seed = seed;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
    std::vector<FactRecord> raw = ReadFacts(env, facts);
    ReferenceComponents want = BruteForceComponents(schema, raw);

    AllocationOptions options;
    options.algorithm = AlgorithmKind::kTransitive;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                               Allocator::Run(env, schema, &facts, options));
    EXPECT_EQ(result.components.num_components, want.num_components)
        << "seed " << seed;
    EXPECT_EQ(result.components.largest_component, want.largest)
        << "seed " << seed;
    EXPECT_EQ(result.components.num_singleton_cells, want.singleton_cells)
        << "seed " << seed;
  }
}

TEST(ConservationTest, AllocatedMassEqualsFactMass) {
  StarSchema schema = SmallSchema();
  StorageEnv env(MakeTempDir(), 64);
  DatasetSpec spec;
  spec.num_facts = 500;
  spec.imprecise_fraction = 0.5;
  spec.seed = 6;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  std::vector<FactRecord> raw = ReadFacts(env, facts);

  AllocationOptions options;
  options.algorithm = AlgorithmKind::kBlock;
  options.epsilon = 1e-8;
  options.max_iterations = 300;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));

  std::map<FactId, double> weight_sum;
  double measure_mass = 0;
  auto cursor = result.edb.Scan(env.pool());
  EdbRecord rec;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&rec));
    weight_sum[rec.fact_id] += rec.weight;
    measure_mass += rec.weight * rec.measure;
  }
  // Every allocatable fact contributes exactly its measure once.
  double expected_mass = 0;
  int64_t allocatable = 0;
  for (const FactRecord& f : raw) {
    auto it = weight_sum.find(f.fact_id);
    if (it != weight_sum.end()) {
      EXPECT_NEAR(it->second, 1.0, 1e-9) << "fact " << f.fact_id;
      expected_mass += f.measure;
      ++allocatable;
    }
  }
  EXPECT_NEAR(measure_mass, expected_mass, 1e-6);
  EXPECT_EQ(allocatable + result.unallocatable_facts,
            static_cast<int64_t>(raw.size()));
}

TEST(LargeComponentTest, ExternalPathKicksInAndMatchesBasic) {
  // Craft a dataset whose single giant component exceeds a tiny buffer:
  // ALL-in-D0 facts connect every D1 slice.
  StarSchema schema = SmallSchema();
  std::vector<FactRecord> raw;
  Rng rng(3);
  int64_t id = 1;
  // Precise facts covering every cell (144 cells).
  for (int32_t a = 0; a < schema.dim(0).num_leaves(); ++a) {
    for (int32_t b = 0; b < schema.dim(1).num_leaves(); ++b) {
      FactRecord f;
      f.fact_id = id++;
      f.measure = 1 + rng.NextDouble();
      f.node[0] = schema.dim(0).leaf_node(a);
      f.node[1] = schema.dim(1).leaf_node(b);
      f.level[0] = f.level[1] = 1;
      raw.push_back(f);
    }
  }
  // ALL x leaf facts tie all rows within a column; leaf x ALL facts tie
  // the columns together, giving one giant component.
  for (int32_t b = 0; b < schema.dim(1).num_leaves(); ++b) {
    FactRecord f;
    f.fact_id = id++;
    f.measure = 2;
    f.node[0] = schema.dim(0).root();
    f.level[0] = static_cast<uint8_t>(schema.dim(0).num_levels());
    f.node[1] = schema.dim(1).leaf_node(b);
    f.level[1] = 1;
    raw.push_back(f);
    for (int extra = 0; extra < 20; ++extra) {  // inflate the component
      FactRecord g = f;
      g.fact_id = id++;
      g.measure = 1 + rng.NextDouble();
      raw.push_back(g);
    }
  }
  for (int32_t a = 0; a < schema.dim(0).num_leaves(); ++a) {
    FactRecord f;
    f.fact_id = id++;
    f.measure = 3;
    f.node[0] = schema.dim(0).leaf_node(a);
    f.level[0] = 1;
    f.node[1] = schema.dim(1).root();
    f.level[1] = static_cast<uint8_t>(schema.dim(1).num_levels());
    raw.push_back(f);
  }

  auto write_facts = [&](StorageEnv& env) {
    auto file = TypedFile<FactRecord>::Create(env.disk(), "facts");
    EXPECT_TRUE(file.ok());
    auto appender = file->MakeAppender(env.pool());
    for (const FactRecord& f : raw) EXPECT_TRUE(appender.Append(f).ok());
    appender.Close();
    return std::move(file).value();
  };

  // Reference: Basic with a huge buffer.
  std::map<std::pair<FactId, int64_t>, double> reference;
  {
    StorageEnv env(MakeTempDir(), 512);
    auto facts = write_facts(env);
    AllocationOptions options;
    options.algorithm = AlgorithmKind::kBasic;
    options.epsilon = 0;
    options.max_iterations = 6;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult r,
                               Allocator::Run(env, schema, &facts, options));
    auto cursor = r.edb.Scan(env.pool());
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&rec));
      reference[{rec.fact_id, rec.leaf[0] * 1000 + rec.leaf[1]}] = rec.weight;
    }
  }
  // Transitive with a tiny buffer must take the external component path.
  {
    StorageEnv env(MakeTempDir(), 6);
    auto facts = write_facts(env);
    AllocationOptions options;
    options.algorithm = AlgorithmKind::kTransitive;
    options.epsilon = 0;
    options.max_iterations = 6;
    options.early_convergence = false;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult r,
                               Allocator::Run(env, schema, &facts, options));
    EXPECT_GE(r.components.num_large_components, 1);
    auto cursor = r.edb.Scan(env.pool());
    EdbRecord rec;
    int64_t rows = 0;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&rec));
      auto it = reference.find({rec.fact_id, rec.leaf[0] * 1000 + rec.leaf[1]});
      ASSERT_NE(it, reference.end());
      EXPECT_NEAR(rec.weight, it->second, 1e-9);
      ++rows;
    }
    EXPECT_EQ(rows, static_cast<int64_t>(reference.size()));
  }
}

TEST(ConvergenceTest, FinalEpsBelowThresholdWhenConverged) {
  StarSchema schema = SmallSchema();
  StorageEnv env(MakeTempDir(), 128);
  DatasetSpec spec;
  spec.num_facts = 400;
  spec.imprecise_fraction = 0.4;
  spec.seed = 8;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  AllocationOptions options;
  options.algorithm = AlgorithmKind::kBlock;
  options.epsilon = 0.01;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  EXPECT_LT(result.final_eps, 0.01);
  EXPECT_GE(result.iterations, 1);
  EXPECT_LT(result.iterations, options.max_iterations);
}

TEST(ConvergenceTest, TighterEpsilonNeverFewerIterations) {
  StarSchema schema = SmallSchema();
  int prev_iterations = 0;
  for (double eps : {0.5, 0.05, 0.005, 0.0005}) {
    StorageEnv env(MakeTempDir(), 128);
    DatasetSpec spec;
    spec.num_facts = 400;
    spec.imprecise_fraction = 0.4;
    spec.seed = 8;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
    AllocationOptions options;
    options.algorithm = AlgorithmKind::kBlock;
    options.epsilon = eps;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                               Allocator::Run(env, schema, &facts, options));
    EXPECT_GE(result.iterations, prev_iterations);
    prev_iterations = result.iterations;
  }
}

}  // namespace
}  // namespace iolap
