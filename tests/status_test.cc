#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace iolap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailInner() { return Status::OutOfRange("inner"); }

Status Outer() {
  IOLAP_RETURN_IF_ERROR(FailInner());
  return Status::Internal("unreached");
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Outer().code(), StatusCode::kOutOfRange);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  IOLAP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(MacrosTest, AssignOrReturn) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace iolap
