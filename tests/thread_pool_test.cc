#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/parallel_scheduler.h"

namespace iolap {
namespace {

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  std::vector<TaskFuture> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i, &order, &mu]() {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      return Status::Ok();
    }));
  }
  for (TaskFuture& f : futures) EXPECT_TRUE(f.Wait().ok());
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesTaskStatus) {
  ThreadPool pool(4);
  TaskFuture ok = pool.Submit([] { return Status::Ok(); });
  TaskFuture bad =
      pool.Submit([] { return Status::Internal("deliberate failure"); });
  EXPECT_TRUE(ok.Wait().ok());
  Status status = bad.Wait();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // Wait is idempotent: all copies share the completion state.
  EXPECT_EQ(bad.Wait().code(), StatusCode::kInternal);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> completed{0};
  std::vector<TaskFuture> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([&completed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
        return Status::Ok();
      }));
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 64);
  for (TaskFuture& f : futures) EXPECT_TRUE(f.Wait().ok());
}

TEST(ThreadPool, WaitOnInvalidFutureFailsCleanly) {
  TaskFuture invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(invalid.Wait().code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  TaskFuture f = pool.Submit([] { return Status::Ok(); });
  EXPECT_TRUE(f.Wait().ok());
}

// ---------------------------------------------------------------------------
// ParallelScheduler

TEST(ParallelScheduler, EmitsInInputOrderDespiteConcurrentRuns) {
  ThreadPool pool(4);
  ParallelScheduler scheduler(&pool, /*max_inflight_cost=*/1 << 20);
  std::vector<int> emitted;
  std::vector<ScheduledUnit> units;
  for (int i = 0; i < 50; ++i) {
    ScheduledUnit unit;
    unit.cost = 1;
    unit.run = [i]() {
      // Reverse-staggered sleeps so later units finish compute first.
      std::this_thread::sleep_for(std::chrono::microseconds((50 - i) * 20));
      return Status::Ok();
    };
    unit.emit = [i, &emitted]() {
      emitted.push_back(i);
      return Status::Ok();
    };
    units.push_back(std::move(unit));
  }
  EXPECT_TRUE(scheduler.Execute(units).ok());
  ASSERT_EQ(emitted.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(emitted[i], i);
}

TEST(ParallelScheduler, InlineUnitsAreBarriers) {
  ThreadPool pool(4);
  ParallelScheduler scheduler(&pool, 1 << 20);
  std::atomic<int> running{0};
  std::atomic<bool> overlap_with_inline{false};
  std::vector<int> emitted;
  std::vector<ScheduledUnit> units;
  auto add_pooled = [&](int id) {
    ScheduledUnit unit;
    unit.run = [&running]() {
      running.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      running.fetch_sub(1);
      return Status::Ok();
    };
    unit.emit = [id, &emitted]() {
      emitted.push_back(id);
      return Status::Ok();
    };
    units.push_back(std::move(unit));
  };
  for (int i = 0; i < 8; ++i) add_pooled(i);
  ScheduledUnit inline_unit;
  inline_unit.run_inline = true;
  inline_unit.run = [&running, &overlap_with_inline, &emitted]() {
    if (running.load() != 0) overlap_with_inline.store(true);
    emitted.push_back(100);
    return Status::Ok();
  };
  units.push_back(std::move(inline_unit));
  for (int i = 9; i < 17; ++i) add_pooled(i);

  EXPECT_TRUE(scheduler.Execute(units).ok());
  EXPECT_FALSE(overlap_with_inline.load())
      << "a pooled unit ran concurrently with the inline barrier";
  ASSERT_EQ(emitted.size(), 17u);
  EXPECT_EQ(emitted[8], 100);  // barrier emitted in position
}

TEST(ParallelScheduler, ReturnsFirstErrorInUnitOrder) {
  ThreadPool pool(4);
  ParallelScheduler scheduler(&pool, 1 << 20);
  std::vector<int> emitted;
  std::vector<ScheduledUnit> units;
  for (int i = 0; i < 10; ++i) {
    ScheduledUnit unit;
    unit.run = [i]() {
      if (i == 3) return Status::IoError("unit 3 failed");
      if (i == 7) return Status::Internal("unit 7 failed");
      return Status::Ok();
    };
    unit.emit = [i, &emitted]() {
      emitted.push_back(i);
      return Status::Ok();
    };
    units.push_back(std::move(unit));
  }
  Status status = scheduler.Execute(units);
  EXPECT_EQ(status.code(), StatusCode::kIoError);  // unit 3, not unit 7
  ASSERT_EQ(emitted.size(), 3u);  // 0, 1, 2 emitted; nothing after the error
}

TEST(ParallelScheduler, OversizeUnitStillAdmittedWhenWindowEmpty) {
  ThreadPool pool(2);
  ParallelScheduler scheduler(&pool, /*max_inflight_cost=*/10);
  std::vector<int> emitted;
  std::vector<ScheduledUnit> units;
  for (int i = 0; i < 6; ++i) {
    ScheduledUnit unit;
    unit.cost = 1000;  // every unit alone exceeds the window
    unit.run = []() { return Status::Ok(); };
    unit.emit = [i, &emitted]() {
      emitted.push_back(i);
      return Status::Ok();
    };
    units.push_back(std::move(unit));
  }
  EXPECT_TRUE(scheduler.Execute(units).ok());
  ASSERT_EQ(emitted.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(emitted[i], i);
}

TEST(ParallelScheduler, NullPoolRunsEverythingInline) {
  ParallelScheduler scheduler(nullptr, 1);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<int> emitted;
  bool wrong_thread = false;
  std::vector<ScheduledUnit> units;
  for (int i = 0; i < 5; ++i) {
    ScheduledUnit unit;
    unit.run = [caller, &wrong_thread]() {
      if (std::this_thread::get_id() != caller) wrong_thread = true;
      return Status::Ok();
    };
    unit.emit = [i, &emitted]() {
      emitted.push_back(i);
      return Status::Ok();
    };
    units.push_back(std::move(unit));
  }
  EXPECT_TRUE(scheduler.Execute(units).ok());
  EXPECT_FALSE(wrong_thread);
  ASSERT_EQ(emitted.size(), 5u);
}

}  // namespace
}  // namespace iolap
