#include "storage/async_io.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/access_plan.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

// Collects backend completions so tests can block until a submitted batch
// has fully resolved.
struct CompletionLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<uint64_t, bool>> done;

  AsyncReader::Completion Callback() {
    return [this](uint64_t tag, bool ok) {
      {
        std::lock_guard<std::mutex> lock(mu);
        done.emplace_back(tag, ok);
      }
      cv.notify_all();
    };
  }
  void WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.size() >= n; });
  }
};

class AsyncIoTest : public ::testing::Test {
 protected:
  AsyncIoTest() : disk_(MakeTempDir()) {}

  FileId NewFileWithPages(int n) {
    auto file = disk_.CreateFile("t");
    EXPECT_TRUE(file.ok());
    std::byte page[kPageSize];
    for (int i = 0; i < n; ++i) {
      std::memset(page, i, kPageSize);
      EXPECT_TRUE(disk_.WritePage(*file, i, page).ok());
    }
    return *file;
  }

  // Submits three ranges through `kind` and verifies bytes, completion
  // count, and that the reads were charged as prefetch I/O, not demand.
  void RunBackendRoundTrip(AsyncBackendKind kind) {
    FileId f = NewFileWithPages(16);
    disk_.ResetStats();
    CompletionLog log;
    std::unique_ptr<AsyncReader> reader =
        CreateAsyncReader(kind, &disk_, log.Callback());
    if (reader == nullptr) GTEST_SKIP() << "backend unavailable";

    std::vector<std::byte> a(4 * kPageSize), b(kPageSize), c(8 * kPageSize);
    IOLAP_ASSERT_OK(reader->Submit({f, 0, 4, a.data(), 1}));
    IOLAP_ASSERT_OK(reader->Submit({f, 7, 1, b.data(), 2}));
    IOLAP_ASSERT_OK(reader->Submit({f, 8, 8, c.data(), 3}));
    log.WaitFor(3);

    for (const auto& [tag, ok] : log.done) EXPECT_TRUE(ok) << "tag " << tag;
    for (int p = 0; p < 4; ++p) {
      EXPECT_EQ(a[p * kPageSize], std::byte(p)) << "page " << p;
    }
    EXPECT_EQ(b[0], std::byte(7));
    for (int p = 0; p < 8; ++p) {
      EXPECT_EQ(c[p * kPageSize], std::byte(8 + p)) << "page " << 8 + p;
    }
    EXPECT_EQ(disk_.stats().prefetch_reads, 13);
    EXPECT_EQ(disk_.stats().page_reads, 0);
  }

  DiskManager disk_;
};

TEST(AsyncBackendTest, ParseAndNameRoundTrip) {
  AsyncBackendKind kind;
  ASSERT_TRUE(ParseAsyncBackend("off", &kind));
  EXPECT_EQ(kind, AsyncBackendKind::kOff);
  ASSERT_TRUE(ParseAsyncBackend("auto", &kind));
  EXPECT_EQ(kind, AsyncBackendKind::kAuto);
  ASSERT_TRUE(ParseAsyncBackend("uring", &kind));
  EXPECT_EQ(kind, AsyncBackendKind::kUring);
  ASSERT_TRUE(ParseAsyncBackend("pread", &kind));
  EXPECT_EQ(kind, AsyncBackendKind::kPread);
  EXPECT_FALSE(ParseAsyncBackend("aio", &kind));
  EXPECT_STREQ(AsyncBackendName(AsyncBackendKind::kPread), "pread");
  EXPECT_STREQ(AsyncBackendName(AsyncBackendKind::kUring), "uring");
}

TEST(AsyncBackendTest, EnvOverrideWinsResolution) {
  ASSERT_EQ(setenv("IOLAP_IO_BACKEND", "pread", 1), 0);
  EXPECT_EQ(ResolveAsyncBackend(AsyncBackendKind::kAuto),
            AsyncBackendKind::kPread);
  EXPECT_EQ(ResolveAsyncBackend(AsyncBackendKind::kUring),
            AsyncBackendKind::kPread);
  ASSERT_EQ(setenv("IOLAP_IO_BACKEND", "off", 1), 0);
  EXPECT_EQ(ResolveAsyncBackend(AsyncBackendKind::kAuto),
            AsyncBackendKind::kOff);
  ASSERT_EQ(unsetenv("IOLAP_IO_BACKEND"), 0);
  // Without the override, explicit kOff / kPread resolve to themselves.
  EXPECT_EQ(ResolveAsyncBackend(AsyncBackendKind::kOff),
            AsyncBackendKind::kOff);
  EXPECT_EQ(ResolveAsyncBackend(AsyncBackendKind::kPread),
            AsyncBackendKind::kPread);
}

TEST_F(AsyncIoTest, PreadBackendRoundTrip) {
  RunBackendRoundTrip(AsyncBackendKind::kPread);
}

TEST_F(AsyncIoTest, UringBackendRoundTrip) {
  if (!IoUringSupported()) GTEST_SKIP() << "io_uring not supported here";
  RunBackendRoundTrip(AsyncBackendKind::kUring);
}

TEST_F(AsyncIoTest, SubmitPastEofFailsOrCompletesWithError) {
  FileId f = NewFileWithPages(2);
  CompletionLog log;
  auto reader =
      CreateAsyncReader(AsyncBackendKind::kPread, &disk_, log.Callback());
  ASSERT_NE(reader, nullptr);
  std::vector<std::byte> buf(4 * kPageSize);
  // Reading past EOF must never report a successful completion.
  Status s = reader->Submit({f, 0, 4, buf.data(), 9});
  if (s.ok()) {
    log.WaitFor(1);
    EXPECT_FALSE(log.done[0].second);
  }
}

// ---------------------------------------------------------------------------
// Plan-driven pool behaviour. Prefetch timing is nondeterministic, so these
// tests assert only timing-independent invariants: returned bytes, demand
// I/O counts (pinned by the cost model), and physical-read upper bounds.

class PlannedPoolTest : public AsyncIoTest {
 protected:
  // Sequentially pins every page of `f` (npages), checks contents, returns
  // the demand page_reads the scan charged.
  int64_t ScanAll(BufferPool& pool, FileId f, int npages) {
    IoStats before = disk_.stats();
    for (int p = 0; p < npages; ++p) {
      auto guard = pool.Pin(f, p);
      EXPECT_TRUE(guard.ok()) << guard.status().ToString();
      if (guard.ok()) EXPECT_EQ(guard->data()[0], std::byte(p)) << p;
    }
    return disk_.stats().page_reads - before.page_reads;
  }
};

TEST_F(PlannedPoolTest, PlannedScanChargesSameDemandIoAsSerial) {
  constexpr int kPages = 64;
  FileId f = NewFileWithPages(kPages);
  int64_t serial_reads;
  {
    BufferPool pool(&disk_, 8);
    serial_reads = ScanAll(pool, f, kPages);
  }
  EXPECT_EQ(serial_reads, kPages);

  for (int capacity : {8, 96}) {
    BufferPool pool(&disk_, capacity);
    pool.ConfigureReadAhead(8);
    pool.ConfigurePlanReadAhead(AsyncBackendKind::kPread, 4);
    AccessPlan plan;
    plan.AddRange(f, 0, kPages);
    IoStats before = disk_.stats();
    {
      BufferPool::PlannedAccess planned = pool.BeginPlannedAccess(plan);
      EXPECT_TRUE(planned.active());
      EXPECT_EQ(ScanAll(pool, f, kPages), kPages)
          << "demand I/O must match the serial scan (capacity " << capacity
          << ")";
    }
    IoStats delta = disk_.stats() - before;
    // Every planned page is submitted at most once.
    EXPECT_LE(delta.prefetch_reads, kPages);
  }
}

TEST_F(PlannedPoolTest, SyncModeServesPlannedChunksInline) {
  // Synchronous plan mode (single-hardware-thread hosts, forced here via
  // the test hook): no async backend runs; the pin path pulls each chunk
  // in with one batched prefetch-class read and parks the tail. Demand
  // charges must still match the serial scan page for page, and every
  // physical read must be prefetch-class and consumed.
  constexpr int kPages = 64;
  FileId f = NewFileWithPages(kPages);
  for (int capacity : {8, 96}) {
    BufferPool pool(&disk_, capacity);
    pool.ConfigureReadAhead(8);
    pool.ConfigurePlanReadAhead(AsyncBackendKind::kAuto, 4);
    pool.SetPlanSyncForTest(true);
    AccessPlan plan;
    plan.AddRange(f, 0, kPages);
    IoStats before = disk_.stats();
    {
      BufferPool::PlannedAccess planned = pool.BeginPlannedAccess(plan);
      ASSERT_TRUE(planned.active());
      EXPECT_EQ(ScanAll(pool, f, kPages), kPages)
          << "demand I/O must match the serial scan (capacity " << capacity
          << ")";
    }
    IoStats delta = disk_.stats() - before;
    EXPECT_EQ(delta.prefetch_reads, kPages);
    EXPECT_EQ(pool.stats().prefetch_hits, kPages);
    EXPECT_EQ(pool.stats().prefetch_wasted, 0);
  }
}

TEST_F(PlannedPoolTest, OffBackendMakesPlansInert) {
  constexpr int kPages = 16;
  FileId f = NewFileWithPages(kPages);
  BufferPool pool(&disk_, 8);
  pool.ConfigurePlanReadAhead(AsyncBackendKind::kOff, 4);
  AccessPlan plan;
  plan.AddRange(f, 0, kPages);
  disk_.ResetStats();
  BufferPool::PlannedAccess planned = pool.BeginPlannedAccess(plan);
  EXPECT_FALSE(planned.active());
  EXPECT_EQ(ScanAll(pool, f, kPages), kPages);
  EXPECT_EQ(disk_.stats().prefetch_reads, 0);
}

TEST_F(PlannedPoolTest, EarlyEndAndDestructionAreSafe) {
  constexpr int kPages = 64;
  FileId f = NewFileWithPages(kPages);
  BufferPool pool(&disk_, 16);
  pool.ConfigureReadAhead(8);
  pool.ConfigurePlanReadAhead(AsyncBackendKind::kPread, 4);
  AccessPlan plan;
  plan.AddRange(f, 0, kPages);
  disk_.ResetStats();
  {
    BufferPool::PlannedAccess planned = pool.BeginPlannedAccess(plan);
    EXPECT_EQ(ScanAll(pool, f, 4), 4);
    // Guard destructor ends the plan with most of it unconsumed.
  }
  // A second plan on the same pool starts cleanly after the first ended.
  {
    BufferPool::PlannedAccess planned = pool.BeginPlannedAccess(plan);
    EXPECT_TRUE(planned.active());
  }
  // Pool destructor drains any still-in-flight chunks.
}

TEST_F(PlannedPoolTest, EvictFileMidPlanDropsPlanState) {
  constexpr int kPages = 32;
  FileId f = NewFileWithPages(kPages);
  BufferPool pool(&disk_, 16);
  pool.ConfigureReadAhead(8);
  pool.ConfigurePlanReadAhead(AsyncBackendKind::kPread, 4);
  AccessPlan plan;
  plan.AddRange(f, 0, kPages);
  BufferPool::PlannedAccess planned = pool.BeginPlannedAccess(plan);
  EXPECT_EQ(ScanAll(pool, f, 8), 8);
  IOLAP_ASSERT_OK(pool.EvictFile(f));
  // Post-eviction pins demand-read and still see correct bytes.
  EXPECT_EQ(ScanAll(pool, f, kPages), kPages);
}

TEST_F(PlannedPoolTest, PlanSuppressesHeuristicHintsForPlannedFile) {
  constexpr int kPages = 16;
  FileId f = NewFileWithPages(kPages);
  FileId other = NewFileWithPages(4);
  BufferPool pool(&disk_, 32);
  pool.ConfigureReadAhead(4);
  pool.ConfigurePlanReadAhead(AsyncBackendKind::kPread, 4);
  AccessPlan plan;
  plan.AddRange(f, 0, kPages);
  BufferPool::PlannedAccess planned = pool.BeginPlannedAccess(plan);
  ASSERT_TRUE(planned.active());
  PoolStats before = pool.stats();
  pool.Prefetch(f, 0, 4);  // heuristic hint for a planned file: dropped
  EXPECT_EQ((pool.stats() - before).prefetch_gated, 1);
  pool.Prefetch(other, 0, 4);  // unplanned file: still accepted
  EXPECT_EQ((pool.stats() - before).prefetch_gated, 1);
  pool.DrainPrefetches();
}

}  // namespace
}  // namespace iolap
