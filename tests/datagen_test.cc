#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "alloc/allocator.h"

#include "common/result.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

TEST(Table2Test, AutomotiveSchemaMatchesPaperFanouts) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  ASSERT_EQ(schema.num_dims(), 4);
  // SR-AREA: ALL(1) -> Area(30) -> Sub-Area(694)
  EXPECT_EQ(schema.dim(0).num_levels(), 3);
  EXPECT_EQ(schema.dim(0).num_nodes_at_level(2), 30);
  EXPECT_EQ(schema.dim(0).num_leaves(), 694);
  // BRAND: Make(14) -> Model(203)
  EXPECT_EQ(schema.dim(1).num_nodes_at_level(2), 14);
  EXPECT_EQ(schema.dim(1).num_leaves(), 203);
  // TIME: Quarter(5) -> Month(15) -> Week(59)
  EXPECT_EQ(schema.dim(2).num_levels(), 4);
  EXPECT_EQ(schema.dim(2).num_nodes_at_level(3), 5);
  EXPECT_EQ(schema.dim(2).num_nodes_at_level(2), 15);
  EXPECT_EQ(schema.dim(2).num_leaves(), 59);
  // LOCATION: Region(10) -> State(51) -> City(900)
  EXPECT_EQ(schema.dim(3).num_levels(), 4);
  EXPECT_EQ(schema.dim(3).num_nodes_at_level(3), 10);
  EXPECT_EQ(schema.dim(3).num_nodes_at_level(2), 51);
  EXPECT_EQ(schema.dim(3).num_leaves(), 900);
}

TEST(Table2Test, LeveledHierarchyDistributesEvenly) {
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy h,
                             BuildLeveledHierarchy("H", {3, 10}));
  // 10 leaves over 3 parents: 4/3/3.
  const auto& parents = h.nodes_at_level(2);
  ASSERT_EQ(parents.size(), 3u);
  EXPECT_EQ(h.region_width(parents[0]), 4);
  EXPECT_EQ(h.region_width(parents[1]), 3);
  EXPECT_EQ(h.region_width(parents[2]), 3);
}

TEST(Table2Test, RejectsShrinkingLevels) {
  EXPECT_FALSE(BuildLeveledHierarchy("Bad", {10, 5}).ok());
}

TEST(PaperExampleTest, FactsMatchTable1) {
  StorageEnv env(MakeTempDir(), 16);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
  ASSERT_EQ(facts.size(), 14);
  // Spot-check p6 = (MA, Sedan, 100) with levels (1, 2).
  IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord p6, facts.Get(env.pool(), 5));
  EXPECT_EQ(p6.fact_id, 6);
  EXPECT_EQ(p6.measure, 100);
  EXPECT_EQ(schema.dim(0).name(p6.node[0]), "MA");
  EXPECT_EQ(schema.dim(1).name(p6.node[1]), "Sedan");
  EXPECT_EQ(p6.level[0], 1);
  EXPECT_EQ(p6.level[1], 2);
  // p8 = (CA, ALL, 160) with levels (1, 3).
  IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord p8, facts.Get(env.pool(), 7));
  EXPECT_EQ(schema.dim(1).level(p8.node[1]), 3);
  EXPECT_EQ(p8.level[1], 3);
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : env_(MakeTempDir(), 512) {}
  StorageEnv env_;
};

TEST_F(GeneratorTest, CompositionMatchesSpec) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 40'000;
  spec.seed = 9;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env_, schema, spec));
  EXPECT_EQ(facts.size(), spec.num_facts);
  IOLAP_ASSERT_OK_AND_ASSIGN(FactTableStats stats,
                             AnalyzeFacts(env_, schema, facts));
  // 30% imprecise within sampling noise.
  double frac = static_cast<double>(stats.imprecise) / spec.num_facts;
  EXPECT_NEAR(frac, 0.30, 0.01);
  // Arity split 67/33/0.01.
  double one = static_cast<double>(stats.by_imprecise_dims[1]) /
               std::max<int64_t>(1, stats.imprecise);
  EXPECT_NEAR(one, 0.67, 0.02);
  EXPECT_EQ(stats.by_imprecise_dims[4], 0);  // never 4 imprecise dims
  // No ALL without allow_all: top level never used.
  for (int d = 0; d < schema.num_dims(); ++d) {
    EXPECT_EQ(stats.level_counts[d][schema.dim(d).num_levels() - 1], 0)
        << "dim " << d;
  }
}

TEST_F(GeneratorTest, AllVariantUsesAllInAtMostTwoDims) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 20'000;
  spec.allow_all = true;
  spec.all_fraction = 0.3;
  spec.seed = 10;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env_, schema, spec));
  auto cursor = facts.Scan(env_.pool());
  FactRecord f;
  int64_t with_all = 0;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&f));
    int alls = 0;
    for (int d = 0; d < schema.num_dims(); ++d) {
      if (f.level[d] == schema.dim(d).num_levels()) ++alls;
    }
    EXPECT_LE(alls, 2);
    if (alls > 0) ++with_all;
  }
  EXPECT_GT(with_all, 0);
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 2'000;
  spec.seed = 77;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto a, GenerateFacts(env_, schema, spec));
  IOLAP_ASSERT_OK_AND_ASSIGN(auto b, GenerateFacts(env_, schema, spec));
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); i += 113) {
    IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord fa, a.Get(env_.pool(), i));
    IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord fb, b.Get(env_.pool(), i));
    EXPECT_EQ(fa.measure, fb.measure);
    EXPECT_EQ(0, std::memcmp(fa.node, fb.node, sizeof(fa.node)));
  }
  DatasetSpec other = spec;
  other.seed = 78;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto c, GenerateFacts(env_, schema, other));
  bool any_diff = false;
  for (int64_t i = 0; i < c.size() && !any_diff; i += 113) {
    IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord fa, a.Get(env_.pool(), i));
    IOLAP_ASSERT_OK_AND_ASSIGN(FactRecord fc, c.Get(env_.pool(), i));
    any_diff = std::memcmp(fa.node, fc.node, sizeof(fa.node)) != 0;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(GeneratorTest, AnchoredImpreciseFactsAreAllocatable) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 5'000;
  spec.anchored = true;
  spec.seed = 12;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env_, schema, spec));
  // Every anchored imprecise region contains its anchor's precise cell, so
  // unallocatable facts must be zero after allocation.
  AllocationOptions options;
  options.algorithm = AlgorithmKind::kTransitive;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env_, schema, &facts, options));
  EXPECT_EQ(result.unallocatable_facts, 0);
}

TEST_F(GeneratorTest, MeasuresWithinRange) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  DatasetSpec spec;
  spec.num_facts = 1'000;
  spec.measure_min = 5;
  spec.measure_max = 6;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env_, schema, spec));
  auto cursor = facts.Scan(env_.pool());
  FactRecord f;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&f));
    EXPECT_GE(f.measure, 5);
    EXPECT_LT(f.measure, 6);
  }
}

TEST_F(GeneratorTest, HotspotsCreateSharedCells) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 20'000;
  spec.imprecise_fraction = 0;
  spec.seed = 4;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env_, schema, spec));
  std::set<std::array<int32_t, kMaxDims>> neighbourhoods;
  auto cursor = facts.Scan(env_.pool());
  FactRecord f;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&f));
    // Facts cluster in level-2 neighbourhoods (the hotspot model), which is
    // what makes imprecise regions chain-overlap into big components.
    std::array<int32_t, kMaxDims> hood{};
    for (int d = 0; d < schema.num_dims(); ++d) {
      hood[d] = schema.dim(d).AncestorAtLevel(f.node[d], 2);
    }
    neighbourhoods.insert(hood);
  }
  // Uniform sampling would give ~30*14*15*51 = 321k equally likely
  // neighbourhoods, i.e. nearly one per fact; hotspots collapse that to a
  // small multiple of the hotspot count.
  EXPECT_LT(neighbourhoods.size(), 0.25 * spec.num_facts);
}

}  // namespace
}  // namespace iolap
