// Empirical validation of the paper's I/O cost theorems. With the buffer
// pool much smaller than the data, measured page I/Os must track:
//   Theorem 6  (Independent): 7·T·(W·|C| + |I|)
//   Theorem 7  (Block):       3·T·(|S|·|C| + |I|)
//   Theorem 10 (Transitive):  2(|S||C|+|I|) + 5(|C|+|I|) + 3|L|(T+1)
// We assert two-sided bounds with generous slack (the pool caches some
// pages, sorts take their fast path when segments fit the budget, and our
// implementation adds a directory scan), plus the *relative* claims the
// experiments rest on.

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

struct RunOutcome {
  AllocationResult result;
  int64_t cell_pages;
  int64_t imprecise_pages;
};

RunOutcome RunAlloc(AlgorithmKind algorithm, int64_t buffer_pages, double epsilon,
               int max_iterations) {
  StorageEnv env(MakeTempDir(), buffer_pages);
  auto schema = MakeAutomotiveSchema();
  EXPECT_TRUE(schema.ok());
  DatasetSpec spec;
  spec.num_facts = 60'000;
  spec.seed = 42;
  auto facts = GenerateFacts(env, *schema, spec);
  EXPECT_TRUE(facts.ok());
  AllocationOptions options;
  options.algorithm = algorithm;
  options.epsilon = epsilon;
  options.max_iterations = max_iterations;
  auto result = Allocator::Run(env, *schema, &facts.value(), options);
  EXPECT_TRUE(result.ok()) << result.status();
  RunOutcome out{std::move(result).value(), 0, 0};
  out.cell_pages = (out.result.num_cells +
                    TypedFile<CellRecord>::kRecordsPerPage - 1) /
                   TypedFile<CellRecord>::kRecordsPerPage;
  out.imprecise_pages = (out.result.num_imprecise +
                         TypedFile<ImpreciseRecord>::kRecordsPerPage - 1) /
                        TypedFile<ImpreciseRecord>::kRecordsPerPage;
  return out;
}

constexpr int64_t kTinyBuffer = 24;  // pages; data is ~1000 pages

TEST(CostModelTest, BlockTracksTheorem7) {
  const int kIterations = 4;
  RunOutcome run = RunAlloc(AlgorithmKind::kBlock, kTinyBuffer, 0, kIterations);
  const int64_t S = run.result.num_groups;
  const int64_t predicted =
      3 * kIterations * (S * run.cell_pages + run.imprecise_pages);
  const int64_t measured = run.result.alloc_io.total();
  EXPECT_LT(measured, predicted * 2) << "S=" << S;
  EXPECT_GT(measured, predicted / 4) << "S=" << S;
}

TEST(CostModelTest, IndependentTracksTheorem6) {
  const int kIterations = 4;
  RunOutcome run =
      RunAlloc(AlgorithmKind::kIndependent, kTinyBuffer, 0, kIterations);
  const int64_t W = run.result.chain_width;
  ASSERT_GT(W, 1);
  const int64_t predicted =
      7 * kIterations * (W * run.cell_pages + run.imprecise_pages);
  const int64_t measured = run.result.alloc_io.total();
  EXPECT_LT(measured, predicted * 2) << "W=" << W;
  EXPECT_GT(measured, predicted / 4) << "W=" << W;
}

TEST(CostModelTest, IndependentCostsMoreThanBlockPerIteration) {
  const int kIterations = 3;
  RunOutcome block = RunAlloc(AlgorithmKind::kBlock, kTinyBuffer, 0, kIterations);
  RunOutcome independent =
      RunAlloc(AlgorithmKind::kIndependent, kTinyBuffer, 0, kIterations);
  // The experiments' core relative claim.
  EXPECT_GT(independent.result.alloc_io.total(),
            2 * block.result.alloc_io.total());
}

TEST(CostModelTest, TransitiveIoIsFlatInIterations) {
  // Theorem 10: with no large components, the I/O is independent of T.
  // Iterations vary via epsilon. Buffer chosen to fit the components but
  // not the dataset.
  RunOutcome few = RunAlloc(AlgorithmKind::kTransitive, 96, 0.1, 100);
  RunOutcome many = RunAlloc(AlgorithmKind::kTransitive, 96, 0.0005, 100);
  ASSERT_GT(many.result.components.max_component_iterations,
            few.result.components.max_component_iterations);
  EXPECT_EQ(many.result.components.num_large_components, 0);
  double ratio = static_cast<double>(many.result.alloc_io.total()) /
                 static_cast<double>(few.result.alloc_io.total());
  EXPECT_LT(ratio, 1.15) << few.result.alloc_io.total() << " -> "
                         << many.result.alloc_io.total();
}

TEST(CostModelTest, BlockIoGrowsLinearlyInIterations) {
  RunOutcome few = RunAlloc(AlgorithmKind::kBlock, kTinyBuffer, 0, 2);
  RunOutcome many = RunAlloc(AlgorithmKind::kBlock, kTinyBuffer, 0, 6);
  double ratio = static_cast<double>(many.result.alloc_io.total()) /
                 static_cast<double>(few.result.alloc_io.total());
  EXPECT_GT(ratio, 2.0);  // ~3x expected for 3x the iterations
  EXPECT_LT(ratio, 4.0);
  // The per-iteration trace exists and sums to the total.
  ASSERT_EQ(many.result.per_iteration.size(), 6u);
  int64_t sum = 0;
  for (const IterationStats& it : many.result.per_iteration) {
    sum += it.io.total();
  }
  EXPECT_EQ(sum, many.result.alloc_io.total());
}

TEST(CostModelTest, MoreGroupsMeansMoreCellScans) {
  // Shrinking the buffer raises |S| and with it Block's cell-scan I/O.
  RunOutcome small = RunAlloc(AlgorithmKind::kBlock, 12, 0, 3);
  RunOutcome large = RunAlloc(AlgorithmKind::kBlock, 512, 0, 3);
  EXPECT_GE(small.result.num_groups, large.result.num_groups);
  if (small.result.num_groups > large.result.num_groups) {
    EXPECT_GT(small.result.alloc_io.total(), large.result.alloc_io.total());
  }
}

}  // namespace
}  // namespace iolap
