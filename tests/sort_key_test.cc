#include "model/sort_key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

StarSchema MakeSchema() {
  std::vector<Hierarchy> dims;
  auto d0 = HierarchyBuilder::Uniform("D0", {3, 2});
  auto d1 = HierarchyBuilder::Uniform("D1", {2, 2, 2});
  EXPECT_TRUE(d0.ok());
  EXPECT_TRUE(d1.ok());
  dims.push_back(std::move(d0).value());
  dims.push_back(std::move(d1).value());
  auto schema = StarSchema::Create(std::move(dims));
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

CellRecord Cell(int32_t a, int32_t b) {
  CellRecord c;
  c.leaf[0] = a;
  c.leaf[1] = b;
  return c;
}

ImpreciseRecord Region(const StarSchema& schema, NodeId n0, NodeId n1) {
  ImpreciseRecord r;
  r.node[0] = n0;
  r.node[1] = n1;
  r.level[0] = static_cast<uint8_t>(schema.dim(0).level(n0));
  r.level[1] = static_cast<uint8_t>(schema.dim(1).level(n1));
  return r;
}

TEST(SortSpecTest, CanonicalIsLeafLex) {
  StarSchema schema = MakeSchema();
  SpecComparator cmp(&schema, SortSpec::Canonical(schema));
  EXPECT_TRUE(cmp.CellLess(Cell(0, 5), Cell(1, 0)));
  EXPECT_TRUE(cmp.CellLess(Cell(1, 0), Cell(1, 1)));
  EXPECT_FALSE(cmp.CellLess(Cell(1, 1), Cell(1, 1)));
  EXPECT_FALSE(cmp.CellLess(Cell(2, 0), Cell(1, 7)));
}

TEST(SortSpecTest, ChainSpecEmitsTopDownTerms) {
  StarSchema schema = MakeSchema();
  // Chain: <2,3> above <1,2> (D0: 3 levels, D1: 4 levels).
  std::vector<LevelVector> descending;
  LevelVector top{};
  top.fill(1);
  top[0] = 2;
  top[1] = 3;
  LevelVector bottom{};
  bottom.fill(1);
  bottom[0] = 1;
  bottom[1] = 2;
  descending.push_back(top);
  descending.push_back(bottom);
  SortSpec spec = SortSpec::ForChain(schema, descending);
  // Expect terms (0,2),(1,3) then (0,1),(1,2) then (1,1).
  ASSERT_EQ(spec.terms().size(), 5u);
  EXPECT_EQ(spec.terms()[0].dim, 0);
  EXPECT_EQ(spec.terms()[0].level, 2);
  EXPECT_EQ(spec.terms()[1].dim, 1);
  EXPECT_EQ(spec.terms()[1].level, 3);
  EXPECT_EQ(spec.terms()[2].dim, 0);
  EXPECT_EQ(spec.terms()[2].level, 1);
  EXPECT_EQ(spec.terms()[3].dim, 1);
  EXPECT_EQ(spec.terms()[3].level, 2);
  EXPECT_EQ(spec.terms()[4].dim, 1);
  EXPECT_EQ(spec.terms()[4].level, 1);
}

// The load/evict window invariant: a region covers a cell only if the
// cell's key lies within [region start key, region end key] — for every
// spec (Theorem 3/5's machinery).
TEST(SortSpecTest, CoverageImpliesKeyIntervalContainment) {
  StarSchema schema = MakeSchema();
  Rng rng(5);
  std::vector<SortSpec> specs;
  specs.push_back(SortSpec::Canonical(schema));
  {
    LevelVector v{};
    v.fill(1);
    v[0] = 2;
    v[1] = 2;
    specs.push_back(SortSpec::ForChain(schema, {v}));
  }
  for (const SortSpec& spec : specs) {
    SpecComparator cmp(&schema, spec);
    for (int trial = 0; trial < 500; ++trial) {
      NodeId n0 = static_cast<NodeId>(rng.Uniform(schema.dim(0).num_nodes()));
      NodeId n1 = static_cast<NodeId>(rng.Uniform(schema.dim(1).num_nodes()));
      ImpreciseRecord r = Region(schema, n0, n1);
      CellRecord c = Cell(static_cast<int32_t>(
                              rng.Uniform(schema.dim(0).num_leaves())),
                          static_cast<int32_t>(
                              rng.Uniform(schema.dim(1).num_leaves())));
      if (RegionCovers(schema, r.node, c.leaf)) {
        EXPECT_LE(cmp.CompareRegionStartToCell(r, c), 0);
        EXPECT_GE(cmp.CompareRegionEndToCell(r, c), 0);
      }
    }
  }
}

// Chain contiguity (Theorem 5): under a chain's sort order, each summary
// table in the chain has *contiguous* regions — cells covered by one
// region form a contiguous run of the sorted cell sequence.
TEST(SortSpecTest, ChainOrderMakesRegionsContiguous) {
  StarSchema schema = MakeSchema();
  LevelVector top{};
  top.fill(1);
  top[0] = 3;  // ALL in D0
  top[1] = 3;
  LevelVector mid{};
  mid.fill(1);
  mid[0] = 2;
  mid[1] = 3;
  LevelVector low{};
  low.fill(1);
  low[0] = 2;
  low[1] = 2;
  SortSpec spec = SortSpec::ForChain(schema, {top, mid, low});
  SpecComparator cmp(&schema, spec);

  // All cells, sorted by the chain spec.
  std::vector<CellRecord> cells;
  for (int32_t a = 0; a < schema.dim(0).num_leaves(); ++a) {
    for (int32_t b = 0; b < schema.dim(1).num_leaves(); ++b) {
      cells.push_back(Cell(a, b));
    }
  }
  std::sort(cells.begin(), cells.end(),
            [&](const CellRecord& x, const CellRecord& y) {
              return cmp.CellLess(x, y);
            });

  for (const LevelVector& levels : {top, mid, low}) {
    for (NodeId n0 : schema.dim(0).nodes_at_level(levels[0])) {
      for (NodeId n1 : schema.dim(1).nodes_at_level(levels[1])) {
        ImpreciseRecord r = Region(schema, n0, n1);
        // Covered cells must be one contiguous run.
        int first = -1, last = -1;
        int count = 0;
        for (size_t i = 0; i < cells.size(); ++i) {
          if (RegionCovers(schema, r.node, cells[i].leaf)) {
            if (first < 0) first = static_cast<int>(i);
            last = static_cast<int>(i);
            ++count;
          }
        }
        ASSERT_GT(count, 0);
        EXPECT_EQ(count, last - first + 1)
            << "region (" << n0 << "," << n1 << ") not contiguous";
      }
    }
  }
}

TEST(SortSpecTest, EntryLessIsConsistentWithStartKeys) {
  StarSchema schema = MakeSchema();
  SpecComparator cmp(&schema, SortSpec::Canonical(schema));
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    NodeId a0 = static_cast<NodeId>(rng.Uniform(schema.dim(0).num_nodes()));
    NodeId a1 = static_cast<NodeId>(rng.Uniform(schema.dim(1).num_nodes()));
    NodeId b0 = static_cast<NodeId>(rng.Uniform(schema.dim(0).num_nodes()));
    NodeId b1 = static_cast<NodeId>(rng.Uniform(schema.dim(1).num_nodes()));
    ImpreciseRecord ra = Region(schema, a0, a1);
    ImpreciseRecord rb = Region(schema, b0, b1);
    // EntryLess must be a strict weak ordering consistent with the start
    // corner's canonical leaf order.
    int32_t sa0 = schema.dim(0).leaf_begin(a0), sa1 = schema.dim(1).leaf_begin(a1);
    int32_t sb0 = schema.dim(0).leaf_begin(b0), sb1 = schema.dim(1).leaf_begin(b1);
    bool expect = std::make_pair(sa0, sa1) < std::make_pair(sb0, sb1);
    EXPECT_EQ(cmp.EntryLess(ra, rb), expect);
  }
}

TEST(SummaryOrderTest, PreciseFirstThenByLevelVector) {
  StarSchema schema = MakeSchema();
  SummaryOrderLess less(&schema);
  FactRecord precise;
  precise.node[0] = schema.dim(0).leaf_node(3);
  precise.node[1] = schema.dim(1).leaf_node(3);
  precise.level[0] = precise.level[1] = 1;
  FactRecord imprecise = precise;
  imprecise.node[1] = schema.dim(1).AncestorAtLevel(imprecise.node[1], 2);
  imprecise.level[1] = 2;
  EXPECT_TRUE(less(precise, imprecise));
  EXPECT_FALSE(less(imprecise, precise));

  // Ties broken by fact id, so sorting is deterministic.
  FactRecord a = precise, b = precise;
  a.fact_id = 1;
  b.fact_id = 2;
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
}

TEST(SortSpecTest, AutomotiveChainSpecOrdersRealCells) {
  // Smoke the chain machinery against the big Table 2 hierarchies.
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  LevelVector v{};
  v.fill(1);
  v[0] = 2;
  v[3] = 3;
  SortSpec spec = SortSpec::ForChain(schema, {v});
  SpecComparator cmp(&schema, spec);
  CellRecord a{}, b{};
  a.leaf[3] = 0;
  b.leaf[3] = schema.dim(3).num_leaves() - 1;
  EXPECT_TRUE(cmp.CellLess(a, b));
  EXPECT_FALSE(cmp.CellLess(b, a));
}

}  // namespace
}  // namespace iolap
