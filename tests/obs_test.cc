#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "alloc/allocator.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

/// Installs a registry/collector as the process globals for one test and
/// guarantees uninstall even when an assertion fails mid-test.
class ScopedGlobals {
 public:
  ScopedGlobals(MetricsRegistry* m, TraceCollector* t) {
    SetGlobalMetrics(m);
    SetGlobalTrace(t);
  }
  ~ScopedGlobals() {
    SetGlobalMetrics(nullptr);
    SetGlobalTrace(nullptr);
  }
};

TEST(MetricsTest, CounterConcurrentAdds) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), int64_t{kThreads} * kAdds);
}

TEST(MetricsTest, HistogramConcurrentRecords) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist");
  constexpr int kThreads = 4;
  constexpr int kSamples = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kSamples; ++i) h->Record(t + 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), int64_t{kThreads} * kSamples);
  EXPECT_EQ(h->sum(), int64_t{kSamples} * (1 + 2 + 3 + 4));
  EXPECT_EQ(h->min(), 1);
  EXPECT_EQ(h->max(), 4);
  // Log2 buckets: 1 -> bucket 1; 2,3 -> bucket 2; 4 -> bucket 3.
  EXPECT_EQ(h->bucket(1), kSamples);
  EXPECT_EQ(h->bucket(2), 2 * kSamples);
  EXPECT_EQ(h->bucket(3), kSamples);
}

TEST(MetricsTest, HistogramBucketsAndEmptyState) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("test.hist2");
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->min(), INT64_MAX);
  EXPECT_EQ(h->max(), INT64_MIN);
  h->Record(0);
  EXPECT_EQ(h->bucket(0), 1);
  EXPECT_EQ(h->min(), 0);
  EXPECT_EQ(h->max(), 0);
}

TEST(MetricsTest, RegistryGetOrCreateIsStable) {
  MetricsRegistry registry;
  Counter* a = registry.counter("same.name");
  Counter* b = registry.counter("same.name");
  EXPECT_EQ(a, b);
  EXPECT_NE(static_cast<void*>(registry.gauge("same.name.gauge")),
            static_cast<void*>(a));
}

TEST(MetricsTest, ToJsonEscapesNamesAndSamplesCallbacks) {
  MetricsRegistry registry;
  registry.counter("weird\"name\\with\nescapes")->Add(3);
  registry.gauge("plain.gauge")->Set(-5);
  registry.histogram("h")->Record(2);
  registry.SetValueCallback("cb.value", [] { return int64_t{42}; });
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\nescapes\": 3"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"plain.gauge\": -5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cb.value\": 42"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
}

TEST(MetricsTest, DisabledModeIsNoOp) {
  ASSERT_EQ(GlobalMetrics(), nullptr);
  ASSERT_EQ(GlobalTrace(), nullptr);
  EXPECT_EQ(GlobalCounter("anything"), nullptr);
  EXPECT_EQ(GlobalGauge("anything"), nullptr);
  TraceSpan span("disabled.span");
  EXPECT_FALSE(span.enabled());
  span.AddArg("k", 1);
  span.End();  // must not crash, must not record anywhere
}

TEST(TraceTest, SpanNestingRecordsCompleteEvents) {
  MetricsRegistry registry;
  TraceCollector collector;
  ScopedGlobals install(&registry, &collector);
  registry.gauge("sampled.gauge")->Set(7);
  {
    TraceSpan outer("outer.span");
    {
      TraceSpan inner("inner.span");
      inner.AddArg("items", 12);
    }
  }
  const std::string json = collector.ToChromeJson();
  // Inner ends (and is recorded) before outer.
  const size_t inner_pos = json.find("\"inner.span\"");
  const size_t outer_pos = json.find("\"outer.span\"");
  ASSERT_NE(inner_pos, std::string::npos) << json;
  ASSERT_NE(outer_pos, std::string::npos) << json;
  EXPECT_LT(inner_pos, outer_pos);
  EXPECT_NE(json.find("\"items\":12"), std::string::npos) << json;
  // Span boundaries sample the installed gauges as counter tracks.
  EXPECT_NE(json.find("\"sampled.gauge\",\"ph\":\"C\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"value\":7}"), std::string::npos) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
}

TEST(TraceTest, SpansFromManyThreadsAllRecorded) {
  TraceCollector collector;
  ScopedGlobals install(nullptr, &collector);
  constexpr int kThreads = 8;
  constexpr int kSpans = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) TraceSpan span("thread.span");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(collector.event_count(), size_t{kThreads} * kSpans);
  EXPECT_EQ(collector.dropped_events(), 0);
}

TEST(TraceTest, EventCapCountsDrops) {
  TraceCollector collector(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) collector.AddComplete("s", i, 1);
  EXPECT_EQ(collector.event_count(), 4u);
  EXPECT_EQ(collector.dropped_events(), 6);
}

TEST(JsonUtilTest, EscaperAndDoubleFormatting) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
  out.clear();
  AppendJsonDouble(&out, std::numeric_limits<double>::infinity());
  AppendJsonDouble(&out, -std::numeric_limits<double>::infinity());
  AppendJsonDouble(&out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "nullnullnull");
  out.clear();
  AppendJsonDouble(&out, 1.5);
  EXPECT_EQ(out, "1.5");
}

/// The acceptance check from the issue: an allocation run published through
/// the registry must expose demand-I/O counters equal to the
/// AllocationResult fields, and instrumentation must not change the
/// result's I/O accounting relative to a run with observability disabled.
class ObsAllocationTest : public ::testing::Test {
 protected:
  AllocationResult RunPaperExample(StorageEnv* env) {
    auto schema_r = MakePaperExampleSchema();
    EXPECT_TRUE(schema_r.ok()) << schema_r.status().ToString();
    StarSchema schema = std::move(schema_r).value();
    auto facts_r = MakePaperExampleFacts(*env, schema);
    EXPECT_TRUE(facts_r.ok()) << facts_r.status().ToString();
    TypedFile<FactRecord> facts = std::move(facts_r).value();
    AllocationOptions options;
    options.policy = PolicyKind::kUniform;
    auto result_r = Allocator::Run(*env, schema, &facts, options);
    EXPECT_TRUE(result_r.ok()) << result_r.status().ToString();
    return std::move(result_r).value();
  }
};

TEST_F(ObsAllocationTest, RegistryCountersMatchAllocationResult) {
  MetricsRegistry registry;
  TraceCollector collector;
  ScopedGlobals install(&registry, &collector);
  StorageEnv env(MakeTempDir(), 64);
  AllocationResult result = RunPaperExample(&env);

  EXPECT_EQ(registry.counter("alloc.prep_io.page_reads")->value(),
            result.prep_io.page_reads);
  EXPECT_EQ(registry.counter("alloc.prep_io.page_writes")->value(),
            result.prep_io.page_writes);
  EXPECT_EQ(registry.counter("alloc.alloc_io.page_reads")->value(),
            result.alloc_io.page_reads);
  EXPECT_EQ(registry.counter("alloc.alloc_io.page_writes")->value(),
            result.alloc_io.page_writes);
  EXPECT_EQ(registry.counter("alloc.emit_io.page_reads")->value(),
            result.emit_io.page_reads);
  EXPECT_EQ(registry.counter("alloc.emit_io.page_writes")->value(),
            result.emit_io.page_writes);
  EXPECT_EQ(registry.counter("alloc.iterations")->value(), result.iterations);
  EXPECT_EQ(registry.counter("alloc.num_cells")->value(), result.num_cells);
  EXPECT_EQ(registry.counter("alloc.num_imprecise")->value(),
            result.num_imprecise);
  EXPECT_EQ(registry.counter("alloc.edges_emitted")->value(),
            result.edges_emitted);

  // The run produced a span tree (alloc.run at minimum) with gauge tracks.
  EXPECT_GT(collector.event_count(), 0u);
  EXPECT_NE(collector.ToChromeJson().find("\"alloc.run\""),
            std::string::npos);
}

TEST_F(ObsAllocationTest, InstrumentationDoesNotChangeDemandIo) {
  ASSERT_EQ(GlobalMetrics(), nullptr);
  StorageEnv plain_env(MakeTempDir(), 64);
  AllocationResult plain = RunPaperExample(&plain_env);

  MetricsRegistry registry;
  TraceCollector collector;
  AllocationResult traced;
  {
    ScopedGlobals install(&registry, &collector);
    StorageEnv traced_env(MakeTempDir(), 64);
    traced = RunPaperExample(&traced_env);
  }

  EXPECT_EQ(plain.prep_io.page_reads, traced.prep_io.page_reads);
  EXPECT_EQ(plain.prep_io.page_writes, traced.prep_io.page_writes);
  EXPECT_EQ(plain.alloc_io.page_reads, traced.alloc_io.page_reads);
  EXPECT_EQ(plain.alloc_io.page_writes, traced.alloc_io.page_writes);
  EXPECT_EQ(plain.emit_io.page_reads, traced.emit_io.page_reads);
  EXPECT_EQ(plain.emit_io.page_writes, traced.emit_io.page_writes);
  EXPECT_EQ(plain.iterations, traced.iterations);
  EXPECT_EQ(plain.edges_emitted, traced.edges_emitted);
}

TEST(ScopedObservabilityTest, WritesValidFilesAndUninstalls) {
  const std::string dir = MakeTempDir();
  const std::string metrics_path = dir + "/metrics.json";
  const std::string trace_path = dir + "/trace.json";
  {
    ScopedObservability obs(metrics_path, trace_path);
    ASSERT_TRUE(obs.enabled());
    ASSERT_EQ(GlobalMetrics(), obs.metrics());
    ASSERT_EQ(GlobalTrace(), obs.trace());
    GlobalCounter("scoped.counter")->Add(9);
    { TraceSpan span("scoped.span"); }
    IOLAP_ASSERT_OK(obs.Finish());
    EXPECT_EQ(GlobalMetrics(), nullptr);
    EXPECT_EQ(GlobalTrace(), nullptr);
  }
  std::ifstream metrics_in(metrics_path);
  std::string metrics_json((std::istreambuf_iterator<char>(metrics_in)),
                           std::istreambuf_iterator<char>());
  EXPECT_NE(metrics_json.find("\"scoped.counter\": 9"), std::string::npos);
  std::ifstream trace_in(trace_path);
  std::string trace_json((std::istreambuf_iterator<char>(trace_in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(trace_json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace_json.find("\"scoped.span\""), std::string::npos);
}

TEST(ScopedObservabilityTest, DefaultConstructedIsInert) {
  ScopedObservability obs;
  EXPECT_FALSE(obs.enabled());
  EXPECT_EQ(GlobalMetrics(), nullptr);
  EXPECT_EQ(GlobalTrace(), nullptr);
  IOLAP_ASSERT_OK(obs.Finish());
}

}  // namespace
}  // namespace iolap
