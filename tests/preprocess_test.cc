#include "alloc/preprocess.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

class PreprocessTest : public ::testing::Test {
 protected:
  PreprocessTest() : env_(MakeTempDir(), 256) {}
  StorageEnv env_;
};

TEST_F(PreprocessTest, PaperExampleSummaryTables) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             MakePaperExampleFacts(env_, schema));
  AllocationOptions options;
  IOLAP_ASSERT_OK_AND_ASSIGN(PreparedDataset data,
                             PrepareDataset(env_, schema, &facts, options));

  EXPECT_EQ(data.num_precise_facts, 5);
  EXPECT_EQ(data.num_imprecise_facts, 9);
  // p1..p5 map to 5 distinct cells.
  EXPECT_EQ(data.cells.size(), 5);
  // Figure 3: exactly 5 imprecise summary tables.
  ASSERT_EQ(data.tables.size(), 5u);

  // The level vectors present must be exactly those of Figure 3.
  std::set<std::pair<int, int>> vectors;
  int64_t imprecise_total = 0;
  for (const SummaryTableInfo& t : data.tables) {
    vectors.insert({t.levels[0], t.levels[1]});
    imprecise_total += t.size();
    EXPECT_EQ(t.begin % TypedFile<ImpreciseRecord>::kRecordsPerPage, 0)
        << "summary table segment not page-aligned";
    EXPECT_GT(t.partition_records, 0);
    EXPECT_GE(t.partition_pages, 1);
  }
  EXPECT_EQ(imprecise_total, 9);
  std::set<std::pair<int, int>> expected = {
      {1, 2}, {1, 3}, {2, 1}, {2, 2}, {3, 1}};
  EXPECT_EQ(vectors, expected);

  // δ(c) = 1 for every cell under EM-Count (each precise fact is unique).
  for (int64_t i = 0; i < data.cells.size(); ++i) {
    IOLAP_ASSERT_OK_AND_ASSIGN(CellRecord c, data.cells.Get(env_.pool(), i));
    EXPECT_EQ(c.delta0, 1.0);
    EXPECT_EQ(c.delta_prev, 1.0);
  }

  // Precise EDB: one row of weight 1 per precise fact.
  EXPECT_EQ(data.precise_edb.size(), 5);
  for (int64_t i = 0; i < 5; ++i) {
    IOLAP_ASSERT_OK_AND_ASSIGN(EdbRecord e,
                               data.precise_edb.Get(env_.pool(), i));
    EXPECT_EQ(e.weight, 1.0);
    EXPECT_GE(e.fact_id, 1);
    EXPECT_LE(e.fact_id, 5);
  }
}

TEST_F(PreprocessTest, CellsAggregateDuplicatePreciseFacts) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             TypedFile<FactRecord>::Create(env_.disk(), "f"));
  // Three facts in the same cell, one in another.
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ma, schema.dim(0).FindNode("MA"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ny, schema.dim(0).FindNode("NY"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId civic, schema.dim(1).FindNode("Civic"));
  for (int i = 0; i < 4; ++i) {
    FactRecord f;
    f.fact_id = i + 1;
    f.measure = 10 * (i + 1);
    f.node[0] = i < 3 ? ma : ny;
    f.node[1] = civic;
    f.level[0] = f.level[1] = 1;
    IOLAP_ASSERT_OK(facts.Append(env_.pool(), f));
  }
  AllocationOptions options;
  options.policy = PolicyKind::kMeasure;
  IOLAP_ASSERT_OK_AND_ASSIGN(PreparedDataset data,
                             PrepareDataset(env_, schema, &facts, options));
  ASSERT_EQ(data.cells.size(), 2);
  IOLAP_ASSERT_OK_AND_ASSIGN(CellRecord c0, data.cells.Get(env_.pool(), 0));
  IOLAP_ASSERT_OK_AND_ASSIGN(CellRecord c1, data.cells.Get(env_.pool(), 1));
  // Canonical order: MA(leaf 0) before NY(leaf 1).
  EXPECT_EQ(c0.delta0, 10 + 20 + 30);
  EXPECT_EQ(c1.delta0, 40);
  EXPECT_EQ(data.precise_edb.size(), 4);
  EXPECT_TRUE(data.tables.empty());
}

TEST_F(PreprocessTest, CellsAreCanonicallySorted) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 5000;
  spec.seed = 3;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env_, schema, spec));
  AllocationOptions options;
  IOLAP_ASSERT_OK_AND_ASSIGN(PreparedDataset data,
                             PrepareDataset(env_, schema, &facts, options));
  ASSERT_GT(data.cells.size(), 0);
  CellRecord prev;
  auto cursor = data.cells.Scan(env_.pool());
  IOLAP_ASSERT_OK(cursor.Next(&prev));
  CellRecord cur;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&cur));
    bool less = false, greater = false;
    for (int d = 0; d < schema.num_dims() && !less && !greater; ++d) {
      if (prev.leaf[d] < cur.leaf[d]) less = true;
      if (prev.leaf[d] > cur.leaf[d]) greater = true;
    }
    EXPECT_TRUE(less) << "cells out of order or duplicated";
    prev = cur;
  }
  // Fences: one per page, first key matches.
  EXPECT_EQ(static_cast<int64_t>(data.fences.size()),
            data.cells.size_in_pages());
}

TEST_F(PreprocessTest, FirstLastBoundsAreConservative) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 3000;
  spec.seed = 11;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env_, schema, spec));
  AllocationOptions options;
  IOLAP_ASSERT_OK_AND_ASSIGN(PreparedDataset data,
                             PrepareDataset(env_, schema, &facts, options));

  // Load all cells for a brute-force check.
  std::vector<CellRecord> cells;
  {
    auto cursor = data.cells.Scan(env_.pool());
    CellRecord c;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&c));
      cells.push_back(c);
    }
  }
  for (const SummaryTableInfo& table : data.tables) {
    auto cursor = data.imprecise.Scan(env_.pool(), table.begin, table.end);
    ImpreciseRecord rec;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&rec));
      // True first/last covered cell indexes.
      int64_t true_first = -1, true_last = -1;
      for (size_t i = 0; i < cells.size(); ++i) {
        if (RegionCovers(schema, rec.node, cells[i].leaf)) {
          if (true_first < 0) true_first = static_cast<int64_t>(i);
          true_last = static_cast<int64_t>(i);
        }
      }
      if (true_first >= 0) {
        EXPECT_LE(rec.first, true_first);
        EXPECT_GE(rec.last, true_last);
      }
    }
  }
}

TEST_F(PreprocessTest, UniformSeedsEveryCellWithOne) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             MakePaperExampleFacts(env_, schema));
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  IOLAP_ASSERT_OK_AND_ASSIGN(PreparedDataset data,
                             PrepareDataset(env_, schema, &facts, options));
  for (int64_t i = 0; i < data.cells.size(); ++i) {
    IOLAP_ASSERT_OK_AND_ASSIGN(CellRecord c, data.cells.Get(env_.pool(), i));
    EXPECT_EQ(c.delta0, 1.0);  // base 1, no count/measure contribution
  }
}

TEST_F(PreprocessTest, ImpreciseUnionDomainCoversRegions) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             MakePaperExampleFacts(env_, schema));
  AllocationOptions options;
  options.domain = CellDomain::kImpreciseUnion;
  IOLAP_ASSERT_OK_AND_ASSIGN(PreparedDataset data,
                             PrepareDataset(env_, schema, &facts, options));
  // The 9 imprecise facts' regions plus 5 precise cells: p11/p12 span ALL of
  // Location so C must include cells like (TX, Civic) with δ = 0.
  EXPECT_GT(data.cells.size(), 5);
  int64_t zero_delta = 0;
  auto cursor = data.cells.Scan(env_.pool());
  CellRecord c;
  while (!cursor.done()) {
    IOLAP_ASSERT_OK(cursor.Next(&c));
    if (c.delta0 == 0) ++zero_delta;
  }
  EXPECT_GT(zero_delta, 0);
}

TEST_F(PreprocessTest, ImpreciseUnionRespectsBudget) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             MakePaperExampleFacts(env_, schema));
  AllocationOptions options;
  options.domain = CellDomain::kImpreciseUnion;
  options.max_domain_cells = 3;
  Result<PreparedDataset> data = PrepareDataset(env_, schema, &facts, options);
  EXPECT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace iolap
