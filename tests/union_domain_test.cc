// The kImpreciseUnion cell domain (Section 3.3 lists it as one of the
// choices for C): C contains every cell inside any imprecise region, so
// Uniform allocation spreads a fact over its *entire* region — including
// cells no precise fact ever hit.

#include <gtest/gtest.h>

#include <map>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

using CellKey = std::array<int32_t, kMaxDims>;
using EdbMap = std::map<std::pair<FactId, CellKey>, double>;

EdbMap LoadEdb(StorageEnv& env, const TypedFile<EdbRecord>& edb) {
  EdbMap out;
  auto cursor = edb.Scan(env.pool());
  EdbRecord rec;
  while (!cursor.done()) {
    EXPECT_TRUE(cursor.Next(&rec).ok());
    CellKey key{};
    std::memcpy(key.data(), rec.leaf, sizeof(rec.leaf));
    out[{rec.fact_id, key}] = rec.weight;
  }
  return out;
}

TEST(UnionDomainTest, UniformSpreadsOverFullRegions) {
  StorageEnv env(MakeTempDir(), 128);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  options.domain = CellDomain::kImpreciseUnion;
  options.algorithm = AlgorithmKind::kBlock;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  EdbMap edb = LoadEdb(env, result.edb);

  // p6 (MA, Sedan) now spreads over BOTH completions: (MA,Civic)=(0,0)
  // and (MA,Camry)=(0,1) — under kPreciseCells it all went to (MA,Civic).
  EXPECT_NEAR(edb.at({6, CellKey{0, 0}}), 0.5, 1e-12);
  EXPECT_NEAR(edb.at({6, CellKey{0, 1}}), 0.5, 1e-12);
  // p8 (CA, ALL) spreads over all four automobiles in CA.
  for (int32_t auto_leaf = 0; auto_leaf < 4; ++auto_leaf) {
    EXPECT_NEAR(edb.at({8, CellKey{3, auto_leaf}}), 0.25, 1e-12);
  }
  // p11 (ALL, Civic) over the four states.
  for (int32_t loc = 0; loc < 4; ++loc) {
    EXPECT_NEAR(edb.at({11, CellKey{loc, 0}}), 0.25, 1e-12);
  }
  EXPECT_EQ(result.unallocatable_facts, 0);
}

TEST(UnionDomainTest, AllAlgorithmsAgreeUnderCountPolicy) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  EdbMap reference;
  bool first = true;
  for (AlgorithmKind algo :
       {AlgorithmKind::kBasic, AlgorithmKind::kIndependent,
        AlgorithmKind::kBlock, AlgorithmKind::kTransitive}) {
    StorageEnv env(MakeTempDir(), 64);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
    AllocationOptions options;
    options.policy = PolicyKind::kCount;
    options.domain = CellDomain::kImpreciseUnion;
    options.algorithm = algo;
    options.epsilon = 0;
    options.max_iterations = 6;
    options.early_convergence = false;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                               Allocator::Run(env, schema, &facts, options));
    EdbMap edb = LoadEdb(env, result.edb);
    if (first) {
      reference = edb;
      first = false;
      // Under EM-Count the extra cells carry δ = 0 and the template is
      // multiplicative in Δ, so they never gain mass: the EDB matches the
      // kPreciseCells domain exactly (17 rows). The union domain changes
      // results only for policies that seed δ > 0 everywhere (Uniform).
      EXPECT_EQ(edb.size(), 17u);
    } else {
      ASSERT_EQ(edb.size(), reference.size()) << AlgorithmName(algo);
      for (const auto& [key, weight] : reference) {
        auto it = edb.find(key);
        ASSERT_NE(it, edb.end()) << AlgorithmName(algo);
        EXPECT_NEAR(it->second, weight, 1e-9)
            << AlgorithmName(algo) << " fact " << key.first;
      }
    }
  }
}

TEST(UnionDomainTest, WeightsStillSumToOne) {
  StorageEnv env(MakeTempDir(), 128);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
  AllocationOptions options;
  options.policy = PolicyKind::kCount;
  options.domain = CellDomain::kImpreciseUnion;
  options.algorithm = AlgorithmKind::kTransitive;
  options.epsilon = 1e-8;
  options.max_iterations = 300;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  std::map<FactId, double> sums;
  for (const auto& [key, weight] : LoadEdb(env, result.edb)) {
    sums[key.first] += weight;
  }
  EXPECT_EQ(sums.size(), 14u);
  for (const auto& [fact, sum] : sums) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << "fact " << fact;
  }
}

TEST(UnionDomainTest, RandomizedSmallSchema) {
  // A denser schema where the union domain is materially bigger than the
  // precise cells; all external algorithms must agree with Basic.
  std::vector<Hierarchy> dims;
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d0,
                             HierarchyBuilder::Uniform("D0", {2, 3}));
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d1,
                             HierarchyBuilder::Uniform("D1", {3, 2}));
  dims.push_back(d0);
  dims.push_back(d1);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             StarSchema::Create(std::move(dims)));
  EdbMap reference;
  bool first = true;
  for (AlgorithmKind algo :
       {AlgorithmKind::kBasic, AlgorithmKind::kBlock,
        AlgorithmKind::kTransitive}) {
    StorageEnv env(MakeTempDir(), 16);
    DatasetSpec spec;
    spec.num_facts = 200;
    spec.imprecise_fraction = 0.5;
    spec.allow_all = true;
    spec.seed = 33;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
    AllocationOptions options;
    options.domain = CellDomain::kImpreciseUnion;
    options.algorithm = algo;
    options.epsilon = 0;
    options.max_iterations = 5;
    options.early_convergence = false;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                               Allocator::Run(env, schema, &facts, options));
    EXPECT_EQ(result.unallocatable_facts, 0);
    EdbMap edb = LoadEdb(env, result.edb);
    if (first) {
      reference = edb;
      first = false;
    } else {
      ASSERT_EQ(edb.size(), reference.size()) << AlgorithmName(algo);
      for (const auto& [key, weight] : reference) {
        EXPECT_NEAR(edb.at(key), weight, 1e-9) << AlgorithmName(algo);
      }
    }
  }
}

}  // namespace
}  // namespace iolap
