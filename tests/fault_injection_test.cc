// Failure injection: every layer built on the DiskManager must surface
// injected I/O errors as Status (never crash, never silently corrupt), and
// recover cleanly once the fault is removed.

#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "storage/external_sort.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

struct Rec {
  int64_t key;
  int64_t pad;
};

TEST(FaultInjectionTest, ReadFaultSurfacesThroughBufferPool) {
  StorageEnv env(MakeTempDir(), 4);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(env.disk(), "t"));
  for (int i = 0; i < 1000; ++i) {
    IOLAP_ASSERT_OK(file.Append(env.pool(), Rec{i, 0}));
  }
  IOLAP_ASSERT_OK(env.pool().EvictFile(file.file_id()));

  env.disk().SetFaultInjector([](char op, FileId, PageId page) {
    if (op == 'r' && page == 2) return Status::IoError("injected read fault");
    return Status::Ok();
  });
  Result<Rec> r = file.Get(env.pool(), 2 * TypedFile<Rec>::kRecordsPerPage);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  // Other pages still work, and the failed frame was not leaked.
  IOLAP_ASSERT_OK_AND_ASSIGN(Rec ok, file.Get(env.pool(), 0));
  EXPECT_EQ(ok.key, 0);
  env.disk().SetFaultInjector(nullptr);
  IOLAP_ASSERT_OK_AND_ASSIGN(Rec healed,
                             file.Get(env.pool(), 2 * TypedFile<Rec>::kRecordsPerPage));
  EXPECT_EQ(healed.key, 2 * TypedFile<Rec>::kRecordsPerPage);
}

TEST(FaultInjectionTest, WriteFaultSurfacesOnEviction) {
  StorageEnv env(MakeTempDir(), 2);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(env.disk(), "t"));
  for (int i = 0; i < 600; ++i) {
    IOLAP_ASSERT_OK(file.Append(env.pool(), Rec{i, 0}));
  }
  // Dirty page 0, then fail all writes: the eviction forced by reading
  // other pages must propagate the error.
  IOLAP_ASSERT_OK(file.Put(env.pool(), 0, Rec{-1, 0}));
  env.disk().SetFaultInjector([](char op, FileId, PageId) {
    return op == 'w' ? Status::IoError("injected write fault") : Status::Ok();
  });
  Status flush = env.pool().FlushAll();
  EXPECT_EQ(flush.code(), StatusCode::kIoError);
  env.disk().SetFaultInjector(nullptr);
  IOLAP_EXPECT_OK(env.pool().FlushAll());
  IOLAP_ASSERT_OK_AND_ASSIGN(Rec r, file.Get(env.pool(), 0));
  EXPECT_EQ(r.key, -1);
}

TEST(FaultInjectionTest, ExternalSortPropagatesFaults) {
  StorageEnv env(MakeTempDir(), 8);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto file, TypedFile<Rec>::Create(env.disk(), "t"));
  for (int i = 0; i < 5000; ++i) {
    IOLAP_ASSERT_OK(file.Append(env.pool(), Rec{5000 - i, 0}));
  }
  IOLAP_ASSERT_OK(env.pool().FlushAll());
  int countdown = 20;
  env.disk().SetFaultInjector([&](char, FileId, PageId) {
    return --countdown <= 0 ? Status::IoError("injected sort fault")
                            : Status::Ok();
  });
  ExternalSorter<Rec> sorter(&env.disk(), &env.pool(), 4);
  Status st = sorter.Sort(
      &file, [](const Rec& a, const Rec& b) { return a.key < b.key; });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // Clean retry succeeds.
  env.disk().SetFaultInjector(nullptr);
  IOLAP_ASSERT_OK(sorter.Sort(
      &file, [](const Rec& a, const Rec& b) { return a.key < b.key; }));
  IOLAP_ASSERT_OK_AND_ASSIGN(Rec first, file.Get(env.pool(), 0));
  EXPECT_EQ(first.key, 1);
}

TEST(FaultInjectionTest, AllocatorSurfacesMidRunFaults) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  for (int failure_point : {50, 500, 5000}) {
    StorageEnv env(MakeTempDir(), 16);
    DatasetSpec spec;
    spec.num_facts = 5000;
    spec.seed = 3;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
    IOLAP_ASSERT_OK(env.pool().FlushAll());
    int countdown = failure_point;
    env.disk().SetFaultInjector([&](char, FileId, PageId) {
      return --countdown <= 0 ? Status::IoError("injected fault")
                              : Status::Ok();
    });
    AllocationOptions options;
    options.algorithm = AlgorithmKind::kTransitive;
    Result<AllocationResult> result =
        Allocator::Run(env, schema, &facts, options);
    if (countdown <= 0) {
      // The fault fired mid-run: it must be surfaced, not swallowed.
      ASSERT_FALSE(result.ok()) << "failure point " << failure_point;
      EXPECT_EQ(result.status().code(), StatusCode::kIoError);
    } else {
      // The run finished under the fault threshold: it must be clean.
      EXPECT_TRUE(result.ok()) << result.status();
    }
  }
}

TEST(FaultInjectionTest, CleanRunAfterFaultyRun) {
  // A failed run must not poison the environment for a subsequent run in
  // the same process (fresh env, same schema objects).
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  {
    StorageEnv env(MakeTempDir(), 8);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
    int countdown = 3;
    env.disk().SetFaultInjector([&](char, FileId, PageId) {
      return --countdown <= 0 ? Status::IoError("boom") : Status::Ok();
    });
    AllocationOptions options;
    EXPECT_FALSE(Allocator::Run(env, schema, &facts, options).ok());
  }
  StorageEnv env(MakeTempDir(), 8);
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
  AllocationOptions options;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  EXPECT_EQ(result.edb.size(), 17);
}

}  // namespace
}  // namespace iolap
