// Insert/delete maintenance (the full Section 9 story): incremental
// application of structural changes must leave the EDB equivalent to a
// from-scratch rebuild over the mutated fact table. Tombstoned rows
// (weight 0) are ignored when comparing.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/result.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "rtree/rtree.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

using CellKey = std::array<int32_t, kMaxDims>;
using EdbMap = std::map<std::pair<FactId, CellKey>, std::pair<double, double>>;

EdbMap LoadLiveEdb(StorageEnv& env, const TypedFile<EdbRecord>& edb) {
  EdbMap out;
  auto cursor = edb.Scan(env.pool());
  EdbRecord rec;
  while (!cursor.done()) {
    EXPECT_TRUE(cursor.Next(&rec).ok());
    if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
    CellKey key{};
    std::memcpy(key.data(), rec.leaf, sizeof(rec.leaf));
    auto [it, inserted] =
        out.emplace(std::make_pair(rec.fact_id, key),
                    std::make_pair(rec.weight, rec.measure));
    EXPECT_TRUE(inserted) << "duplicate live row for fact " << rec.fact_id;
  }
  return out;
}

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

void ExpectEquivalentToRebuild(const StarSchema& schema,
                               MaintenanceManager& manager,
                               const std::vector<FactRecord>& final_facts,
                               const AllocationOptions& options) {
  EdbMap incremental = LoadLiveEdb(manager.env(), manager.edb());
  StorageEnv env_rb(MakeTempDir(), 256);
  auto facts_rb = WriteFacts(env_rb, final_facts);
  ASSERT_TRUE(facts_rb.ok());
  AllocationOptions opts = options;
  opts.algorithm = AlgorithmKind::kTransitive;
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AllocationResult rebuilt,
      Allocator::Run(env_rb, schema, &facts_rb.value(), opts));
  EdbMap rebuild = LoadLiveEdb(env_rb, rebuilt.edb);
  ASSERT_EQ(incremental.size(), rebuild.size());
  for (const auto& [key, wm] : rebuild) {
    auto it = incremental.find(key);
    ASSERT_NE(it, incremental.end()) << "missing row for fact " << key.first;
    EXPECT_NEAR(it->second.first, wm.first, 1e-6) << "fact " << key.first;
    EXPECT_NEAR(it->second.second, wm.second, 1e-9) << "fact " << key.first;
  }
}

FactRecord MakeFact(const StarSchema& schema, FactId id, double measure,
                    const char* n0, const char* n1) {
  FactRecord f;
  f.fact_id = id;
  f.measure = measure;
  auto a = schema.dim(0).FindNode(n0);
  auto b = schema.dim(1).FindNode(n1);
  EXPECT_TRUE(a.ok() && b.ok());
  f.node[0] = *a;
  f.node[1] = *b;
  f.level[0] = static_cast<uint8_t>(schema.dim(0).level(*a));
  f.level[1] = static_cast<uint8_t>(schema.dim(1).level(*b));
  return f;
}

class MutationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
    options_.policy = PolicyKind::kMeasure;
    options_.epsilon = 1e-9;
    options_.max_iterations = 300;
  }

  std::unique_ptr<MaintenanceManager> BuildManager(
      StorageEnv& env, const std::vector<FactRecord>& facts) {
    auto file = WriteFacts(env, facts);
    EXPECT_TRUE(file.ok());
    auto manager =
        MaintenanceManager::Build(env, schema_, &file.value(), options_);
    EXPECT_TRUE(manager.ok()) << manager.status();
    return std::move(manager).value();
  }

  std::vector<FactRecord> PaperFacts(StorageEnv& scratch) {
    auto file = MakePaperExampleFacts(scratch, schema_);
    EXPECT_TRUE(file.ok());
    std::vector<FactRecord> out;
    auto cursor = file->Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      EXPECT_TRUE(cursor.Next(&f).ok());
      out.push_back(f);
    }
    return out;
  }

  StarSchema schema_;
  AllocationOptions options_;
};

TEST_F(MutationsTest, InsertPreciseIntoExistingCell) {
  StorageEnv scratch(MakeTempDir(), 32);
  std::vector<FactRecord> facts = PaperFacts(scratch);
  StorageEnv env(MakeTempDir(), 256);
  auto manager = BuildManager(env, facts);

  // Another sale at (MA, Civic): shifts δ, reallocates CC1.
  FactRecord f = MakeFact(schema_, 200, 500, "MA", "Civic");
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->InsertFacts({f}, &stats));
  EXPECT_EQ(stats.inserts_applied, 1);
  EXPECT_GE(stats.components_touched, 1);
  facts.push_back(f);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, InsertPreciseCreatesNewCellInsideComponent) {
  StorageEnv scratch(MakeTempDir(), 32);
  std::vector<FactRecord> facts = PaperFacts(scratch);
  StorageEnv env(MakeTempDir(), 256);
  auto manager = BuildManager(env, facts);

  // (MA, Camry) is not in C, but p6 = (MA, Sedan) covers it: the new cell
  // must join CC1 and give p6 a second completion.
  FactRecord f = MakeFact(schema_, 201, 75, "MA", "Camry");
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->InsertFacts({f}, &stats));
  facts.push_back(f);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, InsertPreciseIsolatedCell) {
  StorageEnv scratch(MakeTempDir(), 32);
  std::vector<FactRecord> facts = PaperFacts(scratch);
  StorageEnv env(MakeTempDir(), 256);
  auto manager = BuildManager(env, facts);

  // (TX, Camry) is covered by no imprecise fact: a loose new cell.
  FactRecord f = MakeFact(schema_, 202, 33, "TX", "Camry");
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->InsertFacts({f}, &stats));
  facts.push_back(f);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);

  // Then an imprecise fact over TX absorbs the loose cell.
  FactRecord g = MakeFact(schema_, 203, 44, "TX", "ALL");
  IOLAP_ASSERT_OK(manager->InsertFacts({g}, &stats));
  facts.push_back(g);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, InsertImpreciseMergesComponents) {
  StorageEnv scratch(MakeTempDir(), 32);
  std::vector<FactRecord> facts = PaperFacts(scratch);
  StorageEnv env(MakeTempDir(), 256);
  auto manager = BuildManager(env, facts);
  ASSERT_EQ(manager->rtree().size(), 2);  // CC1 and CC2

  // (ALL, ALL) overlaps both components: they must merge into one.
  FactRecord f;
  f.fact_id = 300;
  f.measure = 1000;
  f.node[0] = schema_.dim(0).root();
  f.level[0] = static_cast<uint8_t>(schema_.dim(0).num_levels());
  f.node[1] = schema_.dim(1).root();
  f.level[1] = static_cast<uint8_t>(schema_.dim(1).num_levels());
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->InsertFacts({f}, &stats));
  EXPECT_EQ(stats.components_merged, 1);
  EXPECT_EQ(manager->rtree().size(), 1);
  facts.push_back(f);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, DeleteImpreciseFact) {
  StorageEnv scratch(MakeTempDir(), 32);
  std::vector<FactRecord> facts = PaperFacts(scratch);
  StorageEnv env(MakeTempDir(), 256);
  auto manager = BuildManager(env, facts);

  // Delete p9 (East, Truck).
  FactRecord p9 = facts[8];
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->DeleteFacts({p9}, &stats));
  EXPECT_EQ(stats.deletes_applied, 1);
  facts.erase(facts.begin() + 8);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, DeletePreciseFact) {
  StorageEnv scratch(MakeTempDir(), 32);
  std::vector<FactRecord> facts = PaperFacts(scratch);
  StorageEnv env(MakeTempDir(), 256);
  auto manager = BuildManager(env, facts);

  // Delete p2 (MA, Sierra): its cell's δ drops, CC2 reallocates; its own
  // EDB row is tombstoned.
  FactRecord p2 = facts[1];
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->DeleteFacts({p2}, &stats));
  EXPECT_GE(stats.edb_rows_tombstoned, 1);
  facts.erase(facts.begin() + 1);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, DeleteLastImpreciseFactDissolvesComponent) {
  StorageEnv env(MakeTempDir(), 256);
  std::vector<FactRecord> facts = {
      MakeFact(schema_, 1, 10, "MA", "Civic"),
      MakeFact(schema_, 2, 20, "MA", "Sedan"),  // the only imprecise fact
  };
  auto manager = BuildManager(env, facts);
  ASSERT_EQ(manager->rtree().size(), 1);

  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->DeleteFacts({facts[1]}, &stats));
  EXPECT_EQ(manager->rtree().size(), 0);
  facts.pop_back();
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);

  // The freed cell is findable again: a new imprecise fact re-forms a
  // component around it.
  FactRecord g = MakeFact(schema_, 3, 30, "East", "Civic");
  IOLAP_ASSERT_OK(manager->InsertFacts({g}, &stats));
  EXPECT_EQ(manager->rtree().size(), 1);
  facts.push_back(g);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, MixedBatchesThenCompact) {
  StorageEnv scratch(MakeTempDir(), 32);
  std::vector<FactRecord> facts = PaperFacts(scratch);
  StorageEnv env(MakeTempDir(), 256);
  auto manager = BuildManager(env, facts);

  MaintenanceStats stats;
  // Batch 1: insert two facts.
  FactRecord a = MakeFact(schema_, 400, 60, "NY", "Sedan");
  FactRecord b = MakeFact(schema_, 401, 70, "NY", "Camry");
  IOLAP_ASSERT_OK(manager->InsertFacts({a, b}, &stats));
  facts.push_back(a);
  facts.push_back(b);
  // Batch 2: delete one old fact and update another.
  IOLAP_ASSERT_OK(manager->DeleteFacts({facts[12]}, &stats));  // p13
  facts.erase(facts.begin() + 12);
  FactUpdate u{facts[0], 123.0};
  IOLAP_ASSERT_OK(manager->ApplyUpdates({u}, &stats));
  facts[0].measure = 123.0;
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);

  // Compaction drops the tombstones but preserves the live rows and keeps
  // the directory consistent for further batches.
  EdbMap before = LoadLiveEdb(env, manager->edb());
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t removed, manager->CompactEdb());
  EXPECT_GE(removed, 0);
  EdbMap after = LoadLiveEdb(env, manager->edb());
  EXPECT_EQ(before, after);
  EXPECT_EQ(manager->edb().size(), static_cast<int64_t>(after.size()));

  FactRecord c = MakeFact(schema_, 402, 80, "West", "Truck");
  IOLAP_ASSERT_OK(manager->InsertFacts({c}, &stats));
  facts.push_back(c);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, PrefixScansSurviveCompaction) {
  // Regression: compaction can shrink the EDB below the original precise
  // prefix; subsequent prefix scans (updates/deletes of precise facts)
  // must clamp to the file size.
  StorageEnv scratch(MakeTempDir(), 32);
  std::vector<FactRecord> facts = PaperFacts(scratch);
  StorageEnv env(MakeTempDir(), 256);
  auto manager = BuildManager(env, facts);

  MaintenanceStats stats;
  // Delete several precise facts -> tombstones in the prefix; then compact.
  IOLAP_ASSERT_OK(manager->DeleteFacts({facts[1], facts[2]}, &stats));
  facts.erase(facts.begin() + 2);
  facts.erase(facts.begin() + 1);
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t removed, manager->CompactEdb());
  EXPECT_GE(removed, 2);
  // Now operations that scan the precise prefix must still work.
  FactUpdate u{facts[0], 777.0};
  IOLAP_ASSERT_OK(manager->ApplyUpdates({u}, &stats));
  facts[0].measure = 777.0;
  IOLAP_ASSERT_OK(manager->DeleteFacts({facts[3]}, &stats));
  facts.erase(facts.begin() + 3);
  ExpectEquivalentToRebuild(schema_, *manager, facts, options_);
}

TEST_F(MutationsTest, RandomizedMutationStream) {
  std::vector<Hierarchy> dims;
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d0,
                             HierarchyBuilder::Uniform("D0", {3, 3}));
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d1,
                             HierarchyBuilder::Uniform("D1", {2, 2, 2}));
  dims.push_back(d0);
  dims.push_back(d1);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             StarSchema::Create(std::move(dims)));
  options_.policy = PolicyKind::kMeasure;

  StorageEnv scratch(MakeTempDir(), 64);
  DatasetSpec spec;
  spec.num_facts = 250;
  spec.imprecise_fraction = 0.35;
  spec.seed = 77;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto gen, GenerateFacts(scratch, schema, spec));
  std::vector<FactRecord> facts;
  {
    auto cursor = gen.Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts.push_back(f);
    }
  }

  StorageEnv env(MakeTempDir(), 256);
  auto file = WriteFacts(env, facts);
  ASSERT_TRUE(file.ok());
  auto built = MaintenanceManager::Build(env, schema, &file.value(), options_);
  ASSERT_TRUE(built.ok());
  auto manager = std::move(built).value();

  Rng rng(555);
  FactId next_id = 10'000;
  for (int step = 0; step < 10; ++step) {
    MaintenanceStats stats;
    double action = rng.NextDouble();
    if (action < 0.4 && !facts.empty()) {
      size_t pick = rng.Uniform(facts.size());
      IOLAP_ASSERT_OK(manager->DeleteFacts({facts[pick]}, &stats));
      facts.erase(facts.begin() + static_cast<int64_t>(pick));
    } else if (action < 0.7) {
      // Insert: generalize a random existing fact's region, or a random
      // precise one.
      FactRecord f;
      f.fact_id = next_id++;
      f.measure = 1 + 10 * rng.NextDouble();
      for (int d = 0; d < schema.num_dims(); ++d) {
        const Hierarchy& h = schema.dim(d);
        int level = 1 + static_cast<int>(rng.Uniform(h.num_levels()));
        const auto& nodes = h.nodes_at_level(level);
        f.node[d] = nodes[rng.Uniform(nodes.size())];
        f.level[d] = static_cast<uint8_t>(level);
      }
      IOLAP_ASSERT_OK(manager->InsertFacts({f}, &stats));
      facts.push_back(f);
    } else if (!facts.empty()) {
      size_t pick = rng.Uniform(facts.size());
      FactUpdate u{facts[pick], 1 + 10 * rng.NextDouble()};
      IOLAP_ASSERT_OK(manager->ApplyUpdates({u}, &stats));
      facts[pick].measure = u.new_measure;
    }
  }
  ExpectEquivalentToRebuild(schema, *manager, facts, options_);
}

/// touched_boxes is the contract the serve layer (cache invalidation, agg
/// index patching) stands on: sound — every EDB row whose value changed
/// lies inside some reported box — and tight — a mutation confined to one
/// half of the domain reports no box reaching into the untouched half.
TEST_F(MutationsTest, TouchedBoxesAreSoundAndTight) {
  std::vector<Hierarchy> dims;
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d0,
                             HierarchyBuilder::Uniform("D0", {2, 4}));
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d1,
                             HierarchyBuilder::Uniform("D1", {2, 2}));
  dims.push_back(d0);
  dims.push_back(d1);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             StarSchema::Create(std::move(dims)));
  const int k = schema.num_dims();
  const NodeId half_a = schema.dim(0).nodes_at_level(2)[0];  // leaves 0..3
  const NodeId half_b = schema.dim(0).nodes_at_level(2)[1];  // leaves 4..7
  const auto& d0_leaves = schema.dim(0).nodes_at_level(1);
  const auto& d1_leaves = schema.dim(1).nodes_at_level(1);
  auto leaf_fact = [&](FactId id, double measure, NodeId n0, NodeId n1) {
    FactRecord f;
    f.fact_id = id;
    f.measure = measure;
    f.node[0] = n0;
    f.node[1] = n1;
    f.level[0] = static_cast<uint8_t>(schema.dim(0).level(n0));
    f.level[1] = static_cast<uint8_t>(schema.dim(1).level(n1));
    return f;
  };
  std::vector<FactRecord> facts = {
      leaf_fact(1, 10, d0_leaves[0], d1_leaves[0]),
      leaf_fact(2, 20, d0_leaves[1], d1_leaves[1]),
      leaf_fact(3, 30, half_a, d1_leaves[0]),  // imprecise, confined to A
      leaf_fact(4, 40, d0_leaves[4], d1_leaves[0]),
      leaf_fact(5, 50, d0_leaves[5], d1_leaves[1]),
      leaf_fact(6, 60, half_b, d1_leaves[1]),  // imprecise, confined to B
  };

  StorageEnv env(MakeTempDir(), 256);
  auto file = WriteFacts(env, facts);
  ASSERT_TRUE(file.ok());
  IOLAP_ASSERT_OK_AND_ASSIGN(
      auto manager,
      MaintenanceManager::Build(env, schema, &file.value(), options_));

  EdbMap before = LoadLiveEdb(env, manager->edb());
  // Mutate half B only: bump the precise fact 4 (shifts the measure-policy
  // allocation of fact 6's component) and delete fact 5.
  MaintenanceStats stats;
  IOLAP_ASSERT_OK(manager->ApplyUpdates({FactUpdate{facts[3], 400.0}}, &stats));
  IOLAP_ASSERT_OK(manager->DeleteFacts({facts[4]}, &stats));
  ASSERT_GT(stats.touched_boxes.size(), 0u);
  EdbMap after = LoadLiveEdb(env, manager->edb());

  auto in_some_box = [&](const CellKey& cell) {
    for (const Rect& r : stats.touched_boxes) {
      bool inside = true;
      for (int d = 0; d < k; ++d) {
        if (cell[d] < r.lo[d] || cell[d] > r.hi[d]) inside = false;
      }
      if (inside) return true;
    }
    return false;
  };
  // Soundness: rows that changed, appeared, or vanished all sit inside a
  // reported box.
  int changed = 0;
  for (const auto& [key, wm] : before) {
    auto it = after.find(key);
    if (it != after.end() && std::abs(it->second.first - wm.first) < 1e-12 &&
        std::abs(it->second.second - wm.second) < 1e-12) {
      continue;
    }
    ++changed;
    EXPECT_TRUE(in_some_box(key.second))
        << "changed row of fact " << key.first << " outside every box";
  }
  for (const auto& [key, wm] : after) {
    if (before.count(key) != 0) continue;
    ++changed;
    EXPECT_TRUE(in_some_box(key.second))
        << "new row of fact " << key.first << " outside every box";
  }
  ASSERT_GT(changed, 0);

  // Tightness: nothing in half A moved, so no box may reach into A's leaf
  // range — a box spanning the whole domain would pass soundness but
  // needlessly invalidate A's cached results.
  Rect a_rect;
  a_rect.lo[0] = schema.dim(0).leaf_begin(half_a);
  a_rect.hi[0] = schema.dim(0).leaf_end(half_a) - 1;
  a_rect.lo[1] = 0;
  a_rect.hi[1] = static_cast<int32_t>(d1_leaves.size()) - 1;
  for (const Rect& r : stats.touched_boxes) {
    EXPECT_FALSE(RectsIntersect(r, a_rect, k))
        << "touched box leaks into the unmutated half";
  }
  for (const auto& [key, wm] : before) {
    if (key.second[0] > a_rect.hi[0]) continue;  // a B-side row
    auto it = after.find(key);
    ASSERT_NE(it, after.end());
    EXPECT_NEAR(it->second.first, wm.first, 1e-12);
    EXPECT_NEAR(it->second.second, wm.second, 1e-12);
  }
}

}  // namespace
}  // namespace iolap
