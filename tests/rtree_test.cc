#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace iolap {
namespace {

Rect MakeRect2(int32_t x0, int32_t y0, int32_t x1, int32_t y1) {
  Rect r;
  r.lo[0] = x0;
  r.lo[1] = y0;
  r.hi[0] = x1;
  r.hi[1] = y1;
  return r;
}

TEST(RectTest, IntersectAndContain) {
  Rect a = MakeRect2(0, 0, 10, 10);
  Rect b = MakeRect2(5, 5, 15, 15);
  Rect c = MakeRect2(11, 0, 12, 10);
  EXPECT_TRUE(RectsIntersect(a, b, 2));
  EXPECT_FALSE(RectsIntersect(a, c, 2));
  EXPECT_TRUE(RectsIntersect(b, c, 2));
  EXPECT_TRUE(RectContains(a, MakeRect2(2, 3, 4, 5), 2));
  EXPECT_FALSE(RectContains(a, b, 2));
  // Touching edges count as intersecting (inclusive bounds).
  EXPECT_TRUE(RectsIntersect(a, MakeRect2(10, 10, 20, 20), 2));
}

TEST(RTreeTest, EmptyTree) {
  RTree tree(2);
  std::vector<int64_t> hits;
  tree.Search(MakeRect2(0, 0, 100, 100), &hits);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_FALSE(tree.Remove(MakeRect2(0, 0, 1, 1), 7));
}

TEST(RTreeTest, InsertAndPointSearch) {
  RTree tree(2, 4);
  for (int i = 0; i < 20; ++i) {
    tree.Insert(MakeRect2(i * 10, 0, i * 10 + 5, 5), i);
  }
  EXPECT_EQ(tree.size(), 20);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GT(tree.height(), 1);
  std::vector<int64_t> hits;
  tree.Search(MakeRect2(52, 1, 53, 2), &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 5);
}

TEST(RTreeTest, OverlappingBoxesAllFound) {
  RTree tree(2, 4);
  // 10 boxes all overlapping the origin.
  for (int i = 0; i < 10; ++i) {
    tree.Insert(MakeRect2(-i, -i, i, i), i);
  }
  std::vector<int64_t> hits;
  tree.Search(MakeRect2(0, 0, 0, 0), &hits);
  EXPECT_EQ(hits.size(), 10u);
}

TEST(RTreeTest, RemoveMaintainsInvariants) {
  RTree tree(2, 4);
  for (int i = 0; i < 50; ++i) {
    tree.Insert(MakeRect2(i, i, i + 2, i + 2), i);
  }
  for (int i = 0; i < 50; i += 2) {
    EXPECT_TRUE(tree.Remove(MakeRect2(i, i, i + 2, i + 2), i)) << i;
    EXPECT_TRUE(tree.CheckInvariants()) << "after removing " << i;
  }
  EXPECT_EQ(tree.size(), 25);
  // Removed entries are gone, remaining are findable.
  for (int i = 0; i < 50; ++i) {
    std::vector<int64_t> hits;
    tree.Search(MakeRect2(i, i, i, i), &hits);
    bool found = std::find(hits.begin(), hits.end(), i) != hits.end();
    EXPECT_EQ(found, i % 2 == 1) << i;
  }
  EXPECT_FALSE(tree.Remove(MakeRect2(0, 0, 2, 2), 0));  // already gone
}

TEST(RTreeTest, SearchCountsNodeAccesses) {
  RTree tree(2, 8);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(MakeRect2(i, 0, i, 0), i);
  }
  tree.ResetStats();
  std::vector<int64_t> hits;
  tree.Search(MakeRect2(5, 0, 6, 0), &hits);
  EXPECT_GT(tree.nodes_accessed(), 0);
  EXPECT_LT(tree.nodes_accessed(), 30);  // far fewer than a full scan
}

// Randomized differential test against brute force, across fan-outs and
// dimensionalities.
class RTreeRandomized : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(RTreeRandomized, MatchesBruteForce) {
  auto [dims, fanout] = GetParam();
  Rng rng(dims * 100 + fanout);
  RTree tree(dims, fanout);
  struct Item {
    Rect rect;
    int64_t id;
    bool alive;
  };
  std::vector<Item> items;
  int64_t next_id = 0;

  for (int step = 0; step < 600; ++step) {
    double action = rng.NextDouble();
    if (action < 0.6 || items.empty()) {
      Rect r;
      for (int d = 0; d < dims; ++d) {
        int32_t a = static_cast<int32_t>(rng.Uniform(200));
        int32_t b = a + static_cast<int32_t>(rng.Uniform(30));
        r.lo[d] = a;
        r.hi[d] = b;
      }
      tree.Insert(r, next_id);
      items.push_back(Item{r, next_id, true});
      ++next_id;
    } else if (action < 0.8) {
      // Remove a random live item.
      std::vector<size_t> live;
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].alive) live.push_back(i);
      }
      if (!live.empty()) {
        size_t pick = live[rng.Uniform(live.size())];
        EXPECT_TRUE(tree.Remove(items[pick].rect, items[pick].id));
        items[pick].alive = false;
      }
    } else {
      // Query and compare with brute force.
      Rect q;
      for (int d = 0; d < dims; ++d) {
        int32_t a = static_cast<int32_t>(rng.Uniform(220));
        int32_t b = a + static_cast<int32_t>(rng.Uniform(60));
        q.lo[d] = a;
        q.hi[d] = b;
      }
      std::vector<int64_t> hits;
      tree.Search(q, &hits);
      std::set<int64_t> got(hits.begin(), hits.end());
      EXPECT_EQ(got.size(), hits.size()) << "duplicate search results";
      std::set<int64_t> want;
      for (const Item& item : items) {
        if (item.alive && RectsIntersect(item.rect, q, dims)) {
          want.insert(item.id);
        }
      }
      EXPECT_EQ(got, want);
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "at step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndFanouts, RTreeRandomized,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(4, 16)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace iolap
