#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "bench/bench_util.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(JsonWriterTest, EscapesStringsAndMapsNonFiniteToNull) {
  const std::string path = MakeTempDir() + "/rows.json";
  JsonWriter writer(path);
  writer.BeginObject();
  writer.Field("algo", "tran\"sitive\\v1\n");
  writer.Field("count", int64_t{42});
  writer.Field("speedup", std::numeric_limits<double>::infinity());
  writer.Field("ratio", std::numeric_limits<double>::quiet_NaN());
  writer.Field("seconds", 0.25);
  writer.Field("ok", true);
  writer.EndObject();
  writer.BeginObject();
  writer.Field("key with \t tab", int64_t{1});
  writer.EndObject();
  ASSERT_TRUE(writer.Write());

  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"algo\": \"tran\\\"sitive\\\\v1\\n\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"speedup\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ratio\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seconds\": 0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"key with \\t tab\": 1"), std::string::npos) << json;
  // No raw control characters or bare inf/nan tokens may survive.
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(EstimateDataPagesTest, UsesCeilingDivision) {
  const int64_t cell_rpp = TypedFile<CellRecord>::kRecordsPerPage;
  const int64_t imp_rpp = TypedFile<ImpreciseRecord>::kRecordsPerPage;
  ASSERT_GT(cell_rpp, 1);
  ASSERT_GT(imp_rpp, 1);

  // A single record still occupies a whole page (+2 overhead pages).
  EXPECT_EQ(EstimateDataPages(1, 0.0), 1 + 2);
  EXPECT_EQ(EstimateDataPages(1, 1.0), 1 + 2);
  // Exactly full pages do not round up.
  EXPECT_EQ(EstimateDataPages(cell_rpp, 0.0), 1 + 2);
  EXPECT_EQ(EstimateDataPages(3 * cell_rpp, 0.0), 3 + 2);
  // One record past a page boundary adds a page.
  EXPECT_EQ(EstimateDataPages(cell_rpp + 1, 0.0), 2 + 2);
  EXPECT_EQ(EstimateDataPages(imp_rpp + 1, 1.0), 2 + 2);
}

}  // namespace
}  // namespace iolap
