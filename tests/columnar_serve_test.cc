// Row-major and columnar EDB readers must be interchangeable: every query
// surface (QueryEngine, the serve layer's partitioned scans, AggIndex
// builds) answers the same on either format, and the serve layer's mirror
// lifecycle — built at startup, dropped by any mutation, rebuilt by
// Compact / RefreshColumnar — never serves a stale or wrong answer.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/columnar.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "serve/query_service.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

constexpr AggregateFunc kAllFuncs[] = {
    AggregateFunc::kSum, AggregateFunc::kCount, AggregateFunc::kAverage,
    AggregateFunc::kMin, AggregateFunc::kMax};

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

// ---------------------------------------------------------------------------
// QueryEngine equivalence on seeded random EDBs (tombstones included).

class ColumnarEngineEquivalenceTest : public ::testing::Test {
 protected:
  ColumnarEngineEquivalenceTest() : env_(MakeTempDir(), 256) {}

  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
  }

  TypedFile<EdbRecord> MakeEdb(int64_t rows, uint64_t seed) {
    auto created = TypedFile<EdbRecord>::Create(
        env_.disk(), "edb_seed" + std::to_string(seed));
    EXPECT_TRUE(created.ok());
    TypedFile<EdbRecord> edb = std::move(created).value();
    auto appender = edb.MakeAppender(env_.pool());
    Rng rng(seed);
    for (int64_t i = 0; i < rows; ++i) {
      EdbRecord rec{};
      if (rng.Bernoulli(1.0 / 7)) {
        rec.fact_id = -1;
        rec.weight = 0;
      } else {
        rec.fact_id = static_cast<FactId>(rng.Uniform(64));  // repeats ids
        rec.weight = rng.NextDouble() + 1e-6;
        rec.measure = rng.NextDouble() * 100;
      }
      for (int d = 0; d < schema_.num_dims(); ++d) {
        rec.leaf[d] = static_cast<int32_t>(
            rng.Uniform(static_cast<uint64_t>(schema_.dim(d).num_leaves())));
      }
      IOLAP_EXPECT_OK(appender.Append(rec));
    }
    appender.Close();
    return edb;
  }

  std::vector<QueryRegion> ProbeRegions() const {
    std::vector<QueryRegion> regions = {QueryRegion::All()};
    for (NodeId node : schema_.dim(0).nodes_at_level(1)) {
      regions.push_back(QueryRegion::All().With(0, node));
    }
    for (NodeId node : schema_.dim(1).nodes_at_level(2)) {
      regions.push_back(QueryRegion::All().With(1, node));
    }
    return regions;
  }

  StorageEnv env_;
  StarSchema schema_;
};

TEST_F(ColumnarEngineEquivalenceTest, AnswersMatchRowPathAcrossSeeds) {
  for (const uint64_t seed : {11u, 22u, 33u}) {
    TypedFile<EdbRecord> edb = MakeEdb(3000, seed);
    ColumnarWriteOptions opts;
    opts.rows_per_extent = 512;  // several extents
    IOLAP_ASSERT_OK_AND_ASSIGN(ColumnarEdb col,
                               WriteColumnarEdb(env_, schema_, edb, opts));
    QueryEngine row_engine(&env_, &schema_, &edb);
    QueryEngine col_engine(&env_, &schema_, &edb);
    col_engine.set_columnar(&col);

    for (const QueryRegion& region : ProbeRegions()) {
      for (AggregateFunc func : kAllFuncs) {
        IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult want,
                                   row_engine.Aggregate(region, func));
        IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult got,
                                   col_engine.Aggregate(region, func));
        // Same rows, same order, same arithmetic: not just 1e-9-close but
        // byte-identical.
        EXPECT_EQ(want.value, got.value);
        EXPECT_EQ(want.sum, got.sum);
        EXPECT_EQ(want.count, got.count);
      }
      for (int dim = 0; dim < schema_.num_dims(); ++dim) {
        for (int level = 1; level <= schema_.dim(dim).num_levels(); ++level) {
          IOLAP_ASSERT_OK_AND_ASSIGN(
              auto want,
              row_engine.RollUp(region, dim, level, AggregateFunc::kSum));
          IOLAP_ASSERT_OK_AND_ASSIGN(
              auto got,
              col_engine.RollUp(region, dim, level, AggregateFunc::kSum));
          ASSERT_EQ(want.size(), got.size());
          for (size_t g = 0; g < want.size(); ++g) {
            EXPECT_EQ(want[g].value, got[g].value);
          }
        }
      }
      // Provenance: identical record vectors, byte for byte.
      IOLAP_ASSERT_OK_AND_ASSIGN(auto want_rows, row_engine.FactsIn(region));
      IOLAP_ASSERT_OK_AND_ASSIGN(auto got_rows, col_engine.FactsIn(region));
      ASSERT_EQ(want_rows.size(), got_rows.size());
      if (!want_rows.empty()) {
        EXPECT_EQ(std::memcmp(want_rows.data(), got_rows.data(),
                              want_rows.size() * sizeof(EdbRecord)),
                  0);
      }
    }
    for (const FactId id : {FactId{0}, FactId{17}, FactId{63}}) {
      IOLAP_ASSERT_OK_AND_ASSIGN(auto want, row_engine.CompletionsOf(id));
      IOLAP_ASSERT_OK_AND_ASSIGN(auto got, col_engine.CompletionsOf(id));
      ASSERT_EQ(want.size(), got.size());
      if (!want.empty()) {
        EXPECT_EQ(std::memcmp(want.data(), got.data(),
                              want.size() * sizeof(EdbRecord)),
                  0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Serve-layer mirror lifecycle over the paper-example maintenance stack.

class ColumnarServeTest : public ::testing::Test {
 protected:
  ColumnarServeTest() : env_(MakeTempDir(), 256) {}

  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
    StorageEnv scratch(MakeTempDir(), 32);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto gen,
                               MakePaperExampleFacts(scratch, schema_));
    auto cursor = gen.Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts_.push_back(f);
    }
    AllocationOptions options;
    options.policy = PolicyKind::kUniform;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env_, facts_));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        manager_, MaintenanceManager::Build(env_, schema_, &file, options));
  }

  std::vector<QueryRegion> ProbeRegions() const {
    std::vector<QueryRegion> regions = {QueryRegion::All()};
    for (NodeId node : schema_.dim(0).nodes_at_level(1)) {
      regions.push_back(QueryRegion::All().With(0, node));
    }
    for (NodeId node : schema_.dim(1).nodes_at_level(2)) {
      regions.push_back(QueryRegion::All().With(1, node));
    }
    return regions;
  }

  /// Every probe region × function, columnar service vs a fresh row-path
  /// engine scan of the current EDB. Exact equality (same arithmetic).
  void ExpectServiceMatchesEngine(QueryService& service) {
    QueryEngine engine(&env_, &schema_, &manager_->edb());
    for (const QueryRegion& region : ProbeRegions()) {
      for (AggregateFunc func : kAllFuncs) {
        IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult want,
                                   engine.Aggregate(region, func));
        IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult got,
                                   service.UncachedAggregate(region, func));
        EXPECT_EQ(want.value, got.value);
      }
    }
  }

  StorageEnv env_;
  StarSchema schema_;
  std::vector<FactRecord> facts_;
  std::unique_ptr<MaintenanceManager> manager_;
};

TEST_F(ColumnarServeTest, ColumnarServiceMatchesRowService) {
  ServeOptions row_opts;
  row_opts.cache_slots = 0;
  QueryService row_service(manager_.get(), row_opts);

  ServeOptions col_opts;
  col_opts.cache_slots = 0;
  col_opts.edb_format = EdbFormat::kColumnar;
  col_opts.columnar_rows_per_extent = 16;  // several extents even here
  QueryService col_service(manager_.get(), col_opts);
  EXPECT_FALSE(row_service.columnar_active());
  EXPECT_TRUE(col_service.columnar_active());

  for (const QueryRegion& region : ProbeRegions()) {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult want,
                                 row_service.UncachedAggregate(region, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult got,
                                 col_service.UncachedAggregate(region, func));
      EXPECT_EQ(want.value, got.value);
      EXPECT_EQ(want.sum, got.sum);
      EXPECT_EQ(want.count, got.count);
      EXPECT_EQ(want.min, got.min);
      EXPECT_EQ(want.max, got.max);
    }
    for (int level = 1; level <= schema_.dim(0).num_levels(); ++level) {
      IOLAP_ASSERT_OK_AND_ASSIGN(
          auto want,
          row_service.UncachedRollUp(region, 0, level, AggregateFunc::kSum));
      IOLAP_ASSERT_OK_AND_ASSIGN(
          auto got,
          col_service.UncachedRollUp(region, 0, level, AggregateFunc::kSum));
      ASSERT_EQ(want.size(), got.size());
      for (size_t g = 0; g < want.size(); ++g) {
        EXPECT_EQ(want[g].value, got[g].value);
      }
    }
  }
}

TEST_F(ColumnarServeTest, ShardedThreadedColumnarMatchesSerial) {
  ServeOptions serial;
  serial.cache_slots = 0;
  QueryService row_service(manager_.get(), serial);

  ServeOptions sharded;
  sharded.cache_slots = 0;
  sharded.edb_format = EdbFormat::kColumnar;
  sharded.columnar_rows_per_extent = 16;
  sharded.num_shards = 4;
  sharded.num_threads = 2;
  QueryService col_service(manager_.get(), sharded);

  for (const QueryRegion& region : ProbeRegions()) {
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult want,
        row_service.UncachedAggregate(region, AggregateFunc::kSum));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        AggregateResult got,
        col_service.UncachedAggregate(region, AggregateFunc::kSum));
    EXPECT_EQ(want.value, got.value);
  }
}

TEST_F(ColumnarServeTest, MirrorDroppedByMutationRebuiltByCompactAndRefresh) {
  ServeOptions opts;
  opts.edb_format = EdbFormat::kColumnar;
  opts.columnar_rows_per_extent = 16;
  QueryService service(manager_.get(), opts);
  ASSERT_TRUE(service.columnar_active());
  ExpectServiceMatchesEngine(service);

  // Any mutation drops the mirror; answers fall back to the row path and
  // reflect the mutation immediately.
  IOLAP_ASSERT_OK(
      service.ApplyUpdates({FactUpdate{facts_[0], facts_[0].measure + 5}}));
  EXPECT_FALSE(service.columnar_active());
  ExpectServiceMatchesEngine(service);

  // RefreshColumnar restores columnar scans over the mutated EDB.
  IOLAP_ASSERT_OK(service.RefreshColumnar());
  EXPECT_TRUE(service.columnar_active());
  ExpectServiceMatchesEngine(service);

  // A delete drops it again; Compact squeezes out the tombstones and
  // rebuilds the mirror as part of the same locked section.
  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[1]}));
  EXPECT_FALSE(service.columnar_active());
  ExpectServiceMatchesEngine(service);
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t removed, service.Compact());
  EXPECT_GT(removed, 0);
  EXPECT_TRUE(service.columnar_active());
  ExpectServiceMatchesEngine(service);

  // Provenance answers also match the row-path engine while the mirror is
  // active.
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto want, engine.CompletionsOf(facts_[2].fact_id));
  IOLAP_ASSERT_OK_AND_ASSIGN(auto got, service.CompletionsOf(facts_[2].fact_id));
  ASSERT_EQ(want.size(), got.size());
  if (!want.empty()) {
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          want.size() * sizeof(EdbRecord)),
              0);
  }
}

TEST_F(ColumnarServeTest, AggIndexBuildsFromColumnarMirror) {
  ServeOptions opts;
  opts.edb_format = EdbFormat::kColumnar;
  opts.columnar_rows_per_extent = 16;
  opts.agg_index = true;
  QueryService service(manager_.get(), opts);
  ASSERT_TRUE(service.columnar_active());

  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (const QueryRegion& region : ProbeRegions()) {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult want,
                                 engine.Aggregate(region, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult got,
                                 service.Aggregate(region, func));
      EXPECT_NEAR(want.value, got.value, 1e-9);
    }
  }
  ASSERT_NE(service.agg_index(), nullptr);
  EXPECT_GE(service.agg_index()->stats().builds, 1);
}

}  // namespace
}  // namespace iolap
