// The hierarchical aggregate index: every index-tier answer must be
// indistinguishable (to 1e-9) from a fresh QueryEngine scan of the same
// EDB — for all five aggregate functions, across every mutation kind
// (update / insert / delete / compact), through both the direct AggIndex
// API and the QueryService tier that serves cache misses from it.

#include "aggidx/agg_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "alloc/allocator.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "serve/query_service.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "fcopy"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

FactRecord MakeFactAt(const StarSchema& schema, FactId id, double measure,
                      NodeId n0, NodeId n1) {
  FactRecord f;
  f.fact_id = id;
  f.measure = measure;
  f.node[0] = n0;
  f.node[1] = n1;
  f.level[0] = static_cast<uint8_t>(schema.dim(0).level(n0));
  f.level[1] = static_cast<uint8_t>(schema.dim(1).level(n1));
  return f;
}

constexpr AggregateFunc kAllFuncs[] = {
    AggregateFunc::kSum, AggregateFunc::kCount, AggregateFunc::kAverage,
    AggregateFunc::kMin, AggregateFunc::kMax};

/// Paper-example fixture. The service is built with the cache disabled so
/// every query is a miss and must be answered by the index tier (the scan
/// only runs if the index errors, which the probe-count assertions catch).
class AggIndexTest : public ::testing::Test {
 protected:
  AggIndexTest() : env_(MakeTempDir(), 256) {}

  void SetUp() override {
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, MakePaperExampleSchema());
    StorageEnv scratch(MakeTempDir(), 32);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto gen,
                               MakePaperExampleFacts(scratch, schema_));
    auto cursor = gen.Scan(scratch.pool());
    FactRecord f;
    while (!cursor.done()) {
      IOLAP_ASSERT_OK(cursor.Next(&f));
      facts_.push_back(f);
    }
    AllocationOptions options;
    options.policy = PolicyKind::kUniform;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env_, facts_));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        manager_, MaintenanceManager::Build(env_, schema_, &file, options));
  }

  ServeOptions IndexOnlyOptions() const {
    ServeOptions opts;
    opts.cache_slots = 0;  // no cache: every answer comes from the index
    opts.agg_index = true;
    return opts;
  }

  std::vector<QueryRegion> ProbeRegions() const {
    std::vector<QueryRegion> regions = {QueryRegion::All()};
    for (NodeId node : schema_.dim(0).nodes_at_level(1)) {
      regions.push_back(QueryRegion::All().With(0, node));
    }
    for (NodeId node : schema_.dim(1).nodes_at_level(2)) {
      regions.push_back(QueryRegion::All().With(1, node));
    }
    return regions;
  }

  /// Asserts every probe × function agrees with a fresh QueryEngine scan.
  void ExpectIndexMatchesEngine(QueryService& service) {
    QueryEngine engine(&env_, &schema_, &manager_->edb());
    for (const QueryRegion& region : ProbeRegions()) {
      for (AggregateFunc func : kAllFuncs) {
        IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                                   engine.Aggregate(region, func));
        IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult got,
                                   service.Aggregate(region, func));
        EXPECT_NEAR(got.value, expected.value, 1e-9);
        EXPECT_NEAR(got.sum, expected.sum, 1e-9);
        EXPECT_NEAR(got.count, expected.count, 1e-9);
      }
    }
  }

  StorageEnv env_;
  StarSchema schema_;
  std::vector<FactRecord> facts_;
  std::unique_ptr<MaintenanceManager> manager_;
};

TEST_F(AggIndexTest, DirectAggregateMatchesEngineAllFuncs) {
  AggIndex index(&env_, &schema_, &manager_->edb());
  IOLAP_ASSERT_OK(index.Build());
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (const QueryRegion& region : ProbeRegions()) {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                                 engine.Aggregate(region, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult got,
                                 index.Aggregate(region, func));
      EXPECT_NEAR(got.value, expected.value, 1e-9);
      EXPECT_NEAR(got.min, expected.min, 1e-9);
      EXPECT_NEAR(got.max, expected.max, 1e-9);
    }
  }
  AggIndex::Stats stats = index.stats();
  EXPECT_EQ(stats.builds, 1);
  EXPECT_GT(stats.cells, 0);
  EXPECT_GT(stats.pages, 0);
  EXPECT_GT(stats.probes, 0);
  EXPECT_GT(stats.nodes_read, 0);
}

TEST_F(AggIndexTest, DirectRollUpMatchesEngine) {
  AggIndex index(&env_, &schema_, &manager_->edb());
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (int dim = 0; dim < schema_.num_dims(); ++dim) {
    for (int level = 1; level <= schema_.dim(dim).num_levels(); ++level) {
      for (AggregateFunc func : kAllFuncs) {
        IOLAP_ASSERT_OK_AND_ASSIGN(
            auto expected, engine.RollUp(QueryRegion::All(), dim, level, func));
        IOLAP_ASSERT_OK_AND_ASSIGN(
            auto got, index.RollUp(QueryRegion::All(), dim, level, func));
        ASSERT_EQ(got.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_NEAR(got[i].value, expected[i].value, 1e-9);
        }
      }
    }
  }
}

TEST_F(AggIndexTest, RollUpRejectsBadArguments) {
  AggIndex index(&env_, &schema_, &manager_->edb());
  EXPECT_EQ(index.RollUp(QueryRegion::All(), 7, 1, AggregateFunc::kSum)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index.RollUp(QueryRegion::All(), 0, 9, AggregateFunc::kSum)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AggIndexTest, LazyBuildOnFirstQuery) {
  AggIndex index(&env_, &schema_, &manager_->edb());
  EXPECT_EQ(index.stats().builds, 0);
  IOLAP_ASSERT_OK(
      index.Aggregate(QueryRegion::All(), AggregateFunc::kSum).status());
  EXPECT_EQ(index.stats().builds, 1);
  IOLAP_ASSERT_OK(
      index.Aggregate(QueryRegion::All(), AggregateFunc::kMax).status());
  EXPECT_EQ(index.stats().builds, 1);  // built once, reused
}

TEST_F(AggIndexTest, ServiceAnswersMissesFromIndex) {
  QueryService service(manager_.get(), IndexOnlyOptions());
  ASSERT_NE(service.agg_index(), nullptr);
  ExpectIndexMatchesEngine(service);
  // With the cache off, every one of those answers was an index probe.
  EXPECT_GT(service.agg_index()->stats().probes, 0);
}

TEST_F(AggIndexTest, UpdateKeepsIndexConsistent) {
  QueryService service(manager_.get(), IndexOnlyOptions());
  ExpectIndexMatchesEngine(service);  // build, then patch incrementally

  FactUpdate u{facts_[0], facts_[0].measure + 900};
  IOLAP_ASSERT_OK(service.ApplyUpdates({u}));
  ExpectIndexMatchesEngine(service);

  // A second update, downward this time (min/max can only shrink via the
  // dirty-rebuild path).
  FactRecord cur = facts_[0];
  cur.measure += 900;
  IOLAP_ASSERT_OK(service.ApplyUpdates({FactUpdate{cur, 1.0}}));
  ExpectIndexMatchesEngine(service);
}

TEST_F(AggIndexTest, InsertKeepsIndexConsistent) {
  QueryService service(manager_.get(), IndexOnlyOptions());
  ExpectIndexMatchesEngine(service);

  // A precise insert lands in an existing or brand-new cell (overlay path);
  // an imprecise insert re-allocates the components it overlaps.
  FactRecord precise = facts_[0];
  precise.fact_id = 1000;
  precise.measure = 123.0;
  IOLAP_ASSERT_OK(service.InsertFacts({precise}));
  ExpectIndexMatchesEngine(service);

  FactRecord imprecise = facts_[0];
  imprecise.fact_id = 1001;
  imprecise.measure = 7.0;
  imprecise.node[0] = schema_.dim(0).nodes_at_level(2)[0];
  imprecise.level[0] =
      static_cast<uint8_t>(schema_.dim(0).level(imprecise.node[0]));
  IOLAP_ASSERT_OK(service.InsertFacts({imprecise}));
  ExpectIndexMatchesEngine(service);
}

TEST_F(AggIndexTest, DeleteKeepsIndexConsistent) {
  QueryService service(manager_.get(), IndexOnlyOptions());
  ExpectIndexMatchesEngine(service);

  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[1]}));
  // Min/max over a region covering the delete must come from the dirty
  // rebuild, never a stale extremum; sum/count are patched in place.
  ExpectIndexMatchesEngine(service);
  EXPECT_GT(service.agg_index()->stats().refreshes +
                service.agg_index()->stats().builds,
            1);
}

TEST_F(AggIndexTest, CompactKeepsIndexConsistent) {
  QueryService service(manager_.get(), IndexOnlyOptions());
  ExpectIndexMatchesEngine(service);

  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[1]}));
  ExpectIndexMatchesEngine(service);
  IOLAP_ASSERT_OK_AND_ASSIGN(int64_t removed, service.Compact());
  EXPECT_GE(removed, 1);
  // Compaction is a logical no-op: the index stays valid as-is.
  ExpectIndexMatchesEngine(service);
}

TEST_F(AggIndexTest, MutationsWithRollUpsStayConsistent) {
  QueryService service(manager_.get(), IndexOnlyOptions());
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  auto check_rollups = [&] {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(
          auto expected, engine.RollUp(QueryRegion::All(), 0, 2, func));
      IOLAP_ASSERT_OK_AND_ASSIGN(
          auto got, service.RollUp(QueryRegion::All(), 0, 2, func));
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(got[i].value, expected[i].value, 1e-9);
      }
    }
  };
  check_rollups();
  IOLAP_ASSERT_OK(
      service.ApplyUpdates({FactUpdate{facts_[2], facts_[2].measure * 3}}));
  check_rollups();
  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[0]}));
  check_rollups();
}

TEST_F(AggIndexTest, IndexAndCacheTiersAgree) {
  ServeOptions opts;
  opts.agg_index = true;  // cache on AND index on: miss → index → cached
  QueryService service(manager_.get(), opts);
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (const QueryRegion& region : ProbeRegions()) {
    for (AggregateFunc func : kAllFuncs) {
      IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                                 engine.Aggregate(region, func));
      bool hit = true;
      IOLAP_ASSERT_OK_AND_ASSIGN(
          AggregateResult miss, service.Aggregate(region, func, nullptr, &hit));
      EXPECT_FALSE(hit);
      IOLAP_ASSERT_OK_AND_ASSIGN(
          AggregateResult warm, service.Aggregate(region, func, nullptr, &hit));
      EXPECT_TRUE(hit);
      EXPECT_NEAR(miss.value, expected.value, 1e-9);
      EXPECT_NEAR(warm.value, expected.value, 1e-9);
    }
  }
}

/// Two spatially separated halves (same layout as the serve layer's
/// selective-invalidation fixture): mutations in one half must patch or
/// dirty only what they touched, and min/max staleness must be confined to
/// the touched boxes.
class AggIndexSelectiveTest : public ::testing::Test {
 protected:
  AggIndexSelectiveTest() : env_(MakeTempDir(), 256) {}

  void SetUp() override {
    std::vector<Hierarchy> dims;
    IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d0,
                               HierarchyBuilder::Uniform("D0", {2, 4}));
    IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d1,
                               HierarchyBuilder::Uniform("D1", {2, 2}));
    dims.push_back(d0);
    dims.push_back(d1);
    IOLAP_ASSERT_OK_AND_ASSIGN(schema_, StarSchema::Create(std::move(dims)));
    half_a_ = schema_.dim(0).nodes_at_level(2)[0];
    half_b_ = schema_.dim(0).nodes_at_level(2)[1];
    const auto& d0_leaves = schema_.dim(0).nodes_at_level(1);
    const auto& d1_leaves = schema_.dim(1).nodes_at_level(1);
    facts_ = {
        MakeFactAt(schema_, 1, 10, d0_leaves[0], d1_leaves[0]),
        MakeFactAt(schema_, 2, 20, d0_leaves[1], d1_leaves[1]),
        MakeFactAt(schema_, 3, 30, half_a_, d1_leaves[0]),  // imprecise in A
        MakeFactAt(schema_, 4, 40, d0_leaves[4], d1_leaves[0]),
        MakeFactAt(schema_, 5, 50, d0_leaves[5], d1_leaves[1]),
        MakeFactAt(schema_, 6, 60, half_b_, d1_leaves[1]),  // imprecise in B
    };
    AllocationOptions options;
    options.policy = PolicyKind::kMeasure;
    IOLAP_ASSERT_OK_AND_ASSIGN(auto file, WriteFacts(env_, facts_));
    IOLAP_ASSERT_OK_AND_ASSIGN(
        manager_, MaintenanceManager::Build(env_, schema_, &file, options));
  }

  StorageEnv env_;
  StarSchema schema_;
  NodeId half_a_ = 0;
  NodeId half_b_ = 0;
  std::vector<FactRecord> facts_;
  std::unique_ptr<MaintenanceManager> manager_;
};

TEST_F(AggIndexSelectiveTest, DeleteInOneHalfOnlyDirtiesThatHalf) {
  ServeOptions opts;
  opts.cache_slots = 0;
  opts.agg_index = true;
  QueryService service(manager_.get(), opts);
  QueryRegion region_a = QueryRegion::All().With(0, half_a_);
  QueryRegion region_b = QueryRegion::All().With(0, half_b_);

  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult a_max,
      service.Aggregate(region_a, AggregateFunc::kMax));
  EXPECT_NEAR(a_max.value, 30, 1e-9);
  const int64_t builds_before = service.agg_index()->stats().builds +
                                service.agg_index()->stats().refreshes;

  // Delete fact 5 (in half B): its boxes lie entirely in B.
  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[4]}));
  EXPECT_GT(service.agg_index()->stats().dirty_boxes, 0);

  // A min/max query over half A is disjoint from every dirty rect, so it
  // must be answered without a rebuild — and still be exact.
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult a_after, service.Aggregate(region_a, AggregateFunc::kMax));
  EXPECT_NEAR(a_after.value, 30, 1e-9);
  EXPECT_EQ(service.agg_index()->stats().builds +
                service.agg_index()->stats().refreshes,
            builds_before);

  // Over half B the dirty rect forces the lazy rebuild, and the fresh
  // answer matches the engine.
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  IOLAP_ASSERT_OK_AND_ASSIGN(
      AggregateResult b_after, service.Aggregate(region_b, AggregateFunc::kMax));
  IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult b_expected,
                             engine.Aggregate(region_b, AggregateFunc::kMax));
  EXPECT_NEAR(b_after.value, b_expected.value, 1e-9);
  EXPECT_GT(service.agg_index()->stats().builds +
                service.agg_index()->stats().refreshes,
            builds_before);
}

TEST_F(AggIndexSelectiveTest, SumQueriesNeverRebuildAfterDeletes) {
  ServeOptions opts;
  opts.cache_slots = 0;
  opts.agg_index = true;
  QueryService service(manager_.get(), opts);
  IOLAP_ASSERT_OK(
      service.Aggregate(QueryRegion::All(), AggregateFunc::kSum).status());
  const int64_t rebuilds_before = service.agg_index()->stats().builds +
                                  service.agg_index()->stats().refreshes;

  IOLAP_ASSERT_OK(service.DeleteFacts({facts_[0]}));
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (AggregateFunc func :
       {AggregateFunc::kSum, AggregateFunc::kCount, AggregateFunc::kAverage}) {
    IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                               engine.Aggregate(QueryRegion::All(), func));
    IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult got,
                               service.Aggregate(QueryRegion::All(), func));
    EXPECT_NEAR(got.value, expected.value, 1e-9);
  }
  // Additive partials are patched in place — deletes alone never force the
  // sum/count/average path to rebuild.
  EXPECT_EQ(service.agg_index()->stats().builds +
                service.agg_index()->stats().refreshes,
            rebuilds_before);
}

TEST_F(AggIndexSelectiveTest, InvalidateForcesRebuildOnNextQuery) {
  AggIndex index(&env_, &schema_, &manager_->edb());
  IOLAP_ASSERT_OK(index.Build());
  EXPECT_EQ(index.stats().builds, 1);
  index.Invalidate();
  IOLAP_ASSERT_OK(
      index.Aggregate(QueryRegion::All(), AggregateFunc::kSum).status());
  EXPECT_EQ(index.stats().builds, 2);
}

TEST_F(AggIndexSelectiveTest, EmptyEdbAnswersEmptyAggregates) {
  ServeOptions opts;
  opts.cache_slots = 0;
  opts.agg_index = true;
  QueryService service(manager_.get(), opts);
  IOLAP_ASSERT_OK(service.DeleteFacts(facts_));
  QueryEngine engine(&env_, &schema_, &manager_->edb());
  for (AggregateFunc func : kAllFuncs) {
    IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult expected,
                               engine.Aggregate(QueryRegion::All(), func));
    IOLAP_ASSERT_OK_AND_ASSIGN(AggregateResult got,
                               service.Aggregate(QueryRegion::All(), func));
    EXPECT_NEAR(got.value, expected.value, 1e-9);
  }
}

}  // namespace
}  // namespace iolap
