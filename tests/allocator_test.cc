#include "alloc/allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/table2.h"
#include "tests/test_util.h"

namespace iolap {
namespace {

using CellKey = std::array<int32_t, kMaxDims>;
using EdbMap = std::map<std::pair<FactId, CellKey>, double>;

// ------------------------------------------------------------------------
// Brute-force reference implementation of the allocation template, written
// independently of the library's algorithms: C = distinct precise cells,
// run exactly `iterations` EM steps, emit p = Δ(c)/Γ(r) with Γ recomputed
// from the final Δ.
EdbMap ReferenceAllocate(const StarSchema& schema,
                         const std::vector<FactRecord>& facts,
                         PolicyKind policy, int iterations) {
  const int k = schema.num_dims();
  std::map<CellKey, double> delta;  // cell -> Δ (δ-seeded)
  std::vector<const FactRecord*> imprecise;
  EdbMap edb;
  for (const FactRecord& f : facts) {
    if (f.IsPrecise(k)) {
      CellKey key{};
      for (int d = 0; d < k; ++d) key[d] = schema.dim(d).leaf_begin(f.node[d]);
      double contribution = policy == PolicyKind::kCount    ? 1.0
                            : policy == PolicyKind::kMeasure ? f.measure
                                                             : 0.0;
      auto [it, inserted] = delta.emplace(
          key, policy == PolicyKind::kUniform ? 1.0 : 0.0);
      it->second += contribution;
      edb[{f.fact_id, key}] = 1.0;
    } else {
      imprecise.push_back(&f);
    }
  }
  auto covered_cells = [&](const FactRecord& f) {
    std::vector<CellKey> cells;
    for (const auto& [key, d] : delta) {
      bool inside = true;
      for (int dim = 0; dim < k && inside; ++dim) {
        inside = schema.dim(dim).Covers(f.node[dim], key[dim]);
      }
      if (inside) cells.push_back(key);
    }
    return cells;
  };
  std::map<CellKey, double> delta0 = delta;
  for (int t = 0; t < iterations; ++t) {
    std::map<const FactRecord*, double> gamma;
    for (const FactRecord* f : imprecise) {
      double g = 0;
      for (const CellKey& c : covered_cells(*f)) g += delta[c];
      gamma[f] = g;
    }
    std::map<CellKey, double> next = delta0;
    for (const FactRecord* f : imprecise) {
      if (gamma[f] <= 0) continue;
      for (const CellKey& c : covered_cells(*f)) {
        next[c] += delta[c] / gamma[f];
      }
    }
    delta = next;
  }
  for (const FactRecord* f : imprecise) {
    double g = 0;
    for (const CellKey& c : covered_cells(*f)) g += delta[c];
    if (g <= 0) continue;  // unallocatable
    for (const CellKey& c : covered_cells(*f)) {
      edb[{f->fact_id, c}] = delta[c] / g;
    }
  }
  return edb;
}

EdbMap LoadEdb(StorageEnv& env, const TypedFile<EdbRecord>& edb) {
  EdbMap out;
  auto cursor = edb.Scan(env.pool());
  EdbRecord rec;
  while (!cursor.done()) {
    EXPECT_TRUE(cursor.Next(&rec).ok());
    CellKey key{};
    std::memcpy(key.data(), rec.leaf, sizeof(rec.leaf));
    auto [it, inserted] = out.emplace(std::make_pair(rec.fact_id, key),
                                      rec.weight);
    EXPECT_TRUE(inserted) << "duplicate EDB row for fact " << rec.fact_id;
  }
  return out;
}

void ExpectEdbNear(const EdbMap& got, const EdbMap& want, double tol) {
  EXPECT_EQ(got.size(), want.size());
  for (const auto& [key, weight] : want) {
    auto it = got.find(key);
    ASSERT_NE(it, got.end())
        << "missing EDB row for fact " << key.first;
    EXPECT_NEAR(it->second, weight, tol) << "fact " << key.first;
  }
}

void ExpectWeightsSumToOne(const EdbMap& edb, int64_t unallocatable,
                           int64_t num_facts) {
  std::map<FactId, double> sums;
  for (const auto& [key, weight] : edb) {
    EXPECT_GE(weight, 0);
    EXPECT_LE(weight, 1 + 1e-9);
    sums[key.first] += weight;
  }
  EXPECT_EQ(static_cast<int64_t>(sums.size()) + unallocatable, num_facts);
  for (const auto& [fact, sum] : sums) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << "fact " << fact;
  }
}

std::vector<FactRecord> ReadFacts(StorageEnv& env,
                                  const TypedFile<FactRecord>& facts) {
  std::vector<FactRecord> out;
  auto cursor = facts.Scan(env.pool());
  FactRecord f;
  while (!cursor.done()) {
    EXPECT_TRUE(cursor.Next(&f).ok());
    out.push_back(f);
  }
  return out;
}

Result<TypedFile<FactRecord>> WriteFacts(StorageEnv& env,
                                         const std::vector<FactRecord>& facts) {
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "facts2"));
  auto appender = file.MakeAppender(env.pool());
  for (const FactRecord& f : facts) IOLAP_RETURN_IF_ERROR(appender.Append(f));
  appender.Close();
  return file;
}

// ------------------------------------------------------------------------

TEST(AllocatorPaperExample, UniformAllocationsMatchHandComputation) {
  StorageEnv env(MakeTempDir(), 64);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
  AllocationOptions options;
  options.policy = PolicyKind::kUniform;
  options.algorithm = AlgorithmKind::kBlock;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  EdbMap edb = LoadEdb(env, result.edb);

  // Cells in C (precise cells, canonical leaf order):
  //   c1=(MA,Civic)=(0,0) c2=(MA,Sierra)=(0,3) c3=(NY,F150)=(1,2)
  //   c4=(CA,Civic)=(3,0) c5=(CA,Sierra)=(3,3)
  // p6 (MA, Sedan) covers only c1 -> weight 1.
  EXPECT_NEAR(edb.at({6, CellKey{0, 0}}), 1.0, 1e-12);
  // p8 (CA, ALL) covers c4, c5 -> 0.5 each.
  EXPECT_NEAR(edb.at({8, CellKey{3, 0}}), 0.5, 1e-12);
  EXPECT_NEAR(edb.at({8, CellKey{3, 3}}), 0.5, 1e-12);
  // p11 (ALL, Civic) covers c1, c4.
  EXPECT_NEAR(edb.at({11, CellKey{0, 0}}), 0.5, 1e-12);
  EXPECT_NEAR(edb.at({11, CellKey{3, 0}}), 0.5, 1e-12);
  // p9 (East, Truck) covers c2 (MA,Sierra) and c3 (NY,F150).
  EXPECT_NEAR(edb.at({9, CellKey{0, 3}}), 0.5, 1e-12);
  EXPECT_NEAR(edb.at({9, CellKey{1, 2}}), 0.5, 1e-12);
  ExpectWeightsSumToOne(edb, result.unallocatable_facts, 14);
}

TEST(AllocatorPaperExample, TransitiveFindsTheTwoComponents) {
  StorageEnv env(MakeTempDir(), 64);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
  AllocationOptions options;
  options.algorithm = AlgorithmKind::kTransitive;
  options.epsilon = 1e-6;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  // Example 5: CC1 has 9 tuples (3 cells + 6 imprecise facts), CC2 has 5
  // (2 cells + 3 imprecise facts).
  EXPECT_EQ(result.components.num_components, 2);
  EXPECT_EQ(result.components.largest_component, 9);
  EXPECT_EQ(result.components.num_singleton_cells, 0);
  EXPECT_EQ(result.unallocatable_facts, 0);
}

// ------------------------------------------------------------------------
// Equivalence sweep: every algorithm × several buffer sizes on randomized
// datasets must match the brute-force reference exactly (same fixed
// iteration count; FP tolerance only).

struct SweepParam {
  AlgorithmKind algorithm;
  int buffer_pages;
  uint64_t seed;
  PolicyKind policy;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(AlgorithmName(info.param.algorithm)) + "_b" +
         std::to_string(info.param.buffer_pages) + "_s" +
         std::to_string(info.param.seed) + "_" +
         (info.param.policy == PolicyKind::kCount ? "count" : "measure");
}

class AllocatorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AllocatorSweep, MatchesReference) {
  const SweepParam& param = GetParam();
  StorageEnv env(MakeTempDir(), param.buffer_pages);

  // A small, dense 3-d schema so regions overlap heavily.
  std::vector<Hierarchy> dims;
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d0,
                             HierarchyBuilder::Uniform("D0", {3, 3}));
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d1,
                             HierarchyBuilder::Uniform("D1", {2, 2, 2}));
  IOLAP_ASSERT_OK_AND_ASSIGN(Hierarchy d2,
                             HierarchyBuilder::Uniform("D2", {4, 2}));
  dims.push_back(d0);
  dims.push_back(d1);
  dims.push_back(d2);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema,
                             StarSchema::Create(std::move(dims)));

  DatasetSpec spec;
  spec.num_facts = 600;
  spec.imprecise_fraction = 0.4;
  spec.allow_all = true;
  spec.all_fraction = 0.15;
  spec.seed = param.seed;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  std::vector<FactRecord> raw = ReadFacts(env, facts);

  const int kIterations = 5;
  AllocationOptions options;
  options.policy = param.policy;
  options.algorithm = param.algorithm;
  options.epsilon = 0;  // run exactly kIterations everywhere
  options.max_iterations = kIterations;
  options.early_convergence = false;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));

  EdbMap got = LoadEdb(env, result.edb);
  EdbMap want = ReferenceAllocate(schema, raw, param.policy, kIterations);
  ExpectEdbNear(got, want, 1e-9);
  ExpectWeightsSumToOne(got, result.unallocatable_facts, spec.num_facts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocatorSweep,
    ::testing::Values(
        SweepParam{AlgorithmKind::kBasic, 128, 1, PolicyKind::kCount},
        SweepParam{AlgorithmKind::kBlock, 128, 1, PolicyKind::kCount},
        SweepParam{AlgorithmKind::kBlock, 8, 1, PolicyKind::kCount},
        SweepParam{AlgorithmKind::kBlock, 8, 2, PolicyKind::kMeasure},
        SweepParam{AlgorithmKind::kIndependent, 128, 1, PolicyKind::kCount},
        SweepParam{AlgorithmKind::kIndependent, 8, 1, PolicyKind::kCount},
        SweepParam{AlgorithmKind::kIndependent, 8, 3, PolicyKind::kMeasure},
        SweepParam{AlgorithmKind::kTransitive, 128, 1, PolicyKind::kCount},
        SweepParam{AlgorithmKind::kTransitive, 8, 1, PolicyKind::kCount},
        SweepParam{AlgorithmKind::kTransitive, 8, 4, PolicyKind::kMeasure},
        SweepParam{AlgorithmKind::kBasic, 128, 5, PolicyKind::kMeasure}),
    SweepName);

// All four algorithms agree with each other when run to convergence.
TEST(AllocatorAgreement, ConvergedAlgorithmsAgree) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  EdbMap reference;
  int64_t reference_rows = -1;
  for (AlgorithmKind algo :
       {AlgorithmKind::kBasic, AlgorithmKind::kIndependent,
        AlgorithmKind::kBlock, AlgorithmKind::kTransitive}) {
    StorageEnv env(MakeTempDir(), 64);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, MakePaperExampleFacts(env, schema));
    AllocationOptions options;
    options.algorithm = algo;
    options.epsilon = 1e-10;
    options.max_iterations = 200;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                               Allocator::Run(env, schema, &facts, options));
    EdbMap edb = LoadEdb(env, result.edb);
    if (reference_rows < 0) {
      reference = edb;
      reference_rows = static_cast<int64_t>(edb.size());
    } else {
      ExpectEdbNear(edb, reference, 1e-6);
    }
  }
}

// Theorem 2 / set-based semantics: shuffling the input fact order does not
// change the result.
TEST(AllocatorOrderInvariance, ShuffledInputGivesSameEdb) {
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  EdbMap reference;
  for (int trial = 0; trial < 3; ++trial) {
    StorageEnv env(MakeTempDir(), 32);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto original,
                               MakePaperExampleFacts(env, schema));
    std::vector<FactRecord> raw = ReadFacts(env, original);
    Rng rng(trial * 97 + 13);
    for (size_t i = raw.size(); i > 1; --i) {
      std::swap(raw[i - 1], raw[rng.Uniform(i)]);
    }
    IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, WriteFacts(env, raw));
    AllocationOptions options;
    options.algorithm = AlgorithmKind::kBlock;
    options.epsilon = 0;
    options.max_iterations = 4;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                               Allocator::Run(env, schema, &facts, options));
    EdbMap edb = LoadEdb(env, result.edb);
    if (trial == 0) {
      reference = edb;
    } else {
      ExpectEdbNear(edb, reference, 1e-12);
    }
  }
}

// Facts whose region misses every cell of C are counted, not misallocated.
TEST(AllocatorEdgeCases, UnallocatableFactsAreCounted) {
  StorageEnv env(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             TypedFile<FactRecord>::Create(env.disk(), "f"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ma, schema.dim(0).FindNode("MA"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId civic, schema.dim(1).FindNode("Civic"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId truck, schema.dim(1).FindNode("Truck"));
  IOLAP_ASSERT_OK_AND_ASSIGN(NodeId ny, schema.dim(0).FindNode("NY"));
  // One precise fact at (MA, Civic); one imprecise (NY, Truck) that covers
  // no precise cell.
  FactRecord precise;
  precise.fact_id = 1;
  precise.measure = 5;
  precise.node[0] = ma;
  precise.node[1] = civic;
  precise.level[0] = precise.level[1] = 1;
  IOLAP_ASSERT_OK(facts.Append(env.pool(), precise));
  FactRecord lost;
  lost.fact_id = 2;
  lost.measure = 7;
  lost.node[0] = ny;
  lost.level[0] = 1;
  lost.node[1] = truck;
  lost.level[1] = 2;
  IOLAP_ASSERT_OK(facts.Append(env.pool(), lost));

  for (AlgorithmKind algo :
       {AlgorithmKind::kBasic, AlgorithmKind::kIndependent,
        AlgorithmKind::kBlock, AlgorithmKind::kTransitive}) {
    StorageEnv fresh(MakeTempDir(), 32);
    IOLAP_ASSERT_OK_AND_ASSIGN(auto copy,
                               WriteFacts(fresh, ReadFacts(env, facts)));
    AllocationOptions options;
    options.algorithm = algo;
    IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                               Allocator::Run(fresh, schema, &copy, options));
    EXPECT_EQ(result.unallocatable_facts, 1)
        << AlgorithmName(algo);
    EXPECT_EQ(result.edb.size(), 1) << AlgorithmName(algo);
  }
}

TEST(AllocatorEdgeCases, AllPreciseDataset) {
  StorageEnv env(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  DatasetSpec spec;
  spec.num_facts = 100;
  spec.imprecise_fraction = 0;
  spec.seed = 5;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  AllocationOptions options;
  options.algorithm = AlgorithmKind::kTransitive;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  EXPECT_EQ(result.num_imprecise, 0);
  EXPECT_EQ(result.edb.size(), 100);
  EXPECT_EQ(result.components.num_components, 0);
  EXPECT_GT(result.components.num_singleton_cells, 0);
}

TEST(AllocatorEdgeCases, EmptyFactTable) {
  StorageEnv env(MakeTempDir(), 32);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakePaperExampleSchema());
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts,
                             TypedFile<FactRecord>::Create(env.disk(), "f"));
  AllocationOptions options;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  EXPECT_EQ(result.edb.size(), 0);
  EXPECT_EQ(result.num_cells, 0);
}

// Block's sliding windows must never exceed the precomputed partition-size
// bound (Theorem 4 / Definition 9).
TEST(AllocatorWindows, PeakWindowWithinPartitionBound) {
  StorageEnv env(MakeTempDir(), 16);
  IOLAP_ASSERT_OK_AND_ASSIGN(StarSchema schema, MakeAutomotiveSchema());
  DatasetSpec spec;
  spec.num_facts = 20000;
  spec.seed = 9;
  IOLAP_ASSERT_OK_AND_ASSIGN(auto facts, GenerateFacts(env, schema, spec));
  AllocationOptions options;
  options.algorithm = AlgorithmKind::kBlock;
  options.epsilon = 0.05;
  IOLAP_ASSERT_OK_AND_ASSIGN(AllocationResult result,
                             Allocator::Run(env, schema, &facts, options));
  EXPECT_GT(result.peak_window_records, 0);
  // Conservative global bound: sum of all partition sizes.
  // (The per-group bound is tighter; this catches runaway windows.)
  EXPECT_GT(result.num_tables, 0);
}

}  // namespace
}  // namespace iolap
