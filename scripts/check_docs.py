#!/usr/bin/env python3
"""Documentation link, cross-reference and CLI-flag checker.

Validates, for every tracked markdown file at the repo root and under
docs/:

  * relative markdown links ``[text](path)`` — the target file must exist;
    a ``#anchor`` fragment must match a heading in the target (GitHub
    slugification);
  * section references ``§N`` (optionally ``§N.M``) — resolved against the
    nearest preceding ``*.md`` filename on the same line, or against the
    current file when the line names no other document. The target must
    contain a numbered heading ``## N.``. Paper sections are written
    "Section N" by convention and are not checked;
  * command-line flags ``--flag`` — every flag a doc mentions must be one
    some binary actually reads (``Get{String,Int,Double}("flag")`` in
    tools/, bench/ or examples/) or a whitelisted external tool's flag
    (cmake/ctest). Flag mentions inside code fences count too — usage
    examples live there — except fences marked as a non-shell language
    (``cpp``/``python``…), whose ``--x`` is usually a decrement, not a
    flag.

Additionally verifies the two directions of tool documentation:

  * every flag ``tools/iolap_cli.cpp`` reads is documented in
    docs/CLI.md (mentioned as ``--flag`` somewhere in that file);
  * every benchmark binary (``bench/bench_*.cpp``) is documented: its
    stem must appear in a ``##`` heading of EXPERIMENTS.md.

Exit status 0 when everything resolves; 1 otherwise, listing every broken
reference as file:line: message.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Retrieved/driver material is not subject to the repo's cross-reference
# conventions.
EXCLUDE = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md", "CHANGES.md"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SECTION_RE = re.compile(r"§\s?(\d+)(?:\.\d+)*")
MD_NAME_RE = re.compile(r"[\w./-]*\w\.md")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
NUMBERED_HEADING_RE = re.compile(r"^#{1,6}\s+(\d+)\.\s")
CODE_FENCE_RE = re.compile(r"^(```|~~~)\s*([A-Za-z+]*)")

# A flag mention: "--name" preceded by start-of-line or a delimiter (so a
# C-style decrement "(--x" or an em-dash spelled "a--b" doesn't count).
FLAG_USE_RE = re.compile(r"(?:^|[\s`'\"\[(|=<])--([a-z][a-z0-9_-]*)")
# A flag definition in C++: flags.GetString("name", ...) etc.
FLAG_DEF_RE = re.compile(r"Get(?:String|Int|Double)\(\s*\"([a-z][a-z0-9_-]*)\"")
# Fence languages whose "--" is code, not a command line.
NON_SHELL_FENCE = {"cpp", "c++", "c", "cc", "python", "py"}
# Flags of external tools that build/test instructions legitimately show.
EXTERNAL_TOOL_FLAGS = {
    "build",              # cmake --build
    "test-dir",           # ctest --test-dir
    "output-on-failure",  # ctest --output-on-failure
}
# Directories whose C++ binaries define the repo's own flags.
FLAG_SOURCE_DIRS = ("tools", "bench", "examples")

CLI_SOURCE = os.path.join(REPO, "tools", "iolap_cli.cpp")
CLI_DOC = os.path.join(REPO, "docs", "CLI.md")


def doc_files():
    files = []
    for directory in (REPO, os.path.join(REPO, "docs")):
        for name in sorted(os.listdir(directory)):
            if name.endswith(".md") and name not in EXCLUDE:
                files.append(os.path.join(directory, name))
    return files


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces→hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def scan(path):
    """Returns (prose lines, flag-scannable lines, anchors, sections).

    Prose lines exclude code fences entirely (links and § refs belong in
    prose); flag-scannable lines additionally include the contents of
    shell/plain fences, where usage examples mention flags.
    """
    lines, flag_lines, anchors, sections = [], [], set(), set()
    fence_lang = None
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = CODE_FENCE_RE.match(line)
            if m:
                fence_lang = None if fence_lang is not None \
                    else m.group(2).lower()
                continue
            if fence_lang is not None:
                if fence_lang not in NON_SHELL_FENCE:
                    flag_lines.append((lineno, line))
                continue
            lines.append((lineno, line))
            flag_lines.append((lineno, line))
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2)))
            m = NUMBERED_HEADING_RE.match(line)
            if m:
                sections.add(int(m.group(1)))
    return lines, flag_lines, anchors, sections


def defined_flags(source_path):
    """Flags a C++ binary reads via Flags::Get{String,Int,Double}."""
    with open(source_path, encoding="utf-8") as f:
        return set(FLAG_DEF_RE.findall(f.read()))


def all_program_flags():
    flags = set()
    for directory in FLAG_SOURCE_DIRS:
        root = os.path.join(REPO, directory)
        for name in sorted(os.listdir(root)):
            if name.endswith((".cpp", ".cc", ".h")):
                flags |= defined_flags(os.path.join(root, name))
    return flags


def main():
    files = doc_files()
    meta = {path: scan(path) for path in files}
    # Targets of links/§-refs may be excluded files or files outside the two
    # scanned directories; scan targets lazily.
    def target_meta(path):
        if path not in meta:
            meta[path] = scan(path)
        return meta[path]

    known_flags = all_program_flags() | EXTERNAL_TOOL_FLAGS
    cli_flags = defined_flags(CLI_SOURCE)

    errors = []
    for path in files:
        rel = os.path.relpath(path, REPO)
        base = os.path.dirname(path)
        lines, flag_lines, _, own_sections = meta[path]
        for lineno, line in lines:
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                    continue
                target_path, _, fragment = target.partition("#")
                if target_path:
                    resolved = os.path.normpath(os.path.join(base, target_path))
                    if not os.path.exists(resolved):
                        errors.append(f"{rel}:{lineno}: broken link '{target}'")
                        continue
                else:
                    resolved = path  # pure '#anchor'
                if fragment and resolved.endswith(".md"):
                    _, _, anchors, _ = target_meta(resolved)
                    if fragment not in anchors:
                        errors.append(
                            f"{rel}:{lineno}: anchor '#{fragment}' not found "
                            f"in {os.path.relpath(resolved, REPO)}")
            for m in SECTION_RE.finditer(line):
                section = int(m.group(1))
                named = [f for f in MD_NAME_RE.findall(line[: m.start()])]
                if named:
                    candidates = [
                        os.path.normpath(os.path.join(base, named[-1])),
                        os.path.normpath(os.path.join(REPO, named[-1])),
                    ]
                    resolved = next(
                        (c for c in candidates if os.path.exists(c)), None)
                    if resolved is None:
                        errors.append(
                            f"{rel}:{lineno}: §{section} references missing "
                            f"file '{named[-1]}'")
                        continue
                    _, _, _, sections = target_meta(resolved)
                    where = os.path.relpath(resolved, REPO)
                else:
                    sections, where = own_sections, rel
                if section not in sections:
                    errors.append(
                        f"{rel}:{lineno}: §{section} has no numbered heading "
                        f"'## {section}.' in {where}")
        for lineno, line in flag_lines:
            for flag in FLAG_USE_RE.findall(line):
                if flag not in known_flags:
                    errors.append(
                        f"{rel}:{lineno}: flag '--{flag}' is not read by any "
                        f"binary under {'/'.join(FLAG_SOURCE_DIRS)} (stale "
                        "flag, or add it to EXTERNAL_TOOL_FLAGS in "
                        "scripts/check_docs.py)")

    # Every CLI flag must be documented in docs/CLI.md.
    documented = set()
    for _, line in target_meta(CLI_DOC)[1]:
        documented.update(FLAG_USE_RE.findall(line))
    for flag in sorted(cli_flags - documented):
        errors.append(
            f"tools/iolap_cli.cpp: flag '--{flag}' is not documented in "
            f"docs/CLI.md")

    experiments = os.path.join(REPO, "EXPERIMENTS.md")
    headings = " ".join(
        line for _, line in target_meta(experiments)[0]
        if line.startswith("##"))
    bench_dir = os.path.join(REPO, "bench")
    for name in sorted(os.listdir(bench_dir)):
        if not (name.startswith("bench_") and name.endswith(".cpp")):
            continue
        stem = name[: -len(".cpp")]
        if stem not in headings:
            errors.append(
                f"bench/{name}: no '## ... `{stem}`' heading in "
                f"EXPERIMENTS.md")

    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} broken documentation reference(s)",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} files: all links, anchors, § references "
          f"and {len(known_flags)} known flags resolve; "
          f"{len(cli_flags)} CLI flags documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
