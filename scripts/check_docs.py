#!/usr/bin/env python3
"""Documentation link and cross-reference checker.

Validates, for every tracked markdown file at the repo root and under
docs/:

  * relative markdown links ``[text](path)`` — the target file must exist;
    a ``#anchor`` fragment must match a heading in the target (GitHub
    slugification);
  * section references ``§N`` (optionally ``§N.M``) — resolved against the
    nearest preceding ``*.md`` filename on the same line, or against the
    current file when the line names no other document. The target must
    contain a numbered heading ``## N.``. Paper sections are written
    "Section N" by convention and are not checked.

Additionally verifies that every benchmark binary (``bench/bench_*.cpp``)
is documented: its stem must appear in a ``##`` heading of EXPERIMENTS.md.

Exit status 0 when everything resolves; 1 otherwise, listing every broken
reference as file:line: message.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Retrieved/driver material is not subject to the repo's cross-reference
# conventions.
EXCLUDE = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md", "CHANGES.md"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SECTION_RE = re.compile(r"§\s?(\d+)(?:\.\d+)*")
MD_NAME_RE = re.compile(r"[\w./-]*\w\.md")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
NUMBERED_HEADING_RE = re.compile(r"^#{1,6}\s+(\d+)\.\s")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def doc_files():
    files = []
    for directory in (REPO, os.path.join(REPO, "docs")):
        for name in sorted(os.listdir(directory)):
            if name.endswith(".md") and name not in EXCLUDE:
                files.append(os.path.join(directory, name))
    return files


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces→hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def scan(path):
    """Returns (lines outside code fences, anchor slugs, numbered sections)."""
    lines, anchors, sections = [], set(), set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            lines.append((lineno, line))
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2)))
            m = NUMBERED_HEADING_RE.match(line)
            if m:
                sections.add(int(m.group(1)))
    return lines, anchors, sections


def main():
    files = doc_files()
    meta = {path: scan(path) for path in files}
    # Targets of links/§-refs may be excluded files or files outside the two
    # scanned directories; scan targets lazily.
    def target_meta(path):
        if path not in meta:
            meta[path] = scan(path)
        return meta[path]

    errors = []
    for path in files:
        rel = os.path.relpath(path, REPO)
        base = os.path.dirname(path)
        lines, _, own_sections = meta[path]
        for lineno, line in lines:
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                    continue
                target_path, _, fragment = target.partition("#")
                if target_path:
                    resolved = os.path.normpath(os.path.join(base, target_path))
                    if not os.path.exists(resolved):
                        errors.append(f"{rel}:{lineno}: broken link '{target}'")
                        continue
                else:
                    resolved = path  # pure '#anchor'
                if fragment and resolved.endswith(".md"):
                    _, anchors, _ = target_meta(resolved)
                    if fragment not in anchors:
                        errors.append(
                            f"{rel}:{lineno}: anchor '#{fragment}' not found "
                            f"in {os.path.relpath(resolved, REPO)}")
            for m in SECTION_RE.finditer(line):
                section = int(m.group(1))
                named = [f for f in MD_NAME_RE.findall(line[: m.start()])]
                if named:
                    candidates = [
                        os.path.normpath(os.path.join(base, named[-1])),
                        os.path.normpath(os.path.join(REPO, named[-1])),
                    ]
                    resolved = next(
                        (c for c in candidates if os.path.exists(c)), None)
                    if resolved is None:
                        errors.append(
                            f"{rel}:{lineno}: §{section} references missing "
                            f"file '{named[-1]}'")
                        continue
                    _, _, sections = target_meta(resolved)
                    where = os.path.relpath(resolved, REPO)
                else:
                    sections, where = own_sections, rel
                if section not in sections:
                    errors.append(
                        f"{rel}:{lineno}: §{section} has no numbered heading "
                        f"'## {section}.' in {where}")

    experiments = os.path.join(REPO, "EXPERIMENTS.md")
    headings = " ".join(
        line for _, line in target_meta(experiments)[0]
        if line.startswith("##"))
    bench_dir = os.path.join(REPO, "bench")
    for name in sorted(os.listdir(bench_dir)):
        if not (name.startswith("bench_") and name.endswith(".cpp")):
            continue
        stem = name[: -len(".cpp")]
        if stem not in headings:
            errors.append(
                f"bench/{name}: no '## ... `{stem}`' heading in "
                f"EXPERIMENTS.md")

    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} broken documentation reference(s)",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} files: all links, anchors and § references "
          "resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
