#!/usr/bin/env bash
# Regenerates every experiment of the paper (plus ablations/extensions) and
# stores the output next to the binaries' sources.
#
#   scripts/run_experiments.sh [quick|default|paper]
#
#   quick   — small datasets, finishes in ~2 minutes
#   default — the defaults used for EXPERIMENTS.md (~10 minutes)
#   paper   — paper-scale datasets (797,570 / 5M facts; expect a long run)

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-default}"
case "$MODE" in
  quick)
    FIG5AB="--facts=30000"; FIG5BUF="--facts=30000"
    FIG5IJ="--facts=100000"; FIG6="--facts=30000"
    ABL="--facts=30000"; MUT="--facts=20000"; TAB2="--facts=50000"
    IOPIPE="--facts=30000 --repeats=2"; SERVE="--facts=20000 --hit_rounds=20"
    AGGIDX="--facts=20000 --rounds=20"
    SCALE="--facts=10000 --rounds=2 --batch_updates=80 --batches=6"
    COLUMNAR="--facts=20000"; APPROX="--facts=20000 --facts_eps0=6000" ;;
  default)
    FIG5AB=""; FIG5BUF=""; FIG5IJ=""; FIG6=""; ABL=""; MUT=""; TAB2=""
    IOPIPE=""; SERVE=""; AGGIDX=""; SCALE=""; COLUMNAR=""; APPROX="" ;;
  paper)
    FIG5AB="--facts=797570"; FIG5BUF="--facts=797570"
    FIG5IJ="--facts=5000000"; FIG6="--facts=797570"
    ABL="--facts=797570"; MUT="--facts=797570"; TAB2="--facts=797570"
    IOPIPE="--facts=797570"; SERVE="--facts=797570"
    AGGIDX="--facts=797570"; SCALE="--facts=797570"
    COLUMNAR="--facts=797570"; APPROX="--facts=797570" ;;
  *) echo "unknown mode '$MODE'" >&2; exit 2 ;;
esac

cmake -B build -G Ninja
cmake --build build

OUT="bench_output.txt"
: > "$OUT"
run() {
  echo "######## $*" | tee -a "$OUT"
  "$@" 2>&1 | tee -a "$OUT"
  echo | tee -a "$OUT"
}

run build/bench/bench_table2_dataset $TAB2
run build/bench/bench_fig5ab_inmemory $FIG5AB
run build/bench/bench_fig5cde_auto_buffer $FIG5BUF
run build/bench/bench_fig5fgh_synth_buffer $FIG5BUF
run build/bench/bench_fig5ij_scalability $FIG5IJ
run build/bench/bench_fig6_maintenance $FIG6
run build/bench/bench_ablation_convergence $ABL
run build/bench/bench_ext_mutations $MUT
run build/bench/bench_parallel_scaling $FIG5AB
run build/bench/bench_micro_storage
run build/bench/bench_io_pipeline $IOPIPE --json=BENCH_io_pipeline.json
run build/bench/bench_query_serving $SERVE --json=BENCH_query_serving.json
run build/bench/bench_agg_index $AGGIDX --json=BENCH_agg_index.json
run build/bench/bench_serve_scaling $SCALE --json=BENCH_serve_scaling.json
run build/bench/bench_columnar $COLUMNAR --json=BENCH_columnar.json
run build/bench/bench_approx $APPROX --json=BENCH_approx.json

echo "wrote $OUT"
