#!/usr/bin/env bash
# Builds the repo under ThreadSanitizer and runs the tests that exercise the
# concurrent paths: the thread-safe storage layer (BufferPool/DiskManager,
# including the background prefetcher), the exec subsystem
# (ThreadPool/ParallelScheduler), the external sorter's parallel run
# generation, the component-parallel Transitive allocator, the
# observability layer (lock-free metrics, trace collection from worker
# threads), and the query-serving subsystem (concurrent queries racing a
# maintenance stream against the generation-versioned aggregate cache and
# the hierarchical aggregate index tier, plus the sharded serve path:
# per-shard snapshot locks, the parallel group-by engine, and the
# multi-shard torture/determinism cases in serve_concurrent_test), and the
# plan-driven async read-ahead path (async_io_test; the io_uring backend
# compiles out under TSan, so this covers the pread pool + the buffer
# pool's plan bookkeeping racing demand pins).
# Zero reported races is a release gate for the parallel execution and
# serving subsystems.
#
#   scripts/run_tsan.sh [extra ctest args...]

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-tsan
cmake -B "$BUILD" -G Ninja -DIOLAP_SANITIZE=thread
cmake --build "$BUILD" --target \
  buffer_pool_test disk_manager_test thread_pool_test async_io_test \
  parallel_transitive_test external_sort_test io_pipeline_equivalence_test \
  obs_test serve_test serve_concurrent_test aggidx_test aggidx_concurrent_test

export TSAN_OPTIONS="halt_on_error=0:exitcode=66:${TSAN_OPTIONS:-}"
ctest --test-dir "$BUILD" --output-on-failure \
  -R 'BufferPool|DiskManager|ThreadPool|ParallelScheduler|ParallelTransitive|ExternalSort|IoPipeline|AsyncIo|PlannedPool|AsyncBackend|Metrics|Trace|Obs|ScopedObservability|JsonUtil|Serve|SelectiveInvalidation|AggIdx|AggIndex' \
  "$@"
echo "TSan run clean."
