# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/disk_manager_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/paged_file_test[1]_include.cmake")
include("/root/repo/build/tests/external_sort_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/sort_key_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_mutations_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/union_domain_test[1]_include.cmake")
include("/root/repo/build/tests/six_dims_test[1]_include.cmake")
include("/root/repo/build/tests/paged_rtree_test[1]_include.cmake")
