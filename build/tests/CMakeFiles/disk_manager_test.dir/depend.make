# Empty dependencies file for disk_manager_test.
# This may be replaced when dependencies are built.
