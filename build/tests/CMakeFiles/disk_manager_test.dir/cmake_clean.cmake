file(REMOVE_RECURSE
  "CMakeFiles/disk_manager_test.dir/disk_manager_test.cc.o"
  "CMakeFiles/disk_manager_test.dir/disk_manager_test.cc.o.d"
  "disk_manager_test"
  "disk_manager_test.pdb"
  "disk_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
