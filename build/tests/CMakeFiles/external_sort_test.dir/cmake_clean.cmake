file(REMOVE_RECURSE
  "CMakeFiles/external_sort_test.dir/external_sort_test.cc.o"
  "CMakeFiles/external_sort_test.dir/external_sort_test.cc.o.d"
  "external_sort_test"
  "external_sort_test.pdb"
  "external_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
