# Empty compiler generated dependencies file for external_sort_test.
# This may be replaced when dependencies are built.
