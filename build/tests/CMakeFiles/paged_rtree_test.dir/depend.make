# Empty dependencies file for paged_rtree_test.
# This may be replaced when dependencies are built.
