file(REMOVE_RECURSE
  "CMakeFiles/paged_rtree_test.dir/paged_rtree_test.cc.o"
  "CMakeFiles/paged_rtree_test.dir/paged_rtree_test.cc.o.d"
  "paged_rtree_test"
  "paged_rtree_test.pdb"
  "paged_rtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_rtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
