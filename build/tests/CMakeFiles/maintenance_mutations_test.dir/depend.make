# Empty dependencies file for maintenance_mutations_test.
# This may be replaced when dependencies are built.
