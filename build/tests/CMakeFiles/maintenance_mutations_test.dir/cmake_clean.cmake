file(REMOVE_RECURSE
  "CMakeFiles/maintenance_mutations_test.dir/maintenance_mutations_test.cc.o"
  "CMakeFiles/maintenance_mutations_test.dir/maintenance_mutations_test.cc.o.d"
  "maintenance_mutations_test"
  "maintenance_mutations_test.pdb"
  "maintenance_mutations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_mutations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
