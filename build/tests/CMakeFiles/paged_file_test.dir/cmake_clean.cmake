file(REMOVE_RECURSE
  "CMakeFiles/paged_file_test.dir/paged_file_test.cc.o"
  "CMakeFiles/paged_file_test.dir/paged_file_test.cc.o.d"
  "paged_file_test"
  "paged_file_test.pdb"
  "paged_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
