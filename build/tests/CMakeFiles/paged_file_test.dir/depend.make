# Empty dependencies file for paged_file_test.
# This may be replaced when dependencies are built.
