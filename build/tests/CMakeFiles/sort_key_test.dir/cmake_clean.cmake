file(REMOVE_RECURSE
  "CMakeFiles/sort_key_test.dir/sort_key_test.cc.o"
  "CMakeFiles/sort_key_test.dir/sort_key_test.cc.o.d"
  "sort_key_test"
  "sort_key_test.pdb"
  "sort_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
