# Empty dependencies file for sort_key_test.
# This may be replaced when dependencies are built.
