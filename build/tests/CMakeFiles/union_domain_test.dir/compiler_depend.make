# Empty compiler generated dependencies file for union_domain_test.
# This may be replaced when dependencies are built.
