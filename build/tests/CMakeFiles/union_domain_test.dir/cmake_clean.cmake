file(REMOVE_RECURSE
  "CMakeFiles/union_domain_test.dir/union_domain_test.cc.o"
  "CMakeFiles/union_domain_test.dir/union_domain_test.cc.o.d"
  "union_domain_test"
  "union_domain_test.pdb"
  "union_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
