file(REMOVE_RECURSE
  "CMakeFiles/six_dims_test.dir/six_dims_test.cc.o"
  "CMakeFiles/six_dims_test.dir/six_dims_test.cc.o.d"
  "six_dims_test"
  "six_dims_test.pdb"
  "six_dims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/six_dims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
