# Empty dependencies file for six_dims_test.
# This may be replaced when dependencies are built.
