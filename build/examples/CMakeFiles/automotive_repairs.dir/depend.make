# Empty dependencies file for automotive_repairs.
# This may be replaced when dependencies are built.
