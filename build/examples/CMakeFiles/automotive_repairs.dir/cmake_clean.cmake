file(REMOVE_RECURSE
  "CMakeFiles/automotive_repairs.dir/automotive_repairs.cpp.o"
  "CMakeFiles/automotive_repairs.dir/automotive_repairs.cpp.o.d"
  "automotive_repairs"
  "automotive_repairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_repairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
