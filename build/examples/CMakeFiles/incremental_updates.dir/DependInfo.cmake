
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/incremental_updates.cpp" "examples/CMakeFiles/incremental_updates.dir/incremental_updates.cpp.o" "gcc" "examples/CMakeFiles/incremental_updates.dir/incremental_updates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alloc/CMakeFiles/iolap_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/edb/CMakeFiles/iolap_edb.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/iolap_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/iolap_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/iolap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iolap_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/iolap_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iolap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
