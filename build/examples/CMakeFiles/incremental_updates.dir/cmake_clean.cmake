file(REMOVE_RECURSE
  "CMakeFiles/incremental_updates.dir/incremental_updates.cpp.o"
  "CMakeFiles/incremental_updates.dir/incremental_updates.cpp.o.d"
  "incremental_updates"
  "incremental_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
