file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_convergence.dir/bench_ablation_convergence.cpp.o"
  "CMakeFiles/bench_ablation_convergence.dir/bench_ablation_convergence.cpp.o.d"
  "bench_ablation_convergence"
  "bench_ablation_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
