# Empty compiler generated dependencies file for bench_ablation_convergence.
# This may be replaced when dependencies are built.
