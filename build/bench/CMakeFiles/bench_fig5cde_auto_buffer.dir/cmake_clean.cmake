file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5cde_auto_buffer.dir/bench_fig5cde_auto_buffer.cpp.o"
  "CMakeFiles/bench_fig5cde_auto_buffer.dir/bench_fig5cde_auto_buffer.cpp.o.d"
  "bench_fig5cde_auto_buffer"
  "bench_fig5cde_auto_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5cde_auto_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
