# Empty dependencies file for bench_fig5cde_auto_buffer.
# This may be replaced when dependencies are built.
