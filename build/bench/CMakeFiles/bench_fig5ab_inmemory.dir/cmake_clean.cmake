file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5ab_inmemory.dir/bench_fig5ab_inmemory.cpp.o"
  "CMakeFiles/bench_fig5ab_inmemory.dir/bench_fig5ab_inmemory.cpp.o.d"
  "bench_fig5ab_inmemory"
  "bench_fig5ab_inmemory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5ab_inmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
