# Empty compiler generated dependencies file for bench_fig5ab_inmemory.
# This may be replaced when dependencies are built.
