file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_maintenance.dir/bench_fig6_maintenance.cpp.o"
  "CMakeFiles/bench_fig6_maintenance.dir/bench_fig6_maintenance.cpp.o.d"
  "bench_fig6_maintenance"
  "bench_fig6_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
