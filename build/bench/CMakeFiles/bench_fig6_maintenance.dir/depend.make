# Empty dependencies file for bench_fig6_maintenance.
# This may be replaced when dependencies are built.
