file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mutations.dir/bench_ext_mutations.cpp.o"
  "CMakeFiles/bench_ext_mutations.dir/bench_ext_mutations.cpp.o.d"
  "bench_ext_mutations"
  "bench_ext_mutations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mutations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
