# Empty dependencies file for bench_ext_mutations.
# This may be replaced when dependencies are built.
