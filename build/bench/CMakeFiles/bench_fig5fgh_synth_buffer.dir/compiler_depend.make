# Empty compiler generated dependencies file for bench_fig5fgh_synth_buffer.
# This may be replaced when dependencies are built.
