# Empty dependencies file for bench_table2_dataset.
# This may be replaced when dependencies are built.
