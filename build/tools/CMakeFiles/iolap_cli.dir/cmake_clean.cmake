file(REMOVE_RECURSE
  "CMakeFiles/iolap_cli.dir/iolap_cli.cpp.o"
  "CMakeFiles/iolap_cli.dir/iolap_cli.cpp.o.d"
  "iolap_cli"
  "iolap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
