# Empty dependencies file for iolap_cli.
# This may be replaced when dependencies are built.
