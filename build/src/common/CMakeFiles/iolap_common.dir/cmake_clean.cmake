file(REMOVE_RECURSE
  "CMakeFiles/iolap_common.dir/status.cc.o"
  "CMakeFiles/iolap_common.dir/status.cc.o.d"
  "libiolap_common.a"
  "libiolap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
