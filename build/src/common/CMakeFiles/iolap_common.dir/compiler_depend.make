# Empty compiler generated dependencies file for iolap_common.
# This may be replaced when dependencies are built.
