file(REMOVE_RECURSE
  "libiolap_common.a"
)
