# Empty dependencies file for iolap_storage.
# This may be replaced when dependencies are built.
