file(REMOVE_RECURSE
  "libiolap_storage.a"
)
