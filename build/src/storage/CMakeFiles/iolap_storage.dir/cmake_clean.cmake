file(REMOVE_RECURSE
  "CMakeFiles/iolap_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/iolap_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/iolap_storage.dir/disk_manager.cc.o"
  "CMakeFiles/iolap_storage.dir/disk_manager.cc.o.d"
  "libiolap_storage.a"
  "libiolap_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
