file(REMOVE_RECURSE
  "CMakeFiles/iolap_alloc.dir/allocator.cc.o"
  "CMakeFiles/iolap_alloc.dir/allocator.cc.o.d"
  "CMakeFiles/iolap_alloc.dir/basic.cc.o"
  "CMakeFiles/iolap_alloc.dir/basic.cc.o.d"
  "CMakeFiles/iolap_alloc.dir/block.cc.o"
  "CMakeFiles/iolap_alloc.dir/block.cc.o.d"
  "CMakeFiles/iolap_alloc.dir/estimator.cc.o"
  "CMakeFiles/iolap_alloc.dir/estimator.cc.o.d"
  "CMakeFiles/iolap_alloc.dir/in_memory.cc.o"
  "CMakeFiles/iolap_alloc.dir/in_memory.cc.o.d"
  "CMakeFiles/iolap_alloc.dir/independent.cc.o"
  "CMakeFiles/iolap_alloc.dir/independent.cc.o.d"
  "CMakeFiles/iolap_alloc.dir/pass.cc.o"
  "CMakeFiles/iolap_alloc.dir/pass.cc.o.d"
  "CMakeFiles/iolap_alloc.dir/preprocess.cc.o"
  "CMakeFiles/iolap_alloc.dir/preprocess.cc.o.d"
  "CMakeFiles/iolap_alloc.dir/transitive.cc.o"
  "CMakeFiles/iolap_alloc.dir/transitive.cc.o.d"
  "libiolap_alloc.a"
  "libiolap_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
