file(REMOVE_RECURSE
  "libiolap_alloc.a"
)
