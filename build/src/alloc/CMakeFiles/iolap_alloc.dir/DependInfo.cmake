
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/allocator.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/allocator.cc.o.d"
  "/root/repo/src/alloc/basic.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/basic.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/basic.cc.o.d"
  "/root/repo/src/alloc/block.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/block.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/block.cc.o.d"
  "/root/repo/src/alloc/estimator.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/estimator.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/estimator.cc.o.d"
  "/root/repo/src/alloc/in_memory.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/in_memory.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/in_memory.cc.o.d"
  "/root/repo/src/alloc/independent.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/independent.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/independent.cc.o.d"
  "/root/repo/src/alloc/pass.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/pass.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/pass.cc.o.d"
  "/root/repo/src/alloc/preprocess.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/preprocess.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/preprocess.cc.o.d"
  "/root/repo/src/alloc/transitive.cc" "src/alloc/CMakeFiles/iolap_alloc.dir/transitive.cc.o" "gcc" "src/alloc/CMakeFiles/iolap_alloc.dir/transitive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iolap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iolap_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/iolap_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/iolap_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
