# Empty compiler generated dependencies file for iolap_alloc.
# This may be replaced when dependencies are built.
