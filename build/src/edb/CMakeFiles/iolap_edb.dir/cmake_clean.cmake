file(REMOVE_RECURSE
  "CMakeFiles/iolap_edb.dir/maintenance.cc.o"
  "CMakeFiles/iolap_edb.dir/maintenance.cc.o.d"
  "CMakeFiles/iolap_edb.dir/query.cc.o"
  "CMakeFiles/iolap_edb.dir/query.cc.o.d"
  "libiolap_edb.a"
  "libiolap_edb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_edb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
