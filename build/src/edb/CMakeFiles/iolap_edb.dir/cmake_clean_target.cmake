file(REMOVE_RECURSE
  "libiolap_edb.a"
)
