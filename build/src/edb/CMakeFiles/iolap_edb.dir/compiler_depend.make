# Empty compiler generated dependencies file for iolap_edb.
# This may be replaced when dependencies are built.
