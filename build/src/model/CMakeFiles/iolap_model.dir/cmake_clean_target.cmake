file(REMOVE_RECURSE
  "libiolap_model.a"
)
