file(REMOVE_RECURSE
  "CMakeFiles/iolap_model.dir/hierarchy.cc.o"
  "CMakeFiles/iolap_model.dir/hierarchy.cc.o.d"
  "libiolap_model.a"
  "libiolap_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
