# Empty compiler generated dependencies file for iolap_model.
# This may be replaced when dependencies are built.
