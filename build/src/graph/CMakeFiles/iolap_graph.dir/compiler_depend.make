# Empty compiler generated dependencies file for iolap_graph.
# This may be replaced when dependencies are built.
