file(REMOVE_RECURSE
  "CMakeFiles/iolap_graph.dir/bin_packing.cc.o"
  "CMakeFiles/iolap_graph.dir/bin_packing.cc.o.d"
  "CMakeFiles/iolap_graph.dir/chain_cover.cc.o"
  "CMakeFiles/iolap_graph.dir/chain_cover.cc.o.d"
  "libiolap_graph.a"
  "libiolap_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
