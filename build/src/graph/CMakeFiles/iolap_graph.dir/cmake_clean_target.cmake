file(REMOVE_RECURSE
  "libiolap_graph.a"
)
