file(REMOVE_RECURSE
  "libiolap_datagen.a"
)
