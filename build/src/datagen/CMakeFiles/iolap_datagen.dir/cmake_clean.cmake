file(REMOVE_RECURSE
  "CMakeFiles/iolap_datagen.dir/generator.cc.o"
  "CMakeFiles/iolap_datagen.dir/generator.cc.o.d"
  "CMakeFiles/iolap_datagen.dir/table2.cc.o"
  "CMakeFiles/iolap_datagen.dir/table2.cc.o.d"
  "libiolap_datagen.a"
  "libiolap_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
