# Empty dependencies file for iolap_datagen.
# This may be replaced when dependencies are built.
