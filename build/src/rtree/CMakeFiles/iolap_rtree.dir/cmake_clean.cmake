file(REMOVE_RECURSE
  "CMakeFiles/iolap_rtree.dir/paged_rtree.cc.o"
  "CMakeFiles/iolap_rtree.dir/paged_rtree.cc.o.d"
  "CMakeFiles/iolap_rtree.dir/rtree.cc.o"
  "CMakeFiles/iolap_rtree.dir/rtree.cc.o.d"
  "libiolap_rtree.a"
  "libiolap_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
