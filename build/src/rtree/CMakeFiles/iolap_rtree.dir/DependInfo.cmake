
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtree/paged_rtree.cc" "src/rtree/CMakeFiles/iolap_rtree.dir/paged_rtree.cc.o" "gcc" "src/rtree/CMakeFiles/iolap_rtree.dir/paged_rtree.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/rtree/CMakeFiles/iolap_rtree.dir/rtree.cc.o" "gcc" "src/rtree/CMakeFiles/iolap_rtree.dir/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iolap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/iolap_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iolap_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
