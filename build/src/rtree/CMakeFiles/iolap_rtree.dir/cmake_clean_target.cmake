file(REMOVE_RECURSE
  "libiolap_rtree.a"
)
