# Empty compiler generated dependencies file for iolap_rtree.
# This may be replaced when dependencies are built.
