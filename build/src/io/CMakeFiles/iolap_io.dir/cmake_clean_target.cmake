file(REMOVE_RECURSE
  "libiolap_io.a"
)
