file(REMOVE_RECURSE
  "CMakeFiles/iolap_io.dir/csv.cc.o"
  "CMakeFiles/iolap_io.dir/csv.cc.o.d"
  "libiolap_io.a"
  "libiolap_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
