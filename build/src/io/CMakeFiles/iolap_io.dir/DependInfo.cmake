
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/iolap_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/iolap_io.dir/csv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iolap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iolap_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/iolap_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
