# Empty dependencies file for iolap_io.
# This may be replaced when dependencies are built.
