#ifndef IOLAP_OBS_TRACE_H_
#define IOLAP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace iolap {

/// Collects Chrome trace_event records (loadable in Perfetto / chrome's
/// about:tracing). Spans become "ph":"X" complete events; nesting is
/// implicit from timestamp/duration per thread, so no parent pointers are
/// stored. Gauge samples taken at span boundaries become "ph":"C" counter
/// events and render as tracks (queue depth, pool occupancy).
///
/// Thread-safe: events append under a mutex, but only when a span *ends*,
/// which for instrumented code is once per phase/iteration/component —
/// orders of magnitude below the lock rates the allocator's own data
/// structures see. Bounded: at most `max_events` records are kept; later
/// ones are counted in dropped_events() instead of growing without limit
/// on component-heavy runs.
class TraceCollector {
 public:
  explicit TraceCollector(size_t max_events = 1 << 20)
      : max_events_(max_events),
        epoch_(std::chrono::steady_clock::now()) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Microseconds since this collector was created.
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a completed span on the calling thread's trace track.
  /// `args` are attached as the event's "args" object (values emitted as
  /// JSON numbers).
  void AddComplete(const std::string& name, int64_t start_us, int64_t dur_us,
                   std::vector<std::pair<std::string, int64_t>> args = {});

  /// Records an instantaneous counter-track value.
  void AddCounter(const std::string& name, int64_t ts_us, int64_t value);

  /// Samples every gauge in `metrics` (if non-null) as counter events at
  /// the current time. Called by TraceSpan at begin/end so gauge tracks
  /// have data exactly where spans change.
  void SampleGauges(const MetricsRegistry* metrics);

  size_t event_count() const;
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// {"traceEvents":[...]} — the Chrome trace_event JSON object format.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    char phase;  // 'X' complete, 'C' counter
    int32_t tid;
    int64_t ts_us;
    int64_t dur_us;    // 'X' only
    int64_t counter;   // 'C' only
    std::vector<std::pair<std::string, int64_t>> args;
  };

  /// Small dense per-thread ids so Perfetto groups spans into stable
  /// tracks; assigned on each thread's first event.
  int32_t ThisThreadId();

  const size_t max_events_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  int32_t next_tid_ = 0;
  std::atomic<int64_t> dropped_{0};
};

/// Installed collector; null (default) = tracing disabled. Same contract
/// as GlobalMetrics().
TraceCollector* GlobalTrace();
void SetGlobalTrace(TraceCollector* collector);

/// RAII scoped timer. Constructed against GlobalTrace(): when tracing is
/// disabled the constructor is a relaxed pointer load and nothing else —
/// no clock read, no allocation. On destruction (or End()) the span is
/// recorded and the installed registry's gauges are sampled, so every
/// span boundary pins down queue depth / pool occupancy at that instant.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : collector_(GlobalTrace()) {
    if (collector_ != nullptr) {
      name_ = name;
      start_us_ = collector_->NowMicros();
      collector_->SampleGauges(GlobalMetrics());
    }
  }
  ~TraceSpan() { End(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool enabled() const { return collector_ != nullptr; }

  /// Attaches a numeric argument shown in the event's detail pane.
  void AddArg(const char* key, int64_t value) {
    if (collector_ != nullptr) args_.emplace_back(key, value);
  }

  /// Ends the span early (idempotent).
  void End() {
    if (collector_ == nullptr) return;
    TraceCollector* c = collector_;
    collector_ = nullptr;
    int64_t end_us = c->NowMicros();
    c->AddComplete(name_, start_us_, end_us - start_us_, std::move(args_));
    c->SampleGauges(GlobalMetrics());
  }

 private:
  TraceCollector* collector_;
  std::string name_;
  int64_t start_us_ = 0;
  std::vector<std::pair<std::string, int64_t>> args_;
};

}  // namespace iolap

#endif  // IOLAP_OBS_TRACE_H_
