#ifndef IOLAP_OBS_METRICS_H_
#define IOLAP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace iolap {

/// Monotonic counter. `Add` is the lock-free fast path: a single relaxed
/// atomic add, safe from any thread. Handles returned by MetricsRegistry
/// stay valid for the registry's lifetime.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, pool occupancy).
/// `Set`/`Add` are single relaxed atomic operations.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative samples. `Record` touches only
/// relaxed atomics (one add per bucket/count/sum plus CAS loops for
/// min/max), so concurrent recording never blocks. Bucket b counts samples
/// in [2^(b-1), 2^b); bucket 0 counts zeros.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// INT64_MAX until the first sample.
  int64_t min() const { return min_.load(std::memory_order_relaxed); }
  /// INT64_MIN until the first sample.
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
  std::atomic<int64_t> buckets_[kBuckets] = {};
};

/// Named metric registry unifying the run's observable quantities — the
/// demand I/O counters the paper's theorems bound, pool behaviour, EM
/// iteration counts, component census — behind one flat JSON export.
///
/// Registration (`counter()`/`gauge()`/`histogram()`) takes a mutex and is
/// expected once per site (cache the returned handle); updates through the
/// handles are lock-free. All handles remain valid until the registry is
/// destroyed. Value callbacks are sampled at export time and suit values a
/// component already maintains elsewhere (e.g. DiskManager's atomics).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; one name maps to one metric of one kind forever.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Registers (or replaces) a value sampled lazily at export time.
  void SetValueCallback(const std::string& name,
                        std::function<int64_t()> fn);

  /// Visits every gauge (name, current value) — the trace collector
  /// samples these at span boundaries.
  void VisitGauges(
      const std::function<void(const std::string&, int64_t)>& fn) const;

  /// One flat JSON object: counters and gauges by name; histograms as
  /// name.count/.sum/.min/.max/.avg; callbacks sampled now.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<int64_t()>> callbacks_;
};

/// Process-global observability context. Null (the default) means
/// disabled: every instrumented site guards on the pointer, so a disabled
/// build path costs one relaxed atomic load — no allocation, no branch
/// into instrumentation, no behavioural difference.
MetricsRegistry* GlobalMetrics();
void SetGlobalMetrics(MetricsRegistry* registry);

/// Convenience lookups that return nullptr when no registry is installed;
/// instrumented constructors cache the result once.
Counter* GlobalCounter(const std::string& name);
Gauge* GlobalGauge(const std::string& name);
Histogram* GlobalHistogram(const std::string& name);

}  // namespace iolap

#endif  // IOLAP_OBS_METRICS_H_
