#include "obs/obs.h"

#include <cstdio>

#include "common/result.h"

namespace iolap {

ScopedObservability::ScopedObservability(const std::string& metrics_out,
                                         const std::string& trace_out)
    : metrics_out_(metrics_out), trace_out_(trace_out) {
  // Tracing samples gauges at span boundaries, so a trace implies a
  // registry even if no metrics dump was requested.
  if (!metrics_out_.empty() || !trace_out_.empty()) {
    metrics_ = std::make_unique<MetricsRegistry>();
    SetGlobalMetrics(metrics_.get());
  }
  if (!trace_out_.empty()) {
    trace_ = std::make_unique<TraceCollector>();
    SetGlobalTrace(trace_.get());
  }
}

Status ScopedObservability::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  if (trace_ != nullptr) SetGlobalTrace(nullptr);
  if (metrics_ != nullptr) SetGlobalMetrics(nullptr);
  if (trace_ != nullptr && !trace_out_.empty()) {
    IOLAP_RETURN_IF_ERROR(trace_->WriteChromeJson(trace_out_));
  }
  if (metrics_ != nullptr && !metrics_out_.empty()) {
    IOLAP_RETURN_IF_ERROR(metrics_->WriteJsonFile(metrics_out_));
  }
  return Status::Ok();
}

ScopedObservability::~ScopedObservability() {
  Status s = Finish();
  if (!s.ok()) {
    std::fprintf(stderr, "observability export failed: %s\n",
                 s.message().c_str());
  }
}

}  // namespace iolap
