#include "obs/trace.h"

#include <fstream>

#include "obs/json_util.h"

namespace iolap {

namespace {

std::atomic<TraceCollector*> g_trace{nullptr};

std::atomic<int32_t> g_thread_counter{0};

/// Collector-independent: tids only need to be stable per thread and dense
/// enough for readable tracks; a process-wide counter gives both.
int32_t CachedThreadId() {
  thread_local int32_t tid =
      g_thread_counter.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

int32_t TraceCollector::ThisThreadId() { return CachedThreadId(); }

void TraceCollector::AddComplete(
    const std::string& name, int64_t start_us, int64_t dur_us,
    std::vector<std::pair<std::string, int64_t>> args) {
  const int32_t tid = ThisThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(Event{name, 'X', tid, start_us, dur_us, 0,
                          std::move(args)});
}

void TraceCollector::AddCounter(const std::string& name, int64_t ts_us,
                                int64_t value) {
  const int32_t tid = ThisThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(Event{name, 'C', tid, ts_us, 0, value, {}});
}

void TraceCollector::SampleGauges(const MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  const int64_t now = NowMicros();
  metrics->VisitGauges([&](const std::string& name, int64_t value) {
    AddCounter(name, now, value);
  });
}

size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceCollector::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, e.name);
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += std::to_string(e.ts_us);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(e.dur_us);
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        AppendJsonString(&out, key);
        out += ':';
        out += std::to_string(value);
      }
      out += '}';
    } else {  // 'C' — counter tracks carry their value in args.
      out += ",\"args\":{\"value\":";
      out += std::to_string(e.counter);
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write trace file " + path);
  out << ToChromeJson();
  if (!out.flush()) return Status::IoError("failed writing " + path);
  return Status::Ok();
}

TraceCollector* GlobalTrace() {
  return g_trace.load(std::memory_order_relaxed);
}

void SetGlobalTrace(TraceCollector* collector) {
  g_trace.store(collector, std::memory_order_release);
}

}  // namespace iolap
