#ifndef IOLAP_OBS_OBS_H_
#define IOLAP_OBS_OBS_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iolap {

/// Owns a MetricsRegistry and/or TraceCollector for the duration of one
/// run: installs them as the process globals on construction, exports to
/// the requested files and uninstalls on destruction (or Finish()).
/// Empty paths leave the corresponding subsystem disabled, so a default
/// ScopedObservability is a true no-op and callers can construct one
/// unconditionally from their flags.
class ScopedObservability {
 public:
  ScopedObservability() = default;
  ScopedObservability(const std::string& metrics_out,
                      const std::string& trace_out);
  ~ScopedObservability();
  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;

  bool enabled() const {
    return metrics_ != nullptr || trace_ != nullptr;
  }
  MetricsRegistry* metrics() { return metrics_.get(); }
  TraceCollector* trace() { return trace_.get(); }

  /// Uninstalls the globals and writes the output files. Idempotent; the
  /// destructor calls it and logs (stderr) on failure. Call explicitly to
  /// handle write errors, or to stop collection before teardown of
  /// objects the registry's callbacks reference.
  Status Finish();

 private:
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceCollector> trace_;
  std::string metrics_out_;
  std::string trace_out_;
  bool finished_ = false;
};

}  // namespace iolap

#endif  // IOLAP_OBS_OBS_H_
