#ifndef IOLAP_OBS_JSON_UTIL_H_
#define IOLAP_OBS_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace iolap {

/// Appends `s` to `out` escaped for use inside a JSON string literal
/// (without the surrounding quotes): `"` and `\` are backslash-escaped and
/// control characters below 0x20 become \uXXXX (or the short \n \r \t \b \f
/// forms). This is the one escaper shared by every JSON emitter in the
/// repo — the bench JsonWriter and the obs metrics/trace exporters — so
/// their output agrees on what a valid string is.
inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Appends `s` as a complete JSON string literal (quotes included).
inline void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  AppendJsonEscaped(out, s);
  *out += '"';
}

/// Appends `value` as a JSON number. JSON has no inf/nan literals, so
/// non-finite doubles are mapped to `null` (printing them bare, as printf
/// does, yields a file json parsers reject).
inline void AppendJsonDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

}  // namespace iolap

#endif  // IOLAP_OBS_JSON_UTIL_H_
