#include "obs/metrics.h"

#include <fstream>

#include "obs/json_util.h"

namespace iolap {

namespace {

/// Installed registry. Relaxed is sufficient: installation happens before
/// the instrumented run starts (the installer synchronizes via whatever
/// launches the work), and a site that misses a just-installed registry
/// merely skips one update.
std::atomic<MetricsRegistry*> g_metrics{nullptr};

int BucketOf(int64_t v) {
  if (v <= 0) return 0;
  return 64 - __builtin_clzll(static_cast<uint64_t>(v));
}

}  // namespace

void Histogram::Record(int64_t v) {
  if (v < 0) v = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[std::min(BucketOf(v), kBuckets - 1)].fetch_add(
      1, std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::SetValueCallback(const std::string& name,
                                       std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[name] = std::move(fn);
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, int64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) fn(name, gauge->value());
}

std::string MetricsRegistry::ToJson() const {
  // Callbacks may re-enter other components' locks; sample them outside
  // mu_ from a snapshot.
  std::vector<std::pair<std::string, std::function<int64_t()>>> callbacks;
  std::string out = "{";
  bool first = true;
  auto field = [&](const std::string& name, int64_t value) {
    if (!first) out += ",\n ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    out += std::to_string(value);
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) field(name, c->value());
    for (const auto& [name, g] : gauges_) field(name, g->value());
    for (const auto& [name, h] : histograms_) {
      const int64_t n = h->count();
      field(name + ".count", n);
      field(name + ".sum", h->sum());
      field(name + ".min", n > 0 ? h->min() : 0);
      field(name + ".max", n > 0 ? h->max() : 0);
      if (!first) out += ",\n ";
      AppendJsonString(&out, name + ".avg");
      out += ": ";
      AppendJsonDouble(&out, n > 0 ? static_cast<double>(h->sum()) / n : 0.0);
    }
    for (const auto& [name, fn] : callbacks_) callbacks.emplace_back(name, fn);
  }
  for (const auto& [name, fn] : callbacks) field(name, fn());
  out += "}\n";
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write metrics file " + path);
  out << ToJson();
  if (!out.flush()) return Status::IoError("failed writing " + path);
  return Status::Ok();
}

MetricsRegistry* GlobalMetrics() {
  return g_metrics.load(std::memory_order_relaxed);
}

void SetGlobalMetrics(MetricsRegistry* registry) {
  g_metrics.store(registry, std::memory_order_release);
}

Counter* GlobalCounter(const std::string& name) {
  MetricsRegistry* m = GlobalMetrics();
  return m != nullptr ? m->counter(name) : nullptr;
}

Gauge* GlobalGauge(const std::string& name) {
  MetricsRegistry* m = GlobalMetrics();
  return m != nullptr ? m->gauge(name) : nullptr;
}

Histogram* GlobalHistogram(const std::string& name) {
  MetricsRegistry* m = GlobalMetrics();
  return m != nullptr ? m->histogram(name) : nullptr;
}

}  // namespace iolap
