#include "aggidx/agg_index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "edb/columnar.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iolap {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Canonical (dimension-0-major) three-way comparison of cell keys. Leaf
/// ids are non-negative, but compare as signed ints — never memcmp, which
/// would order little-endian byte images, not values.
int CompareKeys(const int32_t* a, const int32_t* b) {
  for (int d = 0; d < kMaxDims; ++d) {
    if (a[d] != b[d]) return a[d] < b[d] ? -1 : 1;
  }
  return 0;
}

int64_t MarginalKey(int dim, NodeId node) {
  return (static_cast<int64_t>(dim) << 32) | static_cast<uint32_t>(node);
}

/// Folds a subtree entry's partials (and bbox) into a parent entry.
void MergeEntryInto(AggIndexEntry* parent, const AggIndexEntry& child) {
  for (int d = 0; d < kMaxDims; ++d) {
    parent->bbox.lo[d] = std::min(parent->bbox.lo[d], child.bbox.lo[d]);
    parent->bbox.hi[d] = std::max(parent->bbox.hi[d], child.bbox.hi[d]);
  }
  parent->sum += child.sum;
  parent->count += child.count;
  parent->min = std::min(parent->min, child.min);
  parent->max = std::max(parent->max, child.max);
}

}  // namespace

AggIndex::AggIndex(StorageEnv* env, const StarSchema* schema,
                   const TypedFile<EdbRecord>* edb,
                   const AggIndexOptions& options)
    : env_(env),
      schema_(schema),
      edb_(edb),
      options_(options),
      probes_counter_(GlobalCounter("aggidx.probes")),
      nodes_read_counter_(GlobalCounter("aggidx.nodes_read")),
      builds_counter_(GlobalCounter("aggidx.builds")),
      refreshes_counter_(GlobalCounter("aggidx.refreshes")),
      patched_counter_(GlobalCounter("aggidx.cells_patched")),
      cells_gauge_(GlobalGauge("aggidx.cells")),
      pages_gauge_(GlobalGauge("aggidx.pages")) {}

Status AggIndex::Build() {
  std::lock_guard<std::mutex> lock(mu_);
  return BuildLocked(/*is_refresh=*/false);
}

Status AggIndex::EnsureBuiltLocked() {
  if (built_ && !stale_) return Status::Ok();
  if (!rebuild_on_query_) {
    return Status::Unavailable(
        "aggregate index stale and query-path rebuilds are gated off");
  }
  return BuildLocked(/*is_refresh=*/false);
}

void AggIndex::set_rebuild_on_query(bool allowed) {
  std::lock_guard<std::mutex> lock(mu_);
  rebuild_on_query_ = allowed;
}

void AggIndex::set_columnar_provider(
    std::function<std::shared_ptr<const ColumnarEdb>()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  columnar_provider_ = std::move(provider);
}

Status AggIndex::RebuildIfStale() {
  std::lock_guard<std::mutex> lock(mu_);
  if (built_ && !stale_) return Status::Ok();
  return BuildLocked(/*is_refresh=*/built_);
}

Status AggIndex::WritePageLocked(int64_t page,
                                 const AggIndexNodeHeader& header,
                                 const AggIndexEntry* entries) {
  IOLAP_ASSIGN_OR_RETURN(int64_t file_pages, env_->disk().SizeInPages(file_));
  PageGuard guard;
  if (page < file_pages) {
    IOLAP_ASSIGN_OR_RETURN(guard, env_->pool().Pin(file_, page));
  } else {
    IOLAP_ASSIGN_OR_RETURN(guard, env_->pool().PinNew(file_, page));
  }
  std::memset(guard.data(), 0, kPageSize);
  std::memcpy(guard.data(), &header, sizeof(header));
  std::memcpy(guard.data() + sizeof(header), entries,
              header.num_entries * sizeof(AggIndexEntry));
  guard.MarkDirty();
  return Status::Ok();
}

Status AggIndex::BuildLocked(bool is_refresh) {
  TraceSpan span(is_refresh ? "aggidx.refresh" : "aggidx.build");
  if (file_ == kInvalidFileId) {
    IOLAP_ASSIGN_OR_RETURN(file_, env_->disk().CreateFile("aggidx"));
  }

  // One EDB pass: fold live rows into per-cell partials, canonically
  // ordered. Memory is O(|occupied cells|) — the same bound the
  // maintenance directory already carries.
  std::map<LeafKey, Partials> cells;
  const auto fold = [&](double weight, double measure, const int32_t* leaf) {
    LeafKey key{};
    std::memcpy(key.data(), leaf, sizeof(int32_t) * kMaxDims);
    auto [it, inserted] = cells.try_emplace(key);
    if (inserted) {
      it->second.min = kInf;
      it->second.max = -kInf;
    }
    it->second.sum += weight * measure;
    it->second.count += weight;
    it->second.min = std::min(it->second.min, measure);
    it->second.max = std::max(it->second.max, measure);
  };
  // Prefer the columnar mirror when it covers exactly the current rows:
  // the build needs measure + weight + every leaf column but never
  // fact_id, and the compressed extents cost fewer pages besides.
  std::shared_ptr<const ColumnarEdb> mirror;
  if (columnar_provider_) mirror = columnar_provider_();
  if (mirror != nullptr && mirror->num_rows() == edb_->size()) {
    EdbProjection proj;
    proj.measure = proj.weight = true;
    for (int d = 0; d < schema_->num_dims(); ++d) proj.leaf[d] = true;
    IOLAP_RETURN_IF_ERROR(mirror->ScanRows(
        env_->pool(), 0, -1, proj, [&](const ColumnarEdb::Row& row) {
          if (ColumnarEdb::IsTombstone(row.weight)) return;
          fold(row.weight, row.measure, row.leaf);
        }));
  } else {
    auto cursor = edb_->Scan(env_->pool());
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
      fold(rec.weight, rec.measure, rec.leaf);
    }
  }

  // Bottom-up bulk load, pages 100% packed: the tree is static between
  // rebuilds (post-build cells live in the overlay), so there is no need
  // for insertion slack.
  std::vector<AggIndexEntry> level;
  level.reserve(cells.size());
  for (const auto& [key, p] : cells) {
    AggIndexEntry e;
    std::memcpy(e.key, key.data(), sizeof(e.key));
    for (int d = 0; d < kMaxDims; ++d) {
      e.bbox.lo[d] = key[d];
      e.bbox.hi[d] = key[d];
    }
    e.sum = p.sum;
    e.count = p.count;
    e.min = p.min;
    e.max = p.max;
    e.child = -1;
    level.push_back(e);
  }

  int64_t next_page = 0;
  int32_t tree_level = 0;
  root_ = -1;
  while (!level.empty()) {
    std::vector<AggIndexEntry> parents;
    const int64_t n = static_cast<int64_t>(level.size());
    for (int64_t i = 0; i < n; i += kAggIndexEntriesPerPage) {
      const int64_t cnt = std::min(n - i, kAggIndexEntriesPerPage);
      AggIndexNodeHeader header;
      header.num_entries = static_cast<int32_t>(cnt);
      header.level = tree_level;
      const int64_t page = next_page++;
      IOLAP_RETURN_IF_ERROR(WritePageLocked(page, header, &level[i]));
      AggIndexEntry parent = level[i];  // key = first cell of the run
      parent.child = page;
      for (int64_t j = 1; j < cnt; ++j) MergeEntryInto(&parent, level[i + j]);
      parents.push_back(parent);
    }
    ++tree_level;
    if (parents.size() == 1) {
      root_ = parents[0].child;
      break;
    }
    level = std::move(parents);
  }
  IOLAP_RETURN_IF_ERROR(BuildMarginalsLocked(cells, &next_page));
  IOLAP_RETURN_IF_ERROR(env_->pool().FlushFile(file_));

  num_pages_ = next_page;
  stats_.cells = static_cast<int64_t>(cells.size());
  stats_.pages = num_pages_;
  stats_.height = tree_level;
  if (is_refresh) {
    ++stats_.refreshes;
    if (refreshes_counter_ != nullptr) refreshes_counter_->Add(1);
  } else {
    ++stats_.builds;
    if (builds_counter_ != nullptr) builds_counter_->Add(1);
  }
  if (cells_gauge_ != nullptr) cells_gauge_->Set(stats_.cells);
  if (pages_gauge_ != nullptr) pages_gauge_->Set(stats_.pages);
  span.AddArg("cells", stats_.cells);
  span.AddArg("pages", stats_.pages);

  overlay_.clear();
  dirty_minmax_.clear();
  built_ = true;
  stale_ = false;
  return Status::Ok();
}

Status AggIndex::BuildMarginalsLocked(const std::map<LeafKey, Partials>& cells,
                                      int64_t* next_page) {
  // Fold every occupied cell into each hierarchy node covering it, per
  // dimension: the node partials the serve layer's rollup/dashboard
  // queries hit directly. Sorted by (dim, node) for stable paging.
  marginal_dir_.clear();
  const int k = schema_->num_dims();
  std::map<int64_t, Partials> marginals;
  for (const auto& [key, p] : cells) {
    for (int d = 0; d < k; ++d) {
      const Hierarchy& h = schema_->dim(d);
      const NodeId leaf = h.nodes_at_level(1)[key[d]];
      for (int level = 1; level <= h.num_levels(); ++level) {
        const NodeId anc = h.AncestorAtLevel(leaf, level);
        auto [it, inserted] = marginals.try_emplace(MarginalKey(d, anc));
        if (inserted) {
          it->second.min = kInf;
          it->second.max = -kInf;
        }
        it->second.sum += p.sum;
        it->second.count += p.count;
        it->second.min = std::min(it->second.min, p.min);
        it->second.max = std::max(it->second.max, p.max);
      }
    }
  }

  std::vector<AggIndexEntry> entries;
  entries.reserve(marginals.size());
  for (const auto& [mkey, p] : marginals) {
    const int d = static_cast<int>(mkey >> 32);
    const NodeId node = static_cast<NodeId>(mkey & 0xffffffff);
    AggIndexEntry e;
    e.key[0] = d;
    e.key[1] = node;
    for (int j = 0; j < kMaxDims; ++j) {
      e.bbox.lo[j] = 0;
      e.bbox.hi[j] =
          j < k ? static_cast<int32_t>(
                      schema_->dim(j).nodes_at_level(1).size()) -
                      1
                : 0;
    }
    e.bbox.lo[d] = schema_->dim(d).leaf_begin(node);
    e.bbox.hi[d] = schema_->dim(d).leaf_end(node) - 1;
    e.sum = p.sum;
    e.count = p.count;
    e.min = p.min;
    e.max = p.max;
    e.child = -1;
    entries.push_back(e);
  }
  const int64_t n = static_cast<int64_t>(entries.size());
  for (int64_t i = 0; i < n; i += kAggIndexEntriesPerPage) {
    const int64_t cnt = std::min(n - i, kAggIndexEntriesPerPage);
    AggIndexNodeHeader header;
    header.num_entries = static_cast<int32_t>(cnt);
    header.level = kAggIndexMarginalLevel;
    const int64_t page = (*next_page)++;
    IOLAP_RETURN_IF_ERROR(WritePageLocked(page, header, &entries[i]));
    for (int64_t j = 0; j < cnt; ++j) {
      const AggIndexEntry& e = entries[i + j];
      marginal_dir_[MarginalKey(e.key[0], e.key[1])] = {
          page, static_cast<int32_t>(j)};
    }
  }
  return Status::Ok();
}

/// A query rect is marginal-eligible when it constrains exactly one
/// dimension, to exactly the leaf range of one hierarchy node.
bool AggIndex::MarginalNodeForRect(const Rect& query, int* dim,
                                   NodeId* node) const {
  const int k = schema_->num_dims();
  int cdim = -1;
  for (int d = 0; d < k; ++d) {
    const int32_t leaves =
        static_cast<int32_t>(schema_->dim(d).nodes_at_level(1).size());
    if (query.lo[d] == 0 && query.hi[d] == leaves - 1) continue;
    if (cdim >= 0) return false;  // two or more constrained dims: tree path
    cdim = d;
  }
  if (cdim < 0) return false;  // grand total: root containment is O(1)
  const Hierarchy& h = schema_->dim(cdim);
  const auto& leaves = h.nodes_at_level(1);
  if (query.lo[cdim] < 0 ||
      query.lo[cdim] >= static_cast<int32_t>(leaves.size())) {
    return false;
  }
  const NodeId leaf = leaves[query.lo[cdim]];
  for (int level = 1; level <= h.num_levels(); ++level) {
    const NodeId anc = h.AncestorAtLevel(leaf, level);
    if (h.leaf_begin(anc) == query.lo[cdim] &&
        h.leaf_end(anc) == query.hi[cdim] + 1) {
      *dim = cdim;
      *node = anc;
      return true;
    }
  }
  return false;
}

Status AggIndex::QueryNodeLocked(int64_t page, const Rect& query,
                                 AggregateResult* acc) {
  ++stats_.nodes_read;
  if (nodes_read_counter_ != nullptr) nodes_read_counter_->Add(1);
  IOLAP_ASSIGN_OR_RETURN(PageGuard guard, env_->pool().Pin(file_, page));
  AggIndexNodeHeader header;
  std::memcpy(&header, guard.data(), sizeof(header));
  const int k = schema_->num_dims();
  for (int32_t i = 0; i < header.num_entries; ++i) {
    AggIndexEntry e;
    std::memcpy(&e, guard.data() + sizeof(header) + i * sizeof(e), sizeof(e));
    if (!RectsIntersect(e.bbox, query, k)) continue;
    if (RectContains(query, e.bbox, k)) {
      acc->sum += e.sum;
      acc->count += e.count;
      acc->min = std::min(acc->min, e.min);
      acc->max = std::max(acc->max, e.max);
      continue;
    }
    // A leaf entry's bbox is a single cell, so intersection implies
    // containment; only internal entries can straddle the query boundary.
    if (header.level > 0) {
      IOLAP_RETURN_IF_ERROR(QueryNodeLocked(e.child, query, acc));
    }
  }
  return Status::Ok();
}

Status AggIndex::QueryRectLocked(const Rect& query, AggregateResult* acc) {
  // Fast path: a single-hierarchy-node constraint reads one marginal entry
  // instead of descending the tree (whose dim-0-major order fragments
  // badly for constraints on later dimensions).
  bool served = false;
  int mdim = -1;
  NodeId mnode = -1;
  if (MarginalNodeForRect(query, &mdim, &mnode)) {
    auto it = marginal_dir_.find(MarginalKey(mdim, mnode));
    if (it != marginal_dir_.end()) {
      ++stats_.nodes_read;
      if (nodes_read_counter_ != nullptr) nodes_read_counter_->Add(1);
      IOLAP_ASSIGN_OR_RETURN(PageGuard guard,
                             env_->pool().Pin(file_, it->second.first));
      AggIndexEntry e;
      std::memcpy(&e,
                  guard.data() + sizeof(AggIndexNodeHeader) +
                      it->second.second * sizeof(e),
                  sizeof(e));
      acc->sum += e.sum;
      acc->count += e.count;
      acc->min = std::min(acc->min, e.min);
      acc->max = std::max(acc->max, e.max);
      ++stats_.marginal_hits;
      served = true;
    }
  }
  if (!served && root_ >= 0) {
    IOLAP_RETURN_IF_ERROR(QueryNodeLocked(root_, query, acc));
  }
  const int k = schema_->num_dims();
  for (const auto& [key, p] : overlay_) {
    bool inside = true;
    for (int d = 0; d < k; ++d) {
      if (key[d] < query.lo[d] || key[d] > query.hi[d]) {
        inside = false;
        break;
      }
    }
    if (!inside) continue;
    acc->sum += p.sum;
    acc->count += p.count;
    acc->min = std::min(acc->min, p.min);
    acc->max = std::max(acc->max, p.max);
  }
  return Status::Ok();
}

bool AggIndex::IntersectsDirtyLocked(const Rect& query) const {
  const int k = schema_->num_dims();
  for (const Rect& r : dirty_minmax_) {
    if (RectsIntersect(query, r, k)) return true;
  }
  return false;
}

Result<AggregateResult> AggIndex::Aggregate(const QueryRegion& region,
                                            AggregateFunc func) {
  std::lock_guard<std::mutex> lock(mu_);
  IOLAP_RETURN_IF_ERROR(EnsureBuiltLocked());
  const Rect query = RegionToRect(*schema_, region);
  if ((func == AggregateFunc::kMin || func == AggregateFunc::kMax) &&
      IntersectsDirtyLocked(query)) {
    if (!rebuild_on_query_) {
      return Status::Unavailable(
          "min/max dirty and query-path rebuilds are gated off");
    }
    IOLAP_RETURN_IF_ERROR(BuildLocked(/*is_refresh=*/true));
  }
  AggregateResult acc;
  IOLAP_RETURN_IF_ERROR(QueryRectLocked(query, &acc));
  FinalizeAggregate(&acc, func);
  ++stats_.probes;
  if (probes_counter_ != nullptr) probes_counter_->Add(1);
  return acc;
}

Result<std::vector<AggregateResult>> AggIndex::RollUp(
    const QueryRegion& region, int dim, int level, AggregateFunc func) {
  if (dim < 0 || dim >= schema_->num_dims()) {
    return Status::InvalidArgument("rollup dimension out of range");
  }
  const Hierarchy& h = schema_->dim(dim);
  if (level < 1 || level > h.num_levels()) {
    return Status::InvalidArgument("rollup level out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  IOLAP_RETURN_IF_ERROR(EnsureBuiltLocked());
  const Rect base = RegionToRect(*schema_, region);
  if ((func == AggregateFunc::kMin || func == AggregateFunc::kMax) &&
      IntersectsDirtyLocked(base)) {
    if (!rebuild_on_query_) {
      return Status::Unavailable(
          "min/max dirty and query-path rebuilds are gated off");
    }
    IOLAP_RETURN_IF_ERROR(BuildLocked(/*is_refresh=*/true));
  }
  const std::vector<NodeId>& nodes = h.nodes_at_level(level);
  std::vector<AggregateResult> groups(nodes.size());
  for (size_t g = 0; g < nodes.size(); ++g) {
    // Each group is the query region narrowed to the group node in `dim` —
    // still an axis-aligned box, so it is one more index probe.
    const int32_t glo = std::max(base.lo[dim], h.leaf_begin(nodes[g]));
    const int32_t ghi = std::min(base.hi[dim], h.leaf_end(nodes[g]) - 1);
    AggregateResult acc;
    if (glo <= ghi) {
      Rect q = base;
      q.lo[dim] = glo;
      q.hi[dim] = ghi;
      IOLAP_RETURN_IF_ERROR(QueryRectLocked(q, &acc));
    }
    FinalizeAggregate(&acc, func);
    groups[g] = acc;
    ++stats_.probes;
    if (probes_counter_ != nullptr) probes_counter_->Add(1);
  }
  return groups;
}

void AggIndex::OnAdd(const EdbRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  LeafKey key{};
  std::memcpy(key.data(), rec.leaf, sizeof(rec.leaf));
  CellDelta& d = pending_[key];
  d.dsum += rec.weight * rec.measure;
  d.dcount += rec.weight;
  if (!d.has_add) {
    d.add_min = rec.measure;
    d.add_max = rec.measure;
    d.has_add = true;
  } else {
    d.add_min = std::min(d.add_min, rec.measure);
    d.add_max = std::max(d.add_max, rec.measure);
  }
}

void AggIndex::OnRemove(const EdbRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  LeafKey key{};
  std::memcpy(key.data(), rec.leaf, sizeof(rec.leaf));
  CellDelta& d = pending_[key];
  d.dsum -= rec.weight * rec.measure;
  d.dcount -= rec.weight;
  d.removed = true;
}

Status AggIndex::PatchCellLocked(const LeafKey& key, const CellDelta& delta,
                                 bool* found) {
  *found = false;
  if (root_ < 0) return Status::Ok();

  // Descend by canonical key: entries are key-sorted and partition the
  // sorted cell sequence into contiguous runs, so at every node the only
  // candidate is the last entry whose key <= the target's.
  struct Loc {
    int64_t page;
    int32_t slot;
  };
  Loc path[16];
  int depth = 0;
  int64_t page = root_;
  for (;;) {
    ++stats_.nodes_read;
    if (nodes_read_counter_ != nullptr) nodes_read_counter_->Add(1);
    IOLAP_ASSIGN_OR_RETURN(PageGuard guard, env_->pool().Pin(file_, page));
    AggIndexNodeHeader header;
    std::memcpy(&header, guard.data(), sizeof(header));
    int32_t candidate = -1;
    AggIndexEntry e;
    for (int32_t i = 0; i < header.num_entries; ++i) {
      AggIndexEntry cur;
      std::memcpy(&cur, guard.data() + sizeof(header) + i * sizeof(cur),
                  sizeof(cur));
      if (CompareKeys(cur.key, key.data()) > 0) break;
      candidate = i;
      e = cur;
    }
    if (candidate < 0) return Status::Ok();  // key precedes the whole tree
    if (depth == 16) {
      return Status::Internal("aggidx tree deeper than any packed layout");
    }
    path[depth++] = Loc{page, candidate};
    if (header.level == 0) {
      if (CompareKeys(e.key, key.data()) != 0) return Status::Ok();
      break;
    }
    page = e.child;
  }

  // Patch the partials along the whole root-to-leaf path. Additive partials
  // (sum, count) take the delta exactly; min/max only ever widen, and only
  // from pure additions — a batch that removed rows marks dirty rects
  // instead (handled by Commit).
  for (int i = 0; i < depth; ++i) {
    IOLAP_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->pool().Pin(file_, path[i].page));
    AggIndexEntry e;
    std::byte* slot = guard.data() + sizeof(AggIndexNodeHeader) +
                      path[i].slot * sizeof(AggIndexEntry);
    std::memcpy(&e, slot, sizeof(e));
    e.sum += delta.dsum;
    e.count += delta.dcount;
    if (delta.has_add && !delta.removed) {
      e.min = std::min(e.min, delta.add_min);
      e.max = std::max(e.max, delta.add_max);
    }
    std::memcpy(slot, &e, sizeof(e));
    guard.MarkDirty();
  }
  ++stats_.cells_patched;
  if (patched_counter_ != nullptr) patched_counter_->Add(1);
  *found = true;
  return Status::Ok();
}

Status AggIndex::PatchMarginalsLocked(const LeafKey& key,
                                      const CellDelta& delta) {
  // Mirror of the tree patch for every marginal entry covering the cell:
  // one per (dimension, ancestor level). Only called for cells the packed
  // tree knows, so every covering marginal exists by construction.
  const int k = schema_->num_dims();
  for (int d = 0; d < k; ++d) {
    const Hierarchy& h = schema_->dim(d);
    const auto& leaves = h.nodes_at_level(1);
    if (key[d] < 0 || key[d] >= static_cast<int32_t>(leaves.size())) {
      return Status::Internal("aggidx cell key outside the leaf domain");
    }
    const NodeId leaf = leaves[key[d]];
    for (int level = 1; level <= h.num_levels(); ++level) {
      const NodeId anc = h.AncestorAtLevel(leaf, level);
      auto it = marginal_dir_.find(MarginalKey(d, anc));
      if (it == marginal_dir_.end()) {
        return Status::Internal("aggidx marginal missing for a tree cell");
      }
      IOLAP_ASSIGN_OR_RETURN(PageGuard guard,
                             env_->pool().Pin(file_, it->second.first));
      std::byte* slot = guard.data() + sizeof(AggIndexNodeHeader) +
                        it->second.second * sizeof(AggIndexEntry);
      AggIndexEntry e;
      std::memcpy(&e, slot, sizeof(e));
      e.sum += delta.dsum;
      e.count += delta.dcount;
      if (delta.has_add && !delta.removed) {
        e.min = std::min(e.min, delta.add_min);
        e.max = std::max(e.max, delta.add_max);
      }
      std::memcpy(slot, &e, sizeof(e));
      guard.MarkDirty();
    }
  }
  return Status::Ok();
}

Status AggIndex::Commit(const Rect* touched, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!built_ || stale_) {
    // Nothing to patch — the next query rebuilds from the already-mutated
    // EDB, which subsumes these deltas.
    pending_.clear();
    return Status::Ok();
  }
  bool any_removed = false;
  for (const auto& [key, delta] : pending_) {
    any_removed |= delta.removed;
    bool found = false;
    Status s = PatchCellLocked(key, delta, &found);
    if (s.ok() && found) s = PatchMarginalsLocked(key, delta);
    if (!s.ok()) {
      InvalidateLocked();
      return s;
    }
    if (found) continue;
    // Cell not in the packed tree: merge into the overlay. (A removal for
    // an unknown cell can only be the counterpart of earlier overlay
    // additions; the residue stays in the overlay and the dirty rects
    // below cover its min/max.)
    auto [it, inserted] = overlay_.try_emplace(key);
    Partials& p = it->second;
    if (inserted) {
      p.min = kInf;
      p.max = -kInf;
    }
    p.sum += delta.dsum;
    p.count += delta.dcount;
    if (delta.has_add && !delta.removed) {
      p.min = std::min(p.min, delta.add_min);
      p.max = std::max(p.max, delta.add_max);
    } else if (delta.removed) {
      // The overlay cell's extremes can no longer be trusted; widen them so
      // only the dirty-rect rebuild path answers min/max here.
      p.min = kInf;
      p.max = -kInf;
      any_removed = true;
    }
  }
  pending_.clear();

  if (any_removed) {
    dirty_minmax_.insert(dirty_minmax_.end(), touched, touched + n);
    if (static_cast<int64_t>(dirty_minmax_.size()) >
        options_.max_dirty_boxes) {
      // Collapse to one covering box: coarser (more min/max queries will
      // trigger the rebuild) but still conservative, and bounds the
      // per-query dirty check.
      Rect all = dirty_minmax_[0];
      for (const Rect& r : dirty_minmax_) {
        for (int d = 0; d < kMaxDims; ++d) {
          all.lo[d] = std::min(all.lo[d], r.lo[d]);
          all.hi[d] = std::max(all.hi[d], r.hi[d]);
        }
      }
      dirty_minmax_.assign(1, all);
    }
  }
  if (static_cast<int64_t>(overlay_.size()) > options_.max_overlay_cells) {
    stale_ = true;  // overlay too big to stay an overlay; rebuild lazily
  }
  return Status::Ok();
}

void AggIndex::InvalidateLocked() {
  pending_.clear();
  overlay_.clear();
  dirty_minmax_.clear();
  marginal_dir_.clear();
  stale_ = true;
}

void AggIndex::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateLocked();
}

AggIndex::Stats AggIndex::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.overlay_cells = static_cast<int64_t>(overlay_.size());
  s.dirty_boxes = static_cast<int64_t>(dirty_minmax_.size());
  return s;
}

}  // namespace iolap
