#ifndef IOLAP_AGGIDX_AGG_INDEX_H_
#define IOLAP_AGGIDX_AGG_INDEX_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "model/records.h"
#include "model/schema.h"
#include "rtree/rtree.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"

namespace iolap {

class ColumnarEdb;

// ---------------------------------------------------------------------------
// On-disk node layout (see docs/FORMAT.md). One node per 4 KiB page: a
// 16-byte header followed by up to kAggIndexEntriesPerPage packed entries.
// Nodes and entries are sorted by the canonical (dimension-0-major) order of
// their first cell, so every entry covers a contiguous run of the sorted
// occupied-cell sequence.

struct AggIndexNodeHeader {
  int32_t num_entries = 0;
  int32_t level = 0;  // 0 = leaf node (entries are single cells)
  int64_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<AggIndexNodeHeader>);
static_assert(sizeof(AggIndexNodeHeader) == 16);

/// One index entry: a single occupied cell (leaf, `child == -1`, bbox is a
/// point) or a whole child subtree (internal, bbox is the union of the
/// child's entries). The partials answer all five aggregate functions over
/// the entry's rows: SUM = sum, COUNT = count, AVERAGE = sum / count,
/// MIN/MAX = min/max of the unweighted measure.
struct AggIndexEntry {
  int32_t key[kMaxDims] = {};  // canonical sort key: first cell of the run
  Rect bbox;                   // inclusive leaf box covered
  double sum = 0;              // Σ weight · measure
  double count = 0;            // Σ weight
  double min = 0;              // min measure over live rows
  double max = 0;              // max measure over live rows
  int64_t child = -1;          // child page id; -1 for leaf entries
};
static_assert(std::is_trivially_copyable_v<AggIndexEntry>);
static_assert(sizeof(AggIndexEntry) == 112);

inline constexpr int64_t kAggIndexEntriesPerPage =
    static_cast<int64_t>((kPageSize - sizeof(AggIndexNodeHeader)) /
                         sizeof(AggIndexEntry));
static_assert(kAggIndexEntriesPerPage == 36);

/// Header level of marginal pages: per-hierarchy-node partials stored after
/// the cell tree. A marginal entry's key is (dimension, NodeId, 0...), its
/// bbox the node's leaf range on that dimension crossed with the full range
/// everywhere else.
inline constexpr int32_t kAggIndexMarginalLevel = -1;

struct AggIndexOptions {
  /// Cells accumulated in the in-memory overlay (cells that appeared after
  /// the last build) before the next query triggers a full rebuild.
  int64_t max_overlay_cells = 4096;
  /// Dirty min/max rects kept individually; beyond this they are collapsed
  /// into one covering box (coarser, still conservative).
  int64_t max_dirty_boxes = 64;
};

/// Paged, disk-resident hierarchical aggregate index over the Extended
/// Database: per-measure partials (sum, count, min, max) for every occupied
/// leaf cell, packed bottom-up into a static tree in canonical cell order,
/// plus one marginal entry per occupied hierarchy node of every dimension.
/// Because every hierarchy node covers a contiguous leaf range, any query
/// region is an axis-aligned leaf box; a region that constrains exactly one
/// dimension to a hierarchy node — the rollup/dashboard pattern — is a
/// single marginal-page probe, and any other box is answered by the tree:
/// whole subtrees merge where the entry box is contained, recursion handles
/// the fringe. Either way, a few node pages instead of a full EDB scan. All
/// node access goes through the BufferPool, so index I/O is counted (and
/// reported under the `aggidx.*` metric family), separate from the
/// allocation path's demand I/O.
///
/// Incremental maintenance: installed as the MaintenanceManager's
/// EdbChangeListener, it folds row-level changes into per-cell deltas and
/// `Commit` patches sum/count (and monotone min/max growth) in place along
/// each cell's root-to-leaf path and through every marginal entry covering
/// the cell. Removals are non-subtractive for min/max,
/// so the batch's `MaintenanceStats::touched_boxes` are recorded as dirty
/// rects instead — the next MIN/MAX query intersecting one lazily rebuilds
/// the tree from a single EDB pass. Cells first seen after the build live
/// in an in-memory overlay until that next rebuild.
///
/// Thread-safety: one internal mutex serializes all operations. The serve
/// layer calls queries under its shared snapshot lock and Commit/Invalidate
/// under the exclusive lock; lock order is always snapshot lock first, then
/// this index's mutex.
class AggIndex : public EdbChangeListener {
 public:
  struct Stats {
    int64_t probes = 0;         // aggregate / rollup-group lookups served
    int64_t nodes_read = 0;     // node pages visited by lookups
    int64_t builds = 0;         // full builds (first use or invalidation)
    int64_t refreshes = 0;      // lazy rebuilds forced by dirty min/max
    int64_t cells_patched = 0;  // per-cell in-place partial patches
    int64_t marginal_hits = 0;  // probes answered from one marginal entry
    int64_t cells = 0;          // cells in the packed tree
    int64_t pages = 0;          // node pages (tree + marginals)
    int64_t height = 0;         // tree levels
    int64_t overlay_cells = 0;  // cells currently in the overlay
    int64_t dirty_boxes = 0;    // dirty min/max rects outstanding
  };

  AggIndex(StorageEnv* env, const StarSchema* schema,
           const TypedFile<EdbRecord>* edb,
           const AggIndexOptions& options = AggIndexOptions());

  AggIndex(const AggIndex&) = delete;
  AggIndex& operator=(const AggIndex&) = delete;

  /// Builds (or rebuilds) the tree from one EDB pass; clears the overlay
  /// and all dirty state. Queries build lazily, so calling this is only
  /// needed to front-load the cost.
  Status Build();

  /// Allocation-weighted aggregate over `region`, answered from node
  /// partials (triggers a lazy rebuild first if the index is stale for
  /// `func` — see class comment).
  Result<AggregateResult> Aggregate(const QueryRegion& region,
                                    AggregateFunc func);

  /// Rollup: one aggregate per node of `dim` at `level` restricted to
  /// `region`, indexed by node ordinal — answered as one index probe per
  /// group (each group region is still a box).
  Result<std::vector<AggregateResult>> RollUp(const QueryRegion& region,
                                              int dim, int level,
                                              AggregateFunc func);

  // EdbChangeListener: buffers row-level changes of the in-flight
  // maintenance batch as per-cell deltas (applied only by Commit).
  void OnAdd(const EdbRecord& rec) override;
  void OnRemove(const EdbRecord& rec) override;

  /// Folds the buffered deltas into the index after a successful batch.
  /// `touched` / `n` is the batch's MaintenanceStats::touched_boxes slice;
  /// if the batch removed rows these become dirty min/max rects.
  Status Commit(const Rect* touched, size_t n);

  /// Drops buffered deltas and marks the whole index stale (failed or
  /// partially applied batch); the next query rebuilds from the EDB.
  void Invalidate();

  /// Whether a query may trigger a full (re)build, which scans the whole
  /// EDB (default true). The sharded serve layer turns this off: a query
  /// there holds only a subset of the shard locks, so a full EDB scan from
  /// the query path could race a concurrent writer on an unlocked shard.
  /// With rebuilds gated off, a query needing one returns kUnavailable and
  /// the caller falls back to its own (safely locked) scan.
  void set_rebuild_on_query(bool allowed);

  /// Optional columnar scan source for (re)builds. The provider is called
  /// at the start of every build; when it returns a mirror covering
  /// exactly the EDB's current rows, the build scans the mirror instead of
  /// the row file, decoding only measure + weight + leaf columns (never
  /// fact_id). A null / short / long mirror falls back to the row scan.
  /// The provider must be cheap and thread-safe; it runs under the index
  /// mutex and must not call back into this index or the serve layer.
  void set_columnar_provider(
      std::function<std::shared_ptr<const ColumnarEdb>()> provider);

  /// Rebuilds now if the index is unbuilt or stale; a no-op otherwise.
  /// The mutation-path companion of the gate above — called where the
  /// caller knows no writer can be concurrent (e.g. after a commit, under
  /// the mutation lock). Dirty min/max rects alone do not trigger this
  /// (they only pessimize MIN/MAX queries, which keep falling back).
  Status RebuildIfStale();

  Stats stats() const;

 private:
  struct Partials {
    double sum = 0;
    double count = 0;
    double min = 0;
    double max = 0;
  };
  struct CellDelta {
    double dsum = 0;
    double dcount = 0;
    double add_min = 0;  // valid iff has_add
    double add_max = 0;
    bool has_add = false;
    bool removed = false;
  };
  using LeafKey = std::array<int32_t, kMaxDims>;

  Status EnsureBuiltLocked();
  Status BuildLocked(bool is_refresh);
  Status BuildMarginalsLocked(const std::map<LeafKey, Partials>& cells,
                              int64_t* next_page);
  Status WritePageLocked(int64_t page, const AggIndexNodeHeader& header,
                         const AggIndexEntry* entries);
  Status QueryNodeLocked(int64_t page, const Rect& query,
                         AggregateResult* acc);
  Status QueryRectLocked(const Rect& query, AggregateResult* acc);
  bool MarginalNodeForRect(const Rect& query, int* dim, NodeId* node) const;
  bool IntersectsDirtyLocked(const Rect& query) const;
  Status PatchCellLocked(const LeafKey& key, const CellDelta& delta,
                         bool* found);
  Status PatchMarginalsLocked(const LeafKey& key, const CellDelta& delta);
  void InvalidateLocked();

  StorageEnv* env_;
  const StarSchema* schema_;
  const TypedFile<EdbRecord>* edb_;
  AggIndexOptions options_;

  mutable std::mutex mu_;
  FileId file_ = kInvalidFileId;
  int64_t root_ = -1;      // root page id; -1 when the tree is empty
  int64_t num_pages_ = 0;  // node pages written by the last build
  bool built_ = false;
  bool stale_ = false;  // full rebuild required before any answer
  bool rebuild_on_query_ = true;  // see set_rebuild_on_query
  std::function<std::shared_ptr<const ColumnarEdb>()> columnar_provider_;
  std::map<LeafKey, Partials> overlay_;  // cells added after the build
  std::vector<Rect> dirty_minmax_;       // regions with stale min/max
  std::map<LeafKey, CellDelta> pending_;  // in-flight batch deltas
  /// (dim << 32 | NodeId) -> (page, slot) of the node's marginal entry.
  std::unordered_map<int64_t, std::pair<int64_t, int32_t>> marginal_dir_;
  Stats stats_;

  // Cached global-metrics handles (null when observability is disabled).
  class Counter* probes_counter_;
  class Counter* nodes_read_counter_;
  class Counter* builds_counter_;
  class Counter* refreshes_counter_;
  class Counter* patched_counter_;
  class Gauge* cells_gauge_;
  class Gauge* pages_gauge_;
};

}  // namespace iolap

#endif  // IOLAP_AGGIDX_AGG_INDEX_H_
