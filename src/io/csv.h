#ifndef IOLAP_IO_CSV_H_
#define IOLAP_IO_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"

namespace iolap {

/// Splits one CSV line into fields. Supports double-quoted fields with ""
/// escapes; no embedded newlines.
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Loads a star schema from a hierarchy CSV with rows
///   dimension,parent,node
/// in top-down order (a node's parent must appear before it; an empty
/// parent means a child of that dimension's ALL). Dimensions appear in
/// first-encounter order. Hierarchies must come out balanced.
Result<StarSchema> LoadSchemaCsv(const std::string& path);

/// Loads a fact table from a CSV whose header is
///   fact_id,<dim 1 name>,...,<dim k name>,measure
/// Dimension values are node *names* at any hierarchy level (that is how
/// imprecision is expressed: "Wisconsin" instead of "Madison").
Result<TypedFile<FactRecord>> LoadFactsCsv(StorageEnv& env,
                                           const StarSchema& schema,
                                           const std::string& path);

/// Writes the Extended Database as CSV:
///   fact_id,<dim 1 leaf name>,...,<dim k leaf name>,weight,measure
Status WriteEdbCsv(StorageEnv& env, const StarSchema& schema,
                   const TypedFile<EdbRecord>& edb, const std::string& path);

}  // namespace iolap

#endif  // IOLAP_IO_CSV_H_
