#include "io/csv.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace iolap {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

Result<StarSchema> LoadSchemaCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open schema file " + path);

  struct DimBuild {
    std::unique_ptr<HierarchyBuilder> builder;
    std::map<std::string, NodeId> nodes;
  };
  std::vector<std::string> dim_order;
  std::map<std::string, DimBuild> dims;

  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = ParseCsvLine(line);
    if (fields.size() != 3) {
      return Status::InvalidArgument("schema line " + std::to_string(lineno) +
                                     ": expected dimension,parent,node");
    }
    const std::string& dim = fields[0];
    const std::string& parent = fields[1];
    const std::string& node = fields[2];
    auto it = dims.find(dim);
    if (it == dims.end()) {
      dim_order.push_back(dim);
      DimBuild build;
      build.builder = std::make_unique<HierarchyBuilder>(dim);
      build.nodes["ALL"] = 0;
      it = dims.emplace(dim, std::move(build)).first;
    }
    DimBuild& build = it->second;
    NodeId parent_id = 0;
    if (!parent.empty() && parent != "ALL") {
      auto pit = build.nodes.find(parent);
      if (pit == build.nodes.end()) {
        return Status::InvalidArgument(
            "schema line " + std::to_string(lineno) + ": parent '" + parent +
            "' of '" + node + "' not seen yet (rows must be top-down)");
      }
      parent_id = pit->second;
    }
    if (build.nodes.count(node) != 0) {
      return Status::InvalidArgument("schema line " + std::to_string(lineno) +
                                     ": duplicate node '" + node + "'");
    }
    build.nodes[node] = build.builder->AddNode(parent_id, node);
  }
  if (dim_order.empty()) {
    return Status::InvalidArgument("schema file " + path + " has no rows");
  }
  std::vector<Hierarchy> hierarchies;
  for (const std::string& dim : dim_order) {
    IOLAP_ASSIGN_OR_RETURN(Hierarchy h, dims[dim].builder->Build());
    hierarchies.push_back(std::move(h));
  }
  return StarSchema::Create(std::move(hierarchies));
}

Result<TypedFile<FactRecord>> LoadFactsCsv(StorageEnv& env,
                                           const StarSchema& schema,
                                           const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open facts file " + path);
  const int k = schema.num_dims();

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("facts file " + path + " is empty");
  }
  std::vector<std::string> header = ParseCsvLine(line);
  if (static_cast<int>(header.size()) != k + 2 || header[0] != "fact_id" ||
      header.back() != "measure") {
    return Status::InvalidArgument(
        "facts header must be fact_id,<dims...>,measure");
  }
  // Map header columns to schema dimensions by name.
  std::vector<int> column_dim(k, -1);
  for (int col = 0; col < k; ++col) {
    bool found = false;
    for (int d = 0; d < k; ++d) {
      if (schema.dim(d).dimension_name() == header[col + 1]) {
        column_dim[col] = d;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown dimension column '" +
                                     header[col + 1] + "'");
    }
  }

  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "csv_facts"));
  auto appender = file.MakeAppender(env.pool());
  int64_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = ParseCsvLine(line);
    if (static_cast<int>(fields.size()) != k + 2) {
      return Status::InvalidArgument("facts line " + std::to_string(lineno) +
                                     ": wrong field count");
    }
    FactRecord fact;
    fact.fact_id = std::strtoll(fields[0].c_str(), nullptr, 10);
    fact.measure = std::strtod(fields.back().c_str(), nullptr);
    for (int col = 0; col < k; ++col) {
      int d = column_dim[col];
      IOLAP_ASSIGN_OR_RETURN(NodeId node,
                             schema.dim(d).FindNode(fields[col + 1]));
      fact.node[d] = node;
      fact.level[d] = static_cast<uint8_t>(schema.dim(d).level(node));
    }
    IOLAP_RETURN_IF_ERROR(appender.Append(fact));
  }
  appender.Close();
  return file;
}

Status WriteEdbCsv(StorageEnv& env, const StarSchema& schema,
                   const TypedFile<EdbRecord>& edb, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open output file " + path);
  out << "fact_id";
  for (int d = 0; d < schema.num_dims(); ++d) {
    out << ',' << schema.dim(d).dimension_name();
  }
  out << ",weight,measure\n";
  auto cursor = edb.Scan(env.pool());
  EdbRecord rec;
  char buffer[64];
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
    out << rec.fact_id;
    for (int d = 0; d < schema.num_dims(); ++d) {
      const Hierarchy& h = schema.dim(d);
      out << ',' << h.name(h.leaf_node(rec.leaf[d]));
    }
    std::snprintf(buffer, sizeof(buffer), ",%.*g,%.*g", 17, rec.weight, 17,
                  rec.measure);
    out << buffer << '\n';
  }
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace iolap
