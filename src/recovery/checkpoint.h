#ifndef IOLAP_RECOVERY_CHECKPOINT_H_
#define IOLAP_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "alloc/algorithms.h"
#include "alloc/allocator.h"
#include "alloc/dataset.h"
#include "alloc/policy.h"
#include "common/result.h"
#include "common/status.h"
#include "model/records.h"
#include "storage/storage_env.h"

namespace iolap {

/// POD header of the on-disk checkpoint manifest (`manifest.<gen>`; see
/// docs/FORMAT.md). Followed by four trivially-copyable arrays
/// (SummaryTableInfo, cell-page fence keys, ComponentInfo, IterationStats)
/// and a trailing FNV-1a 64 checksum over everything before it.
struct ManifestHeader {
  char magic[8];     // "IOLAPCK1"
  uint32_t version;  // kManifestVersion
  uint32_t flags;    // bit 0: basic payload, bit 1: iterate phase converged
  uint64_t generation;

  // Options fingerprint — resume refuses to continue under different knobs
  // (a different buffer budget alone changes Block's group packing and
  // therefore the floating-point accumulation order).
  int32_t algorithm;
  int32_t policy;
  int32_t domain;
  int32_t max_iterations;
  double epsilon;
  int64_t buffer_pages;
  int32_t early_convergence;
  int32_t num_dims;

  // Progress at the boundary this manifest commits.
  int32_t completed_iterations;  // Basic/Block/Independent global iterations
  int32_t num_groups;
  int64_t next_component;  // Transitive: first component not yet emitted
  double final_eps;
  int32_t chain_width;
  int32_t reserved0;

  // Partial AllocationResult counters.
  int64_t edges_emitted;
  int64_t unallocatable_facts;
  int64_t peak_window_records;
  int64_t census_num_components;
  int64_t census_num_singleton_cells;
  int64_t census_largest_component;
  int64_t census_num_large_components;
  int64_t census_large_component_pages;
  int64_t census_max_component_iterations;
  int64_t census_total_component_iterations;

  // Dataset metadata (reconstructs PreparedDataset without re-prepping).
  int64_t num_precise;
  int64_t num_imprecise;
  int64_t cells_count;      // records in cells.<gen>
  int64_t imprecise_count;  // records in imprecise.<gen>
  int64_t edb_count;        // records in edb.<gen>
  int64_t cells_pages;      // page-image sizes (0 in basic-payload mode)
  int64_t imprecise_pages;
  int64_t edb_pages;

  // Lengths of the trailing arrays.
  uint32_t num_tables;
  uint32_t num_fences;
  uint32_t num_directory;
  uint32_t num_per_iteration;
};
static_assert(std::is_trivially_copyable_v<ManifestHeader>,
              "manifest header must be memcpy-able");

inline constexpr uint32_t kManifestVersion = 1;
inline constexpr uint32_t kManifestFlagBasicPayload = 1u << 0;
inline constexpr uint32_t kManifestFlagConverged = 1u << 1;

/// Crash-consistent checkpoint/restart for allocation runs (DESIGN.md §9).
///
/// At iteration boundaries (Basic/Block/Independent) or component
/// boundaries (Transitive) the manager copies the run's mutable files —
/// cells, imprecise entries, the EDB — into generation-numbered files in
/// the checkpoint directory and then commits them atomically with a
/// checksummed manifest (write temp → fsync → rename → fsync dir). The
/// previous generation is kept until the new manifest is durable, so a
/// crash at any instant leaves at least one restorable generation.
///
/// All checkpoint I/O bypasses the IoStats counters (it is not demand I/O
/// of the paper's cost model; the `ckpt.*` metrics report it instead) but
/// still consults the DiskManager fault injector (op 'c') so recovery tests
/// can kill a run mid-checkpoint.
///
/// Not thread-safe: call only from the orchestration thread (the parallel
/// Transitive path checkpoints from its ordered-emit closures, which the
/// scheduler already serializes).
class CheckpointManager {
 public:
  /// Creates the checkpoint directory if needed. `options` supplies both
  /// the fingerprint and the cadence (`options.checkpoint`).
  static Result<std::unique_ptr<CheckpointManager>> Open(
      StorageEnv* env, const AllocationOptions& options, int num_dims);

  // --- Resume (facade side) -----------------------------------------------

  /// Scans the directory for the newest manifest that passes the checksum
  /// and whose data files are intact, falling back one generation on a torn
  /// manifest. On success restores `data` (fresh workspace files imported
  /// from the checkpoint images) and `result`, and returns true. Returns
  /// false when no usable checkpoint exists (caller preprocesses from
  /// scratch). A valid manifest with a mismatched options fingerprint is an
  /// error, not a fallback — silently recomputing hours of work under
  /// different knobs would be worse than stopping.
  Result<bool> TryResume(PreparedDataset* data, AllocationResult* result);

  // --- Resume (algorithm side) --------------------------------------------

  bool resumed() const { return resumed_; }
  /// Completed global iterations; the loop continues at start+1.
  int start_iteration() const { return resumed_ ? header_.completed_iterations : 0; }
  /// True when the iterate phase finished before the crash; the resumed run
  /// skips straight to emission.
  bool resumed_converged() const {
    return resumed_ && (header_.flags & kManifestFlagConverged) != 0;
  }
  /// Transitive: first component index not yet converged-and-emitted.
  /// Components below it are final (their EDB rows are inside the restored
  /// EDB image) and are never reprocessed.
  int64_t start_component() const {
    return resumed_ ? header_.next_component : 0;
  }
  /// Transitive: the restored component directory (valid once per resume).
  std::vector<ComponentInfo> TakeDirectory() { return std::move(directory_); }
  /// Basic stores its in-memory vectors instead of page images.
  bool has_basic_state() const {
    return resumed_ && (header_.flags & kManifestFlagBasicPayload) != 0;
  }
  Status LoadBasicState(std::vector<CellRecord>* cells,
                        std::vector<ImpreciseRecord>* entries);

  // --- Checkpointing ------------------------------------------------------

  /// True when iteration boundary `t` is a checkpoint boundary
  /// (`checkpoint.every` cadence).
  bool DueAtIteration(int t) const { return t % every_ == 0; }
  /// True when `processed` components are done and a checkpoint is due.
  bool DueAtComponent(int64_t processed) const {
    return processed - last_component_ >= every_;
  }

  /// Commits the state at the end of global iteration `t` (Block and
  /// Independent: all iteration state lives in the cells/imprecise files).
  /// `converged` marks the iterate phase complete. No-op if `t` was already
  /// committed.
  Status CheckpointIteration(int t, bool converged, PreparedDataset* data,
                             const AllocationResult& result);

  /// Commits the state after Transitive finished components
  /// [0, next_component): the component-sorted files, the EDB with their
  /// rows emitted, and the directory.
  Status CheckpointComponents(int64_t next_component, PreparedDataset* data,
                              const AllocationResult& result,
                              const std::vector<ComponentInfo>& directory);

  /// Commits Basic's state at the end of iteration `t`: the in-memory
  /// cell/entry vectors are written as raw payloads (no buffer-pool
  /// traffic), the EDB as a page image.
  Status CheckpointBasic(int t, bool converged,
                         const std::vector<CellRecord>& cells,
                         const std::vector<ImpreciseRecord>& entries,
                         PreparedDataset* data,
                         const AllocationResult& result);

 private:
  CheckpointManager(StorageEnv* env, std::string directory,
                    const AllocationOptions& options, int num_dims);

  std::string DataPath(const char* name, uint64_t gen) const;
  std::string ManifestPath(uint64_t gen) const;

  /// The one save path behind the three Checkpoint* entry points.
  Status Save(int iteration, bool converged, int64_t next_component,
              const std::vector<ComponentInfo>* directory,
              const std::vector<CellRecord>* basic_cells,
              const std::vector<ImpreciseRecord>* basic_entries,
              PreparedDataset* data, const AllocationResult& result);

  /// Flushes `file` through the pool and copies `pages` of it into the
  /// checkpoint directory.
  Status ExportImage(FileId file, int64_t pages, const std::string& dest);

  Status WriteBlob(const std::string& path, const void* bytes, size_t n,
                   bool do_fsync);
  Result<std::string> ReadBlob(const std::string& path) const;

  /// Parses and fully validates one manifest generation; returns false on a
  /// torn manifest or missing/truncated data files (fall back), an error on
  /// a fingerprint mismatch (stop).
  Result<bool> LoadGeneration(uint64_t gen);
  Status CheckFingerprint(const ManifestHeader& h) const;
  Status Restore(PreparedDataset* data, AllocationResult* result);
  void DeleteGeneration(uint64_t gen) const;

  StorageEnv* env_;
  std::string directory_path_;
  AllocationOptions options_;
  int num_dims_;
  int every_;

  // Resume state.
  bool resumed_ = false;
  ManifestHeader header_{};
  std::vector<SummaryTableInfo> tables_;
  std::vector<std::array<int32_t, kMaxDims>> fences_;
  std::vector<ComponentInfo> directory_;
  std::vector<IterationStats> per_iteration_;

  // Save-side bookkeeping.
  uint64_t last_gen_ = 0;
  int last_iteration_ = -1;
  bool last_converged_ = false;
  int64_t last_component_ = 0;
};

}  // namespace iolap

#endif  // IOLAP_RECOVERY_CHECKPOINT_H_
