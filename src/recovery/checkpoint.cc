#include "recovery/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <dirent.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace iolap {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " failed for " + path + ": " + std::strerror(errno);
}

uint64_t Fnv1a64(const char* bytes, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void Bump(const char* name, int64_t n = 1) {
  if (Counter* c = GlobalCounter(name)) c->Add(n);
}

template <typename T>
void AppendPod(std::string* out, const T* items, size_t count) {
  if (count == 0) return;
  out->append(reinterpret_cast<const char*>(items), count * sizeof(T));
}

Result<int64_t> FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound(ErrnoMessage("stat", path));
  }
  return static_cast<int64_t>(st.st_size);
}

/// Commits `path` durably after a rename: fsync the containing directory.
Status FsyncDirectoryOf(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", dir));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError(ErrnoMessage("fsync", dir));
  return Status::Ok();
}

}  // namespace

CheckpointManager::CheckpointManager(StorageEnv* env, std::string directory,
                                     const AllocationOptions& options,
                                     int num_dims)
    : env_(env),
      directory_path_(std::move(directory)),
      options_(options),
      num_dims_(num_dims),
      every_(std::max(1, options.checkpoint.every)) {}

Result<std::unique_ptr<CheckpointManager>> CheckpointManager::Open(
    StorageEnv* env, const AllocationOptions& options, int num_dims) {
  const std::string& dir = options.checkpoint.directory;
  if (dir.empty()) {
    return Status::InvalidArgument("checkpoint directory not set");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(ErrnoMessage("mkdir", dir));
  }
  return std::unique_ptr<CheckpointManager>(
      new CheckpointManager(env, dir, options, num_dims));
}

std::string CheckpointManager::DataPath(const char* name, uint64_t gen) const {
  return directory_path_ + "/" + name + "." + std::to_string(gen);
}

std::string CheckpointManager::ManifestPath(uint64_t gen) const {
  return DataPath("manifest", gen);
}

// ---------------------------------------------------------------------------
// Save path

Status CheckpointManager::ExportImage(FileId file, int64_t pages,
                                      const std::string& dest) {
  IOLAP_RETURN_IF_ERROR(env_->pool().FlushFile(file));
  IOLAP_RETURN_IF_ERROR(env_->disk().ExportPages(file, pages, dest));
  Bump("ckpt.pages_exported", pages);
  return Status::Ok();
}

Status CheckpointManager::WriteBlob(const std::string& path, const void* bytes,
                                    size_t n, bool do_fsync) {
  // Blob writes move bytes outside the page API; report them to the fault
  // injector as checkpoint ops so tests can kill a run mid-manifest.
  IOLAP_RETURN_IF_ERROR(env_->disk().InjectCheckpointOps(
      static_cast<int64_t>((n + kPageSize - 1) / kPageSize) + 1));
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
  Status st = Status::Ok();
  size_t done = 0;
  const char* p = static_cast<const char*>(bytes);
  while (done < n) {
    ssize_t put = ::write(fd, p + done, n - done);
    if (put <= 0) {
      st = Status::IoError(ErrnoMessage("write", path));
      break;
    }
    done += static_cast<size_t>(put);
  }
  if (st.ok() && do_fsync && ::fsync(fd) != 0) {
    st = Status::IoError(ErrnoMessage("fsync", path));
  }
  ::close(fd);
  if (!st.ok()) ::unlink(path.c_str());
  return st;
}

Result<std::string> CheckpointManager::ReadBlob(
    const std::string& path) const {
  IOLAP_ASSIGN_OR_RETURN(int64_t bytes, FileBytes(path));
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
  std::string out(static_cast<size_t>(bytes), '\0');
  size_t done = 0;
  Status st = Status::Ok();
  while (done < out.size()) {
    ssize_t got = ::read(fd, out.data() + done, out.size() - done);
    if (got <= 0) {
      st = Status::IoError(ErrnoMessage("read", path));
      break;
    }
    done += static_cast<size_t>(got);
  }
  ::close(fd);
  if (!st.ok()) return st;
  return out;
}

void CheckpointManager::DeleteGeneration(uint64_t gen) const {
  ::unlink(ManifestPath(gen).c_str());
  ::unlink(DataPath("cells", gen).c_str());
  ::unlink(DataPath("imprecise", gen).c_str());
  ::unlink(DataPath("edb", gen).c_str());
}

Status CheckpointManager::Save(int iteration, bool converged,
                               int64_t next_component,
                               const std::vector<ComponentInfo>* directory,
                               const std::vector<CellRecord>* basic_cells,
                               const std::vector<ImpreciseRecord>* basic_entries,
                               PreparedDataset* data,
                               const AllocationResult& result) {
  TraceSpan span("ckpt.save");
  const uint64_t gen = last_gen_ + 1;
  const bool basic = basic_cells != nullptr;
  span.AddArg("generation", static_cast<int64_t>(gen));

  ManifestHeader h{};
  std::memcpy(h.magic, "IOLAPCK1", sizeof(h.magic));
  h.version = kManifestVersion;
  h.flags = (basic ? kManifestFlagBasicPayload : 0) |
            (converged ? kManifestFlagConverged : 0);
  h.generation = gen;
  h.algorithm = static_cast<int32_t>(options_.algorithm);
  h.policy = static_cast<int32_t>(options_.policy);
  h.domain = static_cast<int32_t>(options_.domain);
  h.max_iterations = options_.max_iterations;
  h.epsilon = options_.epsilon;
  h.buffer_pages = env_->buffer_pages();
  h.early_convergence = options_.early_convergence ? 1 : 0;
  h.num_dims = num_dims_;
  h.completed_iterations = iteration;
  h.num_groups = result.num_groups;
  h.next_component = next_component;
  h.final_eps = result.final_eps;
  h.chain_width = result.chain_width;
  h.edges_emitted = result.edges_emitted;
  h.unallocatable_facts = result.unallocatable_facts;
  h.peak_window_records = result.peak_window_records;
  h.census_num_components = result.components.num_components;
  h.census_num_singleton_cells = result.components.num_singleton_cells;
  h.census_largest_component = result.components.largest_component;
  h.census_num_large_components = result.components.num_large_components;
  h.census_large_component_pages = result.components.large_component_pages;
  h.census_max_component_iterations =
      result.components.max_component_iterations;
  h.census_total_component_iterations =
      result.components.total_component_iterations;
  h.num_precise = data->num_precise_facts;
  h.num_imprecise = data->num_imprecise_facts;
  h.cells_count = basic ? static_cast<int64_t>(basic_cells->size())
                        : data->cells.size();
  h.imprecise_count = basic ? static_cast<int64_t>(basic_entries->size())
                            : data->imprecise.size();
  h.edb_count = result.edb.size();
  h.cells_pages = basic ? 0 : data->cells.size_in_pages();
  h.imprecise_pages = basic ? 0 : data->imprecise.size_in_pages();
  // The appender's partially filled tail page flushes and restores cleanly
  // (Appender re-pins a non-empty tail page and marks it dirty per append).
  TypedFile<EdbRecord> edb = result.edb;
  h.edb_pages = edb.size_in_pages();
  h.num_tables = static_cast<uint32_t>(data->tables.size());
  h.num_fences = static_cast<uint32_t>(data->fences.size());
  h.num_directory =
      directory != nullptr ? static_cast<uint32_t>(directory->size()) : 0;
  h.num_per_iteration = static_cast<uint32_t>(result.per_iteration.size());

  // 1. Data images for generation `gen`. Generation gen-1 stays intact
  // until the new manifest is durable: a crash anywhere in here loses
  // nothing.
  if (basic) {
    IOLAP_RETURN_IF_ERROR(WriteBlob(
        DataPath("cells", gen), basic_cells->data(),
        basic_cells->size() * sizeof(CellRecord), /*do_fsync=*/true));
    IOLAP_RETURN_IF_ERROR(WriteBlob(
        DataPath("imprecise", gen), basic_entries->data(),
        basic_entries->size() * sizeof(ImpreciseRecord), /*do_fsync=*/true));
  } else {
    IOLAP_RETURN_IF_ERROR(ExportImage(data->cells.file_id(), h.cells_pages,
                                      DataPath("cells", gen)));
    IOLAP_RETURN_IF_ERROR(ExportImage(data->imprecise.file_id(),
                                      h.imprecise_pages,
                                      DataPath("imprecise", gen)));
  }
  IOLAP_RETURN_IF_ERROR(
      ExportImage(edb.file_id(), h.edb_pages, DataPath("edb", gen)));

  // 2. Commit: checksummed manifest to a temp file, fsync, rename over the
  // final name, fsync the directory. The rename is the commit point.
  std::string blob;
  blob.reserve(sizeof(h) + h.num_tables * sizeof(SummaryTableInfo) +
               h.num_fences * sizeof(data->fences[0]) +
               h.num_directory * sizeof(ComponentInfo) +
               h.num_per_iteration * sizeof(IterationStats) + sizeof(uint64_t));
  AppendPod(&blob, &h, 1);
  AppendPod(&blob, data->tables.data(), data->tables.size());
  AppendPod(&blob, data->fences.data(), data->fences.size());
  if (directory != nullptr) {
    AppendPod(&blob, directory->data(), directory->size());
  }
  AppendPod(&blob, result.per_iteration.data(), result.per_iteration.size());
  uint64_t checksum = Fnv1a64(blob.data(), blob.size());
  AppendPod(&blob, &checksum, 1);

  std::string tmp = directory_path_ + "/manifest.tmp";
  IOLAP_RETURN_IF_ERROR(
      WriteBlob(tmp, blob.data(), blob.size(), /*do_fsync=*/true));
  if (::rename(tmp.c_str(), ManifestPath(gen).c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename", ManifestPath(gen)));
  }
  IOLAP_RETURN_IF_ERROR(FsyncDirectoryOf(directory_path_));

  // 3. Generation gen is durable; gen-1 remains as the torn-manifest
  // fallback and everything older is garbage.
  if (gen >= 2) DeleteGeneration(gen - 2);
  last_gen_ = gen;
  last_iteration_ = iteration;
  last_converged_ = converged;
  last_component_ = next_component;
  Bump("ckpt.saves");
  return Status::Ok();
}

Status CheckpointManager::CheckpointIteration(int t, bool converged,
                                              PreparedDataset* data,
                                              const AllocationResult& result) {
  if (t == last_iteration_ && converged == last_converged_) {
    return Status::Ok();
  }
  return Save(t, converged, /*next_component=*/0, /*directory=*/nullptr,
              /*basic_cells=*/nullptr, /*basic_entries=*/nullptr, data,
              result);
}

Status CheckpointManager::CheckpointComponents(
    int64_t next_component, PreparedDataset* data,
    const AllocationResult& result,
    const std::vector<ComponentInfo>& directory) {
  if (next_component == last_component_ && last_gen_ > 0) {
    return Status::Ok();
  }
  // A finished component set is final: converged and emitted (DESIGN.md
  // §9), so resume never revisits components below `next_component`.
  return Save(/*iteration=*/result.iterations,
              /*converged=*/next_component ==
                  static_cast<int64_t>(directory.size()),
              next_component, &directory, /*basic_cells=*/nullptr,
              /*basic_entries=*/nullptr, data, result);
}

Status CheckpointManager::CheckpointBasic(
    int t, bool converged, const std::vector<CellRecord>& cells,
    const std::vector<ImpreciseRecord>& entries, PreparedDataset* data,
    const AllocationResult& result) {
  if (t == last_iteration_ && converged == last_converged_) {
    return Status::Ok();
  }
  return Save(t, converged, /*next_component=*/0, /*directory=*/nullptr,
              &cells, &entries, data, result);
}

// ---------------------------------------------------------------------------
// Resume path

Status CheckpointManager::CheckFingerprint(const ManifestHeader& h) const {
  auto mismatch = [](const std::string& what) {
    return Status::FailedPrecondition(
        "checkpoint was written under different options (" + what +
        "); refusing to resume");
  };
  if (h.algorithm != static_cast<int32_t>(options_.algorithm)) {
    return mismatch("algorithm");
  }
  if (h.policy != static_cast<int32_t>(options_.policy)) {
    return mismatch("policy");
  }
  if (h.domain != static_cast<int32_t>(options_.domain)) {
    return mismatch("cell domain");
  }
  if (h.epsilon != options_.epsilon) return mismatch("epsilon");
  if (h.max_iterations != options_.max_iterations) {
    return mismatch("max_iterations");
  }
  if ((h.early_convergence != 0) != options_.early_convergence) {
    return mismatch("early_convergence");
  }
  // A different buffer budget changes Block's group packing and therefore
  // the floating-point accumulation order — the resumed run would diverge.
  if (h.buffer_pages != env_->buffer_pages()) return mismatch("buffer_pages");
  if (h.num_dims != num_dims_) return mismatch("schema dimensionality");
  return Status::Ok();
}

Result<bool> CheckpointManager::LoadGeneration(uint64_t gen) {
  Result<std::string> blob_or = ReadBlob(ManifestPath(gen));
  if (!blob_or.ok()) return false;  // unreadable: fall back
  const std::string& blob = blob_or.value();
  if (blob.size() < sizeof(ManifestHeader) + sizeof(uint64_t)) return false;

  uint64_t stored;
  std::memcpy(&stored, blob.data() + blob.size() - sizeof(stored),
              sizeof(stored));
  if (Fnv1a64(blob.data(), blob.size() - sizeof(stored)) != stored) {
    return false;  // torn or corrupted manifest
  }

  ManifestHeader h;
  std::memcpy(&h, blob.data(), sizeof(h));
  if (std::memcmp(h.magic, "IOLAPCK1", sizeof(h.magic)) != 0 ||
      h.version != kManifestVersion) {
    return false;
  }
  size_t expect = sizeof(h) + h.num_tables * sizeof(SummaryTableInfo) +
                  h.num_fences * sizeof(std::array<int32_t, kMaxDims>) +
                  h.num_directory * sizeof(ComponentInfo) +
                  h.num_per_iteration * sizeof(IterationStats) +
                  sizeof(uint64_t);
  if (blob.size() != expect) return false;
  // A checksum-valid manifest under the wrong options is an operator error,
  // not corruption — surface it instead of silently recomputing.
  IOLAP_RETURN_IF_ERROR(CheckFingerprint(h));

  // The data files this manifest points at must be present and whole.
  const bool basic = (h.flags & kManifestFlagBasicPayload) != 0;
  auto intact = [&](const char* name, int64_t want) {
    Result<int64_t> got = FileBytes(DataPath(name, gen));
    return got.ok() && got.value() == want;
  };
  if (basic) {
    if (!intact("cells",
                h.cells_count * static_cast<int64_t>(sizeof(CellRecord))) ||
        !intact("imprecise", h.imprecise_count * static_cast<int64_t>(
                                 sizeof(ImpreciseRecord)))) {
      return false;
    }
  } else {
    if (!intact("cells", h.cells_pages * static_cast<int64_t>(kPageSize)) ||
        !intact("imprecise",
                h.imprecise_pages * static_cast<int64_t>(kPageSize))) {
      return false;
    }
  }
  if (!intact("edb", h.edb_pages * static_cast<int64_t>(kPageSize))) {
    return false;
  }

  header_ = h;
  const char* p = blob.data() + sizeof(h);
  tables_.resize(h.num_tables);
  std::memcpy(tables_.data(), p, h.num_tables * sizeof(SummaryTableInfo));
  p += h.num_tables * sizeof(SummaryTableInfo);
  fences_.resize(h.num_fences);
  std::memcpy(fences_.data(), p,
              h.num_fences * sizeof(std::array<int32_t, kMaxDims>));
  p += h.num_fences * sizeof(std::array<int32_t, kMaxDims>);
  directory_.resize(h.num_directory);
  std::memcpy(directory_.data(), p, h.num_directory * sizeof(ComponentInfo));
  p += h.num_directory * sizeof(ComponentInfo);
  per_iteration_.resize(h.num_per_iteration);
  std::memcpy(per_iteration_.data(), p,
              h.num_per_iteration * sizeof(IterationStats));
  return true;
}

Status CheckpointManager::Restore(PreparedDataset* data,
                                  AllocationResult* result) {
  DiskManager& disk = env_->disk();
  const uint64_t gen = header_.generation;
  const bool basic = (header_.flags & kManifestFlagBasicPayload) != 0;

  IOLAP_ASSIGN_OR_RETURN(data->cells,
                         TypedFile<CellRecord>::Create(disk, "cells"));
  IOLAP_ASSIGN_OR_RETURN(data->imprecise,
                         TypedFile<ImpreciseRecord>::Create(disk, "entries"));
  IOLAP_ASSIGN_OR_RETURN(data->precise_edb,
                         TypedFile<EdbRecord>::Create(disk, "edb"));
  if (!basic) {
    IOLAP_RETURN_IF_ERROR(disk.ImportPages(
        data->cells.file_id(), DataPath("cells", gen), header_.cells_pages));
    data->cells.set_size(header_.cells_count);
    IOLAP_RETURN_IF_ERROR(disk.ImportPages(data->imprecise.file_id(),
                                           DataPath("imprecise", gen),
                                           header_.imprecise_pages));
    data->imprecise.set_size(header_.imprecise_count);
    Bump("ckpt.pages_imported", header_.cells_pages + header_.imprecise_pages);
  }
  IOLAP_RETURN_IF_ERROR(disk.ImportPages(
      data->precise_edb.file_id(), DataPath("edb", gen), header_.edb_pages));
  data->precise_edb.set_size(header_.edb_count);
  Bump("ckpt.pages_imported", header_.edb_pages);

  data->tables = tables_;
  data->fences = fences_;
  data->num_precise_facts = header_.num_precise;
  data->num_imprecise_facts = header_.num_imprecise;

  result->num_cells = header_.cells_count;
  result->num_precise = header_.num_precise;
  result->num_imprecise = header_.num_imprecise;
  result->num_tables = static_cast<int>(header_.num_tables);
  result->iterations = header_.completed_iterations;
  result->final_eps = header_.final_eps;
  result->num_groups = header_.num_groups;
  result->chain_width = header_.chain_width;
  result->edges_emitted = header_.edges_emitted;
  result->unallocatable_facts = header_.unallocatable_facts;
  result->peak_window_records = header_.peak_window_records;
  result->components.num_components = header_.census_num_components;
  result->components.num_singleton_cells = header_.census_num_singleton_cells;
  result->components.largest_component = header_.census_largest_component;
  result->components.num_large_components =
      header_.census_num_large_components;
  result->components.large_component_pages =
      header_.census_large_component_pages;
  result->components.max_component_iterations =
      header_.census_max_component_iterations;
  result->components.total_component_iterations =
      header_.census_total_component_iterations;
  result->per_iteration = per_iteration_;
  return Status::Ok();
}

Result<bool> CheckpointManager::TryResume(PreparedDataset* data,
                                          AllocationResult* result) {
  TraceSpan span("ckpt.resume");
  std::vector<uint64_t> gens;
  if (DIR* d = ::opendir(directory_path_.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      const char* name = e->d_name;
      if (std::strncmp(name, "manifest.", 9) != 0) continue;
      char* end = nullptr;
      uint64_t gen = std::strtoull(name + 9, &end, 10);
      if (end != nullptr && *end == '\0' && gen > 0) gens.push_back(gen);
    }
    ::closedir(d);
  }
  std::sort(gens.rbegin(), gens.rend());

  for (uint64_t gen : gens) {
    IOLAP_ASSIGN_OR_RETURN(bool usable, LoadGeneration(gen));
    if (!usable) {
      // Torn/corrupted manifest or missing data files: fall back to the
      // previous generation, which Save() kept intact for exactly this.
      Bump("ckpt.torn_manifests");
      continue;
    }
    IOLAP_RETURN_IF_ERROR(Restore(data, result));
    resumed_ = true;
    last_gen_ = gen;
    last_iteration_ = header_.completed_iterations;
    last_converged_ = (header_.flags & kManifestFlagConverged) != 0;
    last_component_ = header_.next_component;
    span.AddArg("generation", static_cast<int64_t>(gen));
    span.AddArg("iteration", header_.completed_iterations);
    Bump("ckpt.resumes");
    return true;
  }
  return false;
}

Status CheckpointManager::LoadBasicState(
    std::vector<CellRecord>* cells, std::vector<ImpreciseRecord>* entries) {
  if (!has_basic_state()) {
    return Status::FailedPrecondition("no resumed Basic payload");
  }
  const uint64_t gen = header_.generation;
  IOLAP_ASSIGN_OR_RETURN(std::string cb, ReadBlob(DataPath("cells", gen)));
  IOLAP_ASSIGN_OR_RETURN(std::string eb, ReadBlob(DataPath("imprecise", gen)));
  if (cb.size() != header_.cells_count * sizeof(CellRecord) ||
      eb.size() != header_.imprecise_count * sizeof(ImpreciseRecord)) {
    return Status::IoError("Basic checkpoint payload size mismatch");
  }
  cells->resize(static_cast<size_t>(header_.cells_count));
  std::memcpy(cells->data(), cb.data(), cb.size());
  entries->resize(static_cast<size_t>(header_.imprecise_count));
  std::memcpy(entries->data(), eb.data(), eb.size());
  return Status::Ok();
}

}  // namespace iolap
