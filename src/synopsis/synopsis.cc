#include "synopsis/synopsis.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace iolap {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool IsTombstone(const EdbRecord& rec) {
  return rec.weight == 0 && rec.fact_id == -1;
}

}  // namespace

SynopsisStore::SynopsisStore(StorageEnv* env, const StarSchema* schema,
                             const TypedFile<EdbRecord>* edb)
    : env_(env),
      schema_(schema),
      edb_(edb),
      builds_counter_(GlobalCounter("synopsis.builds")),
      commits_counter_(GlobalCounter("synopsis.commits")),
      patched_counter_(GlobalCounter("synopsis.entries_patched")),
      estimates_counter_(GlobalCounter("synopsis.estimates")),
      exact_counter_(GlobalCounter("synopsis.exact_answers")),
      entries_gauge_(GlobalGauge("synopsis.entries")) {
  // Default: one shard covering the whole dimension-0 leaf range.
  SetShardBounds({0, schema_->dim(0).num_leaves()});
}

void SynopsisStore::SetShardBounds(std::vector<int32_t> begins) {
  std::lock_guard<std::mutex> lock(mu_);
  begins_ = std::move(begins);
  const int shards = static_cast<int>(begins_.size()) - 1;
  slices_.assign(shards, {});
  int64_t entries = 0;
  for (int s = 0; s < shards; ++s) {
    slices_[s].resize(schema_->num_dims());
    for (int d = 0; d < schema_->num_dims(); ++d) {
      slices_[s][d].assign(schema_->dim(d).num_nodes(), SynopsisMoments{});
      entries += schema_->dim(d).num_nodes();
    }
  }
  pending_.clear();
  built_ = false;
  stale_ = false;
  stats_.entries = entries;
  if (entries_gauge_ != nullptr) entries_gauge_->Set(entries);
}

int SynopsisStore::ShardOfLeafLocked(int32_t leaf0) const {
  const auto it = std::upper_bound(begins_.begin() + 1, begins_.end(), leaf0);
  const int s = static_cast<int>(it - begins_.begin()) - 1;
  return std::clamp(s, 0, static_cast<int>(begins_.size()) - 2);
}

SynopsisMoments& SynopsisStore::SliceLocked(int shard, int dim, NodeId node) {
  return slices_[shard][dim][node];
}

const SynopsisMoments& SynopsisStore::SliceLocked(int shard, int dim,
                                                  NodeId node) const {
  return slices_[shard][dim][node];
}

void SynopsisStore::FoldRowLocked(const EdbRecord& rec, double sign) {
  const int shard = ShardOfLeafLocked(rec.leaf[0]);
  const double w = sign * rec.weight;
  for (int d = 0; d < schema_->num_dims(); ++d) {
    const Hierarchy& h = schema_->dim(d);
    NodeId n = h.leaf_node(rec.leaf[d]);
    while (true) {
      SynopsisMoments& m = SliceLocked(shard, d, n);
      m.mass += w;
      m.swv += w * rec.measure;
      m.swv2 += w * rec.measure * rec.measure;
      m.rows += sign > 0 ? 1 : -1;
      m.vmin = std::min(m.vmin, rec.measure);
      m.vmax = std::max(m.vmax, rec.measure);
      if (n == h.root()) break;
      n = h.parent(n);
    }
  }
}

Status SynopsisStore::BuildLocked() {
  TraceSpan span("synopsis.build");
  for (auto& per_dim : slices_) {
    for (auto& nodes : per_dim) {
      std::fill(nodes.begin(), nodes.end(), SynopsisMoments{});
    }
  }
  auto cursor = edb_->Scan(env_->pool());
  EdbRecord rec;
  int64_t rows = 0;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    if (IsTombstone(rec)) continue;
    FoldRowLocked(rec, 1.0);
    ++rows;
  }
  pending_.clear();
  built_ = true;
  stale_ = false;
  ++stats_.builds;
  if (builds_counter_ != nullptr) builds_counter_->Add(1);
  span.AddArg("rows", rows);
  span.AddArg("shards", static_cast<int64_t>(slices_.size()));
  return Status::Ok();
}

Status SynopsisStore::Build() {
  std::lock_guard<std::mutex> lock(mu_);
  return BuildLocked();
}

Status SynopsisStore::RebuildIfStale() {
  std::lock_guard<std::mutex> lock(mu_);
  if (built_ && !stale_) return Status::Ok();
  return BuildLocked();
}

void SynopsisStore::OnAdd(const EdbRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!built_ || stale_) return;  // a rebuild will see these rows anyway
  const int shard = ShardOfLeafLocked(rec.leaf[0]);
  for (int d = 0; d < schema_->num_dims(); ++d) {
    const Hierarchy& h = schema_->dim(d);
    NodeId n = h.leaf_node(rec.leaf[d]);
    while (true) {
      Delta& delta = pending_[SliceKey{shard, d, n}];
      delta.dmass += rec.weight;
      delta.dswv += rec.weight * rec.measure;
      delta.dswv2 += rec.weight * rec.measure * rec.measure;
      delta.drows += 1;
      delta.add_min = std::min(delta.add_min, rec.measure);
      delta.add_max = std::max(delta.add_max, rec.measure);
      if (n == h.root()) break;
      n = h.parent(n);
    }
  }
}

void SynopsisStore::OnRemove(const EdbRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!built_ || stale_) return;
  const int shard = ShardOfLeafLocked(rec.leaf[0]);
  for (int d = 0; d < schema_->num_dims(); ++d) {
    const Hierarchy& h = schema_->dim(d);
    NodeId n = h.leaf_node(rec.leaf[d]);
    while (true) {
      Delta& delta = pending_[SliceKey{shard, d, n}];
      delta.dmass -= rec.weight;
      delta.dswv -= rec.weight * rec.measure;
      delta.dswv2 -= rec.weight * rec.measure * rec.measure;
      delta.drows -= 1;
      delta.removed = true;
      if (n == h.root()) break;
      n = h.parent(n);
    }
  }
}

Status SynopsisStore::Commit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!built_ || stale_) {
    pending_.clear();
    return Status::Ok();
  }
  TraceSpan span("synopsis.commit");
  int64_t patched = 0;
  for (const auto& [key, delta] : pending_) {
    const auto [shard, dim, node] = key;
    SynopsisMoments& m = SliceLocked(shard, dim, node);
    m.mass = std::max(m.mass + delta.dmass, 0.0);
    m.swv += delta.dswv;
    m.swv2 = std::max(m.swv2 + delta.dswv2, 0.0);
    m.rows = std::max<int64_t>(m.rows + delta.drows, 0);
    if (m.rows == 0) {
      // Exactly empty again: drop the floating-point residue and re-tighten
      // the envelope (an empty slice is perfectly known).
      m = SynopsisMoments{};
    } else {
      if (delta.add_min <= delta.add_max) {
        m.vmin = std::min(m.vmin, delta.add_min);
        m.vmax = std::max(m.vmax, delta.add_max);
      }
      if (delta.removed) m.minmax_patched = true;
    }
    ++patched;
  }
  pending_.clear();
  ++stats_.commits;
  stats_.patched += patched;
  if (commits_counter_ != nullptr) commits_counter_->Add(1);
  if (patched_counter_ != nullptr) patched_counter_->Add(patched);
  span.AddArg("entries", patched);
  return Status::Ok();
}

void SynopsisStore::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  stale_ = true;
}

Result<BoundedAggregate> SynopsisStore::EstimateAggregate(
    const QueryRegion& region, AggregateFunc func, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!built_ || stale_) {
    return Status::Unavailable("synopsis store unbuilt or stale");
  }
  ++stats_.estimates;
  if (estimates_counter_ != nullptr) estimates_counter_->Add(1);

  const QueryRegion reg = NormalizeRegion(*schema_, region);
  const Hierarchy& h0 = schema_->dim(0);
  const int32_t lo0 = h0.leaf_begin(reg.node[0]);
  const int32_t hi0 = h0.leaf_end(reg.node[0]);  // exclusive
  const int shards = static_cast<int>(begins_.size()) - 1;

  std::vector<ShardTerms> terms;
  for (int s = 0; s < shards; ++s) {
    const int32_t sb = begins_[s];
    const int32_t se = begins_[s + 1];
    if (se <= lo0 || sb >= hi0) continue;  // shard outside the dim-0 range
    const SynopsisMoments& total = SliceLocked(s, 0, h0.root());
    if (total.empty()) continue;

    // Which dimensions actually constrain this shard's rows? Dimension 0
    // is vacuous when the shard's leaf range sits inside the region's.
    std::vector<const SynopsisMoments*> cons;
    if (!(lo0 <= sb && hi0 >= se)) {
      cons.push_back(&SliceLocked(s, 0, reg.node[0]));
    }
    for (int d = 1; d < schema_->num_dims(); ++d) {
      if (RegionConstrainsDim(*schema_, reg, d)) {
        cons.push_back(&SliceLocked(s, d, reg.node[d]));
      }
    }

    ShardTerms t;
    if (cons.empty()) {
      // Whole shard is in the region: its totals are the exact answer.
      t.exact = true;
      t.mass = {total.mass, total.mass};
      t.sum = {total.swv, total.swv};
      t.mass_hat = total.mass;
      t.sum_hat = total.swv;
      t.vlo = total.vmin;
      t.vhi = total.vmax;
      t.minmax_exact = !total.minmax_patched;
    } else if (cons.size() == 1) {
      // One constrained dimension: the marginal slice is the region's rows.
      const SynopsisMoments& e = *cons[0];
      if (e.empty()) continue;
      t.exact = true;
      t.mass = {e.mass, e.mass};
      t.sum = {e.swv, e.swv};
      t.mass_hat = e.mass;
      t.sum_hat = e.swv;
      t.vlo = e.vmin;
      t.vhi = e.vmax;
      t.minmax_exact = !e.minmax_patched;
    } else {
      // Two or more constrained dimensions: the region's rows are the
      // intersection of the marginal slices; bound it with Fréchet + the
      // measure envelope, estimate it under marginal independence.
      bool skip = false;
      double vlo = -kInf;
      double vhi = kInf;
      std::vector<double> masses;
      masses.reserve(cons.size());
      const SynopsisMoments* pivot = nullptr;
      for (const SynopsisMoments* e : cons) {
        if (e->empty()) {
          skip = true;
          break;
        }
        vlo = std::max(vlo, e->vmin);
        vhi = std::min(vhi, e->vmax);
        masses.push_back(e->mass);
        if (pivot == nullptr || e->mass < pivot->mass) pivot = e;
      }
      if (skip) continue;
      if (vlo > vhi) continue;  // disjoint envelopes: provably empty
      const Interval frechet = FrechetIntersection(total.mass, masses);
      if (frechet.hi <= 0) continue;  // provably empty intersection

      double q = 1;
      for (const SynopsisMoments* e : cons) {
        if (e == pivot) continue;
        q *= std::clamp(e->mass / total.mass, 0.0, 1.0);
      }
      t.mass = frechet;
      t.mass_hat = pivot->mass * q;
      // Two certain routes to the slice sum: envelope × mass, and the
      // pivot's exact sum minus the excluded pivot mass's possible range.
      const Interval by_envelope = MassTimesRange(frechet, vlo, vhi);
      const Interval excluded{std::max(pivot->mass - frechet.hi, 0.0),
                              std::max(pivot->mass - frechet.lo, 0.0)};
      const Interval excluded_sum =
          MassTimesRange(excluded, pivot->vmin, pivot->vmax);
      const Interval by_pivot{pivot->swv - excluded_sum.hi,
                              pivot->swv - excluded_sum.lo};
      t.sum = IntersectIntervals(by_envelope, by_pivot);
      t.sum_hat = pivot->swv * q;
      // Concentration budgets (weights are <= 1, so Σw² <= Σw = mass and
      // Σ(wv)² <= Σwv² = swv2).
      t.hoeff_mass = pivot->mass;
      t.hoeff_sum = pivot->swv2;
      t.var_mass = q * (1 - q) * pivot->mass;
      t.var_sum = q * (1 - q) * pivot->swv2;
      t.vlo = vlo;
      t.vhi = vhi;
    }
    terms.push_back(t);
  }

  BoundedAggregate out = ComposeBounded(terms, func, delta);
  if (out.exact) {
    ++stats_.exact_hits;
    if (exact_counter_ != nullptr) exact_counter_->Add(1);
  }
  return out;
}

SynopsisMoments SynopsisStore::MomentsFor(int shard, int dim,
                                          NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SliceLocked(shard, dim, node);
}

SynopsisMoments SynopsisStore::ShardTotal(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SliceLocked(shard, 0, schema_->dim(0).root());
}

int SynopsisStore::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(begins_.size()) - 1;
}

bool SynopsisStore::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return built_ && !stale_;
}

SynopsisStore::Stats SynopsisStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace iolap
