#ifndef IOLAP_SYNOPSIS_BOUNDED_H_
#define IOLAP_SYNOPSIS_BOUNDED_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "edb/query.h"

namespace iolap {

// ---------------------------------------------------------------------------
// Interval / concentration primitives for the bounded-answer evaluator.
//
// A bounded answer composes two kinds of knowledge about an aggregate over a
// region the synopsis only covers marginally:
//
//  * certain intervals — Fréchet bounds on the intersection mass of the
//    region's marginal slices, multiplied through the measure envelope the
//    slices admit. The exact answer always lies inside these.
//  * concentration half-widths — Hoeffding / Chebyshev deviation bounds
//    around the maximum-entropy (independence) point estimate, valid with
//    probability >= 1 - delta under that model (the approach of the range-
//    query-estimation literature; see DESIGN.md §15).
//
// The promised bound is the tighter of the two, so a bounded answer is never
// worse than the certain interval and usually much tighter.

/// A closed interval [lo, hi] on the real line.
struct Interval {
  double lo = 0;
  double hi = 0;

  double width() const { return hi - lo; }
  bool degenerate() const { return lo == hi; }
  Interval& operator+=(const Interval& o) {
    lo += o.lo;
    hi += o.hi;
    return *this;
  }
};

/// Fréchet bounds on the mass of the intersection of marginal slices:
/// given a population of total mass `total` and slices of mass m_i, the
/// intersection mass lies in [max(0, Σm_i - (k-1)·total), min_i m_i].
Interval FrechetIntersection(double total, const std::vector<double>& slices);

/// Certain bounds on Σ weight·measure given the region's mass lies in
/// `mass` (an interval of nonnegative reals) and every contributing row's
/// measure lies in [vlo, vhi]. Handles negative measures: each unit of mass
/// contributes somewhere in [vlo, vhi].
Interval MassTimesRange(const Interval& mass, double vlo, double vhi);

/// Intersection of two certain intervals for the same quantity. If floating
/// point makes them disjoint (they never are logically), keeps `a`.
Interval IntersectIntervals(const Interval& a, const Interval& b);

/// Hoeffding deviation half-width: for a sum of independent terms whose
/// per-term squared ranges add to `sum_sq_ranges`, the sum deviates from
/// its mean by more than the returned t with probability <= delta.
double HoeffdingHalfWidth(double sum_sq_ranges, double delta);

/// Chebyshev deviation half-width: sqrt(variance / delta).
double ChebyshevHalfWidth(double variance, double delta);

// ---------------------------------------------------------------------------
// Per-shard terms and composition.

/// One shard's contribution to a bounded aggregate, already reduced to
/// intervals + model moments by the synopsis store. For shards where the
/// region constrains at most one dimension the contribution is exact
/// (degenerate intervals, zero variance).
struct ShardTerms {
  bool exact = false;  // intervals degenerate, hats are the true values
  Interval mass;       // certain bounds on Σ weight in the region
  Interval sum;        // certain bounds on Σ weight·measure in the region
  double mass_hat = 0;  // independence-model point estimate (unclamped)
  double sum_hat = 0;
  double hoeff_mass = 0;  // Σ per-row squared ranges feeding Hoeffding
  double hoeff_sum = 0;
  double var_mass = 0;  // model variance of the mass estimate
  double var_sum = 0;
  /// Measure envelope of every row possibly in the region (+inf/-inf when
  /// the shard certainly contributes nothing).
  double vlo = std::numeric_limits<double>::infinity();
  double vhi = -std::numeric_limits<double>::infinity();
  /// vlo/vhi are the exact extremes of the region's rows in this shard
  /// (|constrained dims| <= 1 and no removal has touched the entry).
  bool minmax_exact = false;
};

/// A probabilistically bounded aggregate: `result.value` is the answer,
/// and with probability >= 1 - delta (certainty when `bound` came from the
/// Fréchet interval) the exact answer lies within `bound` of it. `exact`
/// marks answers composed purely from exact shard terms (bound 0, equal to
/// a scan up to the synopsis' incremental floating-point drift).
struct BoundedAggregate {
  AggregateResult result;
  double bound = std::numeric_limits<double>::infinity();
  bool exact = false;
  int64_t approx_shards = 0;  // shards that needed probabilistic terms
};

/// Composes per-shard terms into one bounded answer for `func`. MIN/MAX are
/// only served exactly (every nonempty shard exact with exact extremes);
/// otherwise their bound is infinite and the caller falls back.
BoundedAggregate ComposeBounded(const std::vector<ShardTerms>& shards,
                                AggregateFunc func, double delta);

}  // namespace iolap

#endif  // IOLAP_SYNOPSIS_BOUNDED_H_
