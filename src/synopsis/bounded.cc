#include "synopsis/bounded.h"

#include <algorithm>
#include <cmath>

namespace iolap {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Concentration widths are meaningless outside (0, 1); clamp rather than
// branch so callers can pass user-supplied deltas straight through.
double ClampDelta(double delta) {
  return std::clamp(delta, 1e-12, 1.0 - 1e-12);
}

}  // namespace

Interval FrechetIntersection(double total, const std::vector<double>& slices) {
  if (slices.empty()) return {std::max(0.0, total), std::max(0.0, total)};
  double sum = 0;
  double min_slice = kInf;
  for (double m : slices) {
    const double clamped = std::clamp(m, 0.0, std::max(total, 0.0));
    sum += clamped;
    min_slice = std::min(min_slice, clamped);
  }
  const double k = static_cast<double>(slices.size());
  const double lo = std::max(0.0, sum - (k - 1.0) * std::max(total, 0.0));
  const double hi = std::max(lo, min_slice);
  return {lo, hi};
}

Interval MassTimesRange(const Interval& mass, double vlo, double vhi) {
  const double lo = std::max(mass.lo, 0.0);
  const double hi = std::max(mass.hi, lo);
  // Each unit of mass contributes a measure in [vlo, vhi]; the extremes are
  // attained by putting the extreme mass behind the extreme measure sign.
  const double a = vlo >= 0 ? lo * vlo : hi * vlo;
  const double b = vhi >= 0 ? hi * vhi : lo * vhi;
  return {std::min(a, b), std::max(a, b)};
}

Interval IntersectIntervals(const Interval& a, const Interval& b) {
  Interval out{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  if (out.lo > out.hi) return a;
  return out;
}

double HoeffdingHalfWidth(double sum_sq_ranges, double delta) {
  if (sum_sq_ranges <= 0) return 0;
  return std::sqrt(sum_sq_ranges * std::log(2.0 / ClampDelta(delta)) / 2.0);
}

double ChebyshevHalfWidth(double variance, double delta) {
  if (variance <= 0) return 0;
  return std::sqrt(variance / ClampDelta(delta));
}

namespace {

// Deviation half-width for an estimate with the given Hoeffding squared-range
// budget and model variance: the tighter of the two concentration bounds.
double ModelHalfWidth(double sum_sq_ranges, double variance, double delta) {
  return std::min(HoeffdingHalfWidth(sum_sq_ranges, delta),
                  ChebyshevHalfWidth(variance, delta));
}

}  // namespace

BoundedAggregate ComposeBounded(const std::vector<ShardTerms>& shards,
                                AggregateFunc func, double delta) {
  Interval mass{0, 0};
  Interval sum{0, 0};
  double mass_hat = 0;
  double sum_hat = 0;
  double hoeff_mass = 0;
  double hoeff_sum = 0;
  double var_mass = 0;
  double var_sum = 0;
  double env_lo = kInf;
  double env_hi = -kInf;
  bool all_exact = true;
  bool minmax_exact = true;
  int64_t approx_shards = 0;
  for (const ShardTerms& t : shards) {
    mass += t.mass;
    sum += t.sum;
    mass_hat += t.mass_hat;
    sum_hat += t.sum_hat;
    hoeff_mass += t.hoeff_mass;
    hoeff_sum += t.hoeff_sum;
    var_mass += t.var_mass;
    var_sum += t.var_sum;
    if (!t.exact) {
      all_exact = false;
      ++approx_shards;
    }
    if (t.mass.hi > 0) {
      // Shard may contribute rows: its envelope joins the region's.
      env_lo = std::min(env_lo, t.vlo);
      env_hi = std::max(env_hi, t.vhi);
      if (!t.exact || !t.minmax_exact) minmax_exact = false;
    }
  }

  BoundedAggregate out;
  out.approx_shards = approx_shards;
  out.exact = all_exact;

  // The answer itself: model point estimates clamped into the certain
  // intervals (for exact terms the clamp is a no-op).
  const double mass_ans = std::clamp(mass_hat, mass.lo, mass.hi);
  const double sum_ans = std::clamp(sum_hat, sum.lo, sum.hi);
  // Clamping can only move the estimate toward the truth's interval, but the
  // concentration bound was derived around the unclamped estimate — widen by
  // the shift so it still covers the truth.
  const double mass_shift = std::abs(mass_hat - mass_ans);
  const double sum_shift = std::abs(sum_hat - sum_ans);

  AggregateResult& r = out.result;
  r.sum = sum_ans;
  r.count = mass_ans;
  if (mass.hi > 0 && std::isfinite(env_lo)) {
    r.min = env_lo;
    r.max = env_hi;
  }

  const bool certainly_empty = mass.hi <= 0;
  if (certainly_empty) {
    // No row can land in the region: every aggregate is exactly the empty
    // answer regardless of func.
    out.result = AggregateResult{};
    FinalizeAggregate(&out.result, func);
    out.bound = 0;
    out.exact = true;
    return out;
  }

  switch (func) {
    case AggregateFunc::kSum: {
      const double det = std::max(sum_ans - sum.lo, sum.hi - sum_ans);
      const double prob =
          ModelHalfWidth(hoeff_sum, var_sum, delta) + sum_shift;
      out.bound = all_exact ? 0 : std::min(det, prob);
      break;
    }
    case AggregateFunc::kCount: {
      const double det = std::max(mass_ans - mass.lo, mass.hi - mass_ans);
      const double prob =
          ModelHalfWidth(hoeff_mass, var_mass, delta) + mass_shift;
      out.bound = all_exact ? 0 : std::min(det, prob);
      break;
    }
    case AggregateFunc::kAverage: {
      if (all_exact) {
        out.bound = 0;
        break;
      }
      const double value = mass_ans > 0 ? sum_ans / mass_ans : 0;
      double det = kInf;
      if (mass.lo > 0) {
        // The average lies inside the corner hull of sum/mass intervals.
        const double c1 = sum.lo / mass.lo;
        const double c2 = sum.lo / mass.hi;
        const double c3 = sum.hi / mass.lo;
        const double c4 = sum.hi / mass.hi;
        const double lo = std::min(std::min(c1, c2), std::min(c3, c4));
        const double hi = std::max(std::max(c1, c2), std::max(c3, c4));
        det = std::max(value - lo, hi - value);
      }
      // Union bound: sum and mass each hold within their half-width with
      // probability >= 1 - delta/2, so both hold with >= 1 - delta.
      const double t_sum =
          ModelHalfWidth(hoeff_sum, var_sum, delta / 2) + sum_shift;
      const double t_mass =
          ModelHalfWidth(hoeff_mass, var_mass, delta / 2) + mass_shift;
      const double denom = std::max(mass.lo, mass_ans - t_mass);
      const double prob = denom > 0
                              ? (t_sum + std::abs(value) * t_mass) / denom
                              : kInf;
      out.bound = std::min(det, prob);
      break;
    }
    case AggregateFunc::kMin:
    case AggregateFunc::kMax: {
      // Extremes have no useful moment-based concentration; serve them only
      // when every possibly-contributing shard is exact with exact extremes.
      out.bound = (all_exact && minmax_exact) ? 0 : kInf;
      break;
    }
  }

  FinalizeAggregate(&out.result, func);
  return out;
}

}  // namespace iolap
