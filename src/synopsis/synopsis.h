#ifndef IOLAP_SYNOPSIS_SYNOPSIS_H_
#define IOLAP_SYNOPSIS_SYNOPSIS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"
#include "synopsis/bounded.h"

namespace iolap {

/// Moment synopsis of one (shard, dimension, hierarchy-node) slice of the
/// Extended Database: everything the bounded-answer evaluator needs about
/// the live rows whose leaf on that dimension falls under the node.
struct SynopsisMoments {
  double mass = 0;  // Σ weight (allocation mass; COUNT of the slice)
  double swv = 0;   // Σ weight · measure (SUM of the slice)
  double swv2 = 0;  // Σ weight · measure² (second moment, feeds Hoeffding)
  double vmin = std::numeric_limits<double>::infinity();   // measure envelope
  double vmax = -std::numeric_limits<double>::infinity();
  int64_t rows = 0;  // live EDB rows in the slice
  /// A removal touched this slice: vmin/vmax are still a conservative
  /// envelope of the live rows (removals only tighten the true extremes)
  /// but no longer necessarily attained — exact MIN/MAX must fall back.
  bool minmax_patched = false;

  bool empty() const { return rows == 0; }
};

/// In-memory per-shard × per-hierarchy-node moment synopses over the EDB —
/// the serve layer's approximate answer tier. One EDB pass builds a
/// SynopsisMoments entry for every (shard, dim, node); the hierarchy node
/// counts are small (a few thousand per schema), so the whole store is a
/// few hundred KiB per shard. Shards follow the serve layer's dimension-0
/// ShardMap so a query's shard set is identical across tiers.
///
/// Incremental maintenance mirrors the aggregate index: installed as (one
/// of) the MaintenanceManager's EdbChangeListeners, it folds row changes
/// into per-slice deltas along each row's root-to-leaf node path on every
/// dimension, buffered until `Commit` (mutation success) or dropped by
/// `Invalidate` (failed batch → stale, rebuilt by `RebuildIfStale`).
/// Removals patch mass/moments exactly but only mark the extremes; a slice
/// whose live row count returns to zero resets to the exactly-empty state.
///
/// Thread-safety: one internal mutex serializes all operations, same
/// contract and lock order as AggIndex (snapshot lock first, then this).
class SynopsisStore : public EdbChangeListener {
 public:
  struct Stats {
    int64_t builds = 0;      // full builds from an EDB pass
    int64_t commits = 0;     // delta batches folded in
    int64_t patched = 0;     // slice entries patched by commits
    int64_t estimates = 0;   // EstimateAggregate calls served
    int64_t exact_hits = 0;  // estimates that came out exact (bound 0)
    int64_t entries = 0;     // slice entries resident
  };

  SynopsisStore(StorageEnv* env, const StarSchema* schema,
                const TypedFile<EdbRecord>* edb);

  SynopsisStore(const SynopsisStore&) = delete;
  SynopsisStore& operator=(const SynopsisStore&) = delete;

  /// Installs the dimension-0 shard partition: `begins` has num_shards + 1
  /// ascending leaf ids, shard s covering [begins[s], begins[s+1]). Must
  /// cover the full dimension-0 leaf range. Resets the store to unbuilt.
  void SetShardBounds(std::vector<int32_t> begins);

  /// (Re)builds every slice from one EDB pass (tombstones skipped).
  Status Build();

  /// Rebuilds now if unbuilt or stale; a no-op otherwise. Call only where
  /// no writer can be concurrent (init, or post-commit under the mutation
  /// lock) — the pass scans the whole EDB.
  Status RebuildIfStale();

  // EdbChangeListener: buffers the in-flight batch's row changes as
  // per-slice deltas; no-ops until the store is first built.
  void OnAdd(const EdbRecord& rec) override;
  void OnRemove(const EdbRecord& rec) override;

  /// Folds the buffered deltas in after a successful batch.
  Status Commit();

  /// Drops buffered deltas and marks the store stale (failed batch).
  void Invalidate();

  /// Bounded aggregate over `region`: composes covering-node slices into
  /// an answer whose distance from the exact answer is at most
  /// `out.bound` with probability >= 1 - delta (with certainty when the
  /// bound came from the Fréchet interval — in particular whenever
  /// `out.exact`). Returns kUnavailable when unbuilt or stale; the caller
  /// decides eligibility by comparing `out.bound` to its epsilon.
  Result<BoundedAggregate> EstimateAggregate(const QueryRegion& region,
                                             AggregateFunc func, double delta);

  /// The slice entry for (shard, dim, node) — test/bench introspection.
  SynopsisMoments MomentsFor(int shard, int dim, NodeId node) const;
  /// All live rows of one shard: the root slice (any dimension's root).
  SynopsisMoments ShardTotal(int shard) const;

  int num_shards() const;
  bool ready() const;  // built and not stale
  Stats stats() const;

 private:
  struct Delta {
    double dmass = 0;
    double dswv = 0;
    double dswv2 = 0;
    int64_t drows = 0;
    double add_min = std::numeric_limits<double>::infinity();
    double add_max = -std::numeric_limits<double>::infinity();
    bool removed = false;
  };
  // (shard, dim, node) — per-slice pending delta key.
  using SliceKey = std::tuple<int, int, NodeId>;

  int ShardOfLeafLocked(int32_t leaf0) const;
  Status BuildLocked();
  void FoldRowLocked(const EdbRecord& rec, double sign);
  SynopsisMoments& SliceLocked(int shard, int dim, NodeId node);
  const SynopsisMoments& SliceLocked(int shard, int dim, NodeId node) const;

  StorageEnv* env_;
  const StarSchema* schema_;
  const TypedFile<EdbRecord>* edb_;

  mutable std::mutex mu_;
  std::vector<int32_t> begins_;  // shard partition of dim-0 leaves
  /// slices_[shard][dim][node]; sized at SetShardBounds, filled by Build.
  std::vector<std::vector<std::vector<SynopsisMoments>>> slices_;
  std::map<SliceKey, Delta> pending_;  // in-flight batch deltas
  bool built_ = false;
  bool stale_ = false;
  Stats stats_;

  // Cached global-metrics handles (null when observability is disabled).
  class Counter* builds_counter_;
  class Counter* commits_counter_;
  class Counter* patched_counter_;
  class Counter* estimates_counter_;
  class Counter* exact_counter_;
  class Gauge* entries_gauge_;
};

}  // namespace iolap

#endif  // IOLAP_SYNOPSIS_SYNOPSIS_H_
