#include "datagen/table2.h"

namespace iolap {

Result<Hierarchy> BuildLeveledHierarchy(const std::string& name,
                                        const std::vector<int>& level_counts) {
  HierarchyBuilder builder(name);
  std::vector<NodeId> frontier = {0};
  for (size_t depth = 0; depth < level_counts.size(); ++depth) {
    const int total = level_counts[depth];
    if (total < static_cast<int>(frontier.size())) {
      return Status::InvalidArgument(
          "level " + std::to_string(depth) + " of " + name + " has " +
          std::to_string(total) + " nodes for " +
          std::to_string(frontier.size()) + " parents");
    }
    std::vector<NodeId> next;
    next.reserve(total);
    // Distribute `total` children over the frontier as evenly as possible.
    const int parents = static_cast<int>(frontier.size());
    int assigned = 0;
    for (int p = 0; p < parents; ++p) {
      int share = total / parents + (p < total % parents ? 1 : 0);
      for (int i = 0; i < share; ++i) {
        next.push_back(builder.AddNode(
            frontier[p], name + "_L" + std::to_string(depth + 1) + "_" +
                             std::to_string(assigned++)));
      }
    }
    frontier = std::move(next);
  }
  return builder.Build();
}

Result<StarSchema> MakeAutomotiveSchema() {
  std::vector<Hierarchy> dims;
  IOLAP_ASSIGN_OR_RETURN(Hierarchy sr_area,
                         BuildLeveledHierarchy("SR-AREA", {30, 694}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy brand,
                         BuildLeveledHierarchy("BRAND", {14, 203}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy time,
                         BuildLeveledHierarchy("TIME", {5, 15, 59}));
  IOLAP_ASSIGN_OR_RETURN(Hierarchy location,
                         BuildLeveledHierarchy("LOCATION", {10, 51, 900}));
  dims.push_back(std::move(sr_area));
  dims.push_back(std::move(brand));
  dims.push_back(std::move(time));
  dims.push_back(std::move(location));
  return StarSchema::Create(std::move(dims));
}

Result<StarSchema> MakePaperExampleSchema() {
  std::vector<Hierarchy> dims;
  {
    HierarchyBuilder b("Location");
    NodeId east = b.AddNode(0, "East");
    NodeId west = b.AddNode(0, "West");
    b.AddNode(east, "MA");
    b.AddNode(east, "NY");
    b.AddNode(west, "TX");
    b.AddNode(west, "CA");
    IOLAP_ASSIGN_OR_RETURN(Hierarchy h, b.Build());
    dims.push_back(std::move(h));
  }
  {
    HierarchyBuilder b("Automobile");
    NodeId sedan = b.AddNode(0, "Sedan");
    NodeId truck = b.AddNode(0, "Truck");
    b.AddNode(sedan, "Civic");
    b.AddNode(sedan, "Camry");
    b.AddNode(truck, "F150");
    b.AddNode(truck, "Sierra");
    IOLAP_ASSIGN_OR_RETURN(Hierarchy h, b.Build());
    dims.push_back(std::move(h));
  }
  return StarSchema::Create(std::move(dims));
}

}  // namespace iolap
