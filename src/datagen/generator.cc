#include "datagen/generator.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace iolap {

namespace {

/// Weight of interior level `l` (2 <= l <= num_levels-1) when choosing how
/// imprecise a value is. Level 2 (just above the leaves) dominates, as in
/// Table 2 of the paper (e.g. LOCATION: State 21% vs Region 4%).
double InteriorLevelWeight(int l) { return 1.0 / (1 << (2 * (l - 2))); }

}  // namespace

Result<TypedFile<FactRecord>> GenerateFacts(StorageEnv& env,
                                            const StarSchema& schema,
                                            const DatasetSpec& spec) {
  const int k = schema.num_dims();
  Rng rng(spec.seed);
  IOLAP_ASSIGN_OR_RETURN(auto file,
                         TypedFile<FactRecord>::Create(env.disk(), "facts"));
  auto appender = file.MakeAppender(env.pool());

  const double w_total =
      spec.dims_weights[0] + spec.dims_weights[1] + spec.dims_weights[2];

  // Bounded reservoir of precise cells used to anchor imprecise facts.
  constexpr size_t kMaxAnchors = 1 << 18;
  std::vector<std::array<LeafId, kMaxDims>> anchors;
  anchors.reserve(std::min<int64_t>(spec.num_facts, kMaxAnchors));
  int64_t precise_seen = 0;

  auto skewed_leaf = [&](const Hierarchy& h) {
    double u = rng.NextDouble();
    if (spec.skew > 0) {
      // Power-law concentration toward low leaf ids.
      for (double s = spec.skew; s > 0; s -= 1.0) u *= rng.NextDouble();
    }
    return static_cast<LeafId>(u * h.num_leaves());
  };

  // Hotspot centers: correlated cluster cells the facts gather around.
  const int64_t num_hotspots =
      spec.num_hotspots > 0 ? spec.num_hotspots
                            : std::max<int64_t>(1, spec.num_facts / 150);
  std::vector<std::array<LeafId, kMaxDims>> hotspots(num_hotspots);
  for (auto& center : hotspots) {
    center.fill(0);
    for (int d = 0; d < k; ++d) center[d] = skewed_leaf(schema.dim(d));
  }
  auto hotspot_cell = [&](FactRecord* fact) {
    // Power-law hotspot popularity: a few clusters dominate.
    double u = rng.NextDouble();
    for (double s = spec.hotspot_skew; s > 0; s -= 1.0) u *= rng.NextDouble();
    const auto& center = hotspots[static_cast<size_t>(u * num_hotspots)];
    for (int d = 0; d < k; ++d) {
      const Hierarchy& h = schema.dim(d);
      LeafId leaf;
      if (h.num_levels() >= 3 && rng.Bernoulli(spec.hotspot_fidelity)) {
        // Stay in the hotspot's neighbourhood: a sibling under the
        // center leaf's level-2 parent.
        NodeId parent = h.AncestorAtLevel(h.leaf_node(center[d]), 2);
        leaf = h.leaf_begin(parent) +
               static_cast<LeafId>(rng.Uniform(h.region_width(parent)));
      } else {
        leaf = skewed_leaf(h);
      }
      fact->node[d] = h.leaf_node(leaf);
      fact->level[d] = 1;
    }
  };

  for (int64_t i = 0; i < spec.num_facts; ++i) {
    FactRecord fact;
    fact.fact_id = i + 1;
    fact.measure = spec.measure_min +
                   rng.NextDouble() * (spec.measure_max - spec.measure_min);
    const bool imprecise = rng.Bernoulli(spec.imprecise_fraction) &&
                           (!spec.anchored || !anchors.empty());
    // Start from a cell: a skewed random leaf per dimension, or — for an
    // anchored imprecise fact — the cell of an earlier precise fact.
    if (imprecise && spec.anchored) {
      const auto& anchor = anchors[rng.Uniform(anchors.size())];
      for (int d = 0; d < k; ++d) {
        fact.node[d] = schema.dim(d).leaf_node(anchor[d]);
        fact.level[d] = 1;
      }
    } else {
      hotspot_cell(&fact);
    }
    if (!imprecise) {
      // Remember this precise cell as a potential anchor.
      std::array<LeafId, kMaxDims> cell{};
      for (int d = 0; d < k; ++d) {
        cell[d] = schema.dim(d).leaf_begin(fact.node[d]);
      }
      if (anchors.size() < kMaxAnchors) {
        anchors.push_back(cell);
      } else {
        // Reservoir sampling keeps the pool representative.
        size_t slot = rng.Uniform(static_cast<uint64_t>(precise_seen) + 1);
        if (slot < kMaxAnchors) anchors[slot] = cell;
      }
      ++precise_seen;
    }
    if (imprecise) {
      // How many dimensions are imprecise?
      double roll = rng.NextDouble() * w_total;
      int num_imprecise = roll < spec.dims_weights[0]                        ? 1
                          : roll < spec.dims_weights[0] + spec.dims_weights[1]
                              ? 2
                              : 3;
      num_imprecise = std::min(num_imprecise, k);
      // Choose the imprecise dimensions without replacement.
      int chosen[kMaxDims];
      int navail = k;
      int avail[kMaxDims];
      for (int d = 0; d < k; ++d) avail[d] = d;
      int all_used = 0;
      for (int j = 0; j < num_imprecise; ++j) {
        int pick = static_cast<int>(rng.Uniform(navail));
        chosen[j] = avail[pick];
        avail[pick] = avail[--navail];
      }
      for (int j = 0; j < num_imprecise; ++j) {
        const int d = chosen[j];
        const Hierarchy& h = schema.dim(d);
        const int levels = h.num_levels();
        int level;
        if (spec.allow_all && all_used < 2 && rng.Bernoulli(spec.all_fraction)) {
          level = levels;  // ALL
          ++all_used;
        } else if (levels <= 2) {
          // Only ALL exists above the leaves; without allow_all the value
          // stays precise in this dimension.
          continue;
        } else {
          double total = 0;
          for (int l = 2; l < levels; ++l) total += InteriorLevelWeight(l);
          double r = rng.NextDouble() * total;
          level = levels - 1;
          for (int l = 2; l < levels; ++l) {
            r -= InteriorLevelWeight(l);
            if (r <= 0) {
              level = l;
              break;
            }
          }
        }
        if (spec.anchored) {
          // Generalize the anchor cell's value up to `level`.
          fact.node[d] = h.AncestorAtLevel(fact.node[d], level);
        } else {
          const auto& nodes = h.nodes_at_level(level);
          fact.node[d] = nodes[rng.Uniform(nodes.size())];
        }
        fact.level[d] = static_cast<uint8_t>(level);
      }
    }
    IOLAP_RETURN_IF_ERROR(appender.Append(fact));
  }
  appender.Close();
  return file;
}

Result<TypedFile<FactRecord>> MakePaperExampleFacts(StorageEnv& env,
                                                    const StarSchema& schema) {
  struct Row {
    const char* loc;
    const char* automobile;
    double sales;
  };
  // Table 1 of the paper, in order p1..p14.
  static const Row kRows[] = {
      {"MA", "Civic", 100},   {"MA", "Sierra", 150}, {"NY", "F150", 100},
      {"CA", "Civic", 175},   {"CA", "Sierra", 50},  {"MA", "Sedan", 100},
      {"MA", "Truck", 120},   {"CA", "ALL", 160},    {"East", "Truck", 190},
      {"West", "Sedan", 200}, {"ALL", "Civic", 80},  {"ALL", "F150", 120},
      {"West", "Civic", 70},  {"West", "Sierra", 90},
  };
  IOLAP_ASSIGN_OR_RETURN(
      auto file, TypedFile<FactRecord>::Create(env.disk(), "paper_facts"));
  auto appender = file.MakeAppender(env.pool());
  int64_t id = 1;
  for (const Row& row : kRows) {
    FactRecord fact;
    fact.fact_id = id++;
    fact.measure = row.sales;
    IOLAP_ASSIGN_OR_RETURN(NodeId loc, schema.dim(0).FindNode(row.loc));
    IOLAP_ASSIGN_OR_RETURN(NodeId automobile,
                           schema.dim(1).FindNode(row.automobile));
    fact.node[0] = loc;
    fact.level[0] = static_cast<uint8_t>(schema.dim(0).level(loc));
    fact.node[1] = automobile;
    fact.level[1] = static_cast<uint8_t>(schema.dim(1).level(automobile));
    IOLAP_RETURN_IF_ERROR(appender.Append(fact));
  }
  appender.Close();
  return file;
}

Result<FactTableStats> AnalyzeFacts(StorageEnv& env, const StarSchema& schema,
                                    const TypedFile<FactRecord>& facts) {
  const int k = schema.num_dims();
  FactTableStats stats;
  stats.level_counts.resize(k);
  for (int d = 0; d < k; ++d) {
    stats.level_counts[d].assign(schema.dim(d).num_levels(), 0);
  }
  auto cursor = facts.Scan(env.pool());
  FactRecord fact;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&fact));
    int imprecise_dims = 0;
    for (int d = 0; d < k; ++d) {
      ++stats.level_counts[d][fact.level[d] - 1];
      if (fact.level[d] > 1) ++imprecise_dims;
    }
    if (imprecise_dims == 0) {
      ++stats.precise;
    } else {
      ++stats.imprecise;
    }
    ++stats.by_imprecise_dims[imprecise_dims];
  }
  return stats;
}

}  // namespace iolap
