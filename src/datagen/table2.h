#ifndef IOLAP_DATAGEN_TABLE2_H_
#define IOLAP_DATAGEN_TABLE2_H_

#include "common/result.h"
#include "model/schema.h"

namespace iolap {

/// Builds one balanced hierarchy with the given node counts per level, from
/// just below ALL down to the leaves (e.g. {30, 694} = 30 areas, 694
/// sub-areas). Children are distributed as evenly as possible.
Result<Hierarchy> BuildLeveledHierarchy(const std::string& name,
                                        const std::vector<int>& level_counts);

/// The four dimensions of the paper's real automotive dataset, with the
/// exact fan-outs of Table 2:
///   SR-AREA : ALL(1) -> Area(30) -> Sub-Area(694)
///   BRAND   : ALL(1) -> Make(14) -> Model(203)
///   TIME    : ALL(1) -> Quarter(5) -> Month(15) -> Week(59)
///   LOCATION: ALL(1) -> Region(10) -> State(51) -> City(900)
Result<StarSchema> MakeAutomotiveSchema();

/// The running example of the paper (Table 1 / Figure 1): Location
/// {ALL -> East,West -> MA,NY,TX,CA} and Automobile
/// {ALL -> Sedan,Truck -> Civic,Camry,F150,Sierra}.
Result<StarSchema> MakePaperExampleSchema();

}  // namespace iolap

#endif  // IOLAP_DATAGEN_TABLE2_H_
