#ifndef IOLAP_DATAGEN_GENERATOR_H_
#define IOLAP_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"

namespace iolap {

/// Parameters of the synthetic fact generator (Section 11: "randomly
/// selecting dimension attribute values from these 4 dimensions"). The
/// defaults reproduce the composition of the paper's real automotive
/// dataset: 797,570 facts, 30% imprecise; of the imprecise facts 67% are
/// imprecise in one dimension, ~33% in two, 0.01% in three; level choices
/// within a dimension follow Table 2's per-level fractions; no ALL values.
struct DatasetSpec {
  int64_t num_facts = 797'570;
  double imprecise_fraction = 0.30;
  /// P(#imprecise dims = 1, 2, 3) for an imprecise fact (normalized).
  double dims_weights[3] = {0.67, 0.3299, 0.0001};
  /// Allow the value ALL in up to two dimensions — the paper's synthetic
  /// variant that produces a giant connected component.
  bool allow_all = false;
  /// Probability that an imprecise dimension value is ALL (only when
  /// allow_all; the remainder picks an interior level).
  double all_fraction = 0.10;
  /// Real repair records cluster: leaves are drawn with a power-law skew
  /// (0 = uniform). Skew makes precise facts share cells, which is what
  /// gives the real dataset its dense connected-component structure.
  double skew = 1.0;
  /// Hotspot model: facts concentrate around `num_hotspots` correlated
  /// cluster centers (0 = auto: ~1 per 150 facts). Hotspots are picked
  /// with a power-law head so a few big clusters emerge — the source of
  /// the real data's large connected components.
  int64_t num_hotspots = 0;
  /// Probability that a dimension value stays within its hotspot's
  /// neighbourhood (the level-2 parent of the hotspot's leaf).
  double hotspot_fidelity = 0.85;
  /// Exponent of the hotspot-popularity power law (larger = heavier head).
  double hotspot_skew = 2.5;
  /// Derive each imprecise fact by *generalizing* the cell of a previously
  /// generated precise fact (so its region overlaps C and the fact is
  /// allocatable), mirroring how real imprecision arises from incomplete
  /// records. When false, imprecise values are drawn independently.
  bool anchored = true;
  uint64_t seed = 1;
  double measure_min = 1.0;
  double measure_max = 250.0;
};

/// Generates a fact table into a fresh file of `env`. Fact ids are dense
/// [0, num_facts).
Result<TypedFile<FactRecord>> GenerateFacts(StorageEnv& env,
                                            const StarSchema& schema,
                                            const DatasetSpec& spec);

/// The 14 facts of the paper's Table 1 (p1..p14 get fact ids 1..14),
/// against MakePaperExampleSchema().
Result<TypedFile<FactRecord>> MakePaperExampleFacts(StorageEnv& env,
                                                    const StarSchema& schema);

/// Composition statistics of a generated fact table (for the Table 2
/// bench report).
struct FactTableStats {
  int64_t precise = 0;
  int64_t imprecise = 0;
  int64_t by_imprecise_dims[kMaxDims + 1] = {};  // index = #imprecise dims
  std::vector<std::vector<int64_t>> level_counts;  // [dim][level-1]
};
Result<FactTableStats> AnalyzeFacts(StorageEnv& env, const StarSchema& schema,
                                    const TypedFile<FactRecord>& facts);

}  // namespace iolap

#endif  // IOLAP_DATAGEN_GENERATOR_H_
