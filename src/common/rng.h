#ifndef IOLAP_COMMON_RNG_H_
#define IOLAP_COMMON_RNG_H_

#include <cstdint>

namespace iolap {

/// Deterministic, fast pseudo-random generator (xoshiro256**, seeded via
/// splitmix64). Data generators and benchmarks use this instead of
/// std::mt19937 so that outputs are reproducible across standard-library
/// implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace iolap

#endif  // IOLAP_COMMON_RNG_H_
