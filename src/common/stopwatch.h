#ifndef IOLAP_COMMON_STOPWATCH_H_
#define IOLAP_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace iolap {

/// Monotonic wall-clock stopwatch used by benchmarks and the allocator's
/// per-phase timing instrumentation.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace iolap

#endif  // IOLAP_COMMON_STOPWATCH_H_
