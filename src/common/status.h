#ifndef IOLAP_COMMON_STATUS_H_
#define IOLAP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace iolap {

// Error taxonomy for the library. Kept deliberately small: database-style
// code mostly needs to distinguish caller bugs (kInvalidArgument), missing
// data (kNotFound), environmental failures (kIoError), and capacity limits
// (kResourceExhausted).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnimplemented,
  // Transient environmental failure: the operation failed now but may
  // succeed if retried (e.g. a flaky device). DiskManager's retry policy
  // retries these; kIoError stays permanent and surfaces immediately.
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "IO_ERROR").
const char* StatusCodeToString(StatusCode code);

/// Exception-free error value used throughout the library. Functions that
/// can fail return `Status` (or `Result<T>`); success is `Status::Ok()`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace iolap

#endif  // IOLAP_COMMON_STATUS_H_
