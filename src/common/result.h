#ifndef IOLAP_COMMON_RESULT_H_
#define IOLAP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace iolap {

/// Value-or-Status, in the style of absl::StatusOr. A `Result<T>` holds
/// either a `T` or a non-OK `Status`; constructing one from an OK status is
/// a caller bug (asserted in debug builds, converted to kInternal in
/// release builds so the error state stays well-defined).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors
  // StatusOr so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok());
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

// Propagate errors up the call stack; the database-code staple.
#define IOLAP_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::iolap::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define IOLAP_CONCAT_IMPL(x, y) x##y
#define IOLAP_CONCAT(x, y) IOLAP_CONCAT_IMPL(x, y)

// IOLAP_ASSIGN_OR_RETURN(auto v, Foo()): evaluates Foo(); on error returns
// its status from the enclosing function, otherwise moves the value into v.
#define IOLAP_ASSIGN_OR_RETURN(decl, expr)                          \
  auto IOLAP_CONCAT(_result_, __LINE__) = (expr);                   \
  if (!IOLAP_CONCAT(_result_, __LINE__).ok())                       \
    return IOLAP_CONCAT(_result_, __LINE__).status();               \
  decl = std::move(IOLAP_CONCAT(_result_, __LINE__)).value()

}  // namespace iolap

#endif  // IOLAP_COMMON_RESULT_H_
