#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace iolap {

bool RectsIntersect(const Rect& a, const Rect& b, int k) {
  for (int d = 0; d < k; ++d) {
    if (a.hi[d] < b.lo[d] || b.hi[d] < a.lo[d]) return false;
  }
  return true;
}

bool RectContains(const Rect& outer, const Rect& inner, int k) {
  for (int d = 0; d < k; ++d) {
    if (inner.lo[d] < outer.lo[d] || inner.hi[d] > outer.hi[d]) return false;
  }
  return true;
}

namespace {

bool RectsEqual(const Rect& a, const Rect& b, int k) {
  for (int d = 0; d < k; ++d) {
    if (a.lo[d] != b.lo[d] || a.hi[d] != b.hi[d]) return false;
  }
  return true;
}

double Area(const Rect& r, int k) {
  double area = 1;
  for (int d = 0; d < k; ++d) {
    area *= static_cast<double>(r.hi[d]) - r.lo[d] + 1;
  }
  return area;
}

Rect Combine(const Rect& a, const Rect& b, int k) {
  Rect r;
  for (int d = 0; d < k; ++d) {
    r.lo[d] = std::min(a.lo[d], b.lo[d]);
    r.hi[d] = std::max(a.hi[d], b.hi[d]);
  }
  return r;
}

double Enlargement(const Rect& base, const Rect& add, int k) {
  return Area(Combine(base, add, k), k) - Area(base, k);
}

}  // namespace

struct RTree::Entry {
  Rect rect;
  std::unique_ptr<Node> child;  // null in leaves
  int64_t id = -1;
};

struct RTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<Entry> entries;

  Rect Mbr(int k) const {
    Rect r = entries.front().rect;
    for (size_t i = 1; i < entries.size(); ++i) {
      r = Combine(r, entries[i].rect, k);
    }
    return r;
  }
};

RTree::RTree(int num_dims, int max_entries)
    : k_(num_dims),
      max_entries_(std::max(max_entries, 4)),
      min_entries_(std::max(max_entries, 4) / 2),
      root_(std::make_unique<Node>()) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

int RTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->entries.front().child.get();
    ++h;
  }
  return h;
}

RTree::Node* RTree::ChooseLeaf(Node* node, const Rect& rect, int /*level*/) {
  while (!node->leaf) {
    Entry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (Entry& e : node->entries) {
      double enl = Enlargement(e.rect, rect, k_);
      double area = Area(e.rect, k_);
      if (enl < best_enlargement ||
          (enl == best_enlargement && area < best_area)) {
        best = &e;
        best_enlargement = enl;
        best_area = area;
      }
    }
    node = best->child.get();
  }
  return node;
}

void RTree::SplitNode(Node* node, std::unique_ptr<Node>* new_node) {
  // Quadratic split (Guttman): pick the pair wasting the most area as
  // seeds, then assign entries by preference until done.
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();
  *new_node = std::make_unique<Node>();
  (*new_node)->leaf = node->leaf;

  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double waste = Area(Combine(entries[i].rect, entries[j].rect, k_), k_) -
                     Area(entries[i].rect, k_) - Area(entries[j].rect, k_);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto push = [&](Node* dst, Entry&& e) {
    if (e.child != nullptr) e.child->parent = dst;
    dst->entries.push_back(std::move(e));
  };
  Rect mbr_a = entries[seed_a].rect;
  Rect mbr_b = entries[seed_b].rect;
  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  push(node, std::move(entries[seed_a]));
  push(new_node->get(), std::move(entries[seed_b]));

  size_t remaining = entries.size() - 2;
  while (remaining > 0) {
    // If one group must take everything to reach min_entries_, do so.
    if (node->entries.size() + remaining ==
        static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          mbr_a = Combine(mbr_a, entries[i].rect, k_);
          push(node, std::move(entries[i]));
        }
      }
      remaining = 0;
      break;
    }
    if ((*new_node)->entries.size() + remaining ==
        static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          mbr_b = Combine(mbr_b, entries[i].rect, k_);
          push(new_node->get(), std::move(entries[i]));
        }
      }
      remaining = 0;
      break;
    }
    // PickNext: the entry with the strongest preference.
    size_t best = 0;
    double best_diff = -1;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      double da = Enlargement(mbr_a, entries[i].rect, k_);
      double db = Enlargement(mbr_b, entries[i].rect, k_);
      double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    double da = Enlargement(mbr_a, entries[best].rect, k_);
    double db = Enlargement(mbr_b, entries[best].rect, k_);
    assigned[best] = true;
    --remaining;
    if (da < db || (da == db && node->entries.size() <=
                                    (*new_node)->entries.size())) {
      mbr_a = Combine(mbr_a, entries[best].rect, k_);
      push(node, std::move(entries[best]));
    } else {
      mbr_b = Combine(mbr_b, entries[best].rect, k_);
      push(new_node->get(), std::move(entries[best]));
    }
  }
}

void RTree::AdjustTree(Node* node, std::unique_ptr<Node> split) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    // Refresh this node's MBR in its parent entry.
    for (Entry& e : parent->entries) {
      if (e.child.get() == node) {
        e.rect = node->Mbr(k_);
        break;
      }
    }
    if (split != nullptr) {
      Entry e;
      e.rect = split->Mbr(k_);
      split->parent = parent;
      e.child = std::move(split);
      parent->entries.push_back(std::move(e));
      if (parent->entries.size() > static_cast<size_t>(max_entries_)) {
        SplitNode(parent, &split);
      } else {
        split = nullptr;
      }
    }
    node = parent;
  }
  if (split != nullptr) {
    // Root split: grow the tree.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry a;
    a.rect = root_->Mbr(k_);
    root_->parent = new_root.get();
    a.child = std::move(root_);
    Entry b;
    b.rect = split->Mbr(k_);
    split->parent = new_root.get();
    b.child = std::move(split);
    new_root->entries.push_back(std::move(a));
    new_root->entries.push_back(std::move(b));
    root_ = std::move(new_root);
  }
}

void RTree::Insert(const Rect& rect, int64_t id) {
  Node* leaf = ChooseLeaf(root_.get(), rect, 0);
  Entry e;
  e.rect = rect;
  e.id = id;
  leaf->entries.push_back(std::move(e));
  std::unique_ptr<Node> split;
  if (leaf->entries.size() > static_cast<size_t>(max_entries_)) {
    SplitNode(leaf, &split);
  }
  AdjustTree(leaf, std::move(split));
  ++size_;
}

RTree::Node* RTree::FindLeaf(Node* node, const Rect& rect, int64_t id) {
  if (node->leaf) {
    for (const Entry& e : node->entries) {
      if (e.id == id && RectsEqual(e.rect, rect, k_)) return node;
    }
    return nullptr;
  }
  for (const Entry& e : node->entries) {
    if (RectContains(e.rect, rect, k_)) {
      Node* found = FindLeaf(e.child.get(), rect, id);
      if (found != nullptr) return found;
    }
  }
  return nullptr;
}

void RTree::CondenseTree(Node* leaf) {
  // Walk upward, dismantling underfull nodes; orphaned leaf entries are
  // reinserted at the end.
  std::vector<Entry> orphans;
  auto collect_leaf_entries = [&](auto&& self, Node* n) -> void {
    if (n->leaf) {
      for (Entry& e : n->entries) orphans.push_back(std::move(e));
      return;
    }
    for (Entry& e : n->entries) self(self, e.child.get());
  };

  Node* node = leaf;
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    if (node->entries.size() < static_cast<size_t>(min_entries_)) {
      // Remove node from parent and stash its leaf entries.
      for (size_t i = 0; i < parent->entries.size(); ++i) {
        if (parent->entries[i].child.get() == node) {
          std::unique_ptr<Node> removed =
              std::move(parent->entries[i].child);
          parent->entries.erase(parent->entries.begin() +
                                static_cast<int64_t>(i));
          collect_leaf_entries(collect_leaf_entries, removed.get());
          break;
        }
      }
    } else {
      for (Entry& e : parent->entries) {
        if (e.child.get() == node) {
          e.rect = node->Mbr(k_);
          break;
        }
      }
    }
    node = parent;
  }
  // Shrink the root if it has a single child.
  while (!root_->leaf && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries.front().child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (!root_->leaf && root_->entries.empty()) {
    root_ = std::make_unique<Node>();
  }
  size_ -= static_cast<int64_t>(orphans.size());
  for (Entry& e : orphans) {
    Insert(e.rect, e.id);
  }
}

bool RTree::Remove(const Rect& rect, int64_t id) {
  Node* leaf = FindLeaf(root_.get(), rect, id);
  if (leaf == nullptr) return false;
  for (size_t i = 0; i < leaf->entries.size(); ++i) {
    if (leaf->entries[i].id == id && RectsEqual(leaf->entries[i].rect, rect, k_)) {
      leaf->entries.erase(leaf->entries.begin() + static_cast<int64_t>(i));
      break;
    }
  }
  --size_;
  CondenseTree(leaf);
  return true;
}

void RTree::SearchNode(const Node* node, const Rect& query,
                       std::vector<int64_t>* out) const {
  ++nodes_accessed_;
  for (const Entry& e : node->entries) {
    if (!RectsIntersect(e.rect, query, k_)) continue;
    if (node->leaf) {
      out->push_back(e.id);
    } else {
      SearchNode(e.child.get(), query, out);
    }
  }
}

void RTree::Search(const Rect& query, std::vector<int64_t>* out) const {
  SearchNode(root_.get(), query, out);
}

bool RTree::CheckNode(const Node* node, bool is_root) const {
  if (!is_root && node->entries.size() < static_cast<size_t>(min_entries_)) {
    return false;
  }
  if (node->entries.size() > static_cast<size_t>(max_entries_)) return false;
  if (node->leaf) return true;
  for (const Entry& e : node->entries) {
    if (e.child == nullptr || e.child->parent != node) return false;
    if (e.child->entries.empty()) return false;
    if (!RectsEqual(e.rect, e.child->Mbr(k_), k_)) return false;
    if (!CheckNode(e.child.get(), false)) return false;
  }
  return true;
}

bool RTree::CheckInvariants() const {
  if (size_ == 0) return root_->entries.empty() || root_->leaf;
  // Uniform leaf depth.
  const Node* node = root_.get();
  int depth = 0;
  while (!node->leaf) {
    node = node->entries.front().child.get();
    ++depth;
  }
  // Count entries.
  int64_t count = 0;
  auto walk = [&](auto&& self, const Node* n, int d) -> bool {
    if (n->leaf) {
      if (d != depth) return false;
      count += static_cast<int64_t>(n->entries.size());
      return true;
    }
    for (const Entry& e : n->entries) {
      if (!self(self, e.child.get(), d + 1)) return false;
    }
    return true;
  };
  if (!walk(walk, root_.get(), 0)) return false;
  if (count != size_) return false;
  return CheckNode(root_.get(), true);
}

}  // namespace iolap
