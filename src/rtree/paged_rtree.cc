#include "rtree/paged_rtree.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace iolap {

namespace {

struct PagedEntry {
  Rect rect;
  int64_t child;  // child page (internal) or entry id (leaf)
};
static_assert(sizeof(Rect) == 2 * kMaxDims * sizeof(int32_t));

// Page layout: [leaf:int32][count:int32][parent:int64][entries...]
constexpr size_t kHeaderBytes = 16;
constexpr size_t kEntryBytes = sizeof(Rect) + sizeof(int64_t);
constexpr int kPageCapacity =
    static_cast<int>((kPageSize - kHeaderBytes) / kEntryBytes);

double Area(const Rect& r, int k) {
  double area = 1;
  for (int d = 0; d < k; ++d) {
    area *= static_cast<double>(r.hi[d]) - r.lo[d] + 1;
  }
  return area;
}

Rect Combine(const Rect& a, const Rect& b, int k) {
  Rect r;
  for (int d = 0; d < k; ++d) {
    r.lo[d] = std::min(a.lo[d], b.lo[d]);
    r.hi[d] = std::max(a.hi[d], b.hi[d]);
  }
  return r;
}

double Enlargement(const Rect& base, const Rect& add, int k) {
  return Area(Combine(base, add, k), k) - Area(base, k);
}

bool RectsEqual(const Rect& a, const Rect& b, int k) {
  for (int d = 0; d < k; ++d) {
    if (a.lo[d] != b.lo[d] || a.hi[d] != b.hi[d]) return false;
  }
  return true;
}

}  // namespace

struct PagedRTree::NodeData {
  PageId page = -1;
  bool leaf = true;
  PageId parent = -1;
  std::vector<PagedEntry> entries;

  Rect Mbr(int k) const {
    Rect r = entries.front().rect;
    for (size_t i = 1; i < entries.size(); ++i) {
      r = Combine(r, entries[i].rect, k);
    }
    return r;
  }
};

Result<PagedRTree> PagedRTree::Create(DiskManager* disk, BufferPool* pool,
                                      int num_dims, int max_entries) {
  if (max_entries <= 0 || max_entries > kPageCapacity) {
    max_entries = kPageCapacity;
  }
  max_entries = std::max(max_entries, 4);
  IOLAP_ASSIGN_OR_RETURN(FileId file, disk->CreateFile("rtree"));
  PagedRTree tree(disk, pool, file, num_dims, max_entries);
  IOLAP_ASSIGN_OR_RETURN(tree.root_, tree.AllocateNode());
  NodeData root;
  root.page = tree.root_;
  root.leaf = true;
  root.parent = -1;
  IOLAP_RETURN_IF_ERROR(tree.WriteNode(root));
  return tree;
}

Result<PagedRTree::NodeData> PagedRTree::ReadNode(PageId page) {
  IOLAP_ASSIGN_OR_RETURN(PageGuard guard, pool_->Pin(file_, page));
  const std::byte* data = guard.data();
  NodeData node;
  node.page = page;
  int32_t leaf, count;
  std::memcpy(&leaf, data, sizeof(leaf));
  std::memcpy(&count, data + 4, sizeof(count));
  std::memcpy(&node.parent, data + 8, sizeof(node.parent));
  node.leaf = leaf != 0;
  node.entries.resize(count);
  for (int i = 0; i < count; ++i) {
    const std::byte* at = data + kHeaderBytes + i * kEntryBytes;
    std::memcpy(&node.entries[i].rect, at, sizeof(Rect));
    std::memcpy(&node.entries[i].child, at + sizeof(Rect), sizeof(int64_t));
  }
  return node;
}

Status PagedRTree::WriteNode(const NodeData& node) {
  IOLAP_ASSIGN_OR_RETURN(PageGuard guard, pool_->Pin(file_, node.page));
  std::byte* data = guard.data();
  int32_t leaf = node.leaf ? 1 : 0;
  int32_t count = static_cast<int32_t>(node.entries.size());
  std::memcpy(data, &leaf, sizeof(leaf));
  std::memcpy(data + 4, &count, sizeof(count));
  std::memcpy(data + 8, &node.parent, sizeof(node.parent));
  for (int i = 0; i < count; ++i) {
    std::byte* at = data + kHeaderBytes + i * kEntryBytes;
    std::memcpy(at, &node.entries[i].rect, sizeof(Rect));
    std::memcpy(at + sizeof(Rect), &node.entries[i].child, sizeof(int64_t));
  }
  guard.MarkDirty();
  return Status::Ok();
}

Result<PageId> PagedRTree::AllocateNode() {
  if (!free_pages_.empty()) {
    PageId page = free_pages_.back();
    free_pages_.pop_back();
    return page;
  }
  PageId page = next_page_++;
  IOLAP_ASSIGN_OR_RETURN(PageGuard guard, pool_->PinNew(file_, page));
  guard.MarkDirty();
  return page;
}

void PagedRTree::FreeNode(PageId page) { free_pages_.push_back(page); }

Result<PageId> PagedRTree::ChooseLeaf(const Rect& rect) {
  PageId page = root_;
  while (true) {
    IOLAP_ASSIGN_OR_RETURN(NodeData node, ReadNode(page));
    if (node.leaf) return page;
    const PagedEntry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const PagedEntry& e : node.entries) {
      double enl = Enlargement(e.rect, rect, k_);
      double area = Area(e.rect, k_);
      if (enl < best_enlargement ||
          (enl == best_enlargement && area < best_area)) {
        best = &e;
        best_enlargement = enl;
        best_area = area;
      }
    }
    page = best->child;
  }
}

Status PagedRTree::SplitNode(NodeData* node, NodeData* fresh) {
  std::vector<PagedEntry> entries = std::move(node->entries);
  node->entries.clear();
  fresh->leaf = node->leaf;
  fresh->parent = node->parent;

  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double waste = Area(Combine(entries[i].rect, entries[j].rect, k_), k_) -
                     Area(entries[i].rect, k_) - Area(entries[j].rect, k_);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  Rect mbr_a = entries[seed_a].rect;
  Rect mbr_b = entries[seed_b].rect;
  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  node->entries.push_back(entries[seed_a]);
  fresh->entries.push_back(entries[seed_b]);

  size_t remaining = entries.size() - 2;
  while (remaining > 0) {
    if (node->entries.size() + remaining ==
        static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          node->entries.push_back(entries[i]);
        }
      }
      break;
    }
    if (fresh->entries.size() + remaining ==
        static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          fresh->entries.push_back(entries[i]);
        }
      }
      break;
    }
    size_t best = 0;
    double best_diff = -1;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      double da = Enlargement(mbr_a, entries[i].rect, k_);
      double db = Enlargement(mbr_b, entries[i].rect, k_);
      if (std::abs(da - db) > best_diff) {
        best_diff = std::abs(da - db);
        best = i;
      }
    }
    double da = Enlargement(mbr_a, entries[best].rect, k_);
    double db = Enlargement(mbr_b, entries[best].rect, k_);
    assigned[best] = true;
    --remaining;
    if (da < db ||
        (da == db && node->entries.size() <= fresh->entries.size())) {
      mbr_a = Combine(mbr_a, entries[best].rect, k_);
      node->entries.push_back(entries[best]);
    } else {
      mbr_b = Combine(mbr_b, entries[best].rect, k_);
      fresh->entries.push_back(entries[best]);
    }
  }

  // Children that moved to the fresh node point to a new parent.
  if (!node->leaf) {
    for (const PagedEntry& e : fresh->entries) {
      IOLAP_ASSIGN_OR_RETURN(NodeData child, ReadNode(e.child));
      child.parent = fresh->page;
      IOLAP_RETURN_IF_ERROR(WriteNode(child));
    }
  }
  return Status::Ok();
}

Status PagedRTree::AdjustTree(PageId page, PageId split_page) {
  while (true) {
    IOLAP_ASSIGN_OR_RETURN(NodeData node, ReadNode(page));
    if (node.parent < 0) {
      if (split_page >= 0) {
        // Root split: grow the tree.
        IOLAP_ASSIGN_OR_RETURN(PageId new_root, AllocateNode());
        IOLAP_ASSIGN_OR_RETURN(NodeData split, ReadNode(split_page));
        NodeData root;
        root.page = new_root;
        root.leaf = false;
        root.parent = -1;
        root.entries.push_back(PagedEntry{node.Mbr(k_), node.page});
        root.entries.push_back(PagedEntry{split.Mbr(k_), split.page});
        node.parent = new_root;
        split.parent = new_root;
        IOLAP_RETURN_IF_ERROR(WriteNode(node));
        IOLAP_RETURN_IF_ERROR(WriteNode(split));
        IOLAP_RETURN_IF_ERROR(WriteNode(root));
        root_ = new_root;
        ++height_;
      }
      return Status::Ok();
    }
    IOLAP_ASSIGN_OR_RETURN(NodeData parent, ReadNode(node.parent));
    for (PagedEntry& e : parent.entries) {
      if (e.child == node.page) {
        e.rect = node.Mbr(k_);
        break;
      }
    }
    PageId next_split = -1;
    if (split_page >= 0) {
      IOLAP_ASSIGN_OR_RETURN(NodeData split, ReadNode(split_page));
      split.parent = parent.page;
      IOLAP_RETURN_IF_ERROR(WriteNode(split));
      parent.entries.push_back(PagedEntry{split.Mbr(k_), split_page});
      if (parent.entries.size() > static_cast<size_t>(max_entries_)) {
        NodeData fresh;
        IOLAP_ASSIGN_OR_RETURN(fresh.page, AllocateNode());
        IOLAP_RETURN_IF_ERROR(SplitNode(&parent, &fresh));
        IOLAP_RETURN_IF_ERROR(WriteNode(fresh));
        next_split = fresh.page;
      }
    }
    IOLAP_RETURN_IF_ERROR(WriteNode(parent));
    page = parent.page;
    split_page = next_split;
  }
}

Status PagedRTree::Insert(const Rect& rect, int64_t id) {
  IOLAP_ASSIGN_OR_RETURN(PageId leaf_page, ChooseLeaf(rect));
  IOLAP_ASSIGN_OR_RETURN(NodeData leaf, ReadNode(leaf_page));
  leaf.entries.push_back(PagedEntry{rect, id});
  PageId split_page = -1;
  if (leaf.entries.size() > static_cast<size_t>(max_entries_)) {
    NodeData fresh;
    IOLAP_ASSIGN_OR_RETURN(fresh.page, AllocateNode());
    IOLAP_RETURN_IF_ERROR(SplitNode(&leaf, &fresh));
    IOLAP_RETURN_IF_ERROR(WriteNode(fresh));
    split_page = fresh.page;
  }
  IOLAP_RETURN_IF_ERROR(WriteNode(leaf));
  IOLAP_RETURN_IF_ERROR(AdjustTree(leaf_page, split_page));
  ++size_;
  return Status::Ok();
}

Status PagedRTree::FindLeaf(PageId page, const Rect& rect, int64_t id,
                            PageId* leaf) {
  IOLAP_ASSIGN_OR_RETURN(NodeData node, ReadNode(page));
  if (node.leaf) {
    for (const PagedEntry& e : node.entries) {
      if (e.child == id && RectsEqual(e.rect, rect, k_)) {
        *leaf = page;
        return Status::Ok();
      }
    }
    return Status::Ok();
  }
  for (const PagedEntry& e : node.entries) {
    if (RectContains(e.rect, rect, k_)) {
      IOLAP_RETURN_IF_ERROR(FindLeaf(e.child, rect, id, leaf));
      if (*leaf >= 0) return Status::Ok();
    }
  }
  return Status::Ok();
}

Status PagedRTree::CollectLeafEntries(
    PageId page, std::vector<std::pair<Rect, int64_t>>* out) {
  IOLAP_ASSIGN_OR_RETURN(NodeData node, ReadNode(page));
  if (node.leaf) {
    for (const PagedEntry& e : node.entries) {
      out->emplace_back(e.rect, e.child);
    }
  } else {
    for (const PagedEntry& e : node.entries) {
      IOLAP_RETURN_IF_ERROR(CollectLeafEntries(e.child, out));
    }
  }
  FreeNode(page);
  return Status::Ok();
}

Status PagedRTree::CondenseTree(PageId leaf_page) {
  std::vector<std::pair<Rect, int64_t>> orphans;
  PageId page = leaf_page;
  while (true) {
    IOLAP_ASSIGN_OR_RETURN(NodeData node, ReadNode(page));
    if (node.parent < 0) break;
    IOLAP_ASSIGN_OR_RETURN(NodeData parent, ReadNode(node.parent));
    if (node.entries.size() < static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < parent.entries.size(); ++i) {
        if (parent.entries[i].child == node.page) {
          parent.entries.erase(parent.entries.begin() +
                               static_cast<int64_t>(i));
          break;
        }
      }
      IOLAP_RETURN_IF_ERROR(CollectLeafEntries(node.page, &orphans));
    } else {
      for (PagedEntry& e : parent.entries) {
        if (e.child == node.page) {
          e.rect = node.Mbr(k_);
          break;
        }
      }
    }
    IOLAP_RETURN_IF_ERROR(WriteNode(parent));
    page = parent.page;
  }
  // Shrink the root.
  while (true) {
    IOLAP_ASSIGN_OR_RETURN(NodeData root, ReadNode(root_));
    if (root.leaf || root.entries.size() != 1) break;
    PageId child_page = root.entries.front().child;
    IOLAP_ASSIGN_OR_RETURN(NodeData child, ReadNode(child_page));
    child.parent = -1;
    IOLAP_RETURN_IF_ERROR(WriteNode(child));
    FreeNode(root_);
    root_ = child_page;
    --height_;
  }
  {
    IOLAP_ASSIGN_OR_RETURN(NodeData root, ReadNode(root_));
    if (!root.leaf && root.entries.empty()) {
      root.leaf = true;
      IOLAP_RETURN_IF_ERROR(WriteNode(root));
      height_ = 1;
    }
  }
  size_ -= static_cast<int64_t>(orphans.size());
  for (const auto& [rect, id] : orphans) {
    IOLAP_RETURN_IF_ERROR(Insert(rect, id));
  }
  return Status::Ok();
}

Status PagedRTree::Remove(const Rect& rect, int64_t id, bool* removed) {
  *removed = false;
  PageId leaf_page = -1;
  IOLAP_RETURN_IF_ERROR(FindLeaf(root_, rect, id, &leaf_page));
  if (leaf_page < 0) return Status::Ok();
  IOLAP_ASSIGN_OR_RETURN(NodeData leaf, ReadNode(leaf_page));
  for (size_t i = 0; i < leaf.entries.size(); ++i) {
    if (leaf.entries[i].child == id &&
        RectsEqual(leaf.entries[i].rect, rect, k_)) {
      leaf.entries.erase(leaf.entries.begin() + static_cast<int64_t>(i));
      break;
    }
  }
  IOLAP_RETURN_IF_ERROR(WriteNode(leaf));
  --size_;
  *removed = true;
  return CondenseTree(leaf_page);
}

Status PagedRTree::SearchNode(PageId page, const Rect& query,
                              std::vector<int64_t>* out) {
  ++nodes_accessed_;
  IOLAP_ASSIGN_OR_RETURN(NodeData node, ReadNode(page));
  for (const PagedEntry& e : node.entries) {
    if (!RectsIntersect(e.rect, query, k_)) continue;
    if (node.leaf) {
      out->push_back(e.child);
    } else {
      IOLAP_RETURN_IF_ERROR(SearchNode(e.child, query, out));
    }
  }
  return Status::Ok();
}

Status PagedRTree::Search(const Rect& query, std::vector<int64_t>* out) {
  return SearchNode(root_, query, out);
}

Status PagedRTree::CheckNode(PageId page, bool is_root, int depth,
                             int leaf_depth, int64_t* count, bool* ok) {
  IOLAP_ASSIGN_OR_RETURN(NodeData node, ReadNode(page));
  if (!is_root && node.entries.size() < static_cast<size_t>(min_entries_)) {
    *ok = false;
  }
  if (node.entries.size() > static_cast<size_t>(max_entries_)) *ok = false;
  if (node.leaf) {
    if (depth != leaf_depth) *ok = false;
    *count += static_cast<int64_t>(node.entries.size());
    return Status::Ok();
  }
  for (const PagedEntry& e : node.entries) {
    IOLAP_ASSIGN_OR_RETURN(NodeData child, ReadNode(e.child));
    if (child.parent != page) *ok = false;
    if (child.entries.empty()) {
      *ok = false;
      continue;
    }
    if (!RectsEqual(e.rect, child.Mbr(k_), k_)) *ok = false;
    IOLAP_RETURN_IF_ERROR(CheckNode(e.child, false, depth + 1, leaf_depth,
                                    count, ok));
  }
  return Status::Ok();
}

Result<bool> PagedRTree::CheckInvariants() {
  bool ok = true;
  int64_t count = 0;
  IOLAP_RETURN_IF_ERROR(
      CheckNode(root_, true, 1, height_, &count, &ok));
  if (count != size_) ok = false;
  return ok;
}

}  // namespace iolap
