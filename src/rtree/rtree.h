#ifndef IOLAP_RTREE_RTREE_H_
#define IOLAP_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "model/schema.h"

namespace iolap {

/// Axis-aligned integer box over leaf coordinates, bounds inclusive.
struct Rect {
  int32_t lo[kMaxDims] = {};
  int32_t hi[kMaxDims] = {};

  static Rect Of(const int32_t* lo_in, const int32_t* hi_in, int k) {
    Rect r;
    for (int d = 0; d < k; ++d) {
      r.lo[d] = lo_in[d];
      r.hi[d] = hi_in[d];
    }
    return r;
  }
};

bool RectsIntersect(const Rect& a, const Rect& b, int k);
bool RectContains(const Rect& outer, const Rect& inner, int k);

/// Guttman R-tree (SIGMOD'84) with quadratic split, over integer boxes —
/// the spatial index Section 9's EDB maintenance algorithm keeps over the
/// connected components' bounding boxes. In-memory: the component count is
/// orders of magnitude below the fact count, and the maintenance cost the
/// paper measures is dominated by fact fetching and re-allocation, which
/// stay on disk (see DESIGN.md substitutions).
class RTree {
 public:
  explicit RTree(int num_dims, int max_entries = 16);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  void Insert(const Rect& rect, int64_t id);

  /// Removes the entry with this exact rect and id; false if absent.
  bool Remove(const Rect& rect, int64_t id);

  /// Appends the ids of all entries whose rect intersects `query`.
  void Search(const Rect& query, std::vector<int64_t>* out) const;

  int64_t size() const { return size_; }
  int height() const;

  /// Node visits performed by Search calls (index work metric).
  int64_t nodes_accessed() const { return nodes_accessed_; }
  void ResetStats() { nodes_accessed_ = 0; }

  /// Validates R-tree invariants (entry counts, MBR containment); used by
  /// tests. Returns false on any violation.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  Node* ChooseLeaf(Node* node, const Rect& rect, int level);
  void SplitNode(Node* node, std::unique_ptr<Node>* new_node);
  void AdjustTree(Node* node, std::unique_ptr<Node> split);
  Node* FindLeaf(Node* node, const Rect& rect, int64_t id);
  void CondenseTree(Node* leaf);
  void SearchNode(const Node* node, const Rect& query,
                  std::vector<int64_t>* out) const;
  bool CheckNode(const Node* node, bool is_root) const;

  int k_;
  int max_entries_;
  int min_entries_;
  std::unique_ptr<Node> root_;
  int64_t size_ = 0;
  mutable int64_t nodes_accessed_ = 0;
};

}  // namespace iolap

#endif  // IOLAP_RTREE_RTREE_H_
