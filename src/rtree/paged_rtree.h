#ifndef IOLAP_RTREE_PAGED_RTREE_H_
#define IOLAP_RTREE_PAGED_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace iolap {

/// Disk-based Guttman R-tree: one node per 4 KiB page, accessed through the
/// buffer pool so every node touch is counted I/O — the faithful version of
/// the spatial index Section 9 builds over component bounding boxes (the
/// paper used Hadjieleftheriou's disk R-tree [13]).
///
/// Same algorithms as the in-memory `RTree` (quadratic split, condense-with-
/// reinsert on delete); the two are differentially tested against each
/// other. Fan-out is 72 at kMaxDims = 6 (settable lower for tests).
class PagedRTree {
 public:
  /// Creates an empty tree in a fresh file of `disk`, paged through `pool`.
  static Result<PagedRTree> Create(DiskManager* disk, BufferPool* pool,
                                   int num_dims, int max_entries = 0);

  Status Insert(const Rect& rect, int64_t id);

  /// Removes the entry with this exact rect and id; outputs whether found.
  Status Remove(const Rect& rect, int64_t id, bool* removed);

  /// Appends the ids of all entries whose rect intersects `query`.
  Status Search(const Rect& query, std::vector<int64_t>* out);

  int64_t size() const { return size_; }
  int height() const { return height_; }

  /// Node pages visited by Search calls.
  int64_t nodes_accessed() const { return nodes_accessed_; }
  void ResetStats() { nodes_accessed_ = 0; }

  /// Validates tree invariants (counts, MBR tightness, parent links,
  /// uniform leaf depth); used by tests.
  Result<bool> CheckInvariants();

 private:
  PagedRTree(DiskManager* disk, BufferPool* pool, FileId file, int num_dims,
             int max_entries)
      : disk_(disk),
        pool_(pool),
        file_(file),
        k_(num_dims),
        max_entries_(max_entries),
        min_entries_(max_entries / 2) {}

  struct NodeData;  // in-memory image of one node page

  Result<NodeData> ReadNode(PageId page);
  Status WriteNode(const NodeData& node);
  Result<PageId> AllocateNode();
  void FreeNode(PageId page);

  Result<PageId> ChooseLeaf(const Rect& rect);
  Status SplitNode(NodeData* node, NodeData* fresh);
  Status AdjustTree(PageId page, PageId split_page);
  Status FindLeaf(PageId page, const Rect& rect, int64_t id, PageId* leaf);
  Status CondenseTree(PageId leaf_page);
  Status SearchNode(PageId page, const Rect& query,
                    std::vector<int64_t>* out);
  Status CollectLeafEntries(PageId page,
                            std::vector<std::pair<Rect, int64_t>>* out);
  Status CheckNode(PageId page, bool is_root, int depth, int leaf_depth,
                   int64_t* count, bool* ok);

  DiskManager* disk_;
  BufferPool* pool_;
  FileId file_;
  int k_;
  int max_entries_;
  int min_entries_;
  PageId root_ = -1;
  int64_t size_ = 0;
  int height_ = 1;
  int64_t nodes_accessed_ = 0;
  std::vector<PageId> free_pages_;
  int64_t next_page_ = 0;
};

}  // namespace iolap

#endif  // IOLAP_RTREE_PAGED_RTREE_H_
