#include "exec/parallel_scheduler.h"

namespace iolap {

Status ParallelScheduler::Execute(std::vector<ScheduledUnit>& units) {
  const size_t n = units.size();
  std::vector<TaskFuture> futures(n);
  size_t next_submit = 0;   // first unit not yet submitted / passed over
  int64_t inflight_cost = 0;  // submitted but not yet emitted

  // Submits pooled units in order until the cost window is full or an
  // inline barrier is reached. Admission is deterministic: it depends only
  // on unit order and costs, never on thread timing.
  auto submit_ready = [&] {
    if (pool_ == nullptr) return;
    while (next_submit < n) {
      ScheduledUnit& unit = units[next_submit];
      if (unit.run_inline) break;  // barrier: nothing runs past it
      if (!unit.run) {
        ++next_submit;
        continue;
      }
      if (inflight_cost > 0 && inflight_cost + unit.cost > max_inflight_cost_)
        break;
      futures[next_submit] = pool_->Submit(unit.run);
      inflight_cost += unit.cost;
      ++next_submit;
    }
  };

  Status first_error;
  for (size_t i = 0; i < n; ++i) {
    submit_ready();
    ScheduledUnit& unit = units[i];
    Status status;
    if (futures[i].valid()) {
      status = futures[i].Wait();
      inflight_cost -= unit.cost;
    } else if (unit.run) {
      // Inline unit, or no pool: run on the calling thread. By the time an
      // inline unit's turn comes every earlier future has been waited on,
      // so it has the machine (and the buffer pool) to itself.
      status = unit.run();
    }
    if (status.ok() && unit.emit) status = unit.emit();
    if (i == next_submit) ++next_submit;  // step past a non-submitted unit
    if (!status.ok()) {
      first_error = std::move(status);
      break;
    }
  }

  // Never return while submitted tasks might still touch caller state.
  for (size_t j = 0; j < n; ++j) {
    if (futures[j].valid()) futures[j].Wait();
  }
  return first_error;
}

}  // namespace iolap
