#include "exec/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace iolap {

Status TaskFuture::Wait() const {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Wait on an invalid TaskFuture");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->status;
}

ThreadPool::ThreadPool(int num_threads) {
  queue_depth_gauge_ = GlobalGauge("exec.queue_depth");
  tasks_counter_ = GlobalCounter("exec.tasks_submitted");
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

TaskFuture ThreadPool::Submit(std::function<Status()> fn) {
  auto state = std::make_shared<TaskFuture::State>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // The pool is shutting down; fail the task instead of losing it.
      std::lock_guard<std::mutex> task_lock(state->mu);
      state->done = true;
      state->status =
          Status::FailedPrecondition("Submit on a stopping ThreadPool");
      return TaskFuture(std::move(state));
    }
    queue_.push_back(Task{std::move(fn), state});
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  if (tasks_counter_ != nullptr) tasks_counter_->Add(1);
  cv_.notify_one();
  return TaskFuture(std::move(state));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    TraceSpan task_span("exec.task");
    Status status = task.fn ? task.fn() : Status::Ok();
    task_span.End();
    {
      std::lock_guard<std::mutex> lock(task.state->mu);
      task.state->status = std::move(status);
      task.state->done = true;
    }
    task.state->cv.notify_all();
  }
}

}  // namespace iolap
