#ifndef IOLAP_EXEC_PARALLEL_FOR_H_
#define IOLAP_EXEC_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/thread_pool.h"

namespace iolap {

/// Runs `fn(0) ... fn(n-1)` to completion, on `pool` when one is given and
/// inline on the calling thread otherwise, and returns the failing Status
/// of the lowest index (every submitted task still finishes first, so `fn`
/// may reference caller-owned state). The index space — not the execution
/// order — is the contract: each call must only touch state owned by its
/// index plus thread-safe shared services, so the result is independent of
/// the thread count.
inline Status ParallelFor(ThreadPool* pool, int64_t n,
                          const std::function<Status(int64_t)>& fn) {
  if (n <= 0) return Status::Ok();
  if (pool == nullptr || n == 1) {
    for (int64_t i = 0; i < n; ++i) IOLAP_RETURN_IF_ERROR(fn(i));
    return Status::Ok();
  }
  std::vector<Status> results(n, Status::Ok());
  std::vector<TaskFuture> futures;
  futures.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Status* slot = &results[i];
    futures.push_back(pool->Submit([&fn, i, slot] {
      *slot = fn(i);
      return Status::Ok();
    }));
  }
  for (const TaskFuture& f : futures) {
    const Status pool_status = f.Wait();
    (void)pool_status;  // per-index status below carries the real error
  }
  for (const Status& s : results) IOLAP_RETURN_IF_ERROR(s);
  return Status::Ok();
}

}  // namespace iolap

#endif  // IOLAP_EXEC_PARALLEL_FOR_H_
