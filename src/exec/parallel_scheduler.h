#ifndef IOLAP_EXEC_PARALLEL_SCHEDULER_H_
#define IOLAP_EXEC_PARALLEL_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"

namespace iolap {

/// One unit of work for ParallelScheduler::Execute. The scheduler runs
/// `run` closures concurrently on the pool but calls `emit` closures
/// strictly in input order on the calling thread — this is how the parallel
/// Transitive path keeps its EDB output byte-identical to the serial path:
/// compute is unordered, output is ordered.
struct ScheduledUnit {
  /// Deterministic cost estimate (Transitive uses cells + entries of the
  /// component batch). Bounds how much computed-but-not-yet-emitted work
  /// may be in flight, i.e. the scheduler's memory footprint.
  int64_t cost = 1;

  /// Inline units run `run` on the calling thread when their turn to emit
  /// comes, and act as a barrier: no later unit starts until they finish.
  /// Transitive uses this for components too large for memory — their
  /// external Block passes need the whole buffer pool to themselves.
  bool run_inline = false;

  /// Heavy compute. May be empty. Runs on a worker thread (or the calling
  /// thread for inline units). Must only touch state owned by the unit
  /// plus thread-safe shared services (BufferPool, DiskManager).
  std::function<Status()> run;

  /// Ordered output. May be empty. Always runs on the calling thread,
  /// after `run` succeeded, in exact input order across all units.
  std::function<Status()> emit;
};

/// Runs an ordered sequence of ScheduledUnits over a ThreadPool.
///
/// Guarantees:
///  * `emit` calls happen in input order, on the calling thread.
///  * At most `max_inflight_cost` worth of units is submitted but not yet
///    emitted (a single unit larger than the budget is still admitted when
///    nothing else is in flight, so progress is never blocked).
///  * Inline units are barriers; pooled units never run concurrently with
///    an inline unit.
///  * On error, the first failing Status in *unit order* is returned, and
///    Execute does not return before every submitted task has finished
///    (units may reference caller-owned state).
class ParallelScheduler {
 public:
  /// `pool` may be null — then every unit runs inline on the calling
  /// thread, which is the num_threads = 1 configuration.
  ParallelScheduler(ThreadPool* pool, int64_t max_inflight_cost)
      : pool_(pool), max_inflight_cost_(std::max<int64_t>(1, max_inflight_cost)) {}

  Status Execute(std::vector<ScheduledUnit>& units);

 private:
  ThreadPool* pool_;
  int64_t max_inflight_cost_;
};

}  // namespace iolap

#endif  // IOLAP_EXEC_PARALLEL_SCHEDULER_H_
