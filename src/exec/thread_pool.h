#ifndef IOLAP_EXEC_THREAD_POOL_H_
#define IOLAP_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace iolap {

/// Completion handle for one task submitted to a ThreadPool. Wait() blocks
/// until the task has run and returns its Status — the library's
/// exception-free analogue of std::future<Status>. Copyable; all copies
/// share one completion state.
class TaskFuture {
 public:
  TaskFuture() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the task completed and returns its Status. Waiting on an
  /// invalid (default-constructed) future is a caller bug and returns
  /// kFailedPrecondition.
  Status Wait() const;

 private:
  friend class ThreadPool;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  };

  explicit TaskFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Fixed-size worker pool with a FIFO task queue. Tasks are
/// `std::function<Status()>`; their Status propagates to the submitter
/// through the returned TaskFuture (no exceptions anywhere, per the
/// library's error-handling convention).
///
/// Shutdown (destructor) *drains* the queue: tasks already submitted still
/// run to completion before the workers join, so every TaskFuture handed
/// out is guaranteed to complete.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` for execution on a worker thread. With a single worker
  /// the execution order is exactly the submission order.
  TaskFuture Submit(std::function<Status()> fn);

 private:
  struct Task {
    std::function<Status()> fn;
    std::shared_ptr<TaskFuture::State> state;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  // Observability handles, resolved once at construction; null when no
  // registry is installed (the disabled-mode fast path is one null check).
  class Gauge* queue_depth_gauge_ = nullptr;
  class Counter* tasks_counter_ = nullptr;
};

}  // namespace iolap

#endif  // IOLAP_EXEC_THREAD_POOL_H_
