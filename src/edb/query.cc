#include "edb/query.h"

#include <vector>

namespace iolap {

bool QueryEngine::CellInRegion(const QueryRegion& region,
                               const int32_t* leaf) const {
  for (int d = 0; d < schema_->num_dims(); ++d) {
    if (!schema_->dim(d).Covers(region.node[d], leaf[d])) return false;
  }
  return true;
}

Result<AggregateResult> QueryEngine::Aggregate(
    const QueryRegion& region, AggregateFunc func,
    ImpreciseSemantics semantics) const {
  AggregateResult out;
  if (semantics == ImpreciseSemantics::kAllocationWeighted) {
    auto cursor = edb_->Scan(env_->pool());
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
      if (!CellInRegion(region, rec.leaf)) continue;
      out.sum += rec.weight * rec.measure;
      out.count += rec.weight;
    }
  } else {
    if (facts_ == nullptr) {
      return Status::FailedPrecondition(
          "None/Contains/Overlaps semantics require the original fact table");
    }
    const int k = schema_->num_dims();
    auto cursor = facts_->Scan(env_->pool());
    FactRecord fact;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&fact));
      bool counted;
      if (fact.IsPrecise(k)) {
        int32_t leaf[kMaxDims] = {};
        for (int d = 0; d < k; ++d) {
          leaf[d] = schema_->dim(d).leaf_begin(fact.node[d]);
        }
        counted = CellInRegion(region, leaf);
      } else if (semantics == ImpreciseSemantics::kNone) {
        counted = false;
      } else {
        bool contains = true, overlaps = true;
        for (int d = 0; d < k && overlaps; ++d) {
          const Hierarchy& h = schema_->dim(d);
          LeafId fb = h.leaf_begin(fact.node[d]), fe = h.leaf_end(fact.node[d]);
          LeafId qb = h.leaf_begin(region.node[d]),
                 qe = h.leaf_end(region.node[d]);
          if (fb < qb || fe > qe) contains = false;
          if (fe <= qb || qe <= fb) overlaps = false;
        }
        counted = semantics == ImpreciseSemantics::kContains ? contains
                                                             : overlaps;
      }
      if (counted) {
        out.sum += fact.measure;
        out.count += 1;
      }
    }
  }
  switch (func) {
    case AggregateFunc::kSum:
      out.value = out.sum;
      break;
    case AggregateFunc::kCount:
      out.value = out.count;
      break;
    case AggregateFunc::kAverage:
      out.value = out.count > 0 ? out.sum / out.count : 0;
      break;
  }
  return out;
}

Result<std::vector<AggregateResult>> QueryEngine::RollUp(
    const QueryRegion& region, int dim, int level,
    AggregateFunc func) const {
  if (dim < 0 || dim >= schema_->num_dims()) {
    return Status::InvalidArgument("rollup dimension out of range");
  }
  const Hierarchy& h = schema_->dim(dim);
  if (level < 1 || level > h.num_levels()) {
    return Status::InvalidArgument("rollup level out of range");
  }
  std::vector<AggregateResult> groups(h.num_nodes_at_level(level));
  auto cursor = edb_->Scan(env_->pool());
  EdbRecord rec;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
    if (!CellInRegion(region, rec.leaf)) continue;
    AggregateResult& g = groups[h.LeafAncestorOrdinal(rec.leaf[dim], level)];
    g.sum += rec.weight * rec.measure;
    g.count += rec.weight;
  }
  for (AggregateResult& g : groups) {
    switch (func) {
      case AggregateFunc::kSum:
        g.value = g.sum;
        break;
      case AggregateFunc::kCount:
        g.value = g.count;
        break;
      case AggregateFunc::kAverage:
        g.value = g.count > 0 ? g.sum / g.count : 0;
        break;
    }
  }
  return groups;
}

Result<std::vector<EdbRecord>> QueryEngine::FactsIn(
    const QueryRegion& region) const {
  std::vector<EdbRecord> out;
  auto cursor = edb_->Scan(env_->pool());
  EdbRecord rec;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
    if (CellInRegion(region, rec.leaf)) out.push_back(rec);
  }
  return out;
}

Result<std::vector<EdbRecord>> QueryEngine::CompletionsOf(
    FactId fact_id) const {
  // Negative ids are never real facts — in particular fact_id = -1 would
  // otherwise match every maintenance tombstone (Definition 4).
  if (fact_id < 0) {
    return Status::InvalidArgument("CompletionsOf: fact_id must be >= 0");
  }
  std::vector<EdbRecord> out;
  auto cursor = edb_->Scan(env_->pool());
  EdbRecord rec;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
    if (rec.fact_id == fact_id) out.push_back(rec);
  }
  return out;
}

}  // namespace iolap
