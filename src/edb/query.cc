#include "edb/query.h"

#include <cstring>
#include <vector>

#include "edb/columnar.h"

namespace iolap {

namespace {

/// Containment filter restricted to the dimensions the region actually
/// constrains — the exact complement of the leaf columns a columnar scan
/// can skip. Equivalent to RegionContainsLeaf when every leaf is present.
struct ConstrainedFilter {
  ConstrainedFilter(const StarSchema& schema, const QueryRegion& region)
      : schema_(&schema), region_(&region) {
    for (int d = 0; d < schema.num_dims(); ++d) {
      filter_[d] = RegionConstrainsDim(schema, region, d);
    }
  }

  bool Contains(const int32_t* leaf) const {
    for (int d = 0; d < schema_->num_dims(); ++d) {
      if (filter_[d] &&
          !schema_->dim(d).Covers(region_->node[d], leaf[d])) {
        return false;
      }
    }
    return true;
  }

  const StarSchema* schema_;
  const QueryRegion* region_;
  bool filter_[kMaxDims] = {};
};

}  // namespace

Result<AggregateResult> QueryEngine::Aggregate(
    const QueryRegion& region, AggregateFunc func,
    ImpreciseSemantics semantics) const {
  AggregateResult out;
  if (semantics == ImpreciseSemantics::kAllocationWeighted) {
    if (columnar_ != nullptr) {
      const ConstrainedFilter filter(*schema_, region);
      IOLAP_RETURN_IF_ERROR(columnar_->ScanRows(
          env_->pool(), 0, -1,
          AggregateScanProjection(*schema_, region, /*group_dim=*/-1),
          [&](const ColumnarEdb::Row& row) {
            if (ColumnarEdb::IsTombstone(row.weight)) return;
            if (!filter.Contains(row.leaf)) return;
            AccumulateAggregate(&out, row.weight, row.measure);
          }));
      FinalizeAggregate(&out, func);
      return out;
    }
    auto cursor = edb_->Scan(env_->pool());
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
      if (!RegionContainsLeaf(*schema_, region, rec.leaf)) continue;
      AccumulateAggregate(&out, rec.weight, rec.measure);
    }
  } else {
    if (facts_ == nullptr) {
      return Status::FailedPrecondition(
          "None/Contains/Overlaps semantics require the original fact table");
    }
    const int k = schema_->num_dims();
    const Rect query_rect = RegionToRect(*schema_, region);
    auto cursor = facts_->Scan(env_->pool());
    FactRecord fact;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&fact));
      bool counted;
      if (fact.IsPrecise(k)) {
        int32_t leaf[kMaxDims] = {};
        for (int d = 0; d < k; ++d) {
          leaf[d] = schema_->dim(d).leaf_begin(fact.node[d]);
        }
        counted = RegionContainsLeaf(*schema_, region, leaf);
      } else if (semantics == ImpreciseSemantics::kNone) {
        counted = false;
      } else {
        Rect fact_rect;
        for (int d = 0; d < k; ++d) {
          const Hierarchy& h = schema_->dim(d);
          fact_rect.lo[d] = h.leaf_begin(fact.node[d]);
          fact_rect.hi[d] = h.leaf_end(fact.node[d]) - 1;
        }
        counted = semantics == ImpreciseSemantics::kContains
                      ? RectContains(query_rect, fact_rect, k)
                      : RectsIntersect(query_rect, fact_rect, k);
      }
      if (counted) AccumulateAggregate(&out, 1.0, fact.measure);
    }
  }
  FinalizeAggregate(&out, func);
  return out;
}

Result<std::vector<AggregateResult>> QueryEngine::RollUp(
    const QueryRegion& region, int dim, int level,
    AggregateFunc func) const {
  if (dim < 0 || dim >= schema_->num_dims()) {
    return Status::InvalidArgument("rollup dimension out of range");
  }
  const Hierarchy& h = schema_->dim(dim);
  if (level < 1 || level > h.num_levels()) {
    return Status::InvalidArgument("rollup level out of range");
  }
  std::vector<AggregateResult> groups(h.num_nodes_at_level(level));
  if (columnar_ != nullptr) {
    const ConstrainedFilter filter(*schema_, region);
    IOLAP_RETURN_IF_ERROR(columnar_->ScanRows(
        env_->pool(), 0, -1, AggregateScanProjection(*schema_, region, dim),
        [&](const ColumnarEdb::Row& row) {
          if (ColumnarEdb::IsTombstone(row.weight)) return;
          if (!filter.Contains(row.leaf)) return;
          AccumulateAggregate(&groups[h.LeafAncestorOrdinal(row.leaf[dim],
                                                            level)],
                              row.weight, row.measure);
        }));
  } else {
    auto cursor = edb_->Scan(env_->pool());
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
      if (!RegionContainsLeaf(*schema_, region, rec.leaf)) continue;
      AggregateResult& g = groups[h.LeafAncestorOrdinal(rec.leaf[dim], level)];
      AccumulateAggregate(&g, rec.weight, rec.measure);
    }
  }
  for (AggregateResult& g : groups) FinalizeAggregate(&g, func);
  return groups;
}

Result<std::vector<EdbRecord>> QueryEngine::FactsIn(
    const QueryRegion& region) const {
  std::vector<EdbRecord> out;
  if (columnar_ != nullptr) {
    // Provenance returns whole records, so every column is projected; the
    // savings here come from compression, not projection.
    IOLAP_RETURN_IF_ERROR(columnar_->ScanRows(
        env_->pool(), 0, -1, EdbProjection::All(schema_->num_dims()),
        [&](const ColumnarEdb::Row& row) {
          if (ColumnarEdb::IsTombstone(row.weight)) return;
          if (!RegionContainsLeaf(*schema_, region, row.leaf)) return;
          EdbRecord rec{};
          rec.fact_id = row.fact_id;
          rec.measure = row.measure;
          rec.weight = row.weight;
          std::memcpy(rec.leaf, row.leaf, sizeof(rec.leaf));
          out.push_back(rec);
        }));
    return out;
  }
  auto cursor = edb_->Scan(env_->pool());
  EdbRecord rec;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
    if (RegionContainsLeaf(*schema_, region, rec.leaf)) out.push_back(rec);
  }
  return out;
}

Result<std::vector<EdbRecord>> QueryEngine::CompletionsOf(
    FactId fact_id) const {
  // Negative ids are never real facts — in particular fact_id = -1 would
  // otherwise match every maintenance tombstone (Definition 4).
  if (fact_id < 0) {
    return Status::InvalidArgument("CompletionsOf: fact_id must be >= 0");
  }
  std::vector<EdbRecord> out;
  if (columnar_ != nullptr) {
    IOLAP_RETURN_IF_ERROR(columnar_->ScanRows(
        env_->pool(), 0, -1, EdbProjection::All(schema_->num_dims()),
        [&](const ColumnarEdb::Row& row) {
          if (ColumnarEdb::IsTombstone(row.weight)) return;
          if (row.fact_id != fact_id) return;
          EdbRecord rec{};
          rec.fact_id = row.fact_id;
          rec.measure = row.measure;
          rec.weight = row.weight;
          std::memcpy(rec.leaf, row.leaf, sizeof(rec.leaf));
          out.push_back(rec);
        }));
    return out;
  }
  auto cursor = edb_->Scan(env_->pool());
  EdbRecord rec;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
    if (rec.fact_id == fact_id) out.push_back(rec);
  }
  return out;
}

}  // namespace iolap
