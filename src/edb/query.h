#ifndef IOLAP_EDB_QUERY_H_
#define IOLAP_EDB_QUERY_H_

#include <cstdint>

#include "common/result.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"

namespace iolap {

enum class AggregateFunc { kSum, kCount, kAverage };

/// Semantics for aggregating over imprecise facts, following the companion
/// paper (VLDB'05). The allocation-based semantics is the one this paper's
/// Extended Database enables; None/Contains/Overlaps are the classical
/// baselines it improves on.
enum class ImpreciseSemantics {
  /// Weight each possible completion by its allocation p_{c,r} (uses D*).
  kAllocationWeighted,
  /// Ignore imprecise facts entirely (uses D).
  kNone,
  /// Count an imprecise fact fully iff its region is contained in the
  /// query region (uses D).
  kContains,
  /// Count an imprecise fact fully iff its region overlaps the query
  /// region (uses D).
  kOverlaps,
};

/// A rollup query region: one hierarchy node per dimension (the root / ALL
/// selects everything in that dimension).
struct QueryRegion {
  NodeId node[kMaxDims] = {};  // node 0 is always the root

  static QueryRegion All() { return QueryRegion{}; }
  QueryRegion& With(int dim, NodeId n) {
    node[dim] = n;
    return *this;
  }
};

struct AggregateResult {
  double sum = 0;
  double count = 0;
  double value = 0;  // the requested aggregate
};

/// Aggregation over the Extended Database (and optionally the original
/// fact table, for the baseline semantics).
class QueryEngine {
 public:
  QueryEngine(StorageEnv* env, const StarSchema* schema,
              const TypedFile<EdbRecord>* edb,
              const TypedFile<FactRecord>* facts = nullptr)
      : env_(env), schema_(schema), edb_(edb), facts_(facts) {}

  /// SUM / COUNT / AVERAGE of the measure over the query region under the
  /// given semantics. The baseline semantics require a fact table.
  Result<AggregateResult> Aggregate(const QueryRegion& region,
                                    AggregateFunc func,
                                    ImpreciseSemantics semantics =
                                        ImpreciseSemantics::kAllocationWeighted)
      const;

  /// GROUP BY one dimension at a hierarchy level (a rollup): one aggregate
  /// per node of `dim` at `level`, restricted to `region`, computed in a
  /// single EDB scan. Allocation-weighted semantics only (that is the
  /// point of the Extended Database). Results are indexed by node ordinal.
  Result<std::vector<AggregateResult>> RollUp(const QueryRegion& region,
                                              int dim, int level,
                                              AggregateFunc func) const;

  /// Provenance: every EDB row whose cell lies in `region` — i.e., the
  /// facts (and fractions of facts) behind an aggregate over that region.
  Result<std::vector<EdbRecord>> FactsIn(const QueryRegion& region) const;

  /// Provenance: where one fact's mass went — its possible completions
  /// with their allocation weights (one row, weight 1, for precise facts;
  /// empty for unallocatable facts).
  Result<std::vector<EdbRecord>> CompletionsOf(FactId fact_id) const;

 private:
  bool CellInRegion(const QueryRegion& region, const int32_t* leaf) const;

  StorageEnv* env_;
  const StarSchema* schema_;
  const TypedFile<EdbRecord>* edb_;
  const TypedFile<FactRecord>* facts_;
};

}  // namespace iolap

#endif  // IOLAP_EDB_QUERY_H_
