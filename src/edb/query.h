#ifndef IOLAP_EDB_QUERY_H_
#define IOLAP_EDB_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/result.h"
#include "model/records.h"
#include "model/schema.h"
#include "rtree/rtree.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"

namespace iolap {

class ColumnarEdb;

enum class AggregateFunc { kSum, kCount, kAverage, kMin, kMax };

/// Semantics for aggregating over imprecise facts, following the companion
/// paper (VLDB'05). The allocation-based semantics is the one this paper's
/// Extended Database enables; None/Contains/Overlaps are the classical
/// baselines it improves on.
enum class ImpreciseSemantics {
  /// Weight each possible completion by its allocation p_{c,r} (uses D*).
  kAllocationWeighted,
  /// Ignore imprecise facts entirely (uses D).
  kNone,
  /// Count an imprecise fact fully iff its region is contained in the
  /// query region (uses D).
  kContains,
  /// Count an imprecise fact fully iff its region overlaps the query
  /// region (uses D).
  kOverlaps,
};

/// A rollup query region: one hierarchy node per dimension (the root / ALL
/// selects everything in that dimension).
struct QueryRegion {
  NodeId node[kMaxDims] = {};  // node 0 is always the root

  static QueryRegion All() { return QueryRegion{}; }
  QueryRegion& With(int dim, NodeId n) {
    node[dim] = n;
    return *this;
  }
};

// ---------------------------------------------------------------------------
// Region geometry — the one home for query-region normalization,
// containment and intersection. QueryEngine's scan filter, the serve
// layer's AggregateCache invalidation, and the R-tree box checks all go
// through these helpers so the three can never disagree about what a
// region covers.

/// Does the cell with the given leaf coordinates lie inside `region`?
inline bool RegionContainsLeaf(const StarSchema& schema,
                               const QueryRegion& region,
                               const int32_t* leaf) {
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (!schema.dim(d).Covers(region.node[d], leaf[d])) return false;
  }
  return true;
}

/// Does `region` constrain dimension `d` at all, i.e. does its node exclude
/// at least one leaf? Unconstrained dimensions need no containment check —
/// and no leaf column at all on the columnar scan path.
inline bool RegionConstrainsDim(const StarSchema& schema,
                                const QueryRegion& region, int d) {
  const Hierarchy& h = schema.dim(d);
  return h.leaf_begin(region.node[d]) != 0 ||
         h.leaf_end(region.node[d]) != h.num_leaves();
}

/// The axis-aligned box of leaf ids `region` covers (bounds inclusive, the
/// same convention as the maintenance R-tree's component bounding boxes).
inline Rect RegionToRect(const StarSchema& schema, const QueryRegion& region) {
  Rect r;
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    r.lo[d] = h.leaf_begin(region.node[d]);
    r.hi[d] = h.leaf_end(region.node[d]) - 1;
  }
  return r;
}

/// Canonical form of a region: any node covering its dimension's full leaf
/// range is rewritten to the root, so regions selecting the same cells
/// share one representation (the serve cache keys on this).
inline QueryRegion NormalizeRegion(const StarSchema& schema,
                                   const QueryRegion& region) {
  QueryRegion out = region;
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    if (h.leaf_begin(out.node[d]) == 0 &&
        h.leaf_end(out.node[d]) == h.num_leaves()) {
      out.node[d] = h.root();
    }
  }
  for (int d = schema.num_dims(); d < kMaxDims; ++d) out.node[d] = 0;
  return out;
}

/// The inclusive leaf box a fact's (possibly imprecise) region covers —
/// the fact-record analogue of RegionToRect. The sharded serve layer uses
/// this to compute which shards a maintenance batch can touch before
/// applying it.
inline Rect FactRegionToRect(const StarSchema& schema,
                             const FactRecord& fact) {
  Rect r;
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    r.lo[d] = h.leaf_begin(fact.node[d]);
    r.hi[d] = h.leaf_end(fact.node[d]) - 1;
  }
  return r;
}

/// Does `region` intersect the leaf box `rect`? Used by the serve cache to
/// decide whether a maintenance batch's touched component boxes overlap a
/// cached result's region.
inline bool RegionIntersectsRect(const StarSchema& schema,
                                 const QueryRegion& region, const Rect& rect) {
  return RectsIntersect(RegionToRect(schema, region), rect,
                        schema.num_dims());
}

// ---------------------------------------------------------------------------
// Aggregate accumulation. One scan produces a raw (sum, count, min, max)
// accumulator; partitioned scans merge their partials in partition order;
// FinalizeAggregate then derives `value` and normalizes empty groups so
// callers never see a division by zero or an un-sampled infinity.

struct AggregateResult {
  double sum = 0;
  double count = 0;
  /// Extremes of the *measure* over matching rows (unweighted; a fact's
  /// measure is a property of the fact, not of its allocation split).
  /// +/-infinity until the first row; FinalizeAggregate turns an empty
  /// group's extremes into 0.
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double value = 0;  // the requested aggregate
};

/// Folds one matching row (EDB row with its allocation weight, or a
/// baseline-semantics fact with weight 1) into the accumulator.
inline void AccumulateAggregate(AggregateResult* acc, double weight,
                                double measure) {
  acc->sum += weight * measure;
  acc->count += weight;
  acc->min = std::min(acc->min, measure);
  acc->max = std::max(acc->max, measure);
}

/// Merges a partition's partial accumulator into `acc`. Merge partials in
/// ascending partition order so a partitioned scan is deterministic for a
/// fixed partition count.
inline void MergeAggregate(AggregateResult* acc, const AggregateResult& part) {
  acc->sum += part.sum;
  acc->count += part.count;
  acc->min = std::min(acc->min, part.min);
  acc->max = std::max(acc->max, part.max);
}

/// Derives `value` from the accumulator. An empty group (count == 0) is
/// well-defined: sum = count = value = 0 and the extremes are reset to 0
/// (never a 0/0 average, never an escaped infinity).
inline void FinalizeAggregate(AggregateResult* acc, AggregateFunc func) {
  if (acc->count <= 0) {
    acc->min = 0;
    acc->max = 0;
  }
  switch (func) {
    case AggregateFunc::kSum:
      acc->value = acc->sum;
      break;
    case AggregateFunc::kCount:
      acc->value = acc->count;
      break;
    case AggregateFunc::kAverage:
      acc->value = acc->count > 0 ? acc->sum / acc->count : 0;
      break;
    case AggregateFunc::kMin:
      acc->value = acc->min;
      break;
    case AggregateFunc::kMax:
      acc->value = acc->max;
      break;
  }
}

/// Aggregation over the Extended Database (and optionally the original
/// fact table, for the baseline semantics).
class QueryEngine {
 public:
  QueryEngine(StorageEnv* env, const StarSchema* schema,
              const TypedFile<EdbRecord>* edb,
              const TypedFile<FactRecord>* facts = nullptr)
      : env_(env), schema_(schema), edb_(edb), facts_(facts) {}

  /// Routes EDB scans through a columnar mirror of the same rows (in the
  /// same order): aggregates and rollups then decode only the columns they
  /// project, and answers stay byte-identical to the row path. Pass
  /// nullptr to return to row-major scans. The mirror must stay valid for
  /// the engine's lifetime; baseline-semantics fact scans are unaffected.
  void set_columnar(const ColumnarEdb* columnar) { columnar_ = columnar; }

  /// SUM / COUNT / AVERAGE / MIN / MAX of the measure over the query region
  /// under the given semantics. The baseline semantics require a fact table.
  Result<AggregateResult> Aggregate(const QueryRegion& region,
                                    AggregateFunc func,
                                    ImpreciseSemantics semantics =
                                        ImpreciseSemantics::kAllocationWeighted)
      const;

  /// GROUP BY one dimension at a hierarchy level (a rollup): one aggregate
  /// per node of `dim` at `level`, restricted to `region`, computed in a
  /// single EDB scan. Allocation-weighted semantics only (that is the
  /// point of the Extended Database). Results are indexed by node ordinal.
  Result<std::vector<AggregateResult>> RollUp(const QueryRegion& region,
                                              int dim, int level,
                                              AggregateFunc func) const;

  /// Provenance: every EDB row whose cell lies in `region` — i.e., the
  /// facts (and fractions of facts) behind an aggregate over that region.
  Result<std::vector<EdbRecord>> FactsIn(const QueryRegion& region) const;

  /// Provenance: where one fact's mass went — its possible completions
  /// with their allocation weights (one row, weight 1, for precise facts;
  /// empty for unallocatable facts).
  Result<std::vector<EdbRecord>> CompletionsOf(FactId fact_id) const;

 private:
  StorageEnv* env_;
  const StarSchema* schema_;
  const TypedFile<EdbRecord>* edb_;
  const TypedFile<FactRecord>* facts_;
  const ColumnarEdb* columnar_ = nullptr;
};

}  // namespace iolap

#endif  // IOLAP_EDB_QUERY_H_
