#include "edb/maintenance.h"

#include <algorithm>
#include <cstring>

#include "alloc/in_memory.h"
#include "alloc/preprocess.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace iolap {

namespace {

Rect RegionRect(const StarSchema& schema, const FactRecord& fact) {
  Rect r;
  for (int d = 0; d < schema.num_dims(); ++d) {
    r.lo[d] = schema.dim(d).leaf_begin(fact.node[d]);
    r.hi[d] = schema.dim(d).leaf_end(fact.node[d]) - 1;
  }
  return r;
}

std::array<int32_t, kMaxDims> LeafKeyOfPrecise(const StarSchema& schema,
                                               const FactRecord& fact) {
  std::array<int32_t, kMaxDims> key{};
  for (int d = 0; d < schema.num_dims(); ++d) {
    key[d] = schema.dim(d).leaf_begin(fact.node[d]);
  }
  return key;
}

bool LeafLess(const int32_t* a, const int32_t* b, int k) {
  for (int d = 0; d < k; ++d) {
    if (a[d] != b[d]) return a[d] < b[d];
  }
  return false;
}

constexpr int32_t kAbsorbedCcid = -2;

EdbRecord Tombstone() {
  EdbRecord rec;
  rec.fact_id = -1;
  rec.weight = 0;
  rec.measure = 0;
  return rec;
}

}  // namespace

Result<std::unique_ptr<MaintenanceManager>> MaintenanceManager::Build(
    StorageEnv& env, const StarSchema& schema, TypedFile<FactRecord>* facts,
    const AllocationOptions& options) {
  TraceSpan span("maint.build");
  auto manager = std::unique_ptr<MaintenanceManager>(
      new MaintenanceManager(&env, &schema));
  manager->options_ = options;
  manager->options_.algorithm = AlgorithmKind::kTransitive;

  IOLAP_ASSIGN_OR_RETURN(manager->data_,
                         PrepareDataset(env, schema, facts, manager->options_));
  manager->build_result_.num_cells = manager->data_.cells.size();
  manager->build_result_.num_precise = manager->data_.num_precise_facts;
  manager->build_result_.num_imprecise = manager->data_.num_imprecise_facts;
  manager->build_result_.num_tables =
      static_cast<int>(manager->data_.tables.size());
  manager->build_result_.edb = manager->data_.precise_edb;

  std::vector<ComponentInfo> info;
  Stopwatch watch;
  IOLAP_RETURN_IF_ERROR(RunTransitive(env, schema, &manager->data_,
                                      manager->options_,
                                      &manager->build_result_, &info));
  manager->build_result_.alloc_seconds = watch.ElapsedSeconds();

  // Translate the build's component directory into the overlay model and
  // bulk-load the R-tree (Section 9's index over component bounding boxes).
  IOLAP_ASSIGN_OR_RETURN(
      PagedRTree tree,
      PagedRTree::Create(&env.disk(), &env.pool(), schema.num_dims()));
  manager->rtree_ = std::make_unique<PagedRTree>(std::move(tree));
  manager->directory_.reserve(info.size());
  manager->singleton_begin_ = 0;
  for (size_t i = 0; i < info.size(); ++i) {
    const ComponentInfo& c = info[i];
    MaintComponent m;
    m.cell_segments.push_back({c.cell_begin, c.cell_end});
    m.entry_segments.push_back({c.entry_begin, c.entry_end});
    m.bbox = Rect::Of(c.bbox_lo, c.bbox_hi, schema.num_dims());
    m.edb_ranges.push_back({c.edb_begin, c.edb_end});
    manager->directory_.push_back(std::move(m));
    IOLAP_RETURN_IF_ERROR(manager->rtree_->Insert(
        manager->directory_.back().bbox, static_cast<int64_t>(i)));
    manager->singleton_begin_ =
        std::max(manager->singleton_begin_, c.cell_end);
  }
  return manager;
}

Result<int64_t> MaintenanceManager::FindSingletonCell(const LeafKey& key) {
  const int k = schema_->num_dims();
  int64_t lo = singleton_begin_;
  int64_t hi = data_.cells.size();
  while (lo < hi) {
    int64_t mid = (lo + hi) / 2;
    IOLAP_ASSIGN_OR_RETURN(CellRecord cell, data_.cells.Get(env_->pool(), mid));
    if (LeafLess(cell.leaf, key.data(), k)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= data_.cells.size()) return int64_t{-1};
  IOLAP_ASSIGN_OR_RETURN(CellRecord cell, data_.cells.Get(env_->pool(), lo));
  if (std::memcmp(cell.leaf, key.data(), sizeof(cell.leaf)) != 0 ||
      cell.ccid == kAbsorbedCcid) {
    return int64_t{-1};
  }
  return lo;
}

Status MaintenanceManager::AbsorbCoveredCells(const FactRecord& fact,
                                              std::vector<CellRecord>* out) {
  const int k = schema_->num_dims();
  // Narrow the singleton scan to the region's canonical key range.
  LeafKey start{}, end{};
  for (int d = 0; d < k; ++d) {
    start[d] = schema_->dim(d).leaf_begin(fact.node[d]);
    end[d] = schema_->dim(d).leaf_end(fact.node[d]) - 1;
  }
  int64_t lo = singleton_begin_, hi = data_.cells.size();
  {
    int64_t a = lo, b = hi;
    while (a < b) {
      int64_t mid = (a + b) / 2;
      IOLAP_ASSIGN_OR_RETURN(CellRecord cell,
                             data_.cells.Get(env_->pool(), mid));
      if (LeafLess(cell.leaf, start.data(), k)) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    lo = a;
  }
  auto cursor = data_.cells.MutableScan(env_->pool(), lo, hi);
  CellRecord cell;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Read(&cell));
    if (LeafLess(end.data(), cell.leaf, k)) break;  // past the region's range
    if (cell.ccid == -1 && RegionCovers(*schema_, fact.node, cell.leaf)) {
      CellRecord copy = cell;
      copy.ccid = -1;
      out->push_back(copy);
      cell.ccid = kAbsorbedCcid;  // the overlay copy is now authoritative
      IOLAP_RETURN_IF_ERROR(cursor.Write(cell));
    }
    cursor.Advance();
  }
  // Loose cells (added after the build).
  for (auto it = loose_cells_.begin(); it != loose_cells_.end();) {
    if (RegionCovers(*schema_, fact.node, it->leaf)) {
      out->push_back(*it);
      it = loose_cells_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

Status MaintenanceManager::ReallocateComponent(
    int64_t comp, std::map<LeafKey, double>* delta_adjust,
    std::vector<CellRecord>* candidate_cells, MaintenanceStats* stats) {
  TraceSpan span("maint.reallocate_component");
  span.AddArg("comp", comp);
  MaintComponent& c = directory_[comp];
  BufferPool& pool = env_->pool();
  ++stats->components_touched;

  // ---- Fetch cells (apply + persist pending δ adjustments). If an
  // adjustment lands on an existing cell, a same-key candidate (from a
  // precise insert whose cell location was unknown) is redundant: drop it.
  std::vector<CellRecord> cells;
  std::set<LeafKey> present;
  auto apply_adjust = [&](CellRecord* cell) -> bool {
    if (delta_adjust == nullptr || delta_adjust->empty()) return false;
    LeafKey key{};
    std::memcpy(key.data(), cell->leaf, sizeof(cell->leaf));
    auto it = delta_adjust->find(key);
    if (it == delta_adjust->end()) return false;
    cell->delta0 += it->second;
    delta_adjust->erase(it);
    if (candidate_cells != nullptr) {
      candidate_cells->erase(
          std::remove_if(candidate_cells->begin(), candidate_cells->end(),
                         [&](const CellRecord& cand) {
                           return std::memcmp(cand.leaf, key.data(),
                                              sizeof(cand.leaf)) == 0;
                         }),
          candidate_cells->end());
    }
    return true;
  };
  for (auto [begin, end] : c.cell_segments) {
    auto cursor = data_.cells.MutableScan(pool, begin, end);
    CellRecord cell;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Read(&cell));
      if (apply_adjust(&cell)) {
        IOLAP_RETURN_IF_ERROR(cursor.Write(cell));
      }
      cell.delta_prev = cell.delta0;  // fresh EM start, as a rebuild would
      LeafKey key{};
      std::memcpy(key.data(), cell.leaf, sizeof(cell.leaf));
      present.insert(key);
      cells.push_back(cell);
      cursor.Advance();
    }
  }
  for (CellRecord& overlay : c.overlay_cells) {
    apply_adjust(&overlay);  // persists in the directory's overlay copy
    CellRecord cell = overlay;
    cell.delta_prev = cell.delta0;
    LeafKey key{};
    std::memcpy(key.data(), cell.leaf, sizeof(cell.leaf));
    present.insert(key);
    cells.push_back(cell);
  }
  // Candidate cells join the fetch unless already present. They are
  // identified by leaf key afterwards (MemoryAllocator sorts its cells).
  const size_t candidate_start = cells.size();
  std::vector<LeafKey> candidate_keys;
  if (candidate_cells != nullptr) {
    for (size_t i = 0; i < candidate_cells->size(); ++i) {
      LeafKey key{};
      std::memcpy(key.data(), (*candidate_cells)[i].leaf,
                  sizeof((*candidate_cells)[i].leaf));
      if (present.count(key) != 0) continue;
      CellRecord cell = (*candidate_cells)[i];
      cell.delta_prev = cell.delta0;
      cells.push_back(cell);
      candidate_keys.push_back(key);
    }
  }

  // ---- Fetch entries (skip tombstoned facts).
  std::vector<ImpreciseRecord> entries;
  for (auto [begin, end] : c.entry_segments) {
    auto cursor = data_.imprecise.Scan(pool, begin, end);
    ImpreciseRecord e;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&e));
      if (c.deleted.count(e.fact_id) == 0) entries.push_back(e);
    }
  }
  for (const ImpreciseRecord& e : c.overlay_entries) {
    if (c.deleted.count(e.fact_id) == 0) entries.push_back(e);
  }
  stats->tuples_fetched += static_cast<int64_t>(cells.size() + entries.size());

  std::vector<EdbRecord> rows;
  if (entries.empty()) {
    // The component dissolved: its cells go back to the loose pool so
    // future imprecise inserts can still find them.
    for (size_t i = 0; i < candidate_start; ++i) {
      cells[i].ccid = -1;
      loose_cells_.push_back(cells[i]);
    }
    c.alive = false;
    bool removed_ok = false;
    IOLAP_RETURN_IF_ERROR(rtree_->Remove(c.bbox, comp, &removed_ok));
  } else {
    // ---- Re-allocate from scratch and collect the rows.
    MemoryAllocator ma(schema_, std::move(cells), std::move(entries));
    ma.Iterate(options_.epsilon, options_.EffectiveMaxIterations(),
               /*force_all_iterations=*/false);
    int64_t unallocatable = 0;
    ma.EmitToVector(&rows, &unallocatable);

    // Candidates covered by this component's facts join it for good.
    if (candidate_cells != nullptr && !candidate_keys.empty()) {
      std::vector<bool> covered(ma.cells().size(), false);
      for (const auto& edge_list : ma.edges()) {
        for (int32_t ci : edge_list) covered[ci] = true;
      }
      std::set<LeafKey> claimed;
      for (const LeafKey& key : candidate_keys) {
        for (size_t ci = 0; ci < ma.cells().size(); ++ci) {
          if (!covered[ci]) continue;
          if (std::memcmp(ma.cells()[ci].leaf, key.data(),
                          sizeof(int32_t) * kMaxDims) == 0) {
            c.overlay_cells.push_back(ma.cells()[ci]);
            claimed.insert(key);
            break;
          }
        }
      }
      candidate_cells->erase(
          std::remove_if(candidate_cells->begin(), candidate_cells->end(),
                         [&](const CellRecord& cand) {
                           LeafKey key{};
                           std::memcpy(key.data(), cand.leaf,
                                       sizeof(cand.leaf));
                           return claimed.count(key) != 0;
                         }),
          candidate_cells->end());
    }
  }

  // ---- Report the row turnover before the splice overwrites the old rows
  // (the scan pins the same pages the Puts below are about to pin).
  if (listener_ != nullptr) {
    for (auto [begin, end] : c.edb_ranges) {
      auto cursor = build_result_.edb.Scan(pool, begin, end);
      EdbRecord old;
      while (!cursor.done()) {
        IOLAP_RETURN_IF_ERROR(cursor.Next(&old));
        if (old.weight == 0 && old.fact_id == -1) continue;  // tombstone
        listener_->OnRemove(old);
      }
    }
    for (const EdbRecord& row : rows) listener_->OnAdd(row);
  }

  // ---- Splice the rows into the component's EDB ranges.
  size_t next_row = 0;
  std::vector<std::pair<int64_t, int64_t>> new_ranges;
  for (auto [begin, end] : c.edb_ranges) {
    int64_t at = begin;
    while (at < end && next_row < rows.size()) {
      IOLAP_RETURN_IF_ERROR(
          build_result_.edb.Put(pool, at, rows[next_row]));
      ++at;
      ++next_row;
      ++stats->edb_rows_rewritten;
    }
    if (at > begin) new_ranges.push_back({begin, at});
    while (at < end) {
      IOLAP_RETURN_IF_ERROR(build_result_.edb.Put(pool, at, Tombstone()));
      ++at;
      ++stats->edb_rows_tombstoned;
    }
  }
  if (next_row < rows.size()) {
    int64_t begin = build_result_.edb.size();
    auto appender = build_result_.edb.MakeAppender(pool);
    while (next_row < rows.size()) {
      IOLAP_RETURN_IF_ERROR(appender.Append(rows[next_row]));
      ++next_row;
      ++stats->edb_rows_appended;
    }
    appender.Close();
    new_ranges.push_back({begin, build_result_.edb.size()});
  }
  c.edb_ranges = std::move(new_ranges);
  return Status::Ok();
}

Status MaintenanceManager::ApplyUpdates(const std::vector<FactUpdate>& updates,
                                        MaintenanceStats* stats) {
  TraceSpan span("maint.apply_updates");
  span.AddArg("updates", static_cast<int64_t>(updates.size()));
  const int k = schema_->num_dims();
  BufferPool& pool = env_->pool();
  Stopwatch watch;
  IoStats io_before = env_->disk().stats();

  std::unordered_map<FactId, const FactUpdate*> by_id;
  std::map<LeafKey, double> delta_adjust;
  bool any_precise = false;
  for (const FactUpdate& u : updates) {
    by_id[u.before.fact_id] = &u;
    if (u.before.IsPrecise(k)) {
      any_precise = true;
      if (options_.policy == PolicyKind::kMeasure) {
        delta_adjust[LeafKeyOfPrecise(*schema_, u.before)] +=
            u.new_measure - u.before.measure;
      }
    }
  }
  stats->updates_applied += static_cast<int64_t>(updates.size());

  // New measures must reach the stored imprecise records (and overlays)
  // before re-allocation; segments are patched during the fetch below, so
  // patch overlays and the imprecise file directly here for *affected*
  // components only — measure changes of imprecise facts do not alter
  // weights, only the emitted rows, so patching affected components before
  // their re-emission suffices.
  std::set<int64_t> affected;
  rtree_->ResetStats();
  for (const FactUpdate& u : updates) {
    const Rect rect = RegionRect(*schema_, u.before);
    stats->touched_boxes.push_back(rect);
    std::vector<int64_t> hits;
    IOLAP_RETURN_IF_ERROR(rtree_->Search(rect, &hits));
    for (int64_t h : hits) {
      if (directory_[h].alive) {
        affected.insert(h);
        stats->touched_boxes.push_back(directory_[h].bbox);
      }
    }
  }
  stats->rtree_nodes_accessed += rtree_->nodes_accessed();

  for (int64_t comp : affected) {
    MaintComponent& c = directory_[comp];
    // Patch imprecise measures in the stored segments and overlays.
    for (auto [begin, end] : c.entry_segments) {
      auto cursor = data_.imprecise.MutableScan(pool, begin, end);
      ImpreciseRecord e;
      while (!cursor.done()) {
        IOLAP_RETURN_IF_ERROR(cursor.Read(&e));
        auto it = by_id.find(e.fact_id);
        if (it != by_id.end() && !it->second->before.IsPrecise(k)) {
          e.measure = it->second->new_measure;
          IOLAP_RETURN_IF_ERROR(cursor.Write(e));
        }
        cursor.Advance();
      }
    }
    for (ImpreciseRecord& e : c.overlay_entries) {
      auto it = by_id.find(e.fact_id);
      if (it != by_id.end() && !it->second->before.IsPrecise(k)) {
        e.measure = it->second->new_measure;
      }
    }
    IOLAP_RETURN_IF_ERROR(
        ReallocateComponent(comp, &delta_adjust, nullptr, stats));
  }

  // δ shifts of precise facts outside any component (singleton cells).
  for (auto& [key, shift] : delta_adjust) {
    IOLAP_ASSIGN_OR_RETURN(int64_t index, FindSingletonCell(key));
    if (index >= 0) {
      IOLAP_ASSIGN_OR_RETURN(CellRecord cell, data_.cells.Get(pool, index));
      cell.delta0 += shift;
      cell.delta_prev = cell.delta0;
      IOLAP_RETURN_IF_ERROR(data_.cells.Put(pool, index, cell));
    } else {
      for (CellRecord& cell : loose_cells_) {
        if (std::memcmp(cell.leaf, key.data(), sizeof(cell.leaf)) == 0) {
          cell.delta0 += shift;
          cell.delta_prev = cell.delta0;
        }
      }
    }
  }

  // Refresh measures of updated precise facts' EDB rows.
  if (any_precise) {
    // Compaction may have shrunk the precise prefix; reading a few rows
    // beyond it is harmless (ids are unique), reading past EOF is not.
    auto cursor = build_result_.edb.MutableScan(
        pool, 0, std::min(build_result_.num_precise, build_result_.edb.size()));
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Read(&rec));
      auto it = by_id.find(rec.fact_id);
      if (it != by_id.end() && it->second->before.IsPrecise(k)) {
        if (listener_ != nullptr) listener_->OnRemove(rec);
        rec.measure = it->second->new_measure;
        IOLAP_RETURN_IF_ERROR(cursor.Write(rec));
        if (listener_ != nullptr) listener_->OnAdd(rec);
        ++stats->edb_rows_rewritten;
      }
      cursor.Advance();
    }
    for (const FactUpdate& u : updates) {
      auto it = extra_precise_rows_.find(u.before.fact_id);
      if (it != extra_precise_rows_.end() && u.before.IsPrecise(k)) {
        IOLAP_ASSIGN_OR_RETURN(EdbRecord rec,
                               build_result_.edb.Get(pool, it->second));
        if (listener_ != nullptr) listener_->OnRemove(rec);
        rec.measure = u.new_measure;
        IOLAP_RETURN_IF_ERROR(
            build_result_.edb.Put(pool, it->second, rec));
        if (listener_ != nullptr) listener_->OnAdd(rec);
      }
    }
  }
  IOLAP_RETURN_IF_ERROR(pool.FlushAll());

  stats->seconds += watch.ElapsedSeconds();
  stats->io += env_->disk().stats() - io_before;
  return Status::Ok();
}

Status MaintenanceManager::InsertFacts(const std::vector<FactRecord>& inserts,
                                       MaintenanceStats* stats) {
  TraceSpan span("maint.insert_facts");
  span.AddArg("inserts", static_cast<int64_t>(inserts.size()));
  const int k = schema_->num_dims();
  BufferPool& pool = env_->pool();
  Stopwatch watch;
  IoStats io_before = env_->disk().stats();
  stats->inserts_applied += static_cast<int64_t>(inserts.size());

  std::set<int64_t> affected;
  std::map<LeafKey, double> delta_adjust;
  std::vector<CellRecord> candidates;

  // ---- Imprecise inserts first: they may merge components.
  for (const FactRecord& f : inserts) {
    if (f.IsPrecise(k)) continue;
    stats->touched_boxes.push_back(RegionRect(*schema_, f));
    std::vector<int64_t> hits;
    IOLAP_RETURN_IF_ERROR(rtree_->Search(RegionRect(*schema_, f), &hits));
    std::vector<int64_t> alive_hits;
    for (int64_t h : hits) {
      if (directory_[h].alive) {
        alive_hits.push_back(h);
        stats->touched_boxes.push_back(directory_[h].bbox);
      }
    }

    MaintComponent merged;
    for (int64_t h : alive_hits) {
      MaintComponent& old = directory_[h];
      merged.cell_segments.insert(merged.cell_segments.end(),
                                  old.cell_segments.begin(),
                                  old.cell_segments.end());
      merged.entry_segments.insert(merged.entry_segments.end(),
                                   old.entry_segments.begin(),
                                   old.entry_segments.end());
      merged.overlay_cells.insert(merged.overlay_cells.end(),
                                  old.overlay_cells.begin(),
                                  old.overlay_cells.end());
      merged.overlay_entries.insert(merged.overlay_entries.end(),
                                    old.overlay_entries.begin(),
                                    old.overlay_entries.end());
      merged.deleted.insert(old.deleted.begin(), old.deleted.end());
      merged.edb_ranges.insert(merged.edb_ranges.end(),
                               old.edb_ranges.begin(), old.edb_ranges.end());
      old.alive = false;
      bool removed_ok = false;
      IOLAP_RETURN_IF_ERROR(rtree_->Remove(old.bbox, h, &removed_ok));
      affected.erase(h);
    }
    if (alive_hits.size() > 1) {
      stats->components_merged +=
          static_cast<int64_t>(alive_hits.size()) - 1;
    }
    // Absorb covered cells that lived outside every component.
    IOLAP_RETURN_IF_ERROR(AbsorbCoveredCells(f, &merged.overlay_cells));
    // The new fact itself.
    ImpreciseRecord rec;
    rec.fact_id = f.fact_id;
    rec.measure = f.measure;
    std::memcpy(rec.node, f.node, sizeof(rec.node));
    std::memcpy(rec.level, f.level, sizeof(rec.level));
    merged.overlay_entries.push_back(rec);
    // Bounding box: union of everything merged plus the new region.
    Rect bbox = RegionRect(*schema_, f);
    for (int64_t h : alive_hits) {
      const Rect& old = directory_[h].bbox;
      for (int d = 0; d < k; ++d) {
        bbox.lo[d] = std::min(bbox.lo[d], old.lo[d]);
        bbox.hi[d] = std::max(bbox.hi[d], old.hi[d]);
      }
    }
    merged.bbox = bbox;
    int64_t id = static_cast<int64_t>(directory_.size());
    directory_.push_back(std::move(merged));
    IOLAP_RETURN_IF_ERROR(rtree_->Insert(directory_.back().bbox, id));
    affected.insert(id);
  }

  // ---- Precise inserts: adjust δ (or create cells) and append EDB rows.
  auto edb_appender = build_result_.edb.MakeAppender(pool);
  for (const FactRecord& f : inserts) {
    if (!f.IsPrecise(k)) continue;
    AllocationOptions policy = options_;
    const double contribution = policy.DeltaContribution(f);
    LeafKey key = LeafKeyOfPrecise(*schema_, f);

    bool found = false;
    for (CellRecord& cell : loose_cells_) {
      if (std::memcmp(cell.leaf, key.data(), sizeof(cell.leaf)) == 0) {
        cell.delta0 += contribution;
        cell.delta_prev = cell.delta0;
        found = true;
        break;
      }
    }
    if (!found) {
      IOLAP_ASSIGN_OR_RETURN(int64_t index, FindSingletonCell(key));
      if (index >= 0) {
        IOLAP_ASSIGN_OR_RETURN(CellRecord cell, data_.cells.Get(pool, index));
        cell.delta0 += contribution;
        cell.delta_prev = cell.delta0;
        IOLAP_RETURN_IF_ERROR(data_.cells.Put(pool, index, cell));
        found = true;
      }
    }
    if (!found) {
      // Unknown cell: either inside a component (resolved by the pending
      // δ adjustment during fetch) or genuinely new (the candidate is
      // claimed by a covering component or becomes a loose cell).
      delta_adjust[key] += contribution;
      bool have_candidate = false;
      for (CellRecord& cell : candidates) {
        if (std::memcmp(cell.leaf, key.data(), sizeof(cell.leaf)) == 0) {
          cell.delta0 += contribution;
          cell.delta_prev = cell.delta0;
          have_candidate = true;
          break;
        }
      }
      if (!have_candidate) {
        CellRecord cell;
        std::memcpy(cell.leaf, key.data(), sizeof(cell.leaf));
        cell.delta0 = policy.DeltaBase() + contribution;
        cell.delta_prev = cell.delta0;
        candidates.push_back(cell);
      }
    }
    // The precise fact's own EDB row.
    EdbRecord row;
    row.fact_id = f.fact_id;
    row.measure = f.measure;
    row.weight = 1.0;
    std::memcpy(row.leaf, key.data(), sizeof(row.leaf));
    extra_precise_rows_[f.fact_id] = build_result_.edb.size();
    IOLAP_RETURN_IF_ERROR(edb_appender.Append(row));
    if (listener_ != nullptr) listener_->OnAdd(row);
    ++stats->edb_rows_appended;

    stats->touched_boxes.push_back(RegionRect(*schema_, f));
    std::vector<int64_t> hits;
    IOLAP_RETURN_IF_ERROR(rtree_->Search(RegionRect(*schema_, f), &hits));
    for (int64_t h : hits) {
      if (directory_[h].alive) {
        affected.insert(h);
        stats->touched_boxes.push_back(directory_[h].bbox);
      }
    }
  }
  edb_appender.Close();

  // If a candidate cell turns out adjacent (covered) to *several* affected
  // components, those components belong together — merge them first so the
  // claim below is unique (a rebuild would have found them connected).
  if (!candidates.empty()) {
    for (const CellRecord& cand : candidates) {
      std::vector<int64_t> covering;
      for (int64_t comp : affected) {
        if (!directory_[comp].alive) continue;
        bool covers = false;
        for (auto [begin, end] : directory_[comp].entry_segments) {
          auto cursor = data_.imprecise.Scan(pool, begin, end);
          ImpreciseRecord e;
          while (!cursor.done() && !covers) {
            IOLAP_RETURN_IF_ERROR(cursor.Next(&e));
            if (directory_[comp].deleted.count(e.fact_id) == 0 &&
                RegionCovers(*schema_, e.node, cand.leaf)) {
              covers = true;
            }
          }
          if (covers) break;
        }
        for (const ImpreciseRecord& e : directory_[comp].overlay_entries) {
          if (covers) break;
          if (directory_[comp].deleted.count(e.fact_id) == 0 &&
              RegionCovers(*schema_, e.node, cand.leaf)) {
            covers = true;
          }
        }
        if (covers) covering.push_back(comp);
      }
      if (covering.size() > 1) {
        // Merge all covering components into the first.
        MaintComponent& target = directory_[covering[0]];
        bool removed_ok = false;
        IOLAP_RETURN_IF_ERROR(
            rtree_->Remove(target.bbox, covering[0], &removed_ok));
        for (size_t i = 1; i < covering.size(); ++i) {
          MaintComponent& old = directory_[covering[i]];
          target.cell_segments.insert(target.cell_segments.end(),
                                      old.cell_segments.begin(),
                                      old.cell_segments.end());
          target.entry_segments.insert(target.entry_segments.end(),
                                       old.entry_segments.begin(),
                                       old.entry_segments.end());
          target.overlay_cells.insert(target.overlay_cells.end(),
                                      old.overlay_cells.begin(),
                                      old.overlay_cells.end());
          target.overlay_entries.insert(target.overlay_entries.end(),
                                        old.overlay_entries.begin(),
                                        old.overlay_entries.end());
          target.deleted.insert(old.deleted.begin(), old.deleted.end());
          target.edb_ranges.insert(target.edb_ranges.end(),
                                   old.edb_ranges.begin(),
                                   old.edb_ranges.end());
          for (int d = 0; d < k; ++d) {
            target.bbox.lo[d] = std::min(target.bbox.lo[d], old.bbox.lo[d]);
            target.bbox.hi[d] = std::max(target.bbox.hi[d], old.bbox.hi[d]);
          }
          old.alive = false;
          IOLAP_RETURN_IF_ERROR(
              rtree_->Remove(old.bbox, covering[i], &removed_ok));
          affected.erase(covering[i]);
          ++stats->components_merged;
        }
        IOLAP_RETURN_IF_ERROR(rtree_->Insert(target.bbox, covering[0]));
      }
    }
  }

  // ---- Re-allocate every affected component.
  for (int64_t comp : affected) {
    if (!directory_[comp].alive) continue;
    IOLAP_RETURN_IF_ERROR(
        ReallocateComponent(comp, &delta_adjust, &candidates, stats));
  }
  // Unclaimed candidates are genuinely isolated new cells.
  for (const CellRecord& cell : candidates) {
    LeafKey key{};
    std::memcpy(key.data(), cell.leaf, sizeof(cell.leaf));
    delta_adjust.erase(key);
    loose_cells_.push_back(cell);
  }
  IOLAP_RETURN_IF_ERROR(pool.FlushAll());

  stats->seconds += watch.ElapsedSeconds();
  stats->io += env_->disk().stats() - io_before;
  return Status::Ok();
}

Status MaintenanceManager::DeleteFacts(const std::vector<FactRecord>& deletes,
                                       MaintenanceStats* stats) {
  TraceSpan span("maint.delete_facts");
  span.AddArg("deletes", static_cast<int64_t>(deletes.size()));
  const int k = schema_->num_dims();
  BufferPool& pool = env_->pool();
  Stopwatch watch;
  IoStats io_before = env_->disk().stats();
  stats->deletes_applied += static_cast<int64_t>(deletes.size());

  std::set<int64_t> affected;
  std::map<LeafKey, double> delta_adjust;
  std::set<FactId> deleted_precise;

  for (const FactRecord& f : deletes) {
    stats->touched_boxes.push_back(RegionRect(*schema_, f));
    std::vector<int64_t> hits;
    IOLAP_RETURN_IF_ERROR(rtree_->Search(RegionRect(*schema_, f), &hits));
    std::vector<int64_t> alive_hits;
    for (int64_t h : hits) {
      if (directory_[h].alive) {
        alive_hits.push_back(h);
        stats->touched_boxes.push_back(directory_[h].bbox);
      }
    }
    if (f.IsPrecise(k)) {
      deleted_precise.insert(f.fact_id);
      AllocationOptions policy = options_;
      const double contribution = policy.DeltaContribution(f);
      LeafKey key = LeafKeyOfPrecise(*schema_, f);
      bool found = false;
      for (CellRecord& cell : loose_cells_) {
        if (std::memcmp(cell.leaf, key.data(), sizeof(cell.leaf)) == 0) {
          cell.delta0 -= contribution;
          cell.delta_prev = cell.delta0;
          found = true;
          break;
        }
      }
      if (!found) {
        IOLAP_ASSIGN_OR_RETURN(int64_t index, FindSingletonCell(key));
        if (index >= 0) {
          IOLAP_ASSIGN_OR_RETURN(CellRecord cell,
                                 data_.cells.Get(pool, index));
          cell.delta0 -= contribution;
          cell.delta_prev = cell.delta0;
          IOLAP_RETURN_IF_ERROR(data_.cells.Put(pool, index, cell));
          found = true;
        }
      }
      if (!found) {
        delta_adjust[key] -= contribution;  // lives inside a component
      }
      // Remove the fact's own EDB row.
      auto it = extra_precise_rows_.find(f.fact_id);
      if (it != extra_precise_rows_.end()) {
        if (listener_ != nullptr) {
          IOLAP_ASSIGN_OR_RETURN(EdbRecord old,
                                 build_result_.edb.Get(pool, it->second));
          listener_->OnRemove(old);
        }
        IOLAP_RETURN_IF_ERROR(
            build_result_.edb.Put(pool, it->second, Tombstone()));
        extra_precise_rows_.erase(it);
        ++stats->edb_rows_tombstoned;
        deleted_precise.erase(f.fact_id);  // already handled
      }
    } else {
      // Tombstone the imprecise fact in whichever component holds it.
      for (int64_t h : alive_hits) {
        directory_[h].deleted.insert(f.fact_id);
      }
    }
    for (int64_t h : alive_hits) affected.insert(h);
  }

  // Batch-tombstone deleted precise rows in the build prefix.
  if (!deleted_precise.empty()) {
    auto cursor = build_result_.edb.MutableScan(
        pool, 0, std::min(build_result_.num_precise, build_result_.edb.size()));
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Read(&rec));
      if (deleted_precise.count(rec.fact_id) != 0 &&
          !(rec.weight == 0 && rec.fact_id == -1)) {
        if (listener_ != nullptr) listener_->OnRemove(rec);
        IOLAP_RETURN_IF_ERROR(cursor.Write(Tombstone()));
        ++stats->edb_rows_tombstoned;
      }
      cursor.Advance();
    }
  }

  for (int64_t comp : affected) {
    if (!directory_[comp].alive) continue;
    IOLAP_RETURN_IF_ERROR(
        ReallocateComponent(comp, &delta_adjust, nullptr, stats));
  }
  IOLAP_RETURN_IF_ERROR(pool.FlushAll());

  stats->seconds += watch.ElapsedSeconds();
  stats->io += env_->disk().stats() - io_before;
  return Status::Ok();
}

Result<int64_t> MaintenanceManager::CompactEdb() {
  TraceSpan span("maint.compact_edb");
  BufferPool& pool = env_->pool();
  IOLAP_ASSIGN_OR_RETURN(auto compact, TypedFile<EdbRecord>::Create(
                                           env_->disk(), "edb_compact"));
  // Old index -> new index for every surviving row, tracked per range
  // boundary: collect all live directory ranges.
  struct RangeRef {
    int64_t begin, end;
    int64_t comp;
    size_t range_index;
  };
  std::vector<RangeRef> refs;
  for (size_t i = 0; i < directory_.size(); ++i) {
    if (!directory_[i].alive) continue;
    for (size_t r = 0; r < directory_[i].edb_ranges.size(); ++r) {
      refs.push_back(RangeRef{directory_[i].edb_ranges[r].first,
                              directory_[i].edb_ranges[r].second,
                              static_cast<int64_t>(i), r});
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const RangeRef& a, const RangeRef& b) {
              return a.begin < b.begin;
            });

  int64_t removed = 0;
  {
    auto appender = compact.MakeAppender(pool);
    auto cursor = build_result_.edb.Scan(pool);
    EdbRecord rec;
    size_t ref = 0;
    int64_t old_index = 0;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      while (ref < refs.size() && refs[ref].end <= old_index) ++ref;
      bool in_range =
          ref < refs.size() && old_index >= refs[ref].begin;
      bool live = !(rec.weight == 0 && rec.fact_id == -1);
      if (live) {
        if (in_range && old_index == refs[ref].begin) {
          directory_[refs[ref].comp].edb_ranges[refs[ref].range_index].first =
              compact.size();
        }
        auto it = extra_precise_rows_.find(rec.fact_id);
        if (it != extra_precise_rows_.end() && it->second == old_index) {
          it->second = compact.size();
        }
        IOLAP_RETURN_IF_ERROR(appender.Append(rec));
        if (in_range) {
          directory_[refs[ref].comp].edb_ranges[refs[ref].range_index].second =
              compact.size();
        }
      } else {
        ++removed;
      }
      ++old_index;
    }
    appender.Close();
  }
  // Ranges that begin with a tombstone never updated `first`; normalize any
  // empty ranges (all rows dead).
  // (Rows inside a live range are never tombstoned except at its tail, so
  // the begin/end updates above are sufficient for non-empty ranges.)
  IOLAP_RETURN_IF_ERROR(pool.EvictFile(build_result_.edb.file_id()));
  IOLAP_RETURN_IF_ERROR(env_->disk().DeleteFile(build_result_.edb.file_id()));
  build_result_.edb = compact;
  return removed;
}

}  // namespace iolap
