#include "edb/columnar.h"

#include <cstring>
#include <string>

namespace iolap {
namespace {

constexpr int64_t kPS = static_cast<int64_t>(kPageSize);

/// Copies stream bytes [range.begin, range.end) of a column whose pages
/// start at absolute page `base` into `buf`, pinning only the covering
/// pages.
Status FetchStreamBytes(BufferPool& pool, FileId file, PageId base,
                        const ColumnDesc& col, const ByteRange& range,
                        std::vector<std::byte>* buf) {
  buf->clear();
  if (range.empty()) return Status::Ok();
  if (range.begin < 0 || range.end > col.byte_length) {
    return Status::InvalidArgument("columnar: byte window out of stream");
  }
  buf->resize(static_cast<size_t>(range.size()));
  const PageId p0 = range.begin / kPS;
  const PageId p1 = (range.end - 1) / kPS;
  for (PageId p = p0; p <= p1; ++p) {
    IOLAP_ASSIGN_OR_RETURN(PageGuard guard, pool.Pin(file, base + p));
    const int64_t page_lo = p * kPS;
    const int64_t lo = std::max(range.begin, page_lo);
    const int64_t hi = std::min(range.end, page_lo + kPS);
    std::memcpy(buf->data() + (lo - range.begin), guard.data() + (lo - page_lo),
                static_cast<size_t>(hi - lo));
  }
  return Status::Ok();
}

/// Appends `bytes` as whole pages at *next_page (tail zero-padded, PinNew
/// zeroes the frame), advancing *next_page.
Status WriteStreamPages(BufferPool& pool, FileId file,
                        const std::vector<std::byte>& bytes,
                        PageId* next_page) {
  const int64_t total = static_cast<int64_t>(bytes.size());
  for (int64_t off = 0; off < total; off += kPS) {
    IOLAP_ASSIGN_OR_RETURN(PageGuard guard, pool.PinNew(file, *next_page));
    std::memcpy(guard.data(), bytes.data() + off,
                static_cast<size_t>(std::min(kPS, total - off)));
    guard.MarkDirty();
    ++*next_page;
  }
  return Status::Ok();
}

/// Writes one POD into a fresh zeroed page at *next_page.
template <typename T>
Status WritePodPage(BufferPool& pool, FileId file, const T& pod,
                    PageId* next_page) {
  static_assert(sizeof(T) <= kPageSize);
  IOLAP_ASSIGN_OR_RETURN(PageGuard guard, pool.PinNew(file, *next_page));
  std::memcpy(guard.data(), &pod, sizeof(T));
  guard.MarkDirty();
  ++*next_page;
  return Status::Ok();
}

}  // namespace

Result<ColumnarEdb> ColumnarEdb::Open(StorageEnv& env, FileId file) {
  IOLAP_ASSIGN_OR_RETURN(int64_t pages, env.disk().SizeInPages(file));
  if (pages < 1) {
    return Status::InvalidArgument("columnar EDB: no file footer page");
  }
  ColumnarFileFooter foot;
  {
    IOLAP_ASSIGN_OR_RETURN(PageGuard guard, env.pool().Pin(file, pages - 1));
    std::memcpy(&foot, guard.data(), sizeof(foot));
  }
  if (foot.magic != kColumnarFileMagic) {
    return Status::InvalidArgument("columnar EDB: bad file magic");
  }
  if (foot.version != kColumnarVersion) {
    return Status::InvalidArgument("columnar EDB: unsupported version " +
                                   std::to_string(foot.version));
  }
  if (foot.num_dims < 1 || foot.num_dims > kMaxDims || foot.num_extents < 0 ||
      foot.total_rows < 0 || foot.directory_first_page < 0 ||
      foot.directory_first_page + foot.directory_pages >= pages ||
      foot.directory_pages != PagesForBytes(foot.num_extents *
                                            static_cast<int64_t>(
                                                sizeof(ExtentDirEntry)))) {
    return Status::InvalidArgument("columnar EDB: corrupt file footer");
  }
  ColumnarEdb out;
  out.file_ = file;
  out.num_dims_ = foot.num_dims;
  out.total_rows_ = foot.total_rows;
  out.rows_per_extent_ = foot.rows_per_extent;
  out.total_pages_ = pages;
  out.flags_ = foot.flags;
  out.dir_.resize(static_cast<size_t>(foot.num_extents));
  int64_t remaining = foot.num_extents;
  for (int64_t p = 0; p < foot.directory_pages; ++p) {
    IOLAP_ASSIGN_OR_RETURN(
        PageGuard guard, env.pool().Pin(file, foot.directory_first_page + p));
    const int64_t batch = std::min(remaining, kExtentDirEntriesPerPage);
    std::memcpy(out.dir_.data() + (foot.num_extents - remaining), guard.data(),
                static_cast<size_t>(batch) * sizeof(ExtentDirEntry));
    remaining -= batch;
  }
  int64_t expect_row = 0;
  for (const ExtentDirEntry& ext : out.dir_) {
    if (ext.first_row != expect_row || ext.row_count <= 0 ||
        ext.first_page < 0 || ext.num_pages < 2 ||
        ext.first_page + ext.num_pages > foot.directory_first_page) {
      return Status::InvalidArgument("columnar EDB: corrupt extent directory");
    }
    expect_row += ext.row_count;
  }
  if (expect_row != foot.total_rows) {
    return Status::InvalidArgument(
        "columnar EDB: directory rows disagree with footer");
  }
  return out;
}

size_t ColumnarEdb::FirstExtentContaining(int64_t row) const {
  // First extent whose end is past `row`; dir_ is dense so a direct
  // division works whenever rows_per_extent_ is uniform, but binary search
  // keeps it correct for any directory.
  size_t lo = 0, hi = dir_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (dir_[mid].first_row + dir_[mid].row_count <= row) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status ColumnarEdb::LoadExtent(BufferPool& pool, const ExtentDirEntry& ext,
                               int64_t row_begin, int64_t row_end,
                               const EdbProjection& proj,
                               DecodedColumns* out) const {
  ExtentFooter foot;
  {
    IOLAP_ASSIGN_OR_RETURN(
        PageGuard guard,
        pool.Pin(file_, ext.first_page + ext.num_pages - 1));
    std::memcpy(&foot, guard.data(), sizeof(foot));
  }
  if (foot.magic != kExtentMagic || foot.row_count != ext.row_count ||
      foot.num_cols != kEdbColLeaf0 + num_dims_) {
    return Status::InvalidArgument("columnar EDB: corrupt extent footer");
  }
  const int64_t lr0 = row_begin - ext.first_row;
  const int64_t lr1 = row_end - ext.first_row;
  const size_t n = static_cast<size_t>(lr1 - lr0);
  std::vector<std::byte> head, body;

  auto fetch = [&](const ColumnDesc& col) -> Status {
    const ColumnWindows w = WindowsFor(col, lr0, lr1);
    IOLAP_RETURN_IF_ERROR(FetchStreamBytes(
        pool, file_, ext.first_page + col.first_page, col, w.head, &head));
    return FetchStreamBytes(pool, file_, ext.first_page + col.first_page, col,
                            w.body, &body);
  };

  if (proj.fact_id) {
    const ColumnDesc& col = foot.cols[kEdbColFactId];
    IOLAP_RETURN_IF_ERROR(fetch(col));
    out->fact_id.resize(n);
    IOLAP_RETURN_IF_ERROR(DecodeDeltaZigZag64(
        col, body.data(), static_cast<int64_t>(body.size()), lr0, lr1,
        out->fact_id.data()));
  }
  if (proj.measure) {
    const ColumnDesc& col = foot.cols[kEdbColMeasure];
    IOLAP_RETURN_IF_ERROR(fetch(col));
    out->measure.resize(n);
    IOLAP_RETURN_IF_ERROR(DecodePlain64(col, body.data(),
                                        static_cast<int64_t>(body.size()), lr0,
                                        lr1, out->measure.data()));
  }
  if (proj.weight) {
    const ColumnDesc& col = foot.cols[kEdbColWeight];
    IOLAP_RETURN_IF_ERROR(fetch(col));
    out->weight.resize(n);
    IOLAP_RETURN_IF_ERROR(DecodePlain64(col, body.data(),
                                        static_cast<int64_t>(body.size()), lr0,
                                        lr1, out->weight.data()));
  }
  for (int d = 0; d < num_dims_; ++d) {
    if (!proj.leaf[d]) continue;
    const ColumnDesc& col = foot.cols[kEdbColLeaf0 + d];
    IOLAP_RETURN_IF_ERROR(fetch(col));
    out->leaf[d].resize(n);
    IOLAP_RETURN_IF_ERROR(
        DecodeInt32(col, head.data(), static_cast<int64_t>(head.size()),
                    body.data(), static_cast<int64_t>(body.size()), lr0, lr1,
                    out->leaf[d].data()));
  }
  return Status::Ok();
}

Status ColumnarEdb::ReadRecords(BufferPool& pool, int64_t begin, int64_t end,
                                std::vector<EdbRecord>* out) const {
  out->clear();
  return ScanRows(pool, begin, end, EdbProjection::All(num_dims_),
                  [out](const Row& row) {
                    EdbRecord rec;
                    rec.fact_id = row.fact_id;
                    rec.measure = row.measure;
                    rec.weight = row.weight;
                    std::memcpy(rec.leaf, row.leaf, sizeof(rec.leaf));
                    out->push_back(rec);
                  });
}

Result<ColumnarEdb> WriteColumnarEdb(StorageEnv& env, const StarSchema& schema,
                                     const TypedFile<EdbRecord>& edb,
                                     const ColumnarWriteOptions& options) {
  if (options.rows_per_extent <= 0) {
    return Status::InvalidArgument("rows_per_extent must be positive");
  }
  const int num_dims = schema.num_dims();
  IOLAP_ASSIGN_OR_RETURN(FileId file, env.disk().CreateFile("edb_columnar"));
  BufferPool& pool = env.pool();

  std::vector<int64_t> fact_ids;
  std::vector<double> measures;
  std::vector<double> weights;
  std::vector<int32_t> leaves[kMaxDims];
  fact_ids.reserve(static_cast<size_t>(options.rows_per_extent));
  std::vector<std::byte> stream;
  std::vector<ExtentDirEntry> dir;
  PageId next_page = 0;
  int64_t first_row = 0;
  bool extent_tombstones = false;
  uint32_t file_flags = 0;

  auto flush_extent = [&]() -> Status {
    const int64_t rows = static_cast<int64_t>(fact_ids.size());
    if (rows == 0) return Status::Ok();
    ExtentFooter footer;
    footer.row_count = rows;
    footer.num_cols = kEdbColLeaf0 + num_dims;
    if (extent_tombstones) footer.flags |= kExtentFlagTombstones;
    const PageId ext_first = next_page;

    auto emit = [&](int col, ColumnDesc desc) -> Status {
      desc.first_page = next_page - ext_first;
      desc.num_pages = PagesForBytes(desc.byte_length);
      footer.cols[col] = desc;
      IOLAP_RETURN_IF_ERROR(WriteStreamPages(pool, file, stream, &next_page));
      stream.clear();
      return Status::Ok();
    };

    IOLAP_RETURN_IF_ERROR(emit(
        kEdbColFactId, EncodeDeltaZigZag64(fact_ids.data(), rows, &stream)));
    IOLAP_RETURN_IF_ERROR(
        emit(kEdbColMeasure, EncodePlain64(measures.data(), rows, &stream)));
    IOLAP_RETURN_IF_ERROR(
        emit(kEdbColWeight, EncodePlain64(weights.data(), rows, &stream)));
    for (int d = 0; d < num_dims; ++d) {
      IOLAP_RETURN_IF_ERROR(emit(
          kEdbColLeaf0 + d, EncodeInt32Auto(leaves[d].data(), rows, &stream)));
    }
    IOLAP_RETURN_IF_ERROR(WritePodPage(pool, file, footer, &next_page));
    dir.push_back(ExtentDirEntry{ext_first, next_page - ext_first, first_row,
                                 rows});
    first_row += rows;
    fact_ids.clear();
    measures.clear();
    weights.clear();
    for (int d = 0; d < num_dims; ++d) leaves[d].clear();
    extent_tombstones = false;
    return Status::Ok();
  };

  auto cursor = edb.Scan(pool);
  EdbRecord rec;
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    if (rec.weight == 0) {
      if (rec.fact_id != -1) {
        return Status::InvalidArgument(
            "EDB row " + std::to_string(fact_ids.size() + first_row) +
            " has weight 0 but fact_id " + std::to_string(rec.fact_id) +
            " (Definition 4: live rows need weight > 0)");
      }
      extent_tombstones = true;
      file_flags |= kExtentFlagTombstones;
    }
    fact_ids.push_back(rec.fact_id);
    measures.push_back(rec.measure);
    weights.push_back(rec.weight);
    for (int d = 0; d < num_dims; ++d) leaves[d].push_back(rec.leaf[d]);
    if (static_cast<int64_t>(fact_ids.size()) == options.rows_per_extent) {
      IOLAP_RETURN_IF_ERROR(flush_extent());
    }
  }
  IOLAP_RETURN_IF_ERROR(flush_extent());

  ColumnarFileFooter foot;
  foot.num_dims = num_dims;
  foot.num_extents = static_cast<int64_t>(dir.size());
  foot.total_rows = first_row;
  foot.directory_first_page = next_page;
  foot.directory_pages = PagesForBytes(
      foot.num_extents * static_cast<int64_t>(sizeof(ExtentDirEntry)));
  foot.rows_per_extent = options.rows_per_extent;
  foot.flags = file_flags;
  stream.clear();
  const auto* dir_bytes = reinterpret_cast<const std::byte*>(dir.data());
  stream.assign(dir_bytes,
                dir_bytes + dir.size() * sizeof(ExtentDirEntry));
  IOLAP_RETURN_IF_ERROR(WriteStreamPages(pool, file, stream, &next_page));
  IOLAP_RETURN_IF_ERROR(WritePodPage(pool, file, foot, &next_page));
  IOLAP_RETURN_IF_ERROR(pool.FlushFile(file));
  return ColumnarEdb::Open(env, file);
}

}  // namespace iolap
