#ifndef IOLAP_EDB_MAINTENANCE_H_
#define IOLAP_EDB_MAINTENANCE_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "alloc/algorithms.h"
#include "alloc/allocator.h"
#include "alloc/dataset.h"
#include "common/result.h"
#include "rtree/paged_rtree.h"
#include "rtree/rtree.h"
#include "storage/storage_env.h"

namespace iolap {

/// One measure update: `before` is the fact as currently stored (id, region
/// and old measure), `new_measure` replaces its measure. Regions are
/// immutable under update, so the component structure is unchanged
/// (Theorem 12) and EDB rows are rewritten in place.
struct FactUpdate {
  FactRecord before;
  double new_measure = 0;
};

/// Observer of row-level Extended Database changes. The maintenance layer
/// reports every *live* row it adds (appended or rewritten in place) and
/// every previously live row it removes (tombstoned or overwritten), so a
/// derived structure — e.g. the serve layer's aggregate index — can stay
/// consistent without rescanning. Tombstones themselves are never reported.
/// Callbacks run inside the mutation batch, before it is known to succeed;
/// implementations should buffer and only apply on an external commit
/// signal. CompactEdb is a logical no-op and fires nothing.
class EdbChangeListener {
 public:
  virtual ~EdbChangeListener() = default;
  virtual void OnAdd(const EdbRecord& rec) = 0;
  virtual void OnRemove(const EdbRecord& rec) = 0;
};

/// Fans one change stream out to several listeners (the MaintenanceManager
/// holds a single listener slot; the serve layer feeds both its aggregate
/// index and its synopsis store from it). Targets are registered once at
/// setup — not thread-safe against concurrent Add.
class EdbChangeFanout : public EdbChangeListener {
 public:
  void Add(EdbChangeListener* listener) { targets_.push_back(listener); }
  bool empty() const { return targets_.empty(); }
  void OnAdd(const EdbRecord& rec) override {
    for (EdbChangeListener* t : targets_) t->OnAdd(rec);
  }
  void OnRemove(const EdbRecord& rec) override {
    for (EdbChangeListener* t : targets_) t->OnRemove(rec);
  }

 private:
  std::vector<EdbChangeListener*> targets_;
};

struct MaintenanceStats {
  /// Bounding boxes (inclusive leaf coordinates) of everything this batch
  /// touched: each mutated fact's own region rect plus the pre-mutation
  /// bboxes of every alive component it overlapped. Every EDB row whose
  /// value changed (rewritten, appended, or tombstoned) lies inside one of
  /// these boxes — the serve layer's cache invalidates exactly the cached
  /// regions that intersect them. Appended across batches; not deduplicated.
  std::vector<Rect> touched_boxes;
  int64_t updates_applied = 0;
  int64_t inserts_applied = 0;
  int64_t deletes_applied = 0;
  int64_t components_touched = 0;
  int64_t components_merged = 0;
  int64_t tuples_fetched = 0;
  int64_t edb_rows_rewritten = 0;
  int64_t edb_rows_appended = 0;
  int64_t edb_rows_tombstoned = 0;
  int64_t rtree_nodes_accessed = 0;
  double seconds = 0;
  IoStats io;
};

/// The Extended Database maintenance layer of Section 9: builds D* with the
/// Transitive algorithm, keeps the component-sorted files plus an R-tree
/// over component bounding boxes, and applies update/insert/delete batches
/// by re-allocating only the overlapped components instead of rebuilding.
///
/// Structural changes (inserts/deletes) are handled with an overlay model:
/// the component-sorted files stay immutable apart from in-place value
/// write-backs, while new tuples, tombstones, and component merges live in
/// an in-memory directory of segment lists + overlays. Superseded EDB rows
/// are tombstoned with weight 0 (a no-op for every aggregate); call
/// `CompactEdb()` to squeeze them out.
class MaintenanceManager {
 public:
  /// A maintained component: the segments it owns in the component-sorted
  /// files, plus everything that changed since the build.
  struct MaintComponent {
    std::vector<std::pair<int64_t, int64_t>> cell_segments;
    std::vector<std::pair<int64_t, int64_t>> entry_segments;
    std::vector<CellRecord> overlay_cells;
    std::vector<ImpreciseRecord> overlay_entries;
    std::set<FactId> deleted;  // imprecise facts tombstoned
    Rect bbox;
    std::vector<std::pair<int64_t, int64_t>> edb_ranges;  // live rows
    bool alive = true;

    int64_t tuples() const {
      int64_t n = static_cast<int64_t>(overlay_cells.size() +
                                       overlay_entries.size());
      for (auto [b, e] : cell_segments) n += e - b;
      for (auto [b, e] : entry_segments) n += e - b;
      return n;
    }
  };

  /// Runs preprocessing + Transitive on `facts` (consumed), bulk-loads the
  /// R-tree from the component directory.
  static Result<std::unique_ptr<MaintenanceManager>> Build(
      StorageEnv& env, const StarSchema& schema,
      TypedFile<FactRecord>* facts, const AllocationOptions& options);

  /// Measure updates to existing facts (regions unchanged).
  Status ApplyUpdates(const std::vector<FactUpdate>& updates,
                      MaintenanceStats* stats);

  /// Inserts new facts. Imprecise inserts may merge every component their
  /// region overlaps into one (with the R-tree updated accordingly);
  /// precise inserts adjust δ and may add new cells to C.
  Status InsertFacts(const std::vector<FactRecord>& inserts,
                     MaintenanceStats* stats);

  /// Deletes existing facts (pass the stored record). A deletion never
  /// splits the directory's components eagerly — a disconnected component
  /// still allocates correctly (Theorem 9), only less efficiently — but a
  /// component whose last imprecise fact disappears is dissolved.
  Status DeleteFacts(const std::vector<FactRecord>& deletes,
                     MaintenanceStats* stats);

  /// Rewrites the EDB without tombstoned rows; returns rows removed.
  Result<int64_t> CompactEdb();

  const TypedFile<EdbRecord>& edb() const { return build_result_.edb; }
  const StarSchema& schema() const { return *schema_; }
  const AllocationResult& build_result() const { return build_result_; }
  const std::vector<MaintComponent>& directory() const { return directory_; }
  /// The disk-based spatial index over component bounding boxes. Non-const:
  /// even searches pin pages through the buffer pool.
  PagedRTree& rtree() { return *rtree_; }
  StorageEnv& env() { return *env_; }

  /// Installs (or clears, with nullptr) the row-change listener. With no
  /// listener the maintenance I/O pattern is exactly as before; with one,
  /// re-allocation additionally reads each spliced component's old rows
  /// (pages the splice was about to pin anyway).
  void set_change_listener(EdbChangeListener* listener) {
    listener_ = listener;
  }

 private:
  MaintenanceManager(StorageEnv* env, const StarSchema* schema)
      : env_(env), schema_(schema) {}

  using LeafKey = std::array<int32_t, kMaxDims>;

  /// Re-allocates one component from scratch (fresh EM over the current δ)
  /// and splices its EDB rows; applies and persists pending δ adjustments.
  /// `candidate_cells` offers new cells that join the component iff one of
  /// its facts covers them; the survivors are removed from the vector.
  Status ReallocateComponent(int64_t comp,
                             std::map<LeafKey, double>* delta_adjust,
                             std::vector<CellRecord>* candidate_cells,
                             MaintenanceStats* stats);

  /// Finds a cell in the singleton region of the cells file (binary search
  /// in canonical order); -1 if absent or absorbed.
  Result<int64_t> FindSingletonCell(const LeafKey& key);

  /// Collects singleton + loose cells covered by `region`, marks the file
  /// copies absorbed, and returns them.
  Status AbsorbCoveredCells(const FactRecord& region,
                            std::vector<CellRecord>* out);

  StorageEnv* env_;
  const StarSchema* schema_;
  AllocationOptions options_;
  PreparedDataset data_;
  AllocationResult build_result_;
  std::vector<MaintComponent> directory_;
  std::unique_ptr<PagedRTree> rtree_;
  EdbChangeListener* listener_ = nullptr;

  int64_t singleton_begin_ = 0;      // first singleton cell in the file
  std::vector<CellRecord> loose_cells_;  // cells added after the build
  /// Precise EDB rows appended after the build, by fact id.
  std::unordered_map<FactId, int64_t> extra_precise_rows_;
};

}  // namespace iolap

#endif  // IOLAP_EDB_MAINTENANCE_H_
