#ifndef IOLAP_EDB_COLUMNAR_H_
#define IOLAP_EDB_COLUMNAR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "edb/query.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/extent.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"

namespace iolap {

// Columnar mirror of the EDB: the same rows as the row-major
// TypedFile<EdbRecord>, in the same order, stored column-major in
// compressed extents (storage/extent.h) so aggregate scans pay only for
// the columns they project. The row-major file stays the writer /
// maintenance format; `WriteColumnarEdb` is the conversion step, and every
// read goes through the BufferPool so IoStats keeps counting the paper's
// demand I/O. On-disk layout: docs/FORMAT.md ("Columnar EDB extents").

/// Column ordinals within an extent footer. A k-dimensional EDB has
/// 3 + k columns: leaf column d lives at kEdbColLeaf0 + d.
enum EdbColumn : int {
  kEdbColFactId = 0,   // kDeltaZigZag64
  kEdbColMeasure = 1,  // kPlain64 (double bits)
  kEdbColWeight = 2,   // kPlain64 (double bits)
  kEdbColLeaf0 = 3,    // kDict32 or kPlain32, whichever is smaller
};
static_assert(kEdbColLeaf0 + kMaxDims <= kMaxExtentColumns);

struct ColumnarWriteOptions {
  /// Rows per extent (the last extent may be shorter). Larger extents
  /// amortize footer pages; smaller ones tighten partial scans. Must be
  /// > 0. The default holds every column of a full extent plus its footer
  /// in well under a small pool.
  int64_t rows_per_extent = 16384;
};

/// Which EDB columns a scan wants decoded.
struct EdbProjection {
  bool fact_id = false;
  bool measure = false;
  bool weight = false;
  bool leaf[kMaxDims] = {};

  static EdbProjection All(int num_dims) {
    EdbProjection p;
    p.fact_id = p.measure = p.weight = true;
    for (int d = 0; d < num_dims && d < kMaxDims; ++d) p.leaf[d] = true;
    return p;
  }
};

/// Read-side handle on a columnar EDB file. Immutable after Open and safe
/// to share across threads (scans decode into per-call scratch; page pins
/// go through the thread-safe BufferPool).
class ColumnarEdb {
 public:
  ColumnarEdb() = default;

  /// Opens an existing columnar file: reads the file footer (last page)
  /// and the extent directory through the pool, validating both.
  static Result<ColumnarEdb> Open(StorageEnv& env, FileId file);

  FileId file_id() const { return file_; }
  int num_dims() const { return num_dims_; }
  int64_t num_rows() const { return total_rows_; }
  int64_t num_extents() const { return static_cast<int64_t>(dir_.size()); }
  int64_t rows_per_extent() const { return rows_per_extent_; }
  /// Total file size: column pages + extent footers + directory + footer.
  int64_t size_in_pages() const { return total_pages_; }
  bool has_tombstones() const {
    return (flags_ & kExtentFlagTombstones) != 0;
  }

  /// Tombstone test on a projected row. The conversion step enforces
  /// Definition 4 (live rows have weight > 0, tombstones are exactly the
  /// weight-0 / fact_id = -1 maintenance rows), so projecting `weight`
  /// alone suffices to skip tombstones — columnar readers need not pay
  /// for the fact_id column just to honour the CLAUDE.md invariant.
  static bool IsTombstone(double weight) { return weight == 0; }

  /// One decoded row handed to ScanRows callbacks. Only projected fields
  /// are meaningful; the rest are unspecified.
  struct Row {
    int64_t row = 0;  // global row index, always set
    FactId fact_id = 0;
    double measure = 0;
    double weight = 0;
    int32_t leaf[kMaxDims] = {};
  };

  /// Streams rows [begin, end) in ascending row order (end < 0 means
  /// num_rows()), decoding only the projected columns and pinning only the
  /// pages their byte windows cover. `fn(const Row&)` sees every row,
  /// tombstones included — callers skip via IsTombstone, mirroring the
  /// row-major readers.
  template <typename Fn>
  Status ScanRows(BufferPool& pool, int64_t begin, int64_t end,
                  const EdbProjection& proj, Fn&& fn) const {
    if (end < 0) end = total_rows_;
    begin = std::max<int64_t>(begin, 0);
    end = std::min(end, total_rows_);
    if (begin >= end) return Status::Ok();
    DecodedColumns cols;
    for (size_t e = FirstExtentContaining(begin);
         e < dir_.size() && dir_[e].first_row < end; ++e) {
      const ExtentDirEntry& ext = dir_[e];
      const int64_t r0 = std::max(begin, ext.first_row);
      const int64_t r1 = std::min(end, ext.first_row + ext.row_count);
      IOLAP_RETURN_IF_ERROR(LoadExtent(pool, ext, r0, r1, proj, &cols));
      Row row;
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t i = r - r0;
        row.row = r;
        if (proj.fact_id) row.fact_id = cols.fact_id[i];
        if (proj.measure) row.measure = cols.measure[i];
        if (proj.weight) row.weight = cols.weight[i];
        for (int d = 0; d < num_dims_; ++d) {
          if (proj.leaf[d]) row.leaf[d] = cols.leaf[d][i];
        }
        fn(row);
      }
    }
    return Status::Ok();
  }

  /// Materializes rows [begin, end) as EdbRecords (full projection) —
  /// round-trip tests and row-compatible consumers.
  Status ReadRecords(BufferPool& pool, int64_t begin, int64_t end,
                     std::vector<EdbRecord>* out) const;

 private:
  struct DecodedColumns {
    std::vector<int64_t> fact_id;
    std::vector<double> measure;
    std::vector<double> weight;
    std::vector<int32_t> leaf[kMaxDims];
  };

  /// Decodes the projected columns of one extent for global rows
  /// [row_begin, row_end) into `out` (index 0 = row_begin).
  Status LoadExtent(BufferPool& pool, const ExtentDirEntry& ext,
                    int64_t row_begin, int64_t row_end,
                    const EdbProjection& proj, DecodedColumns* out) const;

  /// Index of the extent whose row range contains `row` (dir_ is sorted
  /// and dense in first_row).
  size_t FirstExtentContaining(int64_t row) const;

  FileId file_ = kInvalidFileId;
  int num_dims_ = 0;
  int64_t total_rows_ = 0;
  int64_t rows_per_extent_ = 0;
  int64_t total_pages_ = 0;
  uint32_t flags_ = 0;
  std::vector<ExtentDirEntry> dir_;
};

/// The projection an aggregate/rollup scan needs: weight + measure, the
/// leaf columns of dimensions `region` actually constrains
/// (RegionConstrainsDim), and the group-by dimension `group_dim` (pass -1
/// for a point aggregate). Never fact_id — tombstones are identified by
/// weight alone (see ColumnarEdb::IsTombstone).
inline EdbProjection AggregateScanProjection(const StarSchema& schema,
                                             const QueryRegion& region,
                                             int group_dim) {
  EdbProjection p;
  p.weight = true;
  p.measure = true;
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (RegionConstrainsDim(schema, region, d)) p.leaf[d] = true;
  }
  if (group_dim >= 0) p.leaf[group_dim] = true;
  return p;
}

/// Converts the row-major EDB into a new columnar file (one pass over
/// `edb` through the pool) and opens it. Rejects rows that violate the
/// tombstone invariant (weight == 0 with fact_id != -1) so IsTombstone
/// stays sound for every columnar reader. The written file is flushed;
/// the row-major file is untouched.
Result<ColumnarEdb> WriteColumnarEdb(StorageEnv& env, const StarSchema& schema,
                                     const TypedFile<EdbRecord>& edb,
                                     const ColumnarWriteOptions& options = {});

}  // namespace iolap

#endif  // IOLAP_EDB_COLUMNAR_H_
