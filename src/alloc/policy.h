#ifndef IOLAP_ALLOC_POLICY_H_
#define IOLAP_ALLOC_POLICY_H_

#include <cstdint>
#include <string>

#include "model/records.h"
#include "storage/io_pipeline.h"

namespace iolap {

/// Allocation policies from the template of Section 3.2. Each policy picks
/// the *allocation quantity* δ(c) seeded into every cell; the iterative
/// Γ/Δ update equations are shared.
enum class PolicyKind {
  /// EM-Count: δ(c) = number of precise facts mapping to c.
  kCount,
  /// EM-Measure: δ(c) = sum of the measure over precise facts in c.
  kMeasure,
  /// Uniform: δ(c) = 1 and zero EM iterations, yielding
  /// p_{c,r} = 1 / |reg(r) ∩ C|.
  kUniform,
};

/// Which cells form the cell summary table C (Section 3.3 lists the choices
/// the companion papers used).
enum class CellDomain {
  /// Cells mapped to by at least one precise fact (the default in the
  /// paper's experiments; keeps δ(c) > 0 everywhere for kCount).
  kPreciseCells,
  /// The union of the precise cells and every cell inside some imprecise
  /// fact's region. Supports the Uniform policy exactly; can blow up for
  /// very wide regions, so the preprocessor enforces a budget.
  kImpreciseUnion,
};

/// Which allocation algorithm evaluates the update equations.
enum class AlgorithmKind {
  kBasic,        // in-memory reference (Algorithm 1)
  kIndependent,  // per-chain re-sorts (Algorithm 3)
  kBlock,        // fixed order + partition windows (Algorithm 4)
  kTransitive,   // connected components (Algorithm 5)
};

inline const char* AlgorithmName(AlgorithmKind a) {
  switch (a) {
    case AlgorithmKind::kBasic:
      return "Basic";
    case AlgorithmKind::kIndependent:
      return "Independent";
    case AlgorithmKind::kBlock:
      return "Block";
    case AlgorithmKind::kTransitive:
      return "Transitive";
  }
  return "?";
}

inline const char* PolicyName(PolicyKind p) {
  switch (p) {
    case PolicyKind::kCount:
      return "EM-Count";
    case PolicyKind::kMeasure:
      return "EM-Measure";
    case PolicyKind::kUniform:
      return "Uniform";
  }
  return "?";
}

/// Crash recovery for long allocation runs (DESIGN.md §9). With a non-empty
/// `directory` the run persists its complete iteration state there at
/// iteration boundaries (Basic/Block/Independent) or component boundaries
/// (Transitive); with `resume` it also continues from the newest valid
/// checkpoint instead of starting over. The directory must live *outside*
/// the StorageEnv workspace — the DiskManager unlinks its workspace on
/// destruction, and checkpoints must outlive the crashed process.
struct CheckpointOptions {
  std::string directory;  // empty = checkpointing disabled
  int every = 1;          // checkpoint every N boundaries
  bool resume = false;    // continue from the newest valid manifest

  bool enabled() const { return !directory.empty(); }
};

struct AllocationOptions {
  PolicyKind policy = PolicyKind::kCount;
  CellDomain domain = CellDomain::kPreciseCells;
  AlgorithmKind algorithm = AlgorithmKind::kTransitive;

  /// Convergence threshold ε on the per-cell relative change of Δ(c)
  /// between successive iterations (Section 3.2).
  double epsilon = 0.005;
  int max_iterations = 100;

  /// Transitive only: iterate each connected component just until *its*
  /// cells converge (the optimization Section 11.1 highlights). Off, every
  /// component runs the global iteration count — the ablation baseline.
  bool early_convergence = true;

  /// Cap on |C| when domain == kImpreciseUnion (region unions can explode).
  int64_t max_domain_cells = 50'000'000;

  /// Transitive only: worker threads for component-parallel allocation.
  /// Components are disjoint subgraphs, so their floating-point results are
  /// scheduling-independent, and the scheduler emits EDB rows in strict
  /// component order — any value here produces a byte-identical EDB.
  /// 1 (the default) is exactly the serial algorithm; values are clamped to
  /// what the buffer pool can pin concurrently.
  int num_threads = 1;

  /// Storage I/O pipeline tuning (parallel run generation, merge block
  /// buffers, buffer-pool read-ahead, batched write-back). Every setting
  /// yields a byte-identical EDB and identical demand I/O counts; only
  /// wall-clock changes. `IoPipelineOptions::Serial()` is the pre-pipeline
  /// baseline.
  IoPipelineOptions io;

  /// Checkpoint/restart (disabled by default). When disabled the demand-I/O
  /// schedule is bit-identical to a build without the feature; when enabled
  /// the EDB bytes are unchanged and only checkpoint traffic (uncounted,
  /// reported under the `ckpt.*` metrics) is added.
  CheckpointOptions checkpoint;

  /// δ(c) contribution of one precise fact under this policy.
  double DeltaContribution(const FactRecord& fact) const {
    switch (policy) {
      case PolicyKind::kCount:
        return 1.0;
      case PolicyKind::kMeasure:
        return fact.measure;
      case PolicyKind::kUniform:
        return 0.0;  // uniform seeds every cell with 1 instead, see below
    }
    return 0.0;
  }

  /// Baseline δ assigned to every cell of C before precise contributions.
  double DeltaBase() const {
    return policy == PolicyKind::kUniform ? 1.0 : 0.0;
  }

  /// Number of EM iterations is 0 for Uniform (pure E-step emission).
  int EffectiveMaxIterations() const {
    return policy == PolicyKind::kUniform ? 0 : max_iterations;
  }
};

}  // namespace iolap

#endif  // IOLAP_ALLOC_POLICY_H_
