#include "alloc/pass.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

#include "storage/access_plan.h"

namespace iolap {

/// Sliding window over one summary-table segment. Entries enter when the
/// cell scan reaches their region-start key and leave past their region-end
/// key; `write_back` persists modified entries on eviction.
///
/// Facts with *identical regions* (common in clustered data) are merged
/// into one open group — their Γ, Δ-contributions and ccid are provably
/// identical, so the per-cell work scales with the number of distinct open
/// regions while I/O and the EDB stay per-fact.
class PassEngine::TableWindow {
 public:
  struct Member {
    int64_t index;
    FactId fact_id;
    double measure;
  };
  struct OpenGroup {
    ImpreciseRecord rec;  // representative (first member's record)
    std::vector<Member> members;
  };

  TableWindow(BufferPool* pool, const StarSchema* schema,
              TypedFile<ImpreciseRecord>* file, const TableSegment& seg,
              const SpecComparator* cmp, bool write_back, bool reset_on_load,
              EmitStats* emit_stats)
      : pool_(pool),
        schema_(schema),
        file_(file),
        cmp_(cmp),
        write_back_(write_back),
        reset_on_load_(reset_on_load),
        emit_stats_(emit_stats),
        cursor_(file->Scan(*pool, seg.begin, seg.end)) {}

  Status AdvanceTo(const CellRecord& cell) {
    while (!open_.empty() &&
           cmp_->CompareRegionEndToCell(open_.front().rec, cell) < 0) {
      IOLAP_RETURN_IF_ERROR(EvictFront());
    }
    while (true) {
      if (!have_peek_) {
        if (cursor_.done()) break;
        peek_index_ = cursor_.index();
        IOLAP_RETURN_IF_ERROR(cursor_.Next(&peek_));
        have_peek_ = true;
      }
      if (cmp_->CompareRegionStartToCell(peek_, cell) > 0) break;
      if (reset_on_load_) {
        peek_.gamma = 0;
        peek_.num_cells = 0;
      }
      Member member{peek_index_, peek_.fact_id, peek_.measure};
      ++record_count_;
      NodeKey key = KeyOfRegion(peek_);
      auto it = by_region_.find(key);
      if (it != by_region_.end()) {
        it->second->members.push_back(member);
      } else {
        if (!have_levels_) {
          std::memcpy(levels_, peek_.level, sizeof(levels_));
          have_levels_ = true;
        }
        open_.push_back(OpenGroup{peek_, {member}});
        by_region_.emplace(key, &open_.back());
      }
      have_peek_ = false;
    }
    return Status::Ok();
  }

  /// The unique open group covering `cell`, if any: within one summary
  /// table regions are hierarchy-aligned and disjoint, so coverage is an
  /// exact match on the cell's ancestor vector at the table's levels —
  /// an O(1) lookup instead of a scan of the window.
  OpenGroup* FindCovering(const CellRecord& cell) {
    if (open_.empty()) return nullptr;
    NodeKey key{};
    for (int d = 0; d < schema_->num_dims(); ++d) {
      const Hierarchy& h = schema_->dim(d);
      if (levels_[d] == 1) {
        key[d] = h.leaf_node(cell.leaf[d]);
      } else {
        key[d] = h.NodeAt(levels_[d],
                          h.LeafAncestorOrdinal(cell.leaf[d], levels_[d]));
      }
    }
    auto it = by_region_.find(key);
    return it == by_region_.end() ? nullptr : it->second;
  }

  int64_t open_records() const { return record_count_; }

  Status Finish() {
    while (!open_.empty()) IOLAP_RETURN_IF_ERROR(EvictFront());
    return Status::Ok();
  }

  /// Calls `fn` on every entry that was never loaded (used by the emit
  /// pass to account for facts past the end of the cell scan).
  template <typename Fn>
  Status DrainRemaining(Fn fn) {
    if (have_peek_) {
      IOLAP_RETURN_IF_ERROR(fn(peek_));
      have_peek_ = false;
    }
    ImpreciseRecord rec;
    while (!cursor_.done()) {
      IOLAP_RETURN_IF_ERROR(cursor_.Next(&rec));
      IOLAP_RETURN_IF_ERROR(fn(rec));
    }
    return Status::Ok();
  }

 private:
  using NodeKey = std::array<int32_t, kMaxDims>;
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      uint64_t h = 1469598103934665603ULL;
      for (int32_t v : k) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
        h *= 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };

  NodeKey KeyOfRegion(const ImpreciseRecord& rec) const {
    NodeKey key{};
    std::memcpy(key.data(), rec.node,
                sizeof(int32_t) * static_cast<size_t>(schema_->num_dims()));
    return key;
  }

  Status EvictFront() {
    OpenGroup& group = open_.front();
    if (write_back_) {
      // All members share the group's computed state (Γ, cell count,
      // component id); identities stay per-fact.
      ImpreciseRecord rec = group.rec;
      for (const Member& m : group.members) {
        rec.fact_id = m.fact_id;
        rec.measure = m.measure;
        IOLAP_RETURN_IF_ERROR(file_->Put(*pool_, m.index, rec));
      }
    }
    if (emit_stats_ != nullptr && group.rec.gamma <= 0) {
      emit_stats_->unallocatable_facts +=
          static_cast<int64_t>(group.members.size());
    }
    record_count_ -= static_cast<int64_t>(group.members.size());
    by_region_.erase(KeyOfRegion(group.rec));
    open_.pop_front();
    return Status::Ok();
  }

  BufferPool* pool_;
  const StarSchema* schema_;
  TypedFile<ImpreciseRecord>* file_;
  const SpecComparator* cmp_;
  bool write_back_;
  bool reset_on_load_;
  EmitStats* emit_stats_;
  uint8_t levels_[kMaxDims] = {};
  bool have_levels_ = false;
  TypedFile<ImpreciseRecord>::Cursor cursor_;
  std::deque<OpenGroup> open_;  // deque: stable references on push/pop
  std::unordered_map<NodeKey, OpenGroup*, NodeKeyHash> by_region_;
  ImpreciseRecord peek_;
  int64_t peek_index_ = -1;
  bool have_peek_ = false;
  int64_t record_count_ = 0;
};

Status PassEngine::RunGamma(const std::vector<TableSegment>& tables) {
  return RunPass(PassKind::kGamma, tables, false, false, nullptr, nullptr,
                 nullptr, nullptr);
}

Status PassEngine::RunDelta(const std::vector<TableSegment>& tables,
                            bool init_delta, bool finalize, double* max_eps) {
  return RunPass(PassKind::kDelta, tables, init_delta, finalize, max_eps,
                 nullptr, nullptr, nullptr);
}

Status PassEngine::RunCcid(const std::vector<TableSegment>& tables,
                           UnionFind* uf) {
  return RunPass(PassKind::kCcid, tables, false, false, nullptr, uf, nullptr,
                 nullptr);
}

Status PassEngine::RunEmit(const std::vector<TableSegment>& tables,
                           typename TypedFile<EdbRecord>::Appender* out,
                           EmitStats* stats) {
  return RunPass(PassKind::kEmit, tables, false, false, nullptr, nullptr, out,
                 stats);
}

Status PassEngine::RunPass(PassKind kind,
                           const std::vector<TableSegment>& tables,
                           bool init_delta, bool finalize, double* max_eps,
                           UnionFind* uf,
                           typename TypedFile<EdbRecord>::Appender* out,
                           EmitStats* stats) {
  const bool mutate_cells = kind == PassKind::kDelta || kind == PassKind::kCcid;
  const bool write_back_entries =
      kind == PassKind::kGamma || kind == PassKind::kCcid;
  const bool reset_on_load = kind == PassKind::kGamma;

  const int64_t begin = cell_begin_;
  const int64_t end = cell_end_ < 0 ? cells_->size() : cell_end_;

  // Every pass reads exactly the cell range and each segment's record
  // range, front to back — publish that schedule so the buffer pool can
  // overlap the next stretch of reads with window compute. The windows'
  // own heuristic hints are suppressed for planned files.
  AccessPlan plan;
  if (end > begin) {
    plan.AddRange(cells_->file_id(), TypedFile<CellRecord>::PageOf(begin),
                  TypedFile<CellRecord>::PageOf(end - 1) + 1);
  }
  for (const TableSegment& seg : tables) {
    if (seg.end <= seg.begin) continue;
    plan.AddRange(imprecise_->file_id(),
                  TypedFile<ImpreciseRecord>::PageOf(seg.begin),
                  TypedFile<ImpreciseRecord>::PageOf(seg.end - 1) + 1);
  }
  BufferPool::PlannedAccess planned = pool_->BeginPlannedAccess(plan);

  std::vector<TableWindow> windows;
  windows.reserve(tables.size());
  for (const TableSegment& seg : tables) {
    windows.emplace_back(pool_, schema_, imprecise_, seg, cmp_,
                         write_back_entries, reset_on_load,
                         kind == PassKind::kEmit ? stats : nullptr);
  }

  auto cursor = mutate_cells ? cells_->MutableScan(*pool_, begin, end)
                             : cells_->Scan(*pool_, begin, end);

  CellRecord cell;
  std::vector<int32_t> touched_ccids;               // scratch for kCcid
  std::vector<TableWindow::OpenGroup*> covering;    // scratch for kCcid
  while (!cursor.done()) {
    IOLAP_RETURN_IF_ERROR(cursor.Read(&cell));
    bool cell_modified = false;

    if (kind == PassKind::kDelta && init_delta) {
      cell.delta_cur = cell.delta0;
      cell_modified = true;
    }

    int64_t open_total = 0;
    touched_ccids.clear();
    covering.clear();
    bool covered = false;
    for (TableWindow& window : windows) {
      IOLAP_RETURN_IF_ERROR(window.AdvanceTo(cell));
      open_total += window.open_records();
      TableWindow::OpenGroup* group = window.FindCovering(cell);
      if (group == nullptr) continue;
      covered = true;
      const double weight = static_cast<double>(group->members.size());
      switch (kind) {
        case PassKind::kGamma:
          group->rec.gamma += cell.delta_prev;
          ++group->rec.num_cells;
          break;
        case PassKind::kDelta:
          if (group->rec.gamma > 0) {
            cell.delta_cur += weight * cell.delta_prev / group->rec.gamma;
            cell_modified = true;
          }
          break;
        case PassKind::kCcid:
          if (group->rec.ccid >= 0) touched_ccids.push_back(group->rec.ccid);
          covering.push_back(group);
          break;
        case PassKind::kEmit:
          if (group->rec.gamma > 0 && cell.delta_prev > 0) {
            EdbRecord edb;
            edb.weight = cell.delta_prev / group->rec.gamma;
            std::memcpy(edb.leaf, cell.leaf, sizeof(edb.leaf));
            for (const auto& member : group->members) {
              edb.fact_id = member.fact_id;
              edb.measure = member.measure;
              IOLAP_RETURN_IF_ERROR(out->Append(edb));
              ++stats->edges_emitted;
            }
          }
          break;
      }
    }
    peak_window_records_ = std::max(peak_window_records_, open_total);

    if (kind == PassKind::kCcid && covered) {
      if (cell.ccid >= 0) touched_ccids.push_back(cell.ccid);
      int32_t id;
      if (touched_ccids.empty()) {
        id = uf->Add();
      } else {
        id = touched_ccids[0];
        for (size_t i = 1; i < touched_ccids.size(); ++i) {
          uf->Union(id, touched_ccids[i]);
        }
      }
      if (cell.ccid < 0) {
        cell.ccid = id;
        cell_modified = true;
      }
      for (TableWindow::OpenGroup* group : covering) {
        if (group->rec.ccid < 0) group->rec.ccid = id;
      }
    }

    if (kind == PassKind::kDelta) {
      if (covered) {
        cell.overlapped = 1;
        cell_modified = true;
      }
      if (finalize) {
        double eps;
        if (cell.delta_prev != 0) {
          eps = std::fabs(cell.delta_cur - cell.delta_prev) /
                std::fabs(cell.delta_prev);
        } else {
          eps = cell.delta_cur == 0 ? 0.0 : 1.0;
        }
        if (max_eps != nullptr) *max_eps = std::max(*max_eps, eps);
        cell.delta_prev = cell.delta_cur;
        cell_modified = true;
      }
    }

    if (cell_modified) {
      IOLAP_RETURN_IF_ERROR(cursor.Write(cell));
    }
    cursor.Advance();
  }

  for (TableWindow& window : windows) {
    IOLAP_RETURN_IF_ERROR(window.Finish());
    if (kind == PassKind::kEmit) {
      IOLAP_RETURN_IF_ERROR(
          window.DrainRemaining([&](const ImpreciseRecord& rec) -> Status {
            if (rec.gamma <= 0) ++stats->unallocatable_facts;
            return Status::Ok();
          }));
    }
  }
  return Status::Ok();
}

}  // namespace iolap
