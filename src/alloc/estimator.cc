#include "alloc/estimator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <vector>

#include "alloc/in_memory.h"
#include "common/rng.h"
#include "graph/union_find.h"
#include "model/sort_key.h"

namespace iolap {

namespace {

struct SampleStats {
  int iterations = 0;
  int64_t components = 0;
  int64_t largest = 0;
  int64_t tuples = 0;
};

/// Builds the in-memory allocation graph of `sample` and returns its
/// component census (and EM iteration count when `run_em`).
SampleStats AnalyzeSample(const StarSchema& schema,
                          const std::vector<FactRecord>& sample,
                          const EstimateOptions& options, bool run_em) {
  const int k = schema.num_dims();
  using Key = std::array<int32_t, kMaxDims>;
  std::map<Key, double> delta;
  std::vector<ImpreciseRecord> entries;
  AllocationOptions policy_options;
  policy_options.policy = options.policy;
  for (const FactRecord& f : sample) {
    if (f.IsPrecise(k)) {
      Key key{};
      for (int d = 0; d < k; ++d) key[d] = schema.dim(d).leaf_begin(f.node[d]);
      auto [it, inserted] = delta.emplace(key, policy_options.DeltaBase());
      it->second += policy_options.DeltaContribution(f);
    } else {
      ImpreciseRecord rec;
      rec.fact_id = f.fact_id;
      rec.measure = f.measure;
      std::memcpy(rec.node, f.node, sizeof(rec.node));
      std::memcpy(rec.level, f.level, sizeof(rec.level));
      entries.push_back(rec);
    }
  }
  std::vector<CellRecord> cells;
  cells.reserve(delta.size());
  for (const auto& [key, d] : delta) {  // std::map: already canonical order
    CellRecord c;
    std::memcpy(c.leaf, key.data(), sizeof(c.leaf));
    c.delta0 = d;
    c.delta_prev = d;
    cells.push_back(c);
  }

  MemoryAllocator ma(&schema, std::move(cells), std::move(entries));
  SampleStats stats;
  if (run_em) {
    stats.iterations = ma.Iterate(options.epsilon, options.max_iterations,
                                  /*force_all_iterations=*/false);
  }
  const int64_t num_cells = static_cast<int64_t>(ma.cells().size());
  const int64_t num_entries = static_cast<int64_t>(ma.entries().size());
  stats.tuples = num_cells + num_entries;
  UnionFind uf(static_cast<int32_t>(num_cells + num_entries));
  std::vector<bool> cell_connected(num_cells, false);
  for (int64_t e = 0; e < num_entries; ++e) {
    for (int32_t c : ma.edges()[e]) {
      uf.Union(static_cast<int32_t>(num_cells + e), c);
      cell_connected[c] = true;
    }
  }
  std::map<int32_t, int64_t> sizes;
  for (int64_t e = 0; e < num_entries; ++e) {
    if (!ma.edges()[e].empty()) {
      ++sizes[uf.Find(static_cast<int32_t>(num_cells + e))];
    }
  }
  for (int64_t c = 0; c < num_cells; ++c) {
    if (cell_connected[c]) ++sizes[uf.Find(static_cast<int32_t>(c))];
  }
  stats.components = static_cast<int64_t>(sizes.size());
  for (const auto& [root, size] : sizes) {
    stats.largest = std::max(stats.largest, size);
  }
  return stats;
}

}  // namespace

Result<AllocationEstimate> EstimateAllocation(
    StorageEnv& env, const StarSchema& schema,
    const TypedFile<FactRecord>& facts, const EstimateOptions& options) {
  AllocationEstimate out;
  if (facts.size() == 0) return out;

  // One-pass reservoir sample.
  const int64_t m = std::min<int64_t>(options.sample_size, facts.size());
  std::vector<FactRecord> sample;
  sample.reserve(m);
  Rng rng(options.seed);
  {
    auto cursor = facts.Scan(env.pool());
    FactRecord f;
    int64_t seen = 0;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&f));
      if (static_cast<int64_t>(sample.size()) < m) {
        sample.push_back(f);
      } else {
        int64_t slot = static_cast<int64_t>(rng.Uniform(seen + 1));
        if (slot < m) sample[slot] = f;
      }
      ++seen;
    }
  }
  out.sampled_facts = static_cast<int64_t>(sample.size());
  out.sample_rate =
      static_cast<double>(out.sampled_facts) / static_cast<double>(facts.size());

  SampleStats full = AnalyzeSample(schema, sample, options, /*run_em=*/true);
  out.estimated_iterations = full.iterations;
  out.sample_components = full.components;
  out.sample_largest_component = full.largest;
  out.largest_fraction =
      full.tuples > 0 ? static_cast<double>(full.largest) / full.tuples : 0;

  // Growth-exponent extrapolation: measure the largest component at half
  // the sample too. Local (subcritical) components stop growing with the
  // sample (exponent ~ 0); a giant component grows near-linearly
  // (exponent ~ 1); near the percolation threshold we interpolate. This is
  // robust where plain fraction-scaling fails: vertex sampling thins edges
  // and shatters a sparse giant component.
  double exponent = 0;
  if (full.largest > 4 && out.sampled_facts >= 64) {
    // A uniformly random half of the reservoir is itself a uniform sample.
    std::vector<FactRecord> half = sample;
    for (size_t i = half.size(); i > 1; --i) {
      std::swap(half[i - 1], half[rng.Uniform(i)]);
    }
    half.resize(half.size() / 2);
    SampleStats half_stats =
        AnalyzeSample(schema, half, options, /*run_em=*/false);
    if (half_stats.largest > 0) {
      exponent = std::log2(static_cast<double>(full.largest) /
                           static_cast<double>(half_stats.largest));
      exponent = std::clamp(exponent, 0.0, 1.5);
    }
  }
  out.growth_exponent = exponent;
  out.giant_component = exponent >= options.giant_exponent_threshold &&
                        out.largest_fraction * exponent > 0;

  if (out.sample_rate >= 1.0) {
    out.estimated_largest_component = full.largest;
  } else if (out.giant_component) {
    double scale = std::pow(1.0 / out.sample_rate, exponent);
    out.estimated_largest_component = std::min<int64_t>(
        static_cast<int64_t>(static_cast<double>(full.largest) * scale),
        static_cast<int64_t>(static_cast<double>(full.tuples) /
                             out.sample_rate));
  } else {
    out.estimated_largest_component = full.largest;
    out.largest_is_lower_bound = true;
  }
  return out;
}

}  // namespace iolap
