#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "alloc/algorithms.h"
#include "alloc/in_memory.h"
#include "exec/parallel_scheduler.h"
#include "exec/thread_pool.h"
#include "graph/bin_packing.h"
#include "graph/union_find.h"
#include "model/sort_key.h"
#include "obs/trace.h"
#include "recovery/checkpoint.h"
#include "storage/access_plan.h"
#include "storage/external_sort.h"

namespace iolap {

namespace {

constexpr int32_t kNoComponent = std::numeric_limits<int32_t>::max();

/// Component-order comparators for Step 2: by canonical component id, then
/// canonical key order. The normalized prefix leads with the component id,
/// so intra-sort compares almost never walk the hierarchy terms.
struct ComponentCellLess {
  const std::vector<int32_t>* canon;
  CellSpecLess base;

  bool operator()(const CellRecord& a, const CellRecord& b) const;
  uint64_t KeyPrefix(const CellRecord& a) const;
};

struct ComponentEntryLess {
  const std::vector<int32_t>* canon;
  EntrySpecLess base;

  bool operator()(const ImpreciseRecord& a, const ImpreciseRecord& b) const;
  uint64_t KeyPrefix(const ImpreciseRecord& a) const;
};

int32_t CanonOf(const std::vector<int32_t>& canon, int32_t ccid) {
  return ccid < 0 ? kNoComponent : canon[ccid];
}

bool ComponentCellLess::operator()(const CellRecord& a,
                                   const CellRecord& b) const {
  int32_t ca = CanonOf(*canon, a.ccid), cb = CanonOf(*canon, b.ccid);
  if (ca != cb) return ca < cb;
  return base(a, b);
}

uint64_t ComponentCellLess::KeyPrefix(const CellRecord& a) const {
  uint64_t key = 0;
  int bits = 64;
  PackKeyBits(static_cast<uint32_t>(CanonOf(*canon, a.ccid)), 32, &key,
              &bits);
  PackKeyBits(base.KeyPrefix(a) >> 32, 32, &key, &bits);
  return key;
}

bool ComponentEntryLess::operator()(const ImpreciseRecord& a,
                                    const ImpreciseRecord& b) const {
  int32_t ca = CanonOf(*canon, a.ccid), cb = CanonOf(*canon, b.ccid);
  if (ca != cb) return ca < cb;
  if (a.table != b.table) return a.table < b.table;
  return base(a, b);
}

uint64_t ComponentEntryLess::KeyPrefix(const ImpreciseRecord& a) const {
  uint64_t key = 0;
  int bits = 64;
  PackKeyBits(static_cast<uint32_t>(CanonOf(*canon, a.ccid)), 32, &key,
              &bits);
  PackKeyBits(static_cast<uint16_t>(a.table - INT16_MIN), 16, &key, &bits);
  PackKeyBits(base.KeyPrefix(a) >> 48, 16, &key, &bits);
  return key;
}

/// Accumulates a leaf-space bounding box.
struct Bbox {
  int32_t lo[kMaxDims];
  int32_t hi[kMaxDims];
  bool empty = true;

  void AddCell(const int32_t* leaf, int k) {
    for (int d = 0; d < k; ++d) {
      if (empty || leaf[d] < lo[d]) lo[d] = leaf[d];
      if (empty || leaf[d] > hi[d]) hi[d] = leaf[d];
    }
    empty = false;
  }
  void AddRegion(const StarSchema& schema, const int32_t* node, int k) {
    for (int d = 0; d < k; ++d) {
      int32_t b = schema.dim(d).leaf_begin(node[d]);
      int32_t e = schema.dim(d).leaf_end(node[d]) - 1;
      if (empty || b < lo[d]) lo[d] = b;
      if (empty || e > hi[d]) hi[d] = e;
    }
    empty = false;
  }
};

// ---------------------------------------------------------------------------
// Per-component processing, split from the orchestration loop so the
// parallel scheduler can run in-memory components on worker threads.

/// Loads one component's cell/entry segments into memory through the
/// (thread-safe) buffer pool. Safe to call from worker threads: it only
/// reads the component-sorted files and touches state owned by the caller.
Status LoadComponent(BufferPool& pool, const PreparedDataset& data,
                     const ComponentInfo& info, std::vector<CellRecord>* cells,
                     std::vector<ImpreciseRecord>* entries) {
  cells->reserve(info.cell_end - info.cell_begin);
  {
    auto cur = data.cells.Scan(pool, info.cell_begin, info.cell_end);
    CellRecord c;
    while (!cur.done()) {
      IOLAP_RETURN_IF_ERROR(cur.Next(&c));
      cells->push_back(c);
    }
  }
  entries->reserve(info.entry_end - info.entry_begin);
  {
    auto cur = data.imprecise.Scan(pool, info.entry_begin, info.entry_end);
    ImpreciseRecord e;
    while (!cur.done()) {
      IOLAP_RETURN_IF_ERROR(cur.Next(&e));
      entries->push_back(e);
    }
  }
  return Status::Ok();
}

/// EM-converges one in-memory component. Returns the iterations executed.
int ConvergeComponent(MemoryAllocator* ma, const AllocationOptions& options) {
  return ma->Iterate(options.epsilon, options.EffectiveMaxIterations(),
                     /*force_all_iterations=*/
                     !options.early_convergence &&
                         options.policy != PolicyKind::kUniform);
}

/// Processes one component that exceeds the memory budget with external
/// Block passes over its segments. Needs the whole buffer pool; always runs
/// on the orchestration thread, with no in-memory component in flight.
/// Emits directly to `appender`.
Status RunExternalComponent(StorageEnv& env, const StarSchema& schema,
                            PreparedDataset* data,
                            const AllocationOptions& options,
                            const SpecComparator& canonical,
                            const ComponentInfo& info,
                            TypedFile<EdbRecord>::Appender* appender,
                            AllocationResult* result, int* iterations) {
  BufferPool& pool = env.pool();
  const int max_iterations = options.EffectiveMaxIterations();

  // Discover the per-table subsegments (entries are sorted by table
  // within the component).
  std::vector<TableSegment> segments;
  {
    auto cur = data->imprecise.Scan(pool, info.entry_begin, info.entry_end);
    ImpreciseRecord e;
    int64_t index = info.entry_begin;
    while (!cur.done()) {
      IOLAP_RETURN_IF_ERROR(cur.Next(&e));
      if (segments.empty() || segments.back().table != e.table) {
        if (!segments.empty()) segments.back().end = index;
        segments.push_back(TableSegment{index, index, e.table});
      }
      ++index;
    }
    if (!segments.empty()) segments.back().end = index;
  }
  std::vector<int64_t> sizes;
  for (const TableSegment& seg : segments) {
    sizes.push_back(data->tables[seg.table].partition_pages);
  }
  PackingResult packed = FirstFitDecreasing(
      sizes, std::max<int64_t>(1, env.buffer_pages() - 4));
  std::vector<std::vector<TableSegment>> comp_groups(packed.num_bins);
  for (size_t i = 0; i < segments.size(); ++i) {
    comp_groups[packed.bin_of[i]].push_back(segments[i]);
  }

  PassEngine engine(&pool, &schema, &data->cells, &data->imprecise,
                    &canonical);
  engine.SetCellRange(info.cell_begin, info.cell_end);
  for (int t = 1; t <= max_iterations; ++t) {
    for (const auto& g : comp_groups) {
      IOLAP_RETURN_IF_ERROR(engine.RunGamma(g));
    }
    double max_eps = 0;
    for (size_t g = 0; g < comp_groups.size(); ++g) {
      IOLAP_RETURN_IF_ERROR(engine.RunDelta(comp_groups[g], g == 0,
                                            g + 1 == comp_groups.size(),
                                            &max_eps));
    }
    *iterations = t;
    if (options.early_convergence && max_eps < options.epsilon) break;
  }
  // Emission for this component.
  for (const auto& g : comp_groups) {
    IOLAP_RETURN_IF_ERROR(engine.RunGamma(g));
  }
  EmitStats stats;
  for (const auto& g : comp_groups) {
    IOLAP_RETURN_IF_ERROR(engine.RunEmit(g, appender, &stats));
  }
  result->edges_emitted += stats.edges_emitted;
  result->unallocatable_facts += stats.unallocatable_facts;
  result->peak_window_records =
      std::max(result->peak_window_records, engine.peak_window_records());
  return Status::Ok();
}

/// Computed output of one in-memory component, filled on a worker thread
/// and drained in strict component order by the orchestrator.
struct ComponentOutput {
  std::vector<EdbRecord> rows;
  int iterations = 0;
  int64_t unallocatable = 0;
};

/// One pooled scheduling unit: a contiguous run of in-memory components
/// batched by cost so tiny components amortize task overhead.
struct ComponentBatch {
  std::vector<ComponentInfo>* info_source = nullptr;  // the directory
  std::vector<size_t> dir_index;  // indexes into the component directory
  std::vector<ComponentOutput> outputs;
  int64_t cost = 0;  // cells + entries across the batch
};

Status RunTransitiveComponents(StorageEnv& env, const StarSchema& schema,
                               PreparedDataset* data,
                               const AllocationOptions& options,
                               AllocationResult* result,
                               std::vector<ComponentInfo>& dir,
                               int64_t start_component,
                               CheckpointManager* ckpt);

}  // namespace

Status RunTransitive(StorageEnv& env, const StarSchema& schema,
                     PreparedDataset* data, const AllocationOptions& options,
                     AllocationResult* result,
                     std::vector<ComponentInfo>* directory,
                     CheckpointManager* ckpt) {
  const int k = schema.num_dims();
  BufferPool& pool = env.pool();
  SpecComparator canonical(&schema, SortSpec::Canonical(schema));

  std::vector<ComponentInfo> local_directory;
  std::vector<ComponentInfo>& dir =
      directory != nullptr ? *directory : local_directory;
  // First component index not yet converged-and-emitted. Everything below
  // it is final — its EDB rows sit inside the restored EDB image — so the
  // resumed run never revisits it (DESIGN.md §9).
  int64_t start_component = 0;

  if (ckpt != nullptr && ckpt->resumed()) {
    // The checkpoint captured the component-sorted files and the complete
    // directory, so steps 1–3a (ccid pass, component sort, directory scan)
    // are already paid for. The tail censuses (singleton cells,
    // unallocatable facts) were restored with the result.
    dir = ckpt->TakeDirectory();
    start_component = ckpt->start_component();
    return RunTransitiveComponents(env, schema, data, options, result, dir,
                                   start_component, ckpt);
  }

  // ---- Step 1: assign ccids with one Block-style pass per group.
  auto groups = PackTableGroups(*data, env.buffer_pages());
  result->num_groups = static_cast<int>(groups.size());
  UnionFind uf(0);
  {
    TraceSpan ccid_span("transitive.ccid");
    PassEngine engine(&pool, &schema, &data->cells, &data->imprecise,
                      &canonical);
    for (const auto& group : groups) {
      IOLAP_RETURN_IF_ERROR(engine.RunCcid(group, &uf));
    }
    result->peak_window_records =
        std::max(result->peak_window_records, engine.peak_window_records());
  }

  // Collapse the ccidMap to canonical ("true") component ids.
  std::vector<int32_t> canon(uf.size());
  for (int32_t i = 0; i < uf.size(); ++i) canon[i] = uf.Canonical(i);

  // ---- Step 2: sort all tuples into component order.
  {
    TraceSpan sort_span("transitive.component_sort");
    ExternalSorter<CellRecord> cell_sorter(&env.disk(), &pool,
                                           env.buffer_pages(), options.io);
    IOLAP_RETURN_IF_ERROR(cell_sorter.Sort(
        &data->cells,
        ComponentCellLess{&canon, CellSpecLess(&canonical)}));
    ExternalSorter<ImpreciseRecord> entry_sorter(&env.disk(), &pool,
                                                 env.buffer_pages(),
                                                 options.io);
    IOLAP_RETURN_IF_ERROR(entry_sorter.Sort(
        &data->imprecise,
        ComponentEntryLess{&canon, EntrySpecLess(&canonical)}));
  }

  // ---- Step 3a: one streaming scan building the component directory.
  dir.clear();
  {
    TraceSpan dir_span("transitive.directory");
    // The directory pass reads both files front to back exactly once.
    AccessPlan dir_plan;
    if (data->cells.size() > 0) {
      dir_plan.AddRange(data->cells.file_id(), 0,
                        TypedFile<CellRecord>::PageOf(data->cells.size() - 1) +
                            1);
    }
    if (data->imprecise.size() > 0) {
      dir_plan.AddRange(
          data->imprecise.file_id(), 0,
          TypedFile<ImpreciseRecord>::PageOf(data->imprecise.size() - 1) + 1);
    }
    BufferPool::PlannedAccess dir_planned = pool.BeginPlannedAccess(dir_plan);
    auto cc = data->cells.Scan(pool);
    auto ec = data->imprecise.Scan(pool);
    CellRecord cell;
    ImpreciseRecord entry;
    bool have_cell = !cc.done(), have_entry = !ec.done();
    int64_t cell_index = 0, entry_index = 0;
    if (have_cell) IOLAP_RETURN_IF_ERROR(cc.Next(&cell));
    if (have_entry) IOLAP_RETURN_IF_ERROR(ec.Next(&entry));

    while (have_cell || have_entry) {
      int32_t ckey = have_cell ? CanonOf(canon, cell.ccid) : kNoComponent;
      int32_t ekey = have_entry ? CanonOf(canon, entry.ccid) : kNoComponent;
      int32_t id = std::min(ckey, ekey);
      if (id == kNoComponent) {
        // Tail: cells in no component (precise-only singletons), real
        // entries that overlap no cell, and page-padding sentinels.
        while (have_cell) {
          ++result->components.num_singleton_cells;
          ++cell_index;
          have_cell = !cc.done();
          if (have_cell) IOLAP_RETURN_IF_ERROR(cc.Next(&cell));
        }
        while (have_entry) {
          if (entry.fact_id >= 0) ++result->unallocatable_facts;
          ++entry_index;
          have_entry = !ec.done();
          if (have_entry) IOLAP_RETURN_IF_ERROR(ec.Next(&entry));
        }
        break;
      }
      ComponentInfo info;
      info.ccid = id;
      info.cell_begin = cell_index;
      info.entry_begin = entry_index;
      Bbox bbox;
      while (have_cell && CanonOf(canon, cell.ccid) == id) {
        bbox.AddCell(cell.leaf, k);
        ++cell_index;
        have_cell = !cc.done();
        if (have_cell) IOLAP_RETURN_IF_ERROR(cc.Next(&cell));
      }
      while (have_entry && CanonOf(canon, entry.ccid) == id) {
        bbox.AddRegion(schema, entry.node, k);
        ++entry_index;
        have_entry = !ec.done();
        if (have_entry) IOLAP_RETURN_IF_ERROR(ec.Next(&entry));
      }
      info.cell_end = cell_index;
      info.entry_end = entry_index;
      std::memcpy(info.bbox_lo, bbox.lo, sizeof(info.bbox_lo));
      std::memcpy(info.bbox_hi, bbox.hi, sizeof(info.bbox_hi));
      dir.push_back(info);
    }
  }

  // ---- Step 3b.
  return RunTransitiveComponents(env, schema, data, options, result, dir,
                                 start_component, ckpt);
}

namespace {

/// Step 3b: process components [start_component, dir.size()) to
/// convergence and emit, in strict component order. Compute runs serially
/// or component-parallel (options.num_threads); emission order — and
/// therefore the EDB bytes — is identical either way, because components
/// are disjoint subgraphs whose floating-point results do not depend on
/// scheduling. With `ckpt`, commits a checkpoint every
/// `checkpoint.every` finished components plus a final one; both paths
/// checkpoint only from the orchestration thread.
Status RunTransitiveComponents(StorageEnv& env, const StarSchema& schema,
                               PreparedDataset* data,
                               const AllocationOptions& options,
                               AllocationResult* result,
                               std::vector<ComponentInfo>& dir,
                               int64_t start_component,
                               CheckpointManager* ckpt) {
  BufferPool& pool = env.pool();
  SpecComparator canonical(&schema, SortSpec::Canonical(schema));
  const int64_t cell_rpp = TypedFile<CellRecord>::kRecordsPerPage;
  const int64_t imp_rpp = TypedFile<ImpreciseRecord>::kRecordsPerPage;
  const int64_t budget_records_limit =
      std::max<int64_t>(1, env.buffer_pages() - 2);
  auto appender = result->edb.MakeAppender(pool);

  auto pages_of = [&](const ComponentInfo& info) {
    return (info.cell_end - info.cell_begin + cell_rpp - 1) / cell_rpp +
           (info.entry_end - info.entry_begin + imp_rpp - 1) / imp_rpp;
  };
  // Census bookkeeping shared by the serial and parallel paths; called in
  // component order.
  auto account = [&](const ComponentInfo& info, int iterations) {
    result->components.largest_component =
        std::max(result->components.largest_component, info.tuples());
    ++result->components.num_components;
    result->components.max_component_iterations =
        std::max<int64_t>(result->components.max_component_iterations,
                          iterations);
    result->components.total_component_iterations += iterations;
    result->iterations =
        static_cast<int>(result->components.max_component_iterations);
  };

  // Every worker holds at most one pinned page while loading its
  // component, and the appender holds one more — clamp the thread count so
  // the pool can never run out of frames.
  const int num_threads = static_cast<int>(std::min<int64_t>(
      std::max(1, options.num_threads),
      std::max<int64_t>(1, env.buffer_pages() - 2)));

  if (num_threads <= 1) {
    // Serial path: exactly the classic Algorithm 5 loop. Consecutive
    // in-memory components are covered by one stretched access plan (their
    // loads are a single forward scan of both files); external components
    // run their own passes — which emit their own plans — so the stretch
    // ends before each one.
    BufferPool::PlannedAccess stretch;
    size_t stretch_end = static_cast<size_t>(start_component);
    for (size_t i = static_cast<size_t>(start_component); i < dir.size();
         ++i) {
      ComponentInfo& info = dir[i];
      TraceSpan component_span("transitive.component");
      component_span.AddArg("ccid", info.ccid);
      component_span.AddArg("tuples", info.tuples());
      info.edb_begin = result->edb.size();
      const int64_t pages = pages_of(info);
      int iterations = 0;
      if (pages <= budget_records_limit) {
        if (i >= stretch_end) {
          size_t j = i;
          while (j < dir.size() && pages_of(dir[j]) <= budget_records_limit) {
            ++j;
          }
          AccessPlan plan;
          if (dir[j - 1].cell_end > info.cell_begin) {
            plan.AddRange(
                data->cells.file_id(),
                TypedFile<CellRecord>::PageOf(info.cell_begin),
                TypedFile<CellRecord>::PageOf(dir[j - 1].cell_end - 1) + 1);
          }
          if (dir[j - 1].entry_end > info.entry_begin) {
            plan.AddRange(
                data->imprecise.file_id(),
                TypedFile<ImpreciseRecord>::PageOf(info.entry_begin),
                TypedFile<ImpreciseRecord>::PageOf(dir[j - 1].entry_end - 1) +
                    1);
          }
          stretch = pool.BeginPlannedAccess(plan);
          stretch_end = j;
        }
        std::vector<CellRecord> cells;
        std::vector<ImpreciseRecord> entries;
        IOLAP_RETURN_IF_ERROR(
            LoadComponent(pool, *data, info, &cells, &entries));
        MemoryAllocator ma(&schema, std::move(cells), std::move(entries));
        iterations = ConvergeComponent(&ma, options);
        IOLAP_RETURN_IF_ERROR(ma.Emit(&appender, &result->edges_emitted,
                                      &result->unallocatable_facts));
      } else {
        stretch = BufferPool::PlannedAccess();
        stretch_end = i + 1;
        ++result->components.num_large_components;
        result->components.large_component_pages += pages;
        IOLAP_RETURN_IF_ERROR(
            RunExternalComponent(env, schema, data, options, canonical, info,
                                 &appender, result, &iterations));
      }
      info.edb_end = result->edb.size();
      account(info, iterations);
      if (ckpt != nullptr &&
          ckpt->DueAtComponent(static_cast<int64_t>(i) + 1)) {
        IOLAP_RETURN_IF_ERROR(ckpt->CheckpointComponents(
            static_cast<int64_t>(i) + 1, data, *result, dir));
      }
    }
    appender.Close();
    if (ckpt != nullptr) {
      IOLAP_RETURN_IF_ERROR(ckpt->CheckpointComponents(
          static_cast<int64_t>(dir.size()), data, *result, dir));
    }
    return Status::Ok();
  }

  // Parallel path: shard the in-memory components across a worker pool,
  // batching consecutive components by cost (cells + entries) so tiny
  // components amortize task overhead. External components become inline
  // barrier units — they get the whole buffer pool, exactly as in the
  // serial path.
  int64_t total_small_cost = 0;
  for (size_t i = static_cast<size_t>(start_component); i < dir.size(); ++i) {
    if (pages_of(dir[i]) <= budget_records_limit) {
      total_small_cost += dir[i].tuples();
    }
  }
  const int64_t chunk_target = std::max<int64_t>(
      1, total_small_cost / (static_cast<int64_t>(num_threads) * 16));

  std::vector<std::unique_ptr<ComponentBatch>> batches;
  std::vector<ScheduledUnit> units;
  ComponentBatch* open_batch = nullptr;

  auto add_pooled_unit = [&](ComponentBatch* batch) {
    batch->outputs.resize(batch->dir_index.size());
    ScheduledUnit unit;
    unit.cost = batch->cost;
    unit.run = [batch, &pool, data, &schema, &options]() -> Status {
      TraceSpan batch_span("transitive.batch");
      batch_span.AddArg("components",
                        static_cast<int64_t>(batch->dir_index.size()));
      batch_span.AddArg("cost", batch->cost);
      for (size_t j = 0; j < batch->dir_index.size(); ++j) {
        const ComponentInfo& info_j = (*batch->info_source)[batch->dir_index[j]];
        std::vector<CellRecord> cells;
        std::vector<ImpreciseRecord> entries;
        IOLAP_RETURN_IF_ERROR(
            LoadComponent(pool, *data, info_j, &cells, &entries));
        MemoryAllocator ma(&schema, std::move(cells), std::move(entries));
        ComponentOutput& out = batch->outputs[j];
        out.iterations = ConvergeComponent(&ma, options);
        ma.EmitToVector(&out.rows, &out.unallocatable);
      }
      return Status::Ok();
    };
    unit.emit = [batch, &appender, result, &account, ckpt, &dir,
                 data]() -> Status {
      for (size_t j = 0; j < batch->dir_index.size(); ++j) {
        ComponentInfo& info_j = (*batch->info_source)[batch->dir_index[j]];
        ComponentOutput& out = batch->outputs[j];
        info_j.edb_begin = result->edb.size();
        for (const EdbRecord& row : out.rows) {
          IOLAP_RETURN_IF_ERROR(appender.Append(row));
        }
        info_j.edb_end = result->edb.size();
        result->edges_emitted += static_cast<int64_t>(out.rows.size());
        result->unallocatable_facts += out.unallocatable;
        account(info_j, out.iterations);
        std::vector<EdbRecord>().swap(out.rows);  // free as we go
      }
      // Emit closures run in strict component order on the orchestration
      // thread, so checkpointing here sees exactly the serial-path state.
      if (ckpt != nullptr) {
        int64_t next = static_cast<int64_t>(batch->dir_index.back()) + 1;
        if (ckpt->DueAtComponent(next)) {
          IOLAP_RETURN_IF_ERROR(
              ckpt->CheckpointComponents(next, data, *result, dir));
        }
      }
      return Status::Ok();
    };
    units.push_back(std::move(unit));
  };
  auto flush_batch = [&]() {
    if (open_batch != nullptr) add_pooled_unit(open_batch);
    open_batch = nullptr;
  };

  for (size_t i = static_cast<size_t>(start_component); i < dir.size(); ++i) {
    ComponentInfo& info = dir[i];
    const int64_t pages = pages_of(info);
    if (pages > budget_records_limit) {
      // External component: an inline barrier unit. The scheduler drains
      // every in-flight worker before running it, so the Block passes get
      // the whole buffer pool — exactly as in the serial path.
      flush_batch();
      ScheduledUnit unit;
      unit.cost = info.tuples();
      unit.run_inline = true;
      ComponentInfo* info_ptr = &info;
      const int64_t next = static_cast<int64_t>(i) + 1;
      unit.run = [&env, &schema, data, &options, &canonical, info_ptr,
                  &appender, result, &account, pages, ckpt, &dir,
                  next]() -> Status {
        TraceSpan external_span("transitive.external_component");
        external_span.AddArg("ccid", info_ptr->ccid);
        external_span.AddArg("pages", pages);
        info_ptr->edb_begin = result->edb.size();
        ++result->components.num_large_components;
        result->components.large_component_pages += pages;
        int iterations = 0;
        IOLAP_RETURN_IF_ERROR(
            RunExternalComponent(env, schema, data, options, canonical,
                                 *info_ptr, &appender, result, &iterations));
        info_ptr->edb_end = result->edb.size();
        account(*info_ptr, iterations);
        // Inline units run with no worker in flight, on the orchestration
        // thread — safe to checkpoint.
        if (ckpt != nullptr && ckpt->DueAtComponent(next)) {
          IOLAP_RETURN_IF_ERROR(
              ckpt->CheckpointComponents(next, data, *result, dir));
        }
        return Status::Ok();
      };
      units.push_back(std::move(unit));
      continue;
    }
    if (open_batch == nullptr) {
      batches.push_back(std::make_unique<ComponentBatch>());
      open_batch = batches.back().get();
      open_batch->info_source = &dir;
    }
    open_batch->dir_index.push_back(i);
    open_batch->cost += info.tuples();
    if (open_batch->cost >= chunk_target) flush_batch();
  }
  flush_batch();

  ThreadPool workers(num_threads);
  // Bound computed-but-unemitted work: a handful of chunks per worker.
  ParallelScheduler scheduler(&workers,
                              chunk_target * (static_cast<int64_t>(num_threads) + 2));
  IOLAP_RETURN_IF_ERROR(scheduler.Execute(units));

  appender.Close();
  if (ckpt != nullptr) {
    IOLAP_RETURN_IF_ERROR(ckpt->CheckpointComponents(
        static_cast<int64_t>(dir.size()), data, *result, dir));
  }
  return Status::Ok();
}

}  // namespace

}  // namespace iolap
