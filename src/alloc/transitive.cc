#include <algorithm>
#include <cstring>
#include <limits>

#include "alloc/algorithms.h"
#include "alloc/in_memory.h"
#include "graph/bin_packing.h"
#include "graph/union_find.h"
#include "model/sort_key.h"
#include "storage/external_sort.h"

namespace iolap {

namespace {

constexpr int32_t kNoComponent = std::numeric_limits<int32_t>::max();

int32_t CanonOf(const std::vector<int32_t>& canon, int32_t ccid) {
  return ccid < 0 ? kNoComponent : canon[ccid];
}

/// Accumulates a leaf-space bounding box.
struct Bbox {
  int32_t lo[kMaxDims];
  int32_t hi[kMaxDims];
  bool empty = true;

  void AddCell(const int32_t* leaf, int k) {
    for (int d = 0; d < k; ++d) {
      if (empty || leaf[d] < lo[d]) lo[d] = leaf[d];
      if (empty || leaf[d] > hi[d]) hi[d] = leaf[d];
    }
    empty = false;
  }
  void AddRegion(const StarSchema& schema, const int32_t* node, int k) {
    for (int d = 0; d < k; ++d) {
      int32_t b = schema.dim(d).leaf_begin(node[d]);
      int32_t e = schema.dim(d).leaf_end(node[d]) - 1;
      if (empty || b < lo[d]) lo[d] = b;
      if (empty || e > hi[d]) hi[d] = e;
    }
    empty = false;
  }
};

}  // namespace

Status RunTransitive(StorageEnv& env, const StarSchema& schema,
                     PreparedDataset* data, const AllocationOptions& options,
                     AllocationResult* result,
                     std::vector<ComponentInfo>* directory) {
  const int k = schema.num_dims();
  BufferPool& pool = env.pool();
  SpecComparator canonical(&schema, SortSpec::Canonical(schema));

  // ---- Step 1: assign ccids with one Block-style pass per group.
  auto groups = PackTableGroups(*data, env.buffer_pages());
  result->num_groups = static_cast<int>(groups.size());
  UnionFind uf(0);
  {
    PassEngine engine(&pool, &schema, &data->cells, &data->imprecise,
                      &canonical);
    for (const auto& group : groups) {
      IOLAP_RETURN_IF_ERROR(engine.RunCcid(group, &uf));
    }
    result->peak_window_records =
        std::max(result->peak_window_records, engine.peak_window_records());
  }

  // Collapse the ccidMap to canonical ("true") component ids.
  std::vector<int32_t> canon(uf.size());
  for (int32_t i = 0; i < uf.size(); ++i) canon[i] = uf.Canonical(i);

  // ---- Step 2: sort all tuples into component order.
  {
    ExternalSorter<CellRecord> cell_sorter(&env.disk(), &pool,
                                           env.buffer_pages());
    IOLAP_RETURN_IF_ERROR(cell_sorter.Sort(
        &data->cells, [&](const CellRecord& a, const CellRecord& b) {
          int32_t ca = CanonOf(canon, a.ccid), cb = CanonOf(canon, b.ccid);
          if (ca != cb) return ca < cb;
          return canonical.CellLess(a, b);
        }));
    ExternalSorter<ImpreciseRecord> entry_sorter(&env.disk(), &pool,
                                                 env.buffer_pages());
    IOLAP_RETURN_IF_ERROR(entry_sorter.Sort(
        &data->imprecise,
        [&](const ImpreciseRecord& a, const ImpreciseRecord& b) {
          int32_t ca = CanonOf(canon, a.ccid), cb = CanonOf(canon, b.ccid);
          if (ca != cb) return ca < cb;
          if (a.table != b.table) return a.table < b.table;
          return canonical.EntryLess(a, b);
        }));
  }

  // ---- Step 3a: one streaming scan building the component directory.
  std::vector<ComponentInfo> local_directory;
  std::vector<ComponentInfo>& dir =
      directory != nullptr ? *directory : local_directory;
  dir.clear();
  {
    auto cc = data->cells.Scan(pool);
    auto ec = data->imprecise.Scan(pool);
    CellRecord cell;
    ImpreciseRecord entry;
    bool have_cell = !cc.done(), have_entry = !ec.done();
    int64_t cell_index = 0, entry_index = 0;
    if (have_cell) IOLAP_RETURN_IF_ERROR(cc.Next(&cell));
    if (have_entry) IOLAP_RETURN_IF_ERROR(ec.Next(&entry));

    while (have_cell || have_entry) {
      int32_t ckey = have_cell ? CanonOf(canon, cell.ccid) : kNoComponent;
      int32_t ekey = have_entry ? CanonOf(canon, entry.ccid) : kNoComponent;
      int32_t id = std::min(ckey, ekey);
      if (id == kNoComponent) {
        // Tail: cells in no component (precise-only singletons), real
        // entries that overlap no cell, and page-padding sentinels.
        while (have_cell) {
          ++result->components.num_singleton_cells;
          ++cell_index;
          have_cell = !cc.done();
          if (have_cell) IOLAP_RETURN_IF_ERROR(cc.Next(&cell));
        }
        while (have_entry) {
          if (entry.fact_id >= 0) ++result->unallocatable_facts;
          ++entry_index;
          have_entry = !ec.done();
          if (have_entry) IOLAP_RETURN_IF_ERROR(ec.Next(&entry));
        }
        break;
      }
      ComponentInfo info;
      info.ccid = id;
      info.cell_begin = cell_index;
      info.entry_begin = entry_index;
      Bbox bbox;
      while (have_cell && CanonOf(canon, cell.ccid) == id) {
        bbox.AddCell(cell.leaf, k);
        ++cell_index;
        have_cell = !cc.done();
        if (have_cell) IOLAP_RETURN_IF_ERROR(cc.Next(&cell));
      }
      while (have_entry && CanonOf(canon, entry.ccid) == id) {
        bbox.AddRegion(schema, entry.node, k);
        ++entry_index;
        have_entry = !ec.done();
        if (have_entry) IOLAP_RETURN_IF_ERROR(ec.Next(&entry));
      }
      info.cell_end = cell_index;
      info.entry_end = entry_index;
      std::memcpy(info.bbox_lo, bbox.lo, sizeof(info.bbox_lo));
      std::memcpy(info.bbox_hi, bbox.hi, sizeof(info.bbox_hi));
      dir.push_back(info);
    }
  }

  // ---- Step 3b: process each component to convergence and emit.
  const int64_t cell_rpp = TypedFile<CellRecord>::kRecordsPerPage;
  const int64_t imp_rpp = TypedFile<ImpreciseRecord>::kRecordsPerPage;
  const int64_t budget_records_limit =
      std::max<int64_t>(1, env.buffer_pages() - 2);
  auto appender = result->edb.MakeAppender(pool);
  const int max_iterations = options.EffectiveMaxIterations();

  for (ComponentInfo& info : dir) {
    info.edb_begin = result->edb.size();
    const int64_t pages =
        (info.cell_end - info.cell_begin + cell_rpp - 1) / cell_rpp +
        (info.entry_end - info.entry_begin + imp_rpp - 1) / imp_rpp;
    result->components.largest_component =
        std::max(result->components.largest_component, info.tuples());
    ++result->components.num_components;

    int iterations = 0;
    if (pages <= budget_records_limit) {
      // Small component: read into memory, run Basic to convergence.
      std::vector<CellRecord> cells;
      cells.reserve(info.cell_end - info.cell_begin);
      {
        auto cur = data->cells.Scan(pool, info.cell_begin, info.cell_end);
        CellRecord c;
        while (!cur.done()) {
          IOLAP_RETURN_IF_ERROR(cur.Next(&c));
          cells.push_back(c);
        }
      }
      std::vector<ImpreciseRecord> entries;
      entries.reserve(info.entry_end - info.entry_begin);
      {
        auto cur =
            data->imprecise.Scan(pool, info.entry_begin, info.entry_end);
        ImpreciseRecord e;
        while (!cur.done()) {
          IOLAP_RETURN_IF_ERROR(cur.Next(&e));
          entries.push_back(e);
        }
      }
      MemoryAllocator ma(&schema, std::move(cells), std::move(entries));
      iterations = ma.Iterate(options.epsilon, max_iterations,
                              /*force_all_iterations=*/
                              !options.early_convergence &&
                                  options.policy != PolicyKind::kUniform);
      IOLAP_RETURN_IF_ERROR(ma.Emit(&appender, &result->edges_emitted,
                                    &result->unallocatable_facts));
    } else {
      // Large component: external Block over the component's segments.
      ++result->components.num_large_components;
      result->components.large_component_pages += pages;

      // Discover the per-table subsegments (entries are sorted by table
      // within the component).
      std::vector<TableSegment> segments;
      {
        auto cur =
            data->imprecise.Scan(pool, info.entry_begin, info.entry_end);
        ImpreciseRecord e;
        int64_t index = info.entry_begin;
        while (!cur.done()) {
          IOLAP_RETURN_IF_ERROR(cur.Next(&e));
          if (segments.empty() || segments.back().table != e.table) {
            if (!segments.empty()) segments.back().end = index;
            segments.push_back(TableSegment{index, index, e.table});
          }
          ++index;
        }
        if (!segments.empty()) segments.back().end = index;
      }
      std::vector<int64_t> sizes;
      for (const TableSegment& seg : segments) {
        sizes.push_back(data->tables[seg.table].partition_pages);
      }
      PackingResult packed = FirstFitDecreasing(
          sizes, std::max<int64_t>(1, env.buffer_pages() - 4));
      std::vector<std::vector<TableSegment>> comp_groups(packed.num_bins);
      for (size_t i = 0; i < segments.size(); ++i) {
        comp_groups[packed.bin_of[i]].push_back(segments[i]);
      }

      PassEngine engine(&pool, &schema, &data->cells, &data->imprecise,
                        &canonical);
      engine.SetCellRange(info.cell_begin, info.cell_end);
      for (int t = 1; t <= max_iterations; ++t) {
        for (const auto& g : comp_groups) {
          IOLAP_RETURN_IF_ERROR(engine.RunGamma(g));
        }
        double max_eps = 0;
        for (size_t g = 0; g < comp_groups.size(); ++g) {
          IOLAP_RETURN_IF_ERROR(
              engine.RunDelta(comp_groups[g], g == 0,
                              g + 1 == comp_groups.size(), &max_eps));
        }
        iterations = t;
        if (options.early_convergence && max_eps < options.epsilon) break;
      }
      // Emission for this component.
      for (const auto& g : comp_groups) {
        IOLAP_RETURN_IF_ERROR(engine.RunGamma(g));
      }
      EmitStats stats;
      for (const auto& g : comp_groups) {
        IOLAP_RETURN_IF_ERROR(engine.RunEmit(g, &appender, &stats));
      }
      result->edges_emitted += stats.edges_emitted;
      result->unallocatable_facts += stats.unallocatable_facts;
      result->peak_window_records =
          std::max(result->peak_window_records, engine.peak_window_records());
    }
    info.edb_end = result->edb.size();
    result->components.max_component_iterations =
        std::max<int64_t>(result->components.max_component_iterations,
                          iterations);
    result->components.total_component_iterations += iterations;
    result->iterations =
        static_cast<int>(result->components.max_component_iterations);
  }
  appender.Close();
  return Status::Ok();
}

}  // namespace iolap
