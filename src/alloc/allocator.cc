#include "alloc/allocator.h"

#include "alloc/algorithms.h"
#include "alloc/preprocess.h"
#include "common/stopwatch.h"

namespace iolap {

Result<AllocationResult> Allocator::Run(StorageEnv& env,
                                        const StarSchema& schema,
                                        TypedFile<FactRecord>* facts,
                                        const AllocationOptions& options) {
  AllocationResult result;
  // The I/O pipeline knobs live on the pool for the duration of this run:
  // sequential cursors check them when issuing read-ahead hints and flushes
  // pick per-page vs. batched write-back.
  env.pool().ConfigureReadAhead(options.io.read_ahead_pages);
  env.pool().set_batched_writeback(options.io.batched_writeback);
  IoStats io_before = env.disk().stats();
  Stopwatch watch;

  IOLAP_ASSIGN_OR_RETURN(PreparedDataset data,
                         PrepareDataset(env, schema, facts, options));
  result.prep_seconds = watch.ElapsedSeconds();
  result.prep_io = env.disk().stats() - io_before;
  result.num_cells = data.cells.size();
  result.num_precise = data.num_precise_facts;
  result.num_imprecise = data.num_imprecise_facts;
  result.num_tables = static_cast<int>(data.tables.size());
  // The precise facts' EDB rows were emitted during preprocessing; the
  // allocation rows are appended behind them.
  result.edb = data.precise_edb;

  io_before = env.disk().stats();
  watch.Restart();
  switch (options.algorithm) {
    case AlgorithmKind::kBasic:
      IOLAP_RETURN_IF_ERROR(RunBasic(env, schema, &data, options, &result));
      break;
    case AlgorithmKind::kIndependent: {
      IOLAP_RETURN_IF_ERROR(
          RunIndependent(env, schema, &data, options, &result));
      result.alloc_seconds = watch.ElapsedSeconds();
      result.alloc_io = env.disk().stats() - io_before;
      io_before = env.disk().stats();
      watch.Restart();
      auto groups = PackTableGroups(data, env.buffer_pages());
      IOLAP_RETURN_IF_ERROR(EmitExternal(env, schema, &data, groups, &result));
      result.emit_seconds = watch.ElapsedSeconds();
      result.emit_io = env.disk().stats() - io_before;
      return result;
    }
    case AlgorithmKind::kBlock: {
      IOLAP_RETURN_IF_ERROR(RunBlock(env, schema, &data, options, &result));
      result.alloc_seconds = watch.ElapsedSeconds();
      result.alloc_io = env.disk().stats() - io_before;
      io_before = env.disk().stats();
      watch.Restart();
      auto groups = PackTableGroups(data, env.buffer_pages());
      IOLAP_RETURN_IF_ERROR(EmitExternal(env, schema, &data, groups, &result));
      result.emit_seconds = watch.ElapsedSeconds();
      result.emit_io = env.disk().stats() - io_before;
      return result;
    }
    case AlgorithmKind::kTransitive:
      // Transitive emits per component; emission time is folded into the
      // allocation phase (that is intrinsic to the algorithm).
      IOLAP_RETURN_IF_ERROR(
          RunTransitive(env, schema, &data, options, &result, nullptr));
      break;
  }
  result.alloc_seconds = watch.ElapsedSeconds();
  result.alloc_io = env.disk().stats() - io_before;
  return result;
}

}  // namespace iolap
