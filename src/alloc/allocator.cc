#include "alloc/allocator.h"

#include <memory>

#include "alloc/algorithms.h"
#include "alloc/preprocess.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recovery/checkpoint.h"

namespace iolap {

namespace {

/// Mirrors the run's headline numbers into the installed registry so the
/// metrics dump carries the same demand-I/O counts as AllocationResult
/// (the quantities the paper's theorems bound).
void PublishResult(const AllocationResult& result) {
  MetricsRegistry* m = GlobalMetrics();
  if (m == nullptr) return;
  auto io = [&](const char* phase, const IoStats& s) {
    std::string p = std::string("alloc.") + phase;
    m->counter(p + "_io.page_reads")->Add(s.page_reads);
    m->counter(p + "_io.page_writes")->Add(s.page_writes);
    m->counter(p + "_io.prefetch_reads")->Add(s.prefetch_reads);
  };
  io("prep", result.prep_io);
  io("alloc", result.alloc_io);
  io("emit", result.emit_io);
  m->counter("alloc.iterations")->Add(result.iterations);
  m->counter("alloc.num_cells")->Add(result.num_cells);
  m->counter("alloc.num_precise")->Add(result.num_precise);
  m->counter("alloc.num_imprecise")->Add(result.num_imprecise);
  m->counter("alloc.num_groups")->Add(result.num_groups);
  m->counter("alloc.edges_emitted")->Add(result.edges_emitted);
  m->counter("alloc.unallocatable_facts")->Add(result.unallocatable_facts);
}

}  // namespace

Result<AllocationResult> Allocator::Run(StorageEnv& env,
                                        const StarSchema& schema,
                                        TypedFile<FactRecord>* facts,
                                        const AllocationOptions& options) {
  TraceSpan run_span("alloc.run");
  AllocationResult result;
  // The I/O pipeline knobs live on the pool for the duration of this run:
  // sequential cursors check them when issuing read-ahead hints and flushes
  // pick per-page vs. batched write-back.
  env.pool().ConfigureReadAhead(options.io.read_ahead_pages);
  env.pool().set_batched_writeback(options.io.batched_writeback);
  env.pool().ConfigurePlanReadAhead(options.io.io_backend,
                                    options.io.plan_in_flight);
  IoStats io_before = env.disk().stats();
  Stopwatch watch;

  std::unique_ptr<CheckpointManager> ckpt;
  if (options.checkpoint.enabled()) {
    IOLAP_ASSIGN_OR_RETURN(
        ckpt, CheckpointManager::Open(&env, options, schema.num_dims()));
  }

  TraceSpan prep_span("alloc.prep");
  PreparedDataset data;
  bool resumed = false;
  if (ckpt != nullptr && options.checkpoint.resume) {
    // A successful resume restores both the prepared dataset (workspace
    // files imported from the checkpoint images) and the partial result;
    // no checkpoint found means a fresh run.
    IOLAP_ASSIGN_OR_RETURN(resumed, ckpt->TryResume(&data, &result));
  }
  if (!resumed) {
    IOLAP_ASSIGN_OR_RETURN(data, PrepareDataset(env, schema, facts, options));
  }
  result.prep_seconds = watch.ElapsedSeconds();
  result.prep_io = env.disk().stats() - io_before;
  prep_span.AddArg("page_reads", result.prep_io.page_reads);
  prep_span.AddArg("page_writes", result.prep_io.page_writes);
  prep_span.End();
  if (!resumed) {
    result.num_cells = data.cells.size();
    result.num_precise = data.num_precise_facts;
    result.num_imprecise = data.num_imprecise_facts;
    result.num_tables = static_cast<int>(data.tables.size());
  }
  // The precise facts' EDB rows were emitted during preprocessing; the
  // allocation rows are appended behind them.
  result.edb = data.precise_edb;

  io_before = env.disk().stats();
  watch.Restart();
  TraceSpan alloc_span("alloc.iterate");
  switch (options.algorithm) {
    case AlgorithmKind::kBasic:
      IOLAP_RETURN_IF_ERROR(
          RunBasic(env, schema, &data, options, &result, ckpt.get()));
      break;
    case AlgorithmKind::kIndependent:
    case AlgorithmKind::kBlock: {
      if (options.algorithm == AlgorithmKind::kIndependent) {
        IOLAP_RETURN_IF_ERROR(
            RunIndependent(env, schema, &data, options, &result, ckpt.get()));
      } else {
        IOLAP_RETURN_IF_ERROR(
            RunBlock(env, schema, &data, options, &result, ckpt.get()));
      }
      result.alloc_seconds = watch.ElapsedSeconds();
      result.alloc_io = env.disk().stats() - io_before;
      alloc_span.AddArg("iterations", result.iterations);
      alloc_span.End();
      io_before = env.disk().stats();
      watch.Restart();
      TraceSpan emit_span("alloc.emit");
      auto groups = PackTableGroups(data, env.buffer_pages());
      IOLAP_RETURN_IF_ERROR(EmitExternal(env, schema, &data, groups, &result));
      result.emit_seconds = watch.ElapsedSeconds();
      result.emit_io = env.disk().stats() - io_before;
      emit_span.AddArg("edges", result.edges_emitted);
      emit_span.End();
      PublishResult(result);
      return result;
    }
    case AlgorithmKind::kTransitive:
      // Transitive emits per component; emission time is folded into the
      // allocation phase (that is intrinsic to the algorithm).
      IOLAP_RETURN_IF_ERROR(RunTransitive(env, schema, &data, options,
                                          &result, nullptr, ckpt.get()));
      break;
  }
  result.alloc_seconds = watch.ElapsedSeconds();
  result.alloc_io = env.disk().stats() - io_before;
  alloc_span.AddArg("iterations", result.iterations);
  alloc_span.End();
  PublishResult(result);
  return result;
}

}  // namespace iolap
