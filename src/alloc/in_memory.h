#ifndef IOLAP_ALLOC_IN_MEMORY_H_
#define IOLAP_ALLOC_IN_MEMORY_H_

#include <cstdint>
#include <vector>

#include "alloc/policy.h"
#include "common/result.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/paged_file.h"

namespace iolap {

/// In-memory evaluation of the allocation equations over one (sub)graph —
/// the Basic Algorithm (Algorithm 1), also reused by Transitive for every
/// connected component that fits in the buffer.
///
/// Thread compatibility: an instance owns all of its mutable state (its
/// copies of the cells and entries, the edge lists, and the Δ/Γ values) and
/// only reads the shared `schema`, so distinct instances may run
/// concurrently on different threads — the parallel Transitive path runs
/// one per in-flight component. A single instance is not thread-safe.
class MemoryAllocator {
 public:
  /// `cells` must be sorted in canonical order. `entries` may come from any
  /// mix of summary tables; they are indexed against the cells once.
  MemoryAllocator(const StarSchema* schema, std::vector<CellRecord> cells,
                  std::vector<ImpreciseRecord> entries);

  /// Runs EM iterations until the per-cell relative change drops below
  /// `epsilon` everywhere, or `max_iterations` is reached. With
  /// `force_all_iterations` the convergence test is ignored (the
  /// no-early-convergence ablation). Returns the iterations executed.
  int Iterate(double epsilon, int max_iterations, bool force_all_iterations);

  /// Runs exactly one EM iteration and returns the max relative change of
  /// Δ. Stepping primitive for checkpointed Basic runs: all iteration state
  /// lives in the records (`delta_prev`, `gamma`), so interleaving
  /// IterateOnce with snapshots of cells()/entries() is equivalent to one
  /// uninterrupted Iterate call.
  double IterateOnce();

  /// Appends one EDB row per (entry, covered cell) with p = Δ(c)/Γ(r),
  /// where Γ is recomputed from the final Δ so weights sum to exactly 1.
  /// Entries overlapping no cell are counted as unallocatable.
  Status Emit(typename TypedFile<EdbRecord>::Appender* out,
              int64_t* edges_emitted, int64_t* unallocatable);

  /// Same as Emit but into an in-memory vector (used by the maintenance
  /// layer, which splices rows into existing EDB ranges).
  void EmitToVector(std::vector<EdbRecord>* out, int64_t* unallocatable);

  const std::vector<CellRecord>& cells() const { return cells_; }
  const std::vector<ImpreciseRecord>& entries() const { return entries_; }
  int64_t num_edges() const { return num_edges_; }
  /// edges()[e] lists the indexes of the cells entry `e` overlaps.
  const std::vector<std::vector<int32_t>>& edges() const { return edges_; }

 private:
  void BuildEdges();
  double Step(std::vector<double>* delta_cur);

  const StarSchema* schema_;
  std::vector<CellRecord> cells_;
  std::vector<ImpreciseRecord> entries_;
  // edges_[e] = indexes into cells_ covered by entries_[e].
  std::vector<std::vector<int32_t>> edges_;
  int64_t num_edges_ = 0;
};

}  // namespace iolap

#endif  // IOLAP_ALLOC_IN_MEMORY_H_
