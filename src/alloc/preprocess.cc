#include "alloc/preprocess.h"

#include <algorithm>
#include <cstring>

#include "model/sort_key.h"
#include "storage/external_sort.h"

namespace iolap {

namespace {

using LeafKey = std::array<int32_t, kMaxDims>;

LeafKey RegionStartKey(const StarSchema& schema, const ImpreciseRecord& r) {
  LeafKey k{};
  for (int d = 0; d < schema.num_dims(); ++d) {
    k[d] = schema.dim(d).leaf_begin(r.node[d]);
  }
  return k;
}

LeafKey RegionEndKey(const StarSchema& schema, const ImpreciseRecord& r) {
  LeafKey k{};
  for (int d = 0; d < schema.num_dims(); ++d) {
    k[d] = schema.dim(d).leaf_end(r.node[d]) - 1;
  }
  return k;
}

bool LeafKeyLess(const LeafKey& a, const LeafKey& b, int num_dims) {
  for (int d = 0; d < num_dims; ++d) {
    if (a[d] != b[d]) return a[d] < b[d];
  }
  return false;
}

/// Index of the last fence <= key, or -1 if every fence exceeds key.
int64_t LastFenceLeq(const std::vector<LeafKey>& fences, const LeafKey& key,
                     int num_dims) {
  int64_t lo = 0, hi = static_cast<int64_t>(fences.size());
  while (lo < hi) {  // invariant: fences[lo-1] <= key < fences[hi]
    int64_t mid = (lo + hi) / 2;
    if (LeafKeyLess(key, fences[mid], num_dims)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo - 1;
}

/// Streams region-cell stubs for the kImpreciseUnion domain.
Status EnumerateRegionCells(const StarSchema& schema,
                            const FactRecord& fact, int64_t* budget,
                            TypedFile<CellRecord>::Appender* out) {
  const int k = schema.num_dims();
  LeafKey lo{}, hi{}, cur{};
  for (int d = 0; d < k; ++d) {
    lo[d] = schema.dim(d).leaf_begin(fact.node[d]);
    hi[d] = schema.dim(d).leaf_end(fact.node[d]);
    cur[d] = lo[d];
  }
  while (true) {
    if (--(*budget) < 0) {
      return Status::ResourceExhausted(
          "kImpreciseUnion cell domain exceeds max_domain_cells");
    }
    CellRecord cell;
    std::memcpy(cell.leaf, cur.data(), sizeof(cell.leaf));
    IOLAP_RETURN_IF_ERROR(out->Append(cell));
    int d = k - 1;
    while (d >= 0 && ++cur[d] == hi[d]) {
      cur[d] = lo[d];
      --d;
    }
    if (d < 0) break;
  }
  return Status::Ok();
}

bool SameLeaves(const int32_t* a, const int32_t* b, int k) {
  return std::memcmp(a, b, static_cast<size_t>(k) * sizeof(int32_t)) == 0;
}

}  // namespace

Result<PreparedDataset> PrepareDataset(StorageEnv& env,
                                       const StarSchema& schema,
                                       TypedFile<FactRecord>* facts,
                                       const AllocationOptions& options) {
  const int k = schema.num_dims();
  DiskManager& disk = env.disk();
  BufferPool& pool = env.pool();

  // Step 1: sort D into summary-table order (one "special sort").
  {
    ExternalSorter<FactRecord> sorter(&disk, &pool, env.buffer_pages(),
                                      options.io);
    IOLAP_RETURN_IF_ERROR(sorter.Sort(facts, SummaryOrderLess(&schema)));
  }

  PreparedDataset out;
  IOLAP_ASSIGN_OR_RETURN(out.cells, TypedFile<CellRecord>::Create(disk, "cells"));
  IOLAP_ASSIGN_OR_RETURN(out.imprecise,
                         TypedFile<ImpreciseRecord>::Create(disk, "imprecise"));
  IOLAP_ASSIGN_OR_RETURN(out.precise_edb,
                         TypedFile<EdbRecord>::Create(disk, "precise_edb"));

  // Optional stub file for the kImpreciseUnion cell domain.
  TypedFile<CellRecord> stubs;
  const bool union_domain = options.domain == CellDomain::kImpreciseUnion;
  if (union_domain) {
    IOLAP_ASSIGN_OR_RETURN(stubs,
                           TypedFile<CellRecord>::Create(disk, "cell_stubs"));
  }
  int64_t stub_budget = options.max_domain_cells;

  // Step 2: single scan of the sorted facts. The precise prefix (level
  // vector all-ones sorts first) aggregates into C in canonical order; the
  // imprecise tail splits into page-aligned summary tables.
  {
    auto cell_appender = out.cells.MakeAppender(pool);
    auto imp_appender = out.imprecise.MakeAppender(pool);
    auto edb_appender = out.precise_edb.MakeAppender(pool);
    auto stub_appender = stubs.MakeAppender(pool);

    CellRecord cur_cell;
    bool have_cell = false;
    LevelVector cur_levels{};
    bool in_imprecise = false;

    auto flush_cell = [&]() -> Status {
      if (!have_cell) return Status::Ok();
      cur_cell.delta_prev = cur_cell.delta0;
      IOLAP_RETURN_IF_ERROR(cell_appender.Append(cur_cell));
      have_cell = false;
      return Status::Ok();
    };

    auto cursor = facts->Scan(pool);
    FactRecord fact;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&fact));
      if (fact.IsPrecise(k)) {
        ++out.num_precise_facts;
        int32_t leaf[kMaxDims] = {};
        for (int d = 0; d < k; ++d) {
          leaf[d] = schema.dim(d).leaf_begin(fact.node[d]);
        }
        if (!have_cell || !SameLeaves(cur_cell.leaf, leaf, k)) {
          IOLAP_RETURN_IF_ERROR(flush_cell());
          cur_cell = CellRecord{};
          std::memcpy(cur_cell.leaf, leaf, sizeof(cur_cell.leaf));
          cur_cell.delta0 = options.DeltaBase();
          have_cell = true;
        }
        cur_cell.delta0 += options.DeltaContribution(fact);
        EdbRecord edb;
        edb.fact_id = fact.fact_id;
        edb.measure = fact.measure;
        edb.weight = 1.0;
        std::memcpy(edb.leaf, leaf, sizeof(edb.leaf));
        IOLAP_RETURN_IF_ERROR(edb_appender.Append(edb));
        continue;
      }

      // First imprecise fact: close out the cell stream.
      if (!in_imprecise) {
        IOLAP_RETURN_IF_ERROR(flush_cell());
        in_imprecise = true;
      }
      ++out.num_imprecise_facts;
      LevelVector levels = fact.level_vector();
      if (out.tables.empty() || levels != cur_levels) {
        if (!out.tables.empty()) {
          out.tables.back().end = out.imprecise.size();
        }
        // Pad to a page boundary with explicit sentinels (fact_id = -1,
        // precise region, ccid = -1) so that whole-file sorts — Transitive's
        // component sort — can push them harmlessly to the end, while range
        // scans skip them via the segment bounds.
        {
          const int64_t rpp = TypedFile<ImpreciseRecord>::kRecordsPerPage;
          ImpreciseRecord sentinel;
          sentinel.fact_id = -1;
          for (int d = 0; d < k; ++d) {
            sentinel.node[d] = schema.dim(d).leaf_node(0);
            sentinel.level[d] = 1;
          }
          while (out.imprecise.size() % rpp != 0) {
            IOLAP_RETURN_IF_ERROR(imp_appender.Append(sentinel));
          }
        }
        SummaryTableInfo table;
        table.levels = levels;
        table.begin = out.imprecise.size();
        out.tables.push_back(table);
        cur_levels = levels;
      }
      ImpreciseRecord rec;
      rec.fact_id = fact.fact_id;
      rec.measure = fact.measure;
      std::memcpy(rec.node, fact.node, sizeof(rec.node));
      std::memcpy(rec.level, fact.level, sizeof(rec.level));
      rec.table = static_cast<int16_t>(out.tables.size() - 1);
      IOLAP_RETURN_IF_ERROR(imp_appender.Append(rec));

      if (union_domain) {
        Status st =
            EnumerateRegionCells(schema, fact, &stub_budget, &stub_appender);
        IOLAP_RETURN_IF_ERROR(st);
      }
    }
    IOLAP_RETURN_IF_ERROR(flush_cell());
    if (!out.tables.empty()) {
      out.tables.back().end = out.imprecise.size();
    }
    cell_appender.Close();
    imp_appender.Close();
    edb_appender.Close();
    stub_appender.Close();
  }

  // Step 3 (kImpreciseUnion only): sort the stubs and merge them with the
  // precise cells into the final C.
  if (union_domain && stubs.size() > 0) {
    {
      SpecComparator canonical(&schema, SortSpec::Canonical(schema));
      ExternalSorter<CellRecord> sorter(&disk, &pool, env.buffer_pages(),
                                        options.io);
      IOLAP_RETURN_IF_ERROR(sorter.Sort(&stubs, CellSpecLess(&canonical)));
    }
    IOLAP_ASSIGN_OR_RETURN(auto merged,
                           TypedFile<CellRecord>::Create(disk, "cells_union"));
    {
    auto appender = merged.MakeAppender(pool);
    auto pc = out.cells.Scan(pool);
    auto sc = stubs.Scan(pool);
    CellRecord precise_cell, stub_cell;
    bool have_precise = !pc.done(), have_stub = !sc.done();
    if (have_precise) IOLAP_RETURN_IF_ERROR(pc.Next(&precise_cell));
    if (have_stub) IOLAP_RETURN_IF_ERROR(sc.Next(&stub_cell));
    auto advance_precise = [&]() -> Status {
      have_precise = !pc.done();
      if (have_precise) return pc.Next(&precise_cell);
      return Status::Ok();
    };
    auto advance_stub = [&]() -> Status {
      have_stub = !sc.done();
      if (have_stub) return sc.Next(&stub_cell);
      return Status::Ok();
    };
    while (have_precise || have_stub) {
      int cmp;
      if (!have_stub) {
        cmp = -1;
      } else if (!have_precise) {
        cmp = 1;
      } else if (SameLeaves(precise_cell.leaf, stub_cell.leaf, k)) {
        cmp = 0;
      } else {
        cmp = 1;
        for (int d = 0; d < k; ++d) {
          if (precise_cell.leaf[d] != stub_cell.leaf[d]) {
            cmp = precise_cell.leaf[d] < stub_cell.leaf[d] ? -1 : 1;
            break;
          }
        }
      }
      if (cmp <= 0) {
        IOLAP_RETURN_IF_ERROR(appender.Append(precise_cell));
        if (cmp == 0) {
          // Skip all duplicate stubs of this cell.
          LeafKey key;
          std::memcpy(key.data(), stub_cell.leaf, sizeof(int32_t) * kMaxDims);
          while (have_stub && SameLeaves(stub_cell.leaf, key.data(), k)) {
            IOLAP_RETURN_IF_ERROR(advance_stub());
          }
        }
        IOLAP_RETURN_IF_ERROR(advance_precise());
      } else {
        CellRecord fresh;
        std::memcpy(fresh.leaf, stub_cell.leaf, sizeof(fresh.leaf));
        fresh.delta0 = options.DeltaBase();
        fresh.delta_prev = fresh.delta0;
        IOLAP_RETURN_IF_ERROR(appender.Append(fresh));
        LeafKey key;
        std::memcpy(key.data(), stub_cell.leaf, sizeof(int32_t) * kMaxDims);
        while (have_stub && SameLeaves(stub_cell.leaf, key.data(), k)) {
          IOLAP_RETURN_IF_ERROR(advance_stub());
        }
      }
    }
    appender.Close();
    }
    IOLAP_RETURN_IF_ERROR(pool.EvictFile(out.cells.file_id()));
    IOLAP_RETURN_IF_ERROR(disk.DeleteFile(out.cells.file_id()));
    out.cells = merged;
    IOLAP_RETURN_IF_ERROR(pool.EvictFile(stubs.file_id()));
    IOLAP_RETURN_IF_ERROR(disk.DeleteFile(stubs.file_id()));
  }

  // Step 4: fence keys — the first cell key of every page of C.
  {
    const int64_t rpp = TypedFile<CellRecord>::kRecordsPerPage;
    for (int64_t i = 0; i < out.cells.size(); i += rpp) {
      IOLAP_ASSIGN_OR_RETURN(CellRecord c, out.cells.Get(pool, i));
      LeafKey key{};
      std::memcpy(key.data(), c.leaf, sizeof(int32_t) * kMaxDims);
      out.fences.push_back(key);
    }
  }

  // Step 5: conservative first/last bounds per imprecise fact and partition
  // sizes per summary table (the sweep of Section 4.2).
  {
    const int64_t cell_rpp = TypedFile<CellRecord>::kRecordsPerPage;
    const int64_t imp_rpp = TypedFile<ImpreciseRecord>::kRecordsPerPage;
    const int64_t num_cells = out.cells.size();
    for (SummaryTableInfo& table : out.tables) {
      int64_t block_count = 0;
      int64_t block_max_last = -2;
      int64_t partition = 0;
      auto cursor = out.imprecise.MutableScan(pool, table.begin, table.end);
      ImpreciseRecord rec;
      while (!cursor.done()) {
        IOLAP_RETURN_IF_ERROR(cursor.Read(&rec));
        LeafKey start = RegionStartKey(schema, rec);
        LeafKey end = RegionEndKey(schema, rec);
        int64_t first_page = LastFenceLeq(out.fences, start, k);
        int64_t last_page = LastFenceLeq(out.fences, end, k);
        if (last_page < 0 || num_cells == 0) {
          rec.first = 0;
          rec.last = -1;  // region entirely before C; certainly empty
        } else {
          rec.first = std::max<int64_t>(0, first_page) * cell_rpp;
          rec.last = std::min(num_cells - 1, last_page * cell_rpp + cell_rpp - 1);
        }
        IOLAP_RETURN_IF_ERROR(cursor.Write(rec));
        cursor.Advance();

        int64_t f = rec.first;
        int64_t l = std::max(rec.last, rec.first);
        if (f > block_max_last) {
          partition = std::max(partition, block_count);
          block_count = 1;
          block_max_last = l;
        } else {
          ++block_count;
          block_max_last = std::max(block_max_last, l);
        }
      }
      partition = std::max(partition, block_count);
      table.partition_records = partition;
      table.partition_pages =
          table.size() == 0 ? 0 : std::max<int64_t>(1, (partition + imp_rpp - 1) / imp_rpp);
    }
    IOLAP_RETURN_IF_ERROR(pool.FlushFile(out.imprecise.file_id()));
  }

  return out;
}

}  // namespace iolap
