#ifndef IOLAP_ALLOC_ESTIMATOR_H_
#define IOLAP_ALLOC_ESTIMATOR_H_

#include <cstdint>

#include "alloc/policy.h"
#include "common/result.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"

namespace iolap {

/// Options for the sampling estimator.
struct EstimateOptions {
  int64_t sample_size = 20'000;
  double epsilon = 0.005;
  int max_iterations = 100;
  PolicyKind policy = PolicyKind::kCount;
  uint64_t seed = 42;
  /// The largest component is declared "giant" (supercritical) when its
  /// size grows with the sample size at least this fast (exponent of the
  /// two-point growth fit; ~0 = local components, ~1 = giant).
  double giant_exponent_threshold = 0.6;
};

/// Sample-based estimates for the two quantities the paper's Section 12
/// names as future work: the number of EM iterations a given ε will need,
/// and the size of the largest connected component (which decides whether
/// Transitive can keep everything in memory).
struct AllocationEstimate {
  int64_t sampled_facts = 0;
  double sample_rate = 0;

  /// Iterations the sample needed — EM convergence speed is governed by
  /// the local overlap structure, which sampling preserves, so this is
  /// used directly as the prediction.
  int estimated_iterations = 0;

  int64_t sample_components = 0;
  int64_t sample_largest_component = 0;  // in tuples (cells + facts)
  double largest_fraction = 0;           // of sampled tuples

  /// How fast the largest component grew between a half-sample and the
  /// full sample (log2 ratio): ~0 for local components, ~1 for a giant one.
  double growth_exponent = 0;

  /// True if the growth fit shows a supercritical (giant) component. Then
  /// `estimated_largest_component` extrapolates the growth law up to the
  /// full dataset. Otherwise components are local and the sampled value is
  /// only a lower bound (sampling thins edges), which is flagged here.
  bool giant_component = false;
  int64_t estimated_largest_component = 0;
  bool largest_is_lower_bound = false;
};

/// Scans `facts` once (reservoir sampling), allocates the sample in memory,
/// and extrapolates. Costs one read pass over the fact table plus
/// O(sample) memory/CPU — cheap enough to run before committing to an
/// algorithm and buffer size.
Result<AllocationEstimate> EstimateAllocation(
    StorageEnv& env, const StarSchema& schema,
    const TypedFile<FactRecord>& facts, const EstimateOptions& options);

}  // namespace iolap

#endif  // IOLAP_ALLOC_ESTIMATOR_H_
