#ifndef IOLAP_ALLOC_DATASET_H_
#define IOLAP_ALLOC_DATASET_H_

#include <array>
#include <cstdint>
#include <vector>

#include "model/records.h"
#include "model/schema.h"
#include "storage/paged_file.h"

namespace iolap {

/// One imprecise summary table (Definition 7): a page-aligned segment
/// [begin, end) of the imprecise file whose facts share `levels`.
struct SummaryTableInfo {
  LevelVector levels{};
  int64_t begin = 0;
  int64_t end = 0;
  /// Partition size (Definition 9) against the canonical cell order, in
  /// records and in pages — computed conservatively from page fences.
  int64_t partition_records = 0;
  int64_t partition_pages = 0;

  int64_t size() const { return end - begin; }
};

/// Output of the preprocessing step shared by all algorithms: the fact
/// table sorted into summary-table order and split into the cell summary
/// table C (canonical order, δ seeded) and the imprecise summary tables.
struct PreparedDataset {
  TypedFile<CellRecord> cells;
  TypedFile<ImpreciseRecord> imprecise;
  std::vector<SummaryTableInfo> tables;

  /// First cell key (leaf vector) of every page of `cells` — in-memory
  /// fence keys used to derive conservative first/last bounds.
  std::vector<std::array<int32_t, kMaxDims>> fences;

  int64_t num_precise_facts = 0;
  int64_t num_imprecise_facts = 0;

  /// EDB rows for the precise facts (each allocates 1.0 to its own cell),
  /// emitted during preprocessing.
  TypedFile<EdbRecord> precise_edb;
};

}  // namespace iolap

#endif  // IOLAP_ALLOC_DATASET_H_
