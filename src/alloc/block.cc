#include <algorithm>

#include "alloc/algorithms.h"
#include "common/stopwatch.h"
#include "graph/bin_packing.h"
#include "model/sort_key.h"
#include "obs/trace.h"
#include "recovery/checkpoint.h"

namespace iolap {

std::vector<std::vector<TableSegment>> PackTableGroups(
    const PreparedDataset& data, int64_t buffer_pages) {
  // Reserve a few pages for the scan cursors (one cell page, one page per
  // table cursor, EDB output) before packing partitions.
  int64_t capacity = std::max<int64_t>(1, buffer_pages - 4);
  std::vector<int64_t> sizes;
  sizes.reserve(data.tables.size());
  for (const SummaryTableInfo& t : data.tables) {
    sizes.push_back(t.partition_pages);
  }
  PackingResult packed = FirstFitDecreasing(sizes, capacity);
  std::vector<std::vector<TableSegment>> groups(packed.num_bins);
  for (size_t i = 0; i < data.tables.size(); ++i) {
    const SummaryTableInfo& t = data.tables[i];
    if (t.size() == 0) continue;
    groups[packed.bin_of[i]].push_back(
        TableSegment{t.begin, t.end, static_cast<int16_t>(i)});
  }
  // Drop bins that ended up empty (zero-size tables).
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& g) { return g.empty(); }),
               groups.end());
  return groups;
}

Status EmitExternal(StorageEnv& env, const StarSchema& schema,
                    PreparedDataset* data,
                    const std::vector<std::vector<TableSegment>>& groups,
                    AllocationResult* result) {
  TraceSpan span("emit.external");
  span.AddArg("groups", static_cast<int64_t>(groups.size()));
  SpecComparator canonical(&schema, SortSpec::Canonical(schema));
  PassEngine engine(&env.pool(), &schema, &data->cells, &data->imprecise,
                    &canonical);
  // Recompute Γ against the final Δ so per-fact weights sum to exactly 1.
  for (const auto& group : groups) {
    IOLAP_RETURN_IF_ERROR(engine.RunGamma(group));
  }
  EmitStats stats;
  auto appender = result->edb.MakeAppender(env.pool());
  for (const auto& group : groups) {
    IOLAP_RETURN_IF_ERROR(engine.RunEmit(group, &appender, &stats));
  }
  appender.Close();
  result->edges_emitted += stats.edges_emitted;
  result->unallocatable_facts += stats.unallocatable_facts;
  return Status::Ok();
}

Status RunBlock(StorageEnv& env, const StarSchema& schema,
                PreparedDataset* data, const AllocationOptions& options,
                AllocationResult* result, CheckpointManager* ckpt) {
  auto groups = PackTableGroups(*data, env.buffer_pages());
  result->num_groups = static_cast<int>(groups.size());

  SpecComparator canonical(&schema, SortSpec::Canonical(schema));
  PassEngine engine(&env.pool(), &schema, &data->cells, &data->imprecise,
                    &canonical);

  const int max_iterations = options.EffectiveMaxIterations();
  // All iteration state is in the cells/imprecise records (delta_prev,
  // gamma), so a restored file image plus the completed-iteration counter
  // resumes the loop exactly.
  const int start = ckpt != nullptr ? ckpt->start_iteration() : 0;
  const bool skip_iterate = ckpt != nullptr && ckpt->resumed_converged();
  for (int t = start + 1; t <= max_iterations && !skip_iterate; ++t) {
    TraceSpan iteration_span("block.iteration");
    iteration_span.AddArg("t", t);
    Stopwatch iteration_watch;
    IoStats io_before = env.disk().stats();
    for (const auto& group : groups) {
      TraceSpan gamma_span("block.gamma");
      IOLAP_RETURN_IF_ERROR(engine.RunGamma(group));
    }
    double max_eps = 0;
    for (size_t g = 0; g < groups.size(); ++g) {
      TraceSpan delta_span("block.delta");
      IOLAP_RETURN_IF_ERROR(engine.RunDelta(groups[g], /*init_delta=*/g == 0,
                                            /*finalize=*/g + 1 == groups.size(),
                                            &max_eps));
    }
    result->iterations = t;
    result->final_eps = max_eps;
    result->per_iteration.push_back(IterationStats{
        max_eps, env.disk().stats() - io_before,
        iteration_watch.ElapsedSeconds()});
    if (ckpt != nullptr) {
      bool done = max_eps < options.epsilon || t == max_iterations;
      if (done || ckpt->DueAtIteration(t)) {
        IOLAP_RETURN_IF_ERROR(ckpt->CheckpointIteration(t, done, data, *result));
      }
    }
    if (max_eps < options.epsilon) break;
  }
  result->peak_window_records =
      std::max(result->peak_window_records, engine.peak_window_records());
  return Status::Ok();
}

}  // namespace iolap
