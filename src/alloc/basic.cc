#include "alloc/algorithms.h"
#include "alloc/in_memory.h"
#include "obs/trace.h"

namespace iolap {

Status RunBasic(StorageEnv& env, const StarSchema& schema,
                PreparedDataset* data, const AllocationOptions& options,
                AllocationResult* result) {
  BufferPool& pool = env.pool();
  TraceSpan load_span("basic.load");

  std::vector<CellRecord> cells;
  cells.reserve(data->cells.size());
  {
    auto cur = data->cells.Scan(pool);
    CellRecord c;
    while (!cur.done()) {
      IOLAP_RETURN_IF_ERROR(cur.Next(&c));
      cells.push_back(c);
    }
  }
  std::vector<ImpreciseRecord> entries;
  entries.reserve(data->num_imprecise_facts);
  for (const SummaryTableInfo& table : data->tables) {
    auto cur = data->imprecise.Scan(pool, table.begin, table.end);
    ImpreciseRecord e;
    while (!cur.done()) {
      IOLAP_RETURN_IF_ERROR(cur.Next(&e));
      entries.push_back(e);
    }
  }

  load_span.End();

  MemoryAllocator ma(&schema, std::move(cells), std::move(entries));
  {
    TraceSpan iterate_span("basic.iterate");
    result->iterations = ma.Iterate(options.epsilon,
                                    options.EffectiveMaxIterations(),
                                    /*force_all_iterations=*/false);
    iterate_span.AddArg("iterations", result->iterations);
  }
  TraceSpan emit_span("basic.emit");
  auto appender = result->edb.MakeAppender(pool);
  IOLAP_RETURN_IF_ERROR(ma.Emit(&appender, &result->edges_emitted,
                                &result->unallocatable_facts));
  appender.Close();
  emit_span.AddArg("edges", result->edges_emitted);
  return Status::Ok();
}

}  // namespace iolap
