#include "alloc/algorithms.h"
#include "alloc/in_memory.h"

namespace iolap {

Status RunBasic(StorageEnv& env, const StarSchema& schema,
                PreparedDataset* data, const AllocationOptions& options,
                AllocationResult* result) {
  BufferPool& pool = env.pool();

  std::vector<CellRecord> cells;
  cells.reserve(data->cells.size());
  {
    auto cur = data->cells.Scan(pool);
    CellRecord c;
    while (!cur.done()) {
      IOLAP_RETURN_IF_ERROR(cur.Next(&c));
      cells.push_back(c);
    }
  }
  std::vector<ImpreciseRecord> entries;
  entries.reserve(data->num_imprecise_facts);
  for (const SummaryTableInfo& table : data->tables) {
    auto cur = data->imprecise.Scan(pool, table.begin, table.end);
    ImpreciseRecord e;
    while (!cur.done()) {
      IOLAP_RETURN_IF_ERROR(cur.Next(&e));
      entries.push_back(e);
    }
  }

  MemoryAllocator ma(&schema, std::move(cells), std::move(entries));
  result->iterations = ma.Iterate(options.epsilon,
                                  options.EffectiveMaxIterations(),
                                  /*force_all_iterations=*/false);
  auto appender = result->edb.MakeAppender(pool);
  IOLAP_RETURN_IF_ERROR(ma.Emit(&appender, &result->edges_emitted,
                                &result->unallocatable_facts));
  appender.Close();
  return Status::Ok();
}

}  // namespace iolap
