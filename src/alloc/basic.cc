#include "alloc/algorithms.h"
#include "alloc/in_memory.h"
#include "obs/trace.h"
#include "recovery/checkpoint.h"

namespace iolap {

Status RunBasic(StorageEnv& env, const StarSchema& schema,
                PreparedDataset* data, const AllocationOptions& options,
                AllocationResult* result, CheckpointManager* ckpt) {
  BufferPool& pool = env.pool();
  TraceSpan load_span("basic.load");

  std::vector<CellRecord> cells;
  std::vector<ImpreciseRecord> entries;
  if (ckpt != nullptr && ckpt->has_basic_state()) {
    // Resume from the raw in-memory payload the checkpoint stored; the
    // workspace cells/imprecise files are empty and stay that way.
    IOLAP_RETURN_IF_ERROR(ckpt->LoadBasicState(&cells, &entries));
  } else {
    cells.reserve(data->cells.size());
    {
      auto cur = data->cells.Scan(pool);
      CellRecord c;
      while (!cur.done()) {
        IOLAP_RETURN_IF_ERROR(cur.Next(&c));
        cells.push_back(c);
      }
    }
    entries.reserve(data->num_imprecise_facts);
    for (const SummaryTableInfo& table : data->tables) {
      auto cur = data->imprecise.Scan(pool, table.begin, table.end);
      ImpreciseRecord e;
      while (!cur.done()) {
        IOLAP_RETURN_IF_ERROR(cur.Next(&e));
        entries.push_back(e);
      }
    }
  }

  load_span.End();

  MemoryAllocator ma(&schema, std::move(cells), std::move(entries));
  {
    TraceSpan iterate_span("basic.iterate");
    const int max_iterations = options.EffectiveMaxIterations();
    if (ckpt == nullptr) {
      result->iterations = ma.Iterate(options.epsilon, max_iterations,
                                      /*force_all_iterations=*/false);
    } else {
      // Checkpointed stepping loop. Note Uniform (max_iterations == 0)
      // never reaches a boundary, so its only checkpointable state is the
      // finished EDB via the facade.
      const int start = ckpt->start_iteration();
      const bool skip_iterate = ckpt->resumed_converged();
      result->iterations = start;
      for (int t = start + 1; t <= max_iterations && !skip_iterate; ++t) {
        double max_eps = ma.IterateOnce();
        result->iterations = t;
        bool done = max_eps < options.epsilon || t == max_iterations;
        if (done || ckpt->DueAtIteration(t)) {
          IOLAP_RETURN_IF_ERROR(ckpt->CheckpointBasic(
              t, done, ma.cells(), ma.entries(), data, *result));
        }
        if (max_eps < options.epsilon) break;
      }
    }
    iterate_span.AddArg("iterations", result->iterations);
  }
  TraceSpan emit_span("basic.emit");
  auto appender = result->edb.MakeAppender(pool);
  IOLAP_RETURN_IF_ERROR(ma.Emit(&appender, &result->edges_emitted,
                                &result->unallocatable_facts));
  appender.Close();
  emit_span.AddArg("edges", result->edges_emitted);
  return Status::Ok();
}

}  // namespace iolap
