#ifndef IOLAP_ALLOC_PASS_H_
#define IOLAP_ALLOC_PASS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/union_find.h"
#include "model/records.h"
#include "model/schema.h"
#include "model/sort_key.h"
#include "storage/paged_file.h"

namespace iolap {

/// A contiguous record range of the imprecise file holding (part of) one
/// summary table, already sorted by region start key under the pass's
/// sort spec.
struct TableSegment {
  int64_t begin = 0;
  int64_t end = 0;
  int16_t table = -1;
};

struct EmitStats {
  int64_t edges_emitted = 0;
  int64_t unallocatable_facts = 0;
};

/// Executes single passes over (a range of) the cell summary table against
/// a group of summary-table segments, maintaining one sliding window per
/// segment — the operational core shared by the Independent, Block and
/// Transitive algorithms.
///
/// Windows are *key-driven*: an entry is loaded once the scan reaches its
/// region's start key and evicted past its end key. Within one summary
/// table regions are hierarchy-aligned and pairwise disjoint, so start and
/// end orders agree and eviction is strictly front-to-back; the peak window
/// size is bounded by the table's partition size (Definition 9).
class PassEngine {
 public:
  PassEngine(BufferPool* pool, const StarSchema* schema,
             TypedFile<CellRecord>* cells,
             TypedFile<ImpreciseRecord>* imprecise, const SpecComparator* cmp)
      : pool_(pool),
        schema_(schema),
        cells_(cells),
        imprecise_(imprecise),
        cmp_(cmp) {}

  /// Restricts passes to cells [begin, end) (Transitive processes one
  /// component's segment at a time). Defaults to the whole cell table.
  void SetCellRange(int64_t begin, int64_t end) {
    cell_begin_ = begin;
    cell_end_ = end;
  }

  /// Γ pass (template Equation 1): resets each entry's Γ and accumulates
  /// Δ(t-1)(c) over the cells it overlaps. Cells read-only; entries are
  /// written back on eviction.
  Status RunGamma(const std::vector<TableSegment>& tables);

  /// Δ pass (template Equation 2): accumulates Δ(t-1)(c)/Γ(t)(r) into
  /// Δ(t)(c). With `init_delta` (first group of the iteration) Δ(t)(c)
  /// starts from δ(c); with `finalize` (last group) the per-cell relative
  /// change is folded into `max_eps` and Δ(t) is promoted to Δ(t-1) for the
  /// next iteration. Cells read+write; entries read-only.
  Status RunDelta(const std::vector<TableSegment>& tables, bool init_delta,
                  bool finalize, double* max_eps);

  /// Component-identification pass (Transitive step 1): unions the ccids of
  /// each cell with every entry overlapping it. Cells and entries both
  /// written.
  Status RunCcid(const std::vector<TableSegment>& tables, UnionFind* uf);

  /// Emission pass: requires a preceding RunGamma against the *final* Δ so
  /// that Γ(r) = Σ_{c∈reg(r)} Δ(c); appends one EDB row per (cell, entry)
  /// edge with p = Δ(c)/Γ(r), which sums to exactly 1 per fact. Facts whose
  /// region overlaps no cell of C (Γ = 0) are counted as unallocatable.
  Status RunEmit(const std::vector<TableSegment>& tables,
                 typename TypedFile<EdbRecord>::Appender* out,
                 EmitStats* stats);

  /// Peak number of simultaneously open window entries seen by any pass so
  /// far (for validating partition-size bounds in tests).
  int64_t peak_window_records() const { return peak_window_records_; }

 private:
  enum class PassKind { kGamma, kDelta, kCcid, kEmit };

  class TableWindow;

  Status RunPass(PassKind kind, const std::vector<TableSegment>& tables,
                 bool init_delta, bool finalize, double* max_eps,
                 UnionFind* uf, typename TypedFile<EdbRecord>::Appender* out,
                 EmitStats* stats);

  BufferPool* pool_;
  const StarSchema* schema_;
  TypedFile<CellRecord>* cells_;
  TypedFile<ImpreciseRecord>* imprecise_;
  const SpecComparator* cmp_;
  int64_t cell_begin_ = 0;
  int64_t cell_end_ = -1;
  int64_t peak_window_records_ = 0;
};

}  // namespace iolap

#endif  // IOLAP_ALLOC_PASS_H_
