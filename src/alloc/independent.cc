#include <algorithm>

#include "alloc/algorithms.h"
#include "common/stopwatch.h"
#include "graph/chain_cover.h"
#include "model/sort_key.h"
#include "obs/trace.h"
#include "recovery/checkpoint.h"
#include "storage/external_sort.h"

namespace iolap {

namespace {

struct Chain {
  SpecComparator cmp;
  std::vector<TableSegment> segments;  // most imprecise first
};

}  // namespace

Status RunIndependent(StorageEnv& env, const StarSchema& schema,
                      PreparedDataset* data,
                      const AllocationOptions& options,
                      AllocationResult* result, CheckpointManager* ckpt) {
  // Decompose the summary-table partial order into W chains (Section 5.1).
  std::vector<LevelVector> levels;
  levels.reserve(data->tables.size());
  for (const SummaryTableInfo& t : data->tables) levels.push_back(t.levels);
  ChainCover cover = ComputeChainCover(levels, schema.num_dims());
  result->chain_width = cover.width;

  std::vector<Chain> chains;
  for (const auto& chain_tables : cover.chains) {
    std::vector<LevelVector> descending;
    std::vector<TableSegment> segments;
    for (int t : chain_tables) {
      descending.push_back(data->tables[t].levels);
      if (data->tables[t].size() > 0) {
        segments.push_back(TableSegment{data->tables[t].begin,
                                        data->tables[t].end,
                                        static_cast<int16_t>(t)});
      }
    }
    if (segments.empty()) continue;
    chains.push_back(Chain{
        SpecComparator(&schema, SortSpec::ForChain(schema, descending)),
        std::move(segments)});
  }
  result->num_groups = static_cast<int>(chains.size());

  ExternalSorter<CellRecord> cell_sorter(&env.disk(), &env.pool(),
                                         env.buffer_pages(), options.io);
  ExternalSorter<ImpreciseRecord> entry_sorter(&env.disk(), &env.pool(),
                                               env.buffer_pages(), options.io);

  const int max_iterations = options.EffectiveMaxIterations();
  // A checkpoint may capture the files in any chain's sort order — that is
  // fine, because every chain re-sorts them at the start of its own pass
  // and the canonical restore below re-sorts them after the loop.
  const int start = ckpt != nullptr ? ckpt->start_iteration() : 0;
  const bool skip_iterate = ckpt != nullptr && ckpt->resumed_converged();
  for (int t = start + 1; t <= max_iterations && !skip_iterate; ++t) {
    TraceSpan iteration_span("independent.iteration");
    iteration_span.AddArg("t", t);
    Stopwatch iteration_watch;
    IoStats io_before = env.disk().stats();
    double max_eps = 0;
    for (size_t g = 0; g < chains.size(); ++g) {
      Chain& chain = chains[g];
      TraceSpan chain_span("independent.chain");
      chain_span.AddArg("chain", static_cast<int64_t>(g));
      // Re-sort C and the chain's summary tables into the chain order —
      // the repeated sorting that dominates Independent's cost.
      IOLAP_RETURN_IF_ERROR(
          cell_sorter.Sort(&data->cells, CellSpecLess(&chain.cmp)));
      for (const TableSegment& seg : chain.segments) {
        IOLAP_RETURN_IF_ERROR(entry_sorter.SortRange(
            &data->imprecise, seg.begin, seg.end,
            EntrySpecLess(&chain.cmp)));
      }
      PassEngine engine(&env.pool(), &schema, &data->cells, &data->imprecise,
                        &chain.cmp);
      IOLAP_RETURN_IF_ERROR(engine.RunGamma(chain.segments));
      IOLAP_RETURN_IF_ERROR(engine.RunDelta(chain.segments,
                                            /*init_delta=*/g == 0,
                                            /*finalize=*/g + 1 == chains.size(),
                                            &max_eps));
      result->peak_window_records = std::max(result->peak_window_records,
                                             engine.peak_window_records());
    }
    result->iterations = t;
    result->final_eps = max_eps;
    result->per_iteration.push_back(IterationStats{
        max_eps, env.disk().stats() - io_before,
        iteration_watch.ElapsedSeconds()});
    if (ckpt != nullptr) {
      bool done = chains.empty() || max_eps < options.epsilon ||
                  t == max_iterations;
      if (done || ckpt->DueAtIteration(t)) {
        IOLAP_RETURN_IF_ERROR(ckpt->CheckpointIteration(t, done, data, *result));
      }
    }
    if (chains.empty() || max_eps < options.epsilon) break;
  }

  // Restore canonical order for the shared emission path.
  TraceSpan restore_span("independent.restore_canonical");
  SpecComparator canonical(&schema, SortSpec::Canonical(schema));
  IOLAP_RETURN_IF_ERROR(
      cell_sorter.Sort(&data->cells, CellSpecLess(&canonical)));
  for (const Chain& chain : chains) {
    for (const TableSegment& seg : chain.segments) {
      IOLAP_RETURN_IF_ERROR(entry_sorter.SortRange(
          &data->imprecise, seg.begin, seg.end, EntrySpecLess(&canonical)));
    }
  }
  return Status::Ok();
}

}  // namespace iolap
