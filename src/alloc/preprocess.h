#ifndef IOLAP_ALLOC_PREPROCESS_H_
#define IOLAP_ALLOC_PREPROCESS_H_

#include "alloc/dataset.h"
#include "alloc/policy.h"
#include "common/result.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/storage_env.h"

namespace iolap {

/// The preprocessing step common to all allocation algorithms (Section 4.1):
/// sorts `facts` into summary-table order, materializes the cell summary
/// table C (δ(c) seeded per policy, canonical sort order, fence keys per
/// page) and the page-aligned imprecise summary tables, emits the EDB rows
/// of the precise facts, and computes per-table partition sizes
/// (Definition 9) from conservative first/last bounds.
///
/// `facts` is sorted in place and may be discarded afterwards.
Result<PreparedDataset> PrepareDataset(StorageEnv& env,
                                       const StarSchema& schema,
                                       TypedFile<FactRecord>* facts,
                                       const AllocationOptions& options);

}  // namespace iolap

#endif  // IOLAP_ALLOC_PREPROCESS_H_
